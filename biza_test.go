package biza

import (
	"bytes"
	"testing"
)

func TestNewDefaultsToBIZA(t *testing.T) {
	a, err := New(Options{StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind() != BIZA {
		t.Fatalf("kind = %v", a.Kind())
	}
	if a.BlockSize() != 4096 || a.Blocks() <= 0 {
		t.Fatalf("geometry %d/%d", a.BlockSize(), a.Blocks())
	}
}

func TestSyncRoundTrip(t *testing.T) {
	a, err := New(Options{StoreData: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8*4096)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := a.WriteSync(100, 8, payload); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadSync(100, 8)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: err=%v", err)
	}
}

func TestAllKindsConstruct(t *testing.T) {
	for _, k := range []Kind{BIZA, BIZANoSelector, BIZANoAvoid, DmzapRAIZN, MdraidDmzap, MdraidConvSSD, RAIZN} {
		a, err := New(Options{Kind: k, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := a.WriteSync(0, 4, nil); err != nil {
			t.Fatalf("%v write: %v", k, err)
		}
	}
}

func TestWriteAmpVisible(t *testing.T) {
	a, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.WriteSync(int64(i%32), 1, nil)
	}
	a.Run()
	wa := a.WriteAmp()
	if wa.UserBytes == 0 {
		t.Fatal("no user bytes accounted")
	}
	if a.AbsorbedBytes() == 0 {
		t.Fatal("hot overwrites not absorbed in ZRWA")
	}
}

func TestDegradedMode(t *testing.T) {
	a, err := New(Options{StoreData: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 12*4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	a.WriteSync(0, 12, payload)
	if err := a.SetDeviceFailed(1, true); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadSync(0, 12)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("degraded read: %v", err)
	}
}

func TestFSAndKVOnArray(t *testing.T) {
	a, err := New(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := a.NewFS()
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Create("hello")
	if err != nil {
		t.Fatal(err)
	}
	werr := ErrIncomplete
	fs.WriteFile(id, 0, 4, func(e error) { werr = e })
	a.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	db, err := a.OpenKV(fs)
	if err != nil {
		t.Fatal(err)
	}
	perr := ErrIncomplete
	db.Put("k", []byte("v"), func(e error) { perr = e })
	a.Run()
	if perr != nil {
		t.Fatal(perr)
	}
	var got []byte
	db.Get("k", func(v []byte, e error) { got = v })
	a.Run()
	if string(got) != "v" {
		t.Fatalf("kv get = %q", got)
	}
}

func TestReplaceDevice(t *testing.T) {
	a, err := New(Options{StoreData: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 12*4096)
	for i := range payload {
		payload[i] = byte(i * 5)
	}
	a.WriteSync(0, 12, payload)
	if err := a.ReplaceDevice(2); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadSync(0, 12)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-rebuild read: %v", err)
	}
	// Redundancy restored.
	a.SetDeviceFailed(0, true)
	got, err = a.ReadSync(0, 12)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-rebuild degraded read: %v", err)
	}
}
