package biza

import (
	"biza/internal/admin"
	"biza/internal/ops"
	"biza/internal/volume"
)

// Job is a typed admin operation record; see internal/admin for the full
// lifecycle (pending → running → done|failed, with paused and canceled).
type Job = admin.Job

// JobKind names an admin job type.
type JobKind = admin.Kind

// Admin job kinds.
const (
	// JobReplace hot-swaps a member device and rebuilds redundancy,
	// optionally paced (JobParams.StripesPerStep / StepGapNanos).
	JobReplace = admin.KindReplace
	// JobScrub reads the whole array in paced steps, counting unreadable
	// ranges.
	JobScrub = admin.KindScrub
	// JobVolumeResize grows or shrinks a named volume in place.
	JobVolumeResize = admin.KindVolumeResize
	// JobVolumeDelete deletes a named volume, reclaiming its range.
	JobVolumeDelete = admin.KindVolumeDelete
	// JobCrash cuts power immediately (executes at submit, not queued).
	JobCrash = admin.KindCrash
	// JobRecover rebuilds array state from the surviving devices.
	JobRecover = admin.KindRecover
	// JobSetFailed marks a member failed or healthy (executes at submit).
	JobSetFailed = admin.KindSetFailed
)

// JobParams carries the union of job parameters.
type JobParams = admin.Params

// JobState is a job's lifecycle position.
type JobState = admin.State

// Job states.
const (
	JobPending  = admin.StatePending
	JobRunning  = admin.StateRunning
	JobPaused   = admin.StatePaused
	JobDone     = admin.StateDone
	JobFailed   = admin.StateFailed
	JobCanceled = admin.StateCanceled
)

// Admin is the array's mutating control plane: every administrative
// operation — device replacement, scrubs, crash/recover, volume resize
// and delete — is a typed Job executed by a deterministic per-array
// orchestrator, one at a time, in submission order. The synchronous
// helpers below submit a job and drive the simulation until it finishes;
// event-driven callers use Submit and drive the engine themselves.
//
// The same jobs are reachable over HTTP: wire Gateway() into an
// OpsServer via SetJobs and drain staged commands at the injection
// boundary (see cmd/bizabench -live for the canonical loop).
type Admin struct {
	a   *Array
	orc *admin.Orchestrator
	gw  *admin.Gateway
}

// Admin returns the array's admin control plane, creating it on first
// use.
func (a *Array) Admin() *Admin {
	if a.adm == nil {
		orc := admin.New(a.p)
		orc.SetVolumeSource(func() *volume.Manager { return a.vm })
		a.adm = &Admin{a: a, orc: orc}
	}
	return a.adm
}

// Submit queues a job (or executes it, for the immediate kinds JobCrash
// and JobSetFailed) and returns its id without driving the simulation.
// The job's outcome lands in its State/Err fields as the engine runs.
func (ad *Admin) Submit(kind JobKind, p JobParams) (uint64, error) {
	return ad.orc.Submit(kind, p)
}

// Job returns a snapshot of one job. Safe from any goroutine.
func (ad *Admin) Job(id uint64) (Job, bool) { return ad.orc.Job(id) }

// Jobs returns a snapshot of all jobs in submission order. Safe from any
// goroutine.
func (ad *Admin) Jobs() []Job { return ad.orc.Jobs() }

// Pause parks a running paced job at its next step boundary.
func (ad *Admin) Pause(id uint64) error { return ad.orc.Pause(id) }

// Resume restarts a paused job.
func (ad *Admin) Resume(id uint64) error { return ad.orc.Resume(id) }

// Cancel stops a pending or cancelable running job; a running rebuild
// refuses (it must restore redundancy).
func (ad *Admin) Cancel(id uint64) error { return ad.orc.Cancel(id) }

// Gateway returns the HTTP staging boundary for this control plane,
// creating it on first use. Pass it to an OpsServer's SetJobs so the
// /v1/jobs routes reach this array, and call its Drain on the simulation
// driver at virtual-time boundaries to inject staged commands.
func (ad *Admin) Gateway() *admin.Gateway {
	if ad.gw == nil {
		ad.gw = admin.NewGateway(ad.orc)
	}
	return ad.gw
}

// SetJobs is a convenience: wires this control plane's gateway into an
// ops server.
func (ad *Admin) SetJobs(s *ops.Server) { s.SetJobs(ad.Gateway()) }

// run submits a job and drives the simulation until the queue drains,
// returning the job's typed error.
func (ad *Admin) run(kind JobKind, p JobParams) error {
	id, err := ad.orc.Submit(kind, p)
	if err != nil {
		return err
	}
	ad.a.p.Eng.Run()
	if j, ok := ad.orc.Job(id); !ok || !j.State.Terminal() {
		return ErrIncomplete
	}
	return ad.orc.Err(id)
}

// Crash submits an immediate power-cut job: in-flight commands die with
// their driver queues; pending simulation events are NOT drained first
// (a power cut does not wait for outstanding work).
func (ad *Admin) Crash() error {
	id, err := ad.orc.Submit(JobCrash, JobParams{})
	if err != nil {
		return err
	}
	return ad.orc.Err(id) // immediate kinds finish synchronously
}

// SetDeviceFailed submits an immediate degraded-mode toggle for member
// dev (BIZA kinds only).
func (ad *Admin) SetDeviceFailed(dev int, failed bool) error {
	id, err := ad.orc.Submit(JobSetFailed, JobParams{Device: dev, Failed: failed})
	if err != nil {
		return err
	}
	return ad.orc.Err(id)
}

// Recover submits a recovery job and drives the simulation until the
// OOB scan completes.
func (ad *Admin) Recover() error { return ad.run(JobRecover, JobParams{}) }

// ReplaceDevice submits an unpaced device-replacement job and drives the
// simulation until redundancy is restored.
func (ad *Admin) ReplaceDevice(dev int) error {
	return ad.run(JobReplace, JobParams{Device: dev})
}

// ReplaceDevicePaced is ReplaceDevice with the rebuild throttled:
// stripesPerStep stripes dissolve per step with stepGapNanos of virtual
// idle between steps — the rebuild-rate versus foreground-latency knob.
func (ad *Admin) ReplaceDevicePaced(dev, stripesPerStep int, stepGapNanos int64) error {
	return ad.run(JobReplace, JobParams{
		Device: dev, StripesPerStep: stripesPerStep, StepGapNanos: stepGapNanos,
	})
}

// Scrub reads the whole array in paced steps (blocksPerStep blocks per
// read, gapNanos of virtual idle between reads), driving the simulation
// to completion; unreadable ranges fail the job.
func (ad *Admin) Scrub(blocksPerStep int, gapNanos int64) error {
	return ad.run(JobScrub, JobParams{BlocksPerStep: blocksPerStep, GapNanos: gapNanos})
}

// ResizeVolume grows or shrinks a named volume in place via a job;
// growth requires free space directly after the volume's range.
func (ad *Admin) ResizeVolume(name string, newBlocks int64) error {
	return ad.run(JobVolumeResize, JobParams{Volume: name, NewBlocks: newBlocks})
}

// DeleteVolume deletes a quiescent named volume via a job, trimming and
// reclaiming its LBA range.
func (ad *Admin) DeleteVolume(name string) error {
	return ad.run(JobVolumeDelete, JobParams{Volume: name})
}
