module biza

go 1.22
