// Fileserver: run the filebench-like fileserver personality on a
// log-structured filesystem over BIZA and over mdraid+dmzap, and compare
// throughput and endurance — a miniature of the paper's Fig. 13a.
package main

import (
	"fmt"
	"log"

	"biza"
	"biza/internal/lsfs"
)

func run(kind biza.Kind) (opsPerSec, waFactor float64) {
	arr, err := biza.New(biza.Options{Kind: kind, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := arr.NewFS()
	if err != nil {
		log.Fatal(err)
	}
	pers := *lsfs.PersonalityByName("fileserver")
	res, err := pers.Run(arr.Engine(), fs, 16, 4000, 5)
	if err != nil {
		log.Fatal(err)
	}
	if res.Errors > 0 {
		log.Fatalf("%s: %d errors", kind, res.Errors)
	}
	wa := arr.WriteAmp()
	return res.OpsPerSec(), wa.Factor()
}

func main() {
	bizaOps, bizaWA := run(biza.BIZA)
	mdOps, mdWA := run(biza.MdraidDmzap)
	fmt.Printf("%-14s %12s %10s\n", "platform", "ops/s", "write-amp")
	fmt.Printf("%-14s %12.0f %10.3f\n", "BIZA", bizaOps, bizaWA)
	fmt.Printf("%-14s %12.0f %10.3f\n", "mdraid+dmzap", mdOps, mdWA)
	fmt.Printf("\nBIZA: %.2fx throughput, %.1f%% less flash wear\n",
		bizaOps/mdOps, (mdWA-bizaWA)/mdWA*100)
}
