// Crash recovery and fault injection through the public API: write through
// a BIZA array, cut power (in-flight commands die, unacknowledged buffers
// drop), recover from the per-block OOB records (§4.1), then kill a member
// with a declarative fault rule and watch degraded reads, auto-replacement,
// and rebuild restore full redundancy. Exits non-zero on any mismatch.
package main

import (
	"bytes"
	"fmt"
	"log"

	"biza"
)

func pattern(lba int64) []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = byte(lba) ^ byte(i*13)
	}
	return b
}

func main() {
	// A fault plan compiled from the seed: member 1 dies 5 ms (virtual)
	// in; AutoReplace hot-swaps a spare and rebuilds without operator
	// intervention.
	arr, err := biza.New(biza.Options{
		StoreData:   true,
		Seed:        42,
		AutoReplace: true,
		Faults: &biza.FaultSpec{Rules: []biza.FaultRule{
			biza.KillDevice(1, 5_000_000),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	lbas := []int64{0, 7, 512, 4095, 77, 7, 7} // includes hot rewrites of 7
	fmt.Println("writing data set...")
	for _, lba := range lbas {
		if err := arr.WriteSync(lba, 1, pattern(lba)); err != nil {
			log.Fatalf("write %d: %v", lba, err)
		}
	}

	fmt.Println("CRASH: power loss — host state gone, queues dead")
	if err := arr.Crash(); err != nil {
		log.Fatal(err)
	}
	if _, err := arr.ReadSync(0, 1); err == nil {
		log.Fatal("crashed array served a read")
	}
	if err := arr.Recover(); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Printf("recovered at %.2f ms of virtual time\n", float64(arr.Now())/1e6)

	verify := func(lba int64, note string) {
		got, err := arr.ReadSync(lba, 1)
		if err != nil {
			log.Fatalf("read %d %s: %v", lba, note, err)
		}
		if !bytes.Equal(got, pattern(lba)) {
			log.Fatalf("block %d corrupted %s", lba, note)
		}
		fmt.Printf("  block %-5d OK %s\n", lba, note)
	}
	for _, lba := range []int64{0, 7, 512, 4095, 77} {
		verify(lba, "after recovery")
	}

	// Run past the scheduled member death: the array detects it from
	// completion errors, serves reads via parity reconstruction, and the
	// auto-replaced spare rebuilds redundancy.
	fmt.Println("running into the scheduled death of member 1...")
	arr.RunFor(10_000_000)
	arr.Run()
	for i, s := range arr.Health() {
		fmt.Printf("  member %d: %v\n", i, s)
		if s != biza.MemberHealthy {
			log.Fatalf("member %d not rebuilt: %v", i, s)
		}
	}
	for _, lba := range []int64{0, 7, 512, 4095, 77} {
		verify(lba, "after rebuild")
	}
	fmt.Printf("reconstructed chunk reads: %d\n", arr.Reconstructions())

	// The array remains fully fault tolerant: fail any one member.
	for dev := 0; dev < 4; dev++ {
		if err := arr.SetDeviceFailed(dev, true); err != nil {
			log.Fatal(err)
		}
		verify(512, fmt.Sprintf("with member %d failed", dev))
		arr.SetDeviceFailed(dev, false)
	}

	if err := arr.WriteSync(1000, 1, pattern(1000)); err != nil {
		log.Fatalf("post-recovery write failed: %v", err)
	}
	fmt.Println("post-recovery write OK — array fully operational")
}
