// Crash recovery: write through a BIZA array, "crash" the host (discard
// every host-side mapping table), rebuild the engine from the per-block
// OOB records on the devices (§4.1), and verify all acknowledged data is
// intact and the array keeps working.
package main

import (
	"bytes"
	"fmt"
	"log"

	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/zns"
)

func pattern(lba int64) []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = byte(lba) ^ byte(i*13)
	}
	return b
}

func main() {
	// Build the array from explicit pieces so the devices survive the
	// "crash" while the host engine does not.
	zcfg := stack.BenchZNS(64)
	zcfg.ZoneBlocks = 1024
	zcfg.ZRWABlocks = 128
	zcfg.StoreData = true
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	for i := 0; i < 4; i++ {
		dc := zcfg
		dc.Seed = uint64(i)
		d, err := zns.New(eng, dc)
		if err != nil {
			log.Fatal(err)
		}
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond, Seed: uint64(i) + 9,
		}))
	}
	ccfg := core.DefaultConfig(zcfg.NumZones)
	arr, err := core.New(queues, ccfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	lbas := []int64{0, 7, 512, 4095, 77, 7, 7} // includes hot rewrites of 7
	fmt.Println("writing data set...")
	acked := 0
	for _, lba := range lbas {
		arr.Write(lba, 1, pattern(lba), func(r blockdev.WriteResult) {
			if r.Err != nil {
				log.Fatalf("write: %v", r.Err)
			}
			acked++
		})
	}
	eng.Run()
	fmt.Printf("%d writes acknowledged\n", acked)

	fmt.Println("CRASH: discarding all host state (BMT, SMT, zone views)")
	arr = nil

	var recovered *core.Core
	core.Recover(queues, ccfg, nil, func(c *core.Core, err error) {
		if err != nil {
			log.Fatalf("recovery failed: %v", err)
		}
		recovered = c
	})
	eng.Run()
	fmt.Printf("recovered at %.2f ms of virtual time\n", float64(eng.Now())/1e6)

	verify := func(lba int64) {
		var got []byte
		var rerr error
		recovered.Read(lba, 1, func(r blockdev.ReadResult) { got, rerr = r.Data, r.Err })
		eng.Run()
		if rerr != nil {
			log.Fatalf("read %d after recovery: %v", lba, rerr)
		}
		if !bytes.Equal(got, pattern(lba)) {
			log.Fatalf("block %d corrupted after recovery", lba)
		}
		fmt.Printf("  block %-5d OK\n", lba)
	}
	for _, lba := range []int64{0, 7, 512, 4095, 77} {
		verify(lba)
	}

	// The recovered array accepts new writes.
	ok := false
	recovered.Write(1000, 1, pattern(1000), func(r blockdev.WriteResult) { ok = r.Err == nil })
	eng.Run()
	if !ok {
		log.Fatal("post-recovery write failed")
	}
	fmt.Println("post-recovery write OK — array fully operational")
}
