// KV store: run db_bench-like fill workloads on an LSM store over a
// log-structured filesystem over BIZA — the paper's Fig. 13b stack — and
// print rates plus LSM-level write volumes.
package main

import (
	"fmt"
	"log"

	"biza"
	"biza/internal/kvstore"
)

func main() {
	for _, name := range []string{"fillseq", "fillrandom", "fillseekseq"} {
		arr, err := biza.New(biza.Options{Seed: 33})
		if err != nil {
			log.Fatal(err)
		}
		fs, err := arr.NewFS()
		if err != nil {
			log.Fatal(err)
		}
		db, err := arr.OpenKV(fs)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := kvstore.DefaultBench(name, 3000)
		if err != nil {
			log.Fatal(err)
		}
		res := kvstore.RunBench(arr.Engine(), db, spec)
		_, _, flushes, compactions := db.Stats()
		flushed, compacted := db.WriteAmpBytes()
		fmt.Printf("%-12s %9.0f ops/s  errors=%d  flushes=%d compactions=%d  flushed=%dMB compacted=%dMB\n",
			name, res.OpsPerSec(), res.Errors, flushes, compactions,
			flushed>>20, compacted>>20)
		if res.Errors > 0 {
			log.Fatalf("%s: %d operations failed", name, res.Errors)
		}
	}
}
