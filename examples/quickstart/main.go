// Quickstart: build a 4-SSD BIZA array, write and read through the block
// interface, and inspect the endurance counters that motivate the design.
package main

import (
	"fmt"
	"log"

	"biza"
)

func main() {
	// A BIZA array over four simulated ZN540-class ZNS SSDs (RAID 5).
	arr, err := biza.New(biza.Options{StoreData: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %s, %d x 4 KiB blocks (%.1f GiB usable)\n",
		arr.Kind(), arr.Blocks(), float64(arr.Blocks())*4096/(1<<30))

	// Random block writes — the interface compatibility the paper is
	// about: no sequential-write constraint reaches the caller.
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = 0x5a
	}
	for _, lba := range []int64{7, 99999, 12, 7, 7, 7} { // note the hot block
		if err := arr.WriteSync(lba, 1, payload); err != nil {
			log.Fatalf("write %d: %v", lba, err)
		}
	}
	got, err := arr.ReadSync(7, 1)
	if err != nil || got[0] != 0x5a {
		log.Fatalf("read back: %v", err)
	}

	// The repeated writes to block 7 were absorbed in the ZRWA: they
	// never reached flash.
	wa := arr.WriteAmp()
	fmt.Printf("user bytes:     %d\n", wa.UserBytes)
	fmt.Printf("flash data:     %d\n", wa.FlashDataBytes)
	fmt.Printf("flash parity:   %d\n", wa.FlashParityBytes)
	fmt.Printf("zrwa absorbed:  %d bytes\n", arr.AbsorbedBytes())
	fmt.Printf("virtual time:   %.2f ms\n", float64(arr.Now())/1e6)
}
