// RAID 6: build a 5-SSD dual-parity BIZA array, fail two members, and
// read everything back through Reed-Solomon reconstruction — the paper's
// "our designs can also be applied to other RAID levels" claim, live.
package main

import (
	"bytes"
	"fmt"
	"log"

	"biza"
	"biza/internal/core"
)

func main() {
	engCfg := core.DefaultConfig(128)
	engCfg.Parity = 2
	arr, err := biza.New(biza.Options{
		Members:   5,
		Engine:    &engCfg,
		StoreData: true,
		Seed:      6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAID 6 array: 5 members, m=2, %.1f GiB usable\n",
		float64(arr.Blocks())*4096/(1<<30))

	pattern := func(lba int64) []byte {
		b := make([]byte, 4096)
		for i := range b {
			b[i] = byte(lba*7) ^ byte(i)
		}
		return b
	}
	const blocks = 64
	for lba := int64(0); lba < blocks; lba++ {
		if err := arr.WriteSync(lba, 1, pattern(lba)); err != nil {
			log.Fatalf("write %d: %v", lba, err)
		}
	}

	fmt.Println("failing members 1 and 3 simultaneously...")
	arr.SetDeviceFailed(1, true)
	arr.SetDeviceFailed(3, true)
	for lba := int64(0); lba < blocks; lba++ {
		got, err := arr.ReadSync(lba, 1)
		if err != nil {
			log.Fatalf("degraded read %d: %v", lba, err)
		}
		if !bytes.Equal(got, pattern(lba)) {
			log.Fatalf("block %d corrupted under double failure", lba)
		}
	}
	fmt.Printf("all %d blocks reconstructed under double failure\n", blocks)
	arr.SetDeviceFailed(1, false)
	arr.SetDeviceFailed(3, false)
	arr.Flush()
	wa := arr.WriteAmp()
	fmt.Printf("write amp: %.2f (data %.2f + parity %.2f)\n",
		wa.Factor(), wa.DataFactor(), wa.ParityFactor())
}
