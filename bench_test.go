package biza

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each iteration regenerates the artifact at a reduced scale and
// reports headline values as custom metrics, so `go test -bench=.` gives a
// quick health check of every experiment; cmd/bizabench runs the full
// scale used for EXPERIMENTS.md.

import (
	"strconv"
	"strings"
	"testing"

	"biza/internal/bench"
)

func benchScale() bench.Scale {
	s := bench.QuickScale()
	s.TraceOps = 6000
	return s
}

// cell parses a numeric cell, tolerating the "a(b+c)" composite format.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	if i := strings.IndexByte(s, '('); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func runExp(b *testing.B, id string) []*bench.Table {
	b.Helper()
	e, ok := bench.Experiments[id]
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var tabs []*bench.Table
	for i := 0; i < b.N; i++ {
		tabs = e.Tables(benchScale(), bench.NewRun(bench.DefaultSeed, id))
	}
	return tabs
}

func BenchmarkTable2Presets(b *testing.B) {
	tabs := runExp(b, "table2")
	if len(tabs[0].Rows) != 4 {
		b.Fatal("table2 incomplete")
	}
}

func BenchmarkTable3ZonePlacement(b *testing.B) {
	tabs := runExp(b, "table3")
	rows := tabs[0].Rows
	b.ReportMetric(cell(b, rows[0][1]), "single_MBps")
	b.ReportMetric(cell(b, rows[1][1]), "samechan_MBps")
	b.ReportMetric(cell(b, rows[2][1]), "diffchan_MBps")
}

func BenchmarkTable6Workloads(b *testing.B) {
	tabs := runExp(b, "table6")
	if len(tabs[0].Rows) != 10 {
		b.Fatal("table6 incomplete")
	}
}

func BenchmarkFig4ReuseDistanceCDF(b *testing.B) {
	tabs := runExp(b, "fig4")
	// Report the CDF at 14 MB (the paper's ~17% anchor).
	for _, r := range tabs[0].Rows {
		if r[0] == "14MB" {
			b.ReportMetric(cell(b, r[1]), "cdf_at_14MB")
		}
	}
}

func BenchmarkFig5IntraZone(b *testing.B) {
	tabs := runExp(b, "fig5")
	// Retained fraction at 64 KiB.
	for _, r := range tabs[0].Rows {
		if r[0] == "64" {
			b.ReportMetric(cell(b, r[3]), "depth1_retained")
		}
	}
}

func BenchmarkFig10Write(b *testing.B) {
	tabs := runExp(b, "fig10")
	rows := tabs[0].Rows
	biza := cell(b, rows[0][2])
	dzr := cell(b, rows[1][2])
	b.ReportMetric(biza, "BIZA_seq64K_MBps")
	b.ReportMetric(dzr, "dmzapRAIZN_seq64K_MBps")
	if dzr > 0 {
		b.ReportMetric(biza/dzr, "speedup_x")
	}
}

func BenchmarkFig11Read(b *testing.B) {
	tabs := runExp(b, "fig11")
	b.ReportMetric(cell(b, tabs[0].Rows[0][2]), "BIZA_seqread64K_MBps")
}

func BenchmarkFig12Traces(b *testing.B) {
	tabs := runExp(b, "fig12")
	// casa row: BIZA vs dmzap+RAIZN.
	r := tabs[0].Rows[0]
	b.ReportMetric(cell(b, r[1]), "BIZA_casa_MBps")
	b.ReportMetric(cell(b, r[2]), "dmzapRAIZN_casa_MBps")
}

func BenchmarkFig13Filebench(b *testing.B) {
	tabs := runExp(b, "fig13a")
	b.ReportMetric(cell(b, tabs[0].Rows[0][5]), "randomwrite_speedup_x")
}

func BenchmarkFig13DBBench(b *testing.B) {
	tabs := runExp(b, "fig13b")
	b.ReportMetric(cell(b, tabs[0].Rows[0][5]), "fillseq_speedup_x")
}

func BenchmarkFig14WriteAmp(b *testing.B) {
	tabs := runExp(b, "fig14")
	r := tabs[0].Rows[0] // casa
	biza := cell(b, r[1])
	mdz := cell(b, r[4])
	b.ReportMetric(biza, "BIZA_casa_WA")
	b.ReportMetric(mdz, "mdraidDmzap_casa_WA")
	if biza > 0 {
		b.ReportMetric((mdz-biza)/mdz*100, "reduction_pct")
	}
}

func BenchmarkFig15GCTail(b *testing.B) {
	tabs := runExp(b, "fig15")
	// BIZA vs BIZAw/oAvoid p99.99 at depth 1, 64 KiB.
	var bz, noavoid float64
	for _, r := range tabs[0].Rows {
		if r[1] == "1" && r[2] == "64" {
			switch r[0] {
			case "BIZA":
				bz = cell(b, r[4])
			case "BIZAw/oAvoid":
				noavoid = cell(b, r[4])
			}
		}
	}
	b.ReportMetric(bz, "BIZA_p9999_us")
	b.ReportMetric(noavoid, "noAvoid_p9999_us")
}

func BenchmarkFig16ZRWASweep(b *testing.B) {
	tabs := runExp(b, "fig16")
	rows := tabs[0].Rows
	small := cell(b, rows[0][1]) + cell(b, rows[0][2])                     // 4 KiB ZRWA, casa
	large := cell(b, rows[len(rows)-1][1]) + cell(b, rows[len(rows)-1][2]) // 1 MiB
	b.ReportMetric(small, "casa_writes_zrwa4K")
	b.ReportMetric(large, "casa_writes_zrwa1M")
}

func BenchmarkFig17CPU(b *testing.B) {
	tabs := runExp(b, "fig17")
	for _, r := range tabs[0].Rows {
		if r[0] == "dmzap+RAIZN" && r[1] == "64" {
			b.ReportMetric(cell(b, r[3]), "dmzap_cpu_pct")
		}
		if r[0] == "BIZA" && r[1] == "64" {
			b.ReportMetric(cell(b, r[8]), "BIZA_cpu_per_GBps")
		}
	}
}

// BenchmarkAblationChannelDetect measures the §4.3 detector on aged
// (shuffled-mapping) devices: corrections should accumulate.
func BenchmarkAblationChannelDetect(b *testing.B) {
	var corrections uint64
	for i := 0; i < b.N; i++ {
		corrections = detectorCorrections()
	}
	b.ReportMetric(float64(corrections), "corrections")
}
