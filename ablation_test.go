package biza

// Ablation helpers exercised by the root benchmarks: they drive the
// design-choice toggles DESIGN.md calls out (channel detection under
// shuffled mappings).

import (
	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/sim"
	"biza/internal/stack"
)

// detectorCorrections churns a BIZA array built on aged devices (half the
// zones remapped away from round-robin) until GC runs, and reports how
// many zone-channel guesses the vote-based detector fixed.
func detectorCorrections() uint64 {
	z := stack.BenchZNS(48)
	z.ZoneBlocks = 512
	z.ZRWABlocks = 64
	z.ShuffleFraction = 0.5
	ccfg := core.DefaultConfig(z.NumZones)
	p, err := stack.New(stack.KindBIZA, stack.Options{ZNS: z, BIZAConfig: &ccfg, Seed: 31})
	if err != nil {
		panic(err)
	}
	rng := sim.NewRNG(7)
	span := p.Dev.Blocks() / 2
	outstanding := 0
	for i := 0; i < int(span)*5; i++ {
		outstanding++
		p.Dev.Write(rng.Int63n(span), 1, nil, func(blockdev.WriteResult) { outstanding-- })
		if outstanding >= 32 {
			p.Eng.Run()
		}
	}
	p.Eng.Run()
	return p.BIZA.DetectCorrections()
}
