// Package biza is a research-grade reimplementation of BIZA (SOSP '24): a
// self-governing block-interface all-flash array over ZNS SSDs, together
// with the baselines the paper evaluates against (RAIZN, dm-zap, mdraid,
// conventional SSDs) on a deterministic discrete-event-simulated storage
// substrate.
//
// Everything runs in virtual time: an Array owns a simulation engine, and
// asynchronous operations complete as the engine runs. The synchronous
// helpers (WriteSync, ReadSync) drive the engine for you:
//
//	arr, _ := biza.New(biza.Options{})
//	if err := arr.WriteSync(0, 8, payload); err != nil { ... }
//	data, _ := arr.ReadSync(0, 8)
//	fmt.Println(arr.WriteAmp())
//
// The internal packages implement the paper's full system inventory — the
// ZNS SSD simulator with ZRWA and hidden channel mappings, the sliding
// window scheduler, the ghost-cache zone-group selector, the
// guess-and-verify channel detector, host GC with BUSY-channel avoidance,
// OOB crash recovery — plus every baseline and the complete §5 experiment
// harness (see internal/bench and cmd/bizabench).
package biza

import (
	"errors"

	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/ftl"
	"biza/internal/kvstore"
	"biza/internal/lsfs"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/zns"
)

// Kind selects a platform implementation.
type Kind = stack.Kind

// Platform kinds.
const (
	// BIZA is the paper's engine with all mechanisms enabled.
	BIZA = stack.KindBIZA
	// BIZANoSelector disables the §4.2 zone group selector (ablation).
	BIZANoSelector = stack.KindBIZANoSel
	// BIZANoAvoid disables the §4.3 GC avoidance (ablation).
	BIZANoAvoid = stack.KindBIZANoAvoid
	// DmzapRAIZN stacks the dm-zap adapter on the RAIZN array.
	DmzapRAIZN = stack.KindDmzapRAIZN
	// MdraidDmzap runs mdraid over per-SSD dm-zap adapters.
	MdraidDmzap = stack.KindMdraidDmzap
	// MdraidConvSSD runs mdraid over conventional (FTL) SSDs.
	MdraidConvSSD = stack.KindMdraidConvSSD
	// RAIZN exposes the raw zoned array through a sequential-only shim.
	RAIZN = stack.KindRAIZN
)

// Options configures an Array.
type Options struct {
	// Kind selects the platform; zero value builds BIZA.
	Kind Kind
	// Members is the SSD count (default 4, the paper's RAID 5 testbed).
	Members int
	// ZNS overrides the member geometry; zero value uses a scaled ZN540.
	ZNS zns.Config
	// FTL overrides conventional-SSD geometry for MdraidConvSSD.
	FTL ftl.Config
	// Engine overrides the BIZA engine configuration.
	Engine *core.Config
	// StoreData retains payloads for read-back (costs host memory).
	StoreData bool
	// Seed makes every stochastic element reproducible.
	Seed uint64
}

// WriteAmp re-exports the endurance accounting type.
type WriteAmp = metrics.WriteAmp

// Array is a block-interface all-flash array in a private simulation.
type Array struct {
	p *stack.Platform
}

// New builds an array.
func New(opts Options) (*Array, error) {
	kind := opts.Kind
	if kind == "" {
		kind = BIZA
	}
	sopts := stack.Options{
		Members:    opts.Members,
		ZNS:        opts.ZNS,
		FTL:        opts.FTL,
		Seed:       opts.Seed,
		BIZAConfig: opts.Engine,
	}
	if opts.StoreData {
		if sopts.ZNS.NumZones == 0 {
			sopts.ZNS = stack.BenchZNS(128)
		}
		sopts.ZNS.StoreData = true
		if sopts.FTL.FlashBlocks == 0 {
			sopts.FTL = stack.BenchFTL(2048)
		}
		sopts.FTL.StoreData = true
	}
	p, err := stack.New(kind, sopts)
	if err != nil {
		return nil, err
	}
	return &Array{p: p}, nil
}

// Kind reports the platform kind.
func (a *Array) Kind() Kind { return a.p.Kind }

// BlockSize reports the logical block size in bytes.
func (a *Array) BlockSize() int { return a.p.Dev.BlockSize() }

// Blocks reports user capacity in blocks.
func (a *Array) Blocks() int64 { return a.p.Dev.Blocks() }

// Device exposes the asynchronous block interface for event-driven use.
func (a *Array) Device() blockdev.Device { return a.p.Dev }

// Run drains all pending simulation events.
func (a *Array) Run() { a.p.Eng.Run() }

// RunFor advances virtual time by d nanoseconds.
func (a *Array) RunFor(d int64) { a.p.Eng.RunUntil(a.p.Eng.Now() + d) }

// Now reports the current virtual time in nanoseconds.
func (a *Array) Now() int64 { return a.p.Eng.Now() }

// ErrIncomplete reports an operation that did not finish when the event
// queue drained (internal deadlock — please report).
var ErrIncomplete = errors.New("biza: operation did not complete")

// WriteSync writes nblocks at lba and drives the simulation until the
// write completes. data may be nil (traffic without payload) or hold
// nblocks*BlockSize bytes.
func (a *Array) WriteSync(lba int64, nblocks int, data []byte) error {
	var res blockdev.WriteResult
	ok := false
	a.p.Dev.Write(lba, nblocks, data, func(r blockdev.WriteResult) { res = r; ok = true })
	a.p.Eng.Run()
	if !ok {
		return ErrIncomplete
	}
	return res.Err
}

// ReadSync reads nblocks at lba, driving the simulation to completion.
// The returned payload is nil unless the array stores data.
func (a *Array) ReadSync(lba int64, nblocks int) ([]byte, error) {
	var res blockdev.ReadResult
	ok := false
	a.p.Dev.Read(lba, nblocks, func(r blockdev.ReadResult) { res = r; ok = true })
	a.p.Eng.Run()
	if !ok {
		return nil, ErrIncomplete
	}
	return res.Data, res.Err
}

// Trim declares a range dead.
func (a *Array) Trim(lba int64, nblocks int) { a.p.Dev.Trim(lba, nblocks) }

// Flush commits device write buffers (ZRWA / caches) so endurance
// counters reflect every acknowledged byte.
func (a *Array) Flush() { a.p.Flush() }

// WriteAmp reports flash-level write amplification: user bytes versus
// bytes physically programmed on the member devices.
func (a *Array) WriteAmp() WriteAmp { return a.p.FlashWriteAmp() }

// AbsorbedBytes reports overwrites absorbed in device write buffers
// (ZRWA) without reaching flash.
func (a *Array) AbsorbedBytes() uint64 { return a.p.AbsorbedBytes() }

// GCEvents reports host garbage collections (BIZA kinds only).
func (a *Array) GCEvents() uint64 {
	if a.p.BIZA == nil {
		return 0
	}
	return a.p.BIZA.GCEvents()
}

// SetDeviceFailed toggles a member failure for degraded-mode reads (BIZA
// kinds only).
func (a *Array) SetDeviceFailed(dev int, failed bool) error {
	if a.p.BIZA == nil {
		return errors.New("biza: degraded mode requires a BIZA platform")
	}
	return a.p.BIZA.SetDeviceFailed(dev, failed)
}

// ReplaceDevice hot-swaps a failed member with a fresh device and
// rebuilds redundancy, driving the simulation to completion (BIZA kinds
// only).
func (a *Array) ReplaceDevice(dev int) error {
	var rerr error
	ok := false
	a.p.ReplaceDevice(dev, func(err error) { rerr = err; ok = true })
	a.p.Eng.Run()
	if !ok {
		return ErrIncomplete
	}
	return rerr
}

// NewFS formats a log-structured (F2FS-like) filesystem on the array.
func (a *Array) NewFS() (*lsfs.FS, error) {
	return lsfs.New(a.p.Eng, a.p.Dev, lsfs.DefaultConfig())
}

// OpenKV opens an LSM key-value store on a filesystem from NewFS.
func (a *Array) OpenKV(fs *lsfs.FS) (*kvstore.DB, error) {
	return kvstore.Open(a.p.Eng, fs, kvstore.DefaultConfig())
}

// Engine exposes the simulation engine for advanced event-driven callers.
func (a *Array) Engine() *sim.Engine { return a.p.Eng }

// Platform exposes the underlying assembly (devices, accounting) for
// experiment harnesses.
func (a *Array) Platform() *stack.Platform { return a.p }
