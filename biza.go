// Package biza is a research-grade reimplementation of BIZA (SOSP '24): a
// self-governing block-interface all-flash array over ZNS SSDs, together
// with the baselines the paper evaluates against (RAIZN, dm-zap, mdraid,
// conventional SSDs) on a deterministic discrete-event-simulated storage
// substrate.
//
// Everything runs in virtual time: an Array owns a simulation engine, and
// asynchronous operations complete as the engine runs. The synchronous
// helpers (WriteSync, ReadSync) drive the engine for you:
//
//	arr, _ := biza.New(biza.Options{})
//	if err := arr.WriteSync(0, 8, payload); err != nil { ... }
//	data, _ := arr.ReadSync(0, 8)
//	fmt.Println(arr.WriteAmp())
//
// The internal packages implement the paper's full system inventory — the
// ZNS SSD simulator with ZRWA and hidden channel mappings, the sliding
// window scheduler, the ghost-cache zone-group selector, the
// guess-and-verify channel detector, host GC with BUSY-channel avoidance,
// OOB crash recovery — plus every baseline and the complete §5 experiment
// harness (see internal/bench and cmd/bizabench).
package biza

import (
	"errors"

	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/fault"
	"biza/internal/ftl"
	"biza/internal/kvstore"
	"biza/internal/lsfs"
	"biza/internal/metrics"
	"biza/internal/ops"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/storerr"
	"biza/internal/volume"
	"biza/internal/zns"
)

// Kind selects a platform implementation.
type Kind = stack.Kind

// Platform kinds.
const (
	// BIZA is the paper's engine with all mechanisms enabled.
	BIZA = stack.KindBIZA
	// BIZANoSelector disables the §4.2 zone group selector (ablation).
	BIZANoSelector = stack.KindBIZANoSel
	// BIZANoAvoid disables the §4.3 GC avoidance (ablation).
	BIZANoAvoid = stack.KindBIZANoAvoid
	// DmzapRAIZN stacks the dm-zap adapter on the RAIZN array.
	DmzapRAIZN = stack.KindDmzapRAIZN
	// MdraidDmzap runs mdraid over per-SSD dm-zap adapters.
	MdraidDmzap = stack.KindMdraidDmzap
	// MdraidConvSSD runs mdraid over conventional (FTL) SSDs.
	MdraidConvSSD = stack.KindMdraidConvSSD
	// RAIZN exposes the raw zoned array through a sequential-only shim.
	RAIZN = stack.KindRAIZN
)

// Options configures an Array.
type Options struct {
	// Kind selects the platform; zero value builds BIZA.
	Kind Kind
	// Members is the SSD count (default 4, the paper's RAID 5 testbed).
	Members int
	// ZNS overrides the member geometry; zero value uses a scaled ZN540.
	ZNS zns.Config
	// FTL overrides conventional-SSD geometry for MdraidConvSSD.
	FTL ftl.Config
	// Engine overrides the BIZA engine configuration.
	Engine *core.Config
	// StoreData retains payloads for read-back (costs host memory).
	StoreData bool
	// Seed makes every stochastic element reproducible.
	Seed uint64
	// Faults declares a deterministic fault-injection plan, compiled from
	// Seed and interposed on every member driver queue. See FaultSpec.
	Faults *FaultSpec
	// AutoReplace hot-swaps a fresh spare as soon as a member is declared
	// dead (BIZA kinds only).
	AutoReplace bool
}

// FaultSpec declares a deterministic fault-injection plan: an ordered list
// of rules (transient errors, latency spikes, unreadable blocks, device
// death, power loss) whose randomness derives entirely from Options.Seed.
type FaultSpec = fault.Spec

// FaultRule is one declarative failure rule of a FaultSpec.
type FaultRule = fault.Rule

// FaultKind discriminates fault rules.
type FaultKind = fault.Kind

// Fault kinds.
const (
	FaultTransient   = fault.Transient
	FaultLatency     = fault.Latency
	FaultUnreadable  = fault.Unreadable
	FaultDeviceDeath = fault.DeviceDeath
	FaultPowerLoss   = fault.PowerLoss
)

// FaultOp scopes a fault rule to a command class.
type FaultOp = fault.Op

// Fault command classes (appends count as writes).
const (
	FaultAnyOp = fault.AnyOp
	FaultRead  = fault.Read
	FaultWrite = fault.Write
	FaultReset = fault.Reset
)

// KillDevice returns a rule that kills member dev at virtual time at (ns).
func KillDevice(dev int, at int64) FaultRule { return fault.KillDevice(dev, sim.Time(at)) }

// PowerCut returns a rule that cuts platform power at virtual time at
// (ns); the stack crashes and recovers automatically.
func PowerCut(at int64) FaultRule { return fault.PowerCut(sim.Time(at)) }

// TransientErrors returns a rule failing a fraction rate of dev's
// commands of class op with a retryable error (dev -1 = all members).
func TransientErrors(dev int, op FaultOp, rate float64) FaultRule {
	return fault.TransientErrors(dev, op, rate)
}

// BadBlocks returns a rule making a block range of one zone permanently
// unreadable; the array serves those reads via parity reconstruction.
func BadBlocks(dev, zone int, lba int64, blocks int) FaultRule {
	return fault.BadBlocks(dev, zone, lba, blocks)
}

// MemberState is the health of one array member.
type MemberState = core.MemberState

// Member states.
const (
	MemberHealthy    = core.MemberHealthy
	MemberDegraded   = core.MemberDegraded
	MemberRebuilding = core.MemberRebuilding
)

// WriteAmp re-exports the endurance accounting type.
type WriteAmp = metrics.WriteAmp

// Array is a block-interface all-flash array in a private simulation.
type Array struct {
	p   *stack.Platform
	vm  *volume.Manager
	adm *Admin
}

// New builds an array.
func New(opts Options) (*Array, error) {
	kind := opts.Kind
	if kind == "" {
		kind = BIZA
	}
	sopts := stack.Options{
		Members:     opts.Members,
		ZNS:         opts.ZNS,
		FTL:         opts.FTL,
		Seed:        opts.Seed,
		BIZAConfig:  opts.Engine,
		Faults:      opts.Faults,
		AutoReplace: opts.AutoReplace,
	}
	if opts.StoreData {
		if sopts.ZNS.NumZones == 0 {
			sopts.ZNS = stack.BenchZNS(128)
		}
		sopts.ZNS.StoreData = true
		if sopts.FTL.FlashBlocks == 0 {
			sopts.FTL = stack.BenchFTL(2048)
		}
		sopts.FTL.StoreData = true
	}
	p, err := stack.New(kind, sopts)
	if err != nil {
		return nil, err
	}
	return &Array{p: p}, nil
}

// Kind reports the platform kind.
func (a *Array) Kind() Kind { return a.p.Kind }

// BlockSize reports the logical block size in bytes.
func (a *Array) BlockSize() int { return a.p.Dev.BlockSize() }

// Blocks reports user capacity in blocks.
func (a *Array) Blocks() int64 { return a.p.Dev.Blocks() }

// Device exposes the asynchronous block interface for event-driven use.
func (a *Array) Device() blockdev.Device { return a.p.Dev }

// Run drains all pending simulation events.
func (a *Array) Run() { a.p.Eng.Run() }

// RunFor advances virtual time by d nanoseconds.
func (a *Array) RunFor(d int64) { a.p.Eng.RunUntil(a.p.Eng.Now() + d) }

// Now reports the current virtual time in nanoseconds.
func (a *Array) Now() int64 { return a.p.Eng.Now() }

// ErrIncomplete reports an operation that did not finish when the event
// queue drained (internal deadlock — please report).
var ErrIncomplete = errors.New("biza: operation did not complete")

// ErrCrashed reports I/O submitted between Crash and a successful
// Recover.
var ErrCrashed = storerr.ErrCrashed

// WriteSync writes nblocks at lba and drives the simulation until the
// write completes. data may be nil (traffic without payload) or hold
// nblocks*BlockSize bytes.
func (a *Array) WriteSync(lba int64, nblocks int, data []byte) error {
	if a.p.Crashed() {
		return ErrCrashed
	}
	var res blockdev.WriteResult
	ok := false
	a.p.Dev.Write(lba, nblocks, data, func(r blockdev.WriteResult) { res = r; ok = true })
	a.p.Eng.Run()
	if !ok {
		return ErrIncomplete
	}
	return res.Err
}

// ReadSync reads nblocks at lba, driving the simulation to completion.
// The returned payload is nil unless the array stores data.
func (a *Array) ReadSync(lba int64, nblocks int) ([]byte, error) {
	if a.p.Crashed() {
		return nil, ErrCrashed
	}
	var res blockdev.ReadResult
	ok := false
	a.p.Dev.Read(lba, nblocks, func(r blockdev.ReadResult) { res = r; ok = true })
	a.p.Eng.Run()
	if !ok {
		return nil, ErrIncomplete
	}
	return res.Data, res.Err
}

// Trim declares a range dead.
func (a *Array) Trim(lba int64, nblocks int) { a.p.Dev.Trim(lba, nblocks) }

// Flush commits device write buffers (ZRWA / caches) so endurance
// counters reflect every acknowledged byte.
func (a *Array) Flush() { a.p.Flush() }

// WriteAmp reports flash-level write amplification: user bytes versus
// bytes physically programmed on the member devices.
func (a *Array) WriteAmp() WriteAmp { return a.p.FlashWriteAmp() }

// AbsorbedBytes reports overwrites absorbed in device write buffers
// (ZRWA) without reaching flash.
func (a *Array) AbsorbedBytes() uint64 { return a.p.AbsorbedBytes() }

// GCEvents reports host garbage collections (BIZA kinds only).
func (a *Array) GCEvents() uint64 {
	if a.p.BIZA == nil {
		return 0
	}
	return a.p.BIZA.GCEvents()
}

// SetDeviceFailed toggles a member failure for degraded-mode reads (BIZA
// kinds only). Thin wrapper over an Admin JobSetFailed job; the job
// record (timing, outcome) lands in Admin().Jobs().
func (a *Array) SetDeviceFailed(dev int, failed bool) error {
	return a.Admin().SetDeviceFailed(dev, failed)
}

// ReplaceDevice hot-swaps a failed member with a fresh device and
// rebuilds redundancy, driving the simulation to completion (BIZA kinds
// only). Thin wrapper over an unpaced Admin JobReplace job; use
// Admin().ReplaceDevicePaced to bound the rebuild's foreground impact.
func (a *Array) ReplaceDevice(dev int) error {
	return a.Admin().ReplaceDevice(dev)
}

// Health reports the state of every member (BIZA kinds only; nil
// otherwise). A dead or failed member reads as degraded while its chunks
// are served via parity reconstruction; rebuilding members are mid
// ReplaceDevice.
func (a *Array) Health() []MemberState {
	if a.p.BIZA == nil {
		return nil
	}
	return a.p.BIZA.Health()
}

// Reconstructions reports how many chunk reads were served by parity
// reconstruction instead of the owning member (BIZA kinds only).
func (a *Array) Reconstructions() uint64 {
	if a.p.BIZA == nil {
		return 0
	}
	return a.p.BIZA.Reconstructions()
}

// Crash models a host power loss: in-flight commands die with their
// driver queues and unacknowledged write-buffer contents are dropped
// (acknowledged ZRWA blocks harden, PLP-style). I/O fails with ErrCrashed
// until Recover succeeds. BIZA kinds only. Thin wrapper over an
// immediate Admin JobCrash job — pending simulation events are NOT
// drained first, so in-flight work dies exactly as a real power cut.
func (a *Array) Crash() error { return a.Admin().Crash() }

// Recover restarts a crashed array: fresh driver queues attach to the
// surviving devices and the mapping tables are rebuilt from the per-block
// OOB records, driving the simulation until the scan completes. All
// acknowledged data is readable afterwards. Thin wrapper over an Admin
// JobRecover job.
func (a *Array) Recover() error { return a.Admin().Recover() }

// Volume is a named tenant slice of the array with its own QoS class.
// See internal/volume for the asynchronous API and semantics.
type Volume = volume.Volume

// VolumeOptions configures one tenant volume: capacity plus QoS class.
type VolumeOptions = volume.Options

// VolumeQoS is a tenant service class: WFQ weight, token-bucket rate
// limit, and burst allowance.
type VolumeQoS = volume.QoS

// VolumeManagerConfig parameterizes the array's volume manager (in-flight
// window, QoS bypass).
type VolumeManagerConfig = volume.Config

// ConfigureVolumes sets the volume-manager configuration. It must be
// called before the first OpenVolume; afterwards the manager exists and
// its discipline is fixed.
func (a *Array) ConfigureVolumes(cfg VolumeManagerConfig) error {
	if a.vm != nil {
		return errors.New("biza: volume manager already created")
	}
	a.vm = volume.New(a.p.Eng, a.p.Dev, cfg)
	return nil
}

// OpenVolume carves a named tenant volume out of the array's remaining
// capacity, creating the volume manager with defaults on first use.
// Tenant I/O submitted through the returned Volume is isolated from other
// tenants by weighted-fair queueing and optional rate limiting; see
// VolumeQoS.
func (a *Array) OpenVolume(name string, opts VolumeOptions) (*Volume, error) {
	return a.VolumeManager().Open(name, opts)
}

// VolumeManager returns the array's volume manager, creating it with the
// default configuration on first use.
func (a *Array) VolumeManager() *volume.Manager {
	if a.vm == nil {
		a.vm = volume.New(a.p.Eng, a.p.Dev, volume.Config{})
	}
	return a.vm
}

// NewFS formats a log-structured (F2FS-like) filesystem on the array.
func (a *Array) NewFS() (*lsfs.FS, error) {
	return lsfs.New(a.p.Eng, a.p.Dev, lsfs.DefaultConfig())
}

// OpenKV opens an LSM key-value store on a filesystem from NewFS.
func (a *Array) OpenKV(fs *lsfs.FS) (*kvstore.DB, error) {
	return kvstore.Open(a.p.Eng, fs, kvstore.DefaultConfig())
}

// OpsServer is the embeddable live observability endpoint: it serves
// /metrics (Prometheus exposition), /vars (JSON snapshot), /series
// (virtual-time series), /stream (server-sent events), /healthz,
// /readyz, and /debug/pprof. Producers publish immutable OpsSnapshot
// values; handlers only read published snapshots, so serving never
// perturbs a deterministic simulation. bizabench -serve uses exactly
// this server.
type OpsServer = ops.Server

// OpsSnapshot is one immutable published view served by an OpsServer.
type OpsSnapshot = ops.Snapshot

// NewOpsServer returns a live ops endpoint with an empty (not yet ready)
// snapshot published. Embed its Handler into an existing HTTP server or
// call Start to listen on an address.
func NewOpsServer() *OpsServer { return ops.New() }

// Engine exposes the simulation engine for advanced event-driven callers.
func (a *Array) Engine() *sim.Engine { return a.p.Eng }

// Platform exposes the underlying assembly (devices, accounting) for
// experiment harnesses.
func (a *Array) Platform() *stack.Platform { return a.p }
