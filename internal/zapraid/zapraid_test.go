package zapraid

import (
	"bytes"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func newArray(t *testing.T) (*sim.Engine, *Array, []*zns.Device) {
	t.Helper()
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	var devs []*zns.Device
	for i := 0; i < 4; i++ {
		dc := zns.TestConfig()
		dc.Seed = uint64(i) + 40
		d, err := zns.New(eng, dc)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond, Seed: uint64(i) + 400,
		}))
	}
	a, err := New(queues, DefaultConfig(dc(devs)))
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, devs
}

func dc(devs []*zns.Device) int { return devs[0].Config().NumZones }

func wsync(eng *sim.Engine, a *Array, lba int64, n int, data []byte) blockdev.WriteResult {
	var res blockdev.WriteResult
	ok := false
	a.Write(lba, n, data, func(r blockdev.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("zapraid write hung")
	}
	return res
}

func rsync(eng *sim.Engine, a *Array, lba int64, n int) blockdev.ReadResult {
	var res blockdev.ReadResult
	ok := false
	a.Read(lba, n, func(r blockdev.ReadResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("zapraid read hung")
	}
	return res
}

func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*23)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, a, _ := newArray(t)
	payload := pat(3, 24*4096)
	if r := wsync(eng, a, 0, 24, payload); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, a, 0, 24)
	if r.Err != nil || !bytes.Equal(r.Data, payload) {
		t.Fatalf("round trip: %v", r.Err)
	}
}

func TestRandomOverwrites(t *testing.T) {
	eng, a, _ := newArray(t)
	for i := 0; i < 6; i++ {
		wsync(eng, a, 9, 1, pat(byte(i), 4096))
	}
	r := rsync(eng, a, 9, 1)
	if !bytes.Equal(r.Data, pat(5, 4096)) {
		t.Fatal("latest overwrite not visible")
	}
}

func TestNoAbsorptionEveryOverwriteHitsFlash(t *testing.T) {
	// The design contrast with BIZA: appends cannot absorb overwrites.
	eng, a, devs := newArray(t)
	for i := 0; i < 50; i++ {
		wsync(eng, a, 3, 1, nil)
	}
	eng.Run()
	var programmed, absorbed uint64
	for _, d := range devs {
		programmed += d.Stats().ProgrammedByTag(zns.TagUserData)
		absorbed += d.Stats().AbsorbedBytes
	}
	if absorbed != 0 {
		t.Fatalf("append path absorbed %d bytes", absorbed)
	}
	if programmed < 50*4096 {
		t.Fatalf("programmed %d < 50 blocks", programmed)
	}
}

func TestParityPerStripe(t *testing.T) {
	eng, a, devs := newArray(t)
	wsync(eng, a, 0, 9, nil) // 3 stripes (k=3)
	eng.Run()
	var parity uint64
	for _, d := range devs {
		parity += d.Stats().ProgrammedByTag(zns.TagParity)
	}
	if parity != 3*4096 {
		t.Fatalf("parity bytes = %d, want 3 blocks", parity)
	}
}

func TestGCReclaimsAndPreserves(t *testing.T) {
	eng, a, _ := newArray(t)
	span := a.Blocks() / 4
	rng := sim.NewRNG(5)
	written := map[int64]bool{}
	for i := 0; i < int(span)*5; i++ {
		lba := rng.Int63n(span)
		if r := wsync(eng, a, lba, 1, pat(byte(lba), 4096)); r.Err != nil {
			t.Fatalf("write: %v", r.Err)
		}
		written[lba] = true
	}
	eng.Run()
	if a.GCEvents() == 0 {
		t.Fatal("GC never ran")
	}
	for lba := int64(0); lba < span; lba += 9 {
		if !written[lba] {
			continue
		}
		r := rsync(eng, a, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(byte(lba), 4096)) {
			t.Fatalf("lba %d corrupted: %v", lba, r.Err)
		}
	}
}

func TestConcurrentAppendsNoFailures(t *testing.T) {
	// The append path's selling point: deep concurrency without ordering
	// failures and without any host-side window bookkeeping.
	eng, a, _ := newArray(t)
	failures, completions := 0, 0
	for i := 0; i < 500; i++ {
		a.Write(int64(i%200), 1, nil, func(r blockdev.WriteResult) {
			completions++
			if r.Err != nil {
				failures++
			}
		})
	}
	eng.Run()
	if completions != 500 || failures != 0 {
		t.Fatalf("completions=%d failures=%d", completions, failures)
	}
}
