// Package zapraid implements an append-based ZNS RAID in the style of
// ZapRAID (Wang & Lee, APSys '23) — the design alternative the paper
// discusses in §3.2 and §6: exploit intra-zone parallelism with ZONE
// APPEND commands instead of ZRWA. Appends parallelize freely (the device
// assigns offsets, so reordering cannot fail), but the NVMe specification
// makes APPEND and ZRWA mutually exclusive — so every overwrite costs a
// flash write and partial parities cannot be absorbed. The `append`
// experiment quantifies exactly that trade against BIZA.
package zapraid

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/erasure"
	"biza/internal/metrics"
	"biza/internal/nvme"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/zns"
)

// Config tunes the engine.
type Config struct {
	// OpenZonesPerDevice is how many zones accept appends concurrently.
	OpenZonesPerDevice int
	// GCLowWater / GCHighWater are per-device free-zone watermarks.
	GCLowWater  int
	GCHighWater int
}

// DefaultConfig sizes the engine for the device zone count.
func DefaultConfig(zonesPerDevice int) Config {
	op := zonesPerDevice / 8
	if op < 4 {
		op = 4
	}
	low := op/2 + 1
	if low < 3 {
		low = 3
	}
	return Config{OpenZonesPerDevice: 2, GCLowWater: low, GCHighWater: op - 1}
}

type pa struct {
	dev  int
	zone int
	off  int64
}

var paNone = pa{dev: -1}

type zoneState struct {
	id       int
	appended int64 // blocks appended (upper bound on next assigned LBA)
	valid    int64
	rmap     []int64 // off -> lbn (live data), -1 otherwise
	inflight int
}

type devState struct {
	q         *nvme.Queue
	open      []*zoneState
	rr        int
	free      []int
	full      []int
	zones     []*zoneState
	gcRunning bool
}

// stripeBuf gathers chunks of the forming stripe in host DRAM.
type stripeBuf struct {
	lbns []int64
	data [][]byte
	acc  []byte
}

// Array is the append-based engine. It implements blockdev.Device.
type Array struct {
	cfg   Config
	eng   *sim.Engine
	devs  []*devState
	coder *erasure.Coder
	nData int

	blockSize  int
	zoneBlocks int64

	bmt map[int64]pa // logical block -> chunk location
	cur *stripeBuf
	rot int

	userBytes   uint64
	parityBytes uint64
	gcMigrated  uint64
	gcEvents    uint64
	stalled     []func()

	// Free lists for stripe-forming state: steady-state stripe writes
	// reuse one stripeBuf and one parity accumulator per stripe slot.
	sbFree  []*stripeBuf
	accFree [][]byte

	tr *obs.Trace
}

// getSB returns a pooled (emptied) stripe buffer.
func (a *Array) getSB() *stripeBuf {
	if n := len(a.sbFree); n > 0 {
		sb := a.sbFree[n-1]
		a.sbFree = a.sbFree[:n-1]
		return sb
	}
	return &stripeBuf{}
}

// putSB recycles a stripe buffer and its accumulator.
func (a *Array) putSB(sb *stripeBuf) {
	sb.lbns = sb.lbns[:0]
	for i := range sb.data {
		sb.data[i] = nil
	}
	sb.data = sb.data[:0]
	a.putAcc(sb.acc)
	sb.acc = nil
	a.sbFree = append(a.sbFree, sb)
}

// getAcc returns a zeroed block-size parity accumulator.
func (a *Array) getAcc() []byte {
	if n := len(a.accFree); n > 0 {
		b := a.accFree[n-1]
		a.accFree = a.accFree[:n-1]
		clear(b)
		return b
	}
	return make([]byte, a.blockSize)
}

// putAcc recycles an accumulator; nil-safe.
func (a *Array) putAcc(b []byte) {
	if b == nil || cap(b) < a.blockSize {
		return
	}
	a.accFree = append(a.accFree, b[:a.blockSize])
}

// SetTracer attaches an observability trace: array-level spans cover each
// block-interface Write/Read end to end, and GC victim selections are
// logged as typed events.
func (a *Array) SetTracer(tr *obs.Trace) { a.tr = tr }

// New builds the array over member queues (ZNS devices, no ZRWA use).
func New(queues []*nvme.Queue, cfg Config) (*Array, error) {
	if len(queues) < 3 {
		return nil, fmt.Errorf("zapraid: need >= 3 members")
	}
	base := queues[0].Device().Config()
	coder, err := erasure.NewCoder(len(queues)-1, 1)
	if err != nil {
		return nil, err
	}
	a := &Array{
		cfg:        cfg,
		eng:        queues[0].Device().Engine(),
		coder:      coder,
		nData:      len(queues) - 1,
		blockSize:  base.BlockSize,
		zoneBlocks: base.ZoneBlocks,
		bmt:        make(map[int64]pa),
	}
	for _, q := range queues {
		ds := &devState{q: q, zones: make([]*zoneState, q.Device().Config().NumZones)}
		for z := 0; z < len(ds.zones); z++ {
			ds.free = append(ds.free, z)
		}
		for i := 0; i < cfg.OpenZonesPerDevice; i++ {
			zs, err := a.openZone(ds)
			if err != nil {
				return nil, err
			}
			ds.open = append(ds.open, zs)
		}
		a.devs = append(a.devs, ds)
	}
	return a, nil
}

func (a *Array) openZone(ds *devState) (*zoneState, error) {
	if len(ds.free) == 0 {
		return nil, fmt.Errorf("zapraid: out of free zones")
	}
	z := ds.free[0]
	ds.free = ds.free[1:]
	zs := &zoneState{id: z, rmap: makeFilled(a.zoneBlocks, -1)}
	ds.zones[z] = zs
	return zs, nil
}

func makeFilled(n int64, v int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// BlockSize implements blockdev.Device.
func (a *Array) BlockSize() int { return a.blockSize }

// StoresData implements blockdev.DataStorer: reads return payloads only
// when every member device retains them.
func (a *Array) StoresData() bool {
	for _, ds := range a.devs {
		if !ds.q.Device().Config().StoreData {
			return false
		}
	}
	return true
}

// Blocks implements blockdev.Device.
func (a *Array) Blocks() int64 {
	zones := int64(len(a.devs[0].zones)) - int64(a.cfg.GCHighWater) - 2
	return zones * a.zoneBlocks * int64(a.nData)
}

// WriteAmp reports engine-level accounting.
func (a *Array) WriteAmp() metrics.WriteAmp {
	return metrics.WriteAmp{
		UserBytes:        a.userBytes,
		FlashDataBytes:   a.userBytes + a.gcMigrated,
		FlashParityBytes: a.parityBytes,
		GCMigratedBytes:  a.gcMigrated,
	}
}

// GCEvents reports completed collections.
func (a *Array) GCEvents() uint64 { return a.gcEvents }

// ResetAccounting zeroes traffic counters.
func (a *Array) ResetAccounting() {
	a.userBytes, a.parityBytes, a.gcMigrated, a.gcEvents = 0, 0, 0, 0
}

// pickZone selects an open zone on dev with room, rotating; full zones are
// retired and replaced.
func (a *Array) pickZone(ds *devState) (*zoneState, error) {
	for try := 0; try < len(ds.open); try++ {
		slot := (ds.rr + try) % len(ds.open)
		zs := ds.open[slot]
		if zs == nil || zs.appended >= a.zoneBlocks {
			nz, err := a.openZone(ds)
			if err != nil {
				continue
			}
			if zs != nil {
				ds.full = append(ds.full, zs.id)
			}
			ds.open[slot] = nz
			zs = nz
		}
		ds.rr = (slot + 1) % len(ds.open)
		return zs, nil
	}
	return nil, fmt.Errorf("zapraid: no open zone with room")
}

// Write implements blockdev.Device: every block becomes a chunk appended
// to the forming stripe; when k chunks gather, data and parity append to
// the members in parallel (no ordering hazard — the device assigns the
// offsets, §3.2).
func (a *Array) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	start := a.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > a.Blocks() {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.WriteResult{Err: blockdev.ErrOutOfRange, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	bs := int64(a.blockSize)
	a.userBytes += uint64(nblocks) * uint64(bs)
	if a.tr != nil {
		span := a.tr.SpanBegin(int64(start), obs.LayerZapRAID, obs.OpWrite, -1, -1, lba, int64(nblocks))
		innerDone := done
		done = func(r blockdev.WriteResult) {
			a.tr.SpanEnd(span, int64(a.eng.Now()), r.Err != nil)
			if innerDone != nil {
				innerDone(r)
			}
		}
	}
	remaining := nblocks
	var firstErr error
	for i := 0; i < nblocks; i++ {
		var payload []byte
		if data != nil {
			payload = data[int64(i)*bs : (int64(i)+1)*bs]
		}
		a.writeChunk(lba+int64(i), payload, zns.TagUserData, false, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(blockdev.WriteResult{Err: firstErr, Latency: a.eng.Now() - start})
			}
		})
	}
}

func (a *Array) writeChunk(lbn int64, payload []byte, tag zns.WriteTag, gc bool, done func(error)) {
	// Free-zone cliff for user writes.
	if !gc {
		for _, ds := range a.devs {
			if len(ds.free) <= 2 && a.pickVictim(ds) >= 0 {
				a.stalled = append(a.stalled, func() { a.writeChunk(lbn, payload, tag, gc, done) })
				a.maybeStartGC(ds)
				return
			}
		}
	}
	if a.cur == nil {
		a.cur = a.getSB()
	}
	a.cur.lbns = append(a.cur.lbns, lbn)
	a.cur.data = append(a.cur.data, payload)
	if payload != nil {
		if a.cur.acc == nil {
			a.cur.acc = a.getAcc()
		}
		erasure.XORInto(a.cur.acc, payload)
	}
	idx := len(a.cur.lbns) - 1
	st := a.cur
	// The chunk appends immediately; its stripe's parity follows when the
	// stripe completes.
	dev := (a.rot + 1 + idx) % len(a.devs)
	ds := a.devs[dev]
	zs, err := a.pickZone(ds)
	if err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	zs.appended++
	zs.inflight++
	if gc {
		tag = zns.TagGCData
	}
	ds.q.Append(zs.id, 1, payload, nil, tag, func(r zns.AppendResult) {
		zs.inflight--
		if r.Err != nil {
			if done != nil {
				done(r.Err)
			}
			return
		}
		// Mapping is only known at completion: the device chose the slot.
		if old, ok := a.bmt[lbn]; ok && old.dev >= 0 {
			if ozs := a.devs[old.dev].zones[old.zone]; ozs != nil && ozs.rmap[old.off] == lbn {
				ozs.rmap[old.off] = -1
				ozs.valid--
			}
		}
		// A racing newer write may have landed already; last writer wins
		// by completion order (append semantics provide no better).
		a.bmt[lbn] = pa{dev: dev, zone: zs.id, off: r.LBA}
		zs.rmap[r.LBA] = lbn
		zs.valid++
		a.maybeStartGC(ds)
		if done != nil {
			done(nil)
		}
	})
	if len(st.lbns) == a.nData {
		a.sealStripe(st)
		a.cur = nil
		a.rot++
	}
}

// sealStripe appends the parity chunk of a completed stripe. The stripe
// buffer is recycled at submission (nothing reads it afterwards) and the
// accumulator once the device has copied it.
func (a *Array) sealStripe(st *stripeBuf) {
	pdev := a.rot % len(a.devs)
	ds := a.devs[pdev]
	zs, err := a.pickZone(ds)
	if err != nil {
		a.putSB(st)
		return
	}
	zs.appended++
	zs.inflight++
	a.parityBytes += uint64(a.blockSize)
	acc := st.acc
	st.acc = nil
	a.putSB(st)
	ds.q.Append(zs.id, 1, acc, nil, zns.TagParity, func(r zns.AppendResult) {
		zs.inflight--
		a.putAcc(acc)
	})
}

// Read implements blockdev.Device.
func (a *Array) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	start := a.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > a.Blocks() {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Err: blockdev.ErrOutOfRange, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	if a.tr != nil {
		span := a.tr.SpanBegin(int64(start), obs.LayerZapRAID, obs.OpRead, -1, -1, lba, int64(nblocks))
		innerDone := done
		done = func(r blockdev.ReadResult) {
			a.tr.SpanEnd(span, int64(a.eng.Now()), r.Err != nil)
			if innerDone != nil {
				innerDone(r)
			}
		}
	}
	bs := int64(a.blockSize)
	var buf []byte
	if a.StoresData() {
		buf = make([]byte, int64(nblocks)*bs)
	}
	remaining := 0
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 && done != nil {
			done(blockdev.ReadResult{Err: firstErr, Data: buf, Latency: a.eng.Now() - start})
		}
	}
	type fetch struct {
		p   pa
		idx int64
	}
	var fetches []fetch
	for i := int64(0); i < int64(nblocks); i++ {
		if p, ok := a.bmt[lba+i]; ok && p.dev >= 0 {
			fetches = append(fetches, fetch{p: p, idx: i})
		}
	}
	if len(fetches) == 0 {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Data: buf, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	remaining = len(fetches)
	for _, f := range fetches {
		f := f
		a.devs[f.p.dev].q.Read(f.p.zone, f.p.off, 1, func(r zns.ReadResult) {
			if r.Data != nil {
				copy(buf[f.idx*bs:(f.idx+1)*bs], r.Data)
			}
			finish(r.Err)
		})
	}
}

// Trim implements blockdev.Device.
func (a *Array) Trim(lba int64, nblocks int) {
	for i := int64(0); i < int64(nblocks); i++ {
		if p, ok := a.bmt[lba+i]; ok && p.dev >= 0 {
			if zs := a.devs[p.dev].zones[p.zone]; zs != nil && zs.rmap[p.off] == lba+i {
				zs.rmap[p.off] = -1
				zs.valid--
			}
			delete(a.bmt, lba+i)
		}
	}
}

func (a *Array) pickVictim(ds *devState) int {
	best, bestValid := -1, int64(1)<<62
	for i, z := range ds.full {
		zs := ds.zones[z]
		if zs == nil || zs.inflight > 0 {
			continue
		}
		if zs.valid < bestValid {
			best, bestValid = i, zs.valid
		}
	}
	return best
}

func (a *Array) maybeStartGC(ds *devState) {
	if ds.gcRunning {
		return
	}
	if len(ds.free) >= a.cfg.GCLowWater && len(a.stalled) == 0 {
		return
	}
	ds.gcRunning = true
	a.eng.After(0, func() { a.gcStep(ds) })
}

// gcStep migrates the live chunks of the sparsest full zone via re-append
// (each migration joins a new stripe) and resets the victim.
func (a *Array) gcStep(ds *devState) {
	if len(ds.free) >= a.cfg.GCHighWater && len(a.stalled) == 0 {
		ds.gcRunning = false
		return
	}
	vi := a.pickVictim(ds)
	if vi < 0 {
		ds.gcRunning = false
		for len(a.stalled) > 0 {
			fn := a.stalled[0]
			a.stalled = a.stalled[1:]
			fn()
		}
		return
	}
	victim := ds.full[vi]
	ds.full = append(ds.full[:vi], ds.full[vi+1:]...)
	zs := ds.zones[victim]
	a.gcEvents++
	if a.tr != nil {
		dev := -1
		for i, d := range a.devs {
			if d == ds {
				dev = i
				break
			}
		}
		a.tr.Event(int64(a.eng.Now()), obs.LayerZapRAID, obs.EvGCVictim, dev, victim,
			zs.valid, int64(len(ds.free)), 0)
	}
	var live []int64
	for off := int64(0); off < a.zoneBlocks; off++ {
		if l := zs.rmap[off]; l >= 0 {
			live = append(live, off)
		}
	}
	finish := func() {
		ds.q.Reset(victim, func(error) {
			ds.zones[victim] = nil
			ds.free = append(ds.free, victim)
			for len(a.stalled) > 0 && len(ds.free) > 2 {
				fn := a.stalled[0]
				a.stalled = a.stalled[1:]
				fn()
			}
			a.eng.After(0, func() { a.gcStep(ds) })
		})
	}
	if len(live) == 0 {
		finish()
		return
	}
	remaining := len(live)
	devIdx := -1
	for i, d := range a.devs {
		if d == ds {
			devIdx = i
		}
	}
	for _, off := range live {
		off := off
		lbn := zs.rmap[off]
		ds.q.Read(victim, off, 1, func(r zns.ReadResult) {
			cur, ok := a.bmt[lbn]
			if !ok || cur != (pa{dev: devIdx, zone: victim, off: off}) {
				remaining--
				if remaining == 0 {
					finish()
				}
				return
			}
			a.gcMigrated += uint64(a.blockSize)
			a.writeChunk(lbn, r.Data, zns.TagGCData, true, func(error) {
				remaining--
				if remaining == 0 {
					finish()
				}
			})
		})
	}
}
