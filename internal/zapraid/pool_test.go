package zapraid

import (
	"runtime"
	"runtime/debug"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

// newArrayPerf builds an array over StoreData=false devices, matching the
// configuration of the performance experiments.
func newArrayPerf(t *testing.T) (*sim.Engine, *Array, []*zns.Device) {
	t.Helper()
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	var devs []*zns.Device
	for i := 0; i < 4; i++ {
		cfg := zns.TestConfig()
		cfg.Seed = uint64(i) + 40
		cfg.StoreData = false
		d, err := zns.New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond, Seed: uint64(i) + 400,
		}))
	}
	a, err := New(queues, DefaultConfig(dc(devs)))
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, devs
}

// TestStripeBufPoolSemantics: getSB hands back an emptied record, getAcc
// a zeroed accumulator, and putSB drops chunk references so pooled stripe
// buffers do not pin payloads.
func TestStripeBufPoolSemantics(t *testing.T) {
	_, a, _ := newArray(t)
	sb := a.getSB()
	sb.lbns = append(sb.lbns, 7)
	sb.data = append(sb.data, make([]byte, a.blockSize))
	sb.acc = a.getAcc()
	sb.acc[0] = 0xCD
	a.putSB(sb)
	sb2 := a.getSB()
	if len(sb2.lbns) != 0 || len(sb2.data) != 0 || sb2.acc != nil {
		t.Fatalf("recycled stripeBuf not emptied: lbns=%d data=%d acc=%v",
			len(sb2.lbns), len(sb2.data), sb2.acc != nil)
	}
	acc := a.getAcc()
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("getAcc reused dirty accumulator: byte %d = %#x", i, v)
		}
	}
	a.putAcc(acc)
	a.putAcc(nil) // nil-safe
	a.putSB(sb2)
}

// TestStripeBufPoolCycleAllocFree: once warm, the per-stripe get/put
// cycle costs zero allocations.
func TestStripeBufPoolCycleAllocFree(t *testing.T) {
	_, a, _ := newArray(t)
	cycle := func() {
		sb := a.getSB()
		sb.acc = a.getAcc()
		a.putSB(sb)
	}
	cycle()
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("stripeBuf cycle allocates %.1f per run, want 0", allocs)
	}
}

// TestSteadyStateWriteNoBufferAllocs: in performance mode, steady-state
// full-stripe writes must not take payload buffers from the heap — total
// bytes allocated per stripe stays under one block.
func TestSteadyStateWriteNoBufferAllocs(t *testing.T) {
	eng, a, devs := newArrayPerf(t)
	k := len(devs) - 1
	span := a.Blocks() / 2
	for lba := int64(0); lba+int64(k) <= span; lba += int64(k) {
		wsync(eng, a, lba, k, nil)
	}
	done := func(r blockdev.WriteResult) {}
	lba := int64(0)
	step := func() {
		a.Write(lba, k, nil, done)
		eng.Run()
		lba += int64(k)
		if lba+int64(k) > span {
			lba = 0
		}
	}
	const runs = 200
	allocs := testing.AllocsPerRun(runs, step)

	gcOff := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcOff)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	bytesPer := float64(after.TotalAlloc-before.TotalAlloc) / runs

	t.Logf("steady-state zapraid stripe write: %.1f allocs, %.0f bytes", allocs, bytesPer)
	if bytesPer >= float64(a.blockSize) {
		t.Fatalf("stripe write allocates %.0f bytes, want < one block (%d)", bytesPer, a.blockSize)
	}
}
