package ghostcache

import (
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return Config{
		LRUEntries:       64,
		HREntries:        16,
		HPEntries:        4,
		RevenueThreshold: 3,
		ProfitThreshold:  1000,
		Alpha:            0.5,
	}
}

func TestConfigValidation(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mod := range []func(*Config){
		func(c *Config) { c.LRUEntries = 0 },
		func(c *Config) { c.RevenueThreshold = 0 },
		func(c *Config) { c.ProfitThreshold = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
	} {
		c := testCfg()
		mod(&c)
		if c.Validate() == nil {
			t.Fatalf("accepted bad config %+v", c)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(56 << 20) // 56 MB total ZRWA (4 x 14 x 1 MB)
	if c.LRUEntries != 1048576 || c.HREntries != 262144 || c.HPEntries != 16384 {
		t.Fatalf("capacities %d/%d/%d", c.LRUEntries, c.HREntries, c.HPEntries)
	}
	if c.RevenueThreshold != 3 {
		t.Fatal("revenue threshold not 3")
	}
	if c.ProfitThreshold != 2*(56<<20) {
		t.Fatal("profit threshold not 2x ZRWA")
	}
}

func TestFirstAccessLandsInLRU(t *testing.T) {
	c := New(testCfg())
	if lvl := c.Access(1, 0); lvl != LevelLRU {
		t.Fatalf("first access level = %v", lvl)
	}
	if c.Level(1) != LevelLRU {
		t.Fatal("peek disagrees")
	}
	if c.Level(2) != LevelNone {
		t.Fatal("unknown key not none")
	}
}

func TestPromotionToHRAfterThreshold(t *testing.T) {
	c := New(testCfg())
	clock := uint64(0)
	c.Access(1, clock)
	clock += 5000 // reuse distances above profit threshold keep it out of HP
	if lvl := c.Access(1, clock); lvl != LevelLRU {
		t.Fatalf("after 1 reaccess: %v", lvl)
	}
	clock += 5000
	if lvl := c.Access(1, clock); lvl != LevelLRU {
		t.Fatalf("after 2 reaccesses: %v", lvl)
	}
	clock += 5000
	if lvl := c.Access(1, clock); lvl != LevelHR {
		t.Fatalf("after 3 reaccesses: %v", lvl)
	}
}

func TestPromotionToHPWithShortReuseDistance(t *testing.T) {
	c := New(testCfg())
	clock := uint64(0)
	for i := 0; i < 4; i++ {
		c.Access(1, clock)
		clock += 100 // far below the 1000-byte profit threshold
	}
	if lvl := c.Level(1); lvl != LevelHP {
		t.Fatalf("hot short-distance chunk level = %v, want hp", lvl)
	}
}

func TestHighRevenueLongDistanceStaysHR(t *testing.T) {
	c := New(testCfg())
	clock := uint64(0)
	for i := 0; i < 10; i++ {
		c.Access(2, clock)
		clock += 100000
	}
	if lvl := c.Level(2); lvl != LevelHR {
		t.Fatalf("long-distance chunk level = %v, want hr", lvl)
	}
}

func TestDemotionFromHPWhenDistanceGrows(t *testing.T) {
	c := New(testCfg())
	clock := uint64(0)
	for i := 0; i < 4; i++ {
		c.Access(1, clock)
		clock += 50
	}
	if c.Level(1) != LevelHP {
		t.Fatal("setup: not in HP")
	}
	// Long gaps grow the WMA beyond the threshold.
	for i := 0; i < 6; i++ {
		clock += 1 << 20
		c.Access(1, clock)
	}
	if lvl := c.Level(1); lvl != LevelHR {
		t.Fatalf("grown-distance chunk level = %v, want hr", lvl)
	}
}

func TestLRUEvictionDropsCold(t *testing.T) {
	cfg := testCfg()
	cfg.LRUEntries = 4
	c := New(cfg)
	for k := uint64(0); k < 8; k++ {
		c.Access(k, k*10)
	}
	// Keys 0..3 evicted, 4..7 tracked.
	for k := uint64(0); k < 4; k++ {
		if c.Level(k) != LevelNone {
			t.Fatalf("key %d not evicted", k)
		}
	}
	for k := uint64(4); k < 8; k++ {
		if c.Level(k) != LevelLRU {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestHREvictsLeastReaccessed(t *testing.T) {
	cfg := testCfg()
	cfg.HREntries = 2
	c := New(cfg)
	clock := uint64(0)
	hot := func(key uint64, hits int) {
		for i := 0; i < hits; i++ {
			c.Access(key, clock)
			clock += 5000
		}
	}
	hot(1, 6) // reaccess 5
	hot(2, 5) // reaccess 4
	hot(3, 4) // reaccess 3 -> promoting 3 overflows HR, evicting it (min)
	if c.Level(1) != LevelHR || c.Level(2) != LevelHR {
		t.Fatalf("high-revenue keys demoted: %v %v", c.Level(1), c.Level(2))
	}
	if c.Level(3) != LevelLRU {
		t.Fatalf("least-reaccessed key level = %v, want lru", c.Level(3))
	}
}

func TestHPEvictsLongestDistance(t *testing.T) {
	cfg := testCfg()
	cfg.HPEntries = 2
	c := New(cfg)
	clock := uint64(0)
	burst := func(key uint64, gap uint64) {
		for i := 0; i < 4; i++ {
			c.Access(key, clock)
			clock += gap
		}
	}
	burst(1, 10)
	burst(2, 100)
	burst(3, 500) // longest predicted distance; HP holds 2, so 3 overflows
	inHP := 0
	for _, k := range []uint64{1, 2, 3} {
		if c.Level(k) == LevelHP {
			inHP++
		}
	}
	if inHP != 2 {
		t.Fatalf("HP holds %d keys, want 2", inHP)
	}
	if c.Level(3) != LevelHR {
		t.Fatalf("longest-distance key level = %v, want hr", c.Level(3))
	}
}

func TestPredictedReuseDistanceWMA(t *testing.T) {
	c := New(testCfg())
	c.Access(1, 0)
	c.Access(1, 100) // first observed rd = 100
	got, ok := c.PredictedReuseDistance(1)
	if !ok || got != 100 {
		t.Fatalf("pred = %v ok=%v, want 100", got, ok)
	}
	c.Access(1, 300) // rd 200 -> wma 0.5*200+0.5*100 = 150
	got, _ = c.PredictedReuseDistance(1)
	if got != 150 {
		t.Fatalf("wma = %v, want 150", got)
	}
}

func TestHitRate(t *testing.T) {
	c := New(testCfg())
	c.Access(1, 0)
	c.Access(1, 10)
	c.Access(2, 20)
	if hr := c.HitRate(); hr < 0.3 || hr > 0.4 {
		t.Fatalf("hit rate = %v, want 1/3", hr)
	}
}

func TestCapacityInvariantsQuick(t *testing.T) {
	// Property: under arbitrary access streams the per-level sizes never
	// exceed capacity and every tracked key reports a consistent level.
	cfg := Config{LRUEntries: 8, HREntries: 4, HPEntries: 2,
		RevenueThreshold: 2, ProfitThreshold: 64, Alpha: 0.5}
	f := func(keys []uint8, gaps []uint8) bool {
		c := New(cfg)
		clock := uint64(0)
		for i, k := range keys {
			g := uint64(1)
			if i < len(gaps) {
				g = uint64(gaps[i]) + 1
			}
			clock += g
			c.Access(uint64(k%16), clock)
			l, h, p := c.Len()
			if l > cfg.LRUEntries || h > cfg.HREntries || p > cfg.HPEntries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScanResistance(t *testing.T) {
	// A one-pass scan (no reuse) must never promote anything beyond LRU.
	c := New(testCfg())
	for k := uint64(0); k < 1000; k++ {
		if lvl := c.Access(k, k*4096); lvl != LevelLRU {
			t.Fatalf("scan promoted key %d to %v", k, lvl)
		}
	}
	_, hr, hp := c.Len()
	if hr != 0 || hp != 0 {
		t.Fatalf("scan polluted hr=%d hp=%d", hr, hp)
	}
}
