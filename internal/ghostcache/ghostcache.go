// Package ghostcache implements BIZA's chunk-classification hierarchy
// (§4.2): ghost caches that store only access attributes — predicted
// reaccess count ("revenue") and predicted reuse distance ("cost") — and
// sort chunks into three classes that drive zone-group selection:
//
//	LRU cache  — recently touched chunks, filtering out poor locality;
//	HR cache   — high-revenue chunks (reaccessed >= threshold), priority
//	             queue evicting the least-reaccessed back to LRU;
//	HP cache   — high-profit chunks (high revenue AND short predicted
//	             reuse distance), priority queue evicting the longest
//	             reuse distance back to HR.
//
// Reuse distance follows the paper's §3.1 definition: bytes written
// between two consecutive accesses to the same address, so callers pass a
// cumulative bytes-written clock to Access. Predictions use the
// accumulated reaccess count and a weighted moving average of past reuse
// distances, as §4.2 specifies.
package ghostcache

import (
	"container/heap"
	"container/list"
	"fmt"
)

// Level is a chunk's current classification.
type Level uint8

// Classification levels, in increasing profitability.
const (
	LevelNone Level = iota // not tracked (cold or never seen)
	LevelLRU               // recently seen, revenue unproven
	LevelHR                // high revenue, long reuse distance
	LevelHP                // high revenue, short reuse distance
)

func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelLRU:
		return "lru"
	case LevelHR:
		return "hr"
	case LevelHP:
		return "hp"
	}
	return "unknown"
}

// Config sizes the hierarchy. The paper's evaluation uses 1048576 / 262144
// / 16384 entries, a revenue threshold of 3 reaccesses, and a profit
// threshold of twice the total ZRWA size.
type Config struct {
	LRUEntries int
	HREntries  int
	HPEntries  int
	// RevenueThreshold is the accumulated reaccess count that promotes a
	// chunk from LRU to HR.
	RevenueThreshold uint32
	// ProfitThreshold is the predicted reuse distance (bytes) below which
	// an HR chunk is promoted to HP.
	ProfitThreshold uint64
	// Alpha weighs the newest reuse-distance observation in the moving
	// average; (0,1], default 0.5.
	Alpha float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.LRUEntries < 1 || c.HREntries < 1 || c.HPEntries < 1 {
		return fmt.Errorf("ghostcache: non-positive capacity %+v", *c)
	}
	if c.RevenueThreshold < 1 {
		return fmt.Errorf("ghostcache: revenue threshold %d", c.RevenueThreshold)
	}
	if c.ProfitThreshold < 1 {
		return fmt.Errorf("ghostcache: profit threshold %d", c.ProfitThreshold)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("ghostcache: alpha %v", c.Alpha)
	}
	return nil
}

// DefaultConfig returns the paper's evaluation settings for a given total
// ZRWA capacity in bytes.
func DefaultConfig(totalZRWABytes uint64) Config {
	return Config{
		LRUEntries:       1 << 20,
		HREntries:        1 << 18,
		HPEntries:        1 << 14,
		RevenueThreshold: 3,
		ProfitThreshold:  2 * totalZRWABytes,
		Alpha:            0.5,
	}
}

type entry struct {
	key      uint64
	lastSeen uint64  // bytes-written clock at last access
	reaccess uint32  // accumulated reaccess count (revenue)
	predRD   float64 // weighted moving average reuse distance (cost)
	level    Level
	elem     *list.Element // when level == LevelLRU
	heapIdx  int           // when level == LevelHR or LevelHP
}

// hrHeap orders by reaccess ascending: the least-revenue entry evicts first.
type hrHeap []*entry

func (h hrHeap) Len() int           { return len(h) }
func (h hrHeap) Less(i, j int) bool { return h[i].reaccess < h[j].reaccess }
func (h hrHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *hrHeap) Push(x any)        { e := x.(*entry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *hrHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// hpHeap orders by predicted reuse distance descending: the costliest
// entry evicts first.
type hpHeap []*entry

func (h hpHeap) Len() int           { return len(h) }
func (h hpHeap) Less(i, j int) bool { return h[i].predRD > h[j].predRD }
func (h hpHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *hpHeap) Push(x any)        { e := x.(*entry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *hpHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Cache is the three-level ghost-cache hierarchy. Not safe for concurrent
// use; the simulation is single-goroutine.
type Cache struct {
	cfg     Config
	entries map[uint64]*entry
	lru     *list.List // front = MRU
	hr      hrHeap
	hp      hpHeap

	hits, misses uint64
}

// New builds the hierarchy; panics on invalid config (programmer error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[uint64]*entry),
		lru:     list.New(),
	}
}

// Len reports tracked entries per level (lru, hr, hp).
func (c *Cache) Len() (lru, hr, hp int) {
	return c.lru.Len(), len(c.hr), len(c.hp)
}

// HitRate reports the fraction of accesses that found the key tracked.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Level reports the key's current classification without recording an
// access.
func (c *Cache) Level(key uint64) Level {
	if e, ok := c.entries[key]; ok {
		return e.level
	}
	return LevelNone
}

// PredictedReuseDistance reports the WMA reuse distance for a tracked key.
func (c *Cache) PredictedReuseDistance(key uint64) (float64, bool) {
	e, ok := c.entries[key]
	if !ok || e.reaccess == 0 {
		return 0, false
	}
	return e.predRD, true
}

// Access records a write access to key at the given cumulative
// bytes-written clock and returns the classification AFTER the update —
// the level the zone-group selector should place this chunk by.
func (c *Cache) Access(key uint64, clock uint64) Level {
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		e = &entry{key: key, lastSeen: clock, level: LevelLRU}
		c.entries[key] = e
		e.elem = c.lru.PushFront(e)
		c.enforceLRUCap()
		return LevelLRU
	}
	c.hits++
	rd := float64(clock - e.lastSeen)
	e.lastSeen = clock
	e.reaccess++
	if e.reaccess == 1 {
		e.predRD = rd
	} else {
		e.predRD = c.cfg.Alpha*rd + (1-c.cfg.Alpha)*e.predRD
	}
	switch e.level {
	case LevelLRU:
		c.lru.MoveToFront(e.elem)
		if e.reaccess >= c.cfg.RevenueThreshold {
			c.lru.Remove(e.elem)
			e.elem = nil
			c.promoteToHR(e)
		}
	case LevelHR:
		heap.Fix(&c.hr, e.heapIdx)
		if e.predRD < float64(c.cfg.ProfitThreshold) {
			heap.Remove(&c.hr, e.heapIdx)
			c.promoteToHP(e)
		}
	case LevelHP:
		heap.Fix(&c.hp, e.heapIdx)
		if e.predRD >= float64(c.cfg.ProfitThreshold) {
			// Cost grew: no longer profitable, demote to HR.
			heap.Remove(&c.hp, e.heapIdx)
			c.promoteToHR(e)
		}
	}
	return e.level
}

func (c *Cache) promoteToHR(e *entry) {
	e.level = LevelHR
	heap.Push(&c.hr, e)
	if e.predRD < float64(c.cfg.ProfitThreshold) && e.reaccess >= c.cfg.RevenueThreshold {
		heap.Remove(&c.hr, e.heapIdx)
		c.promoteToHP(e)
		return
	}
	c.enforceHRCap()
}

func (c *Cache) promoteToHP(e *entry) {
	e.level = LevelHP
	heap.Push(&c.hp, e)
	c.enforceHPCap()
}

func (c *Cache) enforceLRUCap() {
	for c.lru.Len() > c.cfg.LRUEntries {
		tail := c.lru.Back()
		e := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, e.key)
	}
}

func (c *Cache) enforceHRCap() {
	for len(c.hr) > c.cfg.HREntries {
		e := heap.Pop(&c.hr).(*entry)
		e.level = LevelLRU
		e.elem = c.lru.PushFront(e)
		c.enforceLRUCap()
	}
}

func (c *Cache) enforceHPCap() {
	for len(c.hp) > c.cfg.HPEntries {
		e := heap.Pop(&c.hp).(*entry)
		e.level = LevelHR
		heap.Push(&c.hr, e)
		c.enforceHRCap()
	}
}
