package metrics

import "testing"

func TestRunStatsSpeedup(t *testing.T) {
	r := RunStats{WallNanos: 2e9, VirtualNanos: 5e9}
	if got := r.Speedup(); got != 2.5 {
		t.Fatalf("Speedup = %v, want 2.5", got)
	}
	if got := (RunStats{VirtualNanos: 100}).Speedup(); got != 0 {
		t.Fatalf("zero-wall Speedup = %v, want 0", got)
	}
}

func TestRunStatsAdd(t *testing.T) {
	r := RunStats{WallNanos: 10, VirtualNanos: 20}
	r.Add(RunStats{WallNanos: 5, VirtualNanos: 7})
	if r.WallNanos != 15 || r.VirtualNanos != 27 {
		t.Fatalf("Add = %+v", r)
	}
}
