package metrics

import "fmt"

// WriteAmp accounts flash-level versus user-level write traffic and derives
// write amplification, the paper's endurance metric (§2.3). Byte counters
// distinguish data from parity so Fig. 14's stacked bars can be regenerated.
type WriteAmp struct {
	UserBytes        uint64 // bytes written by the application/front-end
	FlashDataBytes   uint64 // data bytes programmed to flash
	FlashParityBytes uint64 // parity bytes programmed to flash
	GCMigratedBytes  uint64 // subset of flash writes caused by GC migration
}

// FlashBytes reports total bytes programmed to flash.
func (w *WriteAmp) FlashBytes() uint64 { return w.FlashDataBytes + w.FlashParityBytes }

// Factor reports flash writes / user writes, or 0 when no user writes.
func (w *WriteAmp) Factor() float64 {
	if w.UserBytes == 0 {
		return 0
	}
	return float64(w.FlashBytes()) / float64(w.UserBytes)
}

// DataFactor reports flash data writes normalized to user writes.
func (w *WriteAmp) DataFactor() float64 {
	if w.UserBytes == 0 {
		return 0
	}
	return float64(w.FlashDataBytes) / float64(w.UserBytes)
}

// ParityFactor reports flash parity writes normalized to user writes.
func (w *WriteAmp) ParityFactor() float64 {
	if w.UserBytes == 0 {
		return 0
	}
	return float64(w.FlashParityBytes) / float64(w.UserBytes)
}

// Add merges other into w.
func (w *WriteAmp) Add(other WriteAmp) {
	w.UserBytes += other.UserBytes
	w.FlashDataBytes += other.FlashDataBytes
	w.FlashParityBytes += other.FlashParityBytes
	w.GCMigratedBytes += other.GCMigratedBytes
}

func (w *WriteAmp) String() string {
	return fmt.Sprintf("WA=%.3f (data %.3f + parity %.3f, gc %d B)",
		w.Factor(), w.DataFactor(), w.ParityFactor(), w.GCMigratedBytes)
}

// Throughput measures bytes moved over a virtual-time interval.
type Throughput struct {
	Bytes   uint64
	Elapsed int64 // virtual nanoseconds
}

// MBps reports throughput in decimal megabytes per second (the unit the
// paper's figures use), or 0 when no time has elapsed.
func (t Throughput) MBps() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Bytes) / 1e6 / (float64(t.Elapsed) / 1e9)
}

// GBps reports throughput in decimal gigabytes per second.
func (t Throughput) GBps() float64 { return t.MBps() / 1000 }

func (t Throughput) String() string { return fmt.Sprintf("%.1f MB/s", t.MBps()) }

// OpsPerSec converts an operation count over virtual time to a rate.
func OpsPerSec(ops uint64, elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / (float64(elapsed) / 1e9)
}
