package metrics

// Virtual-time series: a deterministic periodic sampler that snapshots a
// set of registered sources on a fixed virtual-time cadence. Every sample
// lands in a preallocated per-series ring; when a ring fills, the sampler
// halves its resolution in place (keep every other point, double the
// interval), so any run length fits in bounded memory while the series
// still covers the whole run.
//
// The sampler has no clock of its own. Callers advance it with virtual
// timestamps (obs.Trace drives it from probe emissions; tests drive it
// directly), so sampled values are a pure function of the deterministic
// event stream: byte-identical output at any -parallel or -shards value.

// SamplerConfig sizes a Sampler.
type SamplerConfig struct {
	// Interval is the virtual-time cadence between samples in nanoseconds
	// (0 = DefaultSeriesInterval).
	Interval int64
	// MaxPoints caps retained points per series (0 = DefaultSeriesPoints).
	// On overflow the sampler decimates: it keeps every other point and
	// doubles Interval, preserving full-run coverage.
	MaxPoints int
}

// Default sampler sizing: 50 us ticks cover a 4 ms quick run in ~80
// points and a 50 ms default-scale run in ~1000 (one decimation).
const (
	DefaultSeriesInterval = 50 * 1000 // 50 us in virtual ns
	DefaultSeriesPoints   = 512
)

// SeriesDump is one exported virtual-time series: the value of one source
// at times 0, IntervalNs, 2*IntervalNs, ... . It rides in the benchmark
// Result JSON ("series" section) and in the ops endpoint's /series dump.
type SeriesDump struct {
	Trace      string    `json:"trace,omitempty"` // owning trace name
	Name       string    `json:"name"`            // probe/source name
	Kind       ProbeKind `json:"kind"`
	IntervalNs int64     `json:"interval_ns"`
	Points     []float64 `json:"points"`
}

// Sampler snapshots registered sources on a fixed virtual-time cadence.
// It is single-goroutine, like the trace/engine that drives it.
type Sampler struct {
	interval  int64
	maxPoints int
	next      int64 // virtual time of the next tick (k*interval)
	count     int   // ticks recorded so far (= len of every ring)

	names []string
	kinds []ProbeKind
	fns   []func() float64
	rings [][]float64 // rings[i]: cap maxPoints, len count
}

// NewSampler returns an empty sampler ticking at cfg.Interval.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSeriesInterval
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = DefaultSeriesPoints
	}
	return &Sampler{interval: cfg.Interval, maxPoints: cfg.MaxPoints}
}

// Interval reports the current tick cadence (doubles on decimation).
func (s *Sampler) Interval() int64 { return s.interval }

// Len reports recorded ticks per series.
func (s *Sampler) Len() int { return s.count }

// Sources reports the number of registered sources.
func (s *Sampler) Sources() int { return len(s.names) }

// Register adds a named source sampled by fn at every subsequent tick.
// Ticks recorded before registration backfill as zero, so every series in
// a sampler spans the same window. Registration order is the export order
// and must therefore be deterministic (it is, when driven by a trace's
// probe-first-seen order).
func (s *Sampler) Register(name string, kind ProbeKind, fn func() float64) {
	s.names = append(s.names, name)
	s.kinds = append(s.kinds, kind)
	s.fns = append(s.fns, fn)
	ring := make([]float64, s.count, s.maxPoints)
	s.rings = append(s.rings, ring)
}

// Due reports whether Advance(ts) would record at least one tick — the
// hot-path guard, one compare.
func (s *Sampler) Due(ts int64) bool { return ts >= s.next }

// Advance records every tick with time <= ts. Tick k samples at virtual
// time k*Interval; callers must present non-decreasing timestamps (probe
// emission times are). Steady-state advancement is allocation-free.
func (s *Sampler) Advance(ts int64) {
	for s.next <= ts {
		s.tick()
	}
}

// tick snapshots every source into its ring, decimating first when full.
func (s *Sampler) tick() {
	if s.count == s.maxPoints {
		s.decimate()
	}
	for i, fn := range s.fns {
		s.rings[i] = append(s.rings[i], fn())
	}
	s.count++
	s.next += s.interval
}

// decimate halves resolution in place: keep points at even tick indices
// (times 0, 2i, 4i, ... remain exact multiples of the doubled interval)
// and re-aim the next tick at the first multiple not yet recorded.
func (s *Sampler) decimate() {
	keep := (s.count + 1) / 2
	for i := range s.rings {
		ring := s.rings[i]
		for j := 0; j < keep; j++ {
			ring[j] = ring[2*j]
		}
		s.rings[i] = ring[:keep]
	}
	s.count = keep
	s.interval *= 2
	s.next = int64(keep) * s.interval
}

// Dump exports every series in registration order. trace labels the
// owning trace in each dump. Points are copied; the sampler stays live.
func (s *Sampler) Dump(trace string) []SeriesDump {
	if s == nil || len(s.names) == 0 {
		return nil
	}
	out := make([]SeriesDump, len(s.names))
	for i := range s.names {
		pts := make([]float64, len(s.rings[i]))
		copy(pts, s.rings[i])
		out[i] = SeriesDump{
			Trace:      trace,
			Name:       s.names[i],
			Kind:       s.kinds[i],
			IntervalNs: s.interval,
			Points:     pts,
		}
	}
	return out
}
