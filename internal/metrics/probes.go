package metrics

import "sort"

// ProbeKind distinguishes how repeated samples of a probe fold together.
type ProbeKind string

// Probe kinds.
const (
	// ProbeCounter accumulates: merging sums values.
	ProbeCounter ProbeKind = "counter"
	// ProbeGauge tracks a level: merging keeps the maximum observed.
	ProbeGauge ProbeKind = "gauge"
)

// ProbeStat is one named probe reading exported by the observability layer:
// per-channel busy time, peak open-zone count, peak queue depth, and the
// like. It rides inside RunStats so probe readings land in the benchmark
// Result JSON next to the timing stats.
type ProbeStat struct {
	Name  string    `json:"name"`
	Kind  ProbeKind `json:"kind"`
	Value float64   `json:"value"`
}

// MergeProbes folds b into a by probe name: counters sum, gauges keep the
// max. The result is sorted by name so merge order never shows in output.
func MergeProbes(a, b []ProbeStat) []ProbeStat {
	if len(b) == 0 {
		return a
	}
	byName := make(map[string]int, len(a))
	out := append([]ProbeStat(nil), a...)
	for i, p := range out {
		byName[p.Name] = i
	}
	for _, p := range b {
		i, ok := byName[p.Name]
		if !ok {
			byName[p.Name] = len(out)
			out = append(out, p)
			continue
		}
		if p.Kind == ProbeGauge {
			if p.Value > out[i].Value {
				out[i].Value = p.Value
			}
		} else {
			out[i].Value += p.Value
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
