package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 1000 {
		t.Fatalf("mean = %v", h.Mean())
	}
	for _, p := range []float64{0, 50, 99, 99.99, 100} {
		v := h.Percentile(p)
		if v < 950 || v > 1050 {
			t.Fatalf("p%v = %d, want ~1000", p, v)
		}
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100000; i++ {
		h.Record(i)
	}
	cases := []struct {
		p    float64
		want int64
	}{{50, 50000}, {90, 90000}, {99, 99000}, {99.99, 99990}}
	for _, c := range cases {
		got := h.Percentile(c.p)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.05 {
			t.Errorf("p%v = %d, want %d +/- 5%%", c.p, got, c.want)
		}
	}
}

func TestHistogramTailSensitivity(t *testing.T) {
	// 9999 fast samples and 1 slow one: p99.99 must see the slow one.
	h := NewHistogram()
	for i := 0; i < 9999; i++ {
		h.Record(100)
	}
	h.Record(1000000)
	if got := h.Percentile(99.99); got < 900000 {
		t.Fatalf("p99.99 = %d, want ~1000000", got)
	}
	if got := h.Percentile(50); got > 200 {
		t.Fatalf("p50 = %d, want ~100", got)
	}
}

func TestHistogramMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Record(7777777)
	h.Record(42)
	if h.Min() != 5 || h.Max() != 7777777 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-10)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative sample not clamped to zero")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 1000; i++ {
		a.Record(100)
		b.Record(10000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 100 || a.Max() != 10000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	p25, p75 := a.Percentile(25), a.Percentile(75)
	if p25 < 90 || p25 > 150 {
		t.Fatalf("merged p25 = %d, want ~100", p25)
	}
	if p75 < 9000 || p75 > 11000 {
		t.Fatalf("merged p75 = %d, want ~10000", p75)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(123)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	h := NewHistogram()
	r := uint64(1)
	for i := 0; i < 50000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		h.Record(int64(r % 10000000))
	}
	prev := int64(-1)
	for p := 1.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotonic: p%v=%d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramBucketRelativeError(t *testing.T) {
	// Property: a histogram holding a single value v must return a p50
	// within ~4% of v across the whole representable range.
	if err := quick.Check(func(x uint32) bool {
		v := int64(x)%1000000000 + 1
		h := NewHistogram()
		h.Record(v)
		got := h.Percentile(50)
		rel := math.Abs(float64(got-v)) / float64(v)
		return rel <= 0.04
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(5000)
	s := h.Summarize()
	if s.Count != 1 || s.String() == "" {
		t.Fatal("summary malformed")
	}
}

func TestWriteAmpFactors(t *testing.T) {
	w := WriteAmp{UserBytes: 1000, FlashDataBytes: 1200, FlashParityBytes: 400}
	if w.Factor() != 1.6 {
		t.Fatalf("factor = %v", w.Factor())
	}
	if w.DataFactor() != 1.2 || w.ParityFactor() != 0.4 {
		t.Fatalf("split factors = %v/%v", w.DataFactor(), w.ParityFactor())
	}
}

func TestWriteAmpZeroUser(t *testing.T) {
	var w WriteAmp
	if w.Factor() != 0 || w.DataFactor() != 0 || w.ParityFactor() != 0 {
		t.Fatal("zero-user WA should be 0")
	}
}

func TestWriteAmpAdd(t *testing.T) {
	a := WriteAmp{UserBytes: 10, FlashDataBytes: 20, FlashParityBytes: 5, GCMigratedBytes: 2}
	b := WriteAmp{UserBytes: 30, FlashDataBytes: 40, FlashParityBytes: 15, GCMigratedBytes: 8}
	a.Add(b)
	if a.UserBytes != 40 || a.FlashDataBytes != 60 || a.FlashParityBytes != 20 || a.GCMigratedBytes != 10 {
		t.Fatalf("add produced %+v", a)
	}
}

func TestThroughputMBps(t *testing.T) {
	tp := Throughput{Bytes: 2_170_000_000, Elapsed: 1e9}
	if got := tp.MBps(); math.Abs(got-2170) > 0.01 {
		t.Fatalf("MBps = %v", got)
	}
	if got := tp.GBps(); math.Abs(got-2.17) > 0.001 {
		t.Fatalf("GBps = %v", got)
	}
}

func TestThroughputZeroElapsed(t *testing.T) {
	tp := Throughput{Bytes: 100}
	if tp.MBps() != 0 {
		t.Fatal("zero elapsed should give zero throughput")
	}
}

func TestOpsPerSec(t *testing.T) {
	if got := OpsPerSec(1000, 2e9); got != 500 {
		t.Fatalf("ops/s = %v", got)
	}
	if OpsPerSec(10, 0) != 0 {
		t.Fatal("zero elapsed should give zero rate")
	}
}

func TestCDF(t *testing.T) {
	samples := []int64{10, 20, 30, 40, 50}
	out := CDF(samples, []int64{5, 10, 25, 50, 100})
	want := []float64{0, 0.2, 0.4, 1.0, 1.0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("CDF = %v, want %v", out, want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	out := CDF(nil, []int64{1, 2})
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("empty CDF should be zero")
	}
}
