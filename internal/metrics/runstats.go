package metrics

import "fmt"

// RunStats couples the wall-clock cost of driving a simulation with the
// virtual time it covered, so benchmark runs self-report simulator
// performance: how much virtual time each wall-clock second buys. Wall
// time is real (host) nanoseconds; virtual time is the sum of clock
// advancement across every engine the run created.
type RunStats struct {
	WallNanos    int64 `json:"wall_ns"`    // host nanoseconds spent
	VirtualNanos int64 `json:"virtual_ns"` // simulated nanoseconds covered

	// Probes carries observability probe readings (per-channel busy time,
	// peak open zones, peak queue depth) when the run was traced; empty
	// otherwise.
	Probes []ProbeStat `json:"probes,omitempty"`
}

// Speedup reports virtual nanoseconds simulated per wall nanosecond
// (>1 means the simulator outruns real time), or 0 when no wall time
// was recorded.
func (r RunStats) Speedup() float64 {
	if r.WallNanos <= 0 {
		return 0
	}
	return float64(r.VirtualNanos) / float64(r.WallNanos)
}

// VirtualPerWallSecond reports simulated seconds per wall second — the
// runner's throughput figure of merit.
func (r RunStats) VirtualPerWallSecond() float64 { return r.Speedup() }

// Add merges other into r.
func (r *RunStats) Add(other RunStats) {
	r.WallNanos += other.WallNanos
	r.VirtualNanos += other.VirtualNanos
	r.Probes = MergeProbes(r.Probes, other.Probes)
}

func (r RunStats) String() string {
	return fmt.Sprintf("wall=%.1fms virtual=%.1fms speedup=%.2fx",
		float64(r.WallNanos)/1e6, float64(r.VirtualNanos)/1e6, r.Speedup())
}
