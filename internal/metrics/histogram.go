// Package metrics provides the measurement primitives used by every
// experiment in this repository: log-bucketed latency histograms with
// high-percentile queries, throughput meters over virtual time,
// write-amplification accounting, and CDF utilities.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram is a log-linear-bucketed histogram of non-negative int64 samples
// (typically virtual nanoseconds). Buckets have ~3% relative width, which is
// ample resolution for p50/p99/p99.99 queries while keeping memory constant.
type Histogram struct {
	counts []uint64
	total  uint64
	// 128-bit integer sample sum (sumHi:sumLo). A float64 accumulator here
	// drifts: once the running sum passes 2^53, each added ~2^40 ns sample
	// loses low bits, skewing Mean() on long runs. The integer sum is exact;
	// Mean rounds exactly once, at the final division.
	sumHi uint64
	sumLo uint64
	min   int64
	max   int64
}

const (
	histSubBuckets = 32 // linear sub-buckets per power of two
	histMaxExp     = 50 // covers up to ~2^50 ns (~13 days of virtual time)
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, histMaxExp*histSubBuckets),
		min:    math.MaxInt64,
	}
}

func bucketOf(v int64) int {
	if v < histSubBuckets {
		return int(v) // exact buckets for tiny values
	}
	exp := 63 - leadingZeros(uint64(v))
	// Linear interpolation within the power-of-two range.
	frac := (v - (1 << exp)) >> (exp - 5) // 32 sub-buckets
	b := exp*histSubBuckets + int(frac)
	if b >= histMaxExp*histSubBuckets {
		b = histMaxExp*histSubBuckets - 1
	}
	return b
}

// bucketMid reports a representative value for bucket b (upper edge midpoint).
func bucketMid(b int) int64 {
	if b < histSubBuckets {
		return int64(b)
	}
	exp := b / histSubBuckets
	frac := int64(b % histSubBuckets)
	lo := int64(1)<<exp + frac<<(exp-5)
	width := int64(1) << (exp - 5)
	return lo + width/2
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	var carry uint64
	h.sumLo, carry = bits.Add64(h.sumLo, uint64(v), 0)
	h.sumHi += carry
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	if h.sumHi == 0 {
		return float64(h.sumLo) / float64(h.total)
	}
	// Sum exceeds 64 bits: reconstruct hi*2^64 + lo in float space. The two
	// conversions round, but the accumulated sum itself is exact, so the
	// relative error stays within a couple of ulps regardless of run length.
	return (float64(h.sumHi)*0x1p64 + float64(h.sumLo)) / float64(h.total)
}

// Min reports the smallest sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Percentile reports the value at quantile p in [0, 100]. Within-bucket
// resolution is ~3%. Returns 0 when empty.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	// Rank convention: the smallest value such that strictly more than p% of
	// samples are <= it. This makes a 1-in-10000 outlier visible at p99.99.
	rank := uint64(math.Floor(p/100*float64(h.total)+1e-6)) + 1
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			mid := bucketMid(b)
			if mid > h.max {
				mid = h.max
			}
			if mid < h.min {
				mid = h.min
			}
			return mid
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	var carry uint64
	h.sumLo, carry = bits.Add64(h.sumLo, other.sumLo, 0)
	h.sumHi += other.sumHi + carry
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sumHi, h.sumLo, h.max = 0, 0, 0, 0
	h.min = math.MaxInt64
}

// Bucket is one non-empty histogram bucket: samples in [Lo, Hi) with the
// stated count. The bucket vector lets downstream tooling re-derive
// arbitrary percentiles instead of settling for the Summary scalars.
type Bucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		var lo, hi int64
		if b < histSubBuckets {
			lo, hi = int64(b), int64(b)+1
		} else {
			exp := b / histSubBuckets
			frac := int64(b % histSubBuckets)
			width := int64(1) << (exp - 5)
			lo = int64(1)<<exp + frac*width
			hi = lo + width
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// Summary is a compact snapshot of a histogram.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P9999 int64   `json:"p9999"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
}

// Summarize captures the usual percentile set.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P9999: h.Percentile(99.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	// A zero-sample summary has no meaningful percentiles, and a Summary
	// assembled outside Summarize may carry NaN/Inf — never print either.
	if s.Count == 0 {
		return "n=0 (no samples)"
	}
	mean := s.Mean
	if math.IsNaN(mean) || math.IsInf(mean, 0) {
		mean = 0
	}
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p99=%.1fus p99.99=%.1fus",
		s.Count, mean/1000, float64(s.P50)/1000, float64(s.P99)/1000, float64(s.P9999)/1000)
}

// CDF computes an empirical cumulative distribution over samples: it returns
// the fraction of samples <= each of the given thresholds. Samples need not
// be sorted.
func CDF(samples []int64, thresholds []int64) []float64 {
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] > t })
		if len(sorted) == 0 {
			out[i] = 0
		} else {
			out[i] = float64(idx) / float64(len(sorted))
		}
	}
	return out
}
