package metrics

import (
	"testing"
)

func TestSamplerTicksAtInterval(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 100, MaxPoints: 1024})
	var v float64
	s.Register("x", ProbeGauge, func() float64 { return v })

	// First advance covers ticks at t=0..500 inclusive: 6 ticks.
	v = 1
	s.Advance(500)
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	// A catch-up jump records the missing ticks with the value visible at
	// advance time (piecewise-constant interpolation).
	v = 7
	s.Advance(1000)
	if s.Len() != 11 {
		t.Fatalf("Len = %d, want 11", s.Len())
	}
	d := s.Dump("tr")
	if len(d) != 1 {
		t.Fatalf("Dump series = %d, want 1", len(d))
	}
	want := []float64{1, 1, 1, 1, 1, 1, 7, 7, 7, 7, 7}
	if len(d[0].Points) != len(want) {
		t.Fatalf("points = %v, want %v", d[0].Points, want)
	}
	for i, p := range d[0].Points {
		if p != want[i] {
			t.Fatalf("points[%d] = %v, want %v (all: %v)", i, p, want[i], want)
		}
	}
	if d[0].Trace != "tr" || d[0].Name != "x" || d[0].Kind != ProbeGauge || d[0].IntervalNs != 100 {
		t.Fatalf("dump metadata wrong: %+v", d[0])
	}
}

func TestSamplerAdvanceIsIdempotentAtSameTime(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 100, MaxPoints: 64})
	s.Register("x", ProbeCounter, func() float64 { return 1 })
	s.Advance(250)
	n := s.Len()
	s.Advance(250)
	s.Advance(250)
	if s.Len() != n {
		t.Fatalf("re-advancing at same ts grew series: %d -> %d", n, s.Len())
	}
}

func TestSamplerDecimation(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 10, MaxPoints: 8})
	tick := 0.0
	s.Register("t", ProbeGauge, func() float64 { return tick })

	// Feed a ramp: at tick k the source reads k. Advance one tick at a time
	// so every recorded point equals its tick index.
	for k := 0; k < 20; k++ {
		tick = float64(k)
		s.Advance(int64(k * 10))
	}
	// 20 ticks through a MaxPoints=8 ring: decimation doubled the interval
	// (possibly more than once) but points must remain a prefix-preserving
	// subsample: point j holds the value from tick j*(interval/10).
	d := s.Dump("")
	stride := s.Interval() / 10
	if stride < 2 {
		t.Fatalf("expected at least one decimation, interval = %d", s.Interval())
	}
	if s.Len() > 8 {
		t.Fatalf("Len = %d exceeds MaxPoints", s.Len())
	}
	for j, p := range d[0].Points {
		if want := float64(int64(j) * stride); p != want {
			t.Fatalf("decimated points[%d] = %v, want %v (interval %d, points %v)",
				j, p, want, s.Interval(), d[0].Points)
		}
	}
	// Coverage must span the whole run: the last retained tick is within one
	// (doubled) interval of the final advance time.
	last := int64(s.Len()-1) * s.Interval()
	if last < 190-s.Interval() {
		t.Fatalf("series ends at %d, run ended at 190 (interval %d)", last, s.Interval())
	}
}

func TestSamplerLateRegistrationBackfillsZero(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 10, MaxPoints: 64})
	s.Register("a", ProbeCounter, func() float64 { return 1 })
	s.Advance(40) // 5 ticks
	s.Register("b", ProbeCounter, func() float64 { return 2 })
	s.Advance(80) // 4 more
	d := s.Dump("")
	if len(d) != 2 {
		t.Fatalf("series = %d, want 2", len(d))
	}
	if len(d[0].Points) != len(d[1].Points) {
		t.Fatalf("series lengths differ: %d vs %d", len(d[0].Points), len(d[1].Points))
	}
	for i, p := range d[1].Points {
		want := 0.0
		if i >= 5 {
			want = 2.0
		}
		if p != want {
			t.Fatalf("late series points[%d] = %v, want %v (%v)", i, p, want, d[1].Points)
		}
	}
}

func TestSamplerDumpCopies(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 10, MaxPoints: 16})
	s.Register("a", ProbeGauge, func() float64 { return 3 })
	s.Advance(20)
	d := s.Dump("")
	d[0].Points[0] = -1
	d2 := s.Dump("")
	if d2[0].Points[0] != 3 {
		t.Fatalf("Dump aliases internal ring: %v", d2[0].Points)
	}
}

func TestSamplerNilDump(t *testing.T) {
	var s *Sampler
	if s.Dump("x") != nil {
		t.Fatal("nil sampler Dump should be nil")
	}
}

// The sampler hot path (Due check + catch-up Advance) must never allocate
// in steady state, including across decimations: rings are preallocated at
// MaxPoints capacity and decimation compacts in place.
func TestSamplerAdvanceAllocFree(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 10, MaxPoints: 32})
	s.Register("a", ProbeGauge, func() float64 { return 1 })
	s.Register("b", ProbeCounter, func() float64 { return 2 })
	ts := int64(0)
	allocs := testing.AllocsPerRun(5000, func() {
		ts += 7
		if s.Due(ts) {
			s.Advance(ts)
		}
	})
	if allocs != 0 {
		t.Fatalf("sampler Advance allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkSamplerAdvance(b *testing.B) {
	s := NewSampler(SamplerConfig{Interval: 10, MaxPoints: 512})
	for i := 0; i < 8; i++ {
		v := float64(i)
		s.Register("s", ProbeGauge, func() float64 { return v })
	}
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ts += 10
		s.Advance(ts)
	}
}
