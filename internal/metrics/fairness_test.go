package metrics

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"monopoly", []float64{10, 0, 0, 0}, 0.25},
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0}, 0},
		{"single", []float64{7}, 1},
		{"negative-clamped", []float64{5, -5, 5}, 2.0 / 3.0},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// Two-tenant 3:1 split: (4)²/(2·10) = 0.8.
	if got := JainIndex([]float64{3, 1}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("3:1 split = %v, want 0.8", got)
	}
}

func TestWeightedJainIndex(t *testing.T) {
	// Allocations proportional to weights are perfectly fair.
	if got := WeightedJainIndex([]float64{30, 10}, []float64{3, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("proportional = %v, want 1", got)
	}
	// Zero-weight entries are skipped, not divided by.
	if got := WeightedJainIndex([]float64{5, 9, 5}, []float64{1, 0, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("skip zero weight = %v, want 1", got)
	}
	if got := WeightedJainIndex(nil, nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}
