package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// Pin the integer-sum fix: accumulate a sum far past 2^53 so a float64
// accumulator would shed the low bits of every subsequent sample. One
// sample of 1 followed by 2^21 samples of 2^40+3 drifts the old
// accumulator by ~2e-10 relative; the integer sum is exact and Mean
// rounds once, so it must sit within a couple of ulps of the true mean.
func TestHistogramMeanNoDriftOnLongRuns(t *testing.T) {
	h := NewHistogram()
	const (
		n      = 1 << 21
		sample = int64(1<<40) + 3
	)
	h.Record(1)
	for i := 0; i < n; i++ {
		h.Record(sample)
	}
	exact := (1 + float64(n)*float64(sample)) / float64(n+1) // all terms < 2^62: one rounding each
	got := h.Mean()
	if rel := abs(got-exact) / exact; rel > 1e-14 {
		t.Fatalf("Mean = %.6f, exact %.6f, relative error %.3g (float accumulator drift?)", got, exact, rel)
	}
}

// The 128-bit sum must carry correctly past 2^64, including through Merge.
func TestHistogramMeanPast64Bits(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	const v = int64(1) << 62
	a.Record(v)
	a.Record(v)
	b.Record(v)
	b.Record(v)
	a.Merge(b) // sum = 2^64: hi word 1, lo word 0
	if got := a.Mean(); got != float64(v) {
		t.Fatalf("Mean after 128-bit carry = %g, want %g", got, float64(v))
	}
	a.Reset()
	if a.Mean() != 0 || a.Count() != 0 {
		t.Fatalf("Reset left state behind: mean=%g count=%d", a.Mean(), a.Count())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func randomSamples(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		// Mix magnitudes so samples land across the log-bucket range.
		shift := uint(rng.Intn(45))
		out[i] = rng.Int63n(1<<shift + 1)
	}
	return out
}

// Percentile must be non-decreasing in p.
func TestHistogramPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		for _, v := range randomSamples(rng, 1+rng.Intn(2000)) {
			h.Record(v)
		}
		prev := int64(-1)
		for p := 0.0; p <= 100; p += 0.25 {
			cur := h.Percentile(p)
			if cur < prev {
				t.Fatalf("trial %d: Percentile(%v) = %d < Percentile(%v) = %d", trial, p, cur, p-0.25, prev)
			}
			prev = cur
		}
	}
}

// Merge(a, b) must be indistinguishable from recording the union.
func TestHistogramMergeEquivalentToUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		sa := randomSamples(rng, rng.Intn(1500))
		sb := randomSamples(rng, rng.Intn(1500))
		ha, hb, hu := NewHistogram(), NewHistogram(), NewHistogram()
		for _, v := range sa {
			ha.Record(v)
			hu.Record(v)
		}
		for _, v := range sb {
			hb.Record(v)
			hu.Record(v)
		}
		ha.Merge(hb)
		if got, want := ha.Summarize(), hu.Summarize(); got != want {
			t.Fatalf("trial %d: merged summary %+v != union summary %+v", trial, got, want)
		}
		ga, gu := ha.Buckets(), hu.Buckets()
		if len(ga) != len(gu) {
			t.Fatalf("trial %d: merged buckets %d != union buckets %d", trial, len(ga), len(gu))
		}
		for i := range ga {
			if ga[i] != gu[i] {
				t.Fatalf("trial %d: bucket %d: merged %+v != union %+v", trial, i, ga[i], gu[i])
			}
		}
	}
}

// A percentile re-derived from the exported bucket vector must agree with
// Percentile to within the bucket: walking Buckets() to the same rank must
// land on a bucket whose [Lo, Hi] interval contains Percentile(p).
func TestHistogramPercentileAgreesWithBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		for _, v := range randomSamples(rng, 1+rng.Intn(2000)) {
			h.Record(v)
		}
		buckets := h.Buckets()
		total := h.Count()
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 99.99} {
			rank := uint64(math.Floor(p/100*float64(total)+1e-6)) + 1 // same rank convention as Percentile
			if rank > total {
				rank = total
			}
			var cum uint64
			var hit Bucket
			for _, b := range buckets {
				cum += b.Count
				if cum >= rank {
					hit = b
					break
				}
			}
			got := h.Percentile(p)
			if got < hit.Lo || got > hit.Hi {
				t.Fatalf("trial %d: Percentile(%v) = %d outside rank bucket [%d, %d]",
					trial, p, got, hit.Lo, hit.Hi)
			}
		}
	}
}
