package metrics

// JainIndex computes Jain's fairness index over per-tenant allocations
// (throughputs, achieved shares): (Σx)² / (n·Σx²). It is 1 when every
// tenant receives an identical allocation and approaches 1/n when one
// tenant monopolizes the resource. Non-positive entries count as zero
// allocation; an empty or all-zero input reports 0.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// WeightedJainIndex computes Jain's index over weight-normalized
// allocations x_i/w_i, so a tenant receiving exactly its provisioned
// share contributes as if allocations were equal. Entries with
// non-positive weight are skipped.
func WeightedJainIndex(xs, weights []float64) float64 {
	norm := make([]float64, 0, len(xs))
	for i, x := range xs {
		if i >= len(weights) || weights[i] <= 0 {
			continue
		}
		norm = append(norm, x/weights[i])
	}
	return JainIndex(norm)
}
