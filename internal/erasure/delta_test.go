package erasure

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// misalign returns a view of fresh memory starting off bytes past an
// 8-byte-aligned base, so the slab kernels' alignment check fails and
// the portable fallback runs.
func misalign(n, off int) []byte {
	return make([]byte, n+off)[off : off+n]
}

// TestDeltaMatchesReencode is the parity-delta property test: for random
// partial-stripe updates, Delta-applied parity must equal a full
// re-encode — across geometries, unaligned lengths that exercise the
// cache-line slab edges, and misaligned buffers that force the fallback.
func TestDeltaMatchesReencode(t *testing.T) {
	lengths := []int{1, 7, 63, 64, 65, 127, 128, 200, 511, 512, 4096, 4099}
	for _, geom := range []struct{ k, m int }{{4, 1}, {5, 2}, {6, 3}, {9, 4}} {
		for _, shardLen := range lengths {
			for _, off := range []int{0, 3} {
				t.Run(fmt.Sprintf("k%d_m%d_len%d_off%d", geom.k, geom.m, shardLen, off), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(geom.k*1000 + geom.m*100 + shardLen + off)))
					c, err := NewCoder(geom.k, geom.m)
					if err != nil {
						t.Fatal(err)
					}
					data := make([][]byte, geom.k)
					for i := range data {
						data[i] = misalign(shardLen, off)
						rng.Read(data[i])
					}
					parity := make([][]byte, geom.m)
					for i := range parity {
						parity[i] = misalign(shardLen, off)
					}
					if err := c.Encode(data, parity); err != nil {
						t.Fatal(err)
					}
					// Random partial-stripe update: new content for one shard.
					idx := rng.Intn(geom.k)
					newShard := misalign(shardLen, off)
					rng.Read(newShard)
					delta := misalign(shardLen, off)
					XOR(delta, data[idx], newShard)

					got := make([][]byte, geom.m)
					for r := range got {
						got[r] = append([]byte(nil), parity[r]...)
					}
					if err := c.Delta(idx, delta, got); err != nil {
						t.Fatal(err)
					}

					data[idx] = newShard
					want := make([][]byte, geom.m)
					for r := range want {
						want[r] = make([]byte, shardLen)
					}
					if err := c.Encode(data, want); err != nil {
						t.Fatal(err)
					}
					for r := range want {
						if !bytes.Equal(got[r], want[r]) {
							t.Fatalf("Delta parity[%d] != full re-encode", r)
						}
					}

					// The fused DeltaRow variant must agree row for row and
					// leave the old parity untouched.
					for r := 0; r < geom.m; r++ {
						oldP := append([]byte(nil), parity[r]...)
						newP := misalign(shardLen, off)
						c.DeltaRow(r, idx, delta, oldP, newP)
						if !bytes.Equal(newP, want[r]) {
							t.Fatalf("DeltaRow parity[%d] != full re-encode", r)
						}
						if !bytes.Equal(oldP, parity[r]) {
							t.Fatalf("DeltaRow clobbered old parity[%d]", r)
						}
					}
				})
			}
		}
	}
}

// TestMulXorIntoMatchesScalar cross-checks the fused kernel against the
// byte-at-a-time reference for all coefficients over slab-edge lengths
// and misaligned operands.
func TestMulXorIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 8, 63, 64, 65, 100, 4096, 4099} {
		for _, off := range []int{0, 1} {
			src := misalign(n, off)
			base := misalign(n, off)
			rng.Read(src)
			rng.Read(base)
			for c := 0; c < 256; c++ {
				want := append([]byte(nil), base...)
				mulSliceXorRef(byte(c), src, want)
				got := misalign(n, off)
				mulSliceXorInto(byte(c), src, base, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("mulSliceXorInto c=%d n=%d off=%d diverges from scalar", c, n, off)
				}
			}
		}
	}
}

// TestSlabKernelsMatchFallback pins the unsafe 64-byte slab loops
// against the portable paths on identical inputs, sweeping lengths
// around every slab boundary.
func TestSlabKernelsMatchFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for n := 60; n <= 200; n++ {
		a := make([]byte, n) // aligned: make() of word-sized+ is 8-aligned
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		if !aligned8(a) || !aligned8(b) {
			t.Skip("allocator returned unaligned slices; slab path untestable here")
		}

		gotX := append([]byte(nil), b...)
		xorIntoWide(gotX, a) // slab path (aligned)
		wantX := append([]byte(nil), b...)
		for i := range wantX {
			wantX[i] ^= a[i]
		}
		if !bytes.Equal(gotX, wantX) {
			t.Fatalf("n=%d: slab xorIntoWide diverges", n)
		}

		got3 := make([]byte, n)
		xorWide(got3, a, b)
		for i := range got3 {
			if got3[i] != a[i]^b[i] {
				t.Fatalf("n=%d: slab xorWide diverges at %d", n, i)
			}
		}

		const coeff = 0x53
		gotM := append([]byte(nil), b...)
		mulSliceXor(coeff, a, gotM)
		wantM := append([]byte(nil), b...)
		mulSliceXorRef(coeff, a, wantM)
		if !bytes.Equal(gotM, wantM) {
			t.Fatalf("n=%d: slab mulSliceXor diverges", n)
		}

		gotS := make([]byte, n)
		mulSliceSet(coeff, a, gotS)
		wantS := make([]byte, n)
		mulSliceXorRef(coeff, a, wantS)
		if !bytes.Equal(gotS, wantS) {
			t.Fatalf("n=%d: slab mulSliceSet diverges", n)
		}

		d2 := make([]byte, n)
		d3 := make([]byte, n)
		rng.Read(d2)
		rng.Read(d3)
		p := make([]byte, n)
		xorSet4(a, b, d2, d3, p, false)
		for i := range p {
			if p[i] != a[i]^b[i]^d2[i]^d3[i] {
				t.Fatalf("n=%d: slab xorSet4 set diverges at %d", n, i)
			}
		}
		prev := append([]byte(nil), p...)
		xorSet4(a, b, d2, d3, p, true)
		for i := range p {
			if p[i] != 0 { // x ^ x = 0
				t.Fatalf("n=%d: slab xorSet4 acc diverges at %d (prev %02x)", n, i, prev[i])
			}
		}
	}
}

// TestDeltaAllocFree gates the fast path: applying a parity delta and
// the fused row variant allocate nothing.
func TestDeltaAllocFree(t *testing.T) {
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	delta := make([]byte, 4096)
	parity := [][]byte{make([]byte, 4096), make([]byte, 4096)}
	oldP := make([]byte, 4096)
	newP := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(delta)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := c.Delta(1, delta, parity); err != nil {
			t.Fatal(err)
		}
		c.DeltaRow(0, 1, delta, oldP, newP)
	}); allocs != 0 {
		t.Fatalf("Delta path allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkDeltaRowFused(b *testing.B) {
	c, _ := NewCoder(4, 2)
	delta := make([]byte, 4096)
	oldP := make([]byte, 4096)
	newP := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(delta)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		c.DeltaRow(1, 2, delta, oldP, newP)
	}
}

func BenchmarkXorSet4Slab(b *testing.B) {
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = make([]byte, 4096)
		rand.New(rand.NewSource(int64(i))).Read(bufs[i])
	}
	b.SetBytes(4 * 4096)
	for i := 0; i < b.N; i++ {
		xorSet4(bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], i&1 == 1)
	}
}
