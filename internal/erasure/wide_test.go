package erasure

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestWideKernelsMatchScalar cross-checks every wide kernel against the
// byte-at-a-time reference for all 256 coefficients over awkward lengths
// (word-aligned, unaligned tails, tiny slices).
func TestWideKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 63, 64, 100, 4096, 4099} {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)
		for c := 0; c < 256; c++ {
			want := append([]byte(nil), base...)
			mulSliceXorRef(byte(c), src, want)
			got := append([]byte(nil), base...)
			mulSliceXor(byte(c), src, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulSliceXor c=%d n=%d diverges from scalar", c, n)
			}
			set := append([]byte(nil), base...)
			mulSliceSet(byte(c), src, set)
			wantSet := make([]byte, n)
			mulSliceXorRef(byte(c), src, wantSet)
			if !bytes.Equal(set, wantSet) {
				t.Fatalf("mulSliceSet c=%d n=%d diverges from scalar", c, n)
			}
		}
	}
}

// TestEncodeReconstructMatchScalarOracle drives whole-coder Encode and
// Reconstruct through the wide kernels and checks them against a scalar
// re-implementation for every k<=8, m<=3 geometry, including shard lengths
// that are not multiples of the 8-byte word.
func TestEncodeReconstructMatchScalarOracle(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for m := 1; m <= 3; m++ {
			for _, shardLen := range []int{1, 5, 8, 13, 512, 515} {
				t.Run(fmt.Sprintf("k%d_m%d_len%d", k, m, shardLen), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(k*100 + m*10 + shardLen)))
					c, err := NewCoder(k, m)
					if err != nil {
						t.Fatal(err)
					}
					data := make([][]byte, k)
					for i := range data {
						data[i] = make([]byte, shardLen)
						rng.Read(data[i])
					}
					parity := make([][]byte, m)
					for i := range parity {
						parity[i] = make([]byte, shardLen)
					}
					if err := c.Encode(data, parity); err != nil {
						t.Fatal(err)
					}
					// Scalar oracle encode.
					for r := 0; r < m; r++ {
						want := make([]byte, shardLen)
						for col := 0; col < k; col++ {
							mulSliceXorRef(c.Coeff(r, col), data[col], want)
						}
						if !bytes.Equal(parity[r], want) {
							t.Fatalf("wide Encode parity[%d] diverges from scalar oracle", r)
						}
					}
					// Erase up to m shards (worst case: the first m) and
					// reconstruct; every recovered shard must match.
					shards := make([][]byte, k+m)
					for i := 0; i < k; i++ {
						shards[i] = append([]byte(nil), data[i]...)
					}
					for r := 0; r < m; r++ {
						shards[k+r] = append([]byte(nil), parity[r]...)
					}
					for i := 0; i < m && i < k+m; i++ {
						shards[i] = nil
					}
					if err := c.Reconstruct(shards); err != nil {
						t.Fatal(err)
					}
					for i := 0; i < k; i++ {
						if !bytes.Equal(shards[i], data[i]) {
							t.Fatalf("reconstructed data shard %d diverges", i)
						}
					}
					for r := 0; r < m; r++ {
						if !bytes.Equal(shards[k+r], parity[r]) {
							t.Fatalf("reconstructed parity shard %d diverges", r)
						}
					}
				})
			}
		}
	}
}

// TestUpdateParityMatchesReencode checks the delta path (wide kernels)
// against a full re-encode on unaligned lengths.
func TestUpdateParityWideMatchesReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shardLen := range []int{13, 4096, 4099} {
		c, err := NewCoder(5, 2)
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, 5)
		for i := range data {
			data[i] = make([]byte, shardLen)
			rng.Read(data[i])
		}
		parity := [][]byte{make([]byte, shardLen), make([]byte, shardLen)}
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		newShard := make([]byte, shardLen)
		rng.Read(newShard)
		if err := c.UpdateParity(2, data[2], newShard, parity); err != nil {
			t.Fatal(err)
		}
		data[2] = newShard
		want := [][]byte{make([]byte, shardLen), make([]byte, shardLen)}
		if err := c.Encode(data, want); err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if !bytes.Equal(parity[r], want[r]) {
				t.Fatalf("len %d: UpdateParity parity[%d] != re-encoded parity", shardLen, r)
			}
		}
	}
}

// TestEncodeAllocFree proves steady-state Encode performs zero allocations.
func TestEncodeAllocFree(t *testing.T) {
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 4096)
	}
	parity := [][]byte{make([]byte, 4096), make([]byte, 4096)}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Encode allocates %.1f times per run, want 0", allocs)
	}
}

func benchmarkEncode(b *testing.B, k, m, shardLen int, fn func(c *Coder, data, parity [][]byte)) {
	c, err := NewCoder(k, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, shardLen)
		rng.Read(data[i])
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, shardLen)
	}
	b.SetBytes(int64(k * shardLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(c, data, parity)
	}
}

// scalarEncode is the pre-wide-kernel Encode shape, kept as the benchmark
// baseline the >=4x speedup target is measured against.
func scalarEncode(c *Coder, data, parity [][]byte) {
	for r := 0; r < c.m; r++ {
		p := parity[r]
		clear(p)
		for col := 0; col < c.k; col++ {
			mulSliceXorRef(c.parityRows[r][col], data[col], p)
		}
	}
}

func BenchmarkEncodeWide4x2(b *testing.B) {
	benchmarkEncode(b, 4, 2, 4096, func(c *Coder, data, parity [][]byte) { c.Encode(data, parity) })
}

func BenchmarkEncodeScalar4x2(b *testing.B) {
	benchmarkEncode(b, 4, 2, 4096, scalarEncode)
}

func BenchmarkEncodeWide8x3(b *testing.B) {
	benchmarkEncode(b, 8, 3, 4096, func(c *Coder, data, parity [][]byte) { c.Encode(data, parity) })
}

func BenchmarkEncodeScalar8x3(b *testing.B) {
	benchmarkEncode(b, 8, 3, 4096, scalarEncode)
}

func BenchmarkMulSliceXorWide(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		mulSliceXor(0x1d, src, dst)
	}
}

func BenchmarkMulSliceXorScalar(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		mulSliceXorRef(0x1d, src, dst)
	}
}
