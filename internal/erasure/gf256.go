// Package erasure implements the redundancy codes used by the AFA engines:
// plain XOR parity for RAID 5 and Reed–Solomon over GF(2^8) for RAID 6 and
// general m-failure tolerance. Everything is built from scratch on the
// standard AES polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d variant commonly
// used in storage RS codes).
package erasure

// gfPoly is the irreducible polynomial for GF(2^8): x^8+x^4+x^3+x^2+1.
const gfPoly = 0x11d

var (
	gfExp [512]byte // exp table doubled to avoid mod 255 in Mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. Division by zero panics.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse. Zero panics.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow raises a field element to a non-negative power.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(gfLog[a]) * n) % 255
	return gfExp[l]
}

// mulSliceXorRef computes dst[i] ^= c * src[i] for all i, one byte at a
// time through the log/exp tables. It is the reference implementation the
// wide (8-bytes-per-step) kernels in gf256wide.go are tested against, and
// the fallback shape the split-table technique optimizes.
func mulSliceXorRef(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}
