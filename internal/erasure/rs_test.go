package erasure

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGFMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

func TestGFMulCommutativeAssociative(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulDistributive(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		for b := 1; b < 256; b++ {
			q := gfDiv(byte(a), byte(b))
			if gfMul(q, byte(b)) != byte(a) {
				t.Fatalf("(a/b)*b != a for a=%d b=%d", a, b)
			}
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	gfDiv(5, 0)
}

func TestGFPow(t *testing.T) {
	for a := 1; a < 256; a++ {
		p := byte(1)
		for n := 0; n < 10; n++ {
			if got := gfPow(byte(a), n); got != p {
				t.Fatalf("pow(%d,%d) = %d, want %d", a, n, got, p)
			}
			p = gfMul(p, byte(a))
		}
	}
	if gfPow(0, 0) != 1 || gfPow(0, 5) != 0 {
		t.Fatal("0^0 or 0^n wrong")
	}
}

func TestNewCoderGeometry(t *testing.T) {
	for _, bad := range []struct{ k, m int }{{0, 1}, {1, 0}, {200, 60}, {-1, 2}} {
		if _, err := NewCoder(bad.k, bad.m); err == nil {
			t.Fatalf("NewCoder(%d,%d) accepted invalid geometry", bad.k, bad.m)
		}
	}
	if _, err := NewCoder(3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoder(10, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRAID5XORParity(t *testing.T) {
	// With m=1 the code must reduce to plain XOR parity.
	c, err := NewCoder(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	parity := [][]byte{make([]byte, 3)}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := data[0][i] ^ data[1][i] ^ data[2][i]
		if parity[0][i] != want {
			t.Fatalf("m=1 parity is not XOR: got %v", parity[0])
		}
	}
}

func fillPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func testRoundTrip(t *testing.T, k, m int, kill []int) {
	t.Helper()
	c, err := NewCoder(k, m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	shards := make([][]byte, k+m)
	orig := make([][]byte, k+m)
	data := shards[:k]
	for i := 0; i < k; i++ {
		data[i] = fillPattern(n, byte(i*13+1))
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, n)
	}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	copy(shards[k:], parity)
	for i := range shards {
		orig[i] = append([]byte(nil), shards[i]...)
	}
	for _, d := range kill {
		shards[d] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatalf("k=%d m=%d kill=%v: %v", k, m, kill, err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("k=%d m=%d kill=%v: shard %d corrupted after reconstruct", k, m, kill, i)
		}
	}
}

func TestReconstructSingleDataLoss(t *testing.T)  { testRoundTrip(t, 3, 1, []int{1}) }
func TestReconstructParityLoss(t *testing.T)      { testRoundTrip(t, 3, 1, []int{3}) }
func TestReconstructRAID6TwoData(t *testing.T)    { testRoundTrip(t, 4, 2, []int{0, 2}) }
func TestReconstructRAID6DataParity(t *testing.T) { testRoundTrip(t, 4, 2, []int{3, 5}) }
func TestReconstructRAID6TwoParity(t *testing.T)  { testRoundTrip(t, 4, 2, []int{4, 5}) }
func TestReconstructWideGeometry(t *testing.T)    { testRoundTrip(t, 10, 4, []int{0, 5, 9, 11}) }
func TestReconstructNothingMissing(t *testing.T)  { testRoundTrip(t, 5, 2, nil) }

func TestReconstructAllErasurePatterns(t *testing.T) {
	// RAID 6 on 4+2: every 1- and 2-shard erasure pattern must recover.
	for a := 0; a < 6; a++ {
		testRoundTrip(t, 4, 2, []int{a})
		for b := a + 1; b < 6; b++ {
			testRoundTrip(t, 4, 2, []int{a, b})
		}
	}
}

func TestReconstructTooManyMissing(t *testing.T) {
	c, _ := NewCoder(3, 1)
	shards := make([][]byte, 4)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 8)
	if err := c.Reconstruct(shards); err != ErrTooManyMissing {
		t.Fatalf("err = %v, want ErrTooManyMissing", err)
	}
}

func TestUpdateParityMatchesReencode(t *testing.T) {
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	data := make([][]byte, 4)
	for i := range data {
		data[i] = fillPattern(n, byte(i+1))
	}
	parity := [][]byte{make([]byte, n), make([]byte, n)}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	// Update shard 2 in place via delta and compare against full re-encode.
	oldShard := append([]byte(nil), data[2]...)
	newShard := fillPattern(n, 99)
	if err := c.UpdateParity(2, oldShard, newShard, parity); err != nil {
		t.Fatal(err)
	}
	data[2] = newShard
	want := [][]byte{make([]byte, n), make([]byte, n)}
	if err := c.Encode(data, want); err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if !bytes.Equal(parity[r], want[r]) {
			t.Fatalf("incremental parity %d diverges from re-encode", r)
		}
	}
}

func TestVerify(t *testing.T) {
	c, _ := NewCoder(3, 2)
	data := [][]byte{fillPattern(16, 1), fillPattern(16, 2), fillPattern(16, 3)}
	parity := [][]byte{make([]byte, 16), make([]byte, 16)}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatalf("verify of valid parity: ok=%v err=%v", ok, err)
	}
	parity[1][5] ^= 0xff
	ok, err = c.Verify(data, parity)
	if err != nil || ok {
		t.Fatalf("verify missed corruption: ok=%v err=%v", ok, err)
	}
}

func TestEncodeRejectsBadShapes(t *testing.T) {
	c, _ := NewCoder(2, 1)
	if err := c.Encode([][]byte{{1}}, [][]byte{{0}}); err == nil {
		t.Fatal("accepted wrong data shard count")
	}
	if err := c.Encode([][]byte{{1}, {2, 3}}, [][]byte{{0}}); err == nil {
		t.Fatal("accepted mismatched shard lengths")
	}
}

func TestReconstructPropertyQuick(t *testing.T) {
	// Property: for random data and any single/double erasure on a 4+2
	// geometry, reconstruction restores the original bytes.
	c, _ := NewCoder(4, 2)
	f := func(raw [16]byte, killA, killB uint8) bool {
		const n = 4
		data := make([][]byte, 4)
		for i := range data {
			data[i] = append([]byte(nil), raw[i*4:(i+1)*4]...)
		}
		parity := [][]byte{make([]byte, n), make([]byte, n)}
		if err := c.Encode(data, parity); err != nil {
			return false
		}
		shards := make([][]byte, 6)
		orig := make([][]byte, 6)
		copy(shards, data)
		copy(shards[4:], parity)
		for i := range shards {
			orig[i] = append([]byte(nil), shards[i]...)
		}
		a, b := int(killA%6), int(killB%6)
		shards[a] = nil
		shards[b] = nil
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXORHelpers(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	dst := make([]byte, 3)
	XOR(dst, a, b)
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 5 {
		t.Fatalf("XOR = %v", dst)
	}
	XORInto(dst, a)
	if dst[0] != 4 || dst[1] != 5 || dst[2] != 6 {
		t.Fatalf("XORInto = %v", dst)
	}
}

func TestXORPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	XOR(make([]byte, 2), make([]byte, 3), make([]byte, 3))
}

func TestCoeffMatchesEncode(t *testing.T) {
	c, _ := NewCoder(4, 2)
	const n = 8
	data := make([][]byte, 4)
	for i := range data {
		data[i] = fillPattern(n, byte(i+1))
	}
	parity := [][]byte{make([]byte, n), make([]byte, n)}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	// Rebuild parity incrementally via Coeff/MulXor.
	for r := 0; r < 2; r++ {
		acc := make([]byte, n)
		for col := 0; col < 4; col++ {
			MulXor(c.Coeff(r, col), data[col], acc)
		}
		if !bytes.Equal(acc, parity[r]) {
			t.Fatalf("incremental parity row %d diverges", r)
		}
	}
}

func TestCoeffRAID5AllOnes(t *testing.T) {
	c, _ := NewCoder(3, 1)
	for col := 0; col < 3; col++ {
		if c.Coeff(0, col) != 1 {
			t.Fatal("RAID5 coefficients must be 1 (XOR)")
		}
	}
}
