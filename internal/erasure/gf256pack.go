package erasure

import "encoding/binary"

// Packed-table encode kernels. For a fixed data column, every parity row
// multiplies that column by its own coefficient — so the per-column product
// tables of all rows can be packed side by side into one wider entry:
// pair2[col][b] = c0*b | c1*b<<8 (m == 2) and pair3[col][b] packs three rows
// into a uint32 (m == 3). One table load then yields the products for every
// parity row at once, halving (or thirding) the lookup traffic of the
// encode inner loop, which is what the hot path is bound by. Four columns
// are fused per pass so the parity words accumulate in registers and each
// source word is loaded exactly once.
//
// The tables are per-Coder (k * 512 B for m == 2, k * 1 KiB for m == 3),
// built once in NewCoder; all kernels are allocation-free.

// buildPair2 packs the two parity coefficients of one data column.
func buildPair2(c0, c1 byte) [256]uint16 {
	var t [256]uint16
	for b := 0; b < 256; b++ {
		t[b] = uint16(gfMul(c0, byte(b))) | uint16(gfMul(c1, byte(b)))<<8
	}
	return t
}

// buildPair3 packs the three parity coefficients of one data column.
func buildPair3(c0, c1, c2 byte) [256]uint32 {
	var t [256]uint32
	for b := 0; b < 256; b++ {
		t[b] = uint32(gfMul(c0, byte(b))) | uint32(gfMul(c1, byte(b)))<<8 |
			uint32(gfMul(c2, byte(b)))<<16
	}
	return t
}

// encPack2x4 encodes four data columns into two parity rows using packed
// pair tables. acc selects accumulate (^=) versus overwrite (=) so the
// first pass can skip zero-filling parity.
func encPack2x4(t0, t1, t2, t3 *[256]uint16, d0, d1, d2, d3, p0, p1 []byte, acc bool) {
	n := len(p0) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		s0 := binary.LittleEndian.Uint64(d0[i:])
		s1 := binary.LittleEndian.Uint64(d1[i:])
		s2 := binary.LittleEndian.Uint64(d2[i:])
		s3 := binary.LittleEndian.Uint64(d3[i:])
		var w0, w1 uint64
		x := t0[byte(s0)] ^ t1[byte(s1)] ^ t2[byte(s2)] ^ t3[byte(s3)]
		w0 |= uint64(x & 0xff)
		w1 |= uint64(x >> 8)
		x = t0[byte(s0>>8)] ^ t1[byte(s1>>8)] ^ t2[byte(s2>>8)] ^ t3[byte(s3>>8)]
		w0 |= uint64(x&0xff) << 8
		w1 |= uint64(x>>8) << 8
		x = t0[byte(s0>>16)] ^ t1[byte(s1>>16)] ^ t2[byte(s2>>16)] ^ t3[byte(s3>>16)]
		w0 |= uint64(x&0xff) << 16
		w1 |= uint64(x>>8) << 16
		x = t0[byte(s0>>24)] ^ t1[byte(s1>>24)] ^ t2[byte(s2>>24)] ^ t3[byte(s3>>24)]
		w0 |= uint64(x&0xff) << 24
		w1 |= uint64(x>>8) << 24
		x = t0[byte(s0>>32)] ^ t1[byte(s1>>32)] ^ t2[byte(s2>>32)] ^ t3[byte(s3>>32)]
		w0 |= uint64(x&0xff) << 32
		w1 |= uint64(x>>8) << 32
		x = t0[byte(s0>>40)] ^ t1[byte(s1>>40)] ^ t2[byte(s2>>40)] ^ t3[byte(s3>>40)]
		w0 |= uint64(x&0xff) << 40
		w1 |= uint64(x>>8) << 40
		x = t0[byte(s0>>48)] ^ t1[byte(s1>>48)] ^ t2[byte(s2>>48)] ^ t3[byte(s3>>48)]
		w0 |= uint64(x&0xff) << 48
		w1 |= uint64(x>>8) << 48
		x = t0[byte(s0>>56)] ^ t1[byte(s1>>56)] ^ t2[byte(s2>>56)] ^ t3[byte(s3>>56)]
		w0 |= uint64(x&0xff) << 56
		w1 |= uint64(x>>8) << 56
		if acc {
			w0 ^= binary.LittleEndian.Uint64(p0[i:])
			w1 ^= binary.LittleEndian.Uint64(p1[i:])
		}
		binary.LittleEndian.PutUint64(p0[i:], w0)
		binary.LittleEndian.PutUint64(p1[i:], w1)
	}
	for i := n; i < len(p0); i++ {
		x := t0[d0[i]] ^ t1[d1[i]] ^ t2[d2[i]] ^ t3[d3[i]]
		if acc {
			p0[i] ^= byte(x)
			p1[i] ^= byte(x >> 8)
		} else {
			p0[i] = byte(x)
			p1[i] = byte(x >> 8)
		}
	}
}

// encPack2x1 encodes one data column into two parity rows (remainder
// columns after the 4-wide passes).
func encPack2x1(t *[256]uint16, d, p0, p1 []byte, acc bool) {
	n := len(p0) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(d[i:])
		var w0, w1 uint64
		x := t[byte(s)]
		w0 |= uint64(x & 0xff)
		w1 |= uint64(x >> 8)
		x = t[byte(s>>8)]
		w0 |= uint64(x&0xff) << 8
		w1 |= uint64(x>>8) << 8
		x = t[byte(s>>16)]
		w0 |= uint64(x&0xff) << 16
		w1 |= uint64(x>>8) << 16
		x = t[byte(s>>24)]
		w0 |= uint64(x&0xff) << 24
		w1 |= uint64(x>>8) << 24
		x = t[byte(s>>32)]
		w0 |= uint64(x&0xff) << 32
		w1 |= uint64(x>>8) << 32
		x = t[byte(s>>40)]
		w0 |= uint64(x&0xff) << 40
		w1 |= uint64(x>>8) << 40
		x = t[byte(s>>48)]
		w0 |= uint64(x&0xff) << 48
		w1 |= uint64(x>>8) << 48
		x = t[byte(s>>56)]
		w0 |= uint64(x&0xff) << 56
		w1 |= uint64(x>>8) << 56
		if acc {
			w0 ^= binary.LittleEndian.Uint64(p0[i:])
			w1 ^= binary.LittleEndian.Uint64(p1[i:])
		}
		binary.LittleEndian.PutUint64(p0[i:], w0)
		binary.LittleEndian.PutUint64(p1[i:], w1)
	}
	for i := n; i < len(p0); i++ {
		x := t[d[i]]
		if acc {
			p0[i] ^= byte(x)
			p1[i] ^= byte(x >> 8)
		} else {
			p0[i] = byte(x)
			p1[i] = byte(x >> 8)
		}
	}
}

// encPack3x4 encodes four data columns into three parity rows using packed
// triple tables.
func encPack3x4(t0, t1, t2, t3 *[256]uint32, d0, d1, d2, d3, p0, p1, p2 []byte, acc bool) {
	n := len(p0) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		s0 := binary.LittleEndian.Uint64(d0[i:])
		s1 := binary.LittleEndian.Uint64(d1[i:])
		s2 := binary.LittleEndian.Uint64(d2[i:])
		s3 := binary.LittleEndian.Uint64(d3[i:])
		var w0, w1, w2 uint64
		x := t0[byte(s0)] ^ t1[byte(s1)] ^ t2[byte(s2)] ^ t3[byte(s3)]
		w0 |= uint64(x & 0xff)
		w1 |= uint64(x >> 8 & 0xff)
		w2 |= uint64(x >> 16)
		x = t0[byte(s0>>8)] ^ t1[byte(s1>>8)] ^ t2[byte(s2>>8)] ^ t3[byte(s3>>8)]
		w0 |= uint64(x&0xff) << 8
		w1 |= uint64(x>>8&0xff) << 8
		w2 |= uint64(x>>16) << 8
		x = t0[byte(s0>>16)] ^ t1[byte(s1>>16)] ^ t2[byte(s2>>16)] ^ t3[byte(s3>>16)]
		w0 |= uint64(x&0xff) << 16
		w1 |= uint64(x>>8&0xff) << 16
		w2 |= uint64(x>>16) << 16
		x = t0[byte(s0>>24)] ^ t1[byte(s1>>24)] ^ t2[byte(s2>>24)] ^ t3[byte(s3>>24)]
		w0 |= uint64(x&0xff) << 24
		w1 |= uint64(x>>8&0xff) << 24
		w2 |= uint64(x>>16) << 24
		x = t0[byte(s0>>32)] ^ t1[byte(s1>>32)] ^ t2[byte(s2>>32)] ^ t3[byte(s3>>32)]
		w0 |= uint64(x&0xff) << 32
		w1 |= uint64(x>>8&0xff) << 32
		w2 |= uint64(x>>16) << 32
		x = t0[byte(s0>>40)] ^ t1[byte(s1>>40)] ^ t2[byte(s2>>40)] ^ t3[byte(s3>>40)]
		w0 |= uint64(x&0xff) << 40
		w1 |= uint64(x>>8&0xff) << 40
		w2 |= uint64(x>>16) << 40
		x = t0[byte(s0>>48)] ^ t1[byte(s1>>48)] ^ t2[byte(s2>>48)] ^ t3[byte(s3>>48)]
		w0 |= uint64(x&0xff) << 48
		w1 |= uint64(x>>8&0xff) << 48
		w2 |= uint64(x>>16) << 48
		x = t0[byte(s0>>56)] ^ t1[byte(s1>>56)] ^ t2[byte(s2>>56)] ^ t3[byte(s3>>56)]
		w0 |= uint64(x&0xff) << 56
		w1 |= uint64(x>>8&0xff) << 56
		w2 |= uint64(x>>16) << 56
		if acc {
			w0 ^= binary.LittleEndian.Uint64(p0[i:])
			w1 ^= binary.LittleEndian.Uint64(p1[i:])
			w2 ^= binary.LittleEndian.Uint64(p2[i:])
		}
		binary.LittleEndian.PutUint64(p0[i:], w0)
		binary.LittleEndian.PutUint64(p1[i:], w1)
		binary.LittleEndian.PutUint64(p2[i:], w2)
	}
	for i := n; i < len(p0); i++ {
		x := t0[d0[i]] ^ t1[d1[i]] ^ t2[d2[i]] ^ t3[d3[i]]
		if acc {
			p0[i] ^= byte(x)
			p1[i] ^= byte(x >> 8)
			p2[i] ^= byte(x >> 16)
		} else {
			p0[i] = byte(x)
			p1[i] = byte(x >> 8)
			p2[i] = byte(x >> 16)
		}
	}
}

// encPack3x1 encodes one data column into three parity rows.
func encPack3x1(t *[256]uint32, d, p0, p1, p2 []byte, acc bool) {
	n := len(p0) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(d[i:])
		var w0, w1, w2 uint64
		for sh := 0; sh < 64; sh += 8 {
			x := t[byte(s>>sh)]
			w0 |= uint64(x&0xff) << sh
			w1 |= uint64(x>>8&0xff) << sh
			w2 |= uint64(x>>16) << sh
		}
		if acc {
			w0 ^= binary.LittleEndian.Uint64(p0[i:])
			w1 ^= binary.LittleEndian.Uint64(p1[i:])
			w2 ^= binary.LittleEndian.Uint64(p2[i:])
		}
		binary.LittleEndian.PutUint64(p0[i:], w0)
		binary.LittleEndian.PutUint64(p1[i:], w1)
		binary.LittleEndian.PutUint64(p2[i:], w2)
	}
	for i := n; i < len(p0); i++ {
		x := t[d[i]]
		if acc {
			p0[i] ^= byte(x)
			p1[i] ^= byte(x >> 8)
			p2[i] ^= byte(x >> 16)
		} else {
			p0[i] = byte(x)
			p1[i] = byte(x >> 8)
			p2[i] = byte(x >> 16)
		}
	}
}

// xorSet4 computes p = d0 ^ d1 ^ d2 ^ d3 — the RAID 5 (m == 1) encode
// kernel — 64 bytes per iteration on aligned operands, four source
// words per parity word otherwise.
func xorSet4(d0, d1, d2, d3, p []byte, acc bool) {
	if len(p) >= slabMin &&
		aligned8(d0) && aligned8(d1) && aligned8(d2) && aligned8(d3) && aligned8(p) {
		i := xorSet4Slab(d0, d1, d2, d3, p, acc)
		for ; i < len(p); i++ {
			w := d0[i] ^ d1[i] ^ d2[i] ^ d3[i]
			if acc {
				w ^= p[i]
			}
			p[i] = w
		}
		return
	}
	n := len(p) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(d0[i:]) ^ binary.LittleEndian.Uint64(d1[i:]) ^
			binary.LittleEndian.Uint64(d2[i:]) ^ binary.LittleEndian.Uint64(d3[i:])
		if acc {
			w ^= binary.LittleEndian.Uint64(p[i:])
		}
		binary.LittleEndian.PutUint64(p[i:], w)
	}
	for i := n; i < len(p); i++ {
		w := d0[i] ^ d1[i] ^ d2[i] ^ d3[i]
		if acc {
			w ^= p[i]
		}
		p[i] = w
	}
}
