package erasure

import "unsafe"

// Cache-line slab views: the wide kernels process 64 bytes (eight uint64
// words) per unrolled iteration by reinterpreting 8-byte-aligned []byte
// operands as []uint64 via unsafe.Slice. This removes the per-word
// bounds checks and load/store byte shuffling of the portable
// encoding/binary codec and lets the compiler keep the eight lanes in
// registers.
//
// Endianness: every kernel applies a per-byte-lane transform (XOR, or a
// nibble-table product) and loads and stores through the same native
// word view, so lane order cancels exactly as it does for the
// little-endian codec — the slab path is endian-agnostic.
//
// Buffers that are too short or not 8-byte aligned (sub-slice views at
// odd offsets) take the portable fallback loops in gf256wide.go, and the
// slab loops themselves delegate their <64-byte remainder to scalar
// tails — "unaligned lengths exercising the slab edges" is a tested
// contract, not an accident.

// slabMin is the shortest operand worth the alignment checks.
const slabMin = 64

// aligned8 reports whether s starts on an 8-byte boundary.
func aligned8(s []byte) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))&7 == 0
}

// words reinterprets the first n words of s as []uint64. Caller must
// have checked alignment and len(s) >= 8n.
func words(s []byte, n int) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(s))), n)
}

// xorIntoSlab is dst ^= src over full cache lines; returns bytes done.
func xorIntoSlab(dst, src []byte) int {
	w := len(src) >> 3
	sw, dw := words(src, w), words(dst, w)
	i := 0
	for ; i+8 <= w; i += 8 {
		dw[i] ^= sw[i]
		dw[i+1] ^= sw[i+1]
		dw[i+2] ^= sw[i+2]
		dw[i+3] ^= sw[i+3]
		dw[i+4] ^= sw[i+4]
		dw[i+5] ^= sw[i+5]
		dw[i+6] ^= sw[i+6]
		dw[i+7] ^= sw[i+7]
	}
	for ; i < w; i++ {
		dw[i] ^= sw[i]
	}
	return w << 3
}

// xorSlab is dst = a ^ b over full cache lines; returns bytes done.
func xorSlab(dst, a, b []byte) int {
	w := len(a) >> 3
	aw, bw, dw := words(a, w), words(b, w), words(dst, w)
	i := 0
	for ; i+8 <= w; i += 8 {
		dw[i] = aw[i] ^ bw[i]
		dw[i+1] = aw[i+1] ^ bw[i+1]
		dw[i+2] = aw[i+2] ^ bw[i+2]
		dw[i+3] = aw[i+3] ^ bw[i+3]
		dw[i+4] = aw[i+4] ^ bw[i+4]
		dw[i+5] = aw[i+5] ^ bw[i+5]
		dw[i+6] = aw[i+6] ^ bw[i+6]
		dw[i+7] = aw[i+7] ^ bw[i+7]
	}
	for ; i < w; i++ {
		dw[i] = aw[i] ^ bw[i]
	}
	return w << 3
}

// mulXorSlab is dst ^= c*src over full cache lines; returns bytes done.
func mulXorSlab(t *mulTable, dst, src []byte) int {
	w := len(src) >> 3
	sw, dw := words(src, w), words(dst, w)
	i := 0
	for ; i+8 <= w; i += 8 {
		dw[i] ^= t.mulWord(sw[i])
		dw[i+1] ^= t.mulWord(sw[i+1])
		dw[i+2] ^= t.mulWord(sw[i+2])
		dw[i+3] ^= t.mulWord(sw[i+3])
		dw[i+4] ^= t.mulWord(sw[i+4])
		dw[i+5] ^= t.mulWord(sw[i+5])
		dw[i+6] ^= t.mulWord(sw[i+6])
		dw[i+7] ^= t.mulWord(sw[i+7])
	}
	for ; i < w; i++ {
		dw[i] ^= t.mulWord(sw[i])
	}
	return w << 3
}

// mulSetSlab is dst = c*src over full cache lines; returns bytes done.
func mulSetSlab(t *mulTable, dst, src []byte) int {
	w := len(src) >> 3
	sw, dw := words(src, w), words(dst, w)
	i := 0
	for ; i+8 <= w; i += 8 {
		dw[i] = t.mulWord(sw[i])
		dw[i+1] = t.mulWord(sw[i+1])
		dw[i+2] = t.mulWord(sw[i+2])
		dw[i+3] = t.mulWord(sw[i+3])
		dw[i+4] = t.mulWord(sw[i+4])
		dw[i+5] = t.mulWord(sw[i+5])
		dw[i+6] = t.mulWord(sw[i+6])
		dw[i+7] = t.mulWord(sw[i+7])
	}
	for ; i < w; i++ {
		dw[i] = t.mulWord(sw[i])
	}
	return w << 3
}

// mulXorIntoSlab is the fused RMW delta kernel dst = base ^ c*src over
// full cache lines; returns bytes done.
func mulXorIntoSlab(t *mulTable, dst, base, src []byte) int {
	w := len(src) >> 3
	sw, bw, dw := words(src, w), words(base, w), words(dst, w)
	i := 0
	for ; i+8 <= w; i += 8 {
		dw[i] = bw[i] ^ t.mulWord(sw[i])
		dw[i+1] = bw[i+1] ^ t.mulWord(sw[i+1])
		dw[i+2] = bw[i+2] ^ t.mulWord(sw[i+2])
		dw[i+3] = bw[i+3] ^ t.mulWord(sw[i+3])
		dw[i+4] = bw[i+4] ^ t.mulWord(sw[i+4])
		dw[i+5] = bw[i+5] ^ t.mulWord(sw[i+5])
		dw[i+6] = bw[i+6] ^ t.mulWord(sw[i+6])
		dw[i+7] = bw[i+7] ^ t.mulWord(sw[i+7])
	}
	for ; i < w; i++ {
		dw[i] = bw[i] ^ t.mulWord(sw[i])
	}
	return w << 3
}

// xorSet4Slab is p = d0^d1^d2^d3 (optionally ^= into p) over full cache
// lines; returns bytes done.
func xorSet4Slab(d0, d1, d2, d3, p []byte, acc bool) int {
	w := len(p) >> 3
	w0, w1, w2, w3, pw := words(d0, w), words(d1, w), words(d2, w), words(d3, w), words(p, w)
	i := 0
	if acc {
		for ; i+8 <= w; i += 8 {
			pw[i] ^= w0[i] ^ w1[i] ^ w2[i] ^ w3[i]
			pw[i+1] ^= w0[i+1] ^ w1[i+1] ^ w2[i+1] ^ w3[i+1]
			pw[i+2] ^= w0[i+2] ^ w1[i+2] ^ w2[i+2] ^ w3[i+2]
			pw[i+3] ^= w0[i+3] ^ w1[i+3] ^ w2[i+3] ^ w3[i+3]
			pw[i+4] ^= w0[i+4] ^ w1[i+4] ^ w2[i+4] ^ w3[i+4]
			pw[i+5] ^= w0[i+5] ^ w1[i+5] ^ w2[i+5] ^ w3[i+5]
			pw[i+6] ^= w0[i+6] ^ w1[i+6] ^ w2[i+6] ^ w3[i+6]
			pw[i+7] ^= w0[i+7] ^ w1[i+7] ^ w2[i+7] ^ w3[i+7]
		}
		for ; i < w; i++ {
			pw[i] ^= w0[i] ^ w1[i] ^ w2[i] ^ w3[i]
		}
	} else {
		for ; i+8 <= w; i += 8 {
			pw[i] = w0[i] ^ w1[i] ^ w2[i] ^ w3[i]
			pw[i+1] = w0[i+1] ^ w1[i+1] ^ w2[i+1] ^ w3[i+1]
			pw[i+2] = w0[i+2] ^ w1[i+2] ^ w2[i+2] ^ w3[i+2]
			pw[i+3] = w0[i+3] ^ w1[i+3] ^ w2[i+3] ^ w3[i+3]
			pw[i+4] = w0[i+4] ^ w1[i+4] ^ w2[i+4] ^ w3[i+4]
			pw[i+5] = w0[i+5] ^ w1[i+5] ^ w2[i+5] ^ w3[i+5]
			pw[i+6] = w0[i+6] ^ w1[i+6] ^ w2[i+6] ^ w3[i+6]
			pw[i+7] = w0[i+7] ^ w1[i+7] ^ w2[i+7] ^ w3[i+7]
		}
		for ; i < w; i++ {
			pw[i] = w0[i] ^ w1[i] ^ w2[i] ^ w3[i]
		}
	}
	return w << 3
}
