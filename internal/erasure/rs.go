package erasure

import (
	"errors"
	"fmt"
)

// Coder encodes k data shards into m parity shards and reconstructs up to m
// missing shards. For m == 1 the code degenerates to XOR parity (RAID 5);
// larger m uses a systematic Reed–Solomon code built from an extended
// Vandermonde matrix reduced to systematic form.
type Coder struct {
	k, m int
	// parityRows[r][c] is the coefficient applied to data shard c when
	// producing parity shard r.
	parityRows [][]byte
	// Packed per-column product tables (see gf256pack.go): one table load
	// yields the products for every parity row at once. Built in NewCoder
	// for the geometries the AFA engines use; nil for m == 1 (plain XOR)
	// and m > 3 (generic wide path).
	pack2 [][256]uint16 // m == 2
	pack3 [][256]uint32 // m == 3
}

// ErrTooManyMissing reports an unrecoverable erasure pattern.
var ErrTooManyMissing = errors.New("erasure: more missing shards than parity can recover")

// NewCoder builds a coder for k data and m parity shards. k >= 1, m >= 1,
// k+m <= 255.
func NewCoder(k, m int) (*Coder, error) {
	if k < 1 || m < 1 || k+m > 255 {
		return nil, fmt.Errorf("erasure: invalid geometry k=%d m=%d", k, m)
	}
	c := &Coder{k: k, m: m}
	// Parity coefficient matrix. A systematic code [I; P] is MDS iff every
	// square submatrix of P is nonsingular. A Cauchy matrix
	// P[r][c] = 1/(x_r ^ y_c) with all x_r, y_c distinct has exactly that
	// property over any field (unlike truncated Vandermonde over GF(2^8),
	// the classic erasure-coding pitfall). m == 1 is special-cased to the
	// all-ones row so RAID 5 parity is plain XOR.
	c.parityRows = make([][]byte, m)
	for r := 0; r < m; r++ {
		row := make([]byte, k)
		for col := 0; col < k; col++ {
			if m == 1 {
				row[col] = 1
			} else {
				row[col] = gfInv(byte(r) ^ byte(m+col))
			}
		}
		c.parityRows[r] = row
	}
	switch m {
	case 2:
		c.pack2 = make([][256]uint16, k)
		for col := 0; col < k; col++ {
			c.pack2[col] = buildPair2(c.parityRows[0][col], c.parityRows[1][col])
		}
	case 3:
		c.pack3 = make([][256]uint32, k)
		for col := 0; col < k; col++ {
			c.pack3[col] = buildPair3(c.parityRows[0][col], c.parityRows[1][col], c.parityRows[2][col])
		}
	}
	return c, nil
}

// K reports the data shard count.
func (c *Coder) K() int { return c.k }

// M reports the parity shard count.
func (c *Coder) M() int { return c.m }

// ParityRows returns a copy of the generator's parity coefficient rows:
// ParityRows()[r][col] is the GF(256) coefficient applied to data shard
// col when computing parity shard r. External oracles (perf snapshots,
// cross-implementation checks) use it to recompute parity independently.
func (c *Coder) ParityRows() [][]byte {
	rows := make([][]byte, c.m)
	for r := range rows {
		rows[r] = append([]byte(nil), c.parityRows[r]...)
	}
	return rows
}

// Encode computes parity shards from data shards. data must hold k
// equal-length shards; parity must hold m shards of the same length and is
// overwritten.
func (c *Coder) Encode(data, parity [][]byte) error {
	if err := c.checkShards(data, parity); err != nil {
		return err
	}
	switch c.m {
	case 1:
		c.encode1(data, parity[0])
	case 2:
		c.encode2(data, parity[0], parity[1])
	case 3:
		c.encode3(data, parity[0], parity[1], parity[2])
	default:
		for r := 0; r < c.m; r++ {
			p := parity[r]
			// First column overwrites (no zero-fill pass), the rest accumulate.
			mulSliceSet(c.parityRows[r][0], data[0], p)
			for col := 1; col < c.k; col++ {
				mulSliceXor(c.parityRows[r][col], data[col], p)
			}
		}
	}
	return nil
}

// encode1 is RAID 5 parity: p = XOR of all data shards, four columns per
// pass.
func (c *Coder) encode1(data [][]byte, p []byte) {
	col, acc := 0, false
	for ; col+4 <= c.k; col += 4 {
		xorSet4(data[col], data[col+1], data[col+2], data[col+3], p, acc)
		acc = true
	}
	for ; col < c.k; col++ {
		if acc {
			xorIntoWide(p, data[col])
		} else {
			copy(p, data[col])
			acc = true
		}
	}
}

// encode2 is the m == 2 hot path: packed pair tables, four columns fused
// per pass so each source word is loaded once and parity stays in
// registers.
func (c *Coder) encode2(data [][]byte, p0, p1 []byte) {
	col, acc := 0, false
	for ; col+4 <= c.k; col += 4 {
		encPack2x4(&c.pack2[col], &c.pack2[col+1], &c.pack2[col+2], &c.pack2[col+3],
			data[col], data[col+1], data[col+2], data[col+3], p0, p1, acc)
		acc = true
	}
	for ; col < c.k; col++ {
		encPack2x1(&c.pack2[col], data[col], p0, p1, acc)
		acc = true
	}
}

// encode3 mirrors encode2 with triple-packed tables.
func (c *Coder) encode3(data [][]byte, p0, p1, p2 []byte) {
	col, acc := 0, false
	for ; col+4 <= c.k; col += 4 {
		encPack3x4(&c.pack3[col], &c.pack3[col+1], &c.pack3[col+2], &c.pack3[col+3],
			data[col], data[col+1], data[col+2], data[col+3], p0, p1, p2, acc)
		acc = true
	}
	for ; col < c.k; col++ {
		encPack3x1(&c.pack3[col], data[col], p0, p1, p2, acc)
		acc = true
	}
}

// UpdateParity applies an incremental parity delta for an in-place data
// shard update: given old and new contents of data shard idx, it XORs the
// appropriate multiple of (old ^ new) into each parity shard. This is the
// partial-parity primitive the AFA engines use (RAID 5: parity ^= old^new).
// Callers on an allocation-free path compute the delta into their own
// buffer and use Delta directly.
func (c *Coder) UpdateParity(idx int, oldData, newData []byte, parity [][]byte) error {
	if idx < 0 || idx >= c.k {
		return fmt.Errorf("erasure: shard index %d out of range", idx)
	}
	if len(oldData) != len(newData) {
		return errors.New("erasure: old/new shard length mismatch")
	}
	delta := make([]byte, len(oldData))
	xorWide(delta, oldData, newData)
	return c.Delta(idx, delta, parity)
}

// Delta is the parity-delta fast path for in-place RMW: given the XOR
// difference of data shard idx (delta = old ^ new), it folds
// Coeff(r, idx)*delta into each parity shard — partial-stripe updates
// touch only the delta instead of re-encoding the stripe. Allocation-free.
func (c *Coder) Delta(idx int, delta []byte, parity [][]byte) error {
	if idx < 0 || idx >= c.k {
		return fmt.Errorf("erasure: shard index %d out of range", idx)
	}
	for r := 0; r < c.m; r++ {
		if len(parity[r]) != len(delta) {
			return errors.New("erasure: parity shard length mismatch")
		}
		mulSliceXor(c.parityRows[r][idx], delta, parity[r])
	}
	return nil
}

// DeltaRow is Delta for a single parity row r, fused: newParity =
// oldParity ^ Coeff(r, idx)*delta in one pass, leaving oldParity intact.
// Engines use it when the pre-update parity must stay live (an in-flight
// read of the old stripe) while the updated copy is produced.
func (c *Coder) DeltaRow(r, idx int, delta, oldParity, newParity []byte) {
	if r < 0 || r >= c.m || idx < 0 || idx >= c.k {
		panic("erasure: DeltaRow index out of range")
	}
	if len(oldParity) != len(delta) || len(newParity) != len(delta) {
		panic("erasure: DeltaRow length mismatch")
	}
	mulSliceXorInto(c.parityRows[r][idx], delta, oldParity, newParity)
}

// Reconstruct fills in missing shards. shards holds k data shards followed
// by m parity shards; missing entries are nil and are allocated and filled
// on success. Present shards must all share one length.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("erasure: want %d shards, got %d", c.k+c.m, len(shards))
	}
	shardLen := -1
	var missing []int
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
			continue
		}
		if shardLen < 0 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return errors.New("erasure: shard length mismatch")
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > c.m {
		return ErrTooManyMissing
	}
	if shardLen < 0 {
		return errors.New("erasure: all shards missing")
	}

	// Build the generator rows for every shard: identity rows for data,
	// parityRows for parity. Select k rows corresponding to present shards,
	// invert that submatrix, and use it to recover missing data shards.
	missingData := false
	for _, i := range missing {
		if i < c.k {
			missingData = true
			break
		}
	}
	dataShards := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		dataShards[i] = shards[i]
	}
	if missingData {
		// Choose k present shards (prefer data shards, fill with parity).
		type srcRow struct {
			row   []byte // coefficients over data shards
			shard []byte
		}
		var sources []srcRow
		for i := 0; i < c.k && len(sources) < c.k; i++ {
			if shards[i] != nil {
				row := make([]byte, c.k)
				row[i] = 1
				sources = append(sources, srcRow{row, shards[i]})
			}
		}
		for r := 0; r < c.m && len(sources) < c.k; r++ {
			if shards[c.k+r] != nil {
				row := make([]byte, c.k)
				copy(row, c.parityRows[r])
				sources = append(sources, srcRow{row, shards[c.k+r]})
			}
		}
		if len(sources) < c.k {
			return ErrTooManyMissing
		}
		// Invert the k x k matrix of source rows.
		mat := make([][]byte, c.k)
		inv := make([][]byte, c.k)
		for i := 0; i < c.k; i++ {
			mat[i] = make([]byte, c.k)
			copy(mat[i], sources[i].row)
			inv[i] = make([]byte, c.k)
			inv[i][i] = 1
		}
		for col := 0; col < c.k; col++ {
			pivot := -1
			for r := col; r < c.k; r++ {
				if mat[r][col] != 0 {
					pivot = r
					break
				}
			}
			if pivot < 0 {
				return errors.New("erasure: singular recovery matrix")
			}
			mat[col], mat[pivot] = mat[pivot], mat[col]
			inv[col], inv[pivot] = inv[pivot], inv[col]
			f := gfInv(mat[col][col])
			for j := 0; j < c.k; j++ {
				mat[col][j] = gfMul(mat[col][j], f)
				inv[col][j] = gfMul(inv[col][j], f)
			}
			for r := 0; r < c.k; r++ {
				if r == col || mat[r][col] == 0 {
					continue
				}
				g := mat[r][col]
				for j := 0; j < c.k; j++ {
					mat[r][j] ^= gfMul(g, mat[col][j])
					inv[r][j] ^= gfMul(g, inv[col][j])
				}
			}
		}
		// Recover each missing data shard d: data[d] = sum_j inv[d][j] * source[j].
		for _, d := range missing {
			if d >= c.k {
				continue
			}
			out := make([]byte, shardLen)
			for j := 0; j < c.k; j++ {
				mulSliceXor(inv[d][j], sources[j].shard, out)
			}
			shards[d] = out
			dataShards[d] = out
		}
	}
	// Recompute any missing parity shards from (now complete) data.
	for _, i := range missing {
		if i < c.k {
			continue
		}
		r := i - c.k
		out := make([]byte, shardLen)
		for col := 0; col < c.k; col++ {
			mulSliceXor(c.parityRows[r][col], dataShards[col], out)
		}
		shards[i] = out
	}
	return nil
}

// Verify reports whether the parity shards are consistent with the data.
func (c *Coder) Verify(data, parity [][]byte) (bool, error) {
	if err := c.checkShards(data, parity); err != nil {
		return false, err
	}
	tmp := make([][]byte, c.m)
	for i := range tmp {
		tmp[i] = make([]byte, len(parity[i]))
	}
	if err := c.Encode(data, tmp); err != nil {
		return false, err
	}
	for r := range tmp {
		for i := range tmp[r] {
			if tmp[r][i] != parity[r][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

func (c *Coder) checkShards(data, parity [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("erasure: want %d data shards, got %d", c.k, len(data))
	}
	if len(parity) != c.m {
		return fmt.Errorf("erasure: want %d parity shards, got %d", c.m, len(parity))
	}
	n := len(data[0])
	for _, s := range data {
		if len(s) != n {
			return errors.New("erasure: data shard length mismatch")
		}
	}
	for _, s := range parity {
		if len(s) != n {
			return errors.New("erasure: parity shard length mismatch")
		}
	}
	return nil
}

// XOR computes dst = a ^ b elementwise; all slices must share a length.
// It is the fast path RAID 5 engines use for single-parity math.
func XOR(dst, a, b []byte) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("erasure: XOR length mismatch")
	}
	xorWide(dst, a, b)
}

// XORInto accumulates src into dst (dst ^= src).
func XORInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic("erasure: XORInto length mismatch")
	}
	xorIntoWide(dst, src)
}

// Coeff reports the generator coefficient applied to data shard col when
// producing parity row r — exposed so engines can maintain incremental
// parity accumulators (partial parity) without re-encoding whole stripes.
func (c *Coder) Coeff(r, col int) byte {
	if r < 0 || r >= c.m || col < 0 || col >= c.k {
		panic("erasure: coefficient index out of range")
	}
	return c.parityRows[r][col]
}

// MulXor accumulates coeff*src into dst over GF(256): dst ^= coeff*src.
func MulXor(coeff byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("erasure: MulXor length mismatch")
	}
	mulSliceXor(coeff, src, dst)
}

// MulXorInto computes dst = base ^ coeff*src in one fused pass, the
// read-modify-write shape of a parity delta application that must not
// clobber base.
func MulXorInto(coeff byte, src, base, dst []byte) {
	if len(src) != len(base) || len(src) != len(dst) {
		panic("erasure: MulXorInto length mismatch")
	}
	mulSliceXorInto(coeff, src, base, dst)
}
