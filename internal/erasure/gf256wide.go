package erasure

import "encoding/binary"

// Wide GF(256) kernels: the multiply-accumulate inner loops of RS
// encode/decode processed 8 bytes per step in pure Go.
//
// The technique is the classic split-table (high/low nibble) formulation:
// for a fixed coefficient c, c*s = c*(s_hi<<4) ^ c*(s_lo), so two 16-entry
// tables — products of c with every high nibble and every low nibble —
// replace the log/exp lookups and the per-byte zero branch. The source is
// loaded 8 bytes at a time as a uint64, each byte's two nibbles index the
// 16-byte tables (L1-resident, branch-free), and the products are packed
// back into a uint64 that is XORed into dst with a single store. The same
// uint64 codec (little-endian) is used for load and store, so lane order
// cancels and the kernels are endian-agnostic.
//
// All kernels are allocation-free; the 256 coefficient tables (8 KiB
// total) are precomputed at package init.

// mulTable holds the split nibble product tables of one coefficient:
// lo[n] = c*n and hi[n] = c*(n<<4).
type mulTable struct {
	lo [16]byte
	hi [16]byte
}

// mulTabs[c] is the split table of coefficient c.
var mulTabs [256]mulTable

func init() {
	for c := 0; c < 256; c++ {
		t := &mulTabs[c]
		for n := 0; n < 16; n++ {
			t.lo[n] = gfMul(byte(c), byte(n))
			t.hi[n] = gfMul(byte(c), byte(n<<4))
		}
	}
}

// mulWord multiplies each of the 8 field elements packed in s by the
// table's coefficient.
func (t *mulTable) mulWord(s uint64) uint64 {
	return uint64(t.lo[s&15]^t.hi[s>>4&15]) |
		uint64(t.lo[s>>8&15]^t.hi[s>>12&15])<<8 |
		uint64(t.lo[s>>16&15]^t.hi[s>>20&15])<<16 |
		uint64(t.lo[s>>24&15]^t.hi[s>>28&15])<<24 |
		uint64(t.lo[s>>32&15]^t.hi[s>>36&15])<<32 |
		uint64(t.lo[s>>40&15]^t.hi[s>>44&15])<<40 |
		uint64(t.lo[s>>48&15]^t.hi[s>>52&15])<<48 |
		uint64(t.lo[s>>56&15]^t.hi[s>>60&15])<<56
}

// mulSliceXor computes dst[i] ^= c * src[i] for all i — the hot
// multiply-accumulate of Encode/Delta/Reconstruct — 64 bytes per
// iteration on aligned operands (see gf256slab.go), 8 bytes per step
// otherwise, with a scalar tail for unaligned lengths.
func mulSliceXor(c byte, src, dst []byte) {
	switch c {
	case 0:
		return
	case 1:
		xorIntoWide(dst, src)
		return
	}
	t := &mulTabs[c]
	i := 0
	if len(src) >= slabMin && aligned8(src) && aligned8(dst) {
		i = mulXorSlab(t, dst, src)
	} else {
		n := len(src) &^ 7
		for ; i < n; i += 8 {
			s := binary.LittleEndian.Uint64(src[i:])
			d := binary.LittleEndian.Uint64(dst[i:])
			binary.LittleEndian.PutUint64(dst[i:], d^t.mulWord(s))
		}
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] ^= t.lo[s&15] ^ t.hi[s>>4]
	}
}

// mulSliceXorInto is the fused RMW delta kernel: dst[i] = base[i] ^
// c*src[i] in one pass, so an in-place parity update reads old parity
// and writes new parity without an intermediate copy.
func mulSliceXorInto(c byte, src, base, dst []byte) {
	switch c {
	case 0:
		copy(dst, base[:len(src)])
		return
	case 1:
		xorWide(dst, base, src)
		return
	}
	t := &mulTabs[c]
	i := 0
	if len(src) >= slabMin && aligned8(src) && aligned8(base) && aligned8(dst) {
		i = mulXorIntoSlab(t, dst, base, src)
	} else {
		n := len(src) &^ 7
		for ; i < n; i += 8 {
			s := binary.LittleEndian.Uint64(src[i:])
			b := binary.LittleEndian.Uint64(base[i:])
			binary.LittleEndian.PutUint64(dst[i:], b^t.mulWord(s))
		}
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] = base[i] ^ t.lo[s&15] ^ t.hi[s>>4]
	}
}

// mulSliceSet computes dst[i] = c * src[i] (overwrite, no accumulate), so
// encoders can skip zero-filling the destination for the first column.
func mulSliceSet(c byte, src, dst []byte) {
	if c == 1 {
		copy(dst, src)
		return
	}
	if c == 0 {
		clear(dst[:len(src)])
		return
	}
	t := &mulTabs[c]
	i := 0
	if len(src) >= slabMin && aligned8(src) && aligned8(dst) {
		i = mulSetSlab(t, dst, src)
	} else {
		n := len(src) &^ 7
		for ; i < n; i += 8 {
			s := binary.LittleEndian.Uint64(src[i:])
			binary.LittleEndian.PutUint64(dst[i:], t.mulWord(s))
		}
	}
	for ; i < len(src); i++ {
		s := src[i]
		dst[i] = t.lo[s&15] ^ t.hi[s>>4]
	}
}

// xorIntoWide accumulates src into dst (dst ^= src): 64 bytes per
// iteration aligned, 8 bytes per step otherwise.
func xorIntoWide(dst, src []byte) {
	i := 0
	if len(src) >= slabMin && aligned8(src) && aligned8(dst) {
		i = xorIntoSlab(dst, src)
	} else {
		n := len(src) &^ 7
		for ; i < n; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		}
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// xorWide computes dst = a ^ b elementwise: 64 bytes per iteration
// aligned, 8 bytes per step otherwise.
func xorWide(dst, a, b []byte) {
	i := 0
	if len(a) >= slabMin && aligned8(a) && aligned8(b) && aligned8(dst) {
		i = xorSlab(dst, a, b)
	} else {
		n := len(a) &^ 7
		for ; i < n; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
		}
	}
	for ; i < len(a); i++ {
		dst[i] = a[i] ^ b[i]
	}
}
