package nvme

import (
	"errors"
	"testing"

	"biza/internal/fault"
	"biza/internal/sim"
	"biza/internal/storerr"
	"biza/internal/zns"
)

func newStack(t *testing.T, cfg Config) (*sim.Engine, *Queue) {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := zns.New(eng, zns.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, New(dev, cfg)
}

func TestPassthroughInOrder(t *testing.T) {
	eng, q := newStack(t, Config{})
	var errs []error
	for i := 0; i < 8; i++ {
		lba := int64(i)
		q.Write(0, lba, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
			errs = append(errs, r.Err)
		})
	}
	eng.Run()
	if len(errs) != 8 {
		t.Fatalf("completions = %d", len(errs))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("write %d failed: %v", i, err)
		}
	}
	if q.Reordered() != 0 {
		t.Fatal("zero-window queue reordered commands")
	}
}

// TestReorderingBreaksNaiveParallelWrites demonstrates the §3.2 hazard:
// parallel sequential writes to one zone fail under driver reordering
// when nothing serializes them.
func TestReorderingBreaksNaiveParallelWrites(t *testing.T) {
	eng, q := newStack(t, Config{ReorderWindow: 20 * sim.Microsecond, Seed: 5})
	failures := 0
	// Non-ZRWA zone: strict sequential rule. Issue a burst of in-flight
	// sequential writes; jittered delivery must reorder some and the late
	// arrivals fail ErrNotSequential.
	for i := 0; i < 64; i++ {
		q.Write(0, int64(i), 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
			if errors.Is(r.Err, zns.ErrNotSequential) {
				failures++
			}
		})
	}
	eng.Run()
	if q.Reordered() == 0 {
		t.Fatal("no reordering with a 20us window")
	}
	if failures == 0 {
		t.Fatal("reordering caused no write failures — hazard not modeled")
	}
}

// TestZoneOrderedDeliveryPreventsFailures shows zone write locking
// (mq-deadline) restores per-zone order and the same burst succeeds.
func TestZoneOrderedDeliveryPreventsFailures(t *testing.T) {
	eng, q := newStack(t, Config{ReorderWindow: 20 * sim.Microsecond, ZoneOrdered: true, Seed: 5})
	var errs int
	for z := 0; z < 4; z++ {
		for i := 0; i < 32; i++ {
			q.Write(z, int64(i), 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
				if r.Err != nil {
					errs++
				}
			})
		}
	}
	eng.Run()
	if errs != 0 {
		t.Fatalf("%d writes failed despite zone-ordered delivery", errs)
	}
}

func TestReorderDeterminism(t *testing.T) {
	run := func() uint64 {
		eng, q := newStack(t, Config{ReorderWindow: 10 * sim.Microsecond, Seed: 42})
		for i := 0; i < 100; i++ {
			q.Write(i%4, int64(i/4), 1, nil, nil, zns.TagUserData, nil)
		}
		eng.Run()
		return q.Reordered()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestReadThroughQueue(t *testing.T) {
	eng, q := newStack(t, Config{ReorderWindow: 5 * sim.Microsecond, Seed: 1})
	data := make([]byte, 4096)
	for i := range data {
		data[i] = 0xab
	}
	okWrite := false
	q.Write(0, 0, 1, data, nil, zns.TagUserData, func(r zns.WriteResult) { okWrite = r.Err == nil })
	eng.Run()
	if !okWrite {
		t.Fatal("write failed")
	}
	var got []byte
	q.Read(0, 0, 1, func(r zns.ReadResult) { got = r.Data })
	eng.Run()
	if len(got) != 4096 || got[0] != 0xab {
		t.Fatal("read through queue returned wrong data")
	}
}

func TestAppendAndResetThroughQueue(t *testing.T) {
	eng, q := newStack(t, Config{ReorderWindow: 2 * sim.Microsecond, Seed: 9})
	var lba int64 = -1
	q.Append(1, 2, nil, nil, zns.TagUserData, func(r zns.AppendResult) {
		if r.Err == nil {
			lba = r.LBA
		}
	})
	eng.Run()
	if lba != 0 {
		t.Fatalf("append lba = %d", lba)
	}
	resetDone := false
	q.Reset(1, func(err error) { resetDone = err == nil })
	eng.Run()
	if !resetDone {
		t.Fatal("reset did not complete")
	}
	info, _ := q.Device().ZoneInfo(1)
	if info.WritePtr != 0 {
		t.Fatal("reset ineffective")
	}
}

func TestLatencyIncludesQueueDelay(t *testing.T) {
	eng, q := newStack(t, Config{ReorderWindow: 50 * sim.Microsecond, Seed: 3})
	var lat sim.Time
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) { lat = r.Latency })
	eng.Run()
	// End-to-end latency counts from submission, so it includes jitter.
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestZoneOrderedPropertyUnderRandomJitter(t *testing.T) {
	// Property: with ZoneOrdered set, per-zone sequential writes never
	// fail regardless of jitter window or seed.
	for seed := uint64(0); seed < 20; seed++ {
		eng, q := newStack(t, Config{
			ReorderWindow: sim.Time(1+seed%7) * 10 * sim.Microsecond,
			ZoneOrdered:   true,
			Seed:          seed,
		})
		failures := 0
		for z := 0; z < 4; z++ {
			for i := 0; i < 40; i++ {
				q.Write(z, int64(i), 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
					if r.Err != nil {
						failures++
					}
				})
			}
		}
		eng.Run()
		if failures > 0 {
			t.Fatalf("seed %d: %d ordered writes failed", seed, failures)
		}
	}
}

func injected(t *testing.T, spec *fault.Spec, seed uint64) *fault.Injector {
	t.Helper()
	p, err := fault.Compile(spec, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p.Injector(0)
}

func TestRetryRecoversTransientErrors(t *testing.T) {
	eng, q := newStack(t, Config{Seed: 2})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.Transient, Dev: 0, Op: fault.Write, Rate: 1, MaxCount: 2},
	}}, 2))
	var res zns.WriteResult
	ok := false
	start := eng.Now()
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok || res.Err != nil {
		t.Fatalf("write not recovered: ok=%v err=%v", ok, res.Err)
	}
	if q.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", q.Retries())
	}
	// Exponential backoff: two retries cost at least 20us + 40us.
	if eng.Now()-start < 60*sim.Microsecond {
		t.Fatalf("retries completed too fast: %v", eng.Now()-start)
	}
}

func TestRetriesExhaustedSurfaceTransient(t *testing.T) {
	eng, q := newStack(t, Config{Seed: 3})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		fault.TransientErrors(0, fault.AnyOp, 1),
	}}, 3))
	var werr error
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) { werr = r.Err })
	eng.Run()
	if !errors.Is(werr, storerr.ErrTransient) {
		t.Fatalf("err = %v", werr)
	}
	if q.Retries() != DefaultMaxRetries {
		t.Fatalf("retries = %d, want %d", q.Retries(), DefaultMaxRetries)
	}
}

func TestRetriesDisabled(t *testing.T) {
	eng, q := newStack(t, Config{Seed: 4, MaxRetries: -1})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.Transient, Dev: 0, Rate: 1, MaxCount: 1},
	}}, 4))
	var werr error
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) { werr = r.Err })
	eng.Run()
	if !errors.Is(werr, storerr.ErrTransient) || q.Retries() != 0 {
		t.Fatalf("err=%v retries=%d", werr, q.Retries())
	}
}

// TestLargeMaxRetriesBackoffClamped is the regression test for the
// backoff-shift overflow: with MaxRetries well past 63, the unclamped
// retryBackoff()<<(attempt-1) wrapped sim.Time negative and scheduled
// retries in the past (an engine panic). The clamped backoff must keep
// every retry in causal order and surface the transient error after
// exactly MaxRetries attempts.
func TestLargeMaxRetriesBackoffClamped(t *testing.T) {
	const retries = 200
	eng, q := newStack(t, Config{Seed: 11, MaxRetries: retries})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		fault.TransientErrors(0, fault.AnyOp, 1),
	}}, 11))
	var werr error
	done := false
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) { werr = r.Err; done = true })
	eng.Run()
	if !done || !errors.Is(werr, storerr.ErrTransient) {
		t.Fatalf("done=%v err=%v", done, werr)
	}
	if q.Retries() != retries {
		t.Fatalf("retries = %d, want %d", q.Retries(), retries)
	}
	// Every post-doubling retry waits exactly the clamp, so total virtual
	// time is bounded by retries * clamp (plus the doubling ramp) — and
	// it must exceed the clamp itself, proving the deep retries waited.
	if eng.Now() <= DefaultMaxRetryBackoff {
		t.Fatalf("virtual time %d did not accumulate clamped backoffs", eng.Now())
	}
	if limit := sim.Time(retries+1) * DefaultMaxRetryBackoff; eng.Now() > limit {
		t.Fatalf("virtual time %d exceeds %d — backoff not clamped", eng.Now(), limit)
	}
}

// TestBackoffForNeverNegative sweeps deep attempt counts: the computed
// delay must stay positive, monotonically non-decreasing, and clamped.
func TestBackoffForNeverNegative(t *testing.T) {
	cfg := Config{}
	prev := sim.Time(0)
	for attempt := 1; attempt <= 300; attempt++ {
		b := cfg.backoffFor(attempt)
		if b <= 0 {
			t.Fatalf("attempt %d: backoff %d not positive", attempt, b)
		}
		if b < prev {
			t.Fatalf("attempt %d: backoff %d below previous %d", attempt, b, prev)
		}
		if b > DefaultMaxRetryBackoff {
			t.Fatalf("attempt %d: backoff %d above clamp", attempt, b)
		}
		prev = b
	}
	// A custom base above the clamp collapses to the clamp immediately.
	high := Config{RetryBackoff: 20 * sim.Millisecond, MaxRetryBackoff: 5 * sim.Millisecond}
	if b := high.backoffFor(1); b != 5*sim.Millisecond {
		t.Fatalf("base above clamp: backoff %d, want clamp", b)
	}
}

// TestRetriesDisabledReadAndReset extends the MaxRetries < 0 contract to
// the read and reset paths: the first transient error surfaces directly,
// with no retry scheduled.
func TestRetriesDisabledReadAndReset(t *testing.T) {
	eng, q := newStack(t, Config{Seed: 12, MaxRetries: -1})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		fault.TransientErrors(0, fault.AnyOp, 1),
	}}, 12))
	var rerr, eerr error
	q.Read(0, 0, 1, func(r zns.ReadResult) { rerr = r.Err })
	q.Reset(0, func(err error) { eerr = err })
	eng.Run()
	if !errors.Is(rerr, storerr.ErrTransient) {
		t.Fatalf("read err = %v, want first transient", rerr)
	}
	if !errors.Is(eerr, storerr.ErrTransient) {
		t.Fatalf("reset err = %v, want first transient", eerr)
	}
	if q.Retries() != 0 {
		t.Fatalf("retries = %d with retries disabled", q.Retries())
	}
}

// TestKillDuringRetryBackoffDropsCompletion pins the teardown ordering of
// the retry path: a Kill landing while a retry sits in its backoff window
// must swallow the eventual redelivery — no completion fires, nothing
// panics, and the pooled record is recycled rather than leaked.
func TestKillDuringRetryBackoffDropsCompletion(t *testing.T) {
	eng, q := newStack(t, Config{Seed: 13, MaxRetries: 5})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		fault.TransientErrors(0, fault.AnyOp, 1),
	}}, 13))
	completions := 0
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(zns.WriteResult) { completions++ })
	// Step until the first retry has been scheduled, then cut the host.
	for q.Retries() == 0 && eng.Step() {
	}
	if q.Retries() == 0 {
		t.Fatal("no retry was ever scheduled")
	}
	q.Kill()
	eng.Run()
	if completions != 0 {
		t.Fatalf("%d completions fired after Kill during backoff", completions)
	}
	if len(q.opFree) != 1 {
		t.Fatalf("op record not recycled after dead-queue retry: pool=%d", len(q.opFree))
	}
}

func TestInjectedDeathCompletesWithErrors(t *testing.T) {
	// A dead device must answer every in-flight command with an error
	// completion — nothing hangs, nothing is silently dropped.
	eng, q := newStack(t, Config{ReorderWindow: 10 * sim.Microsecond, Seed: 5})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		fault.KillDevice(0, 1), // dead from t=1ns on
	}}, 5))
	completions, deadErrs := 0, 0
	for i := 0; i < 16; i++ {
		q.Write(0, int64(i), 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
			completions++
			if errors.Is(r.Err, storerr.ErrDeviceDead) {
				deadErrs++
			}
		})
	}
	q.Read(0, 0, 1, func(r zns.ReadResult) {
		completions++
		if errors.Is(r.Err, storerr.ErrDeviceDead) {
			deadErrs++
		}
	})
	eng.Run()
	if completions != 17 || deadErrs != 17 {
		t.Fatalf("completions=%d deadErrs=%d", completions, deadErrs)
	}
}

func TestInjectedLatencyDelaysDelivery(t *testing.T) {
	eng, q := newStack(t, Config{Seed: 6})
	q.SetInjector(injected(t, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.Latency, Dev: 0, Op: fault.Write, Delay: 500 * sim.Microsecond},
	}}, 6))
	var lat sim.Time
	q.Write(0, 0, 1, nil, nil, zns.TagUserData, func(r zns.WriteResult) { lat = r.Latency })
	eng.Run()
	if lat < 500*sim.Microsecond {
		t.Fatalf("latency %v does not include the injected spike", lat)
	}
}

func TestKillDropsInFlightSilently(t *testing.T) {
	// Kill models host power loss: submitted commands vanish and their
	// completions never fire (crash semantics, not error semantics).
	eng, q := newStack(t, Config{ReorderWindow: 10 * sim.Microsecond, Seed: 7})
	completions := 0
	for i := 0; i < 8; i++ {
		q.Write(0, int64(i), 1, nil, nil, zns.TagUserData, func(zns.WriteResult) { completions++ })
	}
	q.Kill()
	eng.Run()
	if completions != 0 {
		t.Fatalf("%d completions fired after Kill", completions)
	}
	if !q.Killed() {
		t.Fatal("Killed() false")
	}
}
