// Package nvme models the host I/O stack between an AFA engine and a ZNS
// device: the block layer and NVMe driver, which give no ordering guarantee
// between in-flight submissions (§3.2). Each command is delivered to the
// device after a bounded pseudo-random delay, so two commands submitted
// back-to-back can arrive reordered — exactly the hazard that makes naive
// parallel zone writes fail and that BIZA's sliding-window scheduler and
// dm-zap's one-in-flight lock each work around.
//
// A Queue can optionally enforce per-zone delivery order (ZoneOrdered),
// modeling the kernel's zone-write-locking I/O schedulers (mq-deadline),
// which RAIZN depends on.
package nvme

import (
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/zns"
)

// Config controls delivery behaviour.
type Config struct {
	// ReorderWindow is the maximum extra delivery delay per command. Zero
	// delivers immediately in submission order.
	ReorderWindow sim.Time
	// ZoneOrdered preserves submission order among writes to the same zone
	// (zone write locking). Reads take the same jitter but carry no
	// ordering hazard, so they are never held back.
	ZoneOrdered bool
	Seed        uint64
}

// Queue sits between one engine and one ZNS device.
type Queue struct {
	eng *sim.Engine
	dev *zns.Device
	cfg Config
	rng *sim.RNG

	// Per-zone last scheduled delivery time for ZoneOrdered mode.
	zoneLast map[int]sim.Time

	submitted uint64
	reordered uint64
	lastPlan  sim.Time

	tr       *obs.Trace
	trDev    int
	inflight int64
}

// New wraps dev with a delivery queue.
func New(dev *zns.Device, cfg Config) *Queue {
	return &Queue{
		eng:      dev.Engine(),
		dev:      dev,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x9a7e),
		zoneLast: make(map[int]sim.Time),
	}
}

// Device returns the underlying device (admin commands and stats go
// straight to it; ordering is irrelevant for them in this model).
func (q *Queue) Device() *zns.Device { return q.dev }

// SetTracer attaches an observability trace; dev labels this queue's
// device in the trace. The queue owns the span for each I/O (covering the
// full submit → complete lifecycle) and hands the span id down to the
// device so channel/die service marks attach to the same span.
func (q *Queue) SetTracer(tr *obs.Trace, dev int) {
	q.tr = tr
	q.trDev = dev
	q.dev.SetTracer(tr, dev)
}

// qd records a queue-depth change; only touched when tracing is on.
func (q *Queue) qd(delta int64) {
	q.inflight += delta
	q.tr.Counter(int64(q.eng.Now()), obs.ProbeKey(obs.ProbeQueueDepth, q.trDev, 0), q.inflight)
}

// Reordered reports how many deliveries were scheduled before an
// earlier-submitted command's delivery (diagnostics for tests).
func (q *Queue) Reordered() uint64 { return q.reordered }

// deliverAt computes the delivery time for a command to zone z.
func (q *Queue) deliverAt(z int, ordered bool) sim.Time {
	at := q.eng.Now()
	if q.cfg.ReorderWindow > 0 {
		at += q.rng.Int63n(int64(q.cfg.ReorderWindow) + 1)
	}
	if ordered && q.cfg.ZoneOrdered {
		if last, ok := q.zoneLast[z]; ok && at < last {
			at = last
		}
		q.zoneLast[z] = at
	}
	if at < q.lastPlan {
		q.reordered++
	}
	q.lastPlan = at
	q.submitted++
	return at
}

// Write submits a zone write through the driver stack.
func (q *Queue) Write(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, done func(zns.WriteResult)) {
	start := q.eng.Now()
	at := q.deliverAt(z, true)
	var span obs.SpanID
	if q.tr != nil {
		span = q.tr.SpanBegin(int64(start), obs.LayerNVMe, obs.OpWrite, q.trDev, z, lba, int64(nblocks))
		q.qd(+1)
	}
	q.eng.At(at, func() {
		if q.tr != nil {
			q.tr.Mark(span, int64(start), int64(at), obs.LayerNVMe, obs.PhaseQueue, q.trDev, z, -1)
			q.dev.TraceSpan(span)
		}
		q.dev.Write(z, lba, nblocks, data, oob, tag, func(r zns.WriteResult) {
			r.Latency = q.eng.Now() - start
			if q.tr != nil {
				q.tr.SpanEnd(span, int64(q.eng.Now()), r.Err != nil)
				q.qd(-1)
			}
			if done != nil {
				done(r)
			}
		})
	})
}

// Read submits a zone read through the driver stack.
func (q *Queue) Read(z int, lba int64, nblocks int, done func(zns.ReadResult)) {
	start := q.eng.Now()
	at := q.deliverAt(z, false)
	var span obs.SpanID
	if q.tr != nil {
		span = q.tr.SpanBegin(int64(start), obs.LayerNVMe, obs.OpRead, q.trDev, z, lba, int64(nblocks))
		q.qd(+1)
	}
	q.eng.At(at, func() {
		if q.tr != nil {
			q.tr.Mark(span, int64(start), int64(at), obs.LayerNVMe, obs.PhaseQueue, q.trDev, z, -1)
			q.dev.TraceSpan(span)
		}
		q.dev.Read(z, lba, nblocks, func(r zns.ReadResult) {
			r.Latency = q.eng.Now() - start
			if q.tr != nil {
				q.tr.SpanEnd(span, int64(q.eng.Now()), r.Err != nil)
				q.qd(-1)
			}
			if done != nil {
				done(r)
			}
		})
	})
}

// Append submits a zone append through the driver stack.
func (q *Queue) Append(z int, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, done func(zns.AppendResult)) {
	start := q.eng.Now()
	at := q.deliverAt(z, true)
	var span obs.SpanID
	if q.tr != nil {
		span = q.tr.SpanBegin(int64(start), obs.LayerNVMe, obs.OpAppend, q.trDev, z, -1, int64(nblocks))
		q.qd(+1)
	}
	q.eng.At(at, func() {
		if q.tr != nil {
			q.tr.Mark(span, int64(start), int64(at), obs.LayerNVMe, obs.PhaseQueue, q.trDev, z, -1)
			q.dev.TraceSpan(span)
		}
		q.dev.Append(z, nblocks, data, oob, tag, func(r zns.AppendResult) {
			r.Latency = q.eng.Now() - start
			if q.tr != nil {
				q.tr.SpanEnd(span, int64(q.eng.Now()), r.Err != nil)
				q.qd(-1)
			}
			if done != nil {
				done(r)
			}
		})
	})
}

// Reset forwards a zone reset (admin path, still jittered so resets land
// amid data traffic realistically).
func (q *Queue) Reset(z int, done func(error)) {
	at := q.deliverAt(z, true)
	q.eng.At(at, func() { q.dev.Reset(z, done) })
}
