// Package nvme models the host I/O stack between an AFA engine and a ZNS
// device: the block layer and NVMe driver, which give no ordering guarantee
// between in-flight submissions (§3.2). Each command is delivered to the
// device after a bounded pseudo-random delay, so two commands submitted
// back-to-back can arrive reordered — exactly the hazard that makes naive
// parallel zone writes fail and that BIZA's sliding-window scheduler and
// dm-zap's one-in-flight lock each work around.
//
// A Queue can optionally enforce per-zone delivery order (ZoneOrdered),
// modeling the kernel's zone-write-locking I/O schedulers (mq-deadline),
// which RAIZN depends on.
package nvme

import (
	"errors"

	"biza/internal/buf"
	"biza/internal/fault"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/storerr"
	"biza/internal/zns"
)

// Config controls delivery behaviour.
type Config struct {
	// ReorderWindow is the maximum extra delivery delay per command. Zero
	// delivers immediately in submission order.
	ReorderWindow sim.Time
	// ZoneOrdered preserves submission order among writes to the same zone
	// (zone write locking). Reads take the same jitter but carry no
	// ordering hazard, so they are never held back.
	ZoneOrdered bool
	Seed        uint64
	// MaxRetries bounds how often a command failing with
	// storerr.ErrTransient is retried before the error surfaces. 0 uses
	// DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt. 0 uses DefaultRetryBackoff.
	RetryBackoff sim.Time
	// MaxRetryBackoff clamps the exponential backoff: once doubling
	// reaches this delay, every further retry waits exactly this long.
	// Without the clamp a large MaxRetries would shift the backoff past
	// the width of sim.Time and schedule retries in the past. 0 uses
	// DefaultMaxRetryBackoff.
	MaxRetryBackoff sim.Time
}

// Retry defaults: three attempts spaced 20 µs, 40 µs, 80 µs apart —
// comfortably above device command overhead, far below any host timeout.
// The backoff cap matches a typical host I/O retry ceiling (10 ms):
// generous against transient bus glitches, far below command timeouts.
const (
	DefaultMaxRetries      = 3
	DefaultRetryBackoff    = 20 * sim.Microsecond
	DefaultMaxRetryBackoff = 10 * sim.Millisecond
)

func (c *Config) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

func (c *Config) retryBackoff() sim.Time {
	if c.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return c.RetryBackoff
}

func (c *Config) maxRetryBackoff() sim.Time {
	if c.MaxRetryBackoff <= 0 {
		return DefaultMaxRetryBackoff
	}
	return c.MaxRetryBackoff
}

// backoffFor computes the clamped exponential delay before retry attempt
// (1-based). Doubling stops at the cap rather than shifting blindly, so
// arbitrarily large attempt counts can never overflow sim.Time into a
// negative delay (which would schedule the retry in the past and panic
// the engine).
func (c *Config) backoffFor(attempt int) sim.Time {
	b := c.retryBackoff()
	clamp := c.maxRetryBackoff()
	if b >= clamp {
		return clamp
	}
	for i := 1; i < attempt; i++ {
		b <<= 1
		if b >= clamp || b <= 0 {
			return clamp
		}
	}
	return b
}

// Queue sits between one engine and one ZNS device.
type Queue struct {
	eng *sim.Engine
	dev *zns.Device
	cfg Config
	rng *sim.RNG

	// Per-zone last scheduled delivery time for ZoneOrdered mode.
	zoneLast map[int]sim.Time

	submitted uint64
	reordered uint64
	retries   uint64
	lastPlan  sim.Time

	inj  *fault.Injector
	dead bool // Kill()ed: host side gone, commands and completions vanish

	tr       *obs.Trace
	trDev    int
	inflight int64

	opFree []*qop // pooled delivery records
}

// qop is a pooled in-flight command record: one event schedules its
// delivery to the device, and a completion closure cached on the record
// (allocated once per record, reused across recycles) forwards the result,
// so a steady-state submission allocates nothing in the driver layer.
type qop struct {
	q       *Queue
	kind    uint8 // opWrite, opRead, opAppend, opReset
	z       int
	lba     int64
	nblocks int
	data    []byte
	oob     [][]byte
	own     *buf.Buf // transferred reference pinning data (WriteOwned)
	tag     zns.WriteTag
	span    obs.SpanID
	start   sim.Time
	at      sim.Time
	attempt int  // transient-error retries so far
	delayed bool // injector already charged its latency for this delivery
	wdone   func(zns.WriteResult)
	rdone   func(zns.ReadResult)
	adone   func(zns.AppendResult)
	edone   func(error)
	// Cached forwarding closures (capture only the record pointer).
	wfwd func(zns.WriteResult)
	rfwd func(zns.ReadResult)
	afwd func(zns.AppendResult)
	efwd func(error)
}

const (
	opWrite = iota
	opRead
	opAppend
	opReset
)

func (q *Queue) getOp() *qop {
	if n := len(q.opFree); n > 0 {
		op := q.opFree[n-1]
		q.opFree = q.opFree[:n-1]
		return op
	}
	op := &qop{q: q}
	op.wfwd = func(r zns.WriteResult) { op.finishWrite(r) }
	op.rfwd = func(r zns.ReadResult) { op.finishRead(r) }
	op.afwd = func(r zns.AppendResult) { op.finishAppend(r) }
	op.efwd = func(err error) { op.finishReset(err) }
	return op
}

func (q *Queue) putOp(op *qop) {
	buf.Release(op.own)
	op.data, op.oob, op.own = nil, nil, nil
	op.attempt, op.delayed = 0, false
	op.wdone, op.rdone, op.adone, op.edone = nil, nil, nil, nil
	q.opFree = append(q.opFree, op)
}

// faultOp classifies the command for the fault injector.
func (op *qop) faultOp() fault.Op {
	switch op.kind {
	case opRead:
		return fault.Read
	case opReset:
		return fault.Reset
	}
	return fault.Write
}

// deliverErr completes the command with an injected error without
// touching the device. Transient errors route through the retry path in
// the finish functions like any other completion.
func (op *qop) deliverErr(err error) {
	switch op.kind {
	case opWrite:
		op.finishWrite(zns.WriteResult{Err: err})
	case opRead:
		op.finishRead(zns.ReadResult{Err: err})
	case opAppend:
		op.finishAppend(zns.AppendResult{Err: err})
	case opReset:
		op.finishReset(err)
	}
}

// retryable reports whether a failed command should be retried rather
// than completed. Only the injector produces storerr.ErrTransient — the
// device model's own errors are all permanent — so a retry always
// re-delivers a command the device never executed.
func (op *qop) retryable(err error) bool {
	q := op.q
	if q.dead || op.attempt >= q.cfg.maxRetries() {
		return false
	}
	return errors.Is(err, storerr.ErrTransient)
}

// retry re-schedules delivery with exponential backoff, clamped at
// maxRetryBackoff so deep retry chains stay in causal order.
func (op *qop) retry() {
	q := op.q
	op.attempt++
	q.retries++
	op.delayed = false // consult the injector afresh on redelivery
	op.at = q.eng.Now() + q.cfg.backoffFor(op.attempt)
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Fire delivers the command to the device at its scheduled time.
func (op *qop) Fire(_, _ sim.Time) {
	q := op.q
	if q.dead {
		// Power loss tore down the host stack: the command vanishes and
		// its completion never fires.
		q.putOp(op)
		return
	}
	if q.inj != nil && !op.delayed {
		d := q.inj.OnDeliver(q.eng.Now(), op.faultOp(), op.z, op.lba, op.nblocks)
		if d.Err != nil {
			op.deliverErr(d.Err)
			return
		}
		if d.Delay > 0 {
			op.delayed = true
			op.at += d.Delay
			q.eng.AtEvent(op.at, op, 0, 0)
			return
		}
	}
	op.delayed = false
	if q.tr != nil && op.kind != opReset {
		q.tr.Mark(op.span, int64(op.start), int64(op.at), obs.LayerNVMe, obs.PhaseQueue, q.trDev, op.z, -1)
		q.dev.TraceSpan(op.span)
	}
	switch op.kind {
	case opWrite:
		if op.own != nil {
			// The record keeps its own reference across retries; each
			// delivery transfers a fresh one to the device.
			op.own.Retain()
			q.dev.WriteOwned(op.z, op.lba, op.nblocks, op.data, op.oob, op.tag, op.own, op.wfwd)
		} else {
			q.dev.Write(op.z, op.lba, op.nblocks, op.data, op.oob, op.tag, op.wfwd)
		}
	case opRead:
		q.dev.Read(op.z, op.lba, op.nblocks, op.rfwd)
	case opAppend:
		q.dev.Append(op.z, op.nblocks, op.data, op.oob, op.tag, op.afwd)
	case opReset:
		q.dev.Reset(op.z, op.efwd)
	}
}

func (op *qop) finishReset(err error) {
	q := op.q
	if q.dead {
		q.putOp(op)
		return
	}
	if err != nil && op.retryable(err) {
		op.retry()
		return
	}
	done := op.edone
	q.putOp(op)
	if done != nil {
		done(err)
	}
}

func (op *qop) finishWrite(r zns.WriteResult) {
	q := op.q
	if q.dead {
		q.putOp(op)
		return
	}
	if r.Err != nil && op.retryable(r.Err) {
		op.retry()
		return
	}
	r.Latency = q.eng.Now() - op.start
	if q.tr != nil {
		q.tr.SpanEnd(op.span, int64(q.eng.Now()), r.Err != nil)
		q.qd(-1)
	}
	done := op.wdone
	q.putOp(op)
	if done != nil {
		done(r)
	}
}

func (op *qop) finishRead(r zns.ReadResult) {
	q := op.q
	if q.dead {
		q.putOp(op)
		return
	}
	if r.Err != nil && op.retryable(r.Err) {
		op.retry()
		return
	}
	r.Latency = q.eng.Now() - op.start
	if q.tr != nil {
		q.tr.SpanEnd(op.span, int64(q.eng.Now()), r.Err != nil)
		q.qd(-1)
	}
	done := op.rdone
	q.putOp(op)
	if done != nil {
		done(r)
	}
}

func (op *qop) finishAppend(r zns.AppendResult) {
	q := op.q
	if q.dead {
		q.putOp(op)
		return
	}
	if r.Err != nil && op.retryable(r.Err) {
		op.retry()
		return
	}
	r.Latency = q.eng.Now() - op.start
	if q.tr != nil {
		q.tr.SpanEnd(op.span, int64(q.eng.Now()), r.Err != nil)
		q.qd(-1)
	}
	done := op.adone
	q.putOp(op)
	if done != nil {
		done(r)
	}
}

// New wraps dev with a delivery queue.
func New(dev *zns.Device, cfg Config) *Queue {
	return &Queue{
		eng:      dev.Engine(),
		dev:      dev,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x9a7e),
		zoneLast: make(map[int]sim.Time),
	}
}

// Device returns the underlying device (admin commands and stats go
// straight to it; ordering is irrelevant for them in this model).
func (q *Queue) Device() *zns.Device { return q.dev }

// SetTracer attaches an observability trace; dev labels this queue's
// device in the trace. The queue owns the span for each I/O (covering the
// full submit → complete lifecycle) and hands the span id down to the
// device so channel/die service marks attach to the same span.
func (q *Queue) SetTracer(tr *obs.Trace, dev int) {
	q.tr = tr
	q.trDev = dev
	q.dev.SetTracer(tr, dev)
}

// qd records a queue-depth change; only touched when tracing is on.
func (q *Queue) qd(delta int64) {
	q.inflight += delta
	q.tr.Counter(int64(q.eng.Now()), obs.ProbeKey(obs.ProbeQueueDepth, q.trDev, 0), q.inflight)
}

// Reordered reports how many deliveries were scheduled before an
// earlier-submitted command's delivery (diagnostics for tests).
func (q *Queue) Reordered() uint64 { return q.reordered }

// Retries reports how many transient-error retries the queue has issued.
func (q *Queue) Retries() uint64 { return q.retries }

// SetInjector installs a fault injector consulted at each command
// delivery. nil removes injection.
func (q *Queue) SetInjector(in *fault.Injector) { q.inj = in }

// Injector returns the installed fault injector, or nil.
func (q *Queue) Injector() *fault.Injector { return q.inj }

// Kill tears down the host side of the queue (power loss): undelivered
// commands vanish, and completions of commands already at the device are
// dropped instead of invoking host callbacks. The device itself is cut
// separately via zns.Device.PowerLoss.
func (q *Queue) Kill() { q.dead = true }

// Killed reports whether Kill has been called.
func (q *Queue) Killed() bool { return q.dead }

// deliverAt computes the delivery time for a command to zone z.
func (q *Queue) deliverAt(z int, ordered bool) sim.Time {
	at := q.eng.Now()
	if q.cfg.ReorderWindow > 0 {
		at += q.rng.Int63n(int64(q.cfg.ReorderWindow) + 1)
	}
	if ordered && q.cfg.ZoneOrdered {
		if last, ok := q.zoneLast[z]; ok && at < last {
			at = last
		}
		q.zoneLast[z] = at
	}
	if at < q.lastPlan {
		q.reordered++
	}
	q.lastPlan = at
	q.submitted++
	return at
}

// Write submits a zone write through the driver stack.
func (q *Queue) Write(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, done func(zns.WriteResult)) {
	q.WriteOwned(z, lba, nblocks, data, oob, tag, nil, done)
}

// WriteOwned is Write for refcounted payloads: data must be a view into
// own, and the call transfers exactly one reference, released when the
// command leaves the driver (completion, drop on a killed queue, or
// exhausted retries). The device takes further references of its own, so
// the payload travels to flash without a copy.
func (q *Queue) WriteOwned(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, own *buf.Buf, done func(zns.WriteResult)) {
	op := q.getOp()
	op.kind, op.z, op.lba, op.nblocks = opWrite, z, lba, nblocks
	op.data, op.oob, op.own, op.tag, op.wdone = data, oob, own, tag, done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, true)
	if q.tr != nil {
		op.span = q.tr.SpanBegin(int64(op.start), obs.LayerNVMe, obs.OpWrite, q.trDev, z, lba, int64(nblocks))
		q.qd(+1)
	}
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Read submits a zone read through the driver stack.
func (q *Queue) Read(z int, lba int64, nblocks int, done func(zns.ReadResult)) {
	op := q.getOp()
	op.kind, op.z, op.lba, op.nblocks = opRead, z, lba, nblocks
	op.rdone = done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, false)
	if q.tr != nil {
		op.span = q.tr.SpanBegin(int64(op.start), obs.LayerNVMe, obs.OpRead, q.trDev, z, lba, int64(nblocks))
		q.qd(+1)
	}
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Append submits a zone append through the driver stack.
func (q *Queue) Append(z int, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, done func(zns.AppendResult)) {
	op := q.getOp()
	op.kind, op.z, op.lba, op.nblocks = opAppend, z, -1, nblocks
	op.data, op.oob, op.tag, op.adone = data, oob, tag, done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, true)
	if q.tr != nil {
		op.span = q.tr.SpanBegin(int64(op.start), obs.LayerNVMe, obs.OpAppend, q.trDev, z, -1, int64(nblocks))
		q.qd(+1)
	}
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Reset forwards a zone reset (admin path, still jittered so resets land
// amid data traffic realistically).
func (q *Queue) Reset(z int, done func(error)) {
	op := q.getOp()
	op.kind, op.z, op.edone = opReset, z, done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, true)
	q.eng.AtEvent(op.at, op, 0, 0)
}
