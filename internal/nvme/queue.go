// Package nvme models the host I/O stack between an AFA engine and a ZNS
// device: the block layer and NVMe driver, which give no ordering guarantee
// between in-flight submissions (§3.2). Each command is delivered to the
// device after a bounded pseudo-random delay, so two commands submitted
// back-to-back can arrive reordered — exactly the hazard that makes naive
// parallel zone writes fail and that BIZA's sliding-window scheduler and
// dm-zap's one-in-flight lock each work around.
//
// A Queue can optionally enforce per-zone delivery order (ZoneOrdered),
// modeling the kernel's zone-write-locking I/O schedulers (mq-deadline),
// which RAIZN depends on.
package nvme

import (
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/zns"
)

// Config controls delivery behaviour.
type Config struct {
	// ReorderWindow is the maximum extra delivery delay per command. Zero
	// delivers immediately in submission order.
	ReorderWindow sim.Time
	// ZoneOrdered preserves submission order among writes to the same zone
	// (zone write locking). Reads take the same jitter but carry no
	// ordering hazard, so they are never held back.
	ZoneOrdered bool
	Seed        uint64
}

// Queue sits between one engine and one ZNS device.
type Queue struct {
	eng *sim.Engine
	dev *zns.Device
	cfg Config
	rng *sim.RNG

	// Per-zone last scheduled delivery time for ZoneOrdered mode.
	zoneLast map[int]sim.Time

	submitted uint64
	reordered uint64
	lastPlan  sim.Time

	tr       *obs.Trace
	trDev    int
	inflight int64

	opFree []*qop // pooled delivery records
}

// qop is a pooled in-flight command record: one event schedules its
// delivery to the device, and a completion closure cached on the record
// (allocated once per record, reused across recycles) forwards the result,
// so a steady-state submission allocates nothing in the driver layer.
type qop struct {
	q       *Queue
	kind    uint8 // opWrite, opRead, opAppend, opReset
	z       int
	lba     int64
	nblocks int
	data    []byte
	oob     [][]byte
	tag     zns.WriteTag
	span    obs.SpanID
	start   sim.Time
	at      sim.Time
	wdone   func(zns.WriteResult)
	rdone   func(zns.ReadResult)
	adone   func(zns.AppendResult)
	edone   func(error)
	// Cached forwarding closures (capture only the record pointer).
	wfwd func(zns.WriteResult)
	rfwd func(zns.ReadResult)
	afwd func(zns.AppendResult)
}

const (
	opWrite = iota
	opRead
	opAppend
	opReset
)

func (q *Queue) getOp() *qop {
	if n := len(q.opFree); n > 0 {
		op := q.opFree[n-1]
		q.opFree = q.opFree[:n-1]
		return op
	}
	op := &qop{q: q}
	op.wfwd = func(r zns.WriteResult) { op.finishWrite(r) }
	op.rfwd = func(r zns.ReadResult) { op.finishRead(r) }
	op.afwd = func(r zns.AppendResult) { op.finishAppend(r) }
	return op
}

func (q *Queue) putOp(op *qop) {
	op.data, op.oob = nil, nil
	op.wdone, op.rdone, op.adone, op.edone = nil, nil, nil, nil
	q.opFree = append(q.opFree, op)
}

// Fire delivers the command to the device at its scheduled time.
func (op *qop) Fire(_, _ sim.Time) {
	q := op.q
	if q.tr != nil && op.kind != opReset {
		q.tr.Mark(op.span, int64(op.start), int64(op.at), obs.LayerNVMe, obs.PhaseQueue, q.trDev, op.z, -1)
		q.dev.TraceSpan(op.span)
	}
	switch op.kind {
	case opWrite:
		q.dev.Write(op.z, op.lba, op.nblocks, op.data, op.oob, op.tag, op.wfwd)
	case opRead:
		q.dev.Read(op.z, op.lba, op.nblocks, op.rfwd)
	case opAppend:
		q.dev.Append(op.z, op.nblocks, op.data, op.oob, op.tag, op.afwd)
	case opReset:
		done := op.edone
		z := op.z
		q.putOp(op)
		q.dev.Reset(z, done)
	}
}

func (op *qop) finishWrite(r zns.WriteResult) {
	q := op.q
	r.Latency = q.eng.Now() - op.start
	if q.tr != nil {
		q.tr.SpanEnd(op.span, int64(q.eng.Now()), r.Err != nil)
		q.qd(-1)
	}
	done := op.wdone
	q.putOp(op)
	if done != nil {
		done(r)
	}
}

func (op *qop) finishRead(r zns.ReadResult) {
	q := op.q
	r.Latency = q.eng.Now() - op.start
	if q.tr != nil {
		q.tr.SpanEnd(op.span, int64(q.eng.Now()), r.Err != nil)
		q.qd(-1)
	}
	done := op.rdone
	q.putOp(op)
	if done != nil {
		done(r)
	}
}

func (op *qop) finishAppend(r zns.AppendResult) {
	q := op.q
	r.Latency = q.eng.Now() - op.start
	if q.tr != nil {
		q.tr.SpanEnd(op.span, int64(q.eng.Now()), r.Err != nil)
		q.qd(-1)
	}
	done := op.adone
	q.putOp(op)
	if done != nil {
		done(r)
	}
}

// New wraps dev with a delivery queue.
func New(dev *zns.Device, cfg Config) *Queue {
	return &Queue{
		eng:      dev.Engine(),
		dev:      dev,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x9a7e),
		zoneLast: make(map[int]sim.Time),
	}
}

// Device returns the underlying device (admin commands and stats go
// straight to it; ordering is irrelevant for them in this model).
func (q *Queue) Device() *zns.Device { return q.dev }

// SetTracer attaches an observability trace; dev labels this queue's
// device in the trace. The queue owns the span for each I/O (covering the
// full submit → complete lifecycle) and hands the span id down to the
// device so channel/die service marks attach to the same span.
func (q *Queue) SetTracer(tr *obs.Trace, dev int) {
	q.tr = tr
	q.trDev = dev
	q.dev.SetTracer(tr, dev)
}

// qd records a queue-depth change; only touched when tracing is on.
func (q *Queue) qd(delta int64) {
	q.inflight += delta
	q.tr.Counter(int64(q.eng.Now()), obs.ProbeKey(obs.ProbeQueueDepth, q.trDev, 0), q.inflight)
}

// Reordered reports how many deliveries were scheduled before an
// earlier-submitted command's delivery (diagnostics for tests).
func (q *Queue) Reordered() uint64 { return q.reordered }

// deliverAt computes the delivery time for a command to zone z.
func (q *Queue) deliverAt(z int, ordered bool) sim.Time {
	at := q.eng.Now()
	if q.cfg.ReorderWindow > 0 {
		at += q.rng.Int63n(int64(q.cfg.ReorderWindow) + 1)
	}
	if ordered && q.cfg.ZoneOrdered {
		if last, ok := q.zoneLast[z]; ok && at < last {
			at = last
		}
		q.zoneLast[z] = at
	}
	if at < q.lastPlan {
		q.reordered++
	}
	q.lastPlan = at
	q.submitted++
	return at
}

// Write submits a zone write through the driver stack.
func (q *Queue) Write(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, done func(zns.WriteResult)) {
	op := q.getOp()
	op.kind, op.z, op.lba, op.nblocks = opWrite, z, lba, nblocks
	op.data, op.oob, op.tag, op.wdone = data, oob, tag, done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, true)
	if q.tr != nil {
		op.span = q.tr.SpanBegin(int64(op.start), obs.LayerNVMe, obs.OpWrite, q.trDev, z, lba, int64(nblocks))
		q.qd(+1)
	}
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Read submits a zone read through the driver stack.
func (q *Queue) Read(z int, lba int64, nblocks int, done func(zns.ReadResult)) {
	op := q.getOp()
	op.kind, op.z, op.lba, op.nblocks = opRead, z, lba, nblocks
	op.rdone = done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, false)
	if q.tr != nil {
		op.span = q.tr.SpanBegin(int64(op.start), obs.LayerNVMe, obs.OpRead, q.trDev, z, lba, int64(nblocks))
		q.qd(+1)
	}
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Append submits a zone append through the driver stack.
func (q *Queue) Append(z int, nblocks int, data []byte, oob [][]byte, tag zns.WriteTag, done func(zns.AppendResult)) {
	op := q.getOp()
	op.kind, op.z, op.lba, op.nblocks = opAppend, z, -1, nblocks
	op.data, op.oob, op.tag, op.adone = data, oob, tag, done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, true)
	if q.tr != nil {
		op.span = q.tr.SpanBegin(int64(op.start), obs.LayerNVMe, obs.OpAppend, q.trDev, z, -1, int64(nblocks))
		q.qd(+1)
	}
	q.eng.AtEvent(op.at, op, 0, 0)
}

// Reset forwards a zone reset (admin path, still jittered so resets land
// amid data traffic realistically).
func (q *Queue) Reset(z int, done func(error)) {
	op := q.getOp()
	op.kind, op.z, op.edone = opReset, z, done
	op.start = q.eng.Now()
	op.at = q.deliverAt(z, true)
	q.eng.AtEvent(op.at, op, 0, 0)
}
