package nvme

import (
	"math"
	"testing"
)

func TestWFQSingleFlowFIFO(t *testing.T) {
	w := NewWFQ()
	f := w.AddFlow(1)
	for i := 0; i < 10; i++ {
		w.Push(f, 100)
	}
	if w.Len() != 10 || w.FlowLen(f) != 10 {
		t.Fatalf("len=%d flowlen=%d", w.Len(), w.FlowLen(f))
	}
	for i := 0; i < 10; i++ {
		got, ok := w.Pop()
		if !ok || got != f {
			t.Fatalf("pop %d: flow=%d ok=%v", i, got, ok)
		}
	}
	if _, ok := w.Pop(); ok {
		t.Fatal("pop from empty arbiter succeeded")
	}
}

// TestWFQWeightedShares pushes a long backlog on two flows and checks the
// dispatch mix converges to the weight ratio.
func TestWFQWeightedShares(t *testing.T) {
	w := NewWFQ()
	heavy := w.AddFlow(3)
	light := w.AddFlow(1)
	const n = 400
	for i := 0; i < n; i++ {
		w.Push(heavy, 1000)
		w.Push(light, 1000)
	}
	counts := [2]int{}
	for i := 0; i < n; i++ { // dispatch half the backlog
		f, ok := w.Pop()
		if !ok {
			t.Fatal("arbiter drained early")
		}
		counts[f]++
	}
	ratio := float64(counts[heavy]) / float64(counts[light])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("dispatch ratio %.2f (heavy=%d light=%d), want ~3", ratio, counts[heavy], counts[light])
	}
}

// TestWFQCostWeighting checks byte-cost fairness: a flow sending requests
// twice as large gets half as many dispatches at equal weight.
func TestWFQCostWeighting(t *testing.T) {
	w := NewWFQ()
	big := w.AddFlow(1)
	small := w.AddFlow(1)
	for i := 0; i < 200; i++ {
		w.Push(big, 2000)
	}
	for i := 0; i < 400; i++ {
		w.Push(small, 1000)
	}
	counts := [2]int{}
	for i := 0; i < 300; i++ {
		f, _ := w.Pop()
		counts[f]++
	}
	ratio := float64(counts[small]) / float64(counts[big])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("small/big dispatch ratio %.2f (big=%d small=%d), want ~2", ratio, counts[big], counts[small])
	}
}

// TestWFQIdleFlowNotPunished: a flow that sat idle while another
// monopolized the arbiter must dispatch promptly on arrival — its tag
// starts at the current virtual time, not at zero.
func TestWFQIdleFlowNotPunished(t *testing.T) {
	w := NewWFQ()
	hog := w.AddFlow(1)
	idle := w.AddFlow(1)
	for i := 0; i < 100; i++ {
		w.Push(hog, 1000)
	}
	for i := 0; i < 50; i++ {
		w.Pop()
	}
	// The idle tenant wakes up with one request; it must dispatch within
	// two pops (one may already carry an equal tag).
	w.Push(idle, 1000)
	first, _ := w.Pop()
	second, _ := w.Pop()
	if first != idle && second != idle {
		t.Fatalf("idle flow starved: pops were %d, %d", first, second)
	}
}

// TestWFQBacklogNoStarvation: with any weights, every backlogged flow
// makes progress over a bounded dispatch horizon.
func TestWFQBacklogNoStarvation(t *testing.T) {
	w := NewWFQ()
	weights := []int{1, 2, 4, 8, 16}
	for _, wt := range weights {
		w.AddFlow(wt)
	}
	for f := range weights {
		for i := 0; i < 100; i++ {
			w.Push(f, 500)
		}
	}
	seen := make([]int, len(weights))
	for i := 0; i < 200; i++ {
		f, _ := w.Pop()
		seen[f]++
	}
	for f, c := range seen {
		if c == 0 {
			t.Fatalf("flow %d (weight %d) starved over 200 dispatches", f, weights[f])
		}
	}
}

// TestWFQDeterministicReplay: identical push/pop sequences produce
// identical dispatch orders.
func TestWFQDeterministicReplay(t *testing.T) {
	run := func() []int {
		w := NewWFQ()
		for i := 0; i < 7; i++ {
			w.AddFlow(1 + i%3)
		}
		var order []int
		push, pop := 0, 0
		for step := 0; step < 500; step++ {
			if step%3 != 2 {
				w.Push(push%7, int64(100+37*(push%11)))
				push++
				continue
			}
			if f, ok := w.Pop(); ok {
				order = append(order, f)
				pop++
			}
		}
		for {
			f, ok := w.Pop()
			if !ok {
				break
			}
			order = append(order, f)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at dispatch %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWFQPushPopAllocationFree(t *testing.T) {
	w := NewWFQ()
	a := w.AddFlow(2)
	b := w.AddFlow(1)
	// Warm the slices past their steady-state capacity.
	for i := 0; i < 64; i++ {
		w.Push(a, 100)
		w.Push(b, 100)
	}
	for {
		if _, ok := w.Pop(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		w.Push(a, 100)
		w.Push(b, 300)
		w.Pop()
		w.Pop()
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f per run", allocs)
	}
}
