// Weighted-fair queueing for the submission shim.
//
// WFQ implements self-clocked fair queueing (SCFQ) over an arbitrary
// number of weighted flows. It is the arbiter the multi-tenant volume manager
// (internal/volume) installs at its submission shim into the array: every
// admitted request is stamped with a virtual finish tag
//
//	start  = max(vtime, flow.lastTag)
//	finish = start + cost/weight
//
// and dispatch always picks the backlogged flow with the smallest head
// tag (ties broken by flow id, so arbitration is deterministic). A flow
// that goes idle re-enters at the current virtual time rather than at its
// stale tag, so an idle tenant is never punished for sleeping, and a
// saturating tenant accumulates tags far in the virtual future — exactly
// the property that keeps a noisy neighbor from starving everyone else.
//
// The arbiter lives in this package rather than in internal/volume
// because it is a submission-path discipline, not a volume concept: it
// arbitrates which command enters the NVMe-facing stack next. Tenant
// identity does not exist below the array front end (the member driver
// queues see anonymized stripe traffic), so the shim above the array is
// the lowest layer where fair queueing is meaningful.
//
// WFQ arbitrates flows only; callers keep their own per-flow FIFO of
// request records and dequeue the head of whichever flow Pop returns.
// All state lives in slices reused across operations, so steady-state
// Push/Pop allocate nothing.
package nvme

import "fmt"

// wfqCostShift scales costs into tag units so integer division by the
// weight keeps precision. With byte costs, tags advance by at most
// cost<<16 per request: a simulation must push ~2^47 bytes through one
// arbiter before the uint64 tag space wraps.
const wfqCostShift = 16

// WFQ is a deterministic weighted start-time fair queueing arbiter.
// The zero value is not usable; call NewWFQ.
type WFQ struct {
	vtime uint64
	flows []wfqFlow
	// active is a binary min-heap of backlogged flow ids ordered by
	// (head tag, flow id).
	active []int
	queued int
}

// wfqFlow is the per-flow arbitration state. Queued request tags form a
// FIFO in tags[head:]; the slice compacts when fully drained.
type wfqFlow struct {
	weight  uint64
	lastTag uint64
	tags    []uint64
	head    int
	pos     int // index in the active heap, -1 when idle
}

// NewWFQ returns an empty arbiter.
func NewWFQ() *WFQ { return &WFQ{} }

// AddFlow registers a flow with the given weight (minimum 1) and returns
// its id. Ids are dense and assigned in registration order.
func (w *WFQ) AddFlow(weight int) int {
	if weight < 1 {
		weight = 1
	}
	id := len(w.flows)
	w.flows = append(w.flows, wfqFlow{weight: uint64(weight), pos: -1})
	return id
}

// Flows reports the number of registered flows.
func (w *WFQ) Flows() int { return len(w.flows) }

// Len reports the total number of queued requests across all flows.
func (w *WFQ) Len() int { return w.queued }

// FlowLen reports the number of queued requests of one flow.
func (w *WFQ) FlowLen(flow int) int {
	f := &w.flows[flow]
	return len(f.tags) - f.head
}

// Push enqueues a request of the given cost (any positive unit — the
// volume manager uses bytes) on a flow. Requests within one flow dispatch
// in FIFO order; across flows, in virtual-finish-tag order.
func (w *WFQ) Push(flow int, cost int64) {
	if cost < 1 {
		cost = 1
	}
	f := &w.flows[flow]
	start := f.lastTag
	if w.vtime > start {
		start = w.vtime
	}
	tag := start + (uint64(cost)<<wfqCostShift)/f.weight
	f.lastTag = tag
	if f.head == len(f.tags) {
		f.tags = f.tags[:0]
		f.head = 0
	}
	f.tags = append(f.tags, tag)
	w.queued++
	if f.pos < 0 {
		w.heapPush(flow)
	}
	// An already-active flow's head tag is unchanged by appending, so the
	// heap needs no fixup.
}

// Pop selects the next flow to dispatch from and consumes its head
// request, advancing virtual time to the request's tag. It reports false
// when no flow is backlogged. The caller dequeues the head of its own
// FIFO for the returned flow.
func (w *WFQ) Pop() (flow int, ok bool) {
	if len(w.active) == 0 {
		return 0, false
	}
	flow = w.active[0]
	f := &w.flows[flow]
	tag := f.tags[f.head]
	f.head++
	w.queued--
	if w.vtime < tag {
		w.vtime = tag
	}
	if f.head == len(f.tags) {
		w.heapRemoveRoot()
		f.tags = f.tags[:0]
		f.head = 0
	} else {
		w.heapFix(0) // head tag grew; sift the root down
	}
	return flow, true
}

// headTag returns the ordering key of an active flow.
func (w *WFQ) headTag(flow int) uint64 {
	f := &w.flows[flow]
	return f.tags[f.head]
}

// less orders active heap entries by (head tag, flow id).
func (w *WFQ) less(a, b int) bool {
	ta, tb := w.headTag(a), w.headTag(b)
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (w *WFQ) heapSwap(i, j int) {
	h := w.active
	h[i], h[j] = h[j], h[i]
	w.flows[h[i]].pos = i
	w.flows[h[j]].pos = j
}

func (w *WFQ) heapPush(flow int) {
	w.active = append(w.active, flow)
	i := len(w.active) - 1
	w.flows[flow].pos = i
	for i > 0 {
		p := (i - 1) / 2
		if !w.less(w.active[i], w.active[p]) {
			break
		}
		w.heapSwap(i, p)
		i = p
	}
}

func (w *WFQ) heapRemoveRoot() {
	h := w.active
	w.flows[h[0]].pos = -1
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		w.flows[h[0]].pos = 0
	}
	w.active = h[:n]
	if n > 1 {
		w.heapFix(0)
	}
}

// heapFix sifts the entry at index i down to its place.
func (w *WFQ) heapFix(i int) {
	h := w.active
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && w.less(h[c+1], h[c]) {
			c++
		}
		if !w.less(h[c], h[i]) {
			return
		}
		w.heapSwap(i, c)
		i = c
	}
}

// String summarizes arbiter state (diagnostics).
func (w *WFQ) String() string {
	return fmt.Sprintf("wfq{flows=%d queued=%d vtime=%d}", len(w.flows), w.queued, w.vtime)
}
