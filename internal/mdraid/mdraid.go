// Package mdraid models the Linux software-RAID engine (md raid5) the
// paper uses as its conventional baseline, with the ScalaRAID-style lock
// improvements the authors integrated (§5.1). Behaviour reproduced:
//
//   - requests are split into 4 KiB pages and gathered in a host-DRAM
//     stripe cache; full stripes flush with computed parity, partial
//     stripes flush via read-modify-write (extra member reads);
//   - the cache is volatile, so a periodic timer flushes dirty stripes —
//     the endurance compensation §5.4 describes;
//   - a serialized stripe-head processing stage charges per-page CPU cost,
//     the residual software bottleneck that keeps even improved mdraid
//     from exhausting modern SSDs (§5.2, Fig. 10's 192 KiB results).
package mdraid

import (
	"container/list"
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/cpumodel"
	"biza/internal/erasure"
	"biza/internal/metrics"
	"biza/internal/raid"
	"biza/internal/sim"
)

// Config tunes the engine.
type Config struct {
	// ChunkBlocks is the stripe unit in blocks (default 16 = 64 KiB).
	ChunkBlocks int64
	// StripeCacheBytes bounds the write buffer (data pages held in DRAM).
	StripeCacheBytes int64
	// FlushInterval drains dirty stripes periodically (volatile-buffer
	// compensation). Zero disables the timer (then only pressure and
	// full-stripe completion flush).
	FlushInterval sim.Time
	// PageCost is the serialized per-4KiB-page processing cost of the
	// stripe-head stage — the engine's software throughput cap.
	PageCost sim.Time
	// AckFromCache acknowledges writes once buffered (volatile, fast) —
	// matching the paper's write-buffer configuration. When false, acks
	// wait for member completion.
	AckFromCache bool
}

// DefaultConfig returns the calibration used by the benchmarks: 64 KiB
// chunks, 56 MB stripe cache (the paper's §5.4 setting), 10 ms flush
// interval, and a per-page cost that caps the array near 4.3 GB/s.
func DefaultConfig() Config {
	return Config{
		ChunkBlocks:      16,
		StripeCacheBytes: 56 << 20,
		FlushInterval:    10 * sim.Millisecond,
		PageCost:         950 * sim.Nanosecond,
		AckFromCache:     true,
	}
}

type stripeEntry struct {
	stripe int64
	dirty  []bool   // per page of stripe data
	data   [][]byte // per page payload (nil entries when payloads omitted)
	filled int
	elem   *list.Element
}

// Array is the mdraid engine over conventional block members. It
// implements blockdev.Device.
type Array struct {
	cfg     Config
	members []blockdev.Device
	layout  *raid.Layout
	eng     *sim.Engine
	acct    *cpumodel.Accountant

	head *sim.Resource // serialized stripe-head processing

	cache    map[int64]*stripeEntry
	lru      *list.List // front = MRU
	capacity int        // stripes

	userBytes  uint64
	dataOut    uint64
	parityOut  uint64
	rmwReads   uint64
	timerArmed bool

	// flushErrs counts member write failures during flushes — always a
	// bug in the stack below, surfaced for tests and diagnostics.
	flushErrs uint64

	// Flush backpressure: bytes handed to members but not yet completed.
	// Acks stall above the limit, so the members' real drain rate bounds
	// the array instead of hiding behind the volatile cache.
	inflightFlush int64
	maxInflight   int64
	ackWaiters    []func()
}

// New builds the array; members must share geometry. eng drives timers.
func New(eng *sim.Engine, members []blockdev.Device, cfg Config, acct *cpumodel.Accountant) (*Array, error) {
	if len(members) < 3 {
		return nil, fmt.Errorf("mdraid: need >= 3 members, got %d", len(members))
	}
	bs := members[0].BlockSize()
	blocks := members[0].Blocks()
	for _, m := range members[1:] {
		if m.BlockSize() != bs || m.Blocks() != blocks {
			return nil, fmt.Errorf("mdraid: heterogeneous members")
		}
	}
	if cfg.ChunkBlocks < 1 {
		return nil, fmt.Errorf("mdraid: ChunkBlocks %d", cfg.ChunkBlocks)
	}
	layout, err := raid.NewLayout(len(members), 1, cfg.ChunkBlocks)
	if err != nil {
		return nil, err
	}
	if acct == nil {
		acct = &cpumodel.Accountant{}
	}
	stripeDataBytes := layout.StripeBlocks() * int64(bs)
	capacity := int(cfg.StripeCacheBytes / stripeDataBytes)
	if capacity < 1 {
		capacity = 1
	}
	a := &Array{
		cfg:      cfg,
		members:  members,
		layout:   layout,
		eng:      eng,
		acct:     acct,
		head:     sim.NewResource(eng, 1),
		cache:    make(map[int64]*stripeEntry),
		lru:      list.New(),
		capacity: capacity,
	}
	a.maxInflight = cfg.StripeCacheBytes
	if a.maxInflight < stripeDataBytes*4 {
		a.maxInflight = stripeDataBytes * 4
	}
	return a, nil
}

// BlockSize implements blockdev.Device.
func (a *Array) BlockSize() int { return a.members[0].BlockSize() }

// StoresData implements blockdev.DataStorer: reads return payloads only
// when every member retains them.
func (a *Array) StoresData() bool {
	for _, m := range a.members {
		if !blockdev.StoresData(m) {
			return false
		}
	}
	return true
}

// Blocks implements blockdev.Device: data capacity across members.
func (a *Array) Blocks() int64 {
	stripes := a.members[0].Blocks() / a.cfg.ChunkBlocks
	return stripes * a.layout.StripeBlocks()
}

// WriteAmp reports engine-level traffic (member/device counters hold the
// flash truth).
func (a *Array) WriteAmp() metrics.WriteAmp {
	return metrics.WriteAmp{
		UserBytes:        a.userBytes,
		FlashDataBytes:   a.dataOut,
		FlashParityBytes: a.parityOut,
	}
}

// RMWReads reports bytes read back for read-modify-write parity updates.
func (a *Array) RMWReads() uint64 { return a.rmwReads }

// FlushErrors reports member write failures during flushes (must be zero
// on a healthy stack).
func (a *Array) FlushErrors() uint64 { return a.flushErrs }

// pageCount of a stripe's data region.
func (a *Array) stripePages() int { return int(a.layout.StripeBlocks()) }

// Write implements blockdev.Device: pages land in the stripe cache; full
// stripes flush immediately, the rest on pressure or timer.
func (a *Array) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	start := a.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > a.Blocks() {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.WriteResult{Err: blockdev.ErrOutOfRange, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	bs := int64(a.BlockSize())
	a.userBytes += uint64(nblocks) * uint64(bs)
	a.acct.Charge(cpumodel.CompMdraid, cpumodel.CostSchedule)

	var fullStripes []int64
	for i := 0; i < nblocks; i++ {
		stripe, chunk, off := a.layout.Locate(lba + int64(i))
		page := int(int64(chunk)*a.cfg.ChunkBlocks + off)
		e := a.entry(stripe)
		if !e.dirty[page] {
			e.dirty[page] = true
			e.filled++
		}
		if data != nil {
			e.data[page] = append([]byte(nil), data[int64(i)*bs:(int64(i)+1)*bs]...)
		}
		a.lru.MoveToFront(e.elem)
		if e.filled == a.stripePages() {
			fullStripes = append(fullStripes, stripe)
		}
	}
	// Serialized stripe-head stage: per-page processing cost gates the ack.
	a.head.Submit(a.cfg.PageCost*sim.Time(nblocks), func(_, _ sim.Time) {
		for _, s := range fullStripes {
			if e, ok := a.cache[s]; ok && e.filled == a.stripePages() {
				a.flushStripe(e, nil)
			}
		}
		a.evictOverflow()
		if a.cfg.AckFromCache {
			// Volatile-cache ack, but bounded: when flush traffic backs up
			// past the cache budget, acks wait for the members to drain.
			a.ackWhenDrained(func() {
				if done != nil {
					done(blockdev.WriteResult{Latency: a.eng.Now() - start})
				}
			})
			return
		}
		// Write-through: flush everything this request touched and ack
		// after members complete.
		remaining := 0
		var firstErr error
		finish := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(blockdev.WriteResult{Err: firstErr, Latency: a.eng.Now() - start})
			}
		}
		first, _, _ := a.layout.Locate(lba)
		last, _, _ := a.layout.Locate(lba + int64(nblocks) - 1)
		for s := first; s <= last; s++ {
			if e, ok := a.cache[s]; ok {
				remaining++
				a.flushStripe(e, finish)
			}
		}
		if remaining == 0 && done != nil {
			done(blockdev.WriteResult{Err: firstErr, Latency: a.eng.Now() - start})
		}
	})
}

func (a *Array) entry(stripe int64) *stripeEntry {
	e, ok := a.cache[stripe]
	if !ok {
		e = &stripeEntry{
			stripe: stripe,
			dirty:  make([]bool, a.stripePages()),
			data:   make([][]byte, a.stripePages()),
		}
		e.elem = a.lru.PushFront(e)
		a.cache[stripe] = e
		// Arm the volatile-buffer flush timer only while dirty stripes
		// exist, so an idle array quiesces (and simulations drain).
		if a.cfg.FlushInterval > 0 && !a.timerArmed {
			a.timerArmed = true
			a.eng.After(a.cfg.FlushInterval, a.timerFlush)
		}
	}
	return e
}

// ackWhenDrained runs fn immediately while flush traffic is within the
// budget, otherwise parks it until member completions free space.
func (a *Array) ackWhenDrained(fn func()) {
	if a.inflightFlush <= a.maxInflight && len(a.ackWaiters) == 0 {
		fn()
		return
	}
	a.ackWaiters = append(a.ackWaiters, fn)
}

func (a *Array) releaseInflight(n int64) {
	a.inflightFlush -= n
	for len(a.ackWaiters) > 0 && a.inflightFlush <= a.maxInflight {
		fn := a.ackWaiters[0]
		a.ackWaiters = a.ackWaiters[1:]
		fn()
	}
}

func (a *Array) evictOverflow() {
	for len(a.cache) > a.capacity {
		tail := a.lru.Back()
		if tail == nil {
			return
		}
		e := tail.Value.(*stripeEntry)
		a.flushStripe(e, nil)
	}
}

func (a *Array) timerFlush() {
	// Flush every dirty stripe, oldest first, then disarm until the next
	// write dirties the cache again.
	for a.lru.Len() > 0 {
		e := a.lru.Back().Value.(*stripeEntry)
		a.flushStripe(e, nil)
	}
	a.timerArmed = false
}

// flushStripe writes a stripe's dirty pages and its parity to the members.
// Full stripes compute parity from buffered data; partial stripes
// read-modify-write (reading old pages costs member reads — the classic
// RAID 5 small-write penalty).
func (a *Array) flushStripe(e *stripeEntry, done func(error)) {
	s := e.stripe
	delete(a.cache, s)
	a.lru.Remove(e.elem)
	bs := int64(a.BlockSize())
	full := e.filled == a.stripePages()
	pagesPerChunk := int(a.cfg.ChunkBlocks)

	outstanding := 0
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 && done != nil {
			done(firstErr)
		}
	}

	writeChunkRuns := func(member int, memberBase int64, pages []int, payload func(int) []byte) {
		// Coalesce consecutive pages into member writes (the block layer's
		// request merging; conventional SSDs benefit, dm-zap members will
		// re-split internally — matching §5.2's 64 KiB explanation).
		i := 0
		for i < len(pages) {
			j := i
			for j+1 < len(pages) && pages[j+1] == pages[j]+1 {
				j++
			}
			runPages := pages[i : j+1]
			var buf []byte
			hasData := false
			for _, p := range runPages {
				if payload(p) != nil {
					hasData = true
					break
				}
			}
			if hasData {
				buf = make([]byte, int64(len(runPages))*bs)
				for k, p := range runPages {
					if d := payload(p); d != nil {
						copy(buf[int64(k)*bs:], d)
					}
				}
			}
			off := memberBase + int64(runPages[0]%pagesPerChunk)
			outstanding++
			a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
			nbytes := int64(len(runPages)) * bs
			a.inflightFlush += nbytes
			a.members[member].Write(off, len(runPages), buf, func(r blockdev.WriteResult) {
				if r.Err != nil {
					a.flushErrs++
				}
				a.releaseInflight(nbytes)
				finish(r.Err)
			})
			i = j + 1
		}
	}

	// Gather dirty pages per data chunk.
	type chunkPages struct {
		member int
		base   int64
		pages  []int
	}
	var chunks []chunkPages
	for c := 0; c < a.layout.DataDisks(); c++ {
		var pages []int
		for p := c * pagesPerChunk; p < (c+1)*pagesPerChunk; p++ {
			if e.dirty[p] {
				pages = append(pages, p)
			}
		}
		if len(pages) == 0 {
			continue
		}
		member := a.layout.DataDisk(s, c)
		base := a.layout.DiskOffset(s, 0)
		chunks = append(chunks, chunkPages{member: member, base: base, pages: pages})
	}
	pmember := a.layout.ParityDisk(s, 0)
	pbase := a.layout.DiskOffset(s, 0)

	if full {
		// Full-stripe write: parity per parity-chunk page = XOR of the
		// same page index across data chunks.
		a.acct.ChargeParity(cpumodel.CompMdraid, a.layout.StripeBlocks()*bs)
		var parity []byte
		if anyData(e.data) {
			parity = make([]byte, int64(pagesPerChunk)*bs)
			for pp := 0; pp < pagesPerChunk; pp++ {
				dst := parity[int64(pp)*bs : int64(pp+1)*bs]
				for c := 0; c < a.layout.DataDisks(); c++ {
					if d := e.data[c*pagesPerChunk+pp]; d != nil {
						erasure.XORInto(dst, d)
					}
				}
			}
		}
		for _, cp := range chunks {
			writeChunkRuns(cp.member, cp.base, cp.pages, func(p int) []byte { return e.data[p] })
			a.dataOut += uint64(len(cp.pages)) * uint64(bs)
		}
		outstanding++
		a.parityOut += uint64(pagesPerChunk) * uint64(bs)
		a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
		pbytes := int64(pagesPerChunk) * bs
		a.inflightFlush += pbytes
		a.members[pmember].Write(pbase, pagesPerChunk, parity, func(r blockdev.WriteResult) {
			if r.Err != nil {
				a.flushErrs++
			}
			a.releaseInflight(pbytes)
			finish(r.Err)
		})
		if outstanding == 0 && done != nil {
			done(nil)
		}
		return
	}

	// Partial stripe: read-modify-write. Read old copies of the dirty
	// pages and the parity pages they affect, then write new data and
	// updated parity.
	dirtyParityPages := map[int]bool{}
	totalDirty := 0
	for _, cp := range chunks {
		for _, p := range cp.pages {
			dirtyParityPages[p%pagesPerChunk] = true
			totalDirty++
		}
	}
	reads := 0
	finishRead := func() {
		reads--
		if reads > 0 {
			return
		}
		// All old copies in; write new data and parity deltas.
		a.acct.ChargeParity(cpumodel.CompMdraid, int64(totalDirty)*bs*2)
		for _, cp := range chunks {
			writeChunkRuns(cp.member, cp.base, cp.pages, func(p int) []byte { return e.data[p] })
			a.dataOut += uint64(len(cp.pages)) * uint64(bs)
		}
		var ppages []int
		for pp := 0; pp < pagesPerChunk; pp++ {
			if dirtyParityPages[pp] {
				ppages = append(ppages, pp)
			}
		}
		i := 0
		for i < len(ppages) {
			j := i
			for j+1 < len(ppages) && ppages[j+1] == ppages[j]+1 {
				j++
			}
			run := ppages[i : j+1]
			outstanding++
			a.parityOut += uint64(len(run)) * uint64(bs)
			a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
			rbytes := int64(len(run)) * bs
			a.inflightFlush += rbytes
			a.members[pmember].Write(pbase+int64(run[0]), len(run), nil, func(r blockdev.WriteResult) {
				if r.Err != nil {
					a.flushErrs++
				}
				a.releaseInflight(rbytes)
				finish(r.Err)
			})
			i = j + 1
		}
		if outstanding == 0 && done != nil {
			done(firstErr)
		}
	}
	// Old-data reads: one per dirty page plus affected parity pages. The
	// returned payloads only matter for real parity math, which needs the
	// full un-dirty stripe state; this simulation carries write payloads
	// for correctness testing via full-stripe paths and read-back, so RMW
	// parity content is not recomputed here — only its traffic is modeled.
	reads = totalDirty + len(dirtyParityPages)
	a.rmwReads += uint64(reads) * uint64(bs)
	for _, cp := range chunks {
		for _, p := range cp.pages {
			outstandingRead := p
			_ = outstandingRead
			a.members[cp.member].Read(cp.base+int64(p%pagesPerChunk), 1, func(blockdev.ReadResult) {
				finishRead()
			})
		}
	}
	for pp := 0; pp < pagesPerChunk; pp++ {
		if dirtyParityPages[pp] {
			a.members[pmember].Read(pbase+int64(pp), 1, func(blockdev.ReadResult) {
				finishRead()
			})
		}
	}
}

func anyData(pages [][]byte) bool {
	for _, p := range pages {
		if p != nil {
			return true
		}
	}
	return false
}

// Read implements blockdev.Device: dirty cached pages are served from the
// stripe cache; the rest from members, coalesced per member.
func (a *Array) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	start := a.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > a.Blocks() {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Err: blockdev.ErrOutOfRange, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	bs := int64(a.BlockSize())
	var buf []byte
	if a.StoresData() {
		buf = make([]byte, int64(nblocks)*bs)
	}
	type runT struct {
		member  int
		off     int64
		blocks  int
		bufBase int64
	}
	var runs []runT
	cached := 0
	for i := 0; i < nblocks; i++ {
		stripe, chunk, off := a.layout.Locate(lba + int64(i))
		page := int(int64(chunk)*a.cfg.ChunkBlocks + off)
		if e, ok := a.cache[stripe]; ok && e.dirty[page] {
			if e.data[page] != nil {
				copy(buf[int64(i)*bs:], e.data[page])
			}
			cached++
			continue
		}
		member := a.layout.DataDisk(stripe, chunk)
		moff := a.layout.DiskOffset(stripe, off)
		if len(runs) > 0 {
			last := &runs[len(runs)-1]
			if last.member == member && last.off+int64(last.blocks) == moff &&
				last.bufBase+int64(last.blocks)*bs == int64(i)*bs {
				last.blocks++
				continue
			}
		}
		runs = append(runs, runT{member: member, off: moff, blocks: 1, bufBase: int64(i) * bs})
	}
	a.head.Submit(a.cfg.PageCost*sim.Time(nblocks)/2, func(_, _ sim.Time) {
		if len(runs) == 0 {
			if done != nil {
				done(blockdev.ReadResult{Data: buf, Latency: a.eng.Now() - start})
			}
			return
		}
		remaining := len(runs)
		var firstErr error
		for _, r := range runs {
			r := r
			a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
			a.members[r.member].Read(r.off, r.blocks, func(res blockdev.ReadResult) {
				if res.Err != nil && firstErr == nil {
					firstErr = res.Err
				}
				if res.Data != nil {
					copy(buf[r.bufBase:], res.Data)
				}
				remaining--
				if remaining == 0 && done != nil {
					done(blockdev.ReadResult{Err: firstErr, Data: buf, Latency: a.eng.Now() - start})
				}
			})
		}
	})
}

// Trim implements blockdev.Device, forwarding page invalidations.
func (a *Array) Trim(lba int64, nblocks int) {
	for i := 0; i < nblocks; i++ {
		stripe, chunk, off := a.layout.Locate(lba + int64(i))
		member := a.layout.DataDisk(stripe, chunk)
		a.members[member].Trim(a.layout.DiskOffset(stripe, off), 1)
	}
}

// ResetAccounting zeroes engine-level traffic counters.
func (a *Array) ResetAccounting() {
	a.userBytes, a.dataOut, a.parityOut, a.rmwReads = 0, 0, 0, 0
}
