package mdraid

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/ftl"
	"biza/internal/sim"
)

func newArray(t *testing.T, cfg Config) (*sim.Engine, *Array, []*ftl.Device) {
	t.Helper()
	eng := sim.NewEngine()
	var members []blockdev.Device
	var devs []*ftl.Device
	for i := 0; i < 4; i++ {
		dc := ftl.TestConfig()
		dc.Seed = uint64(i)
		d, err := ftl.New(eng, dc)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		members = append(members, d)
	}
	a, err := New(eng, members, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, devs
}

func testCfg() Config {
	c := DefaultConfig()
	c.ChunkBlocks = 4
	c.StripeCacheBytes = 1 << 20
	c.FlushInterval = 2 * sim.Millisecond
	return c
}

func wsync(eng *sim.Engine, a *Array, lba int64, n int, data []byte) blockdev.WriteResult {
	var res blockdev.WriteResult
	ok := false
	a.Write(lba, n, data, func(r blockdev.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("mdraid write hung")
	}
	return res
}

func rsync(eng *sim.Engine, a *Array, lba int64, n int) blockdev.ReadResult {
	var res blockdev.ReadResult
	ok := false
	a.Read(lba, n, func(r blockdev.ReadResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("mdraid read hung")
	}
	return res
}

func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	d, _ := ftl.New(eng, ftl.TestConfig())
	if _, err := New(eng, []blockdev.Device{d, d}, DefaultConfig(), nil); err == nil {
		t.Fatal("accepted 2 members")
	}
	cfg := DefaultConfig()
	cfg.ChunkBlocks = 0
	if _, err := New(eng, []blockdev.Device{d, d, d}, cfg, nil); err == nil {
		t.Fatal("accepted zero chunk")
	}
}

func TestFullStripeRoundTrip(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	// One full stripe: 3 data chunks x 4 blocks.
	payload := pat(5, 12*4096)
	if r := wsync(eng, a, 0, 12, payload); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, a, 0, 12)
	if r.Err != nil || !bytes.Equal(r.Data, payload) {
		t.Fatalf("round trip mismatch err=%v", r.Err)
	}
}

func TestPartialWriteRoundTripThroughCacheAndFlush(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	payload := pat(9, 2*4096)
	wsync(eng, a, 5, 2, payload)
	// Read while dirty (served from cache).
	r := rsync(eng, a, 5, 2)
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("cache read mismatch")
	}
	// Run past the flush timer, then read from members.
	eng.RunUntil(eng.Now() + 20*sim.Millisecond)
	r = rsync(eng, a, 5, 2)
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("post-flush read mismatch")
	}
}

func TestRandomOverwriteRoundTrip(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	rng := sim.NewRNG(5)
	want := map[int64]byte{}
	for i := 0; i < 500; i++ {
		lba := rng.Int63n(a.Blocks())
		seed := byte(i)
		wsync(eng, a, lba, 1, pat(seed, 4096))
		want[lba] = seed
	}
	eng.RunUntil(eng.Now() + 50*sim.Millisecond)
	for lba, seed := range want {
		r := rsync(eng, a, lba, 1)
		if !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("lba %d mismatch", lba)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	if r := wsync(eng, a, a.Blocks(), 1, nil); !errors.Is(r.Err, blockdev.ErrOutOfRange) {
		t.Fatalf("err = %v", r.Err)
	}
}

func TestFullStripeAvoidsRMW(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	wsync(eng, a, 0, 12, pat(1, 12*4096)) // exactly one full stripe
	eng.Run()
	if a.RMWReads() != 0 {
		t.Fatalf("full-stripe write incurred %d RMW read bytes", a.RMWReads())
	}
	wa := a.WriteAmp()
	if wa.FlashParityBytes != 4*4096 {
		t.Fatalf("parity out = %d, want one chunk", wa.FlashParityBytes)
	}
}

func TestPartialStripeIncursRMW(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	wsync(eng, a, 0, 1, pat(1, 4096))
	eng.RunUntil(eng.Now() + 20*sim.Millisecond) // timer flush
	if a.RMWReads() == 0 {
		t.Fatal("partial flush did not read-modify-write")
	}
}

func TestVolatileBufferTimerFlushes(t *testing.T) {
	eng, a, _ := newArray(t, testCfg())
	a.Write(3, 1, nil, nil)
	eng.RunUntil(1 * sim.Millisecond) // before the 2 ms flush timer
	if wa := a.WriteAmp(); wa.FlashDataBytes != 0 {
		t.Fatal("data flushed before timer")
	}
	eng.RunUntil(20 * sim.Millisecond)
	if wa := a.WriteAmp(); wa.FlashDataBytes == 0 {
		t.Fatal("timer never flushed the volatile buffer")
	}
}

func TestCachePressureEvicts(t *testing.T) {
	cfg := testCfg()
	cfg.StripeCacheBytes = 12 * 4096 // exactly one stripe
	cfg.FlushInterval = 0
	eng, a, _ := newArray(t, cfg)
	wsync(eng, a, 0, 1, nil)   // stripe 0 dirty
	wsync(eng, a, 100, 1, nil) // stripe far away: evicts stripe 0
	eng.Run()
	wa := a.WriteAmp()
	if wa.FlashDataBytes == 0 {
		t.Fatal("pressure eviction did not flush")
	}
}

func TestWriteMergingBenefitsSequential(t *testing.T) {
	// Sequential full stripes produce large coalesced member writes; the
	// engine-level data-out equals user bytes (no RMW, no re-writes).
	eng, a, _ := newArray(t, testCfg())
	for lba := int64(0); lba < 480; lba += 12 {
		wsync(eng, a, lba, 12, nil)
	}
	eng.Run()
	wa := a.WriteAmp()
	if wa.FlashDataBytes != wa.UserBytes {
		t.Fatalf("sequential data out %d != user %d", wa.FlashDataBytes, wa.UserBytes)
	}
	// Parity adds exactly 1/3 of user volume.
	if wa.FlashParityBytes*3 != wa.UserBytes {
		t.Fatalf("parity %d not 1/3 of user %d", wa.FlashParityBytes, wa.UserBytes)
	}
}

func TestThroughputCappedByHeadStage(t *testing.T) {
	cfg := testCfg()
	cfg.PageCost = 10 * sim.Microsecond // absurdly slow head for the test
	eng, a, _ := newArray(t, cfg)
	var doneBytes int64
	next := new(int64)
	var submit func()
	submit = func() {
		lba := *next
		*next += 12
		if lba+12 > a.Blocks() {
			*next = 12
			lba = 0
		}
		a.Write(lba, 12, nil, func(r blockdev.WriteResult) {
			if r.Err == nil {
				doneBytes += 12 * 4096
			}
			submit()
		})
	}
	for i := 0; i < 32; i++ {
		submit()
	}
	eng.RunUntil(20 * sim.Millisecond)
	mbps := float64(doneBytes) / 1e6 / 0.02
	// 10us per 4KB page => ~400 MB/s cap.
	if mbps > 500 {
		t.Fatalf("throughput %.0f MB/s exceeds head-stage cap", mbps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, a, _ := newArray(t, testCfg())
		rng := sim.NewRNG(77)
		for i := 0; i < 800; i++ {
			wsync(eng, a, rng.Int63n(a.Blocks()/2), 2, nil)
		}
		eng.RunUntil(eng.Now() + 50*sim.Millisecond)
		wa := a.WriteAmp()
		return wa.FlashDataBytes, wa.FlashParityBytes
	}
	d1, p1 := run()
	d2, p2 := run()
	if d1 != d2 || p1 != p2 {
		t.Fatal("replay diverged")
	}
}
