// Package workload generates the I/O patterns the paper evaluates with:
// fio-style microbenchmarks (closed-loop, fixed size/pattern/depth) and
// synthetic production traces parameterized to match Table 6's
// characteristics and the reuse-distance statistics of §3.1/§5.4.
package workload

import (
	"biza/internal/sim"
	"biza/internal/trace"
)

// Profile parameterizes a synthetic production trace. The reuse-distance
// distribution — the property BIZA's endurance results hinge on — is
// shaped by a two-tier model: a small hot tier capturing HotWriteFrac of
// the writes (short reuse distances) over HotBytes, with the remainder
// spread across the full footprint (long reuse distances).
type Profile struct {
	Name           string
	WriteRatio     float64 // fraction of ops that write (Table 6)
	AvgReadBlocks  int     // mean read size in 4 KiB blocks
	AvgWriteBlocks int     // mean write size in 4 KiB blocks
	FootprintMB    int64   // total addressable working set
	HotMB          int64   // hot-tier size
	HotWriteFrac   float64 // fraction of write bytes aimed at the hot tier
}

// Profiles are the ten trace workloads of Table 6. Write ratios and sizes
// come from the table; the tier parameters are calibrated so casa has only
// ~8% of reuse distances beyond 56 MB while tencent has ~90% (§5.4).
var Profiles = []Profile{
	{Name: "casa", WriteRatio: 0.986, AvgReadBlocks: 3, AvgWriteBlocks: 1, FootprintMB: 256, HotMB: 24, HotWriteFrac: 0.93},
	{Name: "online", WriteRatio: 0.671, AvgReadBlocks: 1, AvgWriteBlocks: 1, FootprintMB: 256, HotMB: 24, HotWriteFrac: 0.90},
	{Name: "ikki", WriteRatio: 0.928, AvgReadBlocks: 2, AvgWriteBlocks: 1, FootprintMB: 320, HotMB: 32, HotWriteFrac: 0.85},
	{Name: "proj", WriteRatio: 0.030, AvgReadBlocks: 2, AvgWriteBlocks: 4, FootprintMB: 512, HotMB: 32, HotWriteFrac: 0.60},
	{Name: "web", WriteRatio: 0.459, AvgReadBlocks: 11, AvgWriteBlocks: 2, FootprintMB: 384, HotMB: 32, HotWriteFrac: 0.55},
	{Name: "DAP", WriteRatio: 0.519, AvgReadBlocks: 16, AvgWriteBlocks: 30, FootprintMB: 512, HotMB: 32, HotWriteFrac: 0.50},
	{Name: "MSNFS", WriteRatio: 0.315, AvgReadBlocks: 2, AvgWriteBlocks: 3, FootprintMB: 384, HotMB: 32, HotWriteFrac: 0.55},
	{Name: "lun0", WriteRatio: 0.176, AvgReadBlocks: 7, AvgWriteBlocks: 2, FootprintMB: 384, HotMB: 24, HotWriteFrac: 0.45},
	{Name: "lun1", WriteRatio: 0.380, AvgReadBlocks: 5, AvgWriteBlocks: 3, FootprintMB: 448, HotMB: 24, HotWriteFrac: 0.40},
	{Name: "tencent", WriteRatio: 0.529, AvgReadBlocks: 8, AvgWriteBlocks: 10, FootprintMB: 768, HotMB: 16, HotWriteFrac: 0.10},
}

// ProfileByName finds a profile, or nil.
func ProfileByName(name string) *Profile {
	for i := range Profiles {
		if Profiles[i].Name == name {
			return &Profiles[i]
		}
	}
	return nil
}

// Synthesize builds a deterministic trace of nOps operations.
func (p Profile) Synthesize(seed uint64, nOps int) *trace.Trace {
	const bs = 4096
	rng := sim.NewRNG(seed ^ 0x7a0f17e)
	footBlocks := p.FootprintMB << 20 / bs
	hotBlocks := p.HotMB << 20 / bs
	if hotBlocks > footBlocks {
		hotBlocks = footBlocks
	}
	t := &trace.Trace{Name: p.Name, BlockSize: bs, Ops: make([]trace.Op, 0, nOps)}
	sizeOf := func(avg int) int {
		if avg <= 1 {
			return 1
		}
		// Geometric-ish spread around the mean: 1x..2x avg.
		return avg/2 + rng.Intn(avg) + 1
	}
	for i := 0; i < nOps; i++ {
		write := rng.Float64() < p.WriteRatio
		var blocks int
		var lba int64
		if write {
			blocks = sizeOf(p.AvgWriteBlocks)
			if rng.Float64() < p.HotWriteFrac {
				lba = rng.Int63n(hotBlocks)
			} else {
				lba = hotBlocks + rng.Int63n(footBlocks-hotBlocks)
			}
		} else {
			blocks = sizeOf(p.AvgReadBlocks)
			lba = rng.Int63n(footBlocks)
		}
		if lba+int64(blocks) > footBlocks {
			lba = footBlocks - int64(blocks)
		}
		t.Ops = append(t.Ops, trace.Op{Write: write, LBA: lba, Blocks: blocks})
	}
	return t
}

// SystorReusePopulation synthesizes the reuse-distance sample population
// behind Fig. 4: a mixture in which only ~17% of re-accesses fall within
// 14 MB (the ZN540's total ZRWA), mimicking the SYSTOR '17 VDI traces.
func SystorReusePopulation(seed uint64, nOps int) *trace.Trace {
	p := Profile{
		Name: "systor", WriteRatio: 1.0, AvgWriteBlocks: 1,
		FootprintMB: 512, HotMB: 10, HotWriteFrac: 0.20,
	}
	return p.Synthesize(seed, nOps)
}
