package workload

import (
	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/sim"
)

// Pattern is an access pattern.
type Pattern uint8

// Access patterns.
const (
	Seq Pattern = iota
	Rand
)

func (p Pattern) String() string {
	if p == Seq {
		return "seq"
	}
	return "rand"
}

// MicroSpec describes an fio-style closed-loop microbenchmark: a fixed
// request size and pattern at a fixed queue depth for a virtual duration
// (the paper uses one job, iodepth 32, sizes 4-192 KiB).
type MicroSpec struct {
	Pattern     Pattern
	Read        bool
	SizeBlocks  int
	IODepth     int
	Duration    sim.Time
	SpanBlocks  int64 // address space to exercise; 0 = whole device
	Seed        uint64
	WarmupBytes uint64 // bytes completed before measurement starts
	// Pooled makes writes carry real payloads drawn from the device's
	// unified buffer pool (blockdev.BufWriter), exercising the zero-copy
	// ownership-transfer path instead of the data=nil control path.
	// Ignored for reads and for devices without a pool.
	Pooled bool
}

// MicroResult reports a measured run.
type MicroResult struct {
	Ops     uint64
	Bytes   uint64
	Elapsed sim.Time
	Lat     *metrics.Histogram
	Errors  uint64
}

// Throughput reports measured bytes/second.
func (r MicroResult) Throughput() metrics.Throughput {
	return metrics.Throughput{Bytes: r.Bytes, Elapsed: r.Elapsed}
}

// RunMicro drives dev with the spec and returns measurements taken after
// the warmup volume. The loop is closed: IODepth requests stay in flight.
func RunMicro(eng *sim.Engine, dev blockdev.Device, spec MicroSpec) MicroResult {
	if spec.IODepth < 1 {
		spec.IODepth = 1
	}
	span := spec.SpanBlocks
	if span == 0 || span > dev.Blocks() {
		span = dev.Blocks()
	}
	size := int64(spec.SizeBlocks)
	if size < 1 {
		size = 1
	}
	rng := sim.NewRNG(spec.Seed ^ 0x4f10)
	res := MicroResult{Lat: metrics.NewHistogram()}
	var warmupLeft = spec.WarmupBytes
	var cursor int64
	measuringSince := sim.Time(-1)
	deadline := eng.Now() + spec.Duration
	stopAt := deadline + spec.Duration // hard stop covers warmup overrun

	nextLBA := func() int64 {
		if spec.Pattern == Seq {
			lba := cursor
			cursor += size
			if cursor > span {
				cursor = size
				lba = 0
			}
			return lba
		}
		slots := span / size
		if slots < 1 {
			return 0
		}
		return rng.Int63n(slots) * size
	}

	var issue func()
	complete := func(err error, lat sim.Time) {
		bytes := uint64(size) * uint64(dev.BlockSize())
		switch {
		case err != nil:
			res.Errors++
		case warmupLeft > 0:
			if warmupLeft > bytes {
				warmupLeft -= bytes
			} else {
				warmupLeft = 0
				measuringSince = eng.Now()
				deadline = eng.Now() + spec.Duration
			}
		default:
			if measuringSince < 0 {
				measuringSince = eng.Now()
				deadline = eng.Now() + spec.Duration
			}
			if eng.Now() <= deadline {
				res.Ops++
				res.Bytes += bytes
				res.Lat.Record(lat)
			}
		}
		if eng.Now() < deadline && eng.Now() < stopAt {
			issue()
		}
	}
	var bw blockdev.BufWriter
	if spec.Pooled && !spec.Read {
		bw, _ = dev.(blockdev.BufWriter)
	}
	bs := dev.BlockSize()
	issue = func() {
		lba := nextLBA()
		switch {
		case spec.Read:
			dev.Read(lba, int(size), func(r blockdev.ReadResult) { complete(r.Err, r.Latency) })
		case bw != nil:
			// Zero-copy submission: the payload is pooled, stamped with a
			// deterministic pattern, and handed over by reference — the
			// one reference Get returned transfers to the engine.
			b := bw.Pool().Get(int(size)*bs, 0)
			fill := b.Bytes()
			stamp := byte(uint64(lba) ^ spec.Seed)
			for i := range fill {
				fill[i] = stamp
			}
			bw.WriteBuf(lba, int(size), b, func(r blockdev.WriteResult) { complete(r.Err, r.Latency) })
		default:
			dev.Write(lba, int(size), nil, func(r blockdev.WriteResult) { complete(r.Err, r.Latency) })
		}
	}
	if spec.WarmupBytes == 0 {
		measuringSince = eng.Now()
	}
	for i := 0; i < spec.IODepth; i++ {
		issue()
	}
	eng.Run()
	if measuringSince < 0 {
		measuringSince = eng.Now()
	}
	end := eng.Now()
	if end > deadline {
		end = deadline
	}
	res.Elapsed = end - measuringSince
	if res.Elapsed <= 0 {
		res.Elapsed = 1
	}
	return res
}

// Precondition sequentially writes the span once so later reads hit
// mapped data.
func Precondition(eng *sim.Engine, dev blockdev.Device, spanBlocks int64, chunk int) {
	if spanBlocks == 0 || spanBlocks > dev.Blocks() {
		spanBlocks = dev.Blocks()
	}
	if chunk < 1 {
		chunk = 16
	}
	var next int64
	depth := 16
	var issue func()
	issue = func() {
		if next+int64(chunk) > spanBlocks {
			return
		}
		lba := next
		next += int64(chunk)
		dev.Write(lba, chunk, nil, func(blockdev.WriteResult) { issue() })
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.Run()
}

// RateSpec describes an open-loop workload: requests arrive at a fixed
// rate regardless of completions (the latency-sensitive regime, where
// queueing delay is visible instead of hidden by a closed loop).
type RateSpec struct {
	Pattern    Pattern
	Read       bool
	SizeBlocks int
	// IntervalNS is the virtual time between arrivals.
	IntervalNS sim.Time
	Count      int
	SpanBlocks int64
	Seed       uint64
}

// RunOpenLoop issues Count requests at fixed intervals and reports the
// latency distribution once all complete.
func RunOpenLoop(eng *sim.Engine, dev blockdev.Device, spec RateSpec) MicroResult {
	span := spec.SpanBlocks
	if span == 0 || span > dev.Blocks() {
		span = dev.Blocks()
	}
	size := int64(spec.SizeBlocks)
	if size < 1 {
		size = 1
	}
	if spec.IntervalNS < 1 {
		spec.IntervalNS = sim.Microsecond
	}
	rng := sim.NewRNG(spec.Seed ^ 0x0be1)
	res := MicroResult{Lat: metrics.NewHistogram()}
	start := eng.Now()
	var cursor int64
	nextLBA := func() int64 {
		if spec.Pattern == Seq {
			lba := cursor
			cursor += size
			if cursor > span {
				cursor, lba = size, 0
			}
			return lba
		}
		slots := span / size
		if slots < 1 {
			return 0
		}
		return rng.Int63n(slots) * size
	}
	for i := 0; i < spec.Count; i++ {
		at := start + sim.Time(i)*spec.IntervalNS
		eng.At(at, func() {
			lba := nextLBA()
			if spec.Read {
				dev.Read(lba, int(size), func(r blockdev.ReadResult) {
					if r.Err != nil {
						res.Errors++
						return
					}
					res.Ops++
					res.Bytes += uint64(size) * uint64(dev.BlockSize())
					res.Lat.Record(r.Latency)
				})
			} else {
				dev.Write(lba, int(size), nil, func(r blockdev.WriteResult) {
					if r.Err != nil {
						res.Errors++
						return
					}
					res.Ops++
					res.Bytes += uint64(size) * uint64(dev.BlockSize())
					res.Lat.Record(r.Latency)
				})
			}
		})
	}
	eng.Run()
	res.Elapsed = eng.Now() - start
	if res.Elapsed <= 0 {
		res.Elapsed = 1
	}
	return res
}
