package workload

import (
	"math"
	"testing"

	"biza/internal/ftl"
	"biza/internal/sim"
)

func TestProfilesMatchTable6(t *testing.T) {
	// Spot-check Table 6 numbers encoded in the profiles.
	cases := map[string]float64{
		"casa": 0.986, "online": 0.671, "ikki": 0.928, "proj": 0.030,
		"web": 0.459, "DAP": 0.519, "MSNFS": 0.315, "lun0": 0.176,
		"lun1": 0.380, "tencent": 0.529,
	}
	for name, wr := range cases {
		p := ProfileByName(name)
		if p == nil {
			t.Fatalf("profile %s missing", name)
		}
		if p.WriteRatio != wr {
			t.Fatalf("%s write ratio %v, want %v", name, p.WriteRatio, wr)
		}
	}
	if ProfileByName("nope") != nil {
		t.Fatal("found nonexistent profile")
	}
}

func TestSynthesizedTraceMatchesProfile(t *testing.T) {
	p := *ProfileByName("online")
	tr := p.Synthesize(1, 50000)
	s := tr.Characterize()
	if math.Abs(s.WriteRatio-p.WriteRatio) > 0.02 {
		t.Fatalf("write ratio %v, want ~%v", s.WriteRatio, p.WriteRatio)
	}
	if tr.Footprint() > p.FootprintMB<<20/4096 {
		t.Fatal("footprint exceeds profile")
	}
}

func TestReuseDistanceCalibration(t *testing.T) {
	// §5.4: casa has ~8.3% of reuse distances beyond 56 MB; tencent ~90.2%.
	const threshold = 56 << 20
	casa := ProfileByName("casa").Synthesize(2, 120000)
	ten := ProfileByName("tencent").Synthesize(2, 120000)
	fc := casa.FractionBeyond(threshold)
	ft := ten.FractionBeyond(threshold)
	t.Logf("beyond 56MB: casa=%.3f tencent=%.3f", fc, ft)
	if fc > 0.30 {
		t.Fatalf("casa fraction beyond 56MB = %.3f, want small (~0.08)", fc)
	}
	if ft < 0.60 {
		t.Fatalf("tencent fraction beyond 56MB = %.3f, want large (~0.90)", ft)
	}
}

func TestSystorPopulationMatchesFig4(t *testing.T) {
	// Fig. 4 / §3.1: only ~17% of reuse distances within 14 MB.
	tr := SystorReusePopulation(3, 150000)
	within := 1 - tr.FractionBeyond(14<<20)
	t.Logf("systor within 14MB: %.3f", within)
	if within < 0.08 || within > 0.35 {
		t.Fatalf("fraction within 14MB = %.3f, want ~0.17", within)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p := *ProfileByName("web")
	a := p.Synthesize(9, 1000)
	b := p.Synthesize(9, 1000)
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestRunMicroSeqWrite(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := ftl.New(eng, ftl.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := RunMicro(eng, dev, MicroSpec{
		Pattern: Seq, SizeBlocks: 4, IODepth: 8, Duration: 10 * sim.Millisecond,
	})
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Throughput().MBps() <= 0 {
		t.Fatal("no throughput")
	}
	if res.Lat.Count() != res.Ops {
		t.Fatal("latency samples != ops")
	}
}

func TestRunMicroRandReadAfterPrecondition(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := ftl.New(eng, ftl.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	span := dev.Blocks() / 2
	Precondition(eng, dev, span, 16)
	res := RunMicro(eng, dev, MicroSpec{
		Pattern: Rand, Read: true, SizeBlocks: 2, IODepth: 4,
		Duration: 5 * sim.Millisecond, SpanBlocks: span, Seed: 5,
	})
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("read ops=%d errors=%d", res.Ops, res.Errors)
	}
}

func TestRunMicroWarmupExcluded(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := ftl.New(eng, ftl.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	with := RunMicro(eng, dev, MicroSpec{
		Pattern: Seq, SizeBlocks: 4, IODepth: 4,
		Duration: 5 * sim.Millisecond, WarmupBytes: 1 << 20,
	})
	if with.Ops == 0 {
		t.Fatal("no measured ops after warmup")
	}
}

func TestDepthIncreasesThroughput(t *testing.T) {
	run := func(depth int) float64 {
		eng := sim.NewEngine()
		dev, _ := ftl.New(eng, ftl.TestConfig())
		res := RunMicro(eng, dev, MicroSpec{
			Pattern: Seq, SizeBlocks: 4, IODepth: depth, Duration: 10 * sim.Millisecond,
		})
		return res.Throughput().MBps()
	}
	d1 := run(1)
	d16 := run(16)
	if d16 <= d1 {
		t.Fatalf("depth scaling broken: d1=%.0f d16=%.0f", d1, d16)
	}
}

func TestRunOpenLoopLatencyGrowsWithRate(t *testing.T) {
	// Open-loop at a rate beyond service capacity must show queueing
	// delay; a gentle rate must not.
	run := func(interval sim.Time) float64 {
		eng := sim.NewEngine()
		dev, _ := ftl.New(eng, ftl.TestConfig())
		res := RunOpenLoop(eng, dev, RateSpec{
			Pattern: Seq, SizeBlocks: 4, IntervalNS: interval, Count: 400,
		})
		if res.Ops == 0 {
			t.Fatal("no ops")
		}
		return res.Lat.Mean()
	}
	gentle := run(200 * sim.Microsecond)
	flood := run(2 * sim.Microsecond)
	if flood <= gentle {
		t.Fatalf("open-loop queueing missing: flood mean %v <= gentle %v", flood, gentle)
	}
}

func TestRunOpenLoopReads(t *testing.T) {
	eng := sim.NewEngine()
	dev, _ := ftl.New(eng, ftl.TestConfig())
	Precondition(eng, dev, dev.Blocks()/2, 16)
	res := RunOpenLoop(eng, dev, RateSpec{
		Pattern: Rand, Read: true, SizeBlocks: 2, IntervalNS: 50 * sim.Microsecond,
		Count: 200, SpanBlocks: dev.Blocks() / 2, Seed: 3,
	})
	if res.Ops != 200 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
}
