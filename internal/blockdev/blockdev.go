// Package blockdev defines the asynchronous block-device interface shared
// by every layer in this repository that exposes block semantics: the
// conventional-SSD simulator, the dm-zap adapter, the mdraid and BIZA array
// engines, and the platform compositions benchmarked against each other.
package blockdev

import (
	"fmt"

	"biza/internal/buf"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/storerr"
)

// WriteResult is the completion of a Write or Flush.
type WriteResult struct {
	Err     error
	Latency sim.Time
}

// ReadResult is the completion of a Read.
type ReadResult struct {
	Err     error
	Data    []byte // nil when the underlying store does not retain payloads
	Latency sim.Time
}

// Device is an asynchronous block device in virtual time. Implementations
// are single-goroutine (simulation-driven); completions fire as events.
type Device interface {
	// BlockSize reports the logical block size in bytes.
	BlockSize() int
	// Blocks reports the usable capacity in blocks.
	Blocks() int64
	// Write stores nblocks starting at lba. data may be nil (performance
	// experiments) or hold nblocks*BlockSize bytes.
	Write(lba int64, nblocks int, data []byte, done func(WriteResult))
	// Read fetches nblocks starting at lba.
	Read(lba int64, nblocks int, done func(ReadResult))
	// Trim declares [lba, lba+nblocks) dead so lower layers can drop it.
	Trim(lba int64, nblocks int)
}

// BufWriter is optionally implemented by engines whose write path takes
// ownership of refcounted pooled payloads (internal/buf) instead of
// copying caller bytes. Workload generators that find this interface
// draw payload buffers from Pool and submit them with WriteBuf, making
// the data path zero-copy end to end.
type BufWriter interface {
	// Pool returns the engine's unified buffer pool. Payloads passed to
	// WriteBuf must be drawn from it.
	Pool() *buf.Pool
	// WriteBuf is Write for a refcounted payload of nblocks*BlockSize
	// bytes: the call transfers one reference, which the engine releases
	// once it — and every layer below it — is done with the bytes. The
	// caller must not mutate the payload after submission unless it
	// Retained its own reference and knows the lower layers have quiesced.
	WriteBuf(lba int64, nblocks int, b *buf.Buf, done func(WriteResult))
}

// WriteAmper is implemented by devices and engines that can report
// endurance accounting.
type WriteAmper interface {
	WriteAmp() metrics.WriteAmp
}

// DataStorer is optionally implemented by devices that know whether their
// reads return payloads. Performance-mode stacks (StoreData=false on the
// flash model) report false, letting upper layers skip allocating
// zero-filled read buffers on the hot path.
type DataStorer interface {
	StoresData() bool
}

// StoresData reports whether d retains payloads; devices that do not
// implement DataStorer are assumed to (the conservative default — callers
// then allocate read buffers as before).
func StoresData(d Device) bool {
	if s, ok := d.(DataStorer); ok {
		return s.StoresData()
	}
	return true
}

// Common errors shared by block-layer implementations. Both wrap the
// canonical sentinels in internal/storerr, so errors.Is matches either
// identity (see that package).
var (
	// ErrOutOfRange reports I/O beyond device capacity.
	ErrOutOfRange = fmt.Errorf("blockdev: address out of range: %w", storerr.ErrOutOfRange)
	// ErrBadArgument reports malformed request parameters.
	ErrBadArgument = fmt.Errorf("blockdev: bad argument: %w", storerr.ErrBadArgument)
)
