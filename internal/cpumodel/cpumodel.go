// Package cpumodel attributes virtual CPU time to storage-stack components,
// reproducing the paper's §5.7 methodology (perf cycle accounting) inside
// the simulation. Engines charge fixed costs for the work their real
// counterparts burn cycles on: parity arithmetic, mapping-table updates,
// request submission, and — the dominant term for dm-zap — spin-lock
// polling while serializing one in-flight write per zone.
package cpumodel

import "biza/internal/sim"

// Component identifies who burned the cycles.
type Component uint8

// Stack components, matching Fig. 17's legend.
const (
	CompMdraid Component = iota
	CompDmzap
	CompRAIZN
	CompBIZA
	CompIO // kernel I/O submission/completion path
	numComponents
)

func (c Component) String() string {
	switch c {
	case CompMdraid:
		return "mdraid"
	case CompDmzap:
		return "dmzap"
	case CompRAIZN:
		return "raizn"
	case CompBIZA:
		return "biza"
	case CompIO:
		return "io"
	}
	return "unknown"
}

// Default per-operation CPU costs in virtual nanoseconds. Absolute values
// are calibration constants; Fig. 17 depends on their ratios — spin
// polling dwarfs everything else, parity scales with size.
const (
	CostSubmission  sim.Time = 1500 // block-layer + driver per request
	CostCompletion  sim.Time = 800
	CostMapUpdate   sim.Time = 150  // one mapping-table insert/lookup
	CostSchedule    sim.Time = 400  // engine scheduling decision
	CostParityPerKB sim.Time = 180  // XOR/RS arithmetic per KiB
	CostSpinPoll    sim.Time = 1000 // one spin-lock poll iteration
	CostGhostAccess sim.Time = 250  // ghost-cache access + heap fix
)

// Accountant accumulates per-component CPU time.
type Accountant struct {
	ticks [numComponents]sim.Time
}

// Charge adds d nanoseconds of CPU to component c.
func (a *Accountant) Charge(c Component, d sim.Time) {
	if d < 0 {
		panic("cpumodel: negative charge")
	}
	a.ticks[c] += d
}

// ChargeParity adds parity-computation cost proportional to bytes.
func (a *Accountant) ChargeParity(c Component, bytes int64) {
	a.Charge(c, CostParityPerKB*sim.Time(bytes)/1024)
}

// Ticks reports accumulated CPU for one component.
func (a *Accountant) Ticks(c Component) sim.Time { return a.ticks[c] }

// Total reports accumulated CPU across components.
func (a *Accountant) Total() sim.Time {
	var t sim.Time
	for _, v := range a.ticks {
		t += v
	}
	return t
}

// UsagePercent reports CPU usage of component c over an elapsed window in
// perf convention: 100 means one core fully busy.
func (a *Accountant) UsagePercent(c Component, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(a.ticks[c]) / float64(elapsed)
}

// TotalPercent reports aggregate usage over an elapsed window.
func (a *Accountant) TotalPercent(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(a.Total()) / float64(elapsed)
}

// Reset zeroes all counters.
func (a *Accountant) Reset() { a.ticks = [numComponents]sim.Time{} }
