package cpumodel

import (
	"testing"

	"biza/internal/sim"
)

func TestChargeAndQuery(t *testing.T) {
	var a Accountant
	a.Charge(CompBIZA, 1000)
	a.Charge(CompBIZA, 500)
	a.Charge(CompIO, 300)
	if a.Ticks(CompBIZA) != 1500 || a.Ticks(CompIO) != 300 {
		t.Fatalf("ticks wrong: %d/%d", a.Ticks(CompBIZA), a.Ticks(CompIO))
	}
	if a.Total() != 1800 {
		t.Fatalf("total = %d", a.Total())
	}
}

func TestUsagePercent(t *testing.T) {
	var a Accountant
	a.Charge(CompDmzap, sim.Second/2)
	if got := a.UsagePercent(CompDmzap, sim.Second); got != 50 {
		t.Fatalf("usage = %v, want 50", got)
	}
	if got := a.UsagePercent(CompDmzap, 0); got != 0 {
		t.Fatal("zero elapsed should report 0")
	}
	a.Charge(CompIO, sim.Second)
	if got := a.TotalPercent(sim.Second); got != 150 {
		t.Fatalf("total usage = %v, want 150 (1.5 cores)", got)
	}
}

func TestChargeParityScalesWithBytes(t *testing.T) {
	var a Accountant
	a.ChargeParity(CompMdraid, 64<<10)
	if a.Ticks(CompMdraid) != CostParityPerKB*64 {
		t.Fatalf("parity charge = %d", a.Ticks(CompMdraid))
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	var a Accountant
	a.Charge(CompIO, -1)
}

func TestReset(t *testing.T) {
	var a Accountant
	a.Charge(CompRAIZN, 42)
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestComponentStrings(t *testing.T) {
	for c := CompMdraid; c < numComponents; c++ {
		if c.String() == "unknown" {
			t.Fatalf("component %d has no name", c)
		}
	}
}
