// Package fault is the deterministic fault-injection subsystem: a
// declarative Spec of failure rules compiles into a Plan of per-device
// Injectors that the NVMe driver queue consults at each command delivery.
// Because injection sits between the driver and the device, every array
// stack in this repository (BIZA, RAIZN, dm-zap compositions, mdraid)
// sees the same faults through the same interface.
//
// Determinism: all randomness derives from sim.DeriveSeed keyed by rule
// index and device — never by wall clock or execution order — and the
// simulated command stream itself is deterministic, so a fault schedule
// reproduces bit-for-bit from its seed at any test -parallel level.
//
// What can fail:
//
//   - Transient: a matching command fails with storerr.ErrTransient at a
//     given probability; the driver queue retries with bounded backoff.
//   - Latency: matching commands are delivered late by a fixed extra
//     delay (a slow die, a busy channel, a firmware hiccup).
//   - Unreadable: reads overlapping a block range fail permanently with
//     storerr.ErrUnreadable (a latent sector error); the array layer
//     reconstructs from parity.
//   - DeviceDeath: from a trigger time or op count onward, every command
//     fails with storerr.ErrDeviceDead; the array flips the member to
//     degraded mode and (optionally) rebuilds onto a spare.
//   - PowerLoss: at a virtual time the whole platform loses power —
//     uncommitted ZRWA contents are truncated, in-flight commands are
//     dropped, and the host must run recovery. Handled by the platform
//     layer (internal/stack), not by per-device injectors.
package fault

import (
	"fmt"

	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/storerr"
)

// Kind discriminates fault rules. Numbering is mirrored by
// obs.FaultKindName; keep in sync.
type Kind uint8

// Fault kinds.
const (
	Transient Kind = iota
	Latency
	Unreadable
	DeviceDeath
	PowerLoss
)

func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Latency:
		return "latency"
	case Unreadable:
		return "unreadable"
	case DeviceDeath:
		return "device-death"
	case PowerLoss:
		return "power-loss"
	}
	return "unknown"
}

// Op selects which commands a rule affects.
type Op uint8

// Command classes. Append counts as Write.
const (
	AnyOp Op = iota
	Read
	Write
	Reset
)

func (o Op) String() string {
	switch o {
	case AnyOp:
		return "any"
	case Read:
		return "read"
	case Write:
		return "write"
	case Reset:
		return "reset"
	}
	return "unknown"
}

func (o Op) matches(got Op) bool { return o == AnyOp || o == got }

// obsOp maps a concrete command class to the obs span-op numbering for
// EvFault records.
func obsOp(o Op) obs.Op {
	switch o {
	case Read:
		return obs.OpRead
	case Reset:
		return obs.OpReset
	}
	return obs.OpWrite
}

// Rule is one declarative failure. Zero fields mean "unset"; which fields
// a kind requires is documented per field.
type Rule struct {
	Kind Kind

	// Dev is the member device the rule applies to; -1 applies it to
	// every member (each gets an independent random stream). Ignored by
	// PowerLoss, which is platform-wide.
	Dev int

	// Op scopes Transient and Latency rules to a command class.
	Op Op

	// From and Until bound the active window in virtual time for
	// Transient, Latency, and Unreadable rules. Until == 0 means
	// open-ended.
	From, Until sim.Time

	// At triggers DeviceDeath and PowerLoss at a virtual time.
	At sim.Time

	// AfterOps triggers DeviceDeath after the device has delivered this
	// many commands (alternative to At; whichever fires first wins).
	AfterOps uint64

	// Rate is the per-command injection probability of a Transient rule,
	// in [0, 1].
	Rate float64

	// MaxCount bounds how many times a Transient rule fires per device
	// (0 = unlimited).
	MaxCount int

	// Delay is the extra delivery latency of a Latency rule.
	Delay sim.Time

	// Zone, Lba, Blocks scope an Unreadable rule to a block range of one
	// zone on device Dev.
	Zone   int
	Lba    int64
	Blocks int
}

// Spec is a declarative fault plan: an ordered list of rules.
type Spec struct {
	Rules []Rule
}

// Injected errors. Each wraps the canonical storerr sentinel, so layers
// branch with errors.Is(err, storerr.ErrTransient) etc. without importing
// this package.
var (
	ErrInjectedTransient  = fmt.Errorf("fault: injected: %w", storerr.ErrTransient)
	ErrInjectedDead       = fmt.Errorf("fault: injected: %w", storerr.ErrDeviceDead)
	ErrInjectedUnreadable = fmt.Errorf("fault: injected: %w", storerr.ErrUnreadable)
)

func (r *Rule) check(members int) error {
	if r.Kind != PowerLoss {
		if r.Dev != -1 && (r.Dev < 0 || r.Dev >= members) {
			return fmt.Errorf("dev %d out of range (members=%d)", r.Dev, members)
		}
	}
	switch r.Kind {
	case Transient:
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("rate %v outside [0,1]", r.Rate)
		}
	case Latency:
		if r.Delay <= 0 {
			return fmt.Errorf("latency rule needs Delay > 0")
		}
	case Unreadable:
		if r.Blocks <= 0 || r.Lba < 0 || r.Zone < 0 {
			return fmt.Errorf("unreadable rule needs Zone >= 0, Lba >= 0, Blocks > 0")
		}
	case DeviceDeath:
		if r.At <= 0 && r.AfterOps == 0 {
			return fmt.Errorf("device-death rule needs At or AfterOps")
		}
	case PowerLoss:
		if r.At <= 0 {
			return fmt.Errorf("power-loss rule needs At > 0")
		}
	default:
		return fmt.Errorf("unknown kind %d", r.Kind)
	}
	return nil
}

// active reports whether the rule's [From, Until) window covers now.
func (r *Rule) active(now sim.Time) bool {
	return now >= r.From && (r.Until == 0 || now < r.Until)
}

// compiledRule is one rule instantiated for one device, carrying its
// private random stream and injection count.
type compiledRule struct {
	r      Rule
	rng    *sim.RNG
	thresh uint64 // Rate scaled to a 53-bit threshold (no float per op)
	count  int
}

// Plan is a compiled Spec: one Injector per member plus the platform-wide
// power-loss schedule.
type Plan struct {
	injs      []*Injector
	powerLoss []sim.Time
}

// Compile validates spec and instantiates it for a platform with the given
// member count. Every random stream is derived from seed, the rule index,
// and the device index via sim.DeriveSeed.
func Compile(spec *Spec, seed uint64, members int) (*Plan, error) {
	if members <= 0 {
		return nil, fmt.Errorf("fault: members must be positive")
	}
	p := &Plan{injs: make([]*Injector, members)}
	for i := range p.injs {
		p.injs[i] = &Injector{dev: i, trDev: i}
	}
	if spec == nil {
		return p, nil
	}
	for ri := range spec.Rules {
		r := spec.Rules[ri]
		if err := r.check(members); err != nil {
			return nil, fmt.Errorf("fault: rule %d (%s): %w", ri, r.Kind, err)
		}
		if r.Kind == PowerLoss {
			p.powerLoss = append(p.powerLoss, r.At)
			continue
		}
		first, last := r.Dev, r.Dev
		if r.Dev == -1 {
			first, last = 0, members-1
		}
		for d := first; d <= last; d++ {
			cr := &compiledRule{r: r}
			if r.Kind == Transient {
				cr.rng = sim.NewRNG(sim.DeriveSeed(seed, "fault",
					fmt.Sprintf("rule%d", ri), fmt.Sprintf("dev%d", d)))
				cr.thresh = uint64(r.Rate * float64(uint64(1)<<53))
			}
			p.injs[d].rules = append(p.injs[d].rules, cr)
		}
	}
	// Power-loss times fire in order regardless of rule order in the spec.
	for i := 1; i < len(p.powerLoss); i++ {
		for j := i; j > 0 && p.powerLoss[j] < p.powerLoss[j-1]; j-- {
			p.powerLoss[j], p.powerLoss[j-1] = p.powerLoss[j-1], p.powerLoss[j]
		}
	}
	return p, nil
}

// Injector returns the per-device injector, or nil when the plan is nil or
// dev is out of range (a nil *Injector is safe to consult).
func (p *Plan) Injector(dev int) *Injector {
	if p == nil || dev < 0 || dev >= len(p.injs) {
		return nil
	}
	return p.injs[dev]
}

// PowerLossTimes returns the platform-wide power-cut schedule, ascending.
func (p *Plan) PowerLossTimes() []sim.Time {
	if p == nil {
		return nil
	}
	return p.powerLoss
}

// Decision is the injector's verdict on one command delivery. Err, when
// non-nil, replaces the device's execution of the command; Delay postpones
// delivery (and the injector is consulted again at the delayed time only
// for error decisions, not for further delay, so delays do not compound).
type Decision struct {
	Err   error
	Delay sim.Time
}

// Injector holds one device's compiled rules and failure state. All
// methods are nil-receiver safe so uninjected queues pay only a nil check.
type Injector struct {
	dev      int
	rules    []*compiledRule
	dead     bool
	ops      uint64
	injected uint64

	tr    *obs.Trace
	trDev int
}

// SetTracer attaches an observability trace; dev labels this injector's
// device in EvFault records and the faults probe.
func (in *Injector) SetTracer(tr *obs.Trace, dev int) {
	if in != nil {
		in.tr = tr
		in.trDev = dev
	}
}

// Dead reports whether a DeviceDeath rule has triggered.
func (in *Injector) Dead() bool { return in != nil && in.dead }

// Injected reports how many faults this injector has delivered.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	return in.injected
}

func (in *Injector) note(now sim.Time, k Kind, op Op, zone int, lba int64) {
	in.injected++
	if in.tr != nil {
		in.tr.Event(int64(now), obs.LayerNVMe, obs.EvFault, in.trDev, zone,
			int64(obsOp(op)), lba, uint8(k))
		in.tr.Counter(int64(now), obs.ProbeKey(obs.ProbeFaults, in.trDev, 0),
			int64(in.injected))
	}
}

// OnDeliver is consulted by the driver queue when a command reaches the
// device. op must be a concrete class (Read, Write, or Reset); zone and
// lba locate the command (lba may be -1 for appends and resets).
//
// A dead device answers everything with ErrInjectedDead. Otherwise rules
// apply in spec order; the first error wins and latency delays accumulate.
func (in *Injector) OnDeliver(now sim.Time, op Op, zone int, lba int64, nblocks int) Decision {
	if in == nil {
		return Decision{}
	}
	in.ops++
	if in.dead {
		return Decision{Err: ErrInjectedDead}
	}
	var d Decision
	for _, cr := range in.rules {
		r := &cr.r
		switch r.Kind {
		case DeviceDeath:
			if (r.At > 0 && now >= r.At) || (r.AfterOps > 0 && in.ops > r.AfterOps) {
				in.dead = true
				in.note(now, DeviceDeath, op, zone, lba)
				return Decision{Err: ErrInjectedDead}
			}
		case Unreadable:
			if op != Read || zone != r.Zone || !r.active(now) || lba < 0 {
				continue
			}
			if lba < r.Lba+int64(r.Blocks) && lba+int64(nblocks) > r.Lba {
				in.note(now, Unreadable, op, zone, lba)
				if d.Err == nil {
					d.Err = ErrInjectedUnreadable
				}
			}
		case Transient:
			if !r.Op.matches(op) || !r.active(now) {
				continue
			}
			if r.MaxCount > 0 && cr.count >= r.MaxCount {
				continue
			}
			// One draw per matching command keeps the stream aligned
			// with the (deterministic) command sequence.
			if cr.rng.Uint64()>>11 < cr.thresh {
				cr.count++
				in.note(now, Transient, op, zone, lba)
				if d.Err == nil {
					d.Err = ErrInjectedTransient
				}
			}
		case Latency:
			if !r.Op.matches(op) || !r.active(now) {
				continue
			}
			in.note(now, Latency, op, zone, lba)
			d.Delay += r.Delay
		}
	}
	return d
}

// Convenience constructors for common rules.

// KillDevice returns a rule that fails member dev permanently at time at.
func KillDevice(dev int, at sim.Time) Rule {
	return Rule{Kind: DeviceDeath, Dev: dev, At: at}
}

// PowerCut returns a rule that cuts platform power at time at.
func PowerCut(at sim.Time) Rule {
	return Rule{Kind: PowerLoss, At: at}
}

// TransientErrors returns a rule injecting retryable failures into member
// dev's op commands at the given probability (dev -1 = every member).
func TransientErrors(dev int, op Op, rate float64) Rule {
	return Rule{Kind: Transient, Dev: dev, Op: op, Rate: rate}
}

// BadBlocks returns a rule that makes blocks [lba, lba+blocks) of zone z
// on member dev permanently unreadable.
func BadBlocks(dev, zone int, lba int64, blocks int) Rule {
	return Rule{Kind: Unreadable, Dev: dev, Zone: zone, Lba: lba, Blocks: blocks}
}
