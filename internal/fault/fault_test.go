package fault

import (
	"errors"
	"testing"

	"biza/internal/sim"
	"biza/internal/storerr"
)

func mustCompile(t *testing.T, spec *Spec, seed uint64, members int) *Plan {
	t.Helper()
	p, err := Compile(spec, seed, members)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
	}{
		{"rate out of range", Rule{Kind: Transient, Dev: 0, Rate: 1.5}},
		{"negative rate", Rule{Kind: Transient, Dev: 0, Rate: -0.1}},
		{"latency without delay", Rule{Kind: Latency, Dev: 0}},
		{"unreadable without blocks", Rule{Kind: Unreadable, Dev: 0, Zone: 1, Lba: 0}},
		{"unreadable negative lba", Rule{Kind: Unreadable, Dev: 0, Zone: 1, Lba: -1, Blocks: 4}},
		{"death without trigger", Rule{Kind: DeviceDeath, Dev: 0}},
		{"power loss without time", Rule{Kind: PowerLoss}},
		{"dev out of range", Rule{Kind: DeviceDeath, Dev: 4, At: 1}},
		{"dev below -1", Rule{Kind: DeviceDeath, Dev: -2, At: 1}},
		{"unknown kind", Rule{Kind: Kind(200), Dev: 0}},
	}
	for _, tc := range cases {
		if _, err := Compile(&Spec{Rules: []Rule{tc.rule}}, 1, 4); err == nil {
			t.Errorf("%s: compile accepted invalid rule", tc.name)
		}
	}
	if _, err := Compile(nil, 1, 0); err == nil {
		t.Error("accepted zero members")
	}
	// A nil spec compiles to a benign plan with per-member injectors.
	p := mustCompile(t, nil, 1, 4)
	if p.Injector(3) == nil || p.Injector(4) != nil || p.Injector(-1) != nil {
		t.Error("nil-spec plan injector bounds wrong")
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if d := in.OnDeliver(0, Write, 0, 0, 1); d.Err != nil || d.Delay != 0 {
		t.Error("nil injector injected")
	}
	in.SetTracer(nil, 0)
	if in.Dead() || in.Injected() != 0 {
		t.Error("nil injector reports state")
	}
	var p *Plan
	if p.Injector(0) != nil || p.PowerLossTimes() != nil {
		t.Error("nil plan not inert")
	}
}

func TestTransientRateAndDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		p := mustCompile(t, &Spec{Rules: []Rule{TransientErrors(0, Write, 0.3)}}, seed, 2)
		in := p.Injector(0)
		out := make([]bool, 0, 5000)
		for i := 0; i < 5000; i++ {
			d := in.OnDeliver(sim.Time(i), Write, 0, int64(i), 1)
			out = append(out, d.Err != nil)
		}
		return out
	}
	a, b := run(7), run(7)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits < 1200 || hits > 1800 {
		t.Fatalf("rate 0.3 injected %d/5000", hits)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestTransientScopeAndBudget(t *testing.T) {
	spec := &Spec{Rules: []Rule{{
		Kind: Transient, Dev: 0, Op: Read, Rate: 1, MaxCount: 2,
		From: 100, Until: 200,
	}}}
	p := mustCompile(t, spec, 1, 1)
	in := p.Injector(0)
	if d := in.OnDeliver(150, Write, 0, 0, 1); d.Err != nil {
		t.Fatal("op scope ignored")
	}
	if d := in.OnDeliver(50, Read, 0, 0, 1); d.Err != nil {
		t.Fatal("fired before From")
	}
	if d := in.OnDeliver(200, Read, 0, 0, 1); d.Err != nil {
		t.Fatal("fired at Until")
	}
	for i := 0; i < 2; i++ {
		d := in.OnDeliver(150, Read, 0, 0, 1)
		if !errors.Is(d.Err, storerr.ErrTransient) {
			t.Fatalf("hit %d: err = %v", i, d.Err)
		}
	}
	if d := in.OnDeliver(150, Read, 0, 0, 1); d.Err != nil {
		t.Fatal("MaxCount not enforced")
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d", in.Injected())
	}
}

func TestDeviceDeathAt(t *testing.T) {
	p := mustCompile(t, &Spec{Rules: []Rule{KillDevice(1, 1000)}}, 1, 3)
	in := p.Injector(1)
	if d := in.OnDeliver(999, Write, 0, 0, 1); d.Err != nil {
		t.Fatal("died early")
	}
	d := in.OnDeliver(1000, Read, 0, 0, 1)
	if !errors.Is(d.Err, storerr.ErrDeviceDead) {
		t.Fatalf("at trigger: %v", d.Err)
	}
	if !in.Dead() {
		t.Fatal("Dead() false after trigger")
	}
	// Death is permanent and answers every command class.
	for _, op := range []Op{Read, Write, Reset} {
		if d := in.OnDeliver(2000, op, 5, 9, 1); !errors.Is(d.Err, storerr.ErrDeviceDead) {
			t.Fatalf("%v after death: %v", op, d.Err)
		}
	}
	// Other members unaffected.
	if d := p.Injector(0).OnDeliver(5000, Write, 0, 0, 1); d.Err != nil {
		t.Fatal("death leaked to another member")
	}
}

func TestDeviceDeathAfterOps(t *testing.T) {
	p := mustCompile(t, &Spec{Rules: []Rule{{Kind: DeviceDeath, Dev: 0, AfterOps: 5}}}, 1, 1)
	in := p.Injector(0)
	for i := 0; i < 5; i++ {
		if d := in.OnDeliver(sim.Time(i), Write, 0, 0, 1); d.Err != nil {
			t.Fatalf("op %d died early", i)
		}
	}
	if d := in.OnDeliver(5, Write, 0, 0, 1); !errors.Is(d.Err, storerr.ErrDeviceDead) {
		t.Fatalf("op 6: %v", d.Err)
	}
}

func TestUnreadableRange(t *testing.T) {
	p := mustCompile(t, &Spec{Rules: []Rule{BadBlocks(0, 3, 10, 4)}}, 1, 1)
	in := p.Injector(0)
	cases := []struct {
		zone    int
		lba     int64
		nblocks int
		op      Op
		hit     bool
	}{
		{3, 10, 1, Read, true},
		{3, 13, 1, Read, true},
		{3, 8, 4, Read, true},  // overlaps head
		{3, 12, 8, Read, true}, // overlaps tail
		{3, 14, 1, Read, false},
		{3, 6, 4, Read, false},
		{2, 10, 1, Read, false}, // wrong zone
		{3, 10, 1, Write, false},
		{3, -1, 2, Write, false}, // append: lba unknown, never a read
	}
	for i, tc := range cases {
		d := in.OnDeliver(sim.Time(i), tc.op, tc.zone, tc.lba, tc.nblocks)
		if tc.hit != (d.Err != nil) {
			t.Errorf("case %d: err=%v want hit=%v", i, d.Err, tc.hit)
		}
		if tc.hit && !errors.Is(d.Err, storerr.ErrUnreadable) {
			t.Errorf("case %d: wrong sentinel %v", i, d.Err)
		}
	}
}

func TestLatencyAccumulates(t *testing.T) {
	spec := &Spec{Rules: []Rule{
		{Kind: Latency, Dev: 0, Op: Write, Delay: 10 * sim.Microsecond},
		{Kind: Latency, Dev: 0, Delay: 5 * sim.Microsecond},
	}}
	p := mustCompile(t, spec, 1, 1)
	in := p.Injector(0)
	if d := in.OnDeliver(0, Write, 0, 0, 1); d.Delay != 15*sim.Microsecond {
		t.Fatalf("write delay = %v", d.Delay)
	}
	if d := in.OnDeliver(0, Read, 0, 0, 1); d.Delay != 5*sim.Microsecond {
		t.Fatalf("read delay = %v", d.Delay)
	}
}

func TestBroadcastRuleIndependentStreams(t *testing.T) {
	p := mustCompile(t, &Spec{Rules: []Rule{TransientErrors(-1, AnyOp, 0.5)}}, 3, 2)
	a, b := p.Injector(0), p.Injector(1)
	same := true
	for i := 0; i < 200; i++ {
		da := a.OnDeliver(sim.Time(i), Write, 0, 0, 1)
		db := b.OnDeliver(sim.Time(i), Write, 0, 0, 1)
		if (da.Err == nil) != (db.Err == nil) {
			same = false
		}
	}
	if same {
		t.Fatal("broadcast rule shares one random stream across members")
	}
}

func TestPowerLossScheduleSorted(t *testing.T) {
	spec := &Spec{Rules: []Rule{PowerCut(300), PowerCut(100), PowerCut(200)}}
	p := mustCompile(t, spec, 1, 4)
	times := p.PowerLossTimes()
	if len(times) != 3 || times[0] != 100 || times[1] != 200 || times[2] != 300 {
		t.Fatalf("schedule = %v", times)
	}
	// Power-loss rules are platform-wide: no per-device rules compiled.
	for d := 0; d < 4; d++ {
		if got := p.Injector(d).OnDeliver(500, Write, 0, 0, 1); got.Err != nil {
			t.Fatal("power-loss rule leaked into an injector")
		}
	}
}

func TestInjectedErrorsWrapSentinels(t *testing.T) {
	if !errors.Is(ErrInjectedTransient, storerr.ErrTransient) ||
		!errors.Is(ErrInjectedDead, storerr.ErrDeviceDead) ||
		!errors.Is(ErrInjectedUnreadable, storerr.ErrUnreadable) {
		t.Fatal("injected errors do not wrap the storerr sentinels")
	}
}
