package buf

import (
	"strings"
	"testing"
)

func TestGetReleaseRecycles(t *testing.T) {
	p := NewPool()
	b := p.Get(4096, 26)
	if got := len(b.Bytes()); got != 4096 {
		t.Fatalf("Bytes len = %d, want 4096", got)
	}
	if got := len(b.OOB()); got != 26 {
		t.Fatalf("OOB len = %d, want 26", got)
	}
	if p.Live() != 1 {
		t.Fatalf("Live = %d, want 1", p.Live())
	}
	first := &b.Bytes()[0]
	b.Release()
	if p.Live() != 0 {
		t.Fatalf("Live after release = %d, want 0", p.Live())
	}
	b2 := p.Get(4096, 26)
	if &b2.Bytes()[0] != first {
		t.Fatalf("second Get did not reuse the released slab")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Hits=1 Misses=1", st)
	}
	b2.Release()
}

func TestRefcountHoldsSlab(t *testing.T) {
	p := NewPool()
	b := p.Get(64, 0)
	b.Retain()
	b.Release()
	if p.Live() != 1 {
		t.Fatalf("Live = %d, want 1 while a reference is held", p.Live())
	}
	copy(b.Bytes(), "still mine")
	b.Release()
	if p.Live() != 0 {
		t.Fatalf("Live = %d, want 0", p.Live())
	}
}

func TestGetZeroAndCopy(t *testing.T) {
	p := NewPool()
	b := p.Get(128, 0)
	for i := range b.Bytes() {
		b.Bytes()[i] = 0xFF
	}
	b.Release()
	z := p.GetZero(128, 8)
	for i, v := range z.Bytes() {
		if v != 0 {
			t.Fatalf("GetZero byte %d = %#x, want 0", i, v)
		}
	}
	z.Release()

	src := []byte("payload goes here")
	c := p.Copy(src, 0)
	if string(c.Bytes()) != string(src) {
		t.Fatalf("Copy = %q, want %q", c.Bytes(), src)
	}
	if st := p.Stats(); st.Copies != 1 || st.CopiedBytes != int64(len(src)) {
		t.Fatalf("copy stats = %+v", st)
	}
	c.Release()
}

func TestAppendTrimPrepend(t *testing.T) {
	p := NewPool()
	b := p.GetHead(16, 32, 8)
	if b.Headroom() != 16 {
		t.Fatalf("Headroom = %d, want 16", b.Headroom())
	}
	tail := b.Append(8)
	if len(tail) != 8 || b.Len() != 40 {
		t.Fatalf("Append: tail %d, len %d", len(tail), b.Len())
	}
	head := b.Prepend(4)
	if len(head) != 4 || b.Len() != 44 || b.Headroom() != 12 {
		t.Fatalf("Prepend: head %d len %d headroom %d", len(head), b.Len(), b.Headroom())
	}
	b.TrimFront(4)
	b.TrimBack(8)
	if b.Len() != 32 {
		t.Fatalf("after trims len = %d, want 32", b.Len())
	}
	if b.Tailroom() <= 0 {
		t.Fatalf("Tailroom = %d, want > 0", b.Tailroom())
	}
	b.Release()
}

func TestOversizeFallsBackToHeap(t *testing.T) {
	p := NewPool()
	b := p.Get(2<<20, 0)
	if b.class != -1 {
		t.Fatalf("class = %d, want -1 (oversize)", b.class)
	}
	b.Release()
	if st := p.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
	// The record (not the slab) is recycled.
	b2 := p.Get(64, 0)
	if b2 != b {
		t.Fatalf("oversize release did not recycle the Buf record")
	}
	b2.Release()
}

func TestAllocFreeRaw(t *testing.T) {
	p := NewPool()
	s := p.Alloc(26)
	if len(s) != 26 || cap(s) != 64 {
		t.Fatalf("Alloc(26): len %d cap %d, want 26/64", len(s), cap(s))
	}
	if p.RawLive() != 1 {
		t.Fatalf("RawLive = %d, want 1", p.RawLive())
	}
	p.Free(s)
	s2 := p.Alloc(40)
	if &s2[:cap(s2)][0] != &s[:cap(s)][0] {
		t.Fatalf("Alloc after Free did not reuse the slab")
	}
	p.Free(s2)
	if p.RawLive() != 0 {
		t.Fatalf("RawLive = %d, want 0", p.RawLive())
	}
	z := p.AllocZero(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("AllocZero byte %d = %#x", i, v)
		}
	}
	p.Free(z)
	p.Free(nil) // no-op
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	f()
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get(64, 0)
	b.Release()
	mustPanic(t, "double free", b.Release)
}

func TestRetainAfterReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get(64, 0)
	b.Release()
	mustPanic(t, "use-after-release", b.Retain)
}

func TestPoisonDetectsUseAfterRelease(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)
	b := p.Get(64, 0)
	stale := b.Bytes()
	b.Release()
	stale[7] = 0x42 // write through a released buffer
	mustPanic(t, "use-after-release", func() { p.Get(64, 0) })
}

func TestPoisonCleanReuseDoesNotPanic(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)
	b := p.Get(64, 8)
	copy(b.Bytes(), "scribble")
	copy(b.OOB(), "oob data")
	b.Release()
	b2 := p.Get(64, 8) // must not panic: slab was poisoned after release
	b2.Release()
}

func TestNilHelpers(t *testing.T) {
	Retain(nil)
	Release(nil)
	p := NewPool()
	b := p.Get(64, 0)
	Retain(b)
	Release(b)
	Release(b)
	if p.Live() != 0 {
		t.Fatalf("Live = %d, want 0", p.Live())
	}
}

// TestPoolCycleAllocFree gates the steady-state contract: once warm, a
// Get/Retain/Release cycle performs zero heap allocations. (Named so the
// CI allocation gate `go test -run AllocFree ./...` picks it up.)
func TestPoolCycleAllocFree(t *testing.T) {
	p := NewPool()
	warm := p.Get(4096, 26)
	o := p.Alloc(26)
	p.Free(o)
	warm.Release()
	n := testing.AllocsPerRun(200, func() {
		b := p.Get(4096, 26)
		b.Retain()
		b.Release()
		s := p.Alloc(26)
		p.Free(s)
		b.Release()
	})
	if n != 0 {
		t.Fatalf("steady-state cycle allocates %.1f objects/run, want 0", n)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1},
		{4096, 6}, {4097, 7}, {1 << 20, numClasses - 1}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}
