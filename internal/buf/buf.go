// Package buf provides the unified, refcounted, size-class-segregated
// buffer pool shared by the whole data path (workload → core → erasure →
// nvme → zns). It replaces the per-layer, per-goroutine free lists from
// the earlier performance pass with one mbuf-style object that travels
// unchanged across layer boundaries: layers take references instead of
// copying payloads, and the flash model's defensive copy becomes a
// refcount hold.
//
// Ownership protocol (move semantics): a payload is a (view []byte,
// own *Buf) pair. Passing `own` to a callee transfers exactly one
// reference; the callee must Release it on every path (success, error,
// drop) or Retain before fanning out. Callers that keep using the buffer
// after handing it off must Retain first. A nil *Buf is always legal and
// means "caller-owned bytes, copy if you must keep them".
//
// Layout: each Buf fronts one pooled slab laid out as
//
//	[ headroom | data ... spare | OOB ]
//
// with the out-of-band area pinned to the slab tail so Append can grow
// data into the spare region and Prepend can consume headroom — the
// append/trim semantics used by read-modify-write.
//
// Pools are single-goroutine by design (one per simulation shard /
// platform), so reference counts are plain integers: no atomics on the
// hot path.
package buf

import (
	"fmt"
	"math/bits"
)

const (
	minClassShift = 6  // smallest slab: 64 B (OOB records, metadata)
	maxClassShift = 20 // largest slab: 1 MiB (coalesced batch payloads)
	numClasses    = maxClassShift - minClassShift + 1

	poisonByte = 0xDB
)

// Stats is the pool's cumulative accounting. All counters are
// deterministic: pools are driven only from simulation goroutines.
type Stats struct {
	Gets        int64 // buffers handed out (Get/GetZero/Copy/Alloc)
	Hits        int64 // ... of which were served from a free list
	Misses      int64 // ... of which heap-allocated (cold pool or oversize)
	Copies      int64 // payload copies noted by layers via NoteCopy
	CopiedBytes int64 // bytes covered by those copies
}

// Pool is a size-class-segregated buffer pool. The zero value is NOT
// ready; use NewPool. Not safe for concurrent use — one pool per
// simulation shard.
type Pool struct {
	free    [numClasses][]*Buf
	rawFree [numClasses][][]byte
	recFree []*Buf // spare Buf records (slab detached)
	stats   Stats
	live    int64 // outstanding refcounted buffers
	rawLive int64 // outstanding raw slabs
	poison  bool
}

// NewPool returns an empty pool. Slabs are allocated lazily on first
// miss per class and recycled forever after.
func NewPool() *Pool { return &Pool{} }

// SetPoison enables pool poisoning: released buffers are filled with
// 0xDB and verified intact on reuse, so a write through a stale
// reference panics with a diagnostic at the next Get instead of silently
// corrupting an unrelated I/O. Test hook — poisoning touches every byte
// of every recycled slab, so it stays off in benchmarks.
func (p *Pool) SetPoison(on bool) { p.poison = on }

// Stats returns a snapshot of the pool's cumulative counters.
func (p *Pool) Stats() Stats { return p.stats }

// Live reports the number of refcounted buffers currently held by the
// data path (refs > 0). Zero after a drained run means no leaks.
func (p *Pool) Live() int64 { return p.live }

// RawLive reports outstanding raw slabs from Alloc not yet Freed.
func (p *Pool) RawLive() int64 { return p.rawLive }

// NoteCopy records a payload copy of n bytes performed by a layer. The
// zero-copy gates assert this stays flat across steady-state writes.
func (p *Pool) NoteCopy(n int) {
	p.stats.Copies++
	p.stats.CopiedBytes += int64(n)
}

// classFor returns the smallest class whose slab holds total bytes, or
// -1 when total exceeds the largest class (oversize: plain heap alloc).
// Branch-free on the hot path: class = ceil(log2(total)) - minClassShift.
func classFor(total int) int {
	if total <= 1<<minClassShift {
		return 0
	}
	if total > 1<<maxClassShift {
		return -1
	}
	return bits.Len(uint(total-1)) - minClassShift
}

// Buf is one refcounted buffer. Access the payload with Bytes and the
// out-of-band area with OOB; grow or shrink the payload with
// Append/Prepend/TrimFront/TrimBack. Created with one reference.
type Buf struct {
	pool   *Pool
	mem    []byte // whole slab
	off    int    // data start
	n      int    // data length
	oobOff int    // OOB area start (pinned to slab tail)
	oobN   int
	refs   int32
	class  int16 // -1: oversize, slab not recycled
}

// Get returns a buffer with n data bytes and an oob-byte out-of-band
// area, with one reference. Contents are unspecified (pooled memory is
// recycled, not rezeroed); use GetZero when initial zeros matter.
func (p *Pool) Get(n, oob int) *Buf { return p.get(0, n, oob) }

// GetHead is Get with head bytes of headroom before the data area, for
// callers that will Prepend.
func (p *Pool) GetHead(head, n, oob int) *Buf { return p.get(head, n, oob) }

// GetZero is Get with the data and OOB areas zeroed.
func (p *Pool) GetZero(n, oob int) *Buf {
	b := p.get(0, n, oob)
	clear(b.mem[b.off : b.off+b.n])
	if oob > 0 {
		clear(b.mem[b.oobOff:])
	}
	return b
}

// Copy returns a new buffer holding a copy of data, counting the copy
// in the pool's copy stats.
func (p *Pool) Copy(data []byte, oob int) *Buf {
	b := p.get(0, len(data), oob)
	copy(b.mem[b.off:], data)
	p.NoteCopy(len(data))
	return b
}

func (p *Pool) get(head, n, oob int) *Buf {
	if head < 0 || n < 0 || oob < 0 {
		panic(fmt.Sprintf("buf: Get(%d, %d, %d): negative size", head, n, oob))
	}
	total := head + n + oob
	class := classFor(total)
	p.stats.Gets++
	var b *Buf
	if class >= 0 {
		if l := p.free[class]; len(l) > 0 {
			b = l[len(l)-1]
			l[len(l)-1] = nil
			p.free[class] = l[:len(l)-1]
			p.stats.Hits++
			if p.poison {
				b.checkPoison()
			}
		}
	}
	if b == nil {
		p.stats.Misses++
		size := total
		if class >= 0 {
			size = 1 << (minClassShift + class)
		}
		b = p.newRecord()
		b.mem = make([]byte, size)
	}
	b.pool = p
	b.off = head
	b.n = n
	b.oobOff = len(b.mem) - oob
	b.oobN = oob
	b.refs = 1
	b.class = int16(class)
	p.live++
	return b
}

func (p *Pool) newRecord() *Buf {
	if l := p.recFree; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.recFree = l[:len(l)-1]
		return b
	}
	return &Buf{}
}

// Alloc returns a raw pooled []byte of exactly n bytes (contents
// unspecified), for scratch that does not need refcounts: flash-store
// block copies, read-gather buffers, OOB records. Return it with Free.
func (p *Pool) Alloc(n int) []byte {
	p.stats.Gets++
	class := classFor(n)
	if class >= 0 {
		if l := p.rawFree[class]; len(l) > 0 {
			s := l[len(l)-1]
			l[len(l)-1] = nil
			p.rawFree[class] = l[:len(l)-1]
			p.stats.Hits++
			p.rawLive++
			return s[:n]
		}
	}
	p.stats.Misses++
	p.rawLive++
	if class >= 0 {
		return make([]byte, 1<<(minClassShift+class))[:n]
	}
	return make([]byte, n)
}

// AllocZero is Alloc with the returned bytes zeroed.
func (p *Pool) AllocZero(n int) []byte {
	s := p.Alloc(n)
	clear(s)
	return s
}

// Free recycles a slab obtained from Alloc. Foreign slices are accepted
// and recycled into the class fitting their capacity, so callers may mix
// pool and heap memory.
func (p *Pool) Free(s []byte) {
	if s == nil {
		return
	}
	p.rawLive--
	// Recycle by capacity: an Alloc(26) slab has cap 64 and must go back
	// to the class it can serve. Only exact class-size capacities
	// re-enter the pool; odd foreign slices are left to the GC.
	c := cap(s)
	if c >= 1<<minClassShift && c&(c-1) == 0 {
		if class := classFor(c); class >= 0 && 1<<(minClassShift+class) == c {
			p.rawFree[class] = append(p.rawFree[class], s[:c])
		}
	}
}

// Donate recycles a slab the pool did not hand out — typically a heap
// slice returned by a device read — without touching the outstanding-slab
// accounting that Free maintains for Alloc'd memory. Odd capacities are
// left to the GC, exactly as in Free.
func (p *Pool) Donate(s []byte) {
	if s == nil {
		return
	}
	c := cap(s)
	if c >= 1<<minClassShift && c&(c-1) == 0 {
		if class := classFor(c); class >= 0 && 1<<(minClassShift+class) == c {
			p.rawFree[class] = append(p.rawFree[class], s[:c])
		}
	}
}

// Retain adds a reference. Panics if the buffer has already been fully
// released — holding a stale pointer is a bug, not a recoverable state.
func (b *Buf) Retain() {
	if b.refs <= 0 {
		panic(fmt.Sprintf("buf: Retain on released buffer (refs=%d, len=%d): use-after-release", b.refs, b.n))
	}
	b.refs++
}

// Release drops one reference; the last release recycles the slab.
// Panics on double release.
func (b *Buf) Release() {
	b.refs--
	if b.refs > 0 {
		return
	}
	if b.refs < 0 {
		panic(fmt.Sprintf("buf: Release on released buffer (refs=%d, len=%d): double free", b.refs, b.n))
	}
	p := b.pool
	p.live--
	if b.class < 0 {
		// Oversize: slab goes to the GC, record is recycled.
		b.mem = nil
		p.recFree = append(p.recFree, b)
		return
	}
	if p.poison {
		for i := range b.mem {
			b.mem[i] = poisonByte
		}
	}
	p.free[b.class] = append(p.free[b.class], b)
}

func (b *Buf) checkPoison() {
	for i, v := range b.mem {
		if v != poisonByte {
			panic(fmt.Sprintf("buf: poisoned slab byte %d is 0x%02x, want 0x%02x: write through a released buffer (use-after-release)", i, v, poisonByte))
		}
	}
}

// Refs reports the current reference count (test/diagnostic use).
func (b *Buf) Refs() int { return int(b.refs) }

// Len reports the data length.
func (b *Buf) Len() int { return b.n }

// Bytes returns the data area. The slice stays valid until the final
// Release.
func (b *Buf) Bytes() []byte { return b.mem[b.off : b.off+b.n] }

// OOB returns the out-of-band area at the slab tail.
func (b *Buf) OOB() []byte { return b.mem[b.oobOff : b.oobOff+b.oobN] }

// Headroom reports the bytes available for Prepend.
func (b *Buf) Headroom() int { return b.off }

// Tailroom reports the bytes available for Append.
func (b *Buf) Tailroom() int { return b.oobOff - (b.off + b.n) }

// Append grows the data area by n bytes into the spare region and
// returns the newly exposed tail (unspecified contents).
func (b *Buf) Append(n int) []byte {
	if b.off+b.n+n > b.oobOff {
		panic(fmt.Sprintf("buf: Append(%d) overflows tailroom %d", n, b.Tailroom()))
	}
	b.n += n
	return b.mem[b.off+b.n-n : b.off+b.n]
}

// Prepend grows the data area by n bytes into the headroom and returns
// the newly exposed head (unspecified contents).
func (b *Buf) Prepend(n int) []byte {
	if n > b.off {
		panic(fmt.Sprintf("buf: Prepend(%d) overflows headroom %d", n, b.off))
	}
	b.off -= n
	b.n += n
	return b.mem[b.off : b.off+n]
}

// TrimFront drops n bytes from the head of the data area.
func (b *Buf) TrimFront(n int) {
	if n > b.n {
		panic(fmt.Sprintf("buf: TrimFront(%d) beyond length %d", n, b.n))
	}
	b.off += n
	b.n -= n
}

// TrimBack drops n bytes from the tail of the data area.
func (b *Buf) TrimBack(n int) {
	if n > b.n {
		panic(fmt.Sprintf("buf: TrimBack(%d) beyond length %d", n, b.n))
	}
	b.n -= n
}

// Retain on a nil receiver is a no-op, so code holding an optional
// ownership pointer can fan out without nil checks.
func Retain(b *Buf) {
	if b != nil {
		b.Retain()
	}
}

// Release on a nil pointer is a no-op; see Retain.
func Release(b *Buf) {
	if b != nil {
		b.Release()
	}
}
