// Package lsfs implements a log-structured filesystem in the style of F2FS
// (§5.3's application substrate): file data appends sequentially into
// segments of a main area, while a small metadata region at the front of
// the device absorbs random in-place updates (the "two-zone-sized
// random-write space" the paper notes F2FS requires). Segment cleaning
// migrates live blocks out of sparse segments and trims the freed space.
//
// The filesystem exercises exactly the block-level pattern the paper's
// F2FS evaluation produces: mostly-sequential data writes plus a hot
// random metadata stream — which is what makes the underlying AFA's
// ZRWA/placement policies matter.
package lsfs

import (
	"errors"
	"fmt"
	"sort"

	"biza/internal/blockdev"
	"biza/internal/sim"
)

// Config tunes the filesystem.
type Config struct {
	// MetaBlocks is the random-write metadata region size in blocks.
	MetaBlocks int64
	// SegmentBlocks is the cleaning/allocation unit of the main area.
	SegmentBlocks int64
	// MetaPerDataWrites issues one metadata block update per N data block
	// writes (node/NAT/SIT traffic ratio).
	MetaPerDataWrites int
	// CleanThresholdFree triggers segment cleaning below this many free
	// segments.
	CleanThresholdFree int
}

// DefaultConfig sizes the filesystem for the device.
func DefaultConfig() Config {
	return Config{
		MetaBlocks:         2048, // 8 MiB metadata region
		SegmentBlocks:      512,  // 2 MiB segments
		MetaPerDataWrites:  8,
		CleanThresholdFree: 4,
	}
}

// FS is the filesystem instance. Single simulation goroutine.
type FS struct {
	cfg Config
	dev blockdev.Device
	eng *sim.Engine

	segments  int64
	mainBase  int64 // first block of the main area
	curSeg    int64
	curOff    int64
	freeSegs  []int64
	liveCount []int64   // live blocks per segment
	owner     [][]int64 // segment -> per-block (fileID<<32 | fileBlock), -1 free
	metaRR    *sim.RNG

	files  map[int]*file
	nextID int

	cleaning bool

	// Accounting.
	dataWrites uint64
	metaWrites uint64
	moved      uint64
	cleanRuns  uint64
}

type file struct {
	id     int
	name   string
	blocks []int64 // file block -> device block, -1 hole
}

// Errors.
var (
	ErrNotFound = errors.New("lsfs: file not found")
	ErrExists   = errors.New("lsfs: file exists")
	ErrNoSpace  = errors.New("lsfs: filesystem full")
)

// New formats a filesystem onto dev.
func New(eng *sim.Engine, dev blockdev.Device, cfg Config) (*FS, error) {
	if cfg.MetaBlocks < 1 || cfg.SegmentBlocks < 1 {
		return nil, fmt.Errorf("lsfs: bad config %+v", cfg)
	}
	mainBlocks := dev.Blocks() - cfg.MetaBlocks
	if mainBlocks < cfg.SegmentBlocks*4 {
		return nil, fmt.Errorf("lsfs: device too small (%d blocks)", dev.Blocks())
	}
	fs := &FS{
		cfg:      cfg,
		dev:      dev,
		eng:      eng,
		mainBase: cfg.MetaBlocks,
		segments: mainBlocks / cfg.SegmentBlocks,
		files:    make(map[int]*file),
		metaRR:   sim.NewRNG(0x1f5),
	}
	fs.liveCount = make([]int64, fs.segments)
	fs.owner = make([][]int64, fs.segments)
	for s := int64(0); s < fs.segments; s++ {
		fs.freeSegs = append(fs.freeSegs, s)
		fs.owner[s] = make([]int64, cfg.SegmentBlocks)
		for i := range fs.owner[s] {
			fs.owner[s][i] = -1
		}
	}
	fs.curSeg = fs.takeFreeSeg()
	return fs, nil
}

// BlockSize reports the device block size.
func (fs *FS) BlockSize() int { return fs.dev.BlockSize() }

// Stats reports filesystem-level write accounting.
func (fs *FS) Stats() (dataWrites, metaWrites, movedBlocks, cleanRuns uint64) {
	return fs.dataWrites, fs.metaWrites, fs.moved, fs.cleanRuns
}

func (fs *FS) takeFreeSeg() int64 {
	if len(fs.freeSegs) == 0 {
		return -1
	}
	s := fs.freeSegs[0]
	fs.freeSegs = fs.freeSegs[1:]
	fs.curOff = 0
	return s
}

// Create makes an empty file and returns its id.
func (fs *FS) Create(name string) (int, error) {
	for _, f := range fs.files {
		if f.name == name {
			return 0, ErrExists
		}
	}
	fs.nextID++
	id := fs.nextID
	fs.files[id] = &file{id: id, name: name}
	return id, nil
}

// Lookup resolves a name to a file id.
func (fs *FS) Lookup(name string) (int, error) {
	for id, f := range fs.files {
		if f.name == name {
			return id, nil
		}
	}
	return 0, ErrNotFound
}

// SizeBlocks reports a file's length in blocks.
func (fs *FS) SizeBlocks(id int) (int64, error) {
	f, ok := fs.files[id]
	if !ok {
		return 0, ErrNotFound
	}
	return int64(len(f.blocks)), nil
}

// allocBlock assigns the next main-area block, advancing segments.
func (fs *FS) allocBlock(owner int64) (int64, error) {
	if fs.curSeg < 0 || fs.curOff >= fs.cfg.SegmentBlocks {
		fs.curSeg = fs.takeFreeSeg()
		if fs.curSeg < 0 {
			return -1, ErrNoSpace
		}
	}
	seg, off := fs.curSeg, fs.curOff
	fs.curOff++
	fs.owner[seg][off] = owner
	fs.liveCount[seg]++
	fs.maybeClean()
	return fs.mainBase + seg*fs.cfg.SegmentBlocks + off, nil
}

func (fs *FS) invalidate(devBlock int64) {
	if devBlock < fs.mainBase {
		return
	}
	rel := devBlock - fs.mainBase
	seg := rel / fs.cfg.SegmentBlocks
	off := rel % fs.cfg.SegmentBlocks
	if fs.owner[seg][off] >= 0 {
		fs.owner[seg][off] = -1
		fs.liveCount[seg]--
	}
}

// WriteFile writes nblocks of file id starting at file block fb; done
// fires when data and induced metadata are acknowledged.
func (fs *FS) WriteFile(id int, fb int64, nblocks int, done func(error)) {
	f, ok := fs.files[id]
	if !ok {
		fs.eng.After(sim.Microsecond, func() { done(ErrNotFound) })
		return
	}
	for int64(len(f.blocks)) < fb+int64(nblocks) {
		f.blocks = append(f.blocks, -1)
	}
	remaining := 0
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 && done != nil {
			done(firstErr)
		}
	}
	// Allocate a contiguous run and write it as one request (log append).
	type run struct {
		dev    int64
		blocks int
	}
	var runs []run
	for i := 0; i < nblocks; i++ {
		ownerTag := int64(id)<<32 | (fb + int64(i))
		if old := f.blocks[fb+int64(i)]; old >= 0 {
			fs.invalidate(old)
		}
		nb, err := fs.allocBlock(ownerTag)
		if err != nil {
			fs.eng.After(sim.Microsecond, func() { done(err) })
			return
		}
		f.blocks[fb+int64(i)] = nb
		if len(runs) > 0 && runs[len(runs)-1].dev+int64(runs[len(runs)-1].blocks) == nb {
			runs[len(runs)-1].blocks++
		} else {
			runs = append(runs, run{dev: nb, blocks: 1})
		}
	}
	remaining = len(runs)
	fs.dataWrites += uint64(nblocks)
	for _, r := range runs {
		fs.dev.Write(r.dev, r.blocks, nil, func(w blockdev.WriteResult) { finish(w.Err) })
	}
	// Node/NAT metadata: random in-place updates in the metadata region.
	metaCount := nblocks / fs.cfg.MetaPerDataWrites
	if metaCount < 1 {
		metaCount = 1
	}
	for i := 0; i < metaCount; i++ {
		remaining++
		mb := fs.metaRR.Int63n(fs.cfg.MetaBlocks)
		fs.metaWrites++
		fs.dev.Write(mb, 1, nil, func(w blockdev.WriteResult) { finish(w.Err) })
	}
}

// ReadFile reads nblocks of file id starting at file block fb.
func (fs *FS) ReadFile(id int, fb int64, nblocks int, done func(error)) {
	f, ok := fs.files[id]
	if !ok {
		fs.eng.After(sim.Microsecond, func() { done(ErrNotFound) })
		return
	}
	remaining := 0
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 && done != nil {
			done(firstErr)
		}
	}
	type run struct {
		dev    int64
		blocks int
	}
	var runs []run
	for i := 0; i < nblocks; i++ {
		idx := fb + int64(i)
		if idx >= int64(len(f.blocks)) || f.blocks[idx] < 0 {
			continue // hole
		}
		nb := f.blocks[idx]
		if len(runs) > 0 && runs[len(runs)-1].dev+int64(runs[len(runs)-1].blocks) == nb {
			runs[len(runs)-1].blocks++
		} else {
			runs = append(runs, run{dev: nb, blocks: 1})
		}
	}
	if len(runs) == 0 {
		fs.eng.After(sim.Microsecond, func() { done(nil) })
		return
	}
	remaining = len(runs)
	for _, r := range runs {
		fs.dev.Read(r.dev, r.blocks, func(res blockdev.ReadResult) { finish(res.Err) })
	}
}

// Delete removes a file, invalidating and trimming its blocks.
func (fs *FS) Delete(id int) error {
	f, ok := fs.files[id]
	if !ok {
		return ErrNotFound
	}
	for _, b := range f.blocks {
		if b >= 0 {
			fs.invalidate(b)
			fs.dev.Trim(b, 1)
		}
	}
	delete(fs.files, id)
	// Directory update: one metadata write.
	fs.metaWrites++
	fs.dev.Write(fs.metaRR.Int63n(fs.cfg.MetaBlocks), 1, nil, nil)
	return nil
}

// maybeClean runs segment cleaning when free segments are scarce: pick the
// segment with the fewest live blocks, migrate them, trim the segment.
func (fs *FS) maybeClean() {
	if fs.cleaning || len(fs.freeSegs) >= fs.cfg.CleanThresholdFree {
		return
	}
	fs.cleaning = true
	fs.eng.After(0, fs.cleanStep)
}

func (fs *FS) cleanStep() {
	if len(fs.freeSegs) >= fs.cfg.CleanThresholdFree*2 {
		fs.cleaning = false
		return
	}
	victim, best := int64(-1), int64(1)<<62
	for s := int64(0); s < fs.segments; s++ {
		if s == fs.curSeg {
			continue
		}
		full := fs.segFull(s)
		if !full {
			continue
		}
		if fs.liveCount[s] < best {
			victim, best = s, fs.liveCount[s]
		}
	}
	if victim < 0 {
		fs.cleaning = false
		return
	}
	fs.cleanRuns++
	// Collect live blocks, sorted by owner for sequential rewrites.
	type mig struct {
		owner int64
		off   int64
	}
	var live []mig
	for off := int64(0); off < fs.cfg.SegmentBlocks; off++ {
		if o := fs.owner[victim][off]; o >= 0 {
			live = append(live, mig{owner: o, off: off})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].owner < live[j].owner })
	finish := func() {
		base := fs.mainBase + victim*fs.cfg.SegmentBlocks
		fs.dev.Trim(base, int(fs.cfg.SegmentBlocks))
		for i := range fs.owner[victim] {
			fs.owner[victim][i] = -1
		}
		fs.liveCount[victim] = 0
		fs.freeSegs = append(fs.freeSegs, victim)
		fs.eng.After(0, fs.cleanStep)
	}
	if len(live) == 0 {
		finish()
		return
	}
	remaining := len(live)
	for _, m := range live {
		m := m
		src := fs.mainBase + victim*fs.cfg.SegmentBlocks + m.off
		fs.dev.Read(src, 1, func(blockdev.ReadResult) {
			// Re-check liveness: the block may have been overwritten.
			fid := int(m.owner >> 32)
			fb := m.owner & 0xffffffff
			f, ok := fs.files[fid]
			if !ok || fb >= int64(len(f.blocks)) || f.blocks[fb] != src {
				remaining--
				if remaining == 0 {
					finish()
				}
				return
			}
			nb, err := fs.allocBlock(m.owner)
			if err != nil {
				remaining--
				if remaining == 0 {
					finish()
				}
				return
			}
			fs.invalidate(src)
			f.blocks[fb] = nb
			fs.moved++
			fs.dev.Write(nb, 1, nil, func(blockdev.WriteResult) {
				remaining--
				if remaining == 0 {
					finish()
				}
			})
		})
	}
}

func (fs *FS) segFull(s int64) bool {
	if s == fs.curSeg {
		return false
	}
	// A segment is collectible once it has been fully allocated at least
	// once: every slot was assigned (live or since invalidated). Track via
	// allocation cursor: any segment not free and not current is full.
	for _, fr := range fs.freeSegs {
		if fr == s {
			return false
		}
	}
	return true
}

// FsckReport summarizes a consistency check.
type FsckReport struct {
	Files         int
	LiveBlocks    int64
	SegmentsInUse int64
	Errors        []string
}

// Fsck cross-checks the file block maps against the segment ownership
// tables: every live file block must be owned by exactly the segment slot
// it points at, and live counts must agree.
func (fs *FS) Fsck() FsckReport {
	rep := FsckReport{Files: len(fs.files)}
	ownedLive := make([]int64, fs.segments)
	for id, f := range fs.files {
		for fb, dev := range f.blocks {
			if dev < 0 {
				continue
			}
			rep.LiveBlocks++
			if dev < fs.mainBase {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("file %d block %d maps into metadata region", id, fb))
				continue
			}
			rel := dev - fs.mainBase
			seg := rel / fs.cfg.SegmentBlocks
			off := rel % fs.cfg.SegmentBlocks
			want := int64(id)<<32 | int64(fb)
			if fs.owner[seg][off] != want {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("file %d block %d: segment %d slot %d owner mismatch", id, fb, seg, off))
				continue
			}
			ownedLive[seg]++
		}
	}
	for s := int64(0); s < fs.segments; s++ {
		if ownedLive[s] > 0 {
			rep.SegmentsInUse++
		}
		if fs.liveCount[s] != ownedLive[s] {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("segment %d live count %d != owned %d", s, fs.liveCount[s], ownedLive[s]))
		}
	}
	return rep
}
