package lsfs

import (
	"fmt"

	"biza/internal/sim"
)

// Personality is a filebench-like workload (§5.3: randomwrite, fileserver,
// oltp, webserver).
type Personality struct {
	Name       string
	Files      int
	FileBlocks int64 // size of each file in blocks
	WriteFrac  float64
	AppendFrac float64 // fraction of writes that append (vs overwrite)
	IOBlocks   int     // request size in blocks
	MetaFrac   float64 // fraction of ops that are create/delete churn
}

// Personalities matches the four benchmarks of Fig. 13a.
var Personalities = []Personality{
	{Name: "randomwrite", Files: 4, FileBlocks: 4096, WriteFrac: 1.0, AppendFrac: 0.0, IOBlocks: 2},
	{Name: "fileserver", Files: 64, FileBlocks: 256, WriteFrac: 0.67, AppendFrac: 0.5, IOBlocks: 4, MetaFrac: 0.08},
	{Name: "oltp", Files: 16, FileBlocks: 1024, WriteFrac: 0.55, AppendFrac: 0.1, IOBlocks: 1, MetaFrac: 0.01},
	{Name: "webserver", Files: 128, FileBlocks: 128, WriteFrac: 0.048, AppendFrac: 0.9, IOBlocks: 4, MetaFrac: 0.02},
}

// PersonalityByName finds a personality, or nil.
func PersonalityByName(name string) *Personality {
	for i := range Personalities {
		if Personalities[i].Name == name {
			return &Personalities[i]
		}
	}
	return nil
}

// BenchResult reports a personality run.
type BenchResult struct {
	Ops     uint64
	Bytes   uint64
	Elapsed sim.Time
	Errors  uint64
}

// OpsPerSec reports the achieved operation rate.
func (r BenchResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Elapsed) / 1e9)
}

// Run drives the personality against fs with a closed loop of depth
// concurrent operations for the given number of ops.
func (p Personality) Run(eng *sim.Engine, fs *FS, depth, nOps int, seed uint64) (BenchResult, error) {
	rng := sim.NewRNG(seed ^ 0xf11e)
	var ids []int
	for i := 0; i < p.Files; i++ {
		id, err := fs.Create(fmt.Sprintf("%s-%d", p.Name, i))
		if err != nil {
			return BenchResult{}, err
		}
		ids = append(ids, id)
	}
	// Preallocate file contents so reads/overwrites have targets.
	prefill := 0
	for _, id := range ids {
		prefill++
		fs.WriteFile(id, 0, int(p.FileBlocks), func(error) { prefill-- })
		eng.Run()
	}
	eng.Run()

	res := BenchResult{}
	start := eng.Now()
	issued := 0
	var issue func()
	complete := func(err error) {
		if err != nil {
			res.Errors++
		} else {
			res.Ops++
		}
		issue()
	}
	nextName := 0
	issue = func() {
		if issued >= nOps {
			return
		}
		issued++
		id := ids[rng.Intn(len(ids))]
		if p.MetaFrac > 0 && rng.Float64() < p.MetaFrac {
			// Metadata churn: create + delete a scratch file.
			nextName++
			sid, err := fs.Create(fmt.Sprintf("%s-tmp-%d", p.Name, nextName))
			if err == nil {
				fs.WriteFile(sid, 0, 1, func(error) {
					fs.Delete(sid)
					complete(nil)
				})
				return
			}
			complete(err)
			return
		}
		size, _ := fs.SizeBlocks(id)
		if size < int64(p.IOBlocks) {
			size = int64(p.IOBlocks)
		}
		if rng.Float64() < p.WriteFrac {
			var fb int64
			if rng.Float64() < p.AppendFrac {
				fb = size
			} else {
				fb = rng.Int63n(size - int64(p.IOBlocks) + 1)
			}
			res.Bytes += uint64(p.IOBlocks) * uint64(fs.BlockSize())
			fs.WriteFile(id, fb, p.IOBlocks, complete)
			return
		}
		fb := rng.Int63n(size - int64(p.IOBlocks) + 1)
		res.Bytes += uint64(p.IOBlocks) * uint64(fs.BlockSize())
		fs.ReadFile(id, fb, p.IOBlocks, complete)
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.Run()
	res.Elapsed = eng.Now() - start
	return res, nil
}
