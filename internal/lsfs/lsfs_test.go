package lsfs

import (
	"testing"

	"biza/internal/ftl"
	"biza/internal/sim"
)

func newFS(t *testing.T) (*sim.Engine, *FS, *ftl.Device) {
	t.Helper()
	eng := sim.NewEngine()
	fc := ftl.TestConfig()
	fc.FlashBlocks = 256 // 4096 pages = 16 MiB raw
	fc.GCLowWater = 8
	fc.GCHighWater = 16
	fc.StoreData = false
	dev, err := ftl.New(eng, fc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MetaBlocks = 256
	cfg.SegmentBlocks = 128
	fs, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, fs, dev
}

func wf(eng *sim.Engine, fs *FS, id int, fb int64, n int) error {
	var res error
	ok := false
	fs.WriteFile(id, fb, n, func(err error) { res = err; ok = true })
	eng.Run()
	if !ok {
		panic("lsfs write hung")
	}
	return res
}

func rf(eng *sim.Engine, fs *FS, id int, fb int64, n int) error {
	var res error
	ok := false
	fs.ReadFile(id, fb, n, func(err error) { res = err; ok = true })
	eng.Run()
	if !ok {
		panic("lsfs read hung")
	}
	return res
}

func TestCreateLookup(t *testing.T) {
	_, fs, _ := newFS(t)
	id, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a"); err != ErrExists {
		t.Fatal("duplicate create accepted")
	}
	got, err := fs.Lookup("a")
	if err != nil || got != id {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := fs.Lookup("zz"); err != ErrNotFound {
		t.Fatal("phantom lookup")
	}
}

func TestWriteReadGrowsFile(t *testing.T) {
	eng, fs, _ := newFS(t)
	id, _ := fs.Create("f")
	if err := wf(eng, fs, id, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := wf(eng, fs, id, 8, 8); err != nil {
		t.Fatal(err)
	}
	size, _ := fs.SizeBlocks(id)
	if size != 16 {
		t.Fatalf("size = %d", size)
	}
	if err := rf(eng, fs, id, 0, 16); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataWritesIssued(t *testing.T) {
	eng, fs, _ := newFS(t)
	id, _ := fs.Create("f")
	wf(eng, fs, id, 0, 32)
	_, meta, _, _ := fs.Stats()
	if meta == 0 {
		t.Fatal("no metadata writes")
	}
}

func TestDeleteInvalidates(t *testing.T) {
	eng, fs, _ := newFS(t)
	id, _ := fs.Create("f")
	wf(eng, fs, id, 0, 16)
	if err := fs.Delete(id); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := rf(eng, fs, id, 0, 1); err != ErrNotFound {
		t.Fatalf("read of deleted file: %v", err)
	}
}

func TestSegmentCleaningUnderChurn(t *testing.T) {
	eng, fs, _ := newFS(t)
	id, _ := fs.Create("hot")
	// Overwrite the same small region until segments recycle.
	for round := 0; round < 60; round++ {
		if err := wf(eng, fs, id, 0, 64); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	eng.Run()
	_, _, _, cleans := fs.Stats()
	if cleans == 0 {
		t.Fatal("segment cleaning never ran")
	}
	// File still readable.
	if err := rf(eng, fs, id, 0, 64); err != nil {
		t.Fatal(err)
	}
}

func TestPersonalitiesRun(t *testing.T) {
	for _, p := range Personalities {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			eng, fs, _ := newFS(t)
			// Shrink to fit the tiny test device.
			p.Files = 2
			p.FileBlocks = 64
			res, err := p.Run(eng, fs, 4, 200, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no ops completed")
			}
			if res.Errors > res.Ops/10 {
				t.Fatalf("errors = %d of %d", res.Errors, res.Ops)
			}
			if res.OpsPerSec() <= 0 {
				t.Fatal("no rate")
			}
		})
	}
}

func TestPersonalityByName(t *testing.T) {
	if PersonalityByName("oltp") == nil || PersonalityByName("nope") != nil {
		t.Fatal("personality lookup broken")
	}
}

func TestFsckCleanAfterChurn(t *testing.T) {
	eng, fs, _ := newFS(t)
	a, _ := fs.Create("a")
	b, _ := fs.Create("b")
	for round := 0; round < 30; round++ {
		wf(eng, fs, a, int64(round%8)*8, 8)
		wf(eng, fs, b, 0, 16)
	}
	fs.Delete(b)
	eng.Run()
	rep := fs.Fsck()
	if len(rep.Errors) > 0 {
		t.Fatalf("fsck errors: %v", rep.Errors[0])
	}
	if rep.Files != 1 || rep.LiveBlocks == 0 {
		t.Fatalf("fsck report %+v", rep)
	}
}
