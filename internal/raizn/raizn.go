// Package raizn implements RAIZN (Kim et al., ASPLOS '23) as the paper's
// ZNS-interface baseline: a RAID 5 array over ZNS SSDs that itself exposes
// zoned semantics — logical zones spanning one physical zone per member,
// sequential writes only, rotating parity per stripe row.
//
// The design property the paper attacks (§3.3) is reproduced explicitly:
// RAIZN journals partial-parity records for every write request into a
// centralized metadata zone before acknowledging it. All that traffic
// funnels into one zone on one I/O channel of one member, which caps the
// array's aggregate write throughput well below the ideal (the measured
// 47.7% of §2.3). An optional host-DRAM stripe cache (§5.4's fair-endurance
// configuration) absorbs partial parities of rows that complete while
// cached, at the cost of fault-tolerance — exactly the trade the paper
// describes for the mdraid/RAIZN write buffers.
package raizn

import (
	"fmt"

	"biza/internal/cpumodel"
	"biza/internal/erasure"
	"biza/internal/metrics"
	"biza/internal/nvme"
	"biza/internal/obs"
	"biza/internal/raid"
	"biza/internal/sim"
	"biza/internal/zns"
)

// Config tunes the array.
type Config struct {
	// StripeCacheBytes, when nonzero, enables the volatile host-DRAM parity
	// cache: rows completing while cached skip the partial-parity journal.
	StripeCacheBytes int64
}

const metaZonesReserved = 2 // physical zones 0..1 reserved on every member

// rowState tracks a partially written stripe row.
type rowState struct {
	acc       []byte // XOR accumulator (nil when payloads are nil)
	count     int    // data chunks received
	journaled bool   // partial parity already journaled for this row
}

// Array is the RAIZN engine. It implements zoneapi.Backend so dm-zap can
// stack on top (the dmzap+RAIZN platform).
type Array struct {
	cfg    Config
	queues []*nvme.Queue
	eng    *sim.Engine
	layout *raid.Layout

	zoneBlocks   int64 // physical blocks per member zone
	logicalZones int
	blockSize    int

	wp    []int64 // logical zone write pointers (in logical blocks)
	rows  []map[int64]*rowState
	cache *stripeCache

	// Centralized metadata journal: device 0, alternating physical zones
	// 0 and 1.
	metaZone int // 0 or 1
	metaWP   int64

	acct *cpumodel.Accountant

	userBytes   uint64
	parityBytes uint64
	metaBytes   uint64

	tr *obs.Trace
}

// SetAccountant wires CPU-cost attribution (Fig. 17); nil disables it.
func (a *Array) SetAccountant(acct *cpumodel.Accountant) { a.acct = acct }

// SetTracer attaches an observability trace: array-level spans cover each
// zone Write/Read end to end.
func (a *Array) SetTracer(tr *obs.Trace) { a.tr = tr }

func (a *Array) charge(d sim.Time) {
	if a.acct != nil {
		a.acct.Charge(cpumodel.CompRAIZN, d)
	}
}

// stripeCache is a FIFO of row keys whose partial parity is held in DRAM.
type stripeCache struct {
	capacity int
	fifo     []rowKey
	members  map[rowKey]bool
}

type rowKey struct {
	zone int
	row  int64
}

func newStripeCache(capacity int) *stripeCache {
	return &stripeCache{capacity: capacity, members: make(map[rowKey]bool)}
}

// New builds a RAIZN array over the given member queues (one per ZNS SSD).
// All members must share a geometry.
func New(queues []*nvme.Queue, cfg Config) (*Array, error) {
	if len(queues) < 3 {
		return nil, fmt.Errorf("raizn: need >= 3 members, got %d", len(queues))
	}
	base := queues[0].Device().Config()
	for _, q := range queues[1:] {
		c := q.Device().Config()
		if c.ZoneBlocks != base.ZoneBlocks || c.NumZones != base.NumZones || c.BlockSize != base.BlockSize {
			return nil, fmt.Errorf("raizn: heterogeneous members")
		}
	}
	if base.NumZones <= metaZonesReserved {
		return nil, fmt.Errorf("raizn: too few zones (%d)", base.NumZones)
	}
	layout, err := raid.NewLayout(len(queues), 1, 1)
	if err != nil {
		return nil, err
	}
	a := &Array{
		cfg:          cfg,
		queues:       queues,
		eng:          queues[0].Device().Engine(),
		layout:       layout,
		zoneBlocks:   base.ZoneBlocks,
		logicalZones: base.NumZones - metaZonesReserved,
		blockSize:    base.BlockSize,
	}
	a.wp = make([]int64, a.logicalZones)
	a.rows = make([]map[int64]*rowState, a.logicalZones)
	for i := range a.rows {
		a.rows[i] = make(map[int64]*rowState)
	}
	if cfg.StripeCacheBytes > 0 {
		rows := int(cfg.StripeCacheBytes / int64(a.blockSize))
		if rows < 1 {
			rows = 1
		}
		a.cache = newStripeCache(rows)
	}
	return a, nil
}

// Engine implements zoneapi.Backend.
func (a *Array) Engine() *sim.Engine { return a.eng }

// BlockSize implements zoneapi.Backend.
func (a *Array) BlockSize() int { return a.blockSize }

// ZoneBlocks implements zoneapi.Backend: logical zone capacity in blocks —
// data members times the physical zone size.
func (a *Array) ZoneBlocks() int64 { return a.zoneBlocks * int64(a.dataDisks()) }

// Zones implements zoneapi.Backend.
func (a *Array) Zones() int { return a.logicalZones }

// StoresData implements zoneapi.DataStorer: the array returns payloads
// only when every member device retains them.
func (a *Array) StoresData() bool {
	for _, q := range a.queues {
		if !q.Device().Config().StoreData {
			return false
		}
	}
	return true
}

// MaxOpenZones implements zoneapi.Backend: one logical zone consumes a
// physical open zone on every member; device 0 also carries the metadata
// journal zone.
func (a *Array) MaxOpenZones() int {
	return a.queues[0].Device().Config().MaxOpenZones - metaZonesReserved
}

func (a *Array) dataDisks() int { return a.layout.DataDisks() }

// WriteAmp reports engine-level traffic: user data in; parity and journal
// bytes out (flash truth lives in the member device counters).
func (a *Array) WriteAmp() metrics.WriteAmp {
	return metrics.WriteAmp{
		UserBytes:        a.userBytes,
		FlashDataBytes:   a.userBytes,
		FlashParityBytes: a.parityBytes + a.metaBytes,
	}
}

// MetaBytes reports the partial-parity journal volume.
func (a *Array) MetaBytes() uint64 { return a.metaBytes }

// physZone maps a logical zone to its members' physical zone index.
func (a *Array) physZone(z int) int { return z + metaZonesReserved }

// Write implements zoneapi.Backend: strictly sequential per logical zone.
// Each logical block lands on the data member of its stripe row; completed
// rows emit final parity to the rotating parity member; every request
// journals its partial-parity record to the centralized metadata zone
// (unless the stripe cache absorbs it).
func (a *Array) Write(z int, lba int64, nblocks int, data []byte, tag zns.WriteTag, done func(zns.WriteResult)) {
	start := a.eng.Now()
	fail := func(err error) {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(zns.WriteResult{Err: err, Latency: a.eng.Now() - start})
			})
		}
	}
	if z < 0 || z >= a.logicalZones {
		fail(zns.ErrBadZone)
		return
	}
	n := int64(nblocks)
	if nblocks <= 0 || lba+n > a.ZoneBlocks() {
		fail(zns.ErrBadRange)
		return
	}
	if lba != a.wp[z] {
		fail(zns.ErrNotSequential)
		return
	}
	a.wp[z] += n
	a.userBytes += uint64(n) * uint64(a.blockSize)
	if a.tr != nil {
		span := a.tr.SpanBegin(int64(start), obs.LayerRAIZN, obs.OpWrite, -1, z, lba, n)
		innerDone := done
		done = func(r zns.WriteResult) {
			a.tr.SpanEnd(span, int64(a.eng.Now()), r.Err != nil)
			if innerDone != nil {
				innerDone(r)
			}
		}
	}
	a.charge(cpumodel.CostSchedule + cpumodel.CostMapUpdate*sim.Time(n))
	if a.acct != nil {
		a.acct.ChargeParity(cpumodel.CompRAIZN, n*int64(a.blockSize))
		a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission*sim.Time(n))
	}

	outstanding := 0
	var firstErr error
	finishOne := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 && done != nil {
			done(zns.WriteResult{Err: firstErr, Latency: a.eng.Now() - start})
		}
	}

	k := int64(a.dataDisks())
	bs := int64(a.blockSize)
	pz := a.physZone(z)
	var touched []int64
	// Row-major processing: because the logical zone fills sequentially,
	// rows complete in order, and emitting each completed row's parity
	// before touching the next row keeps every member's physical zone
	// strictly sequential (data or parity, exactly one block per row).
	for i := int64(0); i < n; {
		blk := lba + i
		row := blk / k
		rs := a.rows[z][row]
		if rs == nil {
			rs = &rowState{}
			a.rows[z][row] = rs
			touched = append(touched, row)
		}
		for ; i < n && (lba+i)/k == row; i++ {
			col := int((lba + i) % k)
			dev := a.layout.DataDisk(row, col)
			var payload []byte
			if data != nil {
				payload = data[i*bs : (i+1)*bs]
			}
			outstanding++
			a.queues[dev].Write(pz, row, 1, payload, nil, tag, func(r zns.WriteResult) {
				finishOne(r.Err)
			})
			rs.count++
			if payload != nil {
				if rs.acc == nil {
					rs.acc = make([]byte, bs)
				}
				erasure.XORInto(rs.acc, payload)
			}
		}
		if rs.count == int(k) {
			pdev := a.layout.ParityDisk(row, 0)
			outstanding++
			a.parityBytes += uint64(bs)
			a.queues[pdev].Write(pz, row, 1, rs.acc, nil, zns.TagParity, func(r zns.WriteResult) {
				finishOne(r.Err)
			})
			delete(a.rows[z], row)
			if a.cache != nil {
				a.cache.drop(rowKey{zone: z, row: row})
			}
		}
	}

	// Journal partial parity for the request: one block per incomplete row
	// it touched — the centralized-metadata-zone traffic that caps RAIZN's
	// throughput (§3.3). The stripe cache, when enabled, defers journaling
	// in the hope the row completes in DRAM.
	journal := 0
	for _, row := range touched {
		rs := a.rows[z][row]
		if rs == nil || rs.journaled {
			continue // completed above, or already journaled
		}
		if a.cache != nil {
			for _, evicted := range a.cache.insert(rowKey{zone: z, row: row}) {
				if ev := a.rows[evicted.zone][evicted.row]; ev != nil && !ev.journaled {
					ev.journaled = true
					journal++
				}
			}
			continue
		}
		rs.journaled = true
		journal++
	}
	if journal > 0 {
		outstanding += a.writeJournal(journal, finishOne)
	}
	if outstanding == 0 && done != nil {
		a.eng.After(sim.Microsecond, func() {
			done(zns.WriteResult{Err: firstErr, Latency: a.eng.Now() - start})
		})
	}
}

// writeJournal appends nblocks of partial-parity records to the central
// metadata zone, rotating between the two reserved zones on member 0.
// Returns how many completions the caller should expect.
func (a *Array) writeJournal(nblocks int, finishOne func(error)) int {
	issued := 0
	for nblocks > 0 {
		if a.metaWP >= a.zoneBlocks {
			// Current journal zone full: switch to the spare and reset the
			// old one (its records are superseded by final parities).
			old := a.metaZone
			a.metaZone = 1 - a.metaZone
			a.metaWP = 0
			a.queues[0].Reset(old, nil)
		}
		batch := int64(nblocks)
		if a.metaWP+batch > a.zoneBlocks {
			batch = a.zoneBlocks - a.metaWP
		}
		off := a.metaWP
		a.metaWP += batch
		a.metaBytes += uint64(batch) * uint64(a.blockSize)
		issued++
		a.queues[0].Write(a.metaZone, off, int(batch), nil, nil, zns.TagMeta, func(r zns.WriteResult) {
			finishOne(r.Err)
		})
		nblocks -= int(batch)
	}
	return issued
}

// Read implements zoneapi.Backend, splitting the logical range into
// per-member runs.
func (a *Array) Read(z int, lba int64, nblocks int, done func(zns.ReadResult)) {
	start := a.eng.Now()
	fail := func(err error) {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(zns.ReadResult{Err: err, Latency: a.eng.Now() - start})
			})
		}
	}
	if z < 0 || z >= a.logicalZones {
		fail(zns.ErrBadZone)
		return
	}
	n := int64(nblocks)
	if nblocks <= 0 || lba < 0 || lba+n > a.ZoneBlocks() {
		fail(zns.ErrBadRange)
		return
	}
	if a.tr != nil {
		span := a.tr.SpanBegin(int64(start), obs.LayerRAIZN, obs.OpRead, -1, z, lba, n)
		innerDone := done
		done = func(r zns.ReadResult) {
			a.tr.SpanEnd(span, int64(a.eng.Now()), r.Err != nil)
			if innerDone != nil {
				innerDone(r)
			}
		}
	}
	k := int64(a.dataDisks())
	bs := int64(a.blockSize)
	pz := a.physZone(z)
	var buf []byte
	if a.StoresData() {
		buf = make([]byte, n*bs)
	}
	var firstErr error
	outstanding := 0
	finishOne := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 && done != nil {
			done(zns.ReadResult{Err: firstErr, Data: buf, Latency: a.eng.Now() - start})
		}
	}
	// Group blocks per member and coalesce consecutive row offsets into one
	// device read; each run carries the buffer index of every block so the
	// result can be de-striped.
	type runT struct {
		dev    int
		off    int64
		bufIdx []int64 // logical block index (into buf) per run block
	}
	var runs []runT
	lastRunOfDev := make([]int, len(a.queues))
	for i := range lastRunOfDev {
		lastRunOfDev[i] = -1
	}
	for i := int64(0); i < n; i++ {
		blk := lba + i
		row := blk / k
		col := int(blk % k)
		dev := a.layout.DataDisk(row, col)
		if li := lastRunOfDev[dev]; li >= 0 {
			r := &runs[li]
			if r.off+int64(len(r.bufIdx)) == row {
				r.bufIdx = append(r.bufIdx, i)
				continue
			}
		}
		runs = append(runs, runT{dev: dev, off: row, bufIdx: []int64{i}})
		lastRunOfDev[dev] = len(runs) - 1
	}
	outstanding = len(runs)
	for _, r := range runs {
		r := r
		a.queues[r.dev].Read(pz, r.off, len(r.bufIdx), func(res zns.ReadResult) {
			if res.Data != nil {
				for j, idx := range r.bufIdx {
					copy(buf[idx*bs:(idx+1)*bs], res.Data[int64(j)*bs:(int64(j)+1)*bs])
				}
			}
			finishOne(res.Err)
		})
	}
}

// Reset implements zoneapi.Backend: resets the logical zone's physical zone
// on every member.
func (a *Array) Reset(z int, done func(error)) {
	if z < 0 || z >= a.logicalZones {
		if done != nil {
			a.eng.After(sim.Microsecond, func() { done(zns.ErrBadZone) })
		}
		return
	}
	a.wp[z] = 0
	a.rows[z] = make(map[int64]*rowState)
	remaining := len(a.queues)
	var firstErr error
	for _, q := range a.queues {
		q.Reset(a.physZone(z), func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(firstErr)
			}
		})
	}
}

// Finish implements zoneapi.Backend.
func (a *Array) Finish(z int) error {
	if z < 0 || z >= a.logicalZones {
		return zns.ErrBadZone
	}
	var firstErr error
	for _, q := range a.queues {
		if err := q.Device().Finish(a.physZone(z)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	a.wp[z] = a.ZoneBlocks()
	return firstErr
}

// insert adds a key to the FIFO cache and returns evicted keys.
func (c *stripeCache) insert(k rowKey) []rowKey {
	if c.members[k] {
		return nil
	}
	c.members[k] = true
	c.fifo = append(c.fifo, k)
	var evicted []rowKey
	for len(c.fifo) > c.capacity {
		e := c.fifo[0]
		c.fifo = c.fifo[1:]
		if c.members[e] {
			delete(c.members, e)
			evicted = append(evicted, e)
		}
	}
	return evicted
}

// drop removes a completed row from the cache without journaling.
func (c *stripeCache) drop(k rowKey) { delete(c.members, k) }

// ResetAccounting zeroes engine-level traffic counters.
func (a *Array) ResetAccounting() {
	a.userBytes, a.parityBytes, a.metaBytes = 0, 0, 0
}
