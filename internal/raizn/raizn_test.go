package raizn

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func newArray(t *testing.T, cfg Config) (*sim.Engine, *Array, []*zns.Device) {
	t.Helper()
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	var devs []*zns.Device
	for i := 0; i < 4; i++ {
		dc := zns.TestConfig()
		dc.Seed = uint64(i)
		d, err := zns.New(eng, dc)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond,
			ZoneOrdered:   true,
			Seed:          uint64(i) + 100,
		}))
	}
	a, err := New(queues, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, devs
}

func wsync(eng *sim.Engine, a *Array, z int, lba int64, n int, data []byte) zns.WriteResult {
	var res zns.WriteResult
	ok := false
	a.Write(z, lba, n, data, zns.TagUserData, func(r zns.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("raizn write hung")
	}
	return res
}

func rsync(eng *sim.Engine, a *Array, z int, lba int64, n int) zns.ReadResult {
	var res zns.ReadResult
	ok := false
	a.Read(z, lba, n, func(r zns.ReadResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("raizn read hung")
	}
	return res
}

func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*13)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	d, _ := zns.New(eng, zns.TestConfig())
	q := nvme.New(d, nvme.Config{})
	if _, err := New([]*nvme.Queue{q, q}, Config{}); err == nil {
		t.Fatal("accepted 2 members")
	}
}

func TestGeometry(t *testing.T) {
	_, a, _ := newArray(t, Config{})
	// 4 members, RAID5: logical zone = 3x physical zone capacity.
	if a.ZoneBlocks() != 3*256 {
		t.Fatalf("logical zone blocks = %d", a.ZoneBlocks())
	}
	if a.Zones() != 64-metaZonesReserved {
		t.Fatalf("logical zones = %d", a.Zones())
	}
	if a.MaxOpenZones() != 8-metaZonesReserved {
		t.Fatalf("max open = %d", a.MaxOpenZones())
	}
}

func TestSequentialWriteReadRoundTrip(t *testing.T) {
	eng, a, _ := newArray(t, Config{})
	payload := pat(3, 48*4096)
	if r := wsync(eng, a, 0, 0, 48, payload); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, a, 0, 0, 48)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestNonSequentialRejected(t *testing.T) {
	eng, a, _ := newArray(t, Config{})
	wsync(eng, a, 0, 0, 3, nil)
	if r := wsync(eng, a, 0, 10, 1, nil); !errors.Is(r.Err, zns.ErrNotSequential) {
		t.Fatalf("gap write err = %v", r.Err)
	}
	if r := wsync(eng, a, 1, 5, 1, nil); !errors.Is(r.Err, zns.ErrNotSequential) {
		t.Fatalf("nonzero first write err = %v", r.Err)
	}
}

func TestParityIsXOROfRow(t *testing.T) {
	eng, a, devs := newArray(t, Config{})
	// One full stripe row: 3 data blocks.
	payload := pat(7, 3*4096)
	wsync(eng, a, 0, 0, 3, payload)
	// Row 0's parity lives on disk 3 (left-asymmetric), physical zone 2, offset 0.
	var parity []byte
	got := false
	devs[3].Read(2, 0, 1, func(r zns.ReadResult) { parity = r.Data; got = true })
	eng.Run()
	if !got {
		t.Fatal("parity read hung")
	}
	for i := 0; i < 4096; i++ {
		want := payload[i] ^ payload[4096+i] ^ payload[2*4096+i]
		if parity[i] != want {
			t.Fatalf("parity byte %d = %d, want %d", i, parity[i], want)
		}
	}
}

func TestDegradedReconstructionPossible(t *testing.T) {
	// Sanity: data + parity on the members suffice to rebuild a lost chunk.
	eng, a, devs := newArray(t, Config{})
	payload := pat(9, 3*4096)
	wsync(eng, a, 0, 0, 3, payload)
	read := func(dev int) []byte {
		var out []byte
		devs[dev].Read(2, 0, 1, func(r zns.ReadResult) { out = r.Data })
		eng.Run()
		return out
	}
	d1, d2, p := read(1), read(2), read(3)
	rebuilt := make([]byte, 4096)
	for i := range rebuilt {
		rebuilt[i] = d1[i] ^ d2[i] ^ p[i]
	}
	if !bytes.Equal(rebuilt, payload[:4096]) {
		t.Fatal("XOR reconstruction of chunk 0 failed")
	}
}

func TestPartialWriteJournalsMetadata(t *testing.T) {
	eng, a, _ := newArray(t, Config{})
	// A single block leaves row 0 incomplete: one journal block expected.
	wsync(eng, a, 0, 0, 1, nil)
	if a.MetaBytes() != 4096 {
		t.Fatalf("meta bytes = %d, want 4096", a.MetaBytes())
	}
	// Completing the row must not journal again.
	wsync(eng, a, 0, 1, 2, nil)
	if a.MetaBytes() != 4096 {
		t.Fatalf("meta bytes after completion = %d", a.MetaBytes())
	}
	if a.parityBytes != 4096 {
		t.Fatalf("final parity bytes = %d", a.parityBytes)
	}
}

func TestJournalLandsOnCentralZone(t *testing.T) {
	eng, a, devs := newArray(t, Config{})
	for i := 0; i < 10; i++ {
		wsync(eng, a, i, 0, 1, nil) // 10 incomplete rows in 10 zones
	}
	st := devs[0].Stats()
	if st.ProgrammedByTag(zns.TagMeta) != 10*4096 {
		t.Fatalf("central device meta bytes = %d", st.ProgrammedByTag(zns.TagMeta))
	}
	for _, d := range devs[1:] {
		if d.Stats().ProgrammedByTag(zns.TagMeta) != 0 {
			t.Fatal("journal leaked to non-central member")
		}
	}
}

func TestJournalZoneRotation(t *testing.T) {
	eng, a, devs := newArray(t, Config{})
	// Force more journal blocks than one zone holds (256): write 300
	// single-block requests into distinct rows of distinct zones.
	count := 0
	for z := 0; z < a.Zones() && count < 300; z++ {
		for lba := int64(0); lba < a.ZoneBlocks() && count < 300; lba += 3 {
			if a.wp[z] != lba {
				break
			}
			wsync(eng, a, z, lba, 1, nil)
			// Leave the row incomplete forever: advance over it.
			wsync(eng, a, z, lba+1, 2, nil)
			count++
		}
	}
	if count < 300 {
		t.Fatalf("setup wrote only %d rows", count)
	}
	if a.MetaBytes() < 300*4096 {
		t.Fatalf("meta bytes = %d", a.MetaBytes())
	}
	// Rotation happened: device 0 zone 0 or 1 was reset at least once.
	if devs[0].EraseCount(0)+devs[0].EraseCount(1) == 0 {
		t.Fatal("journal zones never rotated")
	}
}

func TestStripeCacheAbsorbsPartialParity(t *testing.T) {
	eng, a, _ := newArray(t, Config{StripeCacheBytes: 1 << 20})
	// Rows complete across two requests; with the cache, no journal writes.
	wsync(eng, a, 0, 0, 1, nil)
	wsync(eng, a, 0, 1, 2, nil)
	if a.MetaBytes() != 0 {
		t.Fatalf("cache failed to absorb partial parity: %d bytes", a.MetaBytes())
	}
	if a.parityBytes == 0 {
		t.Fatal("final parity missing")
	}
}

func TestStripeCacheEvictionJournals(t *testing.T) {
	// A tiny cache (1 row) must journal evicted incomplete rows.
	eng, a, _ := newArray(t, Config{StripeCacheBytes: 4096})
	wsync(eng, a, 0, 0, 1, nil) // row 0 cached
	wsync(eng, a, 1, 0, 1, nil) // row (z1,0) cached, row (z0,0) evicted -> journaled
	if a.MetaBytes() != 4096 {
		t.Fatalf("meta bytes = %d, want 4096", a.MetaBytes())
	}
}

func TestResetLogicalZone(t *testing.T) {
	eng, a, _ := newArray(t, Config{})
	payload := pat(1, 6*4096)
	wsync(eng, a, 0, 0, 6, payload)
	var rerr error
	ok := false
	a.Reset(0, func(err error) { rerr = err; ok = true })
	eng.Run()
	if !ok || rerr != nil {
		t.Fatalf("reset ok=%v err=%v", ok, rerr)
	}
	// Zone writable from 0 again.
	if r := wsync(eng, a, 0, 0, 3, nil); r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestFinishLogicalZone(t *testing.T) {
	eng, a, _ := newArray(t, Config{})
	wsync(eng, a, 0, 0, 3, nil)
	if err := a.Finish(0); err != nil {
		t.Fatal(err)
	}
	if r := wsync(eng, a, 0, a.ZoneBlocks(), 1, nil); r.Err == nil {
		t.Fatal("write accepted after finish")
	}
}

func TestCentralJournalThroughputCap(t *testing.T) {
	// The §3.3 claim: with all partial parity funneling to one zone, array
	// write throughput caps well below the member aggregate. Sequential
	// 64 KiB writes at depth 32 across many logical zones.
	eng, a, _ := newArray(t, Config{})
	var doneBytes int64
	depthPerZone := 8
	zonesUsed := 4
	for lane := 0; lane < zonesUsed; lane++ {
		lane := lane
		zone := new(int)
		*zone = lane
		next := new(int64)
		var submit func()
		submit = func() {
			if *next+16 > a.ZoneBlocks() {
				// Lane's zone full: move to the next zone in its stripe of
				// the zone space (fresh capacity, still one lane).
				*zone += zonesUsed
				if *zone >= a.Zones() {
					return
				}
				*next = 0
			}
			lba := *next
			*next += 16
			z := *zone
			a.Write(z, lba, 16, nil, zns.TagUserData, func(r zns.WriteResult) {
				if r.Err != nil {
					return
				}
				doneBytes += 16 * 4096
				submit()
			})
		}
		for i := 0; i < depthPerZone; i++ {
			submit()
		}
	}
	eng.RunUntil(20 * sim.Millisecond)
	mbps := float64(doneBytes) / 1e6 / 0.02
	// Member aggregate would be ~4x2000=8000 MB/s ideal (6000 for data);
	// the journal zone's single channel (1000 MB/s) must cap user
	// throughput near 3x that (one journal block per 3 data blocks).
	if mbps > 4200 {
		t.Fatalf("throughput %.0f MB/s — central journal cap not modeled", mbps)
	}
	if mbps < 800 {
		t.Fatalf("throughput %.0f MB/s — array barely works", mbps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, a, _ := newArray(t, Config{})
		for z := 0; z < 8; z++ {
			for lba := int64(0); lba < 128; lba += 4 {
				wsync(eng, a, z, lba, 4, nil)
			}
		}
		return a.userBytes, a.MetaBytes()
	}
	u1, m1 := run()
	u2, m2 := run()
	if u1 != u2 || m1 != m2 {
		t.Fatalf("replay diverged")
	}
}
