package admin

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/storerr"
	"biza/internal/volume"
)

func smallOpts(seed uint64) stack.Options {
	z := stack.BenchZNS(32)
	z.ZoneBlocks = 512 // 2 MiB zones keep rebuilds fast
	z.ZRWABlocks = 64
	return stack.Options{ZNS: z, Seed: seed}
}

func newBIZA(t *testing.T, seed uint64) (*stack.Platform, *Orchestrator) {
	t.Helper()
	p, err := stack.New(stack.KindBIZA, smallOpts(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p, New(p)
}

// fill writes n blocks so replacement and scrub jobs have work.
func fill(t *testing.T, p *stack.Platform, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p.Dev.Write(int64(i), 1, nil, nil)
	}
	p.Eng.Run()
}

func TestReplaceJobPacedCompletes(t *testing.T) {
	p, o := newBIZA(t, 1)
	fill(t, p, 256)
	id, err := o.Submit(KindReplace, Params{Device: 1, StripesPerStep: 2, StepGapNanos: int64(100 * sim.Microsecond)})
	if err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	j, ok := o.Job(id)
	if !ok || j.State != StateDone {
		t.Fatalf("job = %+v, want done", j)
	}
	if j.Progress.Done == 0 || j.Progress.Done != j.Progress.Total {
		t.Fatalf("progress = %+v, want complete and non-empty", j.Progress)
	}
	if p.Replacements() != 1 {
		t.Fatalf("replacements = %d, want 1", p.Replacements())
	}
	if j.FinishedAt <= j.StartedAt || j.StartedAt < j.SubmittedAt {
		t.Fatalf("timestamps out of order: %+v", j)
	}
}

// TestRollingReplaceSerializes: one queue per array means submitting a
// replace per member IS a rolling replacement — each rebuild starts only
// after the previous one restored redundancy.
func TestRollingReplaceSerializes(t *testing.T) {
	p, o := newBIZA(t, 2)
	fill(t, p, 256)
	var ids []uint64
	for dev := 0; dev < 3; dev++ {
		id, err := o.Submit(KindReplace, Params{Device: dev, StripesPerStep: 4, StepGapNanos: int64(50 * sim.Microsecond)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	p.Eng.Run()
	var prev Job
	for i, id := range ids {
		j, _ := o.Job(id)
		if j.State != StateDone {
			t.Fatalf("job %d = %+v, want done", id, j)
		}
		if i > 0 && j.StartedAt < prev.FinishedAt {
			t.Fatalf("job %d started at %d before job %d finished at %d",
				j.ID, j.StartedAt, prev.ID, prev.FinishedAt)
		}
		prev = j
	}
	if p.Replacements() != 3 {
		t.Fatalf("replacements = %d, want 3", p.Replacements())
	}
}

func TestScrubPauseResumeAndCancel(t *testing.T) {
	p, o := newBIZA(t, 3)
	fill(t, p, 64)
	gap := int64(200 * sim.Microsecond)
	id, err := o.Submit(KindScrub, Params{BlocksPerStep: 512, GapNanos: gap})
	if err != nil {
		t.Fatal(err)
	}
	// Let a few steps run, then pause at a step boundary.
	p.Eng.RunUntil(p.Eng.Now() + sim.Time(3*gap))
	if err := o.Pause(id); err != nil {
		t.Fatal(err)
	}
	p.Eng.Run() // drains to the parked continuation
	j, _ := o.Job(id)
	if j.State != StatePaused {
		t.Fatalf("state = %s, want paused", j.State)
	}
	if j.Progress.Done == 0 || j.Progress.Done >= j.Progress.Total {
		t.Fatalf("paused progress = %+v, want partial", j.Progress)
	}
	mark := j.Progress.Done
	p.Eng.RunUntil(p.Eng.Now() + sim.Time(10*gap))
	if j, _ = o.Job(id); j.Progress.Done != mark {
		t.Fatalf("progress advanced while paused: %d -> %d", mark, j.Progress.Done)
	}
	if err := o.Resume(id); err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	if j, _ = o.Job(id); j.State != StateDone || j.Progress.Done != j.Progress.Total {
		t.Fatalf("after resume: %+v, want done", j)
	}

	// Cancel: a running scrub stops at its next gate; a pending job
	// cancels outright.
	id2, _ := o.Submit(KindScrub, Params{BlocksPerStep: 256, GapNanos: gap})
	id3, _ := o.Submit(KindScrub, Params{BlocksPerStep: 256, GapNanos: gap})
	p.Eng.RunUntil(p.Eng.Now() + sim.Time(2*gap))
	if err := o.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	if err := o.Cancel(id3); err != nil {
		t.Fatal(err)
	}
	p.Eng.Run()
	j2, _ := o.Job(id2)
	j3, _ := o.Job(id3)
	if j2.State != StateCanceled || j2.Progress.Done >= j2.Progress.Total {
		t.Fatalf("canceled running scrub = %+v", j2)
	}
	if j3.State != StateCanceled || j3.StartedAt != 0 {
		t.Fatalf("canceled pending scrub = %+v", j3)
	}
}

func TestVolumeJobs(t *testing.T) {
	p, o := newBIZA(t, 4)
	vm := volume.New(p.Eng, p.Dev, volume.Config{})
	o.SetVolumeSource(func() *volume.Manager { return vm })
	if _, err := vm.Open("tenant", volume.Options{Blocks: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	id, _ := o.Submit(KindVolumeResize, Params{Volume: "tenant", NewBlocks: 1 << 11})
	p.Eng.Run()
	if j, _ := o.Job(id); j.State != StateDone {
		t.Fatalf("resize job = %+v", j)
	}
	if got := vm.Volume("tenant").Blocks(); got != 1<<11 {
		t.Fatalf("blocks = %d, want %d", got, 1<<11)
	}
	id, _ = o.Submit(KindVolumeDelete, Params{Volume: "tenant"})
	p.Eng.Run()
	if j, _ := o.Job(id); j.State != StateDone {
		t.Fatalf("delete job = %+v", j)
	}
	if vm.Volumes() != 0 {
		t.Fatalf("volumes = %d, want 0", vm.Volumes())
	}
	// Unknown volume surfaces as a failed job carrying the sentinel text.
	id, _ = o.Submit(KindVolumeDelete, Params{Volume: "ghost"})
	p.Eng.Run()
	if j, _ := o.Job(id); j.State != StateFailed || !strings.Contains(j.Err, storerr.ErrNotFound.Error()) {
		t.Fatalf("ghost delete job = %+v, want failed/not-found", j)
	}
}

// TestImmediateKindsBypassQueue: a crash submitted behind a queued scrub
// executes immediately — power loss does not wait for maintenance.
func TestImmediateKindsBypassQueue(t *testing.T) {
	p, o := newBIZA(t, 5)
	fill(t, p, 64)
	scrub, _ := o.Submit(KindScrub, Params{BlocksPerStep: 64, GapNanos: int64(sim.Millisecond)})
	crash, err := o.Submit(KindCrash, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := o.Job(crash); j.State != StateDone {
		t.Fatalf("crash job = %+v, want done synchronously", j)
	}
	if !p.Crashed() {
		t.Fatal("platform not crashed")
	}
	_ = scrub // outcome after a crash is platform-defined; determinism is pinned by the replay test
	rec, _ := o.Submit(KindRecover, Params{})
	p.Eng.Run()
	if j, _ := o.Job(rec); j.State != StateDone {
		t.Fatalf("recover job = %+v, want done", j)
	}
	if p.Crashed() {
		t.Fatal("platform still crashed after recover job")
	}

	sf, _ := o.Submit(KindSetFailed, Params{Device: 1, Failed: true})
	if j, _ := o.Job(sf); j.State != StateDone {
		t.Fatalf("set-failed job = %+v", j)
	}
	if !p.BIZA.Degraded() {
		t.Fatal("array not degraded after set-failed job")
	}
}

func TestOrchestratorErrorSentinels(t *testing.T) {
	p, o := newBIZA(t, 6)
	if _, err := o.Submit(Kind("mystery"), Params{}); !errors.Is(err, storerr.ErrBadArgument) {
		t.Fatalf("unknown kind: err = %v, want ErrBadArgument", err)
	}
	if err := o.Cancel(42); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("cancel unknown: err = %v, want ErrNotFound", err)
	}
	if err := o.Pause(42); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("pause unknown: err = %v, want ErrNotFound", err)
	}
	fill(t, p, 128)
	id, _ := o.Submit(KindReplace, Params{Device: 0, StripesPerStep: 1, StepGapNanos: int64(sim.Millisecond)})
	p.Eng.RunUntil(p.Eng.Now() + 2*sim.Millisecond)
	if err := o.Cancel(id); !errors.Is(err, storerr.ErrBusy) {
		t.Fatalf("cancel running replace: err = %v, want ErrBusy", err)
	}
	p.Eng.Run()
	if err := o.Resume(id); !errors.Is(err, storerr.ErrWrongState) {
		t.Fatalf("resume done job: err = %v, want ErrWrongState", err)
	}
	if err := o.Cancel(id); !errors.Is(err, storerr.ErrWrongState) {
		t.Fatalf("cancel done job: err = %v, want ErrWrongState", err)
	}
}

func TestGatewayStagingAndViews(t *testing.T) {
	p, o := newBIZA(t, 7)
	fill(t, p, 64)
	g := NewGateway(o)
	if _, err := g.SubmitJob("mystery", nil); !errors.Is(err, storerr.ErrBadArgument) {
		t.Fatalf("unknown kind: err = %v, want ErrBadArgument", err)
	}
	if _, err := g.SubmitJob("scrub", []byte("{nope")); !errors.Is(err, storerr.ErrBadArgument) {
		t.Fatalf("bad params json: err = %v, want ErrBadArgument", err)
	}
	if err := g.CancelJob(99); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("cancel unknown: err = %v, want ErrNotFound", err)
	}
	id, err := g.SubmitJob("scrub", []byte(`{"blocks_per_step":512}`))
	if err != nil {
		t.Fatal(err)
	}
	// Before injection the job is visible as pending.
	b, ok := g.JobJSON(id)
	if !ok {
		t.Fatal("staged job invisible")
	}
	var j Job
	if err := json.Unmarshal(b, &j); err != nil || j.State != StatePending || j.ID != id {
		t.Fatalf("staged view = %s (err %v)", b, err)
	}
	if !bytes.Contains(g.JobsJSON(), []byte(`"state":"pending"`)) {
		t.Fatalf("staged job missing from list: %s", g.JobsJSON())
	}
	if g.Staged() != 1 {
		t.Fatalf("staged = %d, want 1", g.Staged())
	}
	g.Drain()
	p.Eng.Run()
	b, ok = g.JobJSON(id)
	if !ok {
		t.Fatal("injected job invisible")
	}
	if err := json.Unmarshal(b, &j); err != nil || j.State != StateDone {
		t.Fatalf("post-run view = %s (err %v)", b, err)
	}
}

// TestJournalReplayBitIdentical is the acceptance test for the injection
// boundary: a live run mixing HTTP-style staged commands into the
// simulation is replayed from its journal on a fresh array, and every
// published job record — ids, states, progress, virtual timestamps — is
// byte-identical.
func TestJournalReplayBitIdentical(t *testing.T) {
	schedule := func(p *stack.Platform) {
		// Foreground workload pinned to virtual times so both runs see
		// identical simulation state around the injections.
		for i := 0; i < 400; i++ {
			i := i
			p.Eng.At(sim.Time(i)*20*sim.Microsecond, func() {
				p.Dev.Write(int64(i%256), 1, nil, nil)
			})
		}
	}

	// Live run: commands staged on the gateway (as HTTP handlers would)
	// and drained at driver-chosen virtual boundaries.
	live, liveOrc := newBIZA(t, 42)
	schedule(live)
	g := NewGateway(liveOrc)
	id1, err := g.SubmitJob("replace", []byte(`{"device":1,"stripes_per_step":2,"step_gap_nanos":100000}`))
	if err != nil {
		t.Fatal(err)
	}
	live.Eng.RunUntil(2 * sim.Millisecond)
	g.Drain()
	if _, err := g.SubmitJob("scrub", []byte(`{"blocks_per_step":4096}`)); err != nil {
		t.Fatal(err)
	}
	if err := g.PauseJob(id1); err != nil {
		t.Fatal(err)
	}
	live.Eng.RunUntil(4 * sim.Millisecond)
	g.Drain()
	if err := g.ResumeJob(id1); err != nil {
		t.Fatal(err)
	}
	live.Eng.RunUntil(6 * sim.Millisecond)
	g.Drain()
	live.Eng.Run()

	journal := liveOrc.Journal()
	if len(journal) != 4 {
		t.Fatalf("journal has %d entries, want 4", len(journal))
	}
	liveJobs, err := json.Marshal(liveOrc.Jobs())
	if err != nil {
		t.Fatal(err)
	}

	// Replay: fresh identical array, commands re-applied at their
	// journaled virtual times.
	replay, replayOrc := newBIZA(t, 42)
	schedule(replay)
	for _, e := range journal {
		replay.Eng.RunUntil(sim.Time(e.At))
		if _, err := replayOrc.Apply(e.Cmd); err != nil {
			t.Fatalf("replay apply %+v: %v", e.Cmd, err)
		}
	}
	replay.Eng.Run()
	replayJobs, err := json.Marshal(replayOrc.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJobs, replayJobs) {
		t.Fatalf("replay diverged:\nlive:   %s\nreplay: %s", liveJobs, replayJobs)
	}
	if live.Replacements() != replay.Replacements() {
		t.Fatalf("replacements diverged: live %d replay %d", live.Replacements(), replay.Replacements())
	}
	rj, err := json.Marshal(replayOrc.Journal())
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(journal)
	if !bytes.Equal(lj, rj) {
		t.Fatalf("journals diverged:\nlive:   %s\nreplay: %s", lj, rj)
	}
}
