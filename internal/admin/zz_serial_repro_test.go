package admin_test

import (
	"testing"

	"biza/internal/admin"
	"biza/internal/blockdev"
	"biza/internal/stack"
)

func TestImmediateDuringRunningRepro(t *testing.T) {
	p, err := stack.New(stack.KindBIZA, stack.Options{ZNS: stack.BenchZNS(8)})
	if err != nil {
		t.Fatal(err)
	}
	orc := admin.New(p)
	blk := make([]byte, 8*p.Dev.BlockSize())
	for lba := int64(0); lba < 512; lba += 8 {
		p.Dev.Write(lba, 8, blk, func(res blockdev.WriteResult) {})
	}
	p.Eng.Run()

	id1, _ := orc.Submit(admin.KindReplace, admin.Params{Device: 0, StripesPerStep: 1, StepGapNanos: 1_000_000})
	id2, _ := orc.Submit(admin.KindReplace, admin.Params{Device: 1, StripesPerStep: 1, StepGapNanos: 1_000_000})
	p.Eng.RunUntil(p.Eng.Now() + 10_000)
	j1, _ := orc.Job(id1)
	j2, _ := orc.Job(id2)
	t.Logf("before immediate: job1=%s job2=%s", j1.State, j2.State)
	if j1.State != admin.StateRunning {
		t.Skipf("job1 not running yet (%s); repro setup off", j1.State)
	}
	orc.Submit(admin.KindSetFailed, admin.Params{Device: 2, Failed: false})
	j1, _ = orc.Job(id1)
	j2, _ = orc.Job(id2)
	t.Logf("after immediate: job1=%s job2=%s", j1.State, j2.State)
	if j1.State == admin.StateRunning && j2.State == admin.StateRunning {
		t.Errorf("two replace jobs running concurrently: serial-queue invariant broken")
	}
	p.Eng.Run()
	j1, _ = orc.Job(id1)
	j2, _ = orc.Job(id2)
	t.Logf("final: job1=%s err=%q  job2=%s err=%q", j1.State, j1.Err, j2.State, j2.Err)
}
