// Package admin is the live-operations control plane: a deterministic
// job orchestrator that executes mutating administrative operations —
// device replacement, paced scrubs, crash/recover cycles, volume resize
// and delete — against one array as paced virtual-time steps.
//
// The design mirrors internal/ops in the opposite direction. ops
// publishes immutable snapshots out of the simulation for concurrent HTTP
// readers; admin carries mutating commands *into* the simulation across a
// single injection boundary. HTTP handlers never touch the array: they
// stage typed Commands on a Gateway (mutex-guarded, any goroutine), and
// the simulation driver drains staged commands into the Orchestrator at
// virtual-time boundaries of its choosing. Every injected command is
// recorded in a journal of (virtual time, sequence, command) entries, so
// a run that mixed live HTTP traffic into the simulation can be replayed
// bit-identically by re-driving the journal — the acceptance test for the
// whole control plane.
//
// One Orchestrator serves one array and runs one job at a time in
// submission order; a rolling replacement is nothing more than submitting
// one replace job per member and letting the queue serialize them.
// Long-running kinds (replace, scrub) execute as paced steps with
// configurable step size and virtual-time gap — the rebuild-rate versus
// foreground-latency knob the `rolling` experiment sweeps — and can be
// paused, resumed, and (while still pending) canceled. Crash and
// set-failed are immediate kinds: they model power cuts and member
// failures, which do not wait politely behind queued work, so Submit
// executes them inline without draining the queue.
package admin

import (
	"fmt"
	"sync/atomic"

	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/storerr"
	"biza/internal/volume"
)

// Kind names a job type.
type Kind string

// Job kinds.
const (
	// KindReplace hot-swaps a member device and rebuilds redundancy,
	// paced by StripesPerStep/StepGapNanos.
	KindReplace Kind = "replace"
	// KindScrub reads the whole array space in paced steps, counting
	// unreadable ranges (BlocksPerStep/GapNanos).
	KindScrub Kind = "scrub"
	// KindVolumeResize grows or shrinks a named volume in place.
	KindVolumeResize Kind = "volume-resize"
	// KindVolumeDelete deletes a named volume and reclaims (trims) its
	// LBA range.
	KindVolumeDelete Kind = "volume-delete"
	// KindCrash cuts power immediately (immediate kind: runs at submit,
	// ahead of any queued jobs — power loss does not queue).
	KindCrash Kind = "crash"
	// KindRecover rebuilds the array state from the surviving devices.
	KindRecover Kind = "recover"
	// KindSetFailed marks a member failed or healthy (immediate kind).
	KindSetFailed Kind = "set-failed"
)

// Params carries the union of job parameters; each kind reads its own
// subset and ignores the rest.
type Params struct {
	// Device is the member index (replace, set-failed).
	Device int `json:"device,omitempty"`
	// Failed is the target state for set-failed.
	Failed bool `json:"failed,omitempty"`
	// StripesPerStep bounds concurrent stripe dissolutions per rebuild
	// step (replace; 0 = unpaced).
	StripesPerStep int `json:"stripes_per_step,omitempty"`
	// StepGapNanos idles the rebuild between steps (replace).
	StepGapNanos int64 `json:"step_gap_nanos,omitempty"`
	// BlocksPerStep sizes one scrub read (scrub; default 1024).
	BlocksPerStep int `json:"blocks_per_step,omitempty"`
	// GapNanos idles the scrub between steps (scrub).
	GapNanos int64 `json:"gap_nanos,omitempty"`
	// Volume names the target volume (volume-resize, volume-delete).
	Volume string `json:"volume,omitempty"`
	// NewBlocks is the target capacity (volume-resize).
	NewBlocks int64 `json:"new_blocks,omitempty"`
}

// State is a job's lifecycle position.
type State string

// Job states. pending → running → done|failed, with paused reachable
// from running (and back), and canceled reachable from pending or
// paused.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StatePaused   State = "paused"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is a job's step counter.
type Progress struct {
	Done   int64  `json:"done"`
	Total  int64  `json:"total"`
	Detail string `json:"detail,omitempty"`
}

// Job is the typed operation record. All times are virtual nanoseconds.
type Job struct {
	ID          uint64   `json:"id"`
	Kind        Kind     `json:"kind"`
	Params      Params   `json:"params"`
	State       State    `json:"state"`
	Progress    Progress `json:"progress"`
	Err         string   `json:"error,omitempty"`
	SubmittedAt int64    `json:"submitted_at_nanos"`
	StartedAt   int64    `json:"started_at_nanos,omitempty"`
	FinishedAt  int64    `json:"finished_at_nanos,omitempty"`
}

// Command is one mutating operation crossing the injection boundary.
type Command struct {
	// Verb is one of submit, cancel, pause, resume.
	Verb string `json:"verb"`
	// JobID targets an existing job (cancel/pause/resume); on submit a
	// non-zero JobID pins the new job's id (gateway pre-assignment and
	// journal replay), 0 allocates the next id.
	JobID  uint64 `json:"job_id,omitempty"`
	Kind   Kind   `json:"kind,omitempty"`
	Params Params `json:"params,omitempty"`
}

// Command verbs.
const (
	VerbSubmit = "submit"
	VerbCancel = "cancel"
	VerbPause  = "pause"
	VerbResume = "resume"
)

// JournalEntry records one injected command at its virtual time; Seq
// breaks ties between commands injected at the same instant.
type JournalEntry struct {
	At  int64   `json:"at_nanos"`
	Seq uint64  `json:"seq"`
	Cmd Command `json:"cmd"`
}

// jobRun pairs a job's published data with its runtime-only state.
type jobRun struct {
	job       Job
	err       error  // the error a failed job finished with (typed)
	parked    func() // continuation held while paused
	cancelReq bool   // observed at the next step gate
}

// Orchestrator executes admin jobs against one platform, one at a time,
// in submission order. All methods except Job/Jobs/Journal must run on
// the platform's engine goroutine (simulation discipline); Job and Jobs
// read an atomically published snapshot and are safe from any goroutine
// — that is what the ops HTTP handlers poll.
type Orchestrator struct {
	eng  *sim.Engine
	p    *stack.Platform
	vols func() *volume.Manager

	idAlloc *uint64 // shared with the gateway, advanced atomically

	jobs    map[uint64]*jobRun
	order   []uint64 // submission order (snapshot and journal iteration)
	queue   []uint64 // pending, awaiting execution
	running uint64   // id of the executing job, 0 = none

	journal []JournalEntry
	seq     uint64

	snap     atomic.Pointer[[]Job]
	onChange func()
}

// New returns an orchestrator for the platform.
func New(p *stack.Platform) *Orchestrator {
	o := &Orchestrator{
		eng:     p.Eng,
		p:       p,
		idAlloc: new(uint64),
		jobs:    make(map[uint64]*jobRun),
	}
	o.publish()
	return o
}

// SetVolumeSource wires the volume manager lookup for volume jobs. A
// func (rather than the manager itself) because the facade creates its
// manager lazily.
func (o *Orchestrator) SetVolumeSource(f func() *volume.Manager) { o.vols = f }

// SetOnChange registers a hook fired after every published state change
// (job transitions, progress steps). Live servers use it to republish
// their ops snapshot. Runs on the engine goroutine.
func (o *Orchestrator) SetOnChange(f func()) { o.onChange = f }

// idAllocator exposes the shared id counter for a Gateway.
func (o *Orchestrator) idAllocator() *uint64 { return o.idAlloc }

// Journal returns the injected-command journal (do not mutate).
func (o *Orchestrator) Journal() []JournalEntry { return o.journal }

// Job returns a snapshot of one job. Safe from any goroutine.
func (o *Orchestrator) Job(id uint64) (Job, bool) {
	for _, j := range *o.snap.Load() {
		if j.ID == id {
			return j, true
		}
	}
	return Job{}, false
}

// Jobs returns a snapshot of all jobs in submission order. Safe from any
// goroutine.
func (o *Orchestrator) Jobs() []Job { return *o.snap.Load() }

// Err returns the typed error a failed job finished with — unlike the
// string in Job.Err it preserves storerr identities for errors.Is. Nil
// for successful, canceled, or unfinished jobs. Engine goroutine only.
func (o *Orchestrator) Err(id uint64) error {
	if r := o.jobs[id]; r != nil {
		return r.err
	}
	return nil
}

// publish rebuilds the immutable job snapshot and fires the change hook.
func (o *Orchestrator) publish() {
	s := make([]Job, 0, len(o.order))
	for _, id := range o.order {
		s = append(s, o.jobs[id].job)
	}
	o.snap.Store(&s)
	if o.onChange != nil {
		o.onChange()
	}
}

// Inject applies staged commands at the current virtual time — the
// single deterministic injection boundary. Must run on the engine
// goroutine; the commands' effects interleave with simulation events
// exactly as if scheduled there, and each command lands in the journal.
func (o *Orchestrator) Inject(cmds []Command) {
	for _, c := range cmds {
		o.Apply(c) // errors live in the job records
	}
}

// Apply executes one command, journaling it first. Returns the affected
// job id. Must run on the engine goroutine.
func (o *Orchestrator) Apply(cmd Command) (uint64, error) {
	o.seq++
	o.journal = append(o.journal, JournalEntry{At: int64(o.eng.Now()), Seq: o.seq, Cmd: cmd})
	switch cmd.Verb {
	case VerbSubmit:
		return o.submit(cmd)
	case VerbCancel:
		return cmd.JobID, o.Cancel(cmd.JobID)
	case VerbPause:
		return cmd.JobID, o.Pause(cmd.JobID)
	case VerbResume:
		return cmd.JobID, o.Resume(cmd.JobID)
	}
	return 0, fmt.Errorf("admin: unknown verb %q: %w", cmd.Verb, storerr.ErrBadArgument)
}

// Submit queues (or, for immediate kinds, executes) a new job and
// returns its id. Must run on the engine goroutine. The job's eventual
// success or failure is reported in its State/Err fields; Submit itself
// errors only on malformed commands.
func (o *Orchestrator) Submit(kind Kind, p Params) (uint64, error) {
	return o.Apply(Command{Verb: VerbSubmit, Kind: kind, Params: p})
}

func (o *Orchestrator) submit(cmd Command) (uint64, error) {
	switch cmd.Kind {
	case KindReplace, KindScrub, KindVolumeResize, KindVolumeDelete,
		KindCrash, KindRecover, KindSetFailed:
	default:
		return 0, fmt.Errorf("admin: unknown job kind %q: %w", cmd.Kind, storerr.ErrBadArgument)
	}
	id := cmd.JobID
	if id == 0 {
		id = atomic.AddUint64(o.idAlloc, 1)
	} else {
		// Journal replay pins ids; keep the allocator ahead of them.
		for {
			cur := atomic.LoadUint64(o.idAlloc)
			if cur >= id || atomic.CompareAndSwapUint64(o.idAlloc, cur, id) {
				break
			}
		}
	}
	if _, dup := o.jobs[id]; dup {
		return id, fmt.Errorf("admin: job %d resubmitted: %w", id, storerr.ErrExists)
	}
	r := &jobRun{job: Job{
		ID: id, Kind: cmd.Kind, Params: cmd.Params,
		State: StatePending, SubmittedAt: int64(o.eng.Now()),
	}}
	o.jobs[id] = r
	o.order = append(o.order, id)
	if cmd.Kind == KindCrash || cmd.Kind == KindSetFailed {
		// Immediate kinds: power cuts and member failures take effect
		// now, not after queued maintenance drains.
		o.start(r)
		o.execImmediate(r)
		return id, nil
	}
	o.queue = append(o.queue, id)
	o.publish()
	o.kick()
	return id, nil
}

// Cancel stops a job that has not finished. Pending jobs cancel
// outright; a paused or running scrub cancels at its next step gate; a
// running or paused replace refuses (storerr.ErrBusy) — it has already
// dissolved stripes and must run to completion to restore redundancy.
func (o *Orchestrator) Cancel(id uint64) error {
	r := o.jobs[id]
	if r == nil {
		return fmt.Errorf("admin: job %d: %w", id, storerr.ErrNotFound)
	}
	switch r.job.State {
	case StatePending:
		r.job.State = StateCanceled
		r.job.FinishedAt = int64(o.eng.Now())
		// Left in o.queue; kick skips canceled entries.
		o.publish()
		return nil
	case StateRunning, StatePaused:
		if r.job.Kind == KindReplace {
			return fmt.Errorf("admin: job %d: rebuild in progress: %w", id, storerr.ErrBusy)
		}
		r.cancelReq = true
		if r.parked != nil {
			// Paused with a held continuation: run it so the step gate
			// observes the cancel now rather than on a resume that may
			// never come.
			cont := r.parked
			r.parked = nil
			cont()
		}
		return nil
	default:
		return fmt.Errorf("admin: job %d already %s: %w", id, r.job.State, storerr.ErrWrongState)
	}
}

// Pause parks a running paced job at its next step boundary. Immediate
// and already-finished jobs refuse.
func (o *Orchestrator) Pause(id uint64) error {
	r := o.jobs[id]
	if r == nil {
		return fmt.Errorf("admin: job %d: %w", id, storerr.ErrNotFound)
	}
	if r.job.State != StateRunning {
		return fmt.Errorf("admin: job %d is %s, not running: %w", id, r.job.State, storerr.ErrWrongState)
	}
	r.job.State = StatePaused
	o.publish()
	return nil
}

// Resume restarts a paused job.
func (o *Orchestrator) Resume(id uint64) error {
	r := o.jobs[id]
	if r == nil {
		return fmt.Errorf("admin: job %d: %w", id, storerr.ErrNotFound)
	}
	if r.job.State != StatePaused {
		return fmt.Errorf("admin: job %d is %s, not paused: %w", id, r.job.State, storerr.ErrWrongState)
	}
	r.job.State = StateRunning
	cont := r.parked
	r.parked = nil
	o.publish()
	if cont != nil {
		cont()
	}
	return nil
}

// kick starts the next runnable queued job if none is executing.
func (o *Orchestrator) kick() {
	for o.running == 0 && len(o.queue) > 0 {
		id := o.queue[0]
		o.queue = o.queue[1:]
		r := o.jobs[id]
		if r.job.State != StatePending {
			continue // canceled while queued
		}
		o.start(r)
		o.exec(r)
		return
	}
}

func (o *Orchestrator) start(r *jobRun) {
	o.running = r.job.ID
	r.job.State = StateRunning
	r.job.StartedAt = int64(o.eng.Now())
	o.publish()
}

// finish retires the executing job and starts the next one.
func (o *Orchestrator) finish(r *jobRun, err error) {
	r.job.FinishedAt = int64(o.eng.Now())
	r.err = err
	switch {
	case err != nil:
		r.job.State = StateFailed
		r.job.Err = err.Error()
	case r.cancelReq:
		r.job.State = StateCanceled
	default:
		r.job.State = StateDone
	}
	o.running = 0
	o.publish()
	o.kick()
}

// gate is the step boundary for paced jobs: it observes cancel requests,
// parks the continuation while paused, and otherwise proceeds.
func (o *Orchestrator) gate(r *jobRun, cont func()) {
	if r.cancelReq {
		o.finish(r, nil)
		return
	}
	if r.job.State == StatePaused {
		r.parked = cont
		return
	}
	cont()
}

// execImmediate runs crash/set-failed synchronously at submit time.
// Crash must kill in-flight commands, so it cannot be an event behind
// them in the queue.
func (o *Orchestrator) execImmediate(r *jobRun) {
	var err error
	switch r.job.Kind {
	case KindCrash:
		err = o.p.Crash()
	case KindSetFailed:
		if o.p.BIZA == nil {
			err = fmt.Errorf("admin: degraded mode requires a BIZA platform: %w", storerr.ErrNotSupported)
		} else {
			err = o.p.BIZA.SetDeviceFailed(r.job.Params.Device, r.job.Params.Failed)
		}
	}
	r.job.Progress = Progress{Done: 1, Total: 1}
	o.finish(r, err)
}

func (o *Orchestrator) exec(r *jobRun) {
	switch r.job.Kind {
	case KindReplace:
		o.execReplace(r)
	case KindScrub:
		o.execScrub(r)
	case KindRecover:
		o.p.Recover(func(err error) { o.finish(r, err) })
	case KindVolumeResize, KindVolumeDelete:
		o.execVolume(r)
	}
}

func (o *Orchestrator) execReplace(r *jobRun) {
	p := r.job.Params
	ctl := core.RebuildControl{
		StripesPerStep: p.StripesPerStep,
		StepGap:        sim.Time(p.StepGapNanos),
		OnProgress: func(done, total int) {
			r.job.Progress = Progress{Done: int64(done), Total: int64(total), Detail: "stripes"}
			o.publish()
		},
		Gate: func(next func()) { o.gate(r, next) },
	}
	o.p.ReplaceDevicePaced(r.job.Params.Device, ctl, func(err error) { o.finish(r, err) })
}

func (o *Orchestrator) execScrub(r *jobRun) {
	dev := o.p.Dev
	if dev == nil {
		o.finish(r, fmt.Errorf("admin: %s has no block front-end to scrub: %w", o.p.Kind, storerr.ErrNotSupported))
		return
	}
	per := r.job.Params.BlocksPerStep
	if per <= 0 {
		per = 1024
	}
	gap := sim.Time(r.job.Params.GapNanos)
	total := dev.Blocks()
	r.job.Progress = Progress{Total: total, Detail: "blocks"}
	var lba int64
	var unreadable int64
	var step func()
	step = func() {
		n := per
		if rem := total - lba; int64(n) > rem {
			n = int(rem)
		}
		at := lba
		dev.Read(at, n, func(res blockdev.ReadResult) {
			if res.Err != nil {
				unreadable += int64(n)
			}
			lba = at + int64(n)
			r.job.Progress.Done = lba
			o.publish()
			if lba >= total {
				if unreadable > 0 {
					o.finish(r, fmt.Errorf("admin: scrub found %d unreadable blocks: %w", unreadable, storerr.ErrUnreadable))
				} else {
					o.finish(r, nil)
				}
				return
			}
			next := func() { o.gate(r, step) }
			if gap > 0 {
				o.eng.After(gap, next)
			} else {
				next()
			}
		})
	}
	step()
}

func (o *Orchestrator) execVolume(r *jobRun) {
	var vm *volume.Manager
	if o.vols != nil {
		vm = o.vols()
	}
	if vm == nil {
		o.finish(r, fmt.Errorf("admin: no volume manager configured: %w", storerr.ErrNotSupported))
		return
	}
	var err error
	switch r.job.Kind {
	case KindVolumeResize:
		err = vm.Resize(r.job.Params.Volume, r.job.Params.NewBlocks)
	case KindVolumeDelete:
		err = vm.Delete(r.job.Params.Volume)
	}
	r.job.Progress = Progress{Done: 1, Total: 1}
	o.finish(r, err)
}
