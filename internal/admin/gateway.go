package admin

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"biza/internal/storerr"
)

// Gateway is the HTTP-facing half of the injection boundary. Handlers
// (any goroutine) stage commands and read job snapshots here; the
// simulation driver calls Drain on the engine goroutine to move staged
// commands into the orchestrator at a virtual-time boundary of its
// choosing. Job ids are assigned at staging time from the orchestrator's
// allocator, so a submitter gets its id back immediately — before the
// command has crossed into the simulation — and can poll it.
//
// Gateway implements the ops server's JobSink contract structurally
// (byte-JSON in, byte-JSON out), keeping ops free of an admin import.
type Gateway struct {
	orc *Orchestrator

	mu     sync.Mutex
	staged []Command
	// pending holds synthesized "pending" views for jobs staged but not
	// yet injected, so GET /v1/jobs/{id} works in the staging window.
	pending map[uint64]Job
}

// NewGateway returns a gateway feeding the orchestrator.
func NewGateway(orc *Orchestrator) *Gateway {
	return &Gateway{orc: orc, pending: make(map[uint64]Job)}
}

// SubmitJob stages a submit command. kind is the job kind; params is a
// JSON object matching admin.Params (empty or nil for defaults). The
// returned id is live immediately for status polls. Implements
// ops.JobSink.
func (g *Gateway) SubmitJob(kind string, params []byte) (uint64, error) {
	switch Kind(kind) {
	case KindReplace, KindScrub, KindVolumeResize, KindVolumeDelete,
		KindCrash, KindRecover, KindSetFailed:
	default:
		return 0, fmt.Errorf("admin: unknown job kind %q: %w", kind, storerr.ErrBadArgument)
	}
	var p Params
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return 0, fmt.Errorf("admin: bad params: %v: %w", err, storerr.ErrBadArgument)
		}
	}
	id := atomic.AddUint64(g.orc.idAllocator(), 1)
	g.mu.Lock()
	g.staged = append(g.staged, Command{Verb: VerbSubmit, JobID: id, Kind: Kind(kind), Params: p})
	g.pending[id] = Job{ID: id, Kind: Kind(kind), Params: p, State: StatePending}
	g.mu.Unlock()
	return id, nil
}

// stageVerb stages a cancel/pause/resume for a known job id.
func (g *Gateway) stageVerb(verb string, id uint64) error {
	g.mu.Lock()
	_, known := g.pending[id]
	g.mu.Unlock()
	if !known {
		if _, ok := g.orc.Job(id); !ok {
			return fmt.Errorf("admin: job %d: %w", id, storerr.ErrNotFound)
		}
	}
	g.mu.Lock()
	g.staged = append(g.staged, Command{Verb: verb, JobID: id})
	g.mu.Unlock()
	return nil
}

// CancelJob stages a cancel. Implements ops.JobSink.
func (g *Gateway) CancelJob(id uint64) error { return g.stageVerb(VerbCancel, id) }

// PauseJob stages a pause. Implements ops.JobSink.
func (g *Gateway) PauseJob(id uint64) error { return g.stageVerb(VerbPause, id) }

// ResumeJob stages a resume. Implements ops.JobSink.
func (g *Gateway) ResumeJob(id uint64) error { return g.stageVerb(VerbResume, id) }

// JobJSON returns one job's JSON view — the orchestrator's published
// snapshot, or the synthesized pending view while the submit is still
// staged. Implements ops.JobSink.
func (g *Gateway) JobJSON(id uint64) ([]byte, bool) {
	if j, ok := g.orc.Job(id); ok {
		b, _ := json.Marshal(j)
		return b, true
	}
	g.mu.Lock()
	j, ok := g.pending[id]
	g.mu.Unlock()
	if !ok {
		return nil, false
	}
	b, _ := json.Marshal(j)
	return b, true
}

// JobsJSON returns the JSON array of all jobs: injected jobs in
// submission order, then still-staged pending ones in id order.
// Implements ops.JobSink.
func (g *Gateway) JobsJSON() []byte {
	jobs := g.orc.Jobs()
	g.mu.Lock()
	for _, c := range g.staged {
		if c.Verb == VerbSubmit {
			if j, ok := g.pending[c.JobID]; ok {
				jobs = append(jobs, j)
			}
		}
	}
	g.mu.Unlock()
	b, _ := json.Marshal(jobs)
	if jobs == nil {
		return []byte("[]")
	}
	return b
}

// Staged reports how many commands await injection.
func (g *Gateway) Staged() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.staged)
}

// Drain moves every staged command into the orchestrator at the current
// virtual time. Must run on the engine goroutine — this call IS the
// injection boundary, and where in virtual time the driver places it
// fully determines the run.
func (g *Gateway) Drain() {
	g.mu.Lock()
	cmds := g.staged
	g.staged = nil
	for _, c := range cmds {
		delete(g.pending, c.JobID)
	}
	g.mu.Unlock()
	g.orc.Inject(cmds)
}
