package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanLifecycleAndRecords(t *testing.T) {
	tr := New(Config{})
	span := tr.SpanBegin(100, LayerNVMe, OpWrite, 0, 3, 64, 16)
	if span == 0 {
		t.Fatal("span id must be nonzero")
	}
	tr.Mark(span, 100, 150, LayerZNS, PhaseBus, 0, 3, 1)
	tr.SpanEnd(span, 200, false)
	tr.Event(200, LayerZNS, EvZoneState, 0, 3, 1, 4, 0)
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[0].Kind != RecSpanBegin || recs[1].Kind != RecMark ||
		recs[2].Kind != RecSpanEnd || recs[3].Kind != RecEvent {
		t.Fatalf("record kinds = %v %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind, recs[3].Kind)
	}
}

func TestRingDropsOldest(t *testing.T) {
	tr := New(Config{Capacity: 8})
	for i := 0; i < 20; i++ {
		tr.Event(int64(i), LayerZNS, EvZoneReset, 0, i, 0, 0, 0)
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", tr.Dropped())
	}
	recs := tr.Records()
	if recs[0].TS != 12 || recs[len(recs)-1].TS != 19 {
		t.Fatalf("ring window = [%d, %d], want [12, 19]", recs[0].TS, recs[len(recs)-1].TS)
	}
}

func TestSamplingKeepsEventsDropsSpans(t *testing.T) {
	tr := New(Config{SampleN: 4})
	var kept int
	for i := 0; i < 16; i++ {
		if span := tr.SpanBegin(int64(i), LayerNVMe, OpWrite, 0, 0, 0, 1); span != 0 {
			kept++
			tr.SpanEnd(span, int64(i)+1, false)
		}
		tr.Event(int64(i), LayerZNS, EvZoneReset, 0, i, 0, 0, 0)
	}
	if kept != 4 {
		t.Fatalf("sampled spans = %d, want 4 of 16", kept)
	}
	var events int
	for _, r := range tr.Records() {
		if r.Kind == RecEvent {
			events++
		}
	}
	if events != 16 {
		t.Fatalf("events = %d, want all 16 (never sampled)", events)
	}
}

func TestProbeStats(t *testing.T) {
	tr := New(Config{})
	qd := ProbeKey(ProbeQueueDepth, 0, 0)
	busy := ProbeKey(ProbeChanWriteBusy, 1, 2)
	tr.Counter(10, qd, 3)
	tr.Counter(20, qd, 7) // gauge: max wins
	tr.Counter(30, qd, 5)
	tr.Counter(30, busy, 1000) // counter: last wins
	st := tr.ProbeStats()
	if len(st) != 2 {
		t.Fatalf("probes = %d, want 2", len(st))
	}
	byName := map[string]float64{}
	for _, p := range st {
		byName[p.Name] = p.Value
	}
	if byName["qd/dev0"] != 7 {
		t.Fatalf("gauge = %v, want max 7 (%v)", byName["qd/dev0"], st)
	}
	if byName["chan_write_busy_ns/dev1/ch2"] != 1000 {
		t.Fatalf("counter = %v, want 1000 (%v)", byName["chan_write_busy_ns/dev1/ch2"], st)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	tr := New(Config{})
	calls := 0
	tr.OnFinalize(func() { calls++ })
	tr.Finalize()
	tr.Finalize()
	if calls != 1 {
		t.Fatalf("finalize hooks ran %d times, want 1", calls)
	}
}

// buildSample constructs a small trace exercising every record kind.
func buildSample() *Trace {
	tr := New(Config{})
	tr.SetName("test/0/BIZA")
	span := tr.SpanBegin(1000, LayerNVMe, OpWrite, 0, 2, 128, 16)
	tr.Mark(span, 1000, 1500, LayerZNS, PhaseXfer, 0, 2, -1)
	tr.Segment(1500, 2500, LayerZNS, SegProgramDie, 0, 2, 1, 16)
	tr.Event(2500, LayerZNS, EvZRWACommit, 0, 2, 64, 16, CommitImplicit)
	tr.Counter(2500, ProbeKey(ProbeOpenZones, 0, 0), 3)
	tr.SpanEnd(span, 3000, false)
	tr.Finalize()
	return tr
}

func TestPerfettoWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, []*Trace{buildSample()}); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range evs {
		phases[ev["ph"].(string)]++
	}
	for _, want := range []string{"M", "b", "e", "X", "i", "C"} {
		if phases[want] == 0 {
			t.Fatalf("no %q events in output (got %v)", want, phases)
		}
	}
}

func TestJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*Trace{buildSample()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // meta + 6 records
		t.Fatalf("lines = %d, want 7:\n%s", len(lines), buf.String())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d invalid: %v: %s", i+1, err, ln)
		}
	}
}

func TestExplainBothFormats(t *testing.T) {
	for _, format := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"perfetto", func(b *bytes.Buffer) error { return WritePerfetto(b, []*Trace{buildSample()}) }},
		{"jsonl", func(b *bytes.Buffer) error { return WriteJSONL(b, []*Trace{buildSample()}) }},
	} {
		var buf bytes.Buffer
		if err := format.write(&buf); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := Explain(&buf, &out, 5); err != nil {
			t.Fatalf("%s: %v", format.name, err)
		}
		report := out.String()
		for _, want := range []string{"test/0/BIZA", "nvme write", "zrwa-commit/implicit", "open_zones/dev0"} {
			if !strings.Contains(report, want) {
				t.Errorf("%s explain output missing %q:\n%s", format.name, want, report)
			}
		}
	}
}
