package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Explain reads a trace previously exported with WritePerfetto or
// WriteJSONL (format auto-detected) and prints, per traced engine, the top
// contention sources: service tracks ranked by busy time, span latency by
// layer/operation, zone event counts, and final probe values.
func Explain(r io.Reader, w io.Writer, top int) error {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(1)
	if err != nil {
		return fmt.Errorf("empty trace: %w", err)
	}
	var procs []*explainProc
	if head[0] == '[' {
		procs, err = parsePerfetto(br)
	} else {
		procs, err = parseJSONL(br)
	}
	if err != nil {
		return err
	}
	if top <= 0 {
		top = 5
	}
	for _, p := range procs {
		p.write(w, top)
	}
	return nil
}

// explainProc accumulates one traced engine's aggregates.
type explainProc struct {
	pid  int
	name string

	minTS, maxTS int64
	haveTS       bool

	busy      map[string]int64 // track -> busy ns
	busyCount map[string]int   // track -> slice count

	spanStart map[uint64]int64  // open spans
	spanName  map[uint64]string // open span -> "layer op"
	spanSum   map[string]int64  // "layer op" -> total latency ns
	spanCount map[string]int
	spanErr   int

	events   map[string]int // event name (with reason suffix) -> count
	counters map[string]int64
}

func newExplainProc(pid int) *explainProc {
	return &explainProc{
		pid:       pid,
		busy:      map[string]int64{},
		busyCount: map[string]int{},
		spanStart: map[uint64]int64{},
		spanName:  map[uint64]string{},
		spanSum:   map[string]int64{},
		spanCount: map[string]int{},
		events:    map[string]int{},
		counters:  map[string]int64{},
	}
}

func (p *explainProc) see(ts int64) {
	if !p.haveTS || ts < p.minTS {
		p.minTS = ts
	}
	if !p.haveTS || ts > p.maxTS {
		p.maxTS = ts
	}
	p.haveTS = true
}

func (p *explainProc) addSlice(track string, start, dur int64) {
	p.see(start)
	p.see(start + dur)
	p.busy[track] += dur
	p.busyCount[track]++
}

func (p *explainProc) beginSpan(id uint64, name string, ts int64) {
	p.see(ts)
	p.spanStart[id] = ts
	p.spanName[id] = name
}

func (p *explainProc) endSpan(id uint64, ts int64, failed bool) {
	p.see(ts)
	start, ok := p.spanStart[id]
	if !ok {
		return
	}
	name := p.spanName[id]
	delete(p.spanStart, id)
	delete(p.spanName, id)
	p.spanSum[name] += ts - start
	p.spanCount[name]++
	if failed {
		p.spanErr++
	}
}

func (p *explainProc) write(w io.Writer, top int) {
	name := p.name
	if name == "" {
		name = fmt.Sprintf("trace%d", p.pid)
	}
	span := p.maxTS - p.minTS
	fmt.Fprintf(w, "=== %s (virtual span %.3f ms) ===\n", name, float64(span)/1e6)

	type kv struct {
		k string
		v int64
	}
	tracks := make([]kv, 0, len(p.busy))
	for k, v := range p.busy {
		tracks = append(tracks, kv{k, v})
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].v != tracks[j].v {
			return tracks[i].v > tracks[j].v
		}
		return tracks[i].k < tracks[j].k
	})
	if len(tracks) > 0 {
		fmt.Fprintf(w, "  top contention sources (busy time):\n")
		for i, t := range tracks {
			if i >= top {
				break
			}
			util := 0.0
			if span > 0 {
				util = 100 * float64(t.v) / float64(span)
			}
			fmt.Fprintf(w, "    %-24s %10.3f ms busy  (%5.1f%% of span, %d slices)\n",
				t.k, float64(t.v)/1e6, util, p.busyCount[t.k])
		}
	}

	names := make([]string, 0, len(p.spanCount))
	for k := range p.spanCount {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "  I/O spans:\n")
		for _, n := range names {
			c := p.spanCount[n]
			fmt.Fprintf(w, "    %-24s n=%-8d mean latency %10.3f us\n",
				n, c, float64(p.spanSum[n])/float64(c)/1e3)
		}
	}
	if p.spanErr > 0 {
		fmt.Fprintf(w, "    failed spans: %d\n", p.spanErr)
	}
	if len(p.spanStart) > 0 {
		fmt.Fprintf(w, "    unterminated spans: %d\n", len(p.spanStart))
	}

	evs := make([]string, 0, len(p.events))
	for k := range p.events {
		evs = append(evs, k)
	}
	sort.Strings(evs)
	if len(evs) > 0 {
		fmt.Fprintf(w, "  zone/GC events:\n")
		for _, e := range evs {
			fmt.Fprintf(w, "    %-24s %d\n", e, p.events[e])
		}
	}

	// Probes: zero-valued entries carry no signal; rank the rest by value
	// so the busiest channels surface first, and cap at top entries.
	ctrs := make([]kv, 0, len(p.counters))
	for k, v := range p.counters {
		if v != 0 {
			ctrs = append(ctrs, kv{k, v})
		}
	}
	sort.Slice(ctrs, func(i, j int) bool {
		if ctrs[i].v != ctrs[j].v {
			return ctrs[i].v > ctrs[j].v
		}
		return ctrs[i].k < ctrs[j].k
	})
	if len(ctrs) > 0 {
		fmt.Fprintf(w, "  probes (final, nonzero):\n")
		for i, c := range ctrs {
			if i >= top {
				fmt.Fprintf(w, "    ... %d more\n", len(ctrs)-i)
				break
			}
			fmt.Fprintf(w, "    %-32s %d\n", c.k, c.v)
		}
	}
}

// perfettoEvent is the subset of trace_event fields Explain and
// Attribute need.
type perfettoEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	ID   uint64          `json:"id"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	TS   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func parsePerfetto(r io.Reader) ([]*explainProc, error) {
	dec := json.NewDecoder(r)
	if _, err := dec.Token(); err != nil { // opening '['
		return nil, fmt.Errorf("trace is not a JSON array: %w", err)
	}
	byPid := map[int]*explainProc{}
	var order []*explainProc
	proc := func(pid int) *explainProc {
		p, ok := byPid[pid]
		if !ok {
			p = newExplainProc(pid)
			byPid[pid] = p
			order = append(order, p)
		}
		return p
	}
	threadName := map[[2]int]string{}
	for dec.More() {
		var ev perfettoEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("bad trace event: %w", err)
		}
		p := proc(ev.Pid)
		switch ev.Ph {
		case "M":
			var args struct {
				Name string `json:"name"`
			}
			json.Unmarshal(ev.Args, &args)
			switch ev.Name {
			case "process_name":
				p.name = args.Name
			case "thread_name":
				threadName[[2]int{ev.Pid, ev.Tid}] = args.Name
			}
		case "X":
			start, err := usToNs(ev.TS)
			if err != nil {
				return nil, err
			}
			dur, err := usToNs(ev.Dur)
			if err != nil {
				return nil, err
			}
			track := threadName[[2]int{ev.Pid, ev.Tid}]
			if track == "" {
				track = fmt.Sprintf("tid%d", ev.Tid)
			}
			p.addSlice(track, start, dur)
		case "b":
			ts, err := usToNs(ev.TS)
			if err != nil {
				return nil, err
			}
			p.beginSpan(ev.ID, ev.Name, ts)
		case "e":
			ts, err := usToNs(ev.TS)
			if err != nil {
				return nil, err
			}
			var args struct {
				Status string `json:"status"`
			}
			json.Unmarshal(ev.Args, &args)
			p.endSpan(ev.ID, ts, args.Status == "error")
		case "i":
			ts, err := usToNs(ev.TS)
			if err != nil {
				return nil, err
			}
			p.see(ts)
			name := ev.Name
			var args struct {
				Reason string `json:"reason"`
			}
			json.Unmarshal(ev.Args, &args)
			if args.Reason != "" {
				name += "/" + args.Reason
			}
			p.events[name]++
		case "C":
			ts, err := usToNs(ev.TS)
			if err != nil {
				return nil, err
			}
			p.see(ts)
			var args struct {
				Value int64 `json:"value"`
			}
			json.Unmarshal(ev.Args, &args)
			p.counters[ev.Name] = args.Value
		}
	}
	return order, nil
}

// jsonlLine is the union of WriteJSONL line shapes.
type jsonlLine struct {
	Trace  int    `json:"trace"`
	Rec    string `json:"rec"`
	Name   string `json:"name"`
	TS     int64  `json:"ts"`
	Span   uint64 `json:"span"`
	Layer  string `json:"layer"`
	Op     string `json:"op"`
	Phase  string `json:"phase"`
	Seg    string `json:"seg"`
	Event  string `json:"event"`
	Status string `json:"status"`
	Reason string `json:"reason"`
	Dev    int    `json:"dev"`
	Ch     int    `json:"ch"`
	Dur    int64  `json:"dur"`
	Probe  string `json:"probe"`
	Value  int64  `json:"value"`
}

func parseJSONL(r io.Reader) ([]*explainProc, error) {
	byTrace := map[int]*explainProc{}
	var order []*explainProc
	proc := func(n int) *explainProc {
		p, ok := byTrace[n]
		if !ok {
			p = newExplainProc(n)
			byTrace[n] = p
			order = append(order, p)
		}
		return p
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		p := proc(l.Trace)
		switch l.Rec {
		case "meta":
			p.name = l.Name
		case "span-begin":
			p.beginSpan(l.Span, l.Layer+" "+l.Op, l.TS)
		case "span-end":
			p.endSpan(l.Span, l.TS, l.Status == "error")
		case "mark":
			p.addSlice(jsonlTrack(l.Dev, l.Ch, l.Layer), l.TS, l.Dur)
		case "segment":
			p.addSlice(jsonlTrack(l.Dev, l.Ch, l.Layer), l.TS, l.Dur)
		case "event":
			p.see(l.TS)
			name := l.Event
			if l.Reason != "" {
				name += "/" + l.Reason
			}
			p.events[name]++
		case "counter":
			p.see(l.TS)
			p.counters[l.Probe] = l.Value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

func jsonlTrack(dev, ch int, layer string) string {
	if ch >= 0 {
		return fmt.Sprintf("dev%d ch%d", dev, ch)
	}
	if dev >= 0 {
		return fmt.Sprintf("dev%d %s", dev, layer)
	}
	return layer + " service"
}

// usToNs converts a fixed-point microsecond literal ("12.345") to integer
// nanoseconds without float round-trip.
func usToNs(n json.Number) (int64, error) {
	s := n.String()
	if s == "" {
		return 0, nil
	}
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	whole, frac := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac = s[:i], s[i+1:]
	}
	us, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q: %w", n, err)
	}
	for len(frac) < 3 {
		frac += "0"
	}
	ns, err := strconv.ParseInt(frac[:3], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q: %w", n, err)
	}
	v := us*1000 + ns
	if neg {
		v = -v
	}
	return v, nil
}
