package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// WriteJSONL serializes traces as one compact JSON object per line — a
// stream form suited to grep/jq pipelines and to `bizatrace explain`.
// Line order and field order are deterministic.
//
// Line schema (fields omitted when inapplicable):
//
//	{"trace":N,"ts":ns,"rec":"span-begin","span":id,"layer":L,"op":O,"dev":D,"zone":Z,"lba":A,"blocks":B}
//	{"trace":N,"ts":ns,"rec":"span-end","span":id,"status":"ok"|"error"}
//	{"trace":N,"ts":ns,"rec":"mark","span":id,"layer":L,"phase":P,"dev":D,"zone":Z,"ch":C,"dur":ns}
//	{"trace":N,"ts":ns,"rec":"segment","layer":L,"seg":S,"dev":D,"zone":Z,"ch":C,"dur":ns,"blocks":B}
//	{"trace":N,"ts":ns,"rec":"event","event":E,"layer":L,"dev":D,"zone":Z,...per-kind...}
//	{"trace":N,"ts":ns,"rec":"counter","probe":"name","value":V}
func WriteJSONL(w io.Writer, traces []*Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for ti, t := range traces {
		if t == nil {
			continue
		}
		name := t.Name()
		if name == "" {
			name = fmt.Sprintf("trace%d", ti+1)
		}
		fmt.Fprintf(bw, `{"trace":%d,"rec":"meta","name":%s,"dropped":%d}`+"\n",
			ti+1, quote(name), t.Dropped())
		recs := t.Records()
		sortRecords(recs)
		for _, r := range recs {
			writeJSONLRecord(bw, ti+1, r)
		}
	}
	return bw.Flush()
}

// TailJSONL renders the newest n retained records as JSONL lines (oldest
// of the tail first), using the same line schema as WriteJSONL with trace
// index 1. It serves live record tails (the ops /stream endpoint) without
// exporting the whole ring. Nil-safe.
func (t *Trace) TailJSONL(n int) []string {
	if t == nil || n <= 0 || len(t.recs) == 0 {
		return nil
	}
	recs := t.Records()
	sortRecords(recs)
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		buf.Reset()
		writeJSONLRecord(bw, 1, r)
		bw.Flush()
		out = append(out, strings.TrimSuffix(buf.String(), "\n"))
	}
	return out
}

func writeJSONLRecord(bw *bufio.Writer, trace int, r Record) {
	switch r.Kind {
	case RecSpanBegin:
		fmt.Fprintf(bw, `{"trace":%d,"ts":%d,"rec":"span-begin","span":%d,"layer":%s,"op":%s,"dev":%d,"zone":%d,"lba":%d,"blocks":%d}`+"\n",
			trace, r.TS, r.Span, quote(r.Layer.String()), quote(Op(r.Sub).String()), r.Dev, r.Zone, r.Arg0, r.Arg1)
	case RecSpanEnd:
		status := "ok"
		if r.Flag != 0 {
			status = "error"
		}
		fmt.Fprintf(bw, `{"trace":%d,"ts":%d,"rec":"span-end","span":%d,"status":%s}`+"\n",
			trace, r.TS, r.Span, quote(status))
	case RecMark:
		fmt.Fprintf(bw, `{"trace":%d,"ts":%d,"rec":"mark","span":%d,"layer":%s,"phase":%s,"dev":%d,"zone":%d,"ch":%d,"dur":%d}`+"\n",
			trace, r.TS, r.Span, quote(r.Layer.String()), quote(Phase(r.Sub).String()), r.Dev, r.Zone, r.Arg1, r.Arg0-r.TS)
	case RecSegment:
		fmt.Fprintf(bw, `{"trace":%d,"ts":%d,"rec":"segment","layer":%s,"seg":%s,"dev":%d,"zone":%d,"ch":%d,"dur":%d,"blocks":%d}`+"\n",
			trace, r.TS, quote(r.Layer.String()), quote(Seg(r.Sub).String()), r.Dev, r.Zone, r.Arg1, r.Arg0-r.TS, r.Flag)
	case RecEvent:
		fmt.Fprintf(bw, `{"trace":%d,"ts":%d,"rec":"event","event":%s,"layer":%s,"dev":%d,%s}`+"\n",
			trace, r.TS, quote(EventKind(r.Sub).String()), quote(r.Layer.String()), r.Dev, eventArgs(r))
	case RecCounter:
		fmt.Fprintf(bw, `{"trace":%d,"ts":%d,"rec":"counter","probe":%s,"value":%d}`+"\n",
			trace, r.TS, quote(ProbeName(r.Span)), r.Arg0)
	}
}
