package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildAttrTrace() *Trace {
	tr := New(Config{})
	tr.SetName("attr-test")
	// Span 1: queue [0,100) and die [50,200) overlap on [50,100); the
	// deeper die stage must win that interval. [200,300) is uncovered.
	id1 := tr.SpanBegin(0, LayerBIZA, OpWrite, 0, 0, 0, 8)
	tr.Mark(id1, 0, 100, LayerNVMe, PhaseQueue, 0, 0, -1)
	tr.Mark(id1, 50, 200, LayerZNS, PhaseDie, 0, 0, 1)
	tr.SpanEnd(id1, 300, false)
	// Span 2: a QoS admission stall then queue time, 50ns unattributed.
	id2 := tr.SpanBegin(1000, LayerBIZA, OpWrite, 0, 0, 8, 8)
	tr.Mark(id2, 1000, 1100, LayerVolume, PhaseQoS, -1, -1, -1)
	tr.Mark(id2, 1100, 1150, LayerNVMe, PhaseQueue, 0, 0, -1)
	tr.SpanEnd(id2, 1200, false)
	// A read population in its own group.
	id3 := tr.SpanBegin(2000, LayerBIZA, OpRead, 0, 0, 16, 4)
	tr.Mark(id3, 2010, 2090, LayerZNS, PhaseDie, 0, 0, 2)
	tr.SpanEnd(id3, 2100, false)
	return tr
}

func attrFrom(t *testing.T, export func(*bytes.Buffer, []*Trace)) *Attribution {
	t.Helper()
	var buf bytes.Buffer
	export(&buf, []*Trace{buildAttrTrace()})
	a, err := Attribute(&buf)
	if err != nil {
		t.Fatalf("Attribute: %v", err)
	}
	return a
}

func checkAttr(t *testing.T, a *Attribution, format string) {
	t.Helper()
	if len(a.Procs) != 1 {
		t.Fatalf("%s: procs = %d, want 1", format, len(a.Procs))
	}
	p := a.Procs[0]
	if p.Name != "attr-test" {
		t.Fatalf("%s: proc name = %q", format, p.Name)
	}
	if a.Spans != 3 || a.Open != 0 {
		t.Fatalf("%s: spans=%d open=%d, want 3/0", format, a.Spans, a.Open)
	}
	if len(p.Groups) != 2 {
		t.Fatalf("%s: groups = %d, want 2", format, len(p.Groups))
	}
	// Sorted by name: "biza read" before "biza write".
	read, write := p.Groups[0], p.Groups[1]
	if read.Name != "biza read" || write.Name != "biza write" {
		t.Fatalf("%s: group order %q, %q", format, read.Name, write.Name)
	}

	// Write population: spans of 300 (queue=50, die=150, other=100) and
	// 200 (qos=100, queue=50, other=50).
	if got := write.E2E.Mean(); got != 250 {
		t.Fatalf("%s: write e2e mean = %v, want 250", format, got)
	}
	wantStage := map[int]float64{
		StageQoS:   50,
		StageQueue: 50,
		StageDie:   75,
		StageOther: 75,
	}
	for st, want := range wantStage {
		if got := write.Stage[st].Mean(); got != want {
			t.Fatalf("%s: write stage %s mean = %v, want %v",
				format, AttrStageNames[st], got, want)
		}
	}

	// The partition property: per-stage means sum exactly to the
	// end-to-end mean, for every group.
	for _, g := range p.Groups {
		var sum float64
		for _, h := range g.Stage {
			sum += h.Mean()
		}
		if math.Abs(sum-g.E2E.Mean()) > 1e-9 {
			t.Fatalf("%s: group %s stage means sum to %v, e2e mean %v",
				format, g.Name, sum, g.E2E.Mean())
		}
		if g.E2E.Count() == 0 {
			t.Fatalf("%s: group %s has no spans", format, g.Name)
		}
		for _, h := range g.Stage {
			if h.Count() != g.E2E.Count() {
				t.Fatalf("%s: group %s stage count %d != e2e count %d (every span must record every stage)",
					format, g.Name, h.Count(), g.E2E.Count())
			}
		}
	}

	// Single-span read group: percentiles are exact, so stage p50s sum
	// exactly to the e2e p50 — the strong form of the "sums within bucket
	// width" attribution guarantee.
	var p50sum int64
	for _, h := range read.Stage {
		p50sum += h.Percentile(50)
	}
	if e2e := read.E2E.Percentile(50); p50sum != e2e {
		t.Fatalf("%s: read stage p50 sum = %d, e2e p50 = %d", format, p50sum, e2e)
	}
}

func TestAttributeJSONL(t *testing.T) {
	a := attrFrom(t, func(b *bytes.Buffer, tr []*Trace) { WriteJSONL(b, tr) })
	checkAttr(t, a, "jsonl")
}

func TestAttributePerfetto(t *testing.T) {
	a := attrFrom(t, func(b *bytes.Buffer, tr []*Trace) { WritePerfetto(b, tr) })
	checkAttr(t, a, "perfetto")
}

func TestAttrReport(t *testing.T) {
	var buf bytes.Buffer
	WriteJSONL(&buf, []*Trace{buildAttrTrace()})
	var out bytes.Buffer
	if err := Attr(&buf, &out); err != nil {
		t.Fatalf("Attr: %v", err)
	}
	rep := out.String()
	for _, want := range []string{"attr-test", "biza write", "qos-stall", "unattributed", "p99_us"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestAttrNoSpans(t *testing.T) {
	if err := Attr(strings.NewReader("{}\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("Attr on spanless input should error")
	}
}

func TestAttributeOpenSpansCounted(t *testing.T) {
	tr := New(Config{})
	tr.SpanBegin(0, LayerBIZA, OpWrite, 0, 0, 0, 8) // never ended
	var buf bytes.Buffer
	WriteJSONL(&buf, []*Trace{tr})
	a, err := Attribute(&buf)
	if err != nil {
		t.Fatalf("Attribute: %v", err)
	}
	if a.Open != 1 || a.Spans != 0 {
		t.Fatalf("open=%d spans=%d, want 1/0", a.Open, a.Spans)
	}
}
