package obs

import "biza/internal/metrics"

// Virtual-time series support: an optional metrics.Sampler attached to a
// Trace. The sampler has no events of its own — Counter catches it up past
// any due ticks before applying each probe update (see Counter), so series
// content is a pure function of the deterministic probe emission stream.

// EnableSampler attaches a virtual-time series sampler. Every probe the
// trace has seen (or later sees) becomes a sampled source automatically,
// in probe-first-seen order; SampleFunc adds custom sources. Nil-safe;
// enabling twice replaces the sampler.
func (t *Trace) EnableSampler(cfg metrics.SamplerConfig) {
	if t == nil {
		return
	}
	t.sampler = metrics.NewSampler(cfg)
	for _, key := range t.probeSeq {
		t.registerProbeSeries(t.probes[key])
	}
}

// registerProbeSeries adds one probe aggregate as a sampler source. Both
// probe classes sample their last-written value: that is the live reading
// for a gauge and the cumulative total for a counter (rates derive by
// differencing adjacent points).
func (t *Trace) registerProbeSeries(agg *probeAgg) {
	kind, _, _ := probeKeyParts(agg.key)
	mk := metrics.ProbeCounter
	if kind.gauge() {
		mk = metrics.ProbeGauge
	}
	t.sampler.Register(ProbeName(agg.key), mk, func() float64 { return float64(agg.last) })
}

// SampleFunc registers a custom series source sampled at every tick.
// Call order must be deterministic — it is the export order. Nil-safe,
// no-op without an enabled sampler.
func (t *Trace) SampleFunc(name string, kind metrics.ProbeKind, fn func() float64) {
	if t == nil || t.sampler == nil {
		return
	}
	t.sampler.Register(name, kind, fn)
}

// AdvanceSampler catches the sampler up to ts without recording a probe —
// platforms call it from Finalize hooks (or tests directly) so the series
// extend to the end of the run even when the tail is probe-quiet. Nil-safe.
func (t *Trace) AdvanceSampler(ts int64) {
	if t == nil || t.sampler == nil {
		return
	}
	t.sampler.Advance(ts)
}

// SeriesDumps exports the sampled series in registration order, labeled
// with the trace name. Nil when no sampler is enabled or nothing ticked.
func (t *Trace) SeriesDumps() []metrics.SeriesDump {
	if t == nil || t.sampler == nil {
		return nil
	}
	return t.sampler.Dump(t.name)
}
