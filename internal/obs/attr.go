package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"biza/internal/metrics"
)

// Per-stage latency attribution: decompose every exported span into an
// exclusive partition of named stages and fold the partitions into
// per-(layer, op) histograms — the "where did my p99 go" view.
//
// A span's marks are service intervals that may overlap (a striped write
// holds queue time on one device while another device's die is busy), so
// summing raw mark durations can exceed the span. Attribution instead
// sweeps the span's timeline and charges every instant to exactly ONE stage —
// the deepest phase active at that instant (die > bus > xfer > buffer >
// queue > qos-stall) — with uncovered time charged to "unattributed"
// (host-side submit/complete overhead and cross-layer handoff). The stage
// durations of one span therefore sum exactly to its end-to-end latency,
// and per-stage means sum exactly to the end-to-end mean.

// Attribution stages, in lifecycle order. Every Phase maps to one stage;
// unattributed absorbs the remainder.
const (
	StageQoS = iota // token-bucket admission stall (volume layer)
	StageQueue
	StageXfer
	StageBus
	StageDie
	StageBuffer
	StageOther // span time no mark covers

	NumAttrStages
)

// AttrStageNames names the attribution stages, indexed by Stage constant.
var AttrStageNames = [NumAttrStages]string{
	"qos-stall", "queue", "xfer", "bus", "die", "buffer", "unattributed",
}

// attrStagePrio ranks stages for overlap resolution: the deepest active
// stage wins the instant. Higher = deeper.
var attrStagePrio = [NumAttrStages]int{1, 2, 4, 5, 6, 3, 0}

// attrStageOf maps an exported phase name to its stage, or -1.
func attrStageOf(phase string) int {
	for i, n := range AttrStageNames[:StageOther] {
		if n == phase {
			return i
		}
	}
	return -1
}

// AttrGroup aggregates one (layer, op) span population.
type AttrGroup struct {
	Name  string // "layer op", e.g. "biza write"
	E2E   *metrics.Histogram
	Stage [NumAttrStages]*metrics.Histogram // per-span attributed ns; every span records every stage (0 when absent)
}

func newAttrGroup(name string) *AttrGroup {
	g := &AttrGroup{Name: name, E2E: metrics.NewHistogram()}
	for i := range g.Stage {
		g.Stage[i] = metrics.NewHistogram()
	}
	return g
}

// AttrProc is one traced engine's attribution.
type AttrProc struct {
	Name   string
	Groups []*AttrGroup // sorted by group name
}

// Attribution is the parsed, attributed view of a trace export.
type Attribution struct {
	Procs []*AttrProc // in first-seen order
	Spans int         // spans attributed
	Open  int         // spans with a begin but no end (ring drop / in flight)
}

type attrIv struct {
	start, end int64
	stage      int
}

type attrSpan struct {
	begin int64
	group *AttrGroup
	ivs   []attrIv
}

type attrProcState struct {
	pid    int
	name   string
	groups map[string]*AttrGroup
	open   map[uint64]*attrSpan
}

type attrBuilder struct {
	byProc map[int]*attrProcState
	order  []*attrProcState
	spans  int
}

func newAttrBuilder() *attrBuilder {
	return &attrBuilder{byProc: map[int]*attrProcState{}}
}

func (b *attrBuilder) proc(pid int) *attrProcState {
	p, ok := b.byProc[pid]
	if !ok {
		p = &attrProcState{pid: pid, groups: map[string]*AttrGroup{}, open: map[uint64]*attrSpan{}}
		b.byProc[pid] = p
		b.order = append(b.order, p)
	}
	return p
}

func (p *attrProcState) begin(id uint64, name string, ts int64) {
	g, ok := p.groups[name]
	if !ok {
		g = newAttrGroup(name)
		p.groups[name] = g
	}
	p.open[id] = &attrSpan{begin: ts, group: g}
}

func (p *attrProcState) mark(id uint64, start, dur int64, phase string) {
	s, ok := p.open[id]
	if !ok {
		return // begin sampled out or overwritten in the ring
	}
	stage := attrStageOf(phase)
	if stage < 0 || dur < 0 {
		return
	}
	s.ivs = append(s.ivs, attrIv{start: start, end: start + dur, stage: stage})
}

func (b *attrBuilder) end(p *attrProcState, id uint64, ts int64) {
	s, ok := p.open[id]
	if !ok {
		return
	}
	delete(p.open, id)
	b.spans++
	attributeSpan(s, ts)
}

// attributeSpan sweeps span s's timeline [begin, end] and records the
// exclusive per-stage partition plus end-to-end latency.
func attributeSpan(s *attrSpan, end int64) {
	total := end - s.begin
	if total < 0 {
		total = 0
	}
	var stageDur [NumAttrStages]int64

	// Clip intervals to the span and collect sweep boundaries.
	bounds := make([]int64, 0, 2*len(s.ivs))
	ivs := s.ivs[:0]
	for _, iv := range s.ivs {
		if iv.start < s.begin {
			iv.start = s.begin
		}
		if iv.end > end {
			iv.end = end
		}
		if iv.end <= iv.start {
			continue
		}
		ivs = append(ivs, iv)
		bounds = append(bounds, iv.start, iv.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	// For each elementary interval, charge the deepest active stage.
	var covered int64
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi == lo {
			continue
		}
		best := -1
		for _, iv := range ivs {
			if iv.start <= lo && iv.end >= hi {
				if best < 0 || attrStagePrio[iv.stage] > attrStagePrio[best] {
					best = iv.stage
				}
			}
		}
		if best >= 0 {
			stageDur[best] += hi - lo
			covered += hi - lo
		}
	}
	stageDur[StageOther] = total - covered
	if stageDur[StageOther] < 0 {
		stageDur[StageOther] = 0 // marks outrunning the span (clock skew cannot happen; defensive)
	}

	s.group.E2E.Record(total)
	for st, d := range stageDur {
		s.group.Stage[st].Record(d)
	}
}

func (b *attrBuilder) finish() *Attribution {
	a := &Attribution{Spans: b.spans}
	for _, p := range b.order {
		names := make([]string, 0, len(p.groups))
		for n := range p.groups {
			names = append(names, n)
		}
		sort.Strings(names)
		ap := &AttrProc{Name: p.name}
		if ap.Name == "" {
			ap.Name = fmt.Sprintf("trace%d", p.pid)
		}
		for _, n := range names {
			ap.Groups = append(ap.Groups, p.groups[n])
		}
		a.Procs = append(a.Procs, ap)
		a.Open += len(p.open)
	}
	return a
}

// Attribute reads a trace exported with WritePerfetto or WriteJSONL
// (format auto-detected) and computes per-stage latency attribution.
func Attribute(r io.Reader) (*Attribution, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("empty trace: %w", err)
	}
	b := newAttrBuilder()
	if head[0] == '[' {
		err = b.feedPerfetto(br)
	} else {
		err = b.feedJSONL(br)
	}
	if err != nil {
		return nil, err
	}
	return b.finish(), nil
}

func (b *attrBuilder) feedJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(line, &l); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		p := b.proc(l.Trace)
		switch l.Rec {
		case "meta":
			p.name = l.Name
		case "span-begin":
			p.begin(l.Span, l.Layer+" "+l.Op, l.TS)
		case "mark":
			p.mark(l.Span, l.TS, l.Dur, l.Phase)
		case "span-end":
			b.end(p, l.Span, l.TS)
		}
	}
	return sc.Err()
}

func (b *attrBuilder) feedPerfetto(r io.Reader) error {
	dec := json.NewDecoder(r)
	if _, err := dec.Token(); err != nil { // opening '['
		return fmt.Errorf("trace is not a JSON array: %w", err)
	}
	for dec.More() {
		var ev perfettoEvent
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("bad trace event: %w", err)
		}
		p := b.proc(ev.Pid)
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				var args struct {
					Name string `json:"name"`
				}
				json.Unmarshal(ev.Args, &args)
				p.name = args.Name
			}
		case "b":
			ts, err := usToNs(ev.TS)
			if err != nil {
				return err
			}
			p.begin(ev.ID, ev.Name, ts)
		case "X":
			if ev.Cat != "phase" {
				continue // segments carry no span id
			}
			start, err := usToNs(ev.TS)
			if err != nil {
				return err
			}
			dur, err := usToNs(ev.Dur)
			if err != nil {
				return err
			}
			var args struct {
				Span uint64 `json:"span"`
			}
			json.Unmarshal(ev.Args, &args)
			p.mark(args.Span, start, dur, ev.Name)
		case "e":
			ts, err := usToNs(ev.TS)
			if err != nil {
				return err
			}
			b.end(p, ev.ID, ts)
		}
	}
	return nil
}

// WriteReport prints the attribution: per engine, per (layer, op), the
// end-to-end summary and every contributing stage with its share of total
// time, mean, p50, and p99. Stage means sum exactly to the end-to-end
// mean; stage percentiles are per-stage distributions (bucket-resolution).
func (a *Attribution) WriteReport(w io.Writer) {
	for _, p := range a.Procs {
		fmt.Fprintf(w, "=== %s ===\n", p.Name)
		for _, g := range p.Groups {
			e2e := g.E2E.Summarize()
			if e2e.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-24s n=%-8d e2e mean=%.3fus p50=%.3fus p99=%.3fus\n",
				g.Name, e2e.Count, e2e.Mean/1e3, float64(e2e.P50)/1e3, float64(e2e.P99)/1e3)
			fmt.Fprintf(w, "    %-14s %7s %12s %12s %12s\n", "stage", "share", "mean_us", "p50_us", "p99_us")
			for st, h := range g.Stage {
				s := h.Summarize()
				if s.Mean == 0 && st != StageOther {
					continue // stage never active for this population
				}
				share := 0.0
				if e2e.Mean > 0 {
					share = 100 * s.Mean / e2e.Mean
				}
				fmt.Fprintf(w, "    %-14s %6.1f%% %12.3f %12.3f %12.3f\n",
					AttrStageNames[st], share, s.Mean/1e3, float64(s.P50)/1e3, float64(s.P99)/1e3)
			}
		}
	}
	if a.Open > 0 {
		fmt.Fprintf(w, "unattributed open spans (no end record): %d\n", a.Open)
	}
}

// Attr reads a trace export and writes the per-stage attribution report —
// the engine behind `bizatrace attr`.
func Attr(r io.Reader, w io.Writer) error {
	a, err := Attribute(r)
	if err != nil {
		return err
	}
	if a.Spans == 0 {
		return fmt.Errorf("no completed spans in trace")
	}
	a.WriteReport(w)
	return nil
}
