package obs

import (
	"testing"

	"biza/internal/metrics"
)

func TestTraceSeriesFromProbes(t *testing.T) {
	tr := New(Config{})
	tr.SetName("eng0")
	tr.EnableSampler(metrics.SamplerConfig{Interval: 100, MaxPoints: 64})

	qd := ProbeKey(ProbeQueueDepth, 0, 0)
	busy := ProbeKey(ProbeChanWriteBusy, 0, 2)
	tr.Counter(0, qd, 1)     // tick 0 records pre-update values (0)
	tr.Counter(150, qd, 3)   // ticks through t=100 record qd=1
	tr.Counter(220, busy, 9) // late probe: backfilled with zeros
	tr.Counter(430, qd, 2)   // ticks 300, 400 record qd=3, busy=9

	d := tr.SeriesDumps()
	if len(d) != 2 {
		t.Fatalf("series = %d, want 2 (qd, busy)", len(d))
	}
	// Registration order is probe-first-seen order.
	if d[0].Name != ProbeName(qd) || d[1].Name != ProbeName(busy) {
		t.Fatalf("series order: %q, %q", d[0].Name, d[1].Name)
	}
	if d[0].Kind != metrics.ProbeGauge || d[1].Kind != metrics.ProbeCounter {
		t.Fatalf("series kinds: %v, %v", d[0].Kind, d[1].Kind)
	}
	if d[0].Trace != "eng0" {
		t.Fatalf("trace label = %q", d[0].Trace)
	}
	// Ticks at t=0,100,200,300,400 (the t=430 emission catches up through 400).
	wantQD := []float64{0, 1, 3, 3, 3}
	wantBusy := []float64{0, 0, 0, 9, 9}
	for i, want := range wantQD {
		if d[0].Points[i] != want {
			t.Fatalf("qd series %v, want %v", d[0].Points, wantQD)
		}
		if d[1].Points[i] != wantBusy[i] {
			t.Fatalf("busy series %v, want %v", d[1].Points, wantBusy)
		}
	}
	if len(d[0].Points) != 5 || len(d[1].Points) != 5 {
		t.Fatalf("series lengths %d/%d, want 5", len(d[0].Points), len(d[1].Points))
	}
}

func TestTraceSeriesEnableAfterProbes(t *testing.T) {
	tr := New(Config{})
	key := ProbeKey(ProbeOpenZones, 1, 0)
	tr.Counter(50, key, 4)
	tr.EnableSampler(metrics.SamplerConfig{Interval: 100, MaxPoints: 16})
	tr.Counter(250, key, 6)
	d := tr.SeriesDumps()
	if len(d) != 1 {
		t.Fatalf("series = %d, want 1", len(d))
	}
	// Ticks 0, 100, 200 all see the pre-update value 4.
	want := []float64{4, 4, 4}
	if len(d[0].Points) != len(want) {
		t.Fatalf("points %v, want %v", d[0].Points, want)
	}
	for i := range want {
		if d[0].Points[i] != want[i] {
			t.Fatalf("points %v, want %v", d[0].Points, want)
		}
	}
}

func TestTraceAdvanceSamplerExtendsSeries(t *testing.T) {
	tr := New(Config{})
	tr.EnableSampler(metrics.SamplerConfig{Interval: 100, MaxPoints: 16})
	key := ProbeKey(ProbeQueueDepth, 0, 0)
	tr.Counter(10, key, 5)
	tr.AdvanceSampler(510) // probe-quiet tail still gets sampled
	d := tr.SeriesDumps()
	if got := len(d[0].Points); got != 6 {
		t.Fatalf("points after AdvanceSampler = %d, want 6 (%v)", got, d[0].Points)
	}
	if last := d[0].Points[5]; last != 5 {
		t.Fatalf("tail value = %v, want 5", last)
	}
}

func TestTraceSeriesSampleFunc(t *testing.T) {
	tr := New(Config{})
	tr.EnableSampler(metrics.SamplerConfig{Interval: 10, MaxPoints: 16})
	v := 2.5
	tr.SampleFunc("custom/x", metrics.ProbeGauge, func() float64 { return v })
	tr.AdvanceSampler(25)
	d := tr.SeriesDumps()
	if len(d) != 1 || d[0].Name != "custom/x" || d[0].Points[0] != 2.5 {
		t.Fatalf("custom source dump: %+v", d)
	}
}

func TestTraceSeriesNilSafety(t *testing.T) {
	var tr *Trace
	tr.EnableSampler(metrics.SamplerConfig{})
	tr.SampleFunc("x", metrics.ProbeGauge, func() float64 { return 0 })
	tr.AdvanceSampler(100)
	if tr.SeriesDumps() != nil {
		t.Fatal("nil trace SeriesDumps should be nil")
	}
	on := New(Config{})
	if on.SeriesDumps() != nil {
		t.Fatal("sampler-less trace SeriesDumps should be nil")
	}
}

// Counter with a sampler enabled must stay allocation-free in steady state
// (after all probes have been seen once).
func TestCounterWithSamplerAllocFree(t *testing.T) {
	tr := New(Config{Capacity: 1 << 12})
	tr.EnableSampler(metrics.SamplerConfig{Interval: 100, MaxPoints: 128})
	key := ProbeKey(ProbeQueueDepth, 0, 0)
	tr.Counter(0, key, 1) // registration alloc happens here
	ts := int64(0)
	allocs := testing.AllocsPerRun(4000, func() {
		ts += 33
		tr.Counter(ts, key, ts%7)
	})
	if allocs != 0 {
		t.Fatalf("Counter with sampler allocates %.2f/op, want 0", allocs)
	}
}

func TestTailJSONL(t *testing.T) {
	tr := New(Config{})
	tr.SetName("x")
	id := tr.SpanBegin(100, LayerBIZA, OpWrite, 0, 1, 8, 4)
	tr.SpanEnd(id, 300, false)
	tr.Counter(400, ProbeKey(ProbeQueueDepth, 0, 0), 2)
	lines := tr.TailJSONL(2)
	if len(lines) != 2 {
		t.Fatalf("tail = %d lines, want 2", len(lines))
	}
	if want := `{"trace":1,"ts":400,"rec":"counter","probe":"qd/dev0","value":2}`; lines[1] != want {
		t.Fatalf("tail[1] = %s, want %s", lines[1], want)
	}
	if lines[0] == "" || lines[0][0] != '{' {
		t.Fatalf("tail[0] not JSONL: %s", lines[0])
	}
	var nilT *Trace
	if nilT.TailJSONL(5) != nil {
		t.Fatal("nil trace TailJSONL should be nil")
	}
}
