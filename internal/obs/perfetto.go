package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePerfetto serializes traces as Chrome/Perfetto trace_event JSON
// (JSON Array Format). Each Trace becomes one "process" (pid = index+1,
// named after the trace); inside it, spans render as async nestable
// begin/end pairs on per-layer tracks, phase marks and standalone segments
// as complete ("X") slices on per-(device, channel) tracks, typed events
// as instants on per-device zone tracks, and probes as counter series.
//
// Output is fully deterministic: records are stable-sorted by timestamp,
// every JSON object is emitted with a fixed field order, and timestamps
// are fixed-point microseconds with nanosecond precision.
func WritePerfetto(w io.Writer, traces []*Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	item := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for ti, t := range traces {
		if t == nil {
			continue
		}
		pid := ti + 1
		name := t.Name()
		if name == "" {
			name = fmt.Sprintf("trace%d", pid)
		}
		item(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, quote(name)))

		recs := t.Records()
		sortRecords(recs)

		// Thread ids are assigned per logical track in first-use order,
		// which is deterministic because the record stream is.
		tids := map[string]int{}
		tid := func(track string) int {
			id, ok := tids[track]
			if !ok {
				id = len(tids) + 1
				tids[track] = id
				item(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
					pid, id, quote(track)))
			}
			return id
		}

		for _, r := range recs {
			switch r.Kind {
			case RecSpanBegin:
				track := fmt.Sprintf("%s spans", r.Layer)
				item(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"b","id":%d,"pid":%d,"tid":%d,"ts":%s,"args":{"blocks":%d,"dev":%d,"lba":%d,"zone":%d}}`,
					quote(fmt.Sprintf("%s %s", r.Layer, Op(r.Sub))), quote(r.Layer.String()),
					r.Span, pid, tid(track), ts(r.TS), r.Arg1, r.Dev, r.Arg0, r.Zone))
			case RecSpanEnd:
				// The end event must land on the same track as its begin;
				// Perfetto matches async events by (cat, id) so cat must
				// cover every layer. tid is reused via the span's id from
				// the begin — but we do not track it; async events match
				// on id regardless of tid, so any tid on this pid works.
				status := "ok"
				if r.Flag != 0 {
					status = "error"
				}
				item(fmt.Sprintf(`{"name":"end","cat":"span","ph":"e","id":%d,"pid":%d,"tid":0,"ts":%s,"args":{"status":%s}}`,
					r.Span, pid, ts(r.TS), quote(status)))
			case RecMark:
				track := markTrack(r)
				item(fmt.Sprintf(`{"name":%s,"cat":"phase","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"layer":%s,"span":%d,"zone":%d}}`,
					quote(Phase(r.Sub).String()), pid, tid(track), ts(r.TS), ts(r.Arg0-r.TS),
					quote(r.Layer.String()), r.Span, r.Zone))
			case RecSegment:
				track := markTrack(r)
				item(fmt.Sprintf(`{"name":%s,"cat":"segment","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"blocks":%d,"layer":%s,"zone":%d}}`,
					quote(Seg(r.Sub).String()), pid, tid(track), ts(r.TS), ts(r.Arg0-r.TS),
					r.Flag, quote(r.Layer.String()), r.Zone))
			case RecEvent:
				track := fmt.Sprintf("dev%d zone events", r.Dev)
				item(fmt.Sprintf(`{"name":%s,"cat":"event","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{%s}}`,
					quote(EventKind(r.Sub).String()), pid, tid(track), ts(r.TS), eventArgs(r)))
			case RecCounter:
				item(fmt.Sprintf(`{"name":%s,"ph":"C","pid":%d,"tid":0,"ts":%s,"args":{"value":%d}}`,
					quote(ProbeName(r.Span)), pid, ts(r.TS), r.Arg0))
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// markTrack names the service track of a mark or segment record.
func markTrack(r Record) string {
	if r.Arg1 >= 0 {
		return fmt.Sprintf("dev%d ch%d", r.Dev, r.Arg1)
	}
	if r.Dev >= 0 {
		return fmt.Sprintf("dev%d %s", r.Dev, r.Layer)
	}
	return fmt.Sprintf("%s service", r.Layer)
}

// eventArgs renders the per-kind attributes of an event record with keys
// in fixed (alphabetical) order.
func eventArgs(r Record) string {
	switch EventKind(r.Sub) {
	case EvZoneState:
		return fmt.Sprintf(`"from":%s,"to":%s,"zone":%d`,
			quote(ZoneStateName(r.Arg0)), quote(ZoneStateName(r.Arg1)), r.Zone)
	case EvZoneReset:
		return fmt.Sprintf(`"erases":%d,"zone":%d`, r.Arg0, r.Zone)
	case EvZRWACommit:
		return fmt.Sprintf(`"blocks":%d,"reason":%s,"upto":%d,"zone":%d`,
			r.Arg1, quote(CommitReason(r.Flag)), r.Arg0, r.Zone)
	case EvGCVictim:
		return fmt.Sprintf(`"free_zones":%d,"valid":%d,"zone":%d`, r.Arg1, r.Arg0, r.Zone)
	case EvFault:
		return fmt.Sprintf(`"fault":%s,"lba":%d,"op":%s,"zone":%d`,
			quote(FaultKindName(r.Flag)), r.Arg1, quote(Op(r.Arg0).String()), r.Zone)
	case EvReconstruct:
		return fmt.Sprintf(`"failed":%d,"lbn":%d`, r.Arg1, r.Arg0)
	case EvMemberState:
		return fmt.Sprintf(`"from":%s,"to":%s`,
			quote(MemberStateName(r.Arg1)), quote(MemberStateName(r.Arg0)))
	case EvPowerLoss:
		return fmt.Sprintf(`"dropped":%d,"hardened":%d`, r.Arg0, r.Arg1)
	}
	return fmt.Sprintf(`"arg0":%d,"arg1":%d,"zone":%d`, r.Arg0, r.Arg1, r.Zone)
}

// sortRecords stable-sorts by timestamp so per-process output is
// monotonic even though service intervals are recorded at completion time.
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].TS < recs[j].TS })
}

// ts renders virtual nanoseconds as trace_event microseconds with exact
// nanosecond precision (fixed-point, no float formatting drift).
func ts(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	if neg {
		return "-" + s
	}
	return s
}

func quote(s string) string { return strconv.Quote(s) }
