package obs

import (
	"strings"
	"testing"
)

// Every ProbeKind must render a stable, non-fallback name: the JSONL
// exporter, the probe snapshot, and the ops /metrics endpoint all key on
// it, so a probe added without a ProbeName case would silently export
// under the "probe%d" placeholder.
func TestProbeNameExhaustive(t *testing.T) {
	for kind := ProbeKind(0); kind < numProbeKinds; kind++ {
		name := ProbeName(ProbeKey(kind, 3, 1))
		if name == "" {
			t.Fatalf("ProbeKind %d renders empty name", kind)
		}
		if strings.HasPrefix(name, "probe") {
			t.Fatalf("ProbeKind %d falls through to placeholder name %q — add a ProbeName case", kind, name)
		}
		if strings.ContainsAny(name, " \"\\\n") {
			t.Fatalf("ProbeKind %d name %q contains characters unsafe for JSONL/Prometheus export", kind, name)
		}
	}
}

// The enum String methods feed every exporter; a value added without a
// case would serialize as "unknown" and silently corrupt trace artifacts.
func TestEnumStringsExhaustive(t *testing.T) {
	for l := Layer(0); l < numLayers; l++ {
		if l.String() == "unknown" {
			t.Fatalf("Layer %d has no String case", l)
		}
	}
	for o := Op(0); o < numOps; o++ {
		if o.String() == "unknown" {
			t.Fatalf("Op %d has no String case", o)
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		if p.String() == "unknown" {
			t.Fatalf("Phase %d has no String case", p)
		}
	}
	for s := Seg(0); s < numSegs; s++ {
		if s.String() == "unknown" {
			t.Fatalf("Seg %d has no String case", s)
		}
	}
	for e := EventKind(0); e < numEventKinds; e++ {
		if e.String() == "unknown" {
			t.Fatalf("EventKind %d has no String case", e)
		}
	}
}
