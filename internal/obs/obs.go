// Package obs is the virtual-time observability layer: per-I/O spans,
// typed zone/GC event records, and counter/gauge probes, captured into a
// fixed-capacity ring of flat records with no allocation on the hot path.
//
// Every layer of the simulated storage stack (nvme queue, zns device, ftl
// device, and the array engines) holds an optional *Trace; all record
// methods are nil-receiver safe, so an untraced run pays only a nil check
// per call site. Timestamps are virtual nanoseconds from the simulation
// engine that owns the traced platform, which makes trace output a pure
// function of (seed, experiment, point): byte-identical at any worker
// count.
//
// One Trace covers one simulation engine (one assembled platform). A
// benchmark sweep produces a list of Traces in canonical point order;
// WritePerfetto and WriteJSONL serialize such a list deterministically.
package obs

import (
	"fmt"
	"sort"

	"biza/internal/metrics"
)

// SpanID identifies one traced I/O. The zero SpanID means "not traced"
// (tracer disabled, or the span was sampled out); Mark and SpanEnd ignore
// it, so call sites never branch on sampling themselves.
type SpanID = uint64

// Layer identifies the stack layer that recorded a span or segment.
type Layer uint8

// Stack layers.
const (
	LayerNVMe Layer = iota
	LayerZNS
	LayerFTL
	LayerBIZA
	LayerRAIZN
	LayerZapRAID
	LayerVolume

	numLayers // sentinel for exhaustiveness tests; keep last
)

func (l Layer) String() string {
	switch l {
	case LayerNVMe:
		return "nvme"
	case LayerZNS:
		return "zns"
	case LayerFTL:
		return "ftl"
	case LayerBIZA:
		return "biza"
	case LayerRAIZN:
		return "raizn"
	case LayerZapRAID:
		return "zapraid"
	case LayerVolume:
		return "volume"
	}
	return "unknown"
}

// Op is the operation a span covers.
type Op uint8

// Span operations.
const (
	OpWrite Op = iota
	OpRead
	OpAppend
	OpReset

	numOps // sentinel for exhaustiveness tests; keep last
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpAppend:
		return "append"
	case OpReset:
		return "reset"
	}
	return "unknown"
}

// Phase is one service interval inside a span's lifecycle.
type Phase uint8

// Span phases, in lifecycle order: QoS admission stall, queueing in the
// driver, the host-device transfer link, the flash channel bus, the die
// program/read pipeline, and the ZRWA/DRAM buffer write.
const (
	PhaseQueue Phase = iota
	PhaseXfer
	PhaseBus
	PhaseDie
	PhaseBuffer
	// PhaseQoS: time a volume-layer op spent stalled on token-bucket
	// admission before entering the fair queue.
	PhaseQoS

	numPhases // sentinel for exhaustiveness tests; keep last
)

func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhaseXfer:
		return "xfer"
	case PhaseBus:
		return "bus"
	case PhaseDie:
		return "die"
	case PhaseBuffer:
		return "buffer"
	case PhaseQoS:
		return "qos-stall"
	}
	return "unknown"
}

// Seg classifies standalone service segments: device-internal work not tied
// to one host I/O, which is exactly the hidden traffic (ZRWA flush programs,
// GC erases) that causes cross-I/O interference.
type Seg uint8

// Standalone segments.
const (
	SegProgramBus Seg = iota // channel bus transfer of a ZRWA commit batch
	SegProgramDie            // die program of a ZRWA commit batch
	SegErase                 // per-die zone reset erase

	numSegs // sentinel for exhaustiveness tests; keep last
)

func (s Seg) String() string {
	switch s {
	case SegProgramBus:
		return "program-bus"
	case SegProgramDie:
		return "program-die"
	case SegErase:
		return "erase"
	}
	return "unknown"
}

// EventKind is a typed instantaneous event.
type EventKind uint8

// Event kinds.
const (
	// EvZoneState: a zone changed state. Arg0 = old state, Arg1 = new
	// state (zns.ZoneState numbering).
	EvZoneState EventKind = iota
	// EvZoneReset: a zone was erased. Arg0 = resulting erase count.
	EvZoneReset
	// EvZRWACommit: a ZRWA window commit. Arg0 = new committed boundary
	// (blocks), Arg1 = blocks committed, Flag = commit reason.
	EvZRWACommit
	// EvGCVictim: the host engine selected a GC victim zone. Arg0 = live
	// chunks in the victim, Arg1 = free zones remaining on the device.
	EvGCVictim
	// EvFault: the fault layer injected a failure into a delivered
	// command. Arg0 = op (obs.Op numbering), Arg1 = lba (-1 none),
	// Flag = fault kind (fault.Kind numbering, see FaultKindName).
	EvFault
	// EvReconstruct: the array served a chunk by parity reconstruction
	// instead of reading a failed member. Dev = the failed member,
	// Arg0 = logical block number, Arg1 = 0 on success / 1 on failure.
	EvReconstruct
	// EvMemberState: an array member changed health state. Arg0 = new
	// state, Arg1 = old state (MemberStateName numbering).
	EvMemberState
	// EvPowerLoss: the device lost power. Arg0 = unacknowledged buffer
	// blocks dropped, Arg1 = pending blocks hardened by the capacitor
	// flush.
	EvPowerLoss

	numEventKinds // sentinel for exhaustiveness tests; keep last
)

func (e EventKind) String() string {
	switch e {
	case EvZoneState:
		return "zone-state"
	case EvZoneReset:
		return "zone-reset"
	case EvZRWACommit:
		return "zrwa-commit"
	case EvGCVictim:
		return "gc-victim"
	case EvFault:
		return "fault"
	case EvReconstruct:
		return "reconstruct"
	case EvMemberState:
		return "member-state"
	case EvPowerLoss:
		return "power-loss"
	}
	return "unknown"
}

// faultKindNames mirrors fault.Kind numbering (obs cannot import fault:
// fault holds a *Trace). Keep in sync with internal/fault/fault.go.
var faultKindNames = []string{
	"transient", "latency", "unreadable", "device-death", "power-loss",
}

// FaultKindName names a fault.Kind value carried in an EvFault record.
func FaultKindName(f uint8) string {
	if int(f) < len(faultKindNames) {
		return faultKindNames[f]
	}
	return "unknown"
}

// memberStateNames mirrors core.MemberState numbering. Keep in sync with
// internal/core/health.go.
var memberStateNames = []string{"healthy", "degraded", "rebuilding"}

// MemberStateName names a core.MemberState value carried in an
// EvMemberState record.
func MemberStateName(v int64) string {
	if v >= 0 && int(v) < len(memberStateNames) {
		return memberStateNames[v]
	}
	return "unknown"
}

// ZRWA commit reasons (Record.Flag of EvZRWACommit).
const (
	CommitImplicit uint8 = iota // window shifted by a write beyond it
	CommitExplicit              // explicit COMMIT ZRWA command
	CommitClose                 // zone close flushed the window
	CommitFinish                // zone finish flushed the window
)

// CommitReason names a commit reason flag.
func CommitReason(f uint8) string {
	switch f {
	case CommitImplicit:
		return "implicit"
	case CommitExplicit:
		return "explicit"
	case CommitClose:
		return "close"
	case CommitFinish:
		return "finish"
	}
	return "unknown"
}

// zoneStateNames mirrors zns.ZoneState numbering (obs cannot import zns:
// zns holds a *Trace). Keep in sync with internal/zns/device.go.
var zoneStateNames = []string{
	"empty", "implicit-open", "explicit-open", "closed", "full", "read-only", "offline",
}

// ZoneStateName names a zns.ZoneState value carried in an EvZoneState record.
func ZoneStateName(v int64) string {
	if v >= 0 && int(v) < len(zoneStateNames) {
		return zoneStateNames[v]
	}
	return "unknown"
}

// RecKind discriminates ring records.
type RecKind uint8

// Record kinds.
const (
	RecSpanBegin RecKind = iota
	RecSpanEnd
	RecMark    // service interval [TS, Arg0) inside span Span, Sub = Phase
	RecSegment // standalone service interval [TS, Arg0), Sub = Seg
	RecEvent   // instantaneous typed event, Sub = EventKind
	RecCounter // probe sample, Span = probe key, Arg0 = value
)

// Record is one flat ring entry. Field use by kind:
//
//	SpanBegin: Span=id  Sub=Op        Arg0=lba    Arg1=blocks
//	SpanEnd:   Span=id               Flag=1 on error
//	Mark:      Span=id  Sub=Phase     Arg0=end ts Arg1=channel (-1 none)
//	Segment:            Sub=Seg       Arg0=end ts Arg1=channel  Flag=blocks
//	Event:              Sub=EventKind Arg0, Arg1, Flag per kind
//	Counter:   Span=probe key         Arg0=value
type Record struct {
	TS    int64 // virtual ns
	Span  uint64
	Arg0  int64
	Arg1  int64
	Dev   int32
	Zone  int32
	Kind  RecKind
	Layer Layer
	Sub   uint8
	Flag  uint8
}

// ProbeKind identifies a probe family. Together with (dev, aux) it forms
// the probe key, so hot-path emission never touches a string.
type ProbeKind uint8

// Probe families.
const (
	// ProbeQueueDepth: in-flight commands in one driver queue (gauge).
	ProbeQueueDepth ProbeKind = iota
	// ProbeOpenZones: open zones on one device (gauge).
	ProbeOpenZones
	// ProbeChanWriteBusy: cumulative program-bus busy ns of one channel
	// (counter; aux = channel).
	ProbeChanWriteBusy
	// ProbeChanReadBusy: cumulative read-bus busy ns of one channel
	// (counter; aux = channel).
	ProbeChanReadBusy
	// ProbeFaults: cumulative faults injected into one device's command
	// stream (counter).
	ProbeFaults
	// ProbeReconstructs: cumulative chunks the array served by parity
	// reconstruction (counter; dev = the failed member).
	ProbeReconstructs
	// ProbeTenantQD: queued plus in-flight ops of one tenant volume
	// (gauge; dev = tenant id, capped at int16 by the key packing).
	ProbeTenantQD
	// ProbeTenantStalls: cumulative token-bucket throttle stalls of one
	// tenant volume (counter; dev = tenant id).
	ProbeTenantStalls
	// ProbeTenantBytes: cumulative payload bytes completed for one tenant
	// volume (counter; dev = tenant id) — the achieved share over a run.
	ProbeTenantBytes
	// ProbeTrimDropped: blocks whose trims a stack without a discard path
	// silently dropped (counter; see stack.Platform.TrimDrops).
	ProbeTrimDropped
	// ProbePoolMiss: buffer-pool requests that heap-allocated because no
	// recycled slab of the size class was available (counter; dev =
	// platform's first member, 0 aux). A cold pool misses once per slab;
	// sustained growth means the working set outruns recycling.
	ProbePoolMiss
	// ProbePoolLive: refcounted buffers held by the data path at
	// finalize (gauge) — pool occupancy; nonzero after drain is a leak.
	ProbePoolLive
	// ProbePayloadCopy: payload copies performed between the workload
	// generator and the flash model (counter) — the zero-copy path keeps
	// this flat during steady-state stripe writes.
	ProbePayloadCopy

	numProbeKinds // sentinel for exhaustiveness tests; keep last
)

func (p ProbeKind) gauge() bool {
	return p == ProbeQueueDepth || p == ProbeOpenZones || p == ProbeTenantQD ||
		p == ProbePoolLive
}

// ProbeKey packs a probe identity into a ring-record key.
func ProbeKey(kind ProbeKind, dev, aux int) uint64 {
	return uint64(kind)<<32 | uint64(uint16(dev))<<16 | uint64(uint16(aux))
}

func probeKeyParts(key uint64) (kind ProbeKind, dev, aux int) {
	return ProbeKind(key >> 32), int(int16(key >> 16)), int(int16(key))
}

// ProbeName renders a probe key's stable export name.
func ProbeName(key uint64) string {
	kind, dev, aux := probeKeyParts(key)
	switch kind {
	case ProbeQueueDepth:
		return fmt.Sprintf("qd/dev%d", dev)
	case ProbeOpenZones:
		return fmt.Sprintf("open_zones/dev%d", dev)
	case ProbeChanWriteBusy:
		return fmt.Sprintf("chan_write_busy_ns/dev%d/ch%d", dev, aux)
	case ProbeChanReadBusy:
		return fmt.Sprintf("chan_read_busy_ns/dev%d/ch%d", dev, aux)
	case ProbeFaults:
		return fmt.Sprintf("faults/dev%d", dev)
	case ProbeReconstructs:
		return fmt.Sprintf("reconstructs/dev%d", dev)
	case ProbeTenantQD:
		return fmt.Sprintf("tenant_qd/t%d", dev)
	case ProbeTenantStalls:
		return fmt.Sprintf("tenant_stalls/t%d", dev)
	case ProbeTenantBytes:
		return fmt.Sprintf("tenant_bytes/t%d", dev)
	case ProbeTrimDropped:
		return "trim_dropped"
	case ProbePoolMiss:
		return "pool_miss"
	case ProbePoolLive:
		return "pool_live"
	case ProbePayloadCopy:
		return "payload_copy"
	}
	return fmt.Sprintf("probe%d/dev%d/%d", kind, dev, aux)
}

type probeAgg struct {
	key  uint64
	last int64
	max  int64
}

// Config sizes a Trace.
type Config struct {
	// Capacity bounds retained records; once full, the oldest records are
	// overwritten (Dropped counts them). 0 = DefaultCapacity.
	Capacity int
	// SampleN records every Nth I/O span (plus all events, segments, and
	// counters). 0 or 1 = every span.
	SampleN int
}

// DefaultCapacity retains 2^18 records (~12 MiB), ample for a quick-scale
// experiment point; long sweeps rely on SampleN or accept oldest-first drop.
const DefaultCapacity = 1 << 18

// Trace captures the observability records of one simulation engine.
// It is single-goroutine, like the engine it observes.
type Trace struct {
	name    string
	shard   int
	cap     int
	sampleN uint64

	recs    []Record
	start   int
	dropped uint64

	spanCtr  uint64 // spans offered (sampling clock)
	nextSpan uint64 // ids handed out

	probes   map[uint64]*probeAgg
	probeSeq []uint64 // insertion order, for deterministic export
	finals   []func()
	final    bool

	// Optional virtual-time series sampler (see EnableSampler). Driven by
	// probe emissions: Counter advances it past any due ticks before
	// applying the update, so each tick records the values visible at its
	// exact virtual time. Probe emission order within one engine is
	// shard-count- and worker-count-invariant, so the series are too.
	sampler *metrics.Sampler
}

// New returns an empty trace.
func New(cfg Config) *Trace {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	n := cfg.SampleN
	if n < 1 {
		n = 1
	}
	return &Trace{
		cap:     cfg.Capacity,
		shard:   -1,
		sampleN: uint64(n),
		probes:  make(map[uint64]*probeAgg),
	}
}

// SetShard tags the trace with the engine shard that executed it (sharded
// fleet runs; see sim.ShardGroup). The tag is a runtime diagnostic only:
// the Perfetto and JSONL exporters deliberately omit it, because which
// physical shard ran a partition depends on the shard count, and trace
// artifacts are contractually byte-identical at any shard count. Nil-safe.
func (t *Trace) SetShard(shard int) {
	if t != nil {
		t.shard = shard
	}
}

// Shard reports the executing shard tag, or -1 when the trace was not
// produced by a sharded run.
func (t *Trace) Shard() int {
	if t == nil {
		return -1
	}
	return t.shard
}

// SetName labels the trace (export process name). Nil-safe.
func (t *Trace) SetName(name string) {
	if t != nil {
		t.name = name
	}
}

// Name reports the trace label.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Len reports retained records.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// Dropped reports records overwritten after the ring filled.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

func (t *Trace) emit(r Record) {
	if len(t.recs) < t.cap {
		t.recs = append(t.recs, r)
		return
	}
	t.recs[t.start] = r
	t.start++
	if t.start == t.cap {
		t.start = 0
	}
	t.dropped++
}

// SpanBegin opens a span for one I/O, subject to sampling. dev/zone may be
// -1 when the layer has no such notion (array-level spans). Returns 0 when
// the span is not recorded.
func (t *Trace) SpanBegin(ts int64, layer Layer, op Op, dev, zone int, lba, blocks int64) SpanID {
	if t == nil {
		return 0
	}
	t.spanCtr++
	if t.sampleN > 1 && t.spanCtr%t.sampleN != 0 {
		return 0
	}
	t.nextSpan++
	id := t.nextSpan
	t.emit(Record{TS: ts, Span: id, Arg0: lba, Arg1: blocks,
		Dev: int32(dev), Zone: int32(zone), Kind: RecSpanBegin, Layer: layer, Sub: uint8(op)})
	return id
}

// Mark records a service interval [start, end) inside span id. ch is the
// flash channel serving it, or -1.
func (t *Trace) Mark(id SpanID, start, end int64, layer Layer, ph Phase, dev, zone, ch int) {
	if t == nil || id == 0 {
		return
	}
	t.emit(Record{TS: start, Span: id, Arg0: end, Arg1: int64(ch),
		Dev: int32(dev), Zone: int32(zone), Kind: RecMark, Layer: layer, Sub: uint8(ph)})
}

// SpanEnd closes span id.
func (t *Trace) SpanEnd(id SpanID, ts int64, failed bool) {
	if t == nil || id == 0 {
		return
	}
	var flag uint8
	if failed {
		flag = 1
	}
	t.emit(Record{TS: ts, Span: id, Kind: RecSpanEnd, Flag: flag})
}

// Segment records a standalone service interval [start, end) — device
// background work such as ZRWA flush programs and erases. blocks is
// clamped into the record's byte-sized field.
func (t *Trace) Segment(start, end int64, layer Layer, seg Seg, dev, zone, ch, blocks int) {
	if t == nil {
		return
	}
	if blocks > 255 {
		blocks = 255
	}
	t.emit(Record{TS: start, Arg0: end, Arg1: int64(ch),
		Dev: int32(dev), Zone: int32(zone), Kind: RecSegment, Layer: layer,
		Sub: uint8(seg), Flag: uint8(blocks)})
}

// Event records an instantaneous typed event.
func (t *Trace) Event(ts int64, layer Layer, kind EventKind, dev, zone int, a0, a1 int64, flag uint8) {
	if t == nil {
		return
	}
	t.emit(Record{TS: ts, Arg0: a0, Arg1: a1,
		Dev: int32(dev), Zone: int32(zone), Kind: RecEvent, Layer: layer,
		Sub: uint8(kind), Flag: flag})
}

// Counter records a probe sample and folds it into the probe aggregates.
func (t *Trace) Counter(ts int64, key uint64, v int64) {
	if t == nil {
		return
	}
	// Catch up the sampler BEFORE applying the update: each due tick then
	// snapshots the values that were current at its virtual time, giving
	// exact piecewise-constant series without the sampler needing its own
	// engine events (which would keep the run's event heap from draining).
	if t.sampler != nil && t.sampler.Due(ts) {
		t.sampler.Advance(ts)
	}
	agg := t.probes[key]
	if agg == nil {
		agg = &probeAgg{key: key}
		t.probes[key] = agg
		t.probeSeq = append(t.probeSeq, key)
		if t.sampler != nil {
			t.registerProbeSeries(agg)
		}
	}
	agg.last = v
	if v > agg.max {
		agg.max = v
	}
	t.emit(Record{TS: ts, Span: key, Arg0: v, Kind: RecCounter})
}

// OnFinalize registers fn to run once at Finalize — platforms register
// snapshots of cumulative device telemetry (channel busy time, final open
// zone counts) here.
func (t *Trace) OnFinalize(fn func()) {
	if t != nil {
		t.finals = append(t.finals, fn)
	}
}

// Finalize runs registered finalizers once, in registration order.
func (t *Trace) Finalize() {
	if t == nil || t.final {
		return
	}
	t.final = true
	for _, fn := range t.finals {
		fn()
	}
}

// Records returns retained records oldest-first.
func (t *Trace) Records() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, len(t.recs))
	out = append(out, t.recs[t.start:]...)
	out = append(out, t.recs[:t.start]...)
	return out
}

// ProbeStats summarizes every probe the trace touched, sorted by name:
// gauges report their maximum, counters their final value. The result
// folds into metrics.RunStats.Probes.
func (t *Trace) ProbeStats() []metrics.ProbeStat {
	if t == nil || len(t.probeSeq) == 0 {
		return nil
	}
	out := make([]metrics.ProbeStat, 0, len(t.probeSeq))
	for _, key := range t.probeSeq {
		agg := t.probes[key]
		kind, _, _ := probeKeyParts(key)
		ps := metrics.ProbeStat{Name: ProbeName(key)}
		if kind.gauge() {
			ps.Kind = metrics.ProbeGauge
			ps.Value = float64(agg.max)
		} else {
			ps.Kind = metrics.ProbeCounter
			ps.Value = float64(agg.last)
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
