package ops

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"biza/internal/bench"
	"biza/internal/metrics"
)

func testSnapshot(done bool) Snapshot {
	return Snapshot{
		Done:         done,
		Experiment:   "fig10",
		Point:        "base",
		PointsDone:   3,
		VirtualNanos: 4_000_000,
		Probes: []metrics.ProbeStat{
			{Name: "busy/ch0", Kind: metrics.ProbeCounter, Value: 125000},
			{Name: `weird"name\n`, Kind: metrics.ProbeCounter, Value: 1},
			{Name: "qd/dev0", Kind: metrics.ProbeGauge, Value: 7},
		},
		Series: []metrics.SeriesDump{
			{Trace: "t0", Name: "qd/dev0", Kind: metrics.ProbeGauge, IntervalNs: 50000, Points: []float64{0, 1, 7}},
		},
		TraceTail: []string{`{"trace":1,"ts":100,"rec":"counter","probe":"qd/dev0","value":7}`},
	}
}

func get(t *testing.T, srv *Server, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	res := rw.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHealthAndReadiness(t *testing.T) {
	s := New()
	if res, _ := get(t, s, "/healthz"); res.StatusCode != 200 {
		t.Fatalf("/healthz = %d before any publish", res.StatusCode)
	}
	if res, _ := get(t, s, "/readyz"); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d before the final snapshot, want 503", res.StatusCode)
	}
	s.Publish(testSnapshot(false))
	if res, _ := get(t, s, "/readyz"); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d on a live (not Done) snapshot, want 503", res.StatusCode)
	}
	s.Publish(testSnapshot(true))
	if res, _ := get(t, s, "/readyz"); res.StatusCode != 200 {
		t.Fatalf("/readyz = %d after the Done snapshot, want 200", res.StatusCode)
	}
}

// promLine matches a Prometheus exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+(Inf|NaN)?$`)

func TestMetricsExposition(t *testing.T) {
	s := New()
	s.Publish(testSnapshot(true))
	res, body := get(t, s, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	typed := map[string]bool{}
	samples := 0
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[2]] = true
		case strings.HasPrefix(line, "# HELP "):
		case line == "":
			t.Fatal("blank line in exposition body")
		default:
			if !promLine.MatchString(line) {
				t.Fatalf("malformed sample line %q", line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			if !typed[name] {
				t.Fatalf("sample %q precedes its # TYPE declaration", name)
			}
			samples++
		}
	}
	for _, want := range []string{
		"biza_sweep_done 1",
		"biza_points_done 3",
		`biza_probe_counter{name="busy/ch0"} 125000`,
		`biza_probe_counter{name="weird\"name\\n"} 1`,
		`biza_probe_gauge{name="qd/dev0"} 7`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if samples < 6 {
		t.Fatalf("only %d sample lines", samples)
	}
}

func TestVarsAndSeriesJSON(t *testing.T) {
	s := New()
	s.Publish(testSnapshot(false))
	_, body := get(t, s, "/vars")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars is not valid JSON: %v", err)
	}
	if snap.Seq != 1 || snap.Experiment != "fig10" || len(snap.Probes) != 3 {
		t.Fatalf("unexpected /vars snapshot: %+v", snap)
	}
	_, body = get(t, s, "/series")
	var series []metrics.SeriesDump
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series is not valid JSON: %v", err)
	}
	if len(series) != 1 || series[0].Name != "qd/dev0" || len(series[0].Points) != 3 {
		t.Fatalf("unexpected /series: %+v", series)
	}

	// Empty snapshot still serves a JSON array, not null.
	empty := New()
	if _, body := get(t, empty, "/series"); strings.TrimSpace(body) != "[]" {
		t.Fatalf("/series with no data = %q, want []", body)
	}
}

// The stream must deliver the current snapshot immediately, then one
// event per publish, and terminate itself after the Done snapshot.
func TestStreamDeliversPublishes(t *testing.T) {
	s := New()
	s.Publish(testSnapshot(false))

	httpSrv := httptest.NewServer(s.Handler())
	defer httpSrv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", httpSrv.URL+"/stream", nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	sc := bufio.NewScanner(res.Body)
	nextData := func() streamView {
		t.Helper()
		for sc.Scan() {
			if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var v streamView
				if err := json.Unmarshal([]byte(line), &v); err != nil {
					t.Fatalf("bad SSE data %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return streamView{}
	}

	if v := nextData(); v.Seq != 1 || v.Done || v.Point != "base" {
		t.Fatalf("initial event %+v", v)
	}
	s.Publish(testSnapshot(false))
	if v := nextData(); v.Seq != 2 {
		t.Fatalf("second event %+v", v)
	}
	s.Publish(testSnapshot(true))
	if v := nextData(); v.Seq != 3 || !v.Done {
		t.Fatalf("final event %+v", v)
	}
	// After Done the server closes the stream.
	if sc.Scan() && strings.HasPrefix(sc.Text(), "data: ") {
		t.Fatal("stream kept producing events after Done")
	}
}

// Attach + Finish against a real quick sweep: live snapshots arrive while
// points complete, and the final snapshot carries the report's series.
func TestAttachPublishesLiveSweep(t *testing.T) {
	s := New()
	scale := bench.QuickScale()
	scale.Duration /= 4
	rn := &bench.Runner{Scale: scale, Seed: 7, Parallel: 2,
		Series: &metrics.SamplerConfig{}}
	s.Attach(rn)
	rep := rn.Run([]string{"fig10"})
	if rep.Results[0].Error != "" {
		t.Fatalf("fig10 failed: %s", rep.Results[0].Error)
	}
	live := s.Snapshot()
	if live.PointsDone == 0 || live.Seq == 0 {
		t.Fatalf("no live snapshots published during the sweep: %+v", live)
	}
	if live.Done {
		t.Fatal("live snapshot marked Done before Finish")
	}
	if len(live.Probes) == 0 || len(live.Series) == 0 {
		t.Fatalf("live snapshot missing probes/series: %d/%d", len(live.Probes), len(live.Series))
	}
	s.Finish(rep)
	final := s.Snapshot()
	if !final.Done || final.VirtualNanos <= 0 {
		t.Fatalf("final snapshot %+v", final)
	}
	if len(final.Series) != len(rep.Results[0].Series) {
		t.Fatalf("final snapshot has %d series, report has %d",
			len(final.Series), len(rep.Results[0].Series))
	}
	if res, _ := get(t, s, "/readyz"); res.StatusCode != 200 {
		t.Fatalf("/readyz = %d after Finish", res.StatusCode)
	}
}

func TestStartServesOverTCP(t *testing.T) {
	s := New()
	s.Publish(testSnapshot(true))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(string(body), "biza_sweep_done 1") {
		t.Fatalf("tcp /metrics: status %d body %q", res.StatusCode, body)
	}
	// pprof index must be mounted.
	res, err = http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ = %d", res.StatusCode)
	}
}
