package ops

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"biza/internal/storerr"
)

// fakeSink is a minimal in-memory JobSink standing in for the admin
// gateway; it records calls and serves canned views.
type fakeSink struct {
	mu     sync.Mutex
	nextID uint64
	jobs   map[uint64]string // id -> state
	calls  []string
	err    error // forced error for the next mutating call
}

func newFakeSink() *fakeSink { return &fakeSink{jobs: map[uint64]string{}} }

func (f *fakeSink) SubmitJob(kind string, params []byte) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, "submit:"+kind)
	if f.err != nil {
		return 0, f.err
	}
	if kind != "replace" && kind != "scrub" {
		return 0, fmt.Errorf("unknown kind %q: %w", kind, storerr.ErrBadArgument)
	}
	f.nextID++
	f.jobs[f.nextID] = "pending"
	return f.nextID, nil
}

func (f *fakeSink) verb(name string, id uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fmt.Sprintf("%s:%d", name, id))
	if f.err != nil {
		return f.err
	}
	if _, ok := f.jobs[id]; !ok {
		return fmt.Errorf("job %d: %w", id, storerr.ErrNotFound)
	}
	return nil
}

func (f *fakeSink) CancelJob(id uint64) error { return f.verb("cancel", id) }
func (f *fakeSink) PauseJob(id uint64) error  { return f.verb("pause", id) }
func (f *fakeSink) ResumeJob(id uint64) error { return f.verb("resume", id) }

func (f *fakeSink) JobJSON(id uint64) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.jobs[id]
	if !ok {
		return nil, false
	}
	return []byte(fmt.Sprintf(`{"id":%d,"kind":"replace","state":%q,"progress":{"done":7,"total":9}}`, id, st)), true
}

func (f *fakeSink) JobsJSON() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	var parts []string
	for id := uint64(1); id <= f.nextID; id++ {
		if st, ok := f.jobs[id]; ok {
			parts = append(parts, fmt.Sprintf(`{"id":%d,"kind":"replace","state":%q,"progress":{"done":7,"total":9}}`, id, st))
		}
	}
	return []byte("[" + strings.Join(parts, ",") + "]")
}

func do(t *testing.T, srv *Server, method, path, body string) (*http.Response, string) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	res := rw.Result()
	b := rw.Body.String()
	return res, b
}

func TestJobRoutes(t *testing.T) {
	s := New()
	// No sink attached: the whole mutating surface answers 503.
	if res, _ := do(t, s, "POST", "/v1/jobs", `{"kind":"replace"}`); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST without sink = %d, want 503", res.StatusCode)
	}
	if res, _ := do(t, s, "GET", "/v1/jobs", ""); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET list without sink = %d, want 503", res.StatusCode)
	}

	sink := newFakeSink()
	s.SetJobs(sink)
	res, body := do(t, s, "POST", "/v1/jobs", `{"kind":"replace","params":{"device":1}}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d (%s), want 202", res.StatusCode, body)
	}
	if loc := res.Header.Get("Location"); loc != "/v1/jobs/1" {
		t.Fatalf("Location = %q", loc)
	}
	if !strings.Contains(body, `"id":1`) {
		t.Fatalf("create body = %s", body)
	}
	res, body = do(t, s, "GET", "/v1/jobs/1", "")
	if res.StatusCode != 200 || !strings.Contains(body, `"state":"pending"`) {
		t.Fatalf("GET job = %d %s", res.StatusCode, body)
	}
	res, body = do(t, s, "GET", "/v1/jobs", "")
	if res.StatusCode != 200 || !strings.HasPrefix(body, "[") {
		t.Fatalf("GET list = %d %s", res.StatusCode, body)
	}
	if res, _ := do(t, s, "POST", "/v1/jobs/1/pause", ""); res.StatusCode != http.StatusAccepted {
		t.Fatalf("pause = %d, want 202", res.StatusCode)
	}
	if res, _ := do(t, s, "POST", "/v1/jobs/1/resume", ""); res.StatusCode != http.StatusAccepted {
		t.Fatalf("resume = %d, want 202", res.StatusCode)
	}
	if res, _ := do(t, s, "DELETE", "/v1/jobs/1", ""); res.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", res.StatusCode)
	}
	want := []string{"submit:replace", "pause:1", "resume:1", "cancel:1"}
	if got := strings.Join(sink.calls, ","); got != strings.Join(want, ",") {
		t.Fatalf("sink calls = %s, want %s", got, strings.Join(want, ","))
	}

	// /metrics reflects the job list once a sink is attached.
	s.Publish(testSnapshot(false))
	_, metricsBody := do(t, s, "GET", "/metrics", "")
	if !strings.Contains(metricsBody, `biza_admin_jobs{state="pending"} 1`) {
		t.Fatalf("metrics missing job family:\n%s", metricsBody)
	}
	if !strings.Contains(metricsBody, "biza_admin_rebuilt_stripes_total 7") {
		t.Fatalf("metrics missing rebuild progress:\n%s", metricsBody)
	}
}

// TestJobErrorMapping pins the storerr -> HTTP status contract.
func TestJobErrorMapping(t *testing.T) {
	s := New()
	sink := newFakeSink()
	s.SetJobs(sink)
	cases := []struct {
		err  error
		want int
	}{
		{storerr.ErrNotFound, http.StatusNotFound},
		{storerr.ErrBadArgument, http.StatusBadRequest},
		{storerr.ErrNotSupported, http.StatusNotImplemented},
		{storerr.ErrBusy, http.StatusConflict},
		{storerr.ErrWrongState, http.StatusConflict},
		{storerr.ErrExists, http.StatusConflict},
		{storerr.ErrNoSpace, http.StatusConflict},
	}
	for _, c := range cases {
		sink.err = fmt.Errorf("wrapped: %w", c.err)
		if res, body := do(t, s, "POST", "/v1/jobs", `{"kind":"replace"}`); res.StatusCode != c.want {
			t.Fatalf("%v -> %d (%s), want %d", c.err, res.StatusCode, body, c.want)
		}
	}
	sink.err = nil
	if res, _ := do(t, s, "GET", "/v1/jobs/999", ""); res.StatusCode != http.StatusNotFound {
		t.Fatal("unknown job id should 404")
	}
	if res, _ := do(t, s, "GET", "/v1/jobs/notanumber", ""); res.StatusCode != http.StatusBadRequest {
		t.Fatal("non-numeric job id should 400")
	}
	if res, _ := do(t, s, "POST", "/v1/jobs", `{nope`); res.StatusCode != http.StatusBadRequest {
		t.Fatal("malformed body should 400")
	}
}

// TestRouteAndMethodErrors: unknown paths 404; wrong methods 405 — on
// both the versioned and legacy spellings.
func TestRouteAndMethodErrors(t *testing.T) {
	s := New()
	s.Publish(testSnapshot(true))
	if res, _ := do(t, s, "GET", "/no/such/route", ""); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route = %d, want 404", res.StatusCode)
	}
	for _, path := range []string{"/metrics", "/v1/metrics", "/vars", "/v1/vars", "/series", "/v1/series", "/readyz", "/v1/readyz"} {
		if res, _ := do(t, s, "POST", path, ""); res.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, res.StatusCode)
		}
		if res, _ := do(t, s, "GET", path, ""); res.StatusCode != 200 {
			t.Fatalf("GET %s = %d, want 200", path, res.StatusCode)
		}
	}
	if res, _ := do(t, s, "DELETE", "/v1/jobs", ""); res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/jobs = %d, want 405", res.StatusCode)
	}
}

// TestVersionedAliasesAgree: /v1/X and /X serve identical bytes.
func TestVersionedAliasesAgree(t *testing.T) {
	s := New()
	s.Publish(testSnapshot(true))
	for _, path := range []string{"/metrics", "/vars", "/series"} {
		_, legacy := do(t, s, "GET", path, "")
		_, versioned := do(t, s, "GET", "/v1"+path, "")
		if legacy != versioned {
			t.Fatalf("%s and /v1%s diverge", path, path)
		}
	}
}

// TestStreamClientDisconnect: a client dropping mid-stream must not wedge
// the handler; later publishes proceed normally.
func TestStreamClientDisconnect(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/stream", nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(res.Body)
	s.Publish(testSnapshot(false))
	found := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no SSE event before disconnect")
	}
	cancel() // client walks away mid-stream
	res.Body.Close()

	// The server keeps serving: a fresh subscriber sees the next publish.
	s.Publish(testSnapshot(true))
	res2, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	sc2 := bufio.NewScanner(res2.Body)
	got := false
	for sc2.Scan() {
		if strings.HasPrefix(sc2.Text(), "data: ") && strings.Contains(sc2.Text(), `"done":true`) {
			got = true
			break
		}
	}
	if !got {
		t.Fatal("fresh subscriber missed the final snapshot")
	}
}

// TestCloseRacesActiveStream: Server.Close while a stream is live (run
// under -race in CI). The stream must terminate rather than hang.
func TestCloseRacesActiveStream(t *testing.T) {
	s := New()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String()
	res, err := http.Get(url + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(res.Body)
		for sc.Scan() { // drain until the connection dies
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Publish(testSnapshot(false))
		}
	}()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream reader still alive after Close")
	}
}

// TestReadyzLiveMode: a Live snapshot flips readiness without Done.
func TestReadyzLiveMode(t *testing.T) {
	s := New()
	if res, _ := do(t, s, "GET", "/v1/readyz", ""); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d before anything, want 503", res.StatusCode)
	}
	s.Publish(Snapshot{Live: true})
	if res, _ := do(t, s, "GET", "/v1/readyz", ""); res.StatusCode != 200 {
		t.Fatalf("readyz = %d with live snapshot, want 200", res.StatusCode)
	}
}
