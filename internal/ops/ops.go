// Package ops embeds a live operations endpoint into benchmark and
// simulation processes. The API is versioned under /v1/; the original
// unversioned paths remain as aliases. The server exposes:
//
//	/v1/metrics       Prometheus exposition text (probe counters/gauges)
//	/v1/vars          full JSON snapshot (probes, series, trace tail)
//	/v1/series        virtual-time series dump (JSON)
//	/v1/stream        server-sent events: one event per published snapshot
//	/v1/jobs          admin jobs: POST submits, GET lists
//	/v1/jobs/{id}     GET status, DELETE cancels
//	/v1/jobs/{id}/pause, /v1/jobs/{id}/resume
//	/healthz          liveness (always 200)
//	/readyz           readiness (200 once Done or serving a live array)
//	/debug/pprof/     Go runtime profiles
//
// Determinism boundary, read side: the simulation never calls into this
// package. Producers publish immutable Snapshot values via an atomic
// pointer swap; handlers only ever read published snapshots, so wallclock
// time — sanctioned in this package alone — cannot leak into simulation
// inputs or outputs.
//
// Determinism boundary, write side: mutating handlers never touch the
// simulation either. They stage typed commands on a JobSink (the admin
// gateway), and the simulation driver drains staged commands across its
// own injection boundary at virtual-time points of its choosing. A job
// POST therefore answers 202 Accepted: the command is journaled and will
// execute, but nothing has happened inside the simulation yet.
package ops

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"biza/internal/bench"
	"biza/internal/metrics"
	"biza/internal/storerr"
)

// JobSink is the write-side boundary: the admin gateway implements it.
// Submit/Cancel/Pause/Resume stage commands for later injection into the
// simulation (errors report only validation failures — unknown kinds,
// unknown ids, malformed params); JobJSON/JobsJSON read published job
// snapshots. All methods must be safe from any goroutine.
type JobSink interface {
	SubmitJob(kind string, params []byte) (uint64, error)
	CancelJob(id uint64) error
	PauseJob(id uint64) error
	ResumeJob(id uint64) error
	JobJSON(id uint64) ([]byte, bool)
	JobsJSON() []byte
}

// Snapshot is one immutable published view of a running (or finished)
// sweep. Producers build a fresh value per publish; handlers must not
// mutate it.
type Snapshot struct {
	Seq        uint64 `json:"seq"`                  // publish sequence number (assigned by Publish)
	Done       bool   `json:"done"`                 // final snapshot of the sweep
	Experiment string `json:"experiment,omitempty"` // experiment of the most recent point
	Point      string `json:"point,omitempty"`      // most recent completed config point
	PointsDone int    `json:"points_done"`          // config points completed so far
	Failed     int    `json:"failed"`               // experiments that ended in error (final snapshot)

	// Live marks a snapshot from a live array serving admin jobs rather
	// than a finite sweep; /readyz reports ready while Live even though
	// Done never comes.
	Live bool `json:"live,omitempty"`

	VirtualNanos int64                `json:"virtual_ns"`           // simulated time covered
	Probes       []metrics.ProbeStat  `json:"probes,omitempty"`     // cumulative probe readings
	Series       []metrics.SeriesDump `json:"series,omitempty"`     // virtual-time series
	TraceTail    []string             `json:"trace_tail,omitempty"` // last trace records, JSONL
	// Jobs carries the admin job list (JSON array of admin.Job) when the
	// producer runs a control plane; /vars surfaces it verbatim.
	Jobs json.RawMessage `json:"jobs,omitempty"`
}

// tailLines bounds the trace tail carried per snapshot.
const tailLines = 64

// Server publishes snapshots over HTTP. The zero value is not usable;
// call New.
type Server struct {
	mux  *http.ServeMux
	snap atomic.Pointer[Snapshot]

	mu     sync.Mutex
	change chan struct{} // closed and replaced on every Publish
	httpd  *http.Server
	ln     net.Listener

	jobs atomic.Pointer[JobSink]
}

// New returns a server with an empty (not ready) snapshot published.
func New() *Server {
	s := &Server{mux: http.NewServeMux(), change: make(chan struct{})}
	s.snap.Store(&Snapshot{})
	// Read routes register under /v1/ and at their original unversioned
	// paths; method enforcement (405) comes from the pattern router.
	alias := func(pat string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pat, " ")
		s.mux.HandleFunc(pat, h)
		s.mux.HandleFunc(method+" /v1"+path, h)
	}
	alias("GET /metrics", s.handleMetrics)
	alias("GET /vars", s.handleVars)
	alias("GET /series", s.handleSeries)
	alias("GET /stream", s.handleStream)
	alias("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	alias("GET /readyz", s.handleReady)
	// Mutating routes are v1-only: they arrived with the versioned API
	// and have no legacy spelling to preserve.
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/jobs/{id}/pause", s.handleJobPause)
	s.mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleJobResume)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetJobs wires the admin job sink; until it is set (or when passed
// nil), every /v1/jobs route answers 503.
func (s *Server) SetJobs(sink JobSink) {
	if sink == nil {
		s.jobs.Store(nil)
		return
	}
	s.jobs.Store(&sink)
}

func (s *Server) jobSink() JobSink {
	if p := s.jobs.Load(); p != nil {
		return *p
	}
	return nil
}

// Handler exposes the endpoint mux for embedding into an existing server.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the most recently published snapshot (never nil).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Publish swaps in a new snapshot and wakes every /stream subscriber.
// The snapshot's Seq is assigned here; everything else is the caller's.
func (s *Server) Publish(snap Snapshot) {
	s.mu.Lock()
	snap.Seq = s.snap.Load().Seq + 1
	s.snap.Store(&snap)
	close(s.change)
	s.change = make(chan struct{})
	s.mu.Unlock()
}

// changed returns a channel that closes at the next Publish.
func (s *Server) changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// Start listens on addr ("host:port"; port 0 picks a free one) and serves
// in a background goroutine. The returned address is the bound one.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	httpd := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.httpd, s.ln = httpd, ln
	s.mu.Unlock()
	go httpd.Serve(ln) // returns ErrServerClosed on Close; nothing to report
	return ln.Addr(), nil
}

// Close stops a server previously started with Start.
func (s *Server) Close() error {
	s.mu.Lock()
	httpd := s.httpd
	s.mu.Unlock()
	if httpd == nil {
		return nil
	}
	return httpd.Close()
}

// Attach arms the runner so every completed config point publishes a
// cumulative snapshot: probes merge, series and trace tails accumulate.
// Call Finish with the sweep's report afterwards to publish the final
// Done snapshot (which flips /readyz to 200).
func (s *Server) Attach(rn *bench.Runner) {
	var mu sync.Mutex
	var points int
	var probes []metrics.ProbeStat
	var series []metrics.SeriesDump
	var tail []string
	rn.Observer = func(experiment, point string, run *bench.Run) {
		mu.Lock()
		defer mu.Unlock()
		points++
		for _, tr := range run.Traces() {
			probes = metrics.MergeProbes(probes, tr.ProbeStats())
			series = append(series, tr.SeriesDumps()...)
			tail = append(tail, tr.TailJSONL(8)...)
		}
		if n := len(tail); n > tailLines {
			tail = append(tail[:0:0], tail[n-tailLines:]...)
		}
		s.Publish(Snapshot{
			Experiment: experiment,
			Point:      point,
			PointsDone: points,
			Probes:     append([]metrics.ProbeStat(nil), probes...),
			Series:     append([]metrics.SeriesDump(nil), series...),
			TraceTail:  append([]string(nil), tail...),
		})
	}
}

// Finish publishes the final snapshot of a completed sweep, rebuilt from
// the report itself (canonical order, independent of live publish
// interleaving), and marks the server ready.
func (s *Server) Finish(rep *bench.Report) {
	total := rep.Stats()
	snap := Snapshot{
		Done:         true,
		Failed:       len(rep.Failed()),
		VirtualNanos: total.VirtualNanos,
		Probes:       total.Probes,
	}
	for i := range rep.Results {
		snap.Series = append(snap.Series, rep.Results[i].Series...)
	}
	snap.PointsDone = s.Snapshot().PointsDone
	for _, tr := range rep.Traces {
		snap.TraceTail = append(snap.TraceTail, tr.TailJSONL(8)...)
	}
	if n := len(snap.TraceTail); n > tailLines {
		snap.TraceTail = snap.TraceTail[n-tailLines:]
	}
	s.Publish(snap)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if snap := s.Snapshot(); !snap.Done && !snap.Live {
		http.Error(w, "sweep in progress", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// --- /v1/jobs: the mutating API ---

// errStatus maps storerr sentinels (wrapped through every admin layer)
// to HTTP statuses — the documented error contract of the jobs API.
func errStatus(err error) int {
	switch {
	case errors.Is(err, storerr.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, storerr.ErrBadArgument):
		return http.StatusBadRequest
	case errors.Is(err, storerr.ErrNotSupported):
		return http.StatusNotImplemented
	case errors.Is(err, storerr.ErrExists),
		errors.Is(err, storerr.ErrNoSpace),
		errors.Is(err, storerr.ErrBusy),
		errors.Is(err, storerr.ErrWrongState):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// needSink fetches the job sink or answers 503 — a server without a
// control plane (plain benchmark sweeps) has no mutating surface.
func (s *Server) needSink(w http.ResponseWriter) (JobSink, bool) {
	sink := s.jobSink()
	if sink == nil {
		http.Error(w, "no admin control plane attached", http.StatusServiceUnavailable)
		return nil, false
	}
	return sink, true
}

func jobID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

// handleJobCreate accepts {"kind": "...", "params": {...}} and stages a
// submit. 202: the job is journaled, not yet executed — poll its id.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	sink, ok := s.needSink(w)
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req struct {
		Kind   string          `json:"kind"`
		Params json.RawMessage `json:"params"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := sink.SubmitJob(req.Kind, req.Params)
	if err != nil {
		http.Error(w, err.Error(), errStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", fmt.Sprintf("/v1/jobs/%d", id))
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"id\":%d}\n", id)
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	sink, ok := s.needSink(w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(sink.JobsJSON())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	sink, ok := s.needSink(w)
	if !ok {
		return
	}
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	b, ok := sink.JobJSON(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// stageVerb runs one staged mutation and answers 202 with the job's
// current (pre-injection) view.
func (s *Server) stageVerb(w http.ResponseWriter, r *http.Request, verb func(JobSink, uint64) error) {
	sink, ok := s.needSink(w)
	if !ok {
		return
	}
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	if err := verb(sink, id); err != nil {
		http.Error(w, err.Error(), errStatus(err))
		return
	}
	b, hasView := sink.JobJSON(id)
	if hasView {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(http.StatusAccepted)
	if hasView {
		w.Write(b)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.stageVerb(w, r, JobSink.CancelJob)
}

func (s *Server) handleJobPause(w http.ResponseWriter, r *http.Request) {
	s.stageVerb(w, r, JobSink.PauseJob)
}

func (s *Server) handleJobResume(w http.ResponseWriter, r *http.Request) {
	s.stageVerb(w, r, JobSink.ResumeJob)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.Snapshot()
	series := snap.Series
	if series == nil {
		series = []metrics.SeriesDump{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(series)
}

// handleMetrics renders the snapshot in Prometheus exposition text format
// (version 0.0.4). Probe names carry "/" and device suffixes, so they map
// to a name label on two fixed families rather than per-probe families.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP biza_sweep_done Whether the benchmark sweep has completed.\n")
	fmt.Fprintf(&b, "# TYPE biza_sweep_done gauge\n")
	fmt.Fprintf(&b, "biza_sweep_done %d\n", boolToInt(snap.Done))
	fmt.Fprintf(&b, "# HELP biza_points_done Config points completed so far.\n")
	fmt.Fprintf(&b, "# TYPE biza_points_done counter\n")
	fmt.Fprintf(&b, "biza_points_done %d\n", snap.PointsDone)
	fmt.Fprintf(&b, "# HELP biza_virtual_seconds_total Simulated time covered by the sweep.\n")
	fmt.Fprintf(&b, "# TYPE biza_virtual_seconds_total counter\n")
	fmt.Fprintf(&b, "biza_virtual_seconds_total %g\n", float64(snap.VirtualNanos)/1e9)

	probes := append([]metrics.ProbeStat(nil), snap.Probes...)
	sort.Slice(probes, func(i, j int) bool { return probes[i].Name < probes[j].Name })
	writeFamily(&b, "biza_probe_counter", "counter",
		"Cumulative observability probe counters.", probes, metrics.ProbeCounter)
	writeFamily(&b, "biza_probe_gauge", "gauge",
		"Peak-tracking observability probe gauges.", probes, metrics.ProbeGauge)
	if sink := s.jobSink(); sink != nil {
		writeJobFamily(&b, sink)
	}
	w.Write([]byte(b.String()))
}

// writeJobFamily renders admin job counts by state and the cumulative
// rebuild progress, read from the sink's published job list.
func writeJobFamily(b *strings.Builder, sink JobSink) {
	var jobs []struct {
		Kind     string `json:"kind"`
		State    string `json:"state"`
		Progress struct {
			Done int64 `json:"done"`
		} `json:"progress"`
	}
	if json.Unmarshal(sink.JobsJSON(), &jobs) != nil {
		return
	}
	counts := map[string]int{}
	var rebuilt int64
	for _, j := range jobs {
		counts[j.State]++
		if j.Kind == "replace" {
			rebuilt += j.Progress.Done
		}
	}
	fmt.Fprintf(b, "# HELP biza_admin_jobs Admin jobs by lifecycle state.\n")
	fmt.Fprintf(b, "# TYPE biza_admin_jobs gauge\n")
	states := make([]string, 0, len(counts))
	for st := range counts {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(b, "biza_admin_jobs{state=\"%s\"} %d\n", escapeLabel(st), counts[st])
	}
	fmt.Fprintf(b, "# HELP biza_admin_rebuilt_stripes_total Stripes rebuilt by replace jobs.\n")
	fmt.Fprintf(b, "# TYPE biza_admin_rebuilt_stripes_total counter\n")
	fmt.Fprintf(b, "biza_admin_rebuilt_stripes_total %d\n", rebuilt)
}

func writeFamily(b *strings.Builder, family, typ, help string, probes []metrics.ProbeStat, kind metrics.ProbeKind) {
	wrote := false
	for _, p := range probes {
		if p.Kind != kind {
			continue
		}
		if !wrote {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, typ)
			wrote = true
		}
		fmt.Fprintf(b, "%s{name=\"%s\"} %g\n", family, escapeLabel(p.Name), p.Value)
	}
}

// escapeLabel escapes a Prometheus label value per the exposition format:
// backslash, newline, and double quote.
func escapeLabel(v string) string {
	return strings.NewReplacer("\\", "\\\\", "\n", "\\n", "\"", "\\\"").Replace(v)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// streamView is the compact per-event payload of /stream: the snapshot
// minus its bulky series points and full tail.
type streamView struct {
	Seq          uint64 `json:"seq"`
	Done         bool   `json:"done"`
	Experiment   string `json:"experiment,omitempty"`
	Point        string `json:"point,omitempty"`
	PointsDone   int    `json:"points_done"`
	VirtualNanos int64  `json:"virtual_ns"`
	Probes       int    `json:"probes"`
	Series       int    `json:"series"`
	LastRecord   string `json:"last_record,omitempty"`
}

// handleStream serves server-sent events: the current snapshot summary
// immediately, then one event per Publish. The stream ends after the
// final Done snapshot or when the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	var last uint64
	sent := false
	for {
		ch := s.changed() // grab before reading so a racing Publish re-wakes us
		snap := s.Snapshot()
		if !sent || snap.Seq != last {
			sent, last = true, snap.Seq
			view := streamView{
				Seq: snap.Seq, Done: snap.Done,
				Experiment: snap.Experiment, Point: snap.Point,
				PointsDone: snap.PointsDone, VirtualNanos: snap.VirtualNanos,
				Probes: len(snap.Probes), Series: len(snap.Series),
			}
			if n := len(snap.TraceTail); n > 0 {
				view.LastRecord = snap.TraceTail[n-1]
			}
			data, err := json.Marshal(view)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data)
			fl.Flush()
			if snap.Done {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}
