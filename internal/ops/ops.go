// Package ops embeds a live observability endpoint into benchmark and
// simulation processes. The server exposes:
//
//	/metrics       Prometheus exposition text (probe counters/gauges)
//	/vars          full JSON snapshot (probes, series, trace tail)
//	/series        virtual-time series dump (JSON)
//	/stream        server-sent events: one event per published snapshot
//	/healthz       liveness (always 200)
//	/readyz        readiness (200 once the final Done snapshot lands)
//	/debug/pprof/  Go runtime profiles
//
// Determinism boundary: the simulation side never calls into this
// package. Producers publish immutable Snapshot values via an atomic
// pointer swap; handlers only ever read published snapshots, so wallclock
// time — sanctioned in this package alone — cannot leak into simulation
// inputs or outputs.
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"biza/internal/bench"
	"biza/internal/metrics"
)

// Snapshot is one immutable published view of a running (or finished)
// sweep. Producers build a fresh value per publish; handlers must not
// mutate it.
type Snapshot struct {
	Seq        uint64 `json:"seq"`                  // publish sequence number (assigned by Publish)
	Done       bool   `json:"done"`                 // final snapshot of the sweep
	Experiment string `json:"experiment,omitempty"` // experiment of the most recent point
	Point      string `json:"point,omitempty"`      // most recent completed config point
	PointsDone int    `json:"points_done"`          // config points completed so far
	Failed     int    `json:"failed"`               // experiments that ended in error (final snapshot)

	VirtualNanos int64                `json:"virtual_ns"`           // simulated time covered
	Probes       []metrics.ProbeStat  `json:"probes,omitempty"`     // cumulative probe readings
	Series       []metrics.SeriesDump `json:"series,omitempty"`     // virtual-time series
	TraceTail    []string             `json:"trace_tail,omitempty"` // last trace records, JSONL
}

// tailLines bounds the trace tail carried per snapshot.
const tailLines = 64

// Server publishes snapshots over HTTP. The zero value is not usable;
// call New.
type Server struct {
	mux  *http.ServeMux
	snap atomic.Pointer[Snapshot]

	mu     sync.Mutex
	change chan struct{} // closed and replaced on every Publish
	httpd  *http.Server
	ln     net.Listener
}

// New returns a server with an empty (not ready) snapshot published.
func New() *Server {
	s := &Server{mux: http.NewServeMux(), change: make(chan struct{})}
	s.snap.Store(&Snapshot{})
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/vars", s.handleVars)
	s.mux.HandleFunc("/series", s.handleSeries)
	s.mux.HandleFunc("/stream", s.handleStream)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the endpoint mux for embedding into an existing server.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the most recently published snapshot (never nil).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Publish swaps in a new snapshot and wakes every /stream subscriber.
// The snapshot's Seq is assigned here; everything else is the caller's.
func (s *Server) Publish(snap Snapshot) {
	s.mu.Lock()
	snap.Seq = s.snap.Load().Seq + 1
	s.snap.Store(&snap)
	close(s.change)
	s.change = make(chan struct{})
	s.mu.Unlock()
}

// changed returns a channel that closes at the next Publish.
func (s *Server) changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// Start listens on addr ("host:port"; port 0 picks a free one) and serves
// in a background goroutine. The returned address is the bound one.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	httpd := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.httpd, s.ln = httpd, ln
	s.mu.Unlock()
	go httpd.Serve(ln) // returns ErrServerClosed on Close; nothing to report
	return ln.Addr(), nil
}

// Close stops a server previously started with Start.
func (s *Server) Close() error {
	s.mu.Lock()
	httpd := s.httpd
	s.mu.Unlock()
	if httpd == nil {
		return nil
	}
	return httpd.Close()
}

// Attach arms the runner so every completed config point publishes a
// cumulative snapshot: probes merge, series and trace tails accumulate.
// Call Finish with the sweep's report afterwards to publish the final
// Done snapshot (which flips /readyz to 200).
func (s *Server) Attach(rn *bench.Runner) {
	var mu sync.Mutex
	var points int
	var probes []metrics.ProbeStat
	var series []metrics.SeriesDump
	var tail []string
	rn.Observer = func(experiment, point string, run *bench.Run) {
		mu.Lock()
		defer mu.Unlock()
		points++
		for _, tr := range run.Traces() {
			probes = metrics.MergeProbes(probes, tr.ProbeStats())
			series = append(series, tr.SeriesDumps()...)
			tail = append(tail, tr.TailJSONL(8)...)
		}
		if n := len(tail); n > tailLines {
			tail = append(tail[:0:0], tail[n-tailLines:]...)
		}
		s.Publish(Snapshot{
			Experiment: experiment,
			Point:      point,
			PointsDone: points,
			Probes:     append([]metrics.ProbeStat(nil), probes...),
			Series:     append([]metrics.SeriesDump(nil), series...),
			TraceTail:  append([]string(nil), tail...),
		})
	}
}

// Finish publishes the final snapshot of a completed sweep, rebuilt from
// the report itself (canonical order, independent of live publish
// interleaving), and marks the server ready.
func (s *Server) Finish(rep *bench.Report) {
	total := rep.Stats()
	snap := Snapshot{
		Done:         true,
		Failed:       len(rep.Failed()),
		VirtualNanos: total.VirtualNanos,
		Probes:       total.Probes,
	}
	for i := range rep.Results {
		snap.Series = append(snap.Series, rep.Results[i].Series...)
	}
	snap.PointsDone = s.Snapshot().PointsDone
	for _, tr := range rep.Traces {
		snap.TraceTail = append(snap.TraceTail, tr.TailJSONL(8)...)
	}
	if n := len(snap.TraceTail); n > tailLines {
		snap.TraceTail = snap.TraceTail[n-tailLines:]
	}
	s.Publish(snap)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.Snapshot().Done {
		http.Error(w, "sweep in progress", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.Snapshot()
	series := snap.Series
	if series == nil {
		series = []metrics.SeriesDump{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(series)
}

// handleMetrics renders the snapshot in Prometheus exposition text format
// (version 0.0.4). Probe names carry "/" and device suffixes, so they map
// to a name label on two fixed families rather than per-probe families.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP biza_sweep_done Whether the benchmark sweep has completed.\n")
	fmt.Fprintf(&b, "# TYPE biza_sweep_done gauge\n")
	fmt.Fprintf(&b, "biza_sweep_done %d\n", boolToInt(snap.Done))
	fmt.Fprintf(&b, "# HELP biza_points_done Config points completed so far.\n")
	fmt.Fprintf(&b, "# TYPE biza_points_done counter\n")
	fmt.Fprintf(&b, "biza_points_done %d\n", snap.PointsDone)
	fmt.Fprintf(&b, "# HELP biza_virtual_seconds_total Simulated time covered by the sweep.\n")
	fmt.Fprintf(&b, "# TYPE biza_virtual_seconds_total counter\n")
	fmt.Fprintf(&b, "biza_virtual_seconds_total %g\n", float64(snap.VirtualNanos)/1e9)

	probes := append([]metrics.ProbeStat(nil), snap.Probes...)
	sort.Slice(probes, func(i, j int) bool { return probes[i].Name < probes[j].Name })
	writeFamily(&b, "biza_probe_counter", "counter",
		"Cumulative observability probe counters.", probes, metrics.ProbeCounter)
	writeFamily(&b, "biza_probe_gauge", "gauge",
		"Peak-tracking observability probe gauges.", probes, metrics.ProbeGauge)
	w.Write([]byte(b.String()))
}

func writeFamily(b *strings.Builder, family, typ, help string, probes []metrics.ProbeStat, kind metrics.ProbeKind) {
	wrote := false
	for _, p := range probes {
		if p.Kind != kind {
			continue
		}
		if !wrote {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, typ)
			wrote = true
		}
		fmt.Fprintf(b, "%s{name=\"%s\"} %g\n", family, escapeLabel(p.Name), p.Value)
	}
}

// escapeLabel escapes a Prometheus label value per the exposition format:
// backslash, newline, and double quote.
func escapeLabel(v string) string {
	return strings.NewReplacer("\\", "\\\\", "\n", "\\n", "\"", "\\\"").Replace(v)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// streamView is the compact per-event payload of /stream: the snapshot
// minus its bulky series points and full tail.
type streamView struct {
	Seq          uint64 `json:"seq"`
	Done         bool   `json:"done"`
	Experiment   string `json:"experiment,omitempty"`
	Point        string `json:"point,omitempty"`
	PointsDone   int    `json:"points_done"`
	VirtualNanos int64  `json:"virtual_ns"`
	Probes       int    `json:"probes"`
	Series       int    `json:"series"`
	LastRecord   string `json:"last_record,omitempty"`
}

// handleStream serves server-sent events: the current snapshot summary
// immediately, then one event per Publish. The stream ends after the
// final Done snapshot or when the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	var last uint64
	sent := false
	for {
		ch := s.changed() // grab before reading so a racing Publish re-wakes us
		snap := s.Snapshot()
		if !sent || snap.Seq != last {
			sent, last = true, snap.Seq
			view := streamView{
				Seq: snap.Seq, Done: snap.Done,
				Experiment: snap.Experiment, Point: snap.Point,
				PointsDone: snap.PointsDone, VirtualNanos: snap.VirtualNanos,
				Probes: len(snap.Probes), Series: len(snap.Series),
			}
			if n := len(snap.TraceTail); n > 0 {
				view.LastRecord = snap.TraceTail[n-1]
			}
			data, err := json.Marshal(view)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data)
			fl.Flush()
			if snap.Done {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}
