package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parse extracts a float cell, tolerating the "a(b+c)" composite format.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	if i := strings.IndexByte(cell, '('); i > 0 {
		cell = cell[:i]
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// testRun returns the run context the Runner would hand experiment exp at
// the default seed, so direct calls reproduce registry results.
func testRun(exp string) *Run { return NewRun(DefaultSeed, exp) }

func TestTable2MatchesPaper(t *testing.T) {
	tab := Table2Presets(QuickScale(), testRun("table2"))
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// ZN540 row: 1077 MB zones, 1024 KB ZRWA, 14 open, 14 MB total.
	r := tab.Rows[0]
	if r[1] != "1077" || r[2] != "1024" || r[3] != "14" || r[4] != "14.00" {
		t.Fatalf("ZN540 row = %v", r)
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3ZonePlacement(QuickScale(), testRun("table3"))
	single := parse(t, tab.Rows[0][1])
	same := parse(t, tab.Rows[1][1])
	diverse := parse(t, tab.Rows[2][1])
	if same > single*1.25 {
		t.Fatalf("same-channel pair scaled: single=%v same=%v", single, same)
	}
	if diverse < single*1.6 {
		t.Fatalf("diverse channels did not scale: single=%v diverse=%v", single, diverse)
	}
	// Tail latency on the shared channel must blow up vs single.
	p9999Single := parse(t, tab.Rows[0][4])
	p9999Same := parse(t, tab.Rows[1][4])
	if p9999Same < p9999Single*1.5 {
		t.Fatalf("same-channel tail %v not above single %v", p9999Same, p9999Single)
	}
}

func TestFig5Shape(t *testing.T) {
	tab := Fig5IntraZone(QuickScale(), testRun("fig5"))
	for _, r := range tab.Rows {
		d1, d32 := parse(t, r[1]), parse(t, r[2])
		if d1 >= d32 {
			t.Fatalf("size %s: depth-1 %v >= depth-32 %v", r[0], d1, d32)
		}
		retained := d1 / d32
		if retained > 0.7 {
			t.Fatalf("size %s: depth-1 retains %.2f, want well below 1", r[0], retained)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tabs := Fig10Write(QuickScale(), testRun("fig10"))
	tput := tabs[0]
	// Row order: BIZA, dmzap+RAIZN, mdraid+dmzap, mdraid+ConvSSD, RAIZN.
	col := 2 // seq64K
	biza := parse(t, tput.Rows[0][col])
	dr := parse(t, tput.Rows[1][col])
	md := parse(t, tput.Rows[2][col])
	if biza <= dr || biza <= md {
		t.Fatalf("BIZA %v not above dmzap+RAIZN %v and mdraid+dmzap %v", biza, dr, md)
	}
	// RAIZN row has dashes in random columns.
	raizn := tput.Rows[4]
	if raizn[4] != "-" {
		t.Fatalf("RAIZN random cell = %q, want -", raizn[4])
	}
}

func TestFig14Shape(t *testing.T) {
	s := QuickScale()
	s.TraceOps = 8000
	tab := Fig14WriteAmp(s, testRun("fig14"))
	// On casa (hot workload) BIZA must beat BIZAw/oSelector and the
	// dmzap+RAIZN adapter, and land between ideal and nocache. (The
	// mdraid comparison is scale-sensitive — its volatile stripe cache
	// absorbs the whole quick-scale trace in one flush cycle — and is
	// asserted only in the default-scale EXPERIMENTS.md run.)
	r := tab.Rows[0]
	biza := parse(t, r[1])
	noSel := parse(t, r[2])
	dzr := parse(t, r[3])
	nocache := parse(t, r[5])
	ideal := parse(t, r[6])
	if biza > noSel {
		t.Fatalf("casa: BIZA %v worse than w/oSelector %v", biza, noSel)
	}
	if biza >= dzr {
		t.Fatalf("casa: BIZA %v not below dmzap+RAIZN %v", biza, dzr)
	}
	if biza < ideal*0.95 || biza > nocache*1.3 {
		t.Fatalf("casa: BIZA %v outside [ideal %v, nocache %v]", biza, ideal, nocache)
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"table2", "table3", "table6", "fig4", "fig5", "fig10",
		"fig11", "fig12", "fig14", "fig15", "fig16", "fig17"}
	for _, id := range want {
		if _, ok := Experiments[id]; !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	ids := IDs()
	if len(ids) < len(want) {
		t.Fatalf("IDs() returned %d entries", len(ids))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tab.Add("1", "2")
	out := tab.String()
	if !strings.Contains(out, "x: t") || !strings.Contains(out, "bb") {
		t.Fatalf("render: %q", out)
	}
}

func TestDetectAblationShape(t *testing.T) {
	s := QuickScale()
	s.TraceOps = 3000
	tab := AblationChannelDetect(s, testRun("detect"))
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Avoidance must reduce user-write collisions on moderately aged
	// devices (the 0.25 and 0.50 rows).
	for _, i := range []int{1, 2} {
		avoid := parse(t, tab.Rows[i][5])
		noAvoid := parse(t, tab.Rows[i][6])
		if avoid >= noAvoid {
			t.Fatalf("row %s: avoidance collisions %v >= no-avoidance %v",
				tab.Rows[i][0], avoid, noAvoid)
		}
	}
}
