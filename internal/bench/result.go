package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"biza/internal/metrics"
	"biza/internal/obs"
)

// ReportSchema identifies the JSON artifact layout emitted by the Runner
// (the BENCH_results.json perf-trajectory format). v2 added per-result
// histogram bucket vectors ("histograms") and probe snapshots
// ("stats.probes"); v3 adds virtual-time series ("series", present when
// the sweep runs with -series). Consumers of older schemas ignore the
// additions.
const ReportSchema = "biza-bench/v3"

// Sample is one machine-readable metric cell extracted from a table:
// the value of one metric column for one identity row.
type Sample struct {
	Table  string            `json:"table"`            // table id (fig10a, ...)
	Metric string            `json:"metric"`           // column header
	Unit   string            `json:"unit,omitempty"`   // inferred from the header
	Labels map[string]string `json:"labels,omitempty"` // identity columns
	Value  float64           `json:"value"`
}

// HistogramDump is one exported sample distribution: summary scalars plus
// the non-empty bucket vector, enough to re-derive arbitrary percentiles.
type HistogramDump struct {
	Name    string           `json:"name"`
	Unit    string           `json:"unit,omitempty"`
	Summary metrics.Summary  `json:"summary"`
	Buckets []metrics.Bucket `json:"buckets,omitempty"`
}

// Result is the machine-readable outcome of one experiment run.
type Result struct {
	Experiment string          `json:"experiment"`
	Seed       uint64          `json:"seed"`
	Tables     []*Table        `json:"tables,omitempty"`
	Samples    []Sample        `json:"samples,omitempty"`
	Histograms []HistogramDump `json:"histograms,omitempty"`
	// Series holds the virtual-time series sampled from every trace the
	// experiment attached (canonical construction order), when the sweep
	// ran with series collection on. Deterministic: byte-identical at any
	// -parallel or -shards value.
	Series []metrics.SeriesDump `json:"series,omitempty"`
	Stats  metrics.RunStats     `json:"stats"`
	Error  string               `json:"error,omitempty"`
}

// Report is the top-level JSON artifact of a runner sweep.
type Report struct {
	Schema    string   `json:"schema"`
	Seed      uint64   `json:"seed"`
	Parallel  int      `json:"parallel"`
	Shards    int      `json:"shards"` // engine shards per point (provenance)
	Quick     bool     `json:"quick"`
	WallNanos int64    `json:"wall_ns"` // elapsed wall time of the whole sweep
	Results   []Result `json:"results"`

	// Traces holds the finalized per-platform observability traces, in
	// canonical (experiment, point, construction) order. They are exported
	// via obs.WritePerfetto / obs.WriteJSONL rather than embedded in the
	// report JSON.
	Traces []*obs.Trace `json:"-"`
}

// Failed lists the experiments that did not complete, in report order.
func (rep *Report) Failed() []string {
	var out []string
	for i := range rep.Results {
		if rep.Results[i].Error != "" {
			out = append(out, rep.Results[i].Experiment)
		}
	}
	return out
}

// Stats totals per-experiment accounting across the report.
func (rep *Report) Stats() metrics.RunStats {
	var total metrics.RunStats
	for i := range rep.Results {
		total.Add(rep.Results[i].Stats)
	}
	return total
}

// unitFor infers a metric's unit from its column-header suffix (the
// convention every bench table follows).
func unitFor(header string) string {
	h := strings.TrimSuffix(header, "%")
	switch {
	case strings.HasSuffix(header, "_MBps") || header == "batched" || header == "single_block":
		return "MB/s"
	case strings.HasSuffix(header, "GBps"):
		return "GB/s"
	case strings.HasSuffix(header, "_us"):
		return "us"
	case strings.HasSuffix(header, "_KB"):
		return "KiB"
	case strings.HasSuffix(header, "_MB"):
		return "MiB"
	case strings.HasSuffix(header, "_GB") || strings.HasSuffix(header, "_GB_programmed"):
		return "GiB"
	case strings.HasSuffix(h, "%") || h != header:
		return "percent"
	case strings.HasSuffix(header, "_x") || header == "speedup" || header == "ratio" || header == "retained":
		return "ratio"
	default:
		return ""
	}
}

// labelCols reports the number of leading identity columns (default 1).
func (t *Table) labelCols() int {
	if t.LabelCols > 0 {
		return t.LabelCols
	}
	return 1
}

// Samples flattens the table into machine-readable metric cells. The
// first labelCols columns identify the row; every remaining cell that
// parses as a number becomes one sample. Composite "a(b+c)" cells
// contribute the leading aggregate a; "-" (not applicable) cells are
// skipped.
func (t *Table) Samples() []Sample {
	lc := t.labelCols()
	var out []Sample
	for _, row := range t.Rows {
		labels := make(map[string]string, lc)
		for i := 0; i < lc && i < len(row) && i < len(t.Header); i++ {
			labels[t.Header[i]] = row[i]
		}
		for i := lc; i < len(row) && i < len(t.Header); i++ {
			v, ok := parseCell(row[i])
			if !ok {
				continue
			}
			out = append(out, Sample{
				Table:  t.ID,
				Metric: t.Header[i],
				Unit:   unitFor(t.Header[i]),
				Labels: labels,
				Value:  v,
			})
		}
	}
	return out
}

// parseCell extracts the numeric value of a cell, tolerating the
// composite "a(b+c)" format; non-finite and non-numeric cells report ok
// false (non-finite values cannot survive JSON encoding anyway).
func parseCell(cell string) (float64, bool) {
	if i := strings.IndexByte(cell, '('); i > 0 {
		cell = cell[:i]
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// samplesOf flattens all of an experiment's tables.
func samplesOf(tables []*Table) []Sample {
	var out []Sample
	for _, t := range tables {
		out = append(out, t.Samples()...)
	}
	return out
}

// SampleKey renders a stable human-readable identity for a sample
// (diagnostics and diffing).
func (s Sample) SampleKey() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", s.Table, s.Metric)
	for _, k := range keys {
		fmt.Fprintf(&b, "[%s=%s]", k, s.Labels[k])
	}
	return b.String()
}
