// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment returns a Table whose rows mirror what
// the paper plots; absolute values come from the simulated substrate, so
// the comparisons (who wins, by what factor) are the reproduction target,
// not the raw numbers.
//
// Experiments register as a set of independently runnable config points
// (one platform, one workload, one sweep value, ...). The Runner executes
// points from any mix of experiments across a worker pool; every
// stochastic stream derives its seed from (base seed, experiment id,
// stream label) via sim.DeriveSeed, so output is bit-identical regardless
// of scheduling order or worker count.
package bench

import (
	"fmt"
	"strings"
	"sync/atomic"

	"biza/internal/metrics"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/stack"
)

// Scale controls experiment cost. Default matches the committed results;
// Quick is for smoke tests.
type Scale struct {
	Duration sim.Time // virtual measurement window per run
	TraceOps int      // synthesized ops per trace workload
	Warmup   uint64   // warmup bytes before measuring

	// Fleet sizing (the sharded fleet experiment).
	FleetArrays  int // independent arrays partitioned across engine shards
	FleetClients int // closed-loop clients hopping between arrays

	// Tenant sizing (the multi-tenant QoS-isolation experiment).
	TenantArrays int // arrays partitioned across engine shards
	Tenants      int // tenant volumes per array (1 aggressor + mixed classes)

	// Rolling sizing (the rolling-replacement availability experiment).
	RollingArrays int // arrays partitioned across engine shards
}

// DefaultScale is used by the committed EXPERIMENTS.md results.
func DefaultScale() Scale {
	return Scale{Duration: 50 * sim.Millisecond, TraceOps: 60000, Warmup: 64 << 20,
		FleetArrays: 192, FleetClients: 3072,
		TenantArrays: 12, Tenants: 32,
		RollingArrays: 8}
}

// QuickScale runs every experiment in seconds (CI smoke).
func QuickScale() Scale {
	return Scale{Duration: 4 * sim.Millisecond, TraceOps: 4000, Warmup: 1 << 20,
		FleetArrays: 16, FleetClients: 192,
		TenantArrays: 2, Tenants: 24,
		RollingArrays: 2}
}

// DefaultSeed is the base seed of the committed EXPERIMENTS.md run.
const DefaultSeed uint64 = 1

// Run is the per-execution context handed to every experiment point. It
// carries the base seed and experiment id from which all RNG streams
// derive, and (when driven by the Runner) the virtual-time accumulator
// that credits simulated nanoseconds to the experiment's accounting.
type Run struct {
	base   uint64
	exp    string
	point  string        // current config point (trace naming)
	shards int           // engine shards per point (fleet experiment); <1 = 1
	vt     *atomic.Int64 // optional virtual-time sink (Runner accounting)

	// Observability side-channel: when traceCfg is set, Platform attaches
	// a fresh obs.Trace to every stack it assembles; PublishHistogram
	// collects latency distributions. Both are drained by the Runner after
	// RunPoint returns, in canonical point order, so the report is
	// bit-identical for any Parallel value. seriesCfg additionally arms a
	// virtual-time sampler on every attached trace (the report's "series"
	// section).
	traceCfg  *obs.Config
	seriesCfg *metrics.SamplerConfig
	traces    []*obs.Trace
	hists     []HistogramDump
}

// NewRun returns a run context for one experiment. Tests and direct
// callers get the same values the Runner produces for (seed, exp).
func NewRun(seed uint64, exp string) *Run { return &Run{base: seed, exp: exp} }

// SetShards sets the engine-shard count sharded experiments partition one
// run across (the Runner sets it from Runner.Shards). Output is
// contractually bit-identical at any value; the count only chooses how
// many goroutines advance the simulation.
func (r *Run) SetShards(n int) { r.shards = n }

// Shards reports the configured engine-shard count (at least 1).
func (r *Run) Shards() int {
	if r.shards < 1 {
		return 1
	}
	return r.shards
}

// ShardGroup returns a shard group of Shards() engines with the given
// barrier window, its virtual-time advancement credited once (not per
// shard) to this run's accounting.
func (r *Run) ShardGroup(window sim.Time) *sim.ShardGroup {
	g := sim.NewShardGroup(r.Shards(), window)
	if r.vt != nil {
		g.SetTimeSink(r.vt)
	}
	return g
}

// Seed derives the deterministic seed for a named stochastic stream.
// Streams are identified by label only — never by execution order — so a
// point sharded off to another worker draws exactly the same numbers.
func (r *Run) Seed(stream string) uint64 { return sim.DeriveSeed(r.base, r.exp, stream) }

// NewEngine returns a simulation engine whose virtual-time advancement is
// credited to this run's accounting.
func (r *Run) NewEngine() *sim.Engine {
	eng := sim.NewEngine()
	if r.vt != nil {
		eng.SetTimeSink(r.vt)
	}
	return eng
}

// Platform assembles a stack platform on a tracked engine. When tracing
// is enabled the platform gets a fresh obs.Trace named after the run's
// (experiment, point, ordinal, kind) tuple; names depend only on the
// deterministic construction order inside RunPoint, never on scheduling.
func (r *Run) Platform(kind stack.Kind, opts stack.Options) (*stack.Platform, error) {
	return r.PlatformOn(r.NewEngine(), -1, kind, opts)
}

// PlatformOnShard assembles a platform on a shard's engine (a fleet
// partition). The attached trace is tagged with the shard id — a runtime
// diagnostic the exporters omit, keeping trace artifacts byte-identical
// at any shard count. Call it from the coordinating goroutine, in
// canonical partition order, before the group starts running.
func (r *Run) PlatformOnShard(sh *sim.Shard, kind stack.Kind, opts stack.Options) (*stack.Platform, error) {
	return r.PlatformOn(sh.Engine(), sh.ID(), kind, opts)
}

// PlatformOn assembles a platform on the given engine; shard tags the
// attached trace (-1 when the run is not sharded).
func (r *Run) PlatformOn(eng *sim.Engine, shard int, kind stack.Kind, opts stack.Options) (*stack.Platform, error) {
	if r.traceCfg != nil && opts.Trace == nil {
		tr := obs.New(*r.traceCfg)
		name := r.exp
		if r.point != "" {
			name += "/" + r.point
		}
		tr.SetName(fmt.Sprintf("%s/%d/%s", name, len(r.traces), kind))
		tr.SetShard(shard)
		if r.seriesCfg != nil {
			tr.EnableSampler(*r.seriesCfg)
			// Extend the series through any probe-quiet tail: by finalize
			// time the engine clock holds the run's end.
			tr.OnFinalize(func() { tr.AdvanceSampler(eng.Now()) })
		}
		r.traces = append(r.traces, tr)
		opts.Trace = tr
	}
	return stack.NewOn(eng, kind, opts)
}

// EnableTrace turns on per-platform span/event collection for this run
// (the Runner does this automatically when Runner.Trace is set).
func (r *Run) EnableTrace(cfg obs.Config) {
	c := cfg
	r.traceCfg = &c
}

// EnableSeries arms a virtual-time series sampler on every trace this run
// attaches (the Runner does this when Runner.Series is set). Requires
// tracing: enabling series without EnableTrace also enables tracing with
// the default config.
func (r *Run) EnableSeries(cfg metrics.SamplerConfig) {
	c := cfg
	r.seriesCfg = &c
	if r.traceCfg == nil {
		r.traceCfg = &obs.Config{}
	}
}

// Series drains the sampled virtual-time series of every attached trace,
// in construction order (finalizing each trace first).
func (r *Run) Series() []metrics.SeriesDump {
	var out []metrics.SeriesDump
	for _, tr := range r.Traces() {
		out = append(out, tr.SeriesDumps()...)
	}
	return out
}

// Traces returns the traces attached so far, in construction order. Each
// is finalized so counter probes snapshot their final values.
func (r *Run) Traces() []*obs.Trace {
	for _, tr := range r.traces {
		tr.Finalize()
	}
	return r.traces
}

// PublishHistogram exports a latency (or other sample) distribution into
// the machine-readable Result: summary scalars plus the non-empty bucket
// vector, so downstream tooling can re-derive arbitrary percentiles.
func (r *Run) PublishHistogram(name, unit string, h *metrics.Histogram) {
	if h == nil {
		return
	}
	r.hists = append(r.hists, HistogramDump{
		Name: name, Unit: unit, Summary: h.Summarize(), Buckets: h.Buckets()})
}

// Histograms returns the distributions published so far.
func (r *Run) Histograms() []HistogramDump { return r.hists }

// Table is one regenerated artifact.
type Table struct {
	ID    string `json:"id"` // experiment id (fig10a, table3, ...)
	Title string `json:"title"`
	// LabelCols is the number of leading identity columns (defaults to 1);
	// the rest are metric columns for Samples extraction.
	LabelCols int        `json:"label_cols,omitempty"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func us(t sim.Time) string { return fmt.Sprintf("%.1f", float64(t)/1000) }

// Experiment is one registered paper artifact, decomposed into the config
// points that can run independently (and therefore in parallel).
type Experiment struct {
	ID string
	// Points lists the independently runnable shards in canonical row
	// order. Experiments with internal cross-point dependencies (e.g.
	// fig15's normalization baseline) expose a single point.
	Points []string
	// RunPoint executes one point and returns its partial tables. Every
	// point must return the same table set (ids, titles, headers) so
	// Assemble can merge them.
	RunPoint func(s Scale, r *Run, point string) []*Table
	// Assemble merges per-point partial tables, given in Points order.
	// Nil selects the default merge: concatenate rows table-wise.
	Assemble func(parts [][]*Table) []*Table
}

func (e *Experiment) assemble(parts [][]*Table) []*Table {
	if e.Assemble != nil {
		return e.Assemble(parts)
	}
	return mergeParts(parts)
}

// Tables runs every point sequentially on r and assembles the result —
// the single-threaded reference path the parallel Runner must match
// bit-for-bit.
func (e *Experiment) Tables(s Scale, r *Run) []*Table {
	parts := make([][]*Table, len(e.Points))
	for i, pt := range e.Points {
		r.point = pt
		parts[i] = e.RunPoint(s, r, pt)
	}
	r.point = ""
	return e.assemble(parts)
}

// mergeParts concatenates partial tables index-wise: the first part
// supplies each table's identity (id, title, header); subsequent parts
// contribute rows in point order.
func mergeParts(parts [][]*Table) []*Table {
	var out []*Table
	for _, part := range parts {
		for ti, pt := range part {
			if ti == len(out) {
				out = append(out, &Table{ID: pt.ID, Title: pt.Title,
					LabelCols: pt.LabelCols, Header: pt.Header})
			}
			out[ti].Rows = append(out[ti].Rows, pt.Rows...)
		}
	}
	return out
}

// Experiments maps experiment ids to their registrations (shared by the
// CLI, the Runner, and the root benchmarks).
var Experiments = map[string]*Experiment{}

// register adds a single-point, single-table experiment.
func register(id string, fn func(Scale, *Run) *Table) {
	Experiments[id] = &Experiment{ID: id, Points: []string{""},
		RunPoint: func(s Scale, r *Run, _ string) []*Table { return []*Table{fn(s, r)} }}
}

// registerMulti adds a single-point experiment emitting several tables.
func registerMulti(id string, fn func(Scale, *Run) []*Table) {
	Experiments[id] = &Experiment{ID: id, Points: []string{""},
		RunPoint: func(s Scale, r *Run, _ string) []*Table { return fn(s, r) }}
}

// registerPoints adds an experiment whose config points run independently.
func registerPoints(id string, points []string, fn func(Scale, *Run, string) []*Table) {
	Experiments[id] = &Experiment{ID: id, Points: points, RunPoint: fn}
}

// IDs returns the registered experiment ids in canonical order.
func IDs() []string {
	order := []string{"table2", "table3", "table6", "fig4", "fig5", "fig10",
		"fig11", "fig12", "fig13a", "fig13b", "fig14", "fig15", "fig16", "fig17",
		"detect", "batching", "wear", "append", "avail", "fleet", "tenants",
		"rolling", "future"}
	var out []string
	for _, id := range order {
		if _, ok := Experiments[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// newLatHist is shorthand for a latency histogram.
func newLatHist() *metrics.Histogram { return metrics.NewHistogram() }

// Markdown renders the table as GitHub-flavored markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
