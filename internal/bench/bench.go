// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment returns a Table whose rows mirror what
// the paper plots; absolute values come from the simulated substrate, so
// the comparisons (who wins, by what factor) are the reproduction target,
// not the raw numbers.
package bench

import (
	"fmt"
	"strings"

	"biza/internal/metrics"
	"biza/internal/sim"
)

// Scale controls experiment cost. Default matches the committed results;
// Quick is for smoke tests.
type Scale struct {
	Duration sim.Time // virtual measurement window per run
	TraceOps int      // synthesized ops per trace workload
	Warmup   uint64   // warmup bytes before measuring
}

// DefaultScale is used by the committed EXPERIMENTS.md results.
func DefaultScale() Scale {
	return Scale{Duration: 50 * sim.Millisecond, TraceOps: 60000, Warmup: 64 << 20}
}

// QuickScale runs every experiment in seconds (CI smoke).
func QuickScale() Scale {
	return Scale{Duration: 4 * sim.Millisecond, TraceOps: 4000, Warmup: 1 << 20}
}

// Table is one regenerated artifact.
type Table struct {
	ID     string // experiment id (fig10, table3, ...)
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func us(t sim.Time) string { return fmt.Sprintf("%.1f", float64(t)/1000) }

// Experiments maps experiment ids to their runners (fig13a/fig13b are in
// apps.go; everything shares this registry for the CLI and benchmarks).
var Experiments = map[string]func(Scale) []*Table{}

func register(id string, fn func(Scale) *Table) {
	Experiments[id] = func(s Scale) []*Table { return []*Table{fn(s)} }
}

func registerMulti(id string, fn func(Scale) []*Table) {
	Experiments[id] = fn
}

// IDs returns the registered experiment ids in canonical order.
func IDs() []string {
	order := []string{"table2", "table3", "table6", "fig4", "fig5", "fig10",
		"fig11", "fig12", "fig13a", "fig13b", "fig14", "fig15", "fig16", "fig17",
		"detect", "batching", "wear", "append", "future"}
	var out []string
	for _, id := range order {
		if _, ok := Experiments[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// newLatHist is shorthand for a latency histogram.
func newLatHist() *metrics.Histogram { return metrics.NewHistogram() }

// Markdown renders the table as GitHub-flavored markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
