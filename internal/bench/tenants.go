package bench

import (
	"fmt"
	"strconv"

	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/volume"
)

func init() {
	registerPoints("tenants", []string{"baseline", "qos", "noqos"}, Tenants)
	Experiments["tenants"].Assemble = assembleTenants
}

// Tenant experiment sizing. Each array hosts one aggressor (tenant 0)
// plus an even mix of interactive (odd ids) and batch (even ids) tenants,
// every tenant a named volume of the array's volume manager. Per-tenant
// demand derives from fixed per-array aggregates, so array utilization —
// and therefore the isolation comparison — is the same at every Scale.
const (
	tenantWindow = 20 * sim.Microsecond // shard barrier window
	tenantZones  = 16                   // zones per member device

	tenantInflight = 8 // manager dispatch window into each array

	aggBlocks   = 32 // 128 KiB aggressor writes
	aggDepth    = 32 // aggressor outstanding ops
	aggVolume   = 4096
	interBlocks = 1 // 4 KiB interactive writes
	interVolume = 128
	interWeight = 16
	batchBlocks = 16 // 64 KiB batch writes
	batchVolume = 512
	batchWeight = 4
	batchBurst  = 128 << 10 // small burst so the throttle binds even at quick scale

	// Ambient per-array offered load, split across however many tenants
	// the Scale provisions (the arrays serve ~5 GB/s, so ~half load:
	// visible queueing without ambient saturation).
	interArrayBytes = 1 << 30 // interactive aggregate per array, bytes/s
	batchArrayBytes = 3 << 29 // batch aggregate per array, bytes/s
	nsPerSec        = int64(1e9)
)

// Tenant classes, in reporting order.
const (
	classInteractive = iota
	classBatch
	classAggressor
	numClasses
)

var className = [numClasses]string{"interactive", "batch", "aggressor"}

func tenantClass(id int) int {
	switch {
	case id == 0:
		return classAggressor
	case id%2 == 1:
		return classInteractive
	default:
		return classBatch
	}
}

// tenantRef is one tenant's workload state. All fields are touched only
// on the owning array's shard goroutine.
type tenantRef struct {
	v     *volume.Volume
	eng   *sim.Engine
	rng   *sim.RNG
	class int
	next  int64 // next sequential lba (aggressor/batch wrap)
	lat   *metrics.Histogram
}

// Tenants is the multi-tenant QoS-isolation experiment: arrays sharded
// across engines, each multiplexed into ~a hundred tenant volumes through
// internal/volume. The three points share one workload and differ only in
// contention and discipline:
//
//   - baseline: aggressors idle, QoS on — the undisturbed reference.
//   - qos: every array's aggressor saturates it with deep large writes;
//     WFQ + the bounded dispatch window isolate the other tenants.
//   - noqos: same aggression with admission control disabled — the
//     interactive class queues behind the full aggressor backlog.
//
// Every tenant lives entirely on its array's shard, so per-array behavior
// is independent of the shard assignment and all tables are bit-identical
// at any -shards value. The assembled tenants-isolation table divides
// each point's interactive p99 by the baseline's: the qos row is the
// paper-style isolation claim (< 2x), the noqos row the unbounded
// counterfactual.
func Tenants(s Scale, r *Run, point string) []*Table {
	numArrays, perArray := s.TenantArrays, s.Tenants
	if numArrays < 1 || perArray < 3 {
		panic("tenants: scale has no tenant sizing")
	}
	g := r.ShardGroup(tenantWindow)

	cfg := volume.Config{MaxInflight: tenantInflight}
	if point == "noqos" {
		cfg = volume.Config{DisableQoS: true}
	}
	aggressorsRun := point != "baseline"

	// Split the fixed per-array aggregates across this Scale's tenants.
	numInter, numBatch := 0, 0
	for ti := 0; ti < perArray; ti++ {
		switch tenantClass(ti) {
		case classInteractive:
			numInter++
		case classBatch:
			numBatch++
		}
	}
	const tenantBS = 4096 // BenchZNS block size
	interGap := sim.Time(int64(interBlocks*tenantBS) * nsPerSec * int64(numInter) / interArrayBytes)
	batchRate := int64(batchArrayBytes) / int64(numBatch)

	// Construct arrays and their tenants in canonical order on
	// round-robin shards (construction order never depends on -shards).
	// Latency histograms are per tenant — shards must not share one — and
	// merge per class in canonical tenant order after the run.
	tenants := make([]*tenantRef, 0, numArrays*perArray)
	for ai := 0; ai < numArrays; ai++ {
		sh := g.Shard(ai % g.Shards())
		p, err := r.PlatformOnShard(sh, stack.KindBIZA, stack.Options{
			ZNS:  stack.BenchZNS(tenantZones),
			Seed: r.Seed(fmt.Sprintf("%s/stack/a%02d", point, ai)),
		})
		if err != nil {
			panic(fmt.Sprintf("tenants: array %d: %v", ai, err))
		}
		m := volume.New(sh.Engine(), p.Dev, cfg)
		m.SetTracer(p.Trace())
		for ti := 0; ti < perArray; ti++ {
			class := tenantClass(ti)
			opts := volume.Options{}
			switch class {
			case classAggressor:
				opts = volume.Options{Blocks: aggVolume, QoS: volume.QoS{Weight: 1}}
			case classInteractive:
				opts = volume.Options{Blocks: interVolume, QoS: volume.QoS{Weight: interWeight}}
			case classBatch:
				opts = volume.Options{Blocks: batchVolume, QoS: volume.QoS{
					Weight: batchWeight, RateBytesPerSec: batchRate, BurstBytes: batchBurst}}
			}
			v, err := m.Open(fmt.Sprintf("t%03d", ti), opts)
			if err != nil {
				panic(fmt.Sprintf("tenants: array %d tenant %d: %v", ai, ti, err))
			}
			tenants = append(tenants, &tenantRef{
				v: v, eng: sh.Engine(), class: class, lat: newLatHist(),
				rng: sim.NewRNG(r.Seed(fmt.Sprintf("%s/tenant/a%02d/t%03d", point, ai, ti))),
			})
		}
	}

	endAt := s.Duration

	// Closed-loop issue functions per class. Completion latencies are
	// end-to-end: token-bucket gating and WFQ queueing included.
	var issue func(t *tenantRef)
	issue = func(t *tenantRef) {
		if t.eng.Now() >= endAt {
			return // tenant retires; in-flight work drains the group
		}
		done := func(res blockdev.WriteResult) {
			if res.Err != nil {
				panic(fmt.Sprintf("tenants: %s write: %v", className[t.class], res.Err))
			}
			t.lat.Record(res.Latency)
			if t.class == classInteractive {
				// Interactive tenants think between requests, jittered
				// around the per-array aggregate pacing gap.
				think := interGap*3/4 + sim.Time(t.rng.Intn(int(interGap/2)))
				t.eng.After(think, func() { issue(t) })
				return
			}
			issue(t)
		}
		switch t.class {
		case classAggressor:
			lba := t.next
			t.next = (t.next + aggBlocks) % aggVolume
			t.v.Write(lba, aggBlocks, nil, done)
		case classInteractive:
			lba := t.rng.Int63n(interVolume - interBlocks + 1)
			t.v.Write(lba, interBlocks, nil, done)
		case classBatch:
			lba := t.next
			t.next = (t.next + batchBlocks) % batchVolume
			t.v.Write(lba, batchBlocks, nil, done)
		}
	}

	// Kick every tenant from the coordinator with a staggered start; src
	// keys are globally unique so the injected order is canonical at any
	// shard count. Aggressors prime their full depth.
	for gi, t := range tenants {
		if t.class == classAggressor && !aggressorsRun {
			continue
		}
		t := t
		at := tenantWindow + sim.Time(t.rng.Intn(int(4*tenantWindow)))
		shard := (gi / perArray) % g.Shards()
		g.Send(shard, at, int64(gi), func() {
			n := 1
			if t.class == classAggressor {
				n = aggDepth
			}
			for i := 0; i < n; i++ {
				issue(t)
			}
		})
	}

	g.Run(endAt)
	if !g.Drain(endAt + 100*sim.Millisecond) {
		panic("tenants: group did not quiesce after the measured horizon")
	}

	// Per-class aggregation in canonical tenant order.
	secs := float64(endAt) / float64(sim.Second)
	tbl := &Table{ID: "tenants",
		Title: fmt.Sprintf("multi-tenant QoS isolation: %d arrays x %d tenants",
			numArrays, perArray),
		LabelCols: 2,
		Header: []string{"point", "class", "tenants", "ops", "MBps",
			"p50_us", "p99_us", "stalls", "jain"}}
	for class := 0; class < numClasses; class++ {
		var count int
		var ops, bytes, stalls uint64
		var perTenant []float64
		h := newLatHist()
		for _, t := range tenants {
			if t.class != class {
				continue
			}
			st := t.v.Stats()
			count++
			ops += st.Ops
			bytes += st.Bytes
			stalls += st.ThrottleStalls
			perTenant = append(perTenant, float64(st.Ops))
			h.Merge(t.lat)
		}
		tbl.Add(point, className[class],
			fmt.Sprintf("%d", count),
			fmt.Sprintf("%d", ops),
			f1(float64(bytes)/(1<<20)/secs),
			us(sim.Time(h.Percentile(50))),
			us(sim.Time(h.Percentile(99))),
			fmt.Sprintf("%d", stalls),
			f3(metrics.JainIndex(perTenant)))
		r.PublishHistogram(fmt.Sprintf("tenants/%s/%s", point, className[class]), "ns", h)
	}
	return []*Table{tbl}
}

// tenantP99Col is the p99_us column index of the tenants table.
const tenantP99Col = 6

// assembleTenants merges the per-point tables and derives the isolation
// table: each point's interactive p99 normalized to the idle baseline.
func assembleTenants(parts [][]*Table) []*Table {
	out := mergeParts(parts)
	iso := &Table{ID: "tenants-isolation",
		Title:  "interactive p99 under aggressor saturation, vs idle baseline",
		Header: []string{"point", "p99_us", "vs_baseline"}}
	var base float64
	for _, row := range out[0].Rows {
		if row[1] != className[classInteractive] {
			continue
		}
		p99, err := strconv.ParseFloat(row[tenantP99Col], 64)
		if err != nil {
			panic(fmt.Sprintf("tenants: unparsable p99 cell %q", row[tenantP99Col]))
		}
		if row[0] == "baseline" {
			base = p99
		}
		ratio := "0"
		if base > 0 {
			ratio = f2(p99 / base)
		}
		iso.Add(row[0], row[tenantP99Col], ratio)
	}
	return append(out, iso)
}
