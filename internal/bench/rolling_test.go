package bench

import (
	"reflect"
	"strconv"
	"testing"
)

// parseFloatCell parses a numeric table cell.
func parseFloatCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("unparsable cell %q", cell)
	}
	return v
}

func runRolling(t *testing.T, shards int) *Report {
	t.Helper()
	rn := &Runner{
		Scale:    QuickScale(),
		Seed:     DefaultSeed,
		Parallel: 1,
		Shards:   shards,
		Quick:    true,
	}
	rep := rn.Run([]string{"rolling"})
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("shards=%d: rolling failed: %s", shards, rep.Results[0].Error)
	}
	return rep
}

func rollingVerdict(t *testing.T, tbl *Table, point string) string {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == point {
			return row[len(row)-1]
		}
	}
	t.Fatalf("no %q row in:\n%s", point, tbl.String())
	return ""
}

// TestRollingSLO pins the experiment's acceptance claim: a paced rolling
// replacement holds the foreground p99 inside the availability budget
// while the unpaced rebuild violates it, and the pacing's cost is a
// longer replacement window.
func TestRollingSLO(t *testing.T) {
	rep := runRolling(t, 2)
	slo := tenantsTable(t, rep, "rolling-slo")
	if got := rollingVerdict(t, slo, "unpaced"); got != "violated" {
		t.Errorf("unpaced verdict = %q, want violated:\n%s", got, slo.String())
	}
	for _, point := range []string{"paced", "slow"} {
		if got := rollingVerdict(t, slo, point); got != "ok" {
			t.Errorf("%s verdict = %q, want ok:\n%s", point, got, slo.String())
		}
	}

	// Pacing trades replacement-window length for foreground latency:
	// windows must grow monotonically as the rebuild slows down.
	win := tenantsTable(t, rep, "rolling-window")
	windows := map[string]float64{}
	for _, row := range win.Rows {
		windows[row[0]] = parseFloatCell(t, row[1])
	}
	if !(windows["unpaced"] < windows["paced"] && windows["paced"] < windows["slow"]) {
		t.Errorf("windows not monotone: unpaced=%.2f paced=%.2f slow=%.2f",
			windows["unpaced"], windows["paced"], windows["slow"])
	}

	// Every phase of every point saw foreground traffic.
	main := tenantsTable(t, rep, "rolling")
	if got := len(main.Rows); got != 9 {
		t.Fatalf("rolling table has %d rows, want 9 (3 points x 3 phases)", got)
	}
	for _, row := range main.Rows {
		if row[2] == "0" {
			t.Errorf("%s/%s completed zero ops: %v", row[0], row[1], row)
		}
	}
}

// TestRollingShardCountInvariance pins the determinism contract for the
// availability experiment: tables, samples, histograms, and virtual time
// are byte-identical at any -shards value.
func TestRollingShardCountInvariance(t *testing.T) {
	ref := runRolling(t, 1)
	for _, shards := range []int{2, 8} {
		got := runRolling(t, shards)
		a, b := &ref.Results[0], &got.Results[0]
		if !reflect.DeepEqual(a.Tables, b.Tables) {
			t.Errorf("shards=%d: tables differ from shards=1:\n%s\nvs\n%s",
				shards, renderTables(a.Tables), renderTables(b.Tables))
		}
		if !reflect.DeepEqual(a.Samples, b.Samples) {
			t.Errorf("shards=%d: samples differ from shards=1", shards)
		}
		if !reflect.DeepEqual(a.Histograms, b.Histograms) {
			t.Errorf("shards=%d: histograms differ from shards=1", shards)
		}
		if a.Stats.VirtualNanos != b.Stats.VirtualNanos {
			t.Errorf("shards=%d: virtual time %d, shards=1 got %d",
				shards, b.Stats.VirtualNanos, a.Stats.VirtualNanos)
		}
	}
}
