package bench

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/workload"
)

func init() {
	registerPoints("detect", []string{"0.00", "0.25", "0.50", "0.75"}, detectPoint)
	registerPoints("batching", []string{"4", "64", "192"}, batchingPoint)
	register("append", AblationAppendVsZRWA)
	register("future", AblationFutureZNS)
	registerPoints("wear", kindNames([]stack.Kind{stack.KindBIZA, stack.KindBIZANoSel,
		stack.KindDmzapRAIZN, stack.KindMdraidDmzap}), wearPoint)
}

// AblationFutureZNS evaluates §6's future-ZNS proposal: devices that
// piggyback the zone-to-channel mapping in OPEN completions. On heavily
// aged devices the guess-and-verify detector can only approximate the
// mapping; CQE-informed opens make every guess exact, so GC avoidance
// steers perfectly without any diagnosis cost.
func AblationFutureZNS(s Scale, r *Run) *Table {
	t := &Table{ID: "future", Title: "§6 future ZNS: channel mapping in OPEN completions",
		Header: []string{"device", "corrections", "mispredict_after", "collide_rate"}}
	run := func(name string, expose bool) {
		z := stack.BenchZNS(48)
		z.ZoneBlocks = 512
		z.ZRWABlocks = 64
		z.ShuffleFraction = 0.75 // heavily aged: worst case for guessing
		z.ExposeChannelOnOpen = expose
		ccfg := core.DefaultConfig(z.NumZones)
		p, err := r.Platform(stack.KindBIZA, stack.Options{ZNS: z, BIZAConfig: &ccfg,
			Seed: r.Seed(name + "/stack")})
		if err != nil {
			panic(err)
		}
		devs := p.ZNSDevs
		p.BIZA.SetChannelOracle(func(dev, zone int) int {
			return devs[dev].TrueChannelOf(zone)
		})
		rng := sim.NewRNG(r.Seed(name + "/churn"))
		span := p.Dev.Blocks() / 2
		churn := int(span/8) * 4
		if churn > s.TraceOps*8 {
			churn = s.TraceOps * 8
		}
		outstanding := 0
		for i := 0; i < churn; i++ {
			outstanding++
			p.Dev.Write(rng.Int63n(span-8), 8, nil, func(blockdev.WriteResult) { outstanding-- })
			if outstanding >= 32 {
				p.Eng.Run()
			}
		}
		p.Eng.Run()
		writes, hits := p.BIZA.BusyCollisions()
		rate := 0.0
		if writes > 0 {
			rate = float64(hits) / float64(writes)
		}
		t.Add(name, fmt.Sprintf("%d", p.BIZA.DetectCorrections()),
			f3(mispredictRateCorrected(p)), f3(rate))
	}
	run("opaque (today)", false)
	run("CQE-informed (§6)", true)
	return t
}

// AblationAppendVsZRWA compares BIZA's ZRWA-based design against the
// APPEND-based alternative (§3.2/§6): appends parallelize as well as the
// sliding window, but cannot absorb overwrites or partial parities — the
// endurance gap is the paper's reason to prefer ZRWA.
func AblationAppendVsZRWA(s Scale, r *Run) *Table {
	t := &Table{ID: "append", Title: "ZRWA (BIZA) vs APPEND (ZapRAID-style)",
		Header: []string{"metric", "BIZA", "ZapRAID", "ratio"}}
	// Throughput: sequential 64 KiB writes at depth 32.
	tput := func(kind stack.Kind) float64 {
		p, err := r.Platform(kind, stack.Options{Seed: r.Seed("tput/" + string(kind) + "/stack")})
		if err != nil {
			panic(err)
		}
		res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
			Pattern: workload.Seq, SizeBlocks: 16, IODepth: 32,
			Duration: s.Duration, Seed: r.Seed("tput/" + string(kind) + "/wl"),
		})
		return res.Throughput().MBps()
	}
	bT, zT := tput(stack.KindBIZA), tput(stack.KindZapRAID)
	t.Add("seq64K_MBps", f1(bT), f1(zT), f2(bT/zT))
	// Endurance: flash writes per user byte on a hot-overwrite workload.
	wa := func(kind stack.Kind) float64 {
		p, err := r.Platform(kind, stack.Options{Seed: r.Seed("wa/" + string(kind) + "/stack")})
		if err != nil {
			panic(err)
		}
		rng := sim.NewRNG(r.Seed("wa/" + string(kind) + "/churn"))
		outstanding := 0
		n := s.TraceOps * 4
		for i := 0; i < n; i++ {
			lba := rng.Int63n(2048) // 8 MiB hot set
			outstanding++
			p.Dev.Write(lba, 1, nil, func(blockdev.WriteResult) { outstanding-- })
			if outstanding >= 32 {
				p.Eng.Run()
			}
		}
		p.Flush()
		wa := p.FlashWriteAmp()
		return wa.Factor()
	}
	bW, zW := wa(stack.KindBIZA), wa(stack.KindZapRAID)
	t.Add("hot_overwrite_WA", f2(bW), f2(zW), f2(bW/zW))
	return t
}

// batchingPoint quantifies the submission-merging design choice for one
// request size: BIZA's contiguous-chunk batching versus one-block device
// commands (sequential writes, iodepth 32).
func batchingPoint(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "batching", Title: "submission batching ablation (seq write MB/s)",
		Header: []string{"size_KB", "batched", "single_block", "speedup"}}
	sizeKB := atoiPoint(point)
	run := func(maxBatch int64) float64 {
		ccfg := core.DefaultConfig(128)
		ccfg.MaxBatchBlocks = maxBatch
		cell := fmt.Sprintf("%d/batch%d", sizeKB, maxBatch)
		p, err := r.Platform(stack.KindBIZA, stack.Options{BIZAConfig: &ccfg,
			Seed: r.Seed(cell + "/stack")})
		if err != nil {
			panic(err)
		}
		res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
			Pattern: workload.Seq, SizeBlocks: sizeKB * 1024 / 4096,
			IODepth: 32, Duration: s.Duration, Seed: r.Seed(cell + "/wl"),
		})
		return res.Throughput().MBps()
	}
	batched := run(0)
	single := run(1)
	t.Add(fmt.Sprintf("%d", sizeKB), f1(batched), f1(single), f2(batched/single))
	return []*Table{t}
}

// AblationBatching reproduces the batching ablation in full (all sizes).
func AblationBatching(s Scale, r *Run) *Table {
	return Experiments["batching"].Tables(s, r)[0]
}

// detectPoint measures the §4.3 guess-and-verify detector on aged devices
// for one shuffle fraction: as the fraction of zones whose channel
// deviates from round-robin grows, the vote-based corrector should keep
// fixing guesses while GC and user traffic race. Reported: corrections
// made and the final misprediction rate over zones the engine actually
// touched.
func detectPoint(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "detect", Title: "guess-and-verify channel detection on aged devices",
		Header: []string{"shuffle_frac", "gc_events", "corrections",
			"mispredict_before", "mispredict_after", "collide_avoid", "collide_noavoid"}}
	fracs := map[string]float64{"0.00": 0, "0.25": 0.25, "0.50": 0.5, "0.75": 0.75}
	frac := fracs[point]
	run := func(kind stack.Kind) (*stack.Platform, float64) {
		z := stack.BenchZNS(48)
		z.ZoneBlocks = 512
		z.ZRWABlocks = 64
		z.ShuffleFraction = frac
		ccfg := core.DefaultConfig(z.NumZones)
		cell := point + "/" + string(kind)
		p, err := r.Platform(kind, stack.Options{ZNS: z, BIZAConfig: &ccfg,
			Seed: r.Seed(cell + "/stack")})
		if err != nil {
			panic(err)
		}
		devs := p.ZNSDevs
		p.BIZA.SetChannelOracle(func(dev, zone int) int {
			return devs[dev].TrueChannelOf(zone)
		})
		rng := sim.NewRNG(r.Seed(cell + "/churn"))
		span := p.Dev.Blocks() / 2
		churn := int(span/8) * 4
		if quick := s.TraceOps; churn > quick*8 {
			churn = quick * 8
		}
		outstanding := 0
		for i := 0; i < churn; i++ {
			outstanding++
			p.Dev.Write(rng.Int63n(span-8), 8, nil, func(blockdev.WriteResult) { outstanding-- })
			if outstanding >= 32 {
				p.Eng.Run()
			}
		}
		p.Eng.Run()
		writes, hits := p.BIZA.BusyCollisions()
		rate := 0.0
		if writes > 0 {
			rate = float64(hits) / float64(writes)
		}
		return p, rate
	}
	pAvoid, collideAvoid := run(stack.KindBIZA)
	_, collideNo := run(stack.KindBIZANoAvoid)
	t.Add(fmt.Sprintf("%.2f", frac),
		fmt.Sprintf("%d", pAvoid.BIZA.GCEvents()),
		fmt.Sprintf("%d", pAvoid.BIZA.DetectCorrections()),
		f3(mispredictRate(pAvoid)), f3(mispredictRateCorrected(pAvoid)),
		f3(collideAvoid), f3(collideNo))
	return []*Table{t}
}

// AblationChannelDetect reproduces the detection ablation in full (all
// shuffle fractions).
func AblationChannelDetect(s Scale, r *Run) *Table {
	return Experiments["detect"].Tables(s, r)[0]
}

// mispredictRate reports the fraction of zones whose round-robin guess
// disagrees with the device's hidden mapping.
func mispredictRate(p *stack.Platform) float64 {
	wrong, total := 0, 0
	for _, d := range p.ZNSDevs {
		n := d.Config().NumZones
		ch := d.Config().NumChannels
		for z := 0; z < n; z++ {
			total++
			if d.TrueChannelOf(z) != z%ch {
				wrong++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}

// mispredictRateCorrected compares the engine's current (possibly
// corrected) guesses against the truth, over zones the engine actually
// used (the only zones observations can reach).
func mispredictRateCorrected(p *stack.Platform) float64 {
	wrong, total := 0, 0
	for di, d := range p.ZNSDevs {
		n := d.Config().NumZones
		for z := 0; z < n; z++ {
			if d.EraseCount(z) == 0 {
				info, err := d.ZoneInfo(z)
				if err != nil || info.State == 0 /* empty */ {
					continue
				}
			}
			total++
			if d.TrueChannelOf(z) != p.BIZA.GuessedChannel(di, z) {
				wrong++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}

// wearPoint reports per-zone erase statistics for one platform after a
// fixed churn volume — the endurance consequence of each platform's GC
// policy (fewer, better-targeted collections erase less flash).
func wearPoint(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "wear", Title: "zone erase counts after identical churn",
		Header: []string{"platform", "total_erases", "max_zone_erases", "mean_zone_erases", "flash_GB_programmed"}}
	kind := stack.Kind(point)
	z := stack.BenchZNS(48)
	z.ZoneBlocks = 512
	z.ZRWABlocks = 64
	p, err := r.Platform(kind, stack.Options{ZNS: z, Seed: r.Seed(point + "/stack")})
	if err != nil {
		panic(err)
	}
	rng := sim.NewRNG(r.Seed(point + "/churn"))
	span := p.Dev.Blocks() / 2
	churn := int(span/8) * 4
	if churn > s.TraceOps*8 {
		churn = s.TraceOps * 8
	}
	outstanding := 0
	for i := 0; i < churn; i++ {
		outstanding++
		lba := rng.Int63n(span - 8)
		if i%3 == 0 {
			lba = rng.Int63n(64) // hot head
		}
		p.Dev.Write(lba, 8, nil, func(blockdev.WriteResult) { outstanding-- })
		if outstanding >= 32 {
			p.Eng.Run()
		}
	}
	p.Eng.Run()
	var total, max uint64
	zones := 0
	for _, d := range p.ZNSDevs {
		for zi := 0; zi < d.Config().NumZones; zi++ {
			e := d.EraseCount(zi)
			total += e
			if e > max {
				max = e
			}
			zones++
		}
	}
	var programmed uint64
	for _, d := range p.ZNSDevs {
		programmed += d.Stats().TotalProgrammed()
	}
	mean := 0.0
	if zones > 0 {
		mean = float64(total) / float64(zones)
	}
	t.Add(string(kind), fmt.Sprintf("%d", total), fmt.Sprintf("%d", max),
		f2(mean), f2(float64(programmed)/(1<<30)))
	return []*Table{t}
}

// WearDistribution reproduces the wear table in full (all platforms).
func WearDistribution(s Scale, r *Run) *Table {
	return Experiments["wear"].Tables(s, r)[0]
}
