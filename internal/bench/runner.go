package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"biza/internal/metrics"
	"biza/internal/obs"
)

// Runner executes experiments — and the independent config points inside
// each experiment — across a worker pool. Determinism contract: every
// stochastic stream seeds from (Seed, experiment id, stream label) only,
// and results assemble in canonical registry order, so the output is
// bit-identical for any Parallel value. A panicking point fails only its
// own experiment (recorded in Result.Error); the rest of the sweep
// completes.
type Runner struct {
	Scale    Scale
	Seed     uint64 // base seed for every derived RNG stream
	Parallel int    // worker count; <=1 runs serially
	Shards   int    // engine shards per point (sharded experiments); <=1 = 1
	Quick    bool   // recorded in the report for provenance

	// Trace enables per-platform observability collection: every stack a
	// point assembles gets an obs.Trace with this config, gathered into
	// Report.Traces in canonical order (byte-identical across Parallel).
	Trace *obs.Config

	// Series arms a virtual-time sampler on every attached trace; the
	// sampled series land in Result.Series in canonical order. Implies
	// tracing (a default Trace config is used when Trace is nil).
	Series *metrics.SamplerConfig

	// Observer, when set, is called after each config point completes
	// (successfully or not), from the worker goroutine that ran it. The
	// run's traces and histograms are final by then. The live ops endpoint
	// publishes progress snapshots from this hook; it must be safe for
	// concurrent calls.
	Observer func(experiment, point string, run *Run)
}

// unit is one schedulable shard: a single config point of one experiment.
type unit struct {
	exp, point int
}

// Run executes the given experiment ids and returns the assembled report.
// Unknown ids yield a Result with Error set rather than a panic, so a CI
// sweep reports them like any other failure.
func (rn *Runner) Run(ids []string) *Report {
	workers := rn.Parallel
	if workers < 1 {
		workers = 1
	}
	start := time.Now() // ci:allow-wallclock — sweep wall-time accounting, never simulation input

	exps := make([]*Experiment, len(ids))
	parts := make([][][]*Table, len(ids))   // parts[e][p]: tables of point p
	wall := make([][]int64, len(ids))       // wall[e][p]: wall ns of point p
	perr := make([][]string, len(ids))      // perr[e][p]: panic message, if any
	runs := make([][]*Run, len(ids))        // runs[e][p]: run context (traces, hists)
	sinks := make([]atomic.Int64, len(ids)) // virtual time per experiment
	var units []unit
	for e, id := range ids {
		exps[e] = Experiments[id]
		if exps[e] == nil {
			continue // reported below
		}
		n := len(exps[e].Points)
		parts[e] = make([][]*Table, n)
		wall[e] = make([]int64, n)
		perr[e] = make([]string, n)
		runs[e] = make([]*Run, n)
		for p := 0; p < n; p++ {
			units = append(units, unit{exp: e, point: p})
		}
	}

	// Workers drain the unit queue. Each slot of parts/wall/perr is
	// written by exactly one unit, so no locking is needed beyond the
	// queue itself.
	queue := make(chan unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				rn.runUnit(ids[u.exp], exps[u.exp], u, parts[u.exp], wall[u.exp], perr[u.exp], runs[u.exp], &sinks[u.exp])
			}
		}()
	}
	for _, u := range units {
		queue <- u
	}
	close(queue)
	wg.Wait()

	shards := rn.Shards
	if shards < 1 {
		shards = 1
	}
	rep := &Report{Schema: ReportSchema, Seed: rn.Seed, Parallel: workers, Shards: shards, Quick: rn.Quick}
	for e, id := range ids {
		res := Result{Experiment: id, Seed: rn.Seed}
		switch {
		case exps[e] == nil:
			res.Error = fmt.Sprintf("unknown experiment %q", id)
		default:
			for p, msg := range perr[e] {
				if msg != "" {
					if res.Error != "" {
						res.Error += "; "
					}
					res.Error += fmt.Sprintf("point %q: %s", pointName(exps[e], p), msg)
				}
				res.Stats.Add(metrics.RunStats{WallNanos: wall[e][p]})
			}
			res.Stats.VirtualNanos = sinks[e].Load()
			// Drain the observability side-channel in canonical point
			// order, independent of which worker ran each unit.
			for _, run := range runs[e] {
				if run == nil {
					continue
				}
				res.Histograms = append(res.Histograms, run.Histograms()...)
				for _, tr := range run.Traces() {
					res.Stats.Probes = metrics.MergeProbes(res.Stats.Probes, tr.ProbeStats())
					res.Series = append(res.Series, tr.SeriesDumps()...)
					rep.Traces = append(rep.Traces, tr)
				}
			}
			if res.Error == "" {
				res.Tables = exps[e].assemble(parts[e])
				res.Samples = samplesOf(res.Tables)
			}
		}
		rep.Results = append(rep.Results, res)
	}
	rep.WallNanos = time.Since(start).Nanoseconds() // ci:allow-wallclock
	return rep
}

func pointName(e *Experiment, p int) string {
	if p < len(e.Points) {
		return e.Points[p]
	}
	return fmt.Sprintf("#%d", p)
}

// runUnit executes one config point, converting a panic into a recorded
// failure so one broken experiment cannot take down the sweep.
func (rn *Runner) runUnit(id string, e *Experiment, u unit,
	parts [][]*Table, wall []int64, perr []string, runs []*Run, sink *atomic.Int64) {
	t0 := time.Now() // ci:allow-wallclock — per-point wall-time accounting
	defer func() {
		wall[u.point] = time.Since(t0).Nanoseconds() // ci:allow-wallclock
		if p := recover(); p != nil {
			perr[u.point] = fmt.Sprint(p)
		}
	}()
	run := &Run{base: rn.Seed, exp: id, point: e.Points[u.point], shards: rn.Shards, vt: sink, traceCfg: rn.Trace}
	if rn.Series != nil {
		run.EnableSeries(*rn.Series)
	}
	runs[u.point] = run
	if rn.Observer != nil {
		// Deferred so panicking points publish their partial state too
		// (the panic itself is recorded by the outer recover afterwards).
		defer func() { rn.Observer(id, e.Points[u.point], run) }()
	}
	parts[u.point] = e.RunPoint(rn.Scale, run, e.Points[u.point])
}
