package bench

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/trace"
)

func init() {
	register("fig15", Fig15GCTail)
}

// gcOptions builds a deliberately small geometry (2 MiB zones) so the
// churn that activates GC fits in a short simulation. The no-GC baseline
// uses the same zone geometry with 8x the zones, so the fixed-op
// foreground never exhausts the free pool (service times are identical;
// only capacity differs).
func gcOptions(seed uint64, noGC bool) stack.Options {
	zones := 48
	if noGC {
		zones = 384
	}
	z := stack.BenchZNS(zones)
	z.ZoneBlocks = 512 // 2 MiB zones
	z.ZRWABlocks = 64  // 256 KiB ZRWA
	f := stack.BenchFTL(512)
	return stack.Options{ZNS: z, FTL: f, Seed: seed}
}

// dirtyForGC churns a span of the device with random overwrites until the
// platform's garbage collection is active, leaving the free pools near
// their watermarks so GC keeps firing during measurement.
func dirtyForGC(p *stack.Platform, seed uint64) {
	rng := sim.NewRNG(seed)
	span := p.Dev.Blocks() * 3 / 5
	outstanding := 0
	// Two passes of random 32 KiB overwrites.
	total := int(span/8) * 2
	for i := 0; i < total; i++ {
		outstanding++
		p.Dev.Write(rng.Int63n(span-8), 8, nil, func(blockdev.WriteResult) { outstanding-- })
		if outstanding >= 64 {
			p.Eng.Run()
		}
	}
	p.Eng.Run()
}

// Fig15GCTail reproduces Fig. 15: p99 and p99.99 sequential-write latency
// after GC starts, for throughput-sensitive (iodepth 32) and
// latency-sensitive (iodepth 1) scenarios, normalized against BIZA with no
// GC running. Single registry point: every row normalizes against the
// BIZA(no GC) baseline measured in the same run.
func Fig15GCTail(s Scale, r *Run) *Table {
	t := &Table{ID: "fig15", Title: "tail latency after GC starts (us; x = vs BIZA no-GC)",
		LabelCols: 3,
		Header:    []string{"platform", "depth", "size_KB", "p99_us", "p9999_us", "p9999_x"}}
	type cfg struct {
		kind  stack.Kind
		gc    bool
		label string
	}
	cfgs := []cfg{
		{stack.KindBIZA, false, "BIZA(no GC)"},
		{stack.KindBIZA, true, "BIZA"},
		{stack.KindBIZANoAvoid, true, "BIZAw/oAvoid"},
		{stack.KindDmzapRAIZN, true, "dmzap+RAIZN"},
		{stack.KindMdraidDmzap, true, "mdraid+dmzap"},
	}
	baseline := map[string]float64{} // depth/size -> BIZA(no GC) p99.99
	for _, c := range cfgs {
		for _, depth := range []int{32, 1} {
			for _, sizeKB := range []int{4, 64, 192} {
				cell := fmt.Sprintf("%s/%d/%d", c.label, depth, sizeKB)
				p, err := r.Platform(c.kind, gcOptions(r.Seed(cell+"/stack"), !c.gc))
				if err != nil {
					panic(err)
				}
				if c.gc {
					dirtyForGC(p, r.Seed(cell+"/dirty"))
					// Keep invalidations flowing during the measurement so
					// GC stays active throughout: an unmeasured, finite
					// background stream over the churned span (finite so
					// the event loop drains when both streams finish).
					bg := sim.NewRNG(r.Seed(cell + "/bg"))
					span := p.Dev.Blocks() * 3 / 5
					bgLeft := s.TraceOps
					var bgIssue func()
					bgIssue = func() {
						if bgLeft <= 0 {
							return
						}
						bgLeft--
						p.Dev.Write(bg.Int63n(span-8), 8, nil, func(blockdev.WriteResult) {
							p.Eng.After(50*sim.Microsecond, bgIssue)
						})
					}
					for i := 0; i < 4; i++ {
						bgIssue()
					}
				}
				// Fixed-op sequential foreground over a fresh region: a
				// starved platform shows up as tail latency, not missing
				// samples.
				blocks := sizeKB * 1024 / 4096
				ops := s.TraceOps / 8
				if ops < 200 {
					ops = 200
				}
				fg := &trace.Trace{Name: "fg", BlockSize: 4096}
				span := p.Dev.Blocks() / 4
				if !c.gc {
					span = p.Dev.Blocks() / 32 // same absolute span as the small device
				}
				var lba int64
				for i := 0; i < ops; i++ {
					if lba+int64(blocks) > span {
						lba = 0
					}
					fg.Ops = append(fg.Ops, trace.Op{Write: true, LBA: lba, Blocks: blocks})
					lba += int64(blocks)
				}
				res := trace.Replay(p.Eng, p.Dev, fg, depth)
				p.Eng.Run()
				key := fmt.Sprintf("%d/%d", depth, sizeKB)
				p9999 := float64(res.WriteLat.Percentile(99.99))
				if c.kind == stack.KindBIZA && !c.gc {
					baseline[key] = p9999
				}
				x := 0.0
				if b := baseline[key]; b > 0 {
					x = p9999 / b
				}
				t.Add(c.label, fmt.Sprintf("%d", depth), fmt.Sprintf("%d", sizeKB),
					us(res.WriteLat.Percentile(99)), us(res.WriteLat.Percentile(99.99)), f2(x))
			}
		}
	}
	return t
}
