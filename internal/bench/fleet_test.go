package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"biza/internal/obs"
	"biza/internal/sim"
)

// fleetScale is a test-sized fleet: big enough that clients genuinely
// hop across shards and collide on popular arrays, small enough to run
// under -race in CI.
func fleetScale() Scale {
	s := QuickScale()
	s.Duration = 2 * sim.Millisecond
	s.FleetArrays = 12
	s.FleetClients = 96
	return s
}

func runFleet(t *testing.T, shards int) *Report {
	t.Helper()
	rn := &Runner{
		Scale:    fleetScale(),
		Seed:     DefaultSeed,
		Parallel: 1,
		Shards:   shards,
		Quick:    true,
		Trace:    &obs.Config{SampleN: 1},
	}
	rep := rn.Run([]string{"fleet"})
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("shards=%d: fleet failed: %s", shards, rep.Results[0].Error)
	}
	return rep
}

// TestFleetShardCountInvariance pins the tentpole contract end to end:
// the fleet experiment's tables, samples, histograms, and exported
// traces are byte-identical at any shard count. Run with -race to also
// exercise the cross-shard barrier for data races.
func TestFleetShardCountInvariance(t *testing.T) {
	ref := runFleet(t, 1)
	refTrace := exportTraces(t, ref)
	for _, shards := range []int{2, 3, 8} {
		got := runFleet(t, shards)
		a, b := &ref.Results[0], &got.Results[0]
		if !reflect.DeepEqual(a.Tables, b.Tables) {
			t.Errorf("shards=%d: tables differ from shards=1:\n%s\nvs\n%s",
				shards, renderTables(a.Tables), renderTables(b.Tables))
		}
		if !reflect.DeepEqual(a.Samples, b.Samples) {
			t.Errorf("shards=%d: samples differ from shards=1", shards)
		}
		if !reflect.DeepEqual(a.Histograms, b.Histograms) {
			t.Errorf("shards=%d: histograms differ from shards=1", shards)
		}
		if a.Stats.VirtualNanos != b.Stats.VirtualNanos {
			t.Errorf("shards=%d: virtual time %d, shards=1 got %d",
				shards, b.Stats.VirtualNanos, a.Stats.VirtualNanos)
		}
		if tr := exportTraces(t, got); !bytes.Equal(refTrace, tr) {
			t.Errorf("shards=%d: exported traces differ from shards=1", shards)
		}
	}
}

// exportTraces renders the report's traces through both deterministic
// exporters, concatenated, so a single byte-compare covers both formats.
func exportTraces(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, rep.Traces); err != nil {
		t.Fatalf("perfetto export: %v", err)
	}
	if err := obs.WriteJSONL(&buf, rep.Traces); err != nil {
		t.Fatalf("jsonl export: %v", err)
	}
	return buf.Bytes()
}

func renderTables(ts []*Table) string {
	var buf bytes.Buffer
	for _, tb := range ts {
		buf.WriteString(tb.String())
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestFleetSanity checks the experiment does real work at test scale:
// every client makes progress and cross-array hops actually happen.
func TestFleetSanity(t *testing.T) {
	rep := runFleet(t, 4)
	res := &rep.Results[0]
	if len(res.Tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(res.Tables))
	}
	var fairness *Table
	for _, tb := range res.Tables {
		if tb.ID == "fleet-clients" {
			fairness = tb
		}
	}
	if fairness == nil {
		t.Fatalf("no fleet-clients table in %s", renderTables(res.Tables))
	}
	row := fairness.Rows[0]
	if row[1] == "0" {
		t.Errorf("some client completed zero ops: %v", row)
	}
	if res.Stats.VirtualNanos == 0 {
		t.Error("no virtual time credited")
	}
	// The JSON round-trip must stay deterministic too (the CI determinism
	// gate compares serialized reports).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}
