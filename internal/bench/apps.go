package bench

import (
	"fmt"

	"biza/internal/kvstore"
	"biza/internal/lsfs"
	"biza/internal/stack"
)

func init() {
	register("fig13a", Fig13Filebench)
	register("fig13b", Fig13DBBench)
}

// appKinds are the platforms compared under real applications. The paper's
// "RAIZN" configuration runs F2FS on RAIZN plus a small block-interface
// area for metadata; since this filesystem drives the block interface, the
// dmzap+RAIZN composition stands in for it (documented in DESIGN.md), and
// results are normalized to that baseline as the paper normalizes to RAIZN.
var appKinds = []stack.Kind{stack.KindBIZA, stack.KindDmzapRAIZN,
	stack.KindMdraidDmzap, stack.KindMdraidConvSSD}

func newAppFS(kind stack.Kind) (*stack.Platform, *lsfs.FS, error) {
	p, err := stack.New(kind, stack.Options{Seed: 77})
	if err != nil {
		return nil, nil, err
	}
	cfg := lsfs.DefaultConfig()
	fs, err := lsfs.New(p.Eng, p.Dev, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, fs, nil
}

// Fig13Filebench reproduces Fig. 13a: filebench personalities on the
// log-structured filesystem over each platform, ops/s normalized to the
// RAIZN-based baseline.
func Fig13Filebench(s Scale) *Table {
	t := &Table{ID: "fig13a", Title: "F2FS-like filesystem + filebench (ops/s, x = vs dmzap+RAIZN)",
		Header: []string{"workload", "BIZA", "dmzap+RAIZN", "mdraid+dmzap", "mdraid+ConvSSD", "BIZA_x"}}
	ops := s.TraceOps / 4
	if ops < 300 {
		ops = 300
	}
	for _, pers := range lsfs.Personalities {
		row := []string{pers.Name}
		var rates []float64
		for _, kind := range appKinds {
			p, fs, err := newAppFS(kind)
			if err != nil {
				panic(err)
			}
			res, err := pers.Run(p.Eng, fs, 16, ops, 5)
			if err != nil {
				panic(fmt.Sprintf("%s on %s: %v", pers.Name, kind, err))
			}
			rates = append(rates, res.OpsPerSec())
			row = append(row, f1(res.OpsPerSec()))
		}
		x := 0.0
		if rates[1] > 0 {
			x = rates[0] / rates[1]
		}
		row = append(row, f2(x))
		t.Add(row...)
	}
	return t
}

// Fig13DBBench reproduces Fig. 13b: LSM key-value store (db_bench fill
// workloads, 16 B keys / 1 KiB values) on the filesystem over each
// platform.
func Fig13DBBench(s Scale) *Table {
	t := &Table{ID: "fig13b", Title: "LSM KV store + db_bench (ops/s, x = vs dmzap+RAIZN)",
		Header: []string{"workload", "BIZA", "dmzap+RAIZN", "mdraid+dmzap", "mdraid+ConvSSD", "BIZA_x"}}
	ops := s.TraceOps / 4
	if ops < 300 {
		ops = 300
	}
	for _, name := range []string{"fillseq", "fillrandom", "fillseekseq"} {
		row := []string{name}
		var rates []float64
		for _, kind := range appKinds {
			p, fs, err := newAppFS(kind)
			if err != nil {
				panic(err)
			}
			db, err := kvstore.Open(p.Eng, fs, kvstore.DefaultConfig())
			if err != nil {
				panic(err)
			}
			spec, err := kvstore.DefaultBench(name, ops)
			if err != nil {
				panic(err)
			}
			res := kvstore.RunBench(p.Eng, db, spec)
			rates = append(rates, res.OpsPerSec())
			row = append(row, f1(res.OpsPerSec()))
		}
		x := 0.0
		if rates[1] > 0 {
			x = rates[0] / rates[1]
		}
		row = append(row, f2(x))
		t.Add(row...)
	}
	return t
}
