package bench

import (
	"fmt"

	"biza/internal/kvstore"
	"biza/internal/lsfs"
	"biza/internal/stack"
)

func init() {
	registerPoints("fig13a", personalityNames(), fig13aPoint)
	registerPoints("fig13b", []string{"fillseq", "fillrandom", "fillseekseq"}, fig13bPoint)
}

func personalityNames() []string {
	out := make([]string, len(lsfs.Personalities))
	for i := range lsfs.Personalities {
		out[i] = lsfs.Personalities[i].Name
	}
	return out
}

// appKinds are the platforms compared under real applications. The paper's
// "RAIZN" configuration runs F2FS on RAIZN plus a small block-interface
// area for metadata; since this filesystem drives the block interface, the
// dmzap+RAIZN composition stands in for it (documented in DESIGN.md), and
// results are normalized to that baseline as the paper normalizes to RAIZN.
var appKinds = []stack.Kind{stack.KindBIZA, stack.KindDmzapRAIZN,
	stack.KindMdraidDmzap, stack.KindMdraidConvSSD}

func newAppFS(r *Run, kind stack.Kind, stream string) (*stack.Platform, *lsfs.FS, error) {
	p, err := r.Platform(kind, stack.Options{Seed: r.Seed(stream + "/stack")})
	if err != nil {
		return nil, nil, err
	}
	cfg := lsfs.DefaultConfig()
	fs, err := lsfs.New(p.Eng, p.Dev, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, fs, nil
}

// fig13aPoint runs one filebench personality on the log-structured
// filesystem over each platform, ops/s normalized to the RAIZN-based
// baseline.
func fig13aPoint(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig13a", Title: "F2FS-like filesystem + filebench (ops/s, x = vs dmzap+RAIZN)",
		Header: []string{"workload", "BIZA", "dmzap+RAIZN", "mdraid+dmzap", "mdraid+ConvSSD", "BIZA_x"}}
	ops := s.TraceOps / 4
	if ops < 300 {
		ops = 300
	}
	pers := lsfs.PersonalityByName(point)
	row := []string{pers.Name}
	var rates []float64
	for _, kind := range appKinds {
		cell := pers.Name + "/" + string(kind)
		p, fs, err := newAppFS(r, kind, cell)
		if err != nil {
			panic(err)
		}
		res, err := pers.Run(p.Eng, fs, 16, ops, r.Seed(cell+"/wl"))
		if err != nil {
			panic(fmt.Sprintf("%s on %s: %v", pers.Name, kind, err))
		}
		rates = append(rates, res.OpsPerSec())
		row = append(row, f1(res.OpsPerSec()))
	}
	x := 0.0
	if rates[1] > 0 {
		x = rates[0] / rates[1]
	}
	row = append(row, f2(x))
	t.Add(row...)
	return []*Table{t}
}

// Fig13Filebench reproduces Fig. 13a in full (all personalities).
func Fig13Filebench(s Scale, r *Run) *Table {
	return Experiments["fig13a"].Tables(s, r)[0]
}

// fig13bPoint runs one db_bench fill workload (16 B keys / 1 KiB values)
// of the LSM key-value store on the filesystem over each platform.
func fig13bPoint(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig13b", Title: "LSM KV store + db_bench (ops/s, x = vs dmzap+RAIZN)",
		Header: []string{"workload", "BIZA", "dmzap+RAIZN", "mdraid+dmzap", "mdraid+ConvSSD", "BIZA_x"}}
	ops := s.TraceOps / 4
	if ops < 300 {
		ops = 300
	}
	row := []string{point}
	var rates []float64
	for _, kind := range appKinds {
		cell := point + "/" + string(kind)
		p, fs, err := newAppFS(r, kind, cell)
		if err != nil {
			panic(err)
		}
		db, err := kvstore.Open(p.Eng, fs, kvstore.DefaultConfig())
		if err != nil {
			panic(err)
		}
		spec, err := kvstore.DefaultBench(point, ops)
		if err != nil {
			panic(err)
		}
		res := kvstore.RunBench(p.Eng, db, spec)
		rates = append(rates, res.OpsPerSec())
		row = append(row, f1(res.OpsPerSec()))
	}
	x := 0.0
	if rates[1] > 0 {
		x = rates[0] / rates[1]
	}
	row = append(row, f2(x))
	t.Add(row...)
	return []*Table{t}
}

// Fig13DBBench reproduces Fig. 13b in full (all fill workloads).
func Fig13DBBench(s Scale, r *Run) *Table {
	return Experiments["fig13b"].Tables(s, r)[0]
}
