package bench

import (
	"bytes"
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/fault"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/stack"
)

func init() {
	register("avail", Avail)
}

// availHist pairs a latency histogram with the bytes moved in one phase.
type availHist struct {
	h     *metrics.Histogram
	bytes uint64
}

func (a *availHist) add(lat sim.Time, n int) {
	a.h.Record(int64(lat))
	a.bytes += uint64(n)
}

// availPattern is the verifiable payload for (lba, version).
func availPattern(buf []byte, lba int64, version int) {
	for i := range buf {
		buf[i] = byte(lba) ^ byte(version*41) ^ byte(i*7)
	}
}

// Avail measures availability across a member failure: a closed-loop
// read/write workload with byte-verified reads runs while a fault plan
// kills one member mid-run; the array detects the death from completion
// errors, serves reads via parity reconstruction, hot-swaps a spare
// (AutoReplace), and rebuilds. The table reports throughput and latency
// per phase — healthy, faulted (degraded + rebuild), and recovered — plus
// the reconstruction and degraded-write counts attributable to each.
func Avail(s Scale, r *Run) *Table {
	t := &Table{ID: "avail",
		Title:  "availability across member failure and rebuild (byte-verified workload)",
		Header: []string{"phase", "ops", "MBps", "p50_us", "p99_us", "recon", "degraded_writes"}}

	z := stack.BenchZNS(64)
	z.StoreData = true // byte verification needs payloads retained
	p, err := r.Platform(stack.KindBIZA, stack.Options{
		ZNS:         z,
		Seed:        r.Seed("stack"),
		AutoReplace: true,
	})
	if err != nil {
		panic(err)
	}
	c := p.BIZA
	eng := p.Eng
	bs := p.Dev.BlockSize()
	const span = int64(1024) // working set: 4 MiB keeps the rebuild short

	version := make(map[int64]int)
	wInFlight := make(map[int64]bool)

	// Warm the whole working set so every read verifies against a version.
	wbuf := make([]byte, bs)
	for lba := int64(0); lba < span; lba++ {
		version[lba] = 1
		availPattern(wbuf, lba, 1)
		data := make([]byte, bs)
		copy(data, wbuf)
		p.Dev.Write(lba, 1, data, func(res blockdev.WriteResult) {
			if res.Err != nil {
				panic(fmt.Sprintf("avail: warmup write: %v", res.Err))
			}
		})
		if lba%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()

	// The fault plan starts after warmup: member 2 dies one measurement
	// window in. The spare swapped in by AutoReplace sits outside the plan.
	const deadDev = 2
	t0 := eng.Now()
	killAt := t0 + s.Duration
	plan, err := fault.Compile(&fault.Spec{Rules: []fault.Rule{
		fault.KillDevice(deadDev, killAt),
	}}, r.Seed("faults"), len(p.Queues()))
	if err != nil {
		panic(err)
	}
	for i, q := range p.Queues() {
		q.SetInjector(plan.Injector(i))
	}

	const (
		phHealthy = iota
		phFaulted
		phRecovered
		numPhases
	)
	names := [numPhases]string{"healthy", "faulted", "recovered"}
	hists := [numPhases]*availHist{}
	for i := range hists {
		hists[i] = &availHist{h: newLatHist()}
	}
	var (
		phase        = phHealthy
		phaseStart   = [numPhases]sim.Time{phHealthy: t0}
		phaseEnd     [numPhases]sim.Time
		reconAt      [numPhases + 1]uint64
		dwAt         [numPhases + 1]uint64
		endAt        = killAt + 60*s.Duration // safety cap, advanced on recovery
		verifyErrors int
	)
	advancePhase := func(now sim.Time) {
		phaseEnd[phase] = now
		reconAt[phase+1] = c.Reconstructions()
		dwAt[phase+1] = c.DegradedWrites()
		phase++
		phaseStart[phase] = now
	}
	classify := func(now sim.Time) int {
		if phase == phHealthy && now >= killAt {
			advancePhase(now)
		}
		if phase == phFaulted && c.Reconstructions() > 0 && !c.Degraded() {
			advancePhase(now)
			endAt = now + s.Duration
		}
		return phase
	}

	rng := sim.NewRNG(r.Seed("workload"))
	var issue func()
	issue = func() {
		now := eng.Now()
		if now >= endAt {
			return
		}
		start := now
		if rng.Intn(10) < 3 { // 30% writes
			lba := rng.Int63n(span)
			if wInFlight[lba] {
				eng.After(sim.Microsecond, issue)
				return
			}
			wInFlight[lba] = true
			v := version[lba] + 1
			version[lba] = v
			data := make([]byte, bs)
			availPattern(data, lba, v)
			p.Dev.Write(lba, 1, data, func(res blockdev.WriteResult) {
				delete(wInFlight, lba)
				if res.Err != nil {
					panic(fmt.Sprintf("avail: write lba=%d: %v", lba, res.Err))
				}
				ph := classify(eng.Now())
				hists[ph].add(eng.Now()-start, bs)
				issue()
			})
			return
		}
		lba := rng.Int63n(span)
		// A write in flight at issue time may or may not have reached the
		// array when the read is served: its predecessor is also legal.
		vLow := version[lba]
		if wInFlight[lba] && vLow > 1 {
			vLow--
		}
		p.Dev.Read(lba, 1, func(res blockdev.ReadResult) {
			if res.Err != nil {
				panic(fmt.Sprintf("avail: read lba=%d: %v", lba, res.Err))
			}
			// Accept any version the block legitimately held while the
			// read was in flight.
			okData := false
			want := make([]byte, bs)
			for v := vLow; v <= version[lba]; v++ {
				availPattern(want, lba, v)
				if bytes.Equal(res.Data, want) {
					okData = true
					break
				}
			}
			if !okData {
				verifyErrors++
			}
			ph := classify(eng.Now())
			hists[ph].add(eng.Now()-start, bs)
			issue()
		})
	}
	const depth = 12
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.Run()

	if verifyErrors > 0 {
		panic(fmt.Sprintf("avail: %d byte-verification failures", verifyErrors))
	}
	if phase != phRecovered {
		panic(fmt.Sprintf("avail: run ended in phase %s — member never rebuilt", names[phase]))
	}
	phaseEnd[phRecovered] = eng.Now()
	reconAt[numPhases] = c.Reconstructions()
	dwAt[numPhases] = c.DegradedWrites()

	for ph := 0; ph < numPhases; ph++ {
		dur := float64(phaseEnd[ph] - phaseStart[ph])
		mbps := 0.0
		if dur > 0 {
			mbps = float64(hists[ph].bytes) / (1 << 20) / (dur / float64(sim.Second))
		}
		t.Add(names[ph],
			fmt.Sprintf("%d", hists[ph].h.Count()),
			f1(mbps),
			us(sim.Time(hists[ph].h.Percentile(50))),
			us(sim.Time(hists[ph].h.Percentile(99))),
			fmt.Sprintf("%d", reconAt[ph+1]-reconAt[ph]),
			fmt.Sprintf("%d", dwAt[ph+1]-dwAt[ph]))
	}
	r.PublishHistogram("avail/faulted_lat", "ns", hists[phFaulted].h)
	return t
}
