package bench

import (
	"fmt"
	"strconv"

	"biza/internal/admin"
	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/stack"
)

func init() {
	registerPoints("rolling", []string{"unpaced", "paced", "slow"}, Rolling)
	Experiments["rolling"].Assemble = assembleRolling
}

// Rolling-replacement sizing. Arrays are independent — every event of an
// array stays on its shard — so the barrier window only paces the
// coordinator's initial sends and the tables are bit-identical at any
// -shards value.
const (
	rollWindow   = 20 * sim.Microsecond
	rollZones    = 16   // zones per member device
	rollOpBlocks = 8    // 32 KiB per foreground op
	rollSpan     = 2048 // per-array working set, blocks (8 MiB)
	rollClients  = 6    // closed-loop foreground clients per array

	// rollSLO is the foreground p99 availability budget the rolling phase
	// is held to. The paced points must stay inside it; the unpaced
	// rebuild — every remaining stripe dissolved at once, four members in
	// a row — must blow it. Virtual nanoseconds.
	rollSLO = 800 * sim.Microsecond
)

// rollKnob is one point's rebuild-rate setting: how many stripes dissolve
// concurrently per rebuild step and how long the rebuild idles between
// steps — the rebuild-rate versus foreground-latency knob of the admin
// control plane.
type rollKnob struct {
	per int   // stripes per step (0 = the whole rebuild in one step)
	gap int64 // virtual idle between steps, ns
}

var rollKnobs = map[string]rollKnob{
	"unpaced": {per: 0, gap: 0},
	"paced":   {per: 8, gap: 100_000},
	"slow":    {per: 2, gap: 300_000},
}

// Foreground phases, classified by op issue time against the array's own
// rolling window: before the first replace job is submitted, while the
// queue still holds unfinished replace jobs, and after the last one
// completed.
const (
	rollHealthy = iota
	rollRolling
	rollAfter
	numRollPhases
)

var rollPhaseName = [numRollPhases]string{"healthy", "rolling", "after"}

// rollArray is one array under rolling replacement. All fields are
// touched only on the owning shard's goroutine (or from the coordinator
// before/after the group runs).
type rollArray struct {
	shard   *sim.Shard
	dev     blockdev.Device
	orc     *admin.Orchestrator
	members int

	rollEnd sim.Time // when the last replace job reached a terminal state

	next    int64 // next sequential write lba (wraps over the span)
	written int64 // high-water mark of written lbas (read eligibility)

	ops [numRollPhases]int64
	lat [numRollPhases]*metrics.Histogram
}

// Rolling is the availability experiment for the admin control plane: a
// closed-loop foreground workload runs against BIZA arrays (sharded
// across engines) while a rolling device replacement — one replace job
// per member, serialized by the per-array job queue — is submitted
// mid-run through the orchestrator at three rebuild-rate settings.
// Foreground latency is classified into healthy / rolling / after phases
// by issue time, and the assembled rolling-slo table holds each point's
// rolling-phase p99 against a fixed budget: pacing the rebuild keeps the
// array inside its SLO at the cost of a longer replacement window, while
// the unpaced rebuild violates it.
func Rolling(s Scale, r *Run, point string) []*Table {
	numArrays := s.RollingArrays
	if numArrays < 1 {
		panic("rolling: scale has no rolling sizing")
	}
	knob, ok := rollKnobs[point]
	if !ok {
		panic(fmt.Sprintf("rolling: unknown point %q", point))
	}
	g := r.ShardGroup(rollWindow)

	// Construct arrays in canonical order on round-robin shards.
	arrays := make([]*rollArray, numArrays)
	for i := range arrays {
		sh := g.Shard(i % g.Shards())
		p, err := r.PlatformOnShard(sh, stack.KindBIZA, stack.Options{
			ZNS:  stack.BenchZNS(rollZones),
			Seed: r.Seed(fmt.Sprintf("%s/stack/a%02d", point, i)),
		})
		if err != nil {
			panic(fmt.Sprintf("rolling: array %d: %v", i, err))
		}
		a := &rollArray{shard: sh, dev: p.Dev, orc: admin.New(p),
			members: len(p.Queues())}
		for ph := range a.lat {
			a.lat[ph] = newLatHist()
		}
		// The array's rolling window closes when every replace job has
		// reached a terminal state; the orchestrator's change hook observes
		// that on the shard goroutine.
		a.orc.SetOnChange(func() {
			if a.rollEnd != 0 {
				return
			}
			jobs := a.orc.Jobs()
			if len(jobs) < a.members {
				return
			}
			for _, j := range jobs {
				if !j.State.Terminal() {
					return
				}
			}
			a.rollEnd = a.shard.Engine().Now()
		})
		arrays[i] = a
	}

	endAt := s.Duration
	rollStart := 2 * s.Duration / 5
	afterTail := s.Duration / 5

	// Closed-loop foreground clients, fleet-style 40% writes. Completion
	// latency is recorded under the phase the op was issued in. A client
	// retires once the nominal horizon has passed AND its array's rolling
	// window has been closed for afterTail — slow rebuilds outlive the
	// nominal duration by design, and the after phase needs samples at
	// every rebuild rate. Retirement depends only on the owning array's
	// state, so it is shard-count-invariant.
	var issue func(a *rollArray, rng *sim.RNG)
	issue = func(a *rollArray, rng *sim.RNG) {
		eng := a.shard.Engine()
		start := eng.Now()
		if start >= endAt && a.rollEnd != 0 && start >= a.rollEnd+afterTail {
			return // client retires; in-flight work drains the group
		}
		ph := rollHealthy
		if start >= rollStart {
			if a.rollEnd == 0 {
				ph = rollRolling
			} else {
				ph = rollAfter
			}
		}
		finish := func(op string, err error) {
			if err != nil {
				panic(fmt.Sprintf("rolling: %s: %v", op, err))
			}
			a.ops[ph]++
			a.lat[ph].Record(int64(eng.Now() - start))
			issue(a, rng)
		}
		if a.written == 0 || rng.Intn(10) < 4 { // 40% writes
			lba := a.next
			a.next = (a.next + rollOpBlocks) % rollSpan
			if a.written < rollSpan {
				a.written = lba + rollOpBlocks
			}
			a.dev.Write(lba, rollOpBlocks, nil, func(res blockdev.WriteResult) {
				finish("write", res.Err)
			})
			return
		}
		lim := a.written - rollOpBlocks + 1
		if lim < 1 {
			lim = 1
		}
		lba := rng.Int63n(lim)
		a.dev.Read(lba, rollOpBlocks, func(res blockdev.ReadResult) {
			finish("read", res.Err)
		})
	}

	// Kick every client with a staggered start; src keys are globally
	// unique so the injected order is canonical at any shard count.
	for ai, a := range arrays {
		for ci := 0; ci < rollClients; ci++ {
			a := a
			rng := sim.NewRNG(r.Seed(fmt.Sprintf("%s/client/a%02d/c%02d", point, ai, ci)))
			at := rollWindow + sim.Time(rng.Intn(int(4*rollWindow)))
			g.Send(a.shard.ID(), at, int64(ai*rollClients+ci), func() { issue(a, rng) })
		}
	}

	// Mid-run, submit the rolling replacement through each array's
	// orchestrator: one replace job per member, queued in device order and
	// serialized by the control plane.
	for ai, a := range arrays {
		a := a
		g.Send(a.shard.ID(), rollStart, int64(numArrays*rollClients+ai), func() {
			for d := 0; d < a.members; d++ {
				if _, err := a.orc.Submit(admin.KindReplace, admin.Params{
					Device: d, StripesPerStep: knob.per, StepGapNanos: knob.gap,
				}); err != nil {
					panic(fmt.Sprintf("rolling: submit replace dev %d: %v", d, err))
				}
			}
		})
	}

	g.Run(endAt)
	// Slow rebuilds outlive the measured horizon by design; the drain
	// bound only caps the virtual tail.
	if !g.Drain(endAt + 2*sim.Second) {
		panic("rolling: group did not quiesce after the measured horizon")
	}

	// Every replace job must have completed, and every window closed.
	var stripes int64
	var window sim.Time
	for ai, a := range arrays {
		jobs := a.orc.Jobs()
		if len(jobs) != a.members {
			panic(fmt.Sprintf("rolling: array %d has %d jobs, want %d", ai, len(jobs), a.members))
		}
		for _, j := range jobs {
			if j.State != admin.StateDone {
				panic(fmt.Sprintf("rolling: array %d job %d is %s: %s", ai, j.ID, j.State, j.Err))
			}
			stripes += j.Progress.Done
		}
		if a.rollEnd == 0 {
			panic(fmt.Sprintf("rolling: array %d rolling window never closed", ai))
		}
		window += a.rollEnd - rollStart
	}

	// Per-phase foreground latency, arrays merged in canonical order.
	tbl := &Table{ID: "rolling",
		Title: fmt.Sprintf("foreground latency across rolling replacement: %d arrays x %d clients",
			numArrays, rollClients),
		LabelCols: 2,
		Header:    []string{"point", "phase", "ops", "p50_us", "p99_us"}}
	for ph := 0; ph < numRollPhases; ph++ {
		h := newLatHist()
		var ops int64
		for _, a := range arrays {
			h.Merge(a.lat[ph])
			ops += a.ops[ph]
		}
		tbl.Add(point, rollPhaseName[ph],
			fmt.Sprintf("%d", ops),
			us(sim.Time(h.Percentile(50))),
			us(sim.Time(h.Percentile(99))))
		if ph == rollRolling {
			r.PublishHistogram(fmt.Sprintf("rolling/%s/rolling", point), "ns", h)
		}
	}

	// Per-point replacement window (mean across arrays) and rebuild volume.
	win := &Table{ID: "rolling-window",
		Title:  "replacement window (submit of first job to completion of last) and rebuild volume",
		Header: []string{"point", "window_ms", "stripes", "jobs"}}
	win.Add(point,
		f2(float64(window)/float64(numArrays)/float64(sim.Millisecond)),
		fmt.Sprintf("%d", stripes),
		fmt.Sprintf("%d", numArrays*arrays[0].members))
	return []*Table{tbl, win}
}

// rollingP99Col is the p99_us column index of the rolling table.
const rollingP99Col = 4

// assembleRolling merges the per-point tables and derives the SLO table:
// each point's rolling-phase p99 against the fixed availability budget,
// paired with the replacement window it bought.
func assembleRolling(parts [][]*Table) []*Table {
	out := mergeParts(parts)
	budget := float64(rollSLO) / 1000 // µs
	slo := &Table{ID: "rolling-slo",
		Title:  "foreground p99 during rolling replacement vs availability budget",
		Header: []string{"point", "roll_p99_us", "slo_us", "window_ms", "verdict"}}
	windows := map[string]string{}
	for _, row := range out[1].Rows {
		windows[row[0]] = row[1]
	}
	for _, row := range out[0].Rows {
		if row[1] != rollPhaseName[rollRolling] {
			continue
		}
		p99, err := strconv.ParseFloat(row[rollingP99Col], 64)
		if err != nil {
			panic(fmt.Sprintf("rolling: unparsable p99 cell %q", row[rollingP99Col]))
		}
		verdict := "ok"
		if p99 > budget {
			verdict = "violated"
		}
		slo.Add(row[0], row[rollingP99Col], f1(budget), windows[row[0]], verdict)
	}
	return append(out, slo)
}
