package bench

import (
	"fmt"

	"biza/internal/core"
	"biza/internal/stack"
	"biza/internal/trace"
	"biza/internal/workload"
)

func init() {
	register("table6", Table6Workloads)
	register("fig4", Fig4ReuseCDF)
	registerPoints("fig12", profileNames(), fig12Point)
	registerPoints("fig14", profileNames(), fig14Point)
	registerPoints("fig16", []string{"4", "16", "64", "256", "1024"}, fig16Point)
}

// profileNames lists the Table 6 trace workloads in row order.
func profileNames() []string {
	out := make([]string, len(workload.Profiles))
	for i := range workload.Profiles {
		out[i] = workload.Profiles[i].Name
	}
	return out
}

// Table6Workloads reproduces Table 6: characteristics of the synthesized
// trace workloads.
func Table6Workloads(s Scale, r *Run) *Table {
	t := &Table{ID: "table6", Title: "workload characteristics",
		Header: []string{"workload", "write_ratio_%", "avg_read_KB", "avg_write_KB", "beyond56MB_%"}}
	for _, p := range workload.Profiles {
		tr := p.Synthesize(r.Seed("trace/"+p.Name), s.TraceOps)
		st := tr.Characterize()
		t.Add(p.Name, f1(st.WriteRatio*100), f1(st.AvgReadBytes/1024),
			f1(st.AvgWriteBytes/1024), f1(tr.FractionBeyond(56<<20)*100))
	}
	return t
}

// Fig4ReuseCDF reproduces Fig. 4: the cumulative distribution of write
// reuse distances for the SYSTOR-like population.
func Fig4ReuseCDF(s Scale, r *Run) *Table {
	t := &Table{ID: "fig4", Title: "CDF of reuse distance (SYSTOR-like population)",
		Header: []string{"threshold", "cdf"}}
	tr := workload.SystorReusePopulation(r.Seed("population"), s.TraceOps*3)
	thresholds := []int64{1 << 20, 4 << 20, 14 << 20, 56 << 20, 128 << 20, 512 << 20, 2 << 30}
	labels := []string{"1MB", "4MB", "14MB", "56MB", "128MB", "512MB", "2GB"}
	cdf := tr.ReuseCDF(thresholds)
	for i, v := range cdf {
		t.Add(labels[i], f3(v))
	}
	return t
}

// traceKinds are the platforms compared on production traces (Fig. 12).
var traceKinds = []stack.Kind{stack.KindBIZA, stack.KindDmzapRAIZN,
	stack.KindMdraidDmzap, stack.KindMdraidConvSSD}

// preconditionFootprint writes the trace's address footprint once so
// reads hit mapped data and the arrays start with realistic occupancy,
// then zeroes the accounting.
func preconditionFootprint(p *stack.Platform, tr *trace.Trace) {
	span := tr.Footprint()
	if max := p.Dev.Blocks() / 2; span > max {
		span = max
	}
	workload.Precondition(p.Eng, p.Dev, span, 16)
	p.Flush()
	p.ResetAccounting()
}

// fig12Point replays one production-like trace on each block platform
// (footprint preconditioned).
func fig12Point(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig12", Title: "throughput in I/O traces (MB/s)",
		Header: []string{"workload", "BIZA", "dmzap+RAIZN", "mdraid+dmzap", "mdraid+ConvSSD"}}
	prof := workload.ProfileByName(point)
	row := []string{prof.Name}
	tr := prof.Synthesize(r.Seed("trace/"+prof.Name), s.TraceOps)
	for _, kind := range traceKinds {
		p, err := r.Platform(kind, stack.Options{Seed: r.Seed(prof.Name + "/" + string(kind) + "/stack")})
		if err != nil {
			panic(err)
		}
		preconditionFootprint(p, tr)
		res := trace.Replay(p.Eng, p.Dev, tr, 32)
		row = append(row, f1(res.Throughput().MBps()))
	}
	t.Add(row...)
	return []*Table{t}
}

// Fig12TraceThroughput reproduces Fig. 12 in full (all ten traces).
func Fig12TraceThroughput(s Scale, r *Run) *Table {
	return Experiments["fig12"].Tables(s, r)[0]
}

// fig14Point measures one trace of Fig. 14: flash write counts normalized
// to user writes, split into data and parity, across platforms. The
// "no cache" and "ideal" reference bars are analytic bounds computed from
// the trace itself.
func fig14Point(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig14", Title: "write counts normalized to user writes (data+parity)",
		Header: []string{"workload", "BIZA", "BIZAw/oSel", "dmzap+RAIZN", "mdraid+dmzap", "nocache", "ideal"}}
	kinds := []stack.Kind{stack.KindBIZA, stack.KindBIZANoSel, stack.KindDmzapRAIZN, stack.KindMdraidDmzap}
	prof := workload.ProfileByName(point)
	tr := prof.Synthesize(r.Seed("trace/"+prof.Name), s.TraceOps)
	row := []string{prof.Name}
	for _, kind := range kinds {
		opts := stack.Options{Seed: r.Seed(prof.Name + "/" + string(kind) + "/stack")}
		if kind == stack.KindDmzapRAIZN {
			// §5.4 equips RAIZN with the same 56 MB write buffer.
			opts.RAIZNStripeCacheBytes = 56 << 20
		}
		p, err := r.Platform(kind, opts)
		if err != nil {
			panic(err)
		}
		preconditionFootprint(p, tr)
		// Commit write buffers and drain background work (mdraid
		// timer flushes, GC) before reading the flash counters.
		trace.Replay(p.Eng, p.Dev, tr, 32)
		p.Flush()
		wa := p.FlashWriteAmp()
		row = append(row, fmt.Sprintf("%s(%s+%s)", f2(wa.Factor()), f2(wa.DataFactor()), f2(wa.ParityFactor())))
	}
	// Analytic references: nocache writes every chunk and a parity
	// update per chunk; ideal writes only first-touches plus one final
	// parity per k chunks of unique data.
	st := tr.Characterize()
	unique := 0.0
	if st.WrittenBytes > 0 {
		unique = float64(uniqueWriteBytes(tr)) / float64(st.WrittenBytes)
	}
	k := 3.0
	row = append(row,
		fmt.Sprintf("%s(%s+%s)", f2(2.0), f2(1.0), f2(1.0)),
		fmt.Sprintf("%s(%s+%s)", f2(unique*(1+1/k)), f2(unique), f2(unique/k)))
	t.Add(row...)
	return []*Table{t}
}

// Fig14WriteAmp reproduces Fig. 14 in full (all ten traces).
func Fig14WriteAmp(s Scale, r *Run) *Table {
	return Experiments["fig14"].Tables(s, r)[0]
}

func uniqueWriteBytes(tr *trace.Trace) uint64 {
	seen := make(map[int64]bool)
	var bytes uint64
	for _, op := range tr.Ops {
		if !op.Write {
			continue
		}
		for i := 0; i < op.Blocks; i++ {
			if !seen[op.LBA+int64(i)] {
				seen[op.LBA+int64(i)] = true
				bytes += uint64(tr.BlockSize)
			}
		}
	}
	return bytes
}

// fig16Point runs one ZRWA size of Fig. 16: normalized write counts as
// the ZRWA size per open zone varies, on casa and online.
func fig16Point(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig16", Title: "write count vs ZRWA size (normalized to user writes)",
		Header: []string{"zrwa_KB", "casa_data", "casa_parity", "online_data", "online_parity"}}
	zrwaKB := atoiPoint(point)
	row := []string{fmt.Sprintf("%d", zrwaKB)}
	for _, name := range []string{"casa", "online"} {
		prof := workload.ProfileByName(name)
		tr := prof.Synthesize(r.Seed("trace/"+name), s.TraceOps)
		zcfg := stack.BenchZNS(128)
		zcfg.ZRWABlocks = int64(zrwaKB) * 1024 / 4096
		ccfg := core.DefaultConfig(zcfg.NumZones)
		cell := fmt.Sprintf("%d/%s", zrwaKB, name)
		p, err := r.Platform(stack.KindBIZA, stack.Options{ZNS: zcfg, BIZAConfig: &ccfg,
			Seed: r.Seed(cell + "/stack")})
		if err != nil {
			panic(err)
		}
		preconditionFootprint(p, tr)
		trace.Replay(p.Eng, p.Dev, tr, 32)
		p.Flush()
		wa := p.FlashWriteAmp()
		row = append(row, f3(wa.DataFactor()), f3(wa.ParityFactor()))
	}
	t.Add(row...)
	return []*Table{t}
}

// Fig16ZRWASweep reproduces Fig. 16 in full (all ZRWA sizes).
func Fig16ZRWASweep(s Scale, r *Run) *Table {
	return Experiments["fig16"].Tables(s, r)[0]
}
