package bench

import (
	"bytes"
	"testing"

	"biza/internal/obs"
)

// TestTraceParallelDeterminism is the observability determinism contract:
// with tracing on, the same seed must yield byte-identical exported traces
// at -parallel 1 and -parallel 8. Trace names derive from (experiment,
// point, construction ordinal), record streams from the deterministic
// engines, and the Runner assembles Report.Traces in canonical point
// order, so scheduling must not leak into the artifact.
func TestTraceParallelDeterminism(t *testing.T) {
	s := QuickScale()
	s.Duration /= 4 // tracing multiplies per-run work; keep the test fast
	run := func(parallel int) *Report {
		return (&Runner{Scale: s, Seed: 7, Parallel: parallel,
			Trace: &obs.Config{}}).Run([]string{"fig10"})
	}
	r1, r8 := run(1), run(8)
	if err := r1.Results[0].Error; err != "" {
		t.Fatalf("fig10 failed: %s", err)
	}
	if len(r1.Traces) == 0 {
		t.Fatal("no traces collected")
	}
	if len(r1.Traces) != len(r8.Traces) {
		t.Fatalf("trace counts differ: %d vs %d", len(r1.Traces), len(r8.Traces))
	}

	var p1, p8, j1, j8 bytes.Buffer
	if err := obs.WritePerfetto(&p1, r1.Traces); err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePerfetto(&p8, r8.Traces); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p8.Bytes()) {
		t.Errorf("Perfetto traces differ between -parallel 1 and 8 (%d vs %d bytes)",
			p1.Len(), p8.Len())
	}
	if err := obs.WriteJSONL(&j1, r1.Traces); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&j8, r8.Traces); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j8.Bytes()) {
		t.Errorf("JSONL traces differ between -parallel 1 and 8 (%d vs %d bytes)",
			j1.Len(), j8.Len())
	}

	// The observability side-channel must not perturb results either:
	// histograms and probe snapshots are part of the v2 artifact.
	a, b := r1.Results[0], r8.Results[0]
	if len(a.Histograms) == 0 || len(a.Histograms) != len(b.Histograms) {
		t.Fatalf("histograms: %d vs %d", len(a.Histograms), len(b.Histograms))
	}
	for i := range a.Histograms {
		if a.Histograms[i].Name != b.Histograms[i].Name ||
			a.Histograms[i].Summary != b.Histograms[i].Summary {
			t.Errorf("histogram %d differs: %+v vs %+v", i, a.Histograms[i], b.Histograms[i])
		}
	}
	if len(a.Stats.Probes) == 0 {
		t.Fatal("no probe snapshots in stats")
	}
}

// TestTraceSampling: sampling keeps every Nth I/O span but never drops
// typed events, and the trace name records the originating point.
func TestTraceSampling(t *testing.T) {
	s := QuickScale()
	s.Duration /= 4
	full := (&Runner{Scale: s, Seed: 7, Parallel: 2,
		Trace: &obs.Config{}}).Run([]string{"fig10"})
	sampled := (&Runner{Scale: s, Seed: 7, Parallel: 2,
		Trace: &obs.Config{SampleN: 16}}).Run([]string{"fig10"})
	if len(full.Traces) != len(sampled.Traces) {
		t.Fatalf("trace counts differ: %d vs %d", len(full.Traces), len(sampled.Traces))
	}
	var fullLen, sampledLen int
	for i := range full.Traces {
		if full.Traces[i].Name() != sampled.Traces[i].Name() {
			t.Fatalf("trace %d name: %q vs %q", i, full.Traces[i].Name(), sampled.Traces[i].Name())
		}
		fullLen += full.Traces[i].Len()
		sampledLen += sampled.Traces[i].Len()
	}
	if sampledLen >= fullLen {
		t.Fatalf("sampling did not shrink the trace: %d >= %d records", sampledLen, fullLen)
	}
}
