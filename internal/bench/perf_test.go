package bench

import (
	"testing"
)

// benchEndToEnd runs one full experiment sweep per iteration and reports
// simulated virtual nanoseconds advanced per wall-clock second — the
// simulator's end-to-end throughput metric tracked in BENCH_perf.json.
func benchEndToEnd(b *testing.B, id string, scale Scale, quick bool) {
	b.ReportAllocs()
	var simNs, wallNs int64
	for i := 0; i < b.N; i++ {
		rep := (&Runner{Scale: scale, Seed: 42, Parallel: 1, Quick: quick}).Run([]string{id})
		res := &rep.Results[0]
		if res.Error != "" {
			b.Fatalf("%s failed: %s", id, res.Error)
		}
		simNs += res.Stats.VirtualNanos
		wallNs += rep.WallNanos
	}
	if wallNs > 0 {
		b.ReportMetric(float64(simNs)/(float64(wallNs)/1e9), "sim-ns/wall-s")
	}
}

// BenchmarkEndToEndFig10 is the headline end-to-end benchmark: the full
// fig10 sweep (the paper's main performance figure) at default scale.
func BenchmarkEndToEndFig10(b *testing.B) {
	benchEndToEnd(b, "fig10", DefaultScale(), false)
}

// BenchmarkEndToEndFig10Quick runs fig10 at CI-smoke scale; the perf-smoke
// job tracks this one, so it must stay cheap enough for -count=5.
func BenchmarkEndToEndFig10Quick(b *testing.B) {
	benchEndToEnd(b, "fig10", QuickScale(), true)
}

// BenchmarkEndToEndFig5Quick covers the RAIZN-vs-mdraid comparison path
// (a different stack composition than fig10) at CI-smoke scale.
func BenchmarkEndToEndFig5Quick(b *testing.B) {
	benchEndToEnd(b, "fig5", QuickScale(), true)
}
