package bench

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"biza/internal/obs"
)

func runTenants(t *testing.T, shards int) *Report {
	t.Helper()
	rn := &Runner{
		Scale:    QuickScale(),
		Seed:     DefaultSeed,
		Parallel: 1,
		Shards:   shards,
		Quick:    true,
		Trace:    &obs.Config{SampleN: 1},
	}
	rep := rn.Run([]string{"tenants"})
	if failed := rep.Failed(); len(failed) > 0 {
		t.Fatalf("shards=%d: tenants failed: %s", shards, rep.Results[0].Error)
	}
	return rep
}

func tenantsTable(t *testing.T, rep *Report, id string) *Table {
	t.Helper()
	for _, tb := range rep.Results[0].Tables {
		if tb.ID == id {
			return tb
		}
	}
	t.Fatalf("no %q table in %s", id, renderTables(rep.Results[0].Tables))
	return nil
}

// isolationRatio parses a "1.43" cell of the tenants-isolation table.
func isolationRatio(t *testing.T, tbl *Table, point string) float64 {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] != point {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "x"), 64)
		if err != nil {
			t.Fatalf("%s: unparsable ratio %q", point, row[2])
		}
		return v
	}
	t.Fatalf("no %q row in:\n%s", point, tbl.String())
	return 0
}

// TestTenantsIsolation pins the experiment's acceptance claim: under
// aggressor saturation the interactive class's p99 degrades less than 2x
// from the idle baseline with QoS on, while disabling QoS lets the
// aggressor backlog blow it past that bound.
func TestTenantsIsolation(t *testing.T) {
	rep := runTenants(t, 2)
	iso := tenantsTable(t, rep, "tenants-isolation")
	qos := isolationRatio(t, iso, "qos")
	noqos := isolationRatio(t, iso, "noqos")
	if qos >= 2 {
		t.Errorf("qos interactive p99 degraded %.2fx, want < 2x:\n%s", qos, iso.String())
	}
	if noqos <= 2 {
		t.Errorf("noqos interactive p99 degraded only %.2fx, want > 2x:\n%s", noqos, iso.String())
	}
	if noqos <= qos {
		t.Errorf("noqos (%.2fx) not worse than qos (%.2fx)", noqos, qos)
	}

	// The per-class table does real work: every class except the idle
	// baseline aggressor completes ops, and batch tenants hit the throttle.
	main := tenantsTable(t, rep, "tenants")
	if got := len(main.Rows); got != 9 {
		t.Fatalf("tenants table has %d rows, want 9 (3 points x 3 classes)", got)
	}
	for _, row := range main.Rows {
		point, class, ops := row[0], row[1], row[3]
		if point == "baseline" && class == "aggressor" {
			if ops != "0" {
				t.Errorf("baseline aggressor ran: %v", row)
			}
			continue
		}
		if ops == "0" {
			t.Errorf("%s/%s completed zero ops: %v", point, class, row)
		}
		if class == "batch" && point != "noqos" && row[7] == "0" {
			t.Errorf("%s/%s: token bucket never bound (0 stalls): %v", point, class, row)
		}
	}
}

// TestTenantsShardCountInvariance pins the determinism contract: tables,
// samples, histograms, virtual time, and exported traces are byte-identical
// at any -shards value. Run with -race to exercise the barrier.
func TestTenantsShardCountInvariance(t *testing.T) {
	ref := runTenants(t, 1)
	refTrace := exportTraces(t, ref)
	for _, shards := range []int{2, 3} {
		got := runTenants(t, shards)
		a, b := &ref.Results[0], &got.Results[0]
		if !reflect.DeepEqual(a.Tables, b.Tables) {
			t.Errorf("shards=%d: tables differ from shards=1:\n%s\nvs\n%s",
				shards, renderTables(a.Tables), renderTables(b.Tables))
		}
		if !reflect.DeepEqual(a.Samples, b.Samples) {
			t.Errorf("shards=%d: samples differ from shards=1", shards)
		}
		if !reflect.DeepEqual(a.Histograms, b.Histograms) {
			t.Errorf("shards=%d: histograms differ from shards=1", shards)
		}
		if a.Stats.VirtualNanos != b.Stats.VirtualNanos {
			t.Errorf("shards=%d: virtual time %d, shards=1 got %d",
				shards, b.Stats.VirtualNanos, a.Stats.VirtualNanos)
		}
		if tr := exportTraces(t, got); !bytes.Equal(refTrace, tr) {
			t.Errorf("shards=%d: exported traces differ from shards=1", shards)
		}
	}
}

// TestTenantsProbesEmitted: the per-tenant observability probes flow into
// the platform traces when tracing is on.
func TestTenantsProbesEmitted(t *testing.T) {
	rep := runTenants(t, 1)
	var qd, stalls, bts bool
	for _, tr := range rep.Traces {
		for _, ps := range tr.ProbeStats() {
			switch {
			case strings.HasPrefix(ps.Name, "tenant_qd/"):
				qd = true
			case strings.HasPrefix(ps.Name, "tenant_stalls/"):
				stalls = true
			case strings.HasPrefix(ps.Name, "tenant_bytes/"):
				bts = true
			}
		}
	}
	if !qd || !stalls || !bts {
		t.Fatalf("missing tenant probes: qd=%v stalls=%v bytes=%v", qd, stalls, bts)
	}
}
