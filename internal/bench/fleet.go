package bench

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/stack"
)

func init() { registerMulti("fleet", Fleet) }

// Fleet sizing constants. The fabric latency doubles as the shard
// group's barrier window: every client hop between arrays models at
// least one fabric round, which is exactly the conservative lookahead
// the deterministic cross-shard merge requires.
const (
	fleetFabricLat = 20 * sim.Microsecond
	fleetOpBlocks  = 8    // 32 KiB per op at 4 KiB blocks
	fleetSpan      = 2048 // per-array working set, blocks (8 MiB)
	fleetZones     = 16   // zones per member device
	fleetTheta     = 0.9  // zipf skew of array popularity
)

// fleetArray is one array of the fleet plus its accounting. All fields
// are touched only from the owning shard's goroutine (or from the
// coordinator before/after the group runs).
type fleetArray struct {
	shard *sim.Shard
	dev   blockdev.Device

	next    int64 // next sequential write lba (wraps over the span)
	written int64 // high-water mark of written lbas (read eligibility)

	ops, reads, writes int64
	bytes              uint64
	hops               int64 // client arrivals (inter-array fabric hops)
	lat                *metrics.Histogram
}

// fleetClient is a closed-loop client hopping between arrays. Its state
// travels with it: every field is touched only on the shard currently
// hosting the client, with the barrier providing the happens-before edge
// between hops — and the canonical merge making the hop order, and thus
// the RNG consumption order, independent of the shard count.
type fleetClient struct {
	id   int
	rng  *sim.RNG
	zipf *sim.ZipfGen
	ops  int64
}

// Fleet scales the simulation out rather than up: hundreds of
// independent BIZA arrays partitioned across engine shards
// (sim.ShardGroup), with thousands of closed-loop clients hopping
// between arrays through the deterministic cross-shard fabric. Tables
// report per-array-group traffic and the per-client fairness spread;
// every cell derives from virtual time only, so output is bit-identical
// at any -shards value. The wall-clock payoff of sharding is tracked
// separately (BENCH_perf.json fleet_scale).
func Fleet(s Scale, r *Run) []*Table {
	numArrays, numClients := s.FleetArrays, s.FleetClients
	if numArrays < 1 || numClients < 1 {
		panic("fleet: scale has no fleet sizing")
	}
	g := r.ShardGroup(fleetFabricLat)

	// Construct arrays in canonical order on round-robin shards; the
	// construction (and therefore trace) order never depends on the
	// shard count.
	arrays := make([]*fleetArray, numArrays)
	for i := range arrays {
		sh := g.Shard(i % g.Shards())
		z := stack.BenchZNS(fleetZones)
		p, err := r.PlatformOnShard(sh, stack.KindBIZA, stack.Options{
			ZNS:  z,
			Seed: r.Seed(fmt.Sprintf("stack/a%03d", i)),
		})
		if err != nil {
			panic(fmt.Sprintf("fleet: array %d: %v", i, err))
		}
		arrays[i] = &fleetArray{shard: sh, dev: p.Dev, lat: newLatHist()}
	}
	bs := arrays[0].dev.BlockSize()

	clients := make([]*fleetClient, numClients)
	for i := range clients {
		rng := sim.NewRNG(r.Seed(fmt.Sprintf("client/%04d", i)))
		clients[i] = &fleetClient{id: i, rng: rng,
			zipf: sim.NewZipfGen(rng, numArrays, fleetTheta)}
	}

	endAt := s.Duration

	// visit runs one client op on one array, on the array's shard, then
	// hops the client to its next array through the deterministic fabric.
	var visit func(c *fleetClient, a *fleetArray)
	visit = func(c *fleetClient, a *fleetArray) {
		eng := a.shard.Engine()
		start := eng.Now()
		if start >= endAt {
			return // client retires; in-flight work drains the group
		}
		a.hops++
		finish := func(op string, err error) {
			if err != nil {
				panic(fmt.Sprintf("fleet: %s: %v", op, err))
			}
			now := eng.Now()
			a.ops++
			c.ops++
			a.bytes += uint64(fleetOpBlocks * bs)
			a.lat.Record(now - start)
			b := arrays[c.zipf.Next()]
			a.shard.Send(b.shard.ID(), now+fleetFabricLat, int64(c.id),
				func() { visit(c, b) })
		}
		if a.written == 0 || c.rng.Intn(10) < 4 { // 40% writes
			lba := a.next
			a.next = (a.next + fleetOpBlocks) % fleetSpan
			if a.written < fleetSpan {
				a.written = lba + fleetOpBlocks
			}
			a.writes++
			a.dev.Write(lba, fleetOpBlocks, nil, func(res blockdev.WriteResult) {
				finish("write", res.Err)
			})
			return
		}
		a.reads++
		lim := a.written - fleetOpBlocks + 1
		if lim < 1 {
			lim = 1
		}
		lba := c.rng.Int63n(lim)
		a.dev.Read(lba, fleetOpBlocks, func(res blockdev.ReadResult) {
			finish("read", res.Err)
		})
	}

	// Seed every client onto its first array with a staggered start; the
	// coordinator-side sends merge into the same canonical stream as
	// in-run hops, so placement order is shard-count-invariant too.
	for _, c := range clients {
		a := arrays[c.zipf.Next()]
		at := fleetFabricLat + sim.Time(c.rng.Intn(int(8*fleetFabricLat)))
		c := c
		g.Send(a.shard.ID(), at, int64(c.id), func() { visit(c, a) })
	}

	g.Run(endAt)
	if !g.Drain(endAt + 100*sim.Millisecond) {
		panic("fleet: group did not quiesce after the measured horizon")
	}

	// Per-group traffic table, arrays binned canonically.
	groups := 8
	if numArrays < groups {
		groups = numArrays
	}
	per := (numArrays + groups - 1) / groups
	traffic := &Table{ID: "fleet",
		Title:  fmt.Sprintf("sharded fleet: %d arrays, %d clients, zipf(%.1f) hops", numArrays, numClients, fleetTheta),
		Header: []string{"arrays", "ops", "reads", "writes", "MBps", "p50_us", "p99_us", "hops"}}
	secs := float64(endAt) / float64(sim.Second)
	addRow := func(label string, as []*fleetArray) {
		h := newLatHist()
		var ops, reads, writes, hops int64
		var bytes uint64
		for _, a := range as {
			h.Merge(a.lat)
			ops, reads, writes, hops = ops+a.ops, reads+a.reads, writes+a.writes, hops+a.hops
			bytes += a.bytes
		}
		traffic.Add(label,
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", reads),
			fmt.Sprintf("%d", writes),
			f1(float64(bytes)/(1<<20)/secs),
			us(sim.Time(h.Percentile(50))),
			us(sim.Time(h.Percentile(99))),
			fmt.Sprintf("%d", hops))
		if label == "all" {
			r.PublishHistogram("fleet/latency", "ns", h)
		}
	}
	for lo := 0; lo < numArrays; lo += per {
		hi := lo + per
		if hi > numArrays {
			hi = numArrays
		}
		addRow(fmt.Sprintf("a%03d-a%03d", lo, hi-1), arrays[lo:hi])
	}
	addRow("all", arrays)

	// Per-client fairness spread: closed-loop clients over a zipf-skewed
	// fleet should still all make progress.
	perClient := metrics.NewHistogram()
	minOps, maxOps := clients[0].ops, clients[0].ops
	for _, c := range clients {
		perClient.Record(c.ops)
		if c.ops < minOps {
			minOps = c.ops
		}
		if c.ops > maxOps {
			maxOps = c.ops
		}
	}
	fairness := &Table{ID: "fleet-clients",
		Title:  "per-client completed ops (closed loop, one op in flight per client)",
		Header: []string{"clients", "min_ops", "p50_ops", "p99_ops", "max_ops"}}
	fairness.Add(fmt.Sprintf("%d", numClients),
		fmt.Sprintf("%d", minOps),
		fmt.Sprintf("%d", perClient.Percentile(50)),
		fmt.Sprintf("%d", perClient.Percentile(99)),
		fmt.Sprintf("%d", maxOps))
	return []*Table{traffic, fairness}
}
