package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"biza/internal/metrics"
)

// TestSeriesParallelDeterminism: with series collection on, the sampled
// virtual-time series are part of the result artifact and must be
// byte-identical at any -parallel value. The sampler is driven purely by
// each engine's deterministic probe emission stream, so scheduling must
// not leak in.
func TestSeriesParallelDeterminism(t *testing.T) {
	s := QuickScale()
	s.Duration /= 4
	run := func(parallel int) *Report {
		return (&Runner{Scale: s, Seed: 7, Parallel: parallel,
			Series: &metrics.SamplerConfig{}}).Run([]string{"fig10"})
	}
	r1, r8 := run(1), run(8)
	if err := r1.Results[0].Error; err != "" {
		t.Fatalf("fig10 failed: %s", err)
	}
	a, b := r1.Results[0], r8.Results[0]
	if len(a.Series) == 0 {
		t.Fatal("no series collected with Runner.Series set")
	}
	j1, err := json.Marshal(a.Series)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(b.Series)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("series differ between -parallel 1 and 8 (%d vs %d bytes)", len(j1), len(j8))
	}
	for _, sd := range a.Series {
		if sd.Name == "" || sd.IntervalNs <= 0 {
			t.Fatalf("malformed series dump: %+v", sd)
		}
		if len(sd.Points) == 0 {
			t.Fatalf("series %s/%s has no points", sd.Trace, sd.Name)
		}
		for _, p := range sd.Points {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("series %s/%s contains non-finite point", sd.Trace, sd.Name)
			}
		}
	}
}

// TestSeriesShardCountInvariance: the tenants experiment (sharded, with
// the volume layer's new span instrumentation) must produce identical
// series at -shards 1 and 3, alongside its existing table/trace contract.
func TestSeriesShardCountInvariance(t *testing.T) {
	s := QuickScale()
	run := func(shards int) *Report {
		return (&Runner{Scale: s, Seed: 11, Parallel: 2, Shards: shards,
			Series: &metrics.SamplerConfig{}}).Run([]string{"tenants"})
	}
	r1, r3 := run(1), run(3)
	if err := r1.Results[0].Error; err != "" {
		t.Fatalf("tenants failed: %s", err)
	}
	if len(r1.Results[0].Series) == 0 {
		t.Fatal("tenants collected no series")
	}
	j1, err := json.Marshal(r1.Results[0].Series)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := json.Marshal(r3.Results[0].Series)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatalf("series differ between -shards 1 and 3 (%d vs %d bytes)", len(j1), len(j3))
	}
}

// Series collection must not perturb the simulation: a plain run and a
// series-collecting run must produce identical tables and samples.
func TestSeriesDoesNotPerturbResults(t *testing.T) {
	s := QuickScale()
	s.Duration /= 4
	plain := (&Runner{Scale: s, Seed: 7, Parallel: 2}).Run([]string{"fig10"})
	sampled := (&Runner{Scale: s, Seed: 7, Parallel: 2,
		Series: &metrics.SamplerConfig{}}).Run([]string{"fig10"})
	pj, err := json.Marshal(plain.Results[0].Samples)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(sampled.Results[0].Samples)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Fatal("enabling series collection changed experiment samples")
	}
}
