package bench

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestRunnerParallelDeterminism is the determinism contract of the issue:
// a quick-scale experiment must produce identical Result values at
// -parallel 1 and -parallel 8 for the same seed, because every RNG stream
// derives from (seed, experiment, stream label), never from scheduling.
func TestRunnerParallelDeterminism(t *testing.T) {
	s := QuickScale()
	s.TraceOps = 1500
	ids := []string{"table3", "fig5", "batching"}
	r1 := (&Runner{Scale: s, Seed: 7, Parallel: 1}).Run(ids)
	r8 := (&Runner{Scale: s, Seed: 7, Parallel: 8}).Run(ids)
	if len(r1.Results) != len(ids) || len(r8.Results) != len(ids) {
		t.Fatalf("result counts: %d vs %d, want %d", len(r1.Results), len(r8.Results), len(ids))
	}
	for i := range r1.Results {
		a, b := &r1.Results[i], &r8.Results[i]
		if a.Error != "" || b.Error != "" {
			t.Fatalf("%s failed: p1=%q p8=%q", a.Experiment, a.Error, b.Error)
		}
		if !reflect.DeepEqual(a.Tables, b.Tables) {
			t.Errorf("%s: tables differ between -parallel 1 and 8:\n%v\nvs\n%v",
				a.Experiment, render(a.Tables), render(b.Tables))
		}
		if !reflect.DeepEqual(a.Samples, b.Samples) {
			t.Errorf("%s: samples differ between -parallel 1 and 8", a.Experiment)
		}
		// The serialized metric payload must be byte-identical too.
		ja, _ := json.Marshal(struct {
			T []*Table
			S []Sample
		}{a.Tables, a.Samples})
		jb, _ := json.Marshal(struct {
			T []*Table
			S []Sample
		}{b.Tables, b.Samples})
		if string(ja) != string(jb) {
			t.Errorf("%s: JSON payloads differ", a.Experiment)
		}
	}
}

func render(ts []*Table) string {
	out := ""
	for _, tb := range ts {
		out += tb.String()
	}
	return out
}

// TestRunnerSeedSensitivity guards against accidentally ignoring the base
// seed: different seeds must (for a stochastic experiment) change values.
func TestRunnerSeedSensitivity(t *testing.T) {
	s := QuickScale()
	s.TraceOps = 800
	ids := []string{"wear"}
	a := (&Runner{Scale: s, Seed: 1, Parallel: 2}).Run(ids)
	b := (&Runner{Scale: s, Seed: 99, Parallel: 2}).Run(ids)
	if reflect.DeepEqual(a.Results[0].Samples, b.Results[0].Samples) {
		t.Fatal("seed 1 and seed 99 produced identical wear samples")
	}
}

// TestRunnerRecoversPanics: a panicking point must fail only its own
// experiment, leave the rest of the sweep intact, and surface in
// Report.Failed so the CLI can exit non-zero.
func TestRunnerRecoversPanics(t *testing.T) {
	const id = "panic-test"
	Experiments[id] = &Experiment{ID: id, Points: []string{"ok", "boom"},
		RunPoint: func(s Scale, r *Run, pt string) []*Table {
			if pt == "boom" {
				panic("injected failure")
			}
			return []*Table{{ID: id, Header: []string{"k", "v"}, Rows: [][]string{{"x", "1"}}}}
		}}
	defer delete(Experiments, id)

	rep := (&Runner{Scale: QuickScale(), Seed: 1, Parallel: 2}).Run([]string{id, "table2"})
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	bad := rep.Results[0]
	if bad.Error == "" || bad.Tables != nil {
		t.Fatalf("panicking experiment: error=%q tables=%v", bad.Error, bad.Tables)
	}
	good := rep.Results[1]
	if good.Error != "" || len(good.Samples) == 0 {
		t.Fatalf("healthy experiment affected: %+v", good)
	}
	if failed := rep.Failed(); len(failed) != 1 || failed[0] != id {
		t.Fatalf("Failed() = %v", failed)
	}
}

// TestRunnerUnknownExperiment: unknown ids become recorded failures, not
// panics.
func TestRunnerUnknownExperiment(t *testing.T) {
	rep := (&Runner{Scale: QuickScale(), Seed: 1, Parallel: 1}).Run([]string{"no-such-exp"})
	if rep.Results[0].Error == "" || len(rep.Failed()) != 1 {
		t.Fatalf("unknown id not reported: %+v", rep.Results[0])
	}
}

func TestTableSamples(t *testing.T) {
	tab := &Table{ID: "fig10a", Header: []string{"platform", "seq4K", "rand4K"}}
	tab.Add("BIZA", "123.4", "56.7")
	tab.Add("RAIZN", "99.0", "-")
	got := tab.Samples()
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3 (dash skipped): %+v", len(got), got)
	}
	if got[0].Labels["platform"] != "BIZA" || got[0].Metric != "seq4K" || got[0].Value != 123.4 {
		t.Fatalf("sample[0] = %+v", got[0])
	}
	if got[2].Labels["platform"] != "RAIZN" || got[2].Metric != "seq4K" {
		t.Fatalf("sample[2] = %+v", got[2])
	}
	// Composite cells contribute their aggregate; multi-label tables keep
	// every identity column.
	wa := &Table{ID: "fig15", LabelCols: 3,
		Header: []string{"platform", "depth", "size_KB", "p9999_us"}}
	wa.Add("BIZA", "1", "64", "812.5")
	s := wa.Samples()
	if len(s) != 1 || s[0].Labels["depth"] != "1" || s[0].Unit != "us" {
		t.Fatalf("fig15 samples = %+v", s)
	}
	if key := s[0].SampleKey(); key != "fig15/p9999_us[depth=1][platform=BIZA][size_KB=64]" {
		t.Fatalf("SampleKey = %q", key)
	}
	comp := &Table{ID: "fig14", Header: []string{"workload", "BIZA"}}
	comp.Add("casa", "1.23(1.00+0.23)")
	cs := comp.Samples()
	if len(cs) != 1 || cs[0].Value != 1.23 {
		t.Fatalf("composite samples = %+v", cs)
	}
}
