package bench

import (
	"fmt"
	"strconv"

	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/workload"
	"biza/internal/zns"
)

func init() {
	register("table2", Table2Presets)
	registerPoints("table3", []string{"single", "same", "diverse"}, table3Point)
	registerPoints("fig5", []string{"4", "16", "64", "128", "192"}, fig5Point)
	registerPoints("fig10", kindNames(microKinds(false)), fig10Point)
	registerPoints("fig11", kindNames(microKinds(true)), fig11Point)
	registerPoints("fig17", kindNames([]stack.Kind{stack.KindBIZA, stack.KindDmzapRAIZN,
		stack.KindMdraidDmzap, stack.KindMdraidConvSSD}), fig17Point)
}

// kindNames converts platform kinds to registry point keys.
func kindNames(kinds []stack.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}

// atoiPoint parses a numeric point key (registered from a literal list).
func atoiPoint(point string) int {
	v, err := strconv.Atoi(point)
	if err != nil {
		panic(fmt.Sprintf("bench: bad numeric point %q: %v", point, err))
	}
	return v
}

// Table2Presets reproduces Table 2: ZRWA configurations of commodity ZNS
// SSDs, straight from the device presets.
func Table2Presets(Scale, *Run) *Table {
	t := &Table{ID: "table2", Title: "ZRWA-related configurations of different ZNS SSDs",
		Header: []string{"device", "zone_cap_MB", "zrwa_per_zone_KB", "max_open", "total_zrwa_MB"}}
	for _, cfg := range []zns.Config{zns.ZN540(1), zns.J5500Z(1), zns.NS8600G(1), zns.PM1731a(1)} {
		t.Add(cfg.Name,
			fmt.Sprintf("%d", cfg.ZoneBytes()>>20),
			fmt.Sprintf("%d", cfg.ZRWABytes()>>10),
			fmt.Sprintf("%d", cfg.MaxOpenZones),
			f2(float64(cfg.TotalZRWABytes())/(1<<20)))
	}
	return t
}

// zoneStream drives a closed-loop 64 KiB write stream into one zone,
// rolling to the stride-linked next zone when full.
func zoneStream(eng *sim.Engine, dev *zns.Device, firstZone, stride, depth int,
	blocks int, lat func(sim.Time), bytes *int64) {
	zone := new(int)
	*zone = firstZone
	next := new(int64)
	cfg := dev.Config()
	if err := dev.Open(*zone, true); err != nil {
		panic(err)
	}
	var submit func()
	submit = func() {
		if *next+int64(blocks) > cfg.ZoneBlocks {
			*zone += stride
			if *zone >= cfg.NumZones {
				return
			}
			*next = 0
			dev.Open(*zone, true)
		}
		lba := *next
		*next += int64(blocks)
		dev.Write(*zone, lba, blocks, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
			if r.Err != nil {
				return
			}
			if lat != nil {
				lat(r.Latency)
			}
			*bytes += int64(blocks) * int64(cfg.BlockSize)
			submit()
		})
	}
	for i := 0; i < depth; i++ {
		submit()
	}
}

func table3Header() *Table {
	return &Table{ID: "table3", Title: "write performance in different zone placements (64 KiB)",
		Header: []string{"scenario", "bandwidth_MBps", "avg_lat_us", "p50_us", "p9999_us"}}
}

// table3Point runs one zone-placement scenario of Table 3: 64 KiB writes
// on a single zone, two zones sharing an I/O channel, or two zones on
// diverse channels.
func table3Point(s Scale, r *Run, point string) []*Table {
	t := table3Header()
	scenarios := map[string]struct {
		label string
		zones []int
	}{
		"single":  {"1. single zone", []int{0}},
		"same":    {"2. two zones, identical channel", []int{0, 8}}, // 8 channels round-robin
		"diverse": {"3. two zones, diverse channels", []int{0, 1}},
	}
	sc := scenarios[point]
	eng := r.NewEngine()
	cfg := stack.BenchZNS(256)
	cfg.Seed = r.Seed(point + "/dev")
	dev, err := zns.New(eng, cfg)
	if err != nil {
		panic(err)
	}
	hist := newLatHist()
	var bytes int64
	for _, z := range sc.zones {
		zoneStream(eng, dev, z, cfg.NumChannels*len(sc.zones), 8, 16, hist.Record, &bytes)
	}
	eng.RunUntil(s.Duration)
	r.PublishHistogram(point+"/lat", "ns", hist)
	mbps := float64(bytes) / 1e6 / (float64(s.Duration) / 1e9)
	t.Add(sc.label, f1(mbps), us(sim.Time(hist.Mean())), us(hist.Percentile(50)), us(hist.Percentile(99.99)))
	return []*Table{t}
}

// Table3ZonePlacement reproduces Table 3 in full (all scenarios).
func Table3ZonePlacement(s Scale, r *Run) *Table {
	return Experiments["table3"].Tables(s, r)[0]
}

// fig5Point runs one request size of Fig. 5: single-zone write throughput
// with 1 versus 32 in-flight writes.
func fig5Point(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig5", Title: "intra-zone parallelism: 1 vs 32 in-flight writes",
		Header: []string{"size_KB", "inflight1_MBps", "inflight32_MBps", "retained"}}
	sizeKB := atoiPoint(point)
	blocks := sizeKB * 1024 / 4096
	run := func(depth int) float64 {
		eng := r.NewEngine()
		cfg := stack.BenchZNS(256)
		cfg.Seed = r.Seed(fmt.Sprintf("%d/depth%d/dev", sizeKB, depth))
		dev, err := zns.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		var bytes int64
		zoneStream(eng, dev, 0, 8, depth, blocks, nil, &bytes)
		eng.RunUntil(s.Duration)
		return float64(bytes) / 1e6 / (float64(s.Duration) / 1e9)
	}
	d1, d32 := run(1), run(32)
	retained := 0.0
	if d32 > 0 {
		retained = d1 / d32
	}
	t.Add(fmt.Sprintf("%d", sizeKB), f1(d1), f1(d32), f2(retained))
	return []*Table{t}
}

// Fig5IntraZone reproduces Fig. 5 in full (all request sizes).
func Fig5IntraZone(s Scale, r *Run) *Table {
	return Experiments["fig5"].Tables(s, r)[0]
}

// microKinds lists the platforms of the Fig. 10/11 grid in row order.
func microKinds(read bool) []stack.Kind {
	kinds := append([]stack.Kind{}, stack.AllBlockPlatforms...)
	if !read {
		kinds = append(kinds, stack.KindRAIZN)
	}
	return kinds
}

func microGridTables(read bool) (tput, lat *Table) {
	tput = &Table{Title: "throughput (MB/s)",
		Header: []string{"platform", "seq4K", "seq64K", "seq192K", "rand4K", "rand64K", "rand192K"}}
	lat = &Table{Title: "average latency (us)", Header: tput.Header}
	if read {
		tput.ID, lat.ID = "fig11a", "fig11b"
		tput.Title = "read " + tput.Title
		lat.Title = "read " + lat.Title
	} else {
		tput.ID, lat.ID = "fig10a", "fig10b"
		tput.Title = "write " + tput.Title
		lat.Title = "write " + lat.Title
	}
	return tput, lat
}

// microGridPoint runs one platform row of the fio grid of Fig. 10/11.
func microGridPoint(s Scale, r *Run, read bool, kind stack.Kind) []*Table {
	tput, lat := microGridTables(read)
	trow := []string{string(kind)}
	lrow := []string{string(kind)}
	for _, pattern := range []workload.Pattern{workload.Seq, workload.Rand} {
		for _, sizeKB := range []int{4, 64, 192} {
			if kind == stack.KindRAIZN && pattern == workload.Rand {
				trow = append(trow, "-")
				lrow = append(lrow, "-")
				continue
			}
			cell := fmt.Sprintf("%s/%s/%d", kind, pattern, sizeKB)
			p, err := r.Platform(kind, stack.Options{Seed: r.Seed(cell + "/stack")})
			if err != nil {
				panic(err)
			}
			span := p.Dev.Blocks() / 2
			if read {
				workload.Precondition(p.Eng, p.Dev, span, 16)
			}
			res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
				Pattern: pattern, Read: read,
				SizeBlocks: sizeKB * 1024 / 4096,
				IODepth:    32, Duration: s.Duration,
				SpanBlocks: span, Seed: r.Seed(cell + "/wl"),
			})
			r.PublishHistogram(cell+"/lat", "ns", res.Lat)
			trow = append(trow, f1(res.Throughput().MBps()))
			lrow = append(lrow, f1(res.Lat.Mean()/1000))
		}
	}
	tput.Add(trow...)
	lat.Add(lrow...)
	return []*Table{tput, lat}
}

func fig10Point(s Scale, r *Run, point string) []*Table {
	return microGridPoint(s, r, false, stack.Kind(point))
}

func fig11Point(s Scale, r *Run, point string) []*Table {
	return microGridPoint(s, r, true, stack.Kind(point))
}

// Fig10Write reproduces Fig. 10: write throughput and average latency
// across platforms, patterns, and sizes (iodepth 32).
func Fig10Write(s Scale, r *Run) []*Table {
	return Experiments["fig10"].Tables(s, r)
}

// Fig11Read reproduces Fig. 11: read performance on preconditioned spans.
func Fig11Read(s Scale, r *Run) []*Table {
	return Experiments["fig11"].Tables(s, r)
}

// fig17Point runs one platform of Fig. 17: per-component CPU usage and
// CPU efficiency for 64 and 192 KiB sequential writes.
func fig17Point(s Scale, r *Run, point string) []*Table {
	t := &Table{ID: "fig17", Title: "CPU overhead: usage% by component and CPU per GB/s",
		LabelCols: 2,
		Header:    []string{"platform", "size_KB", "mdraid%", "dmzap%", "raizn%", "biza%", "io%", "GBps", "cpu%_per_GBps"}}
	kind := stack.Kind(point)
	for _, sizeKB := range []int{64, 192} {
		cell := fmt.Sprintf("%s/%d", kind, sizeKB)
		p, err := r.Platform(kind, stack.Options{Seed: r.Seed(cell + "/stack")})
		if err != nil {
			panic(err)
		}
		res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
			Pattern: workload.Seq, SizeBlocks: sizeKB * 1024 / 4096,
			IODepth: 32, Duration: s.Duration, Seed: r.Seed(cell + "/wl"),
		})
		elapsed := res.Elapsed
		gbps := res.Throughput().GBps()
		total := p.Acct.TotalPercent(elapsed)
		eff := 0.0
		if gbps > 0 {
			eff = total / gbps
		}
		t.Add(string(kind), fmt.Sprintf("%d", sizeKB),
			f1(p.Acct.UsagePercent(0, elapsed)), // mdraid
			f1(p.Acct.UsagePercent(1, elapsed)), // dmzap
			f1(p.Acct.UsagePercent(2, elapsed)), // raizn
			f1(p.Acct.UsagePercent(3, elapsed)), // biza
			f1(p.Acct.UsagePercent(4, elapsed)), // io
			f2(gbps), f1(eff))
	}
	return []*Table{t}
}

// Fig17CPU reproduces Fig. 17 in full (all platforms).
func Fig17CPU(s Scale, r *Run) *Table {
	return Experiments["fig17"].Tables(s, r)[0]
}
