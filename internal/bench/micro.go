package bench

import (
	"fmt"

	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/workload"
	"biza/internal/zns"
)

func init() {
	register("table2", Table2Presets)
	register("table3", Table3ZonePlacement)
	register("fig5", Fig5IntraZone)
	registerMulti("fig10", func(s Scale) []*Table { return Fig10Write(s) })
	registerMulti("fig11", func(s Scale) []*Table { return Fig11Read(s) })
	register("fig17", Fig17CPU)
}

// Table2Presets reproduces Table 2: ZRWA configurations of commodity ZNS
// SSDs, straight from the device presets.
func Table2Presets(Scale) *Table {
	t := &Table{ID: "table2", Title: "ZRWA-related configurations of different ZNS SSDs",
		Header: []string{"device", "zone_cap_MB", "zrwa_per_zone_KB", "max_open", "total_zrwa_MB"}}
	for _, cfg := range []zns.Config{zns.ZN540(1), zns.J5500Z(1), zns.NS8600G(1), zns.PM1731a(1)} {
		t.Add(cfg.Name,
			fmt.Sprintf("%d", cfg.ZoneBytes()>>20),
			fmt.Sprintf("%d", cfg.ZRWABytes()>>10),
			fmt.Sprintf("%d", cfg.MaxOpenZones),
			f2(float64(cfg.TotalZRWABytes())/(1<<20)))
	}
	return t
}

// zoneStream drives a closed-loop 64 KiB write stream into one zone,
// rolling to the stride-linked next zone when full.
func zoneStream(eng *sim.Engine, dev *zns.Device, firstZone, stride, depth int,
	blocks int, lat func(sim.Time), bytes *int64) {
	zone := new(int)
	*zone = firstZone
	next := new(int64)
	cfg := dev.Config()
	if err := dev.Open(*zone, true); err != nil {
		panic(err)
	}
	var submit func()
	submit = func() {
		if *next+int64(blocks) > cfg.ZoneBlocks {
			*zone += stride
			if *zone >= cfg.NumZones {
				return
			}
			*next = 0
			dev.Open(*zone, true)
		}
		lba := *next
		*next += int64(blocks)
		dev.Write(*zone, lba, blocks, nil, nil, zns.TagUserData, func(r zns.WriteResult) {
			if r.Err != nil {
				return
			}
			if lat != nil {
				lat(r.Latency)
			}
			*bytes += int64(blocks) * int64(cfg.BlockSize)
			submit()
		})
	}
	for i := 0; i < depth; i++ {
		submit()
	}
}

// Table3ZonePlacement reproduces Table 3: 64 KiB write performance on a
// single zone, two zones sharing an I/O channel, and two zones on diverse
// channels.
func Table3ZonePlacement(s Scale) *Table {
	t := &Table{ID: "table3", Title: "write performance in different zone placements (64 KiB)",
		Header: []string{"scenario", "bandwidth_MBps", "avg_lat_us", "p50_us", "p9999_us"}}
	run := func(name string, zones []int) {
		eng := sim.NewEngine()
		cfg := stack.BenchZNS(256)
		dev, err := zns.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		hist := newLatHist()
		var bytes int64
		for _, z := range zones {
			zoneStream(eng, dev, z, cfg.NumChannels*len(zones), 8, 16, hist.Record, &bytes)
		}
		eng.RunUntil(s.Duration)
		mbps := float64(bytes) / 1e6 / (float64(s.Duration) / 1e9)
		t.Add(name, f1(mbps), us(sim.Time(hist.Mean())), us(hist.Percentile(50)), us(hist.Percentile(99.99)))
	}
	run("1. single zone", []int{0})
	run("2. two zones, identical channel", []int{0, 8}) // 8 channels round-robin
	run("3. two zones, diverse channels", []int{0, 1})
	return t
}

// Fig5IntraZone reproduces Fig. 5: single-zone write throughput with 1
// versus 32 in-flight writes across request sizes.
func Fig5IntraZone(s Scale) *Table {
	t := &Table{ID: "fig5", Title: "intra-zone parallelism: 1 vs 32 in-flight writes",
		Header: []string{"size_KB", "inflight1_MBps", "inflight32_MBps", "retained"}}
	for _, sizeKB := range []int{4, 16, 64, 128, 192} {
		blocks := sizeKB * 1024 / 4096
		run := func(depth int) float64 {
			eng := sim.NewEngine()
			dev, err := zns.New(eng, stack.BenchZNS(256))
			if err != nil {
				panic(err)
			}
			var bytes int64
			zoneStream(eng, dev, 0, 8, depth, blocks, nil, &bytes)
			eng.RunUntil(s.Duration)
			return float64(bytes) / 1e6 / (float64(s.Duration) / 1e9)
		}
		d1, d32 := run(1), run(32)
		t.Add(fmt.Sprintf("%d", sizeKB), f1(d1), f1(d32), f2(d1/d32))
	}
	return t
}

// microGrid runs a platform over the fio grid of Fig. 10/11.
func microGrid(s Scale, read bool) []*Table {
	tput := &Table{Title: "throughput (MB/s)",
		Header: []string{"platform", "seq4K", "seq64K", "seq192K", "rand4K", "rand64K", "rand192K"}}
	lat := &Table{Title: "average latency (us)",
		Header: tput.Header}
	kinds := append([]stack.Kind{}, stack.AllBlockPlatforms...)
	if !read {
		kinds = append(kinds, stack.KindRAIZN)
	}
	for _, kind := range kinds {
		trow := []string{string(kind)}
		lrow := []string{string(kind)}
		for _, pattern := range []workload.Pattern{workload.Seq, workload.Rand} {
			for _, sizeKB := range []int{4, 64, 192} {
				if kind == stack.KindRAIZN && pattern == workload.Rand {
					trow = append(trow, "-")
					lrow = append(lrow, "-")
					continue
				}
				p, err := stack.New(kind, stack.Options{Seed: 42})
				if err != nil {
					panic(err)
				}
				span := p.Dev.Blocks() / 2
				if read {
					workload.Precondition(p.Eng, p.Dev, span, 16)
				}
				res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
					Pattern: pattern, Read: read,
					SizeBlocks: sizeKB * 1024 / 4096,
					IODepth:    32, Duration: s.Duration,
					SpanBlocks: span, Seed: 7,
				})
				trow = append(trow, f1(res.Throughput().MBps()))
				lrow = append(lrow, f1(res.Lat.Mean()/1000))
			}
		}
		tput.Add(trow...)
		lat.Add(lrow...)
	}
	return []*Table{tput, lat}
}

// Fig10Write reproduces Fig. 10: write throughput and average latency
// across platforms, patterns, and sizes (iodepth 32).
func Fig10Write(s Scale) []*Table {
	ts := microGrid(s, false)
	ts[0].ID, ts[1].ID = "fig10a", "fig10b"
	ts[0].Title = "write " + ts[0].Title
	ts[1].Title = "write " + ts[1].Title
	return ts
}

// Fig11Read reproduces Fig. 11: read performance on preconditioned spans.
func Fig11Read(s Scale) []*Table {
	ts := microGrid(s, true)
	ts[0].ID, ts[1].ID = "fig11a", "fig11b"
	ts[0].Title = "read " + ts[0].Title
	ts[1].Title = "read " + ts[1].Title
	return ts
}

// Fig17CPU reproduces Fig. 17: per-component CPU usage and CPU efficiency
// for 64 and 192 KiB sequential writes.
func Fig17CPU(s Scale) *Table {
	t := &Table{ID: "fig17", Title: "CPU overhead: usage% by component and CPU per GB/s",
		Header: []string{"platform", "size_KB", "mdraid%", "dmzap%", "raizn%", "biza%", "io%", "GBps", "cpu%_per_GBps"}}
	for _, kind := range []stack.Kind{stack.KindBIZA, stack.KindDmzapRAIZN, stack.KindMdraidDmzap, stack.KindMdraidConvSSD} {
		for _, sizeKB := range []int{64, 192} {
			p, err := stack.New(kind, stack.Options{Seed: 17})
			if err != nil {
				panic(err)
			}
			res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
				Pattern: workload.Seq, SizeBlocks: sizeKB * 1024 / 4096,
				IODepth: 32, Duration: s.Duration, Seed: 3,
			})
			elapsed := res.Elapsed
			gbps := res.Throughput().GBps()
			total := p.Acct.TotalPercent(elapsed)
			eff := 0.0
			if gbps > 0 {
				eff = total / gbps
			}
			t.Add(string(kind), fmt.Sprintf("%d", sizeKB),
				f1(p.Acct.UsagePercent(0, elapsed)), // mdraid
				f1(p.Acct.UsagePercent(1, elapsed)), // dmzap
				f1(p.Acct.UsagePercent(2, elapsed)), // raizn
				f1(p.Acct.UsagePercent(3, elapsed)), // biza
				f1(p.Acct.UsagePercent(4, elapsed)), // io
				f2(gbps), f1(eff))
		}
	}
	return t
}
