package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core).
// Every stochastic element of the simulation draws from a seeded RNG so
// experiments replay bit-identically.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// DeriveSeed deterministically derives a child seed from a base seed and a
// path of stream labels (experiment id, config point, stream name, ...).
// The derivation depends only on its inputs — never on scheduling or
// allocation order — so concurrent experiment shards draw from disjoint,
// reproducible streams regardless of worker count. Labels are hashed
// FNV-1a style with a separator between path elements, then mixed with the
// base seed through the splitmix64 finalizer.
func DeriveSeed(base uint64, labels ...string) uint64 {
	h := uint64(0xcbf29ce484222325) // FNV-1a offset basis
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 0x100000001b3
		}
		h ^= 0x9e3779b97f4a7c15 // path separator: "a","bc" != "ab","c"
		h *= 0x100000001b3
	}
	z := h ^ (base + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ZipfGen samples from a Zipf distribution over ranks [0, n) with exponent
// theta using precomputed cumulative weights (exact inverse-CDF sampling).
type ZipfGen struct {
	rng *RNG
	cum []float64
}

// NewZipfGen builds a sampler over n ranks with exponent theta >= 0.
func NewZipfGen(rng *RNG, n int, theta float64) *ZipfGen {
	if n <= 0 {
		panic("sim: ZipfGen with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfGen{rng: rng, cum: cum}
}

// Next draws a rank in [0, n), rank 0 being the most popular.
func (z *ZipfGen) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
