package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap reimplement the engine's ordering contract on top of
// container/heap, as the oracle for the hand-rolled 4-ary heap: pop order
// is (time, insertion seq), FIFO among equal timestamps.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *refHeap) popID() int        { return heap.Pop(h).(refEvent).id }
func (h *refHeap) pushEv(e refEvent) { heap.Push(h, e) }

// TestHeapOrderMatchesContainerHeap drives the engine and a container/heap
// reference with identical random (time, seq) streams — including bursts of
// duplicate timestamps and interleaved push/pop — and requires identical
// firing order.
func TestHeapOrderMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		e := NewEngine()
		ref := &refHeap{}
		var got, want []int
		var seq uint64
		nextID := 0
		push := func() {
			// Small time range forces many equal timestamps (FIFO stress).
			at := e.Now() + Time(rng.Intn(8))
			id := nextID
			nextID++
			seq++
			ref.pushEv(refEvent{at: at, seq: seq, id: id})
			e.At(at, func() { got = append(got, id) })
		}
		for i := 0; i < 40; i++ {
			push()
		}
		for ref.Len() > 0 {
			// Reference pops one; engine runs until that event's time has
			// fired everything due, so drain the reference first.
			want = append(want, ref.popID())
			if !e.Step() {
				t.Fatalf("trial %d: engine exhausted before reference", trial)
			}
			// Occasionally push more while draining (interleaved schedule).
			if rng.Intn(4) == 0 && nextID < 200 {
				push()
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: engine has %d events left after reference drained", trial, e.Pending())
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: firing order diverges at %d: got %d want %d\ngot  %v\nwant %v",
					trial, i, got[i], want[i], got, want)
			}
		}
	}
}

// countHandler is a pooled event record: scheduling it must not allocate.
type countHandler struct {
	n int
	a Time
	b Time
}

func (h *countHandler) Fire(a, b Time) { h.n++; h.a, h.b = a, b }

// TestAtEventZeroAlloc is the gate for the allocation-free event core:
// scheduling a pooled Handler record and firing it costs zero allocations
// per event once the heap's backing array has grown.
func TestAtEventZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &countHandler{}
	// Warm up so e.events has capacity.
	for i := 0; i < 64; i++ {
		e.AfterEvent(Time(i), h, 1, 2)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterEvent(10, h, 3, 4)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("AtEvent+Run allocates %.1f per event, want 0", allocs)
	}
	if h.a != 3 || h.b != 4 {
		t.Fatalf("handler args = (%d,%d), want (3,4)", h.a, h.b)
	}
}

// TestResourceSubmitZeroAlloc gates the Resource fast path: a steady-state
// submit/complete cycle through a pooled grant record must not allocate.
func TestResourceSubmitZeroAlloc(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	fn := func(start, end Time) {}
	for i := 0; i < 64; i++ {
		r.Submit(10, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Submit(10, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Resource.Submit+Run allocates %.1f per op, want 0", allocs)
	}
}

// TestStopWhileIdleLatches: a Stop issued while the engine is idle halts
// the next Run before it fires anything, and is consumed by that Run.
func TestStopWhileIdleLatches(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.Stop()
	if !e.Stopping() {
		t.Fatal("Stopping() = false after Stop")
	}
	e.Run()
	if fired != 0 {
		t.Fatalf("Run fired %d events despite pending idle Stop", fired)
	}
	if e.Stopping() {
		t.Fatal("Run did not consume the stop request")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("second Run fired %d events, want 1 (stop must halt exactly one run)", fired)
	}
}

// TestStopWhileIdleHaltsRunUntil: an idle Stop also halts RunUntil before
// the clock advances, and is consumed.
func TestStopWhileIdleHaltsRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.Stop()
	e.RunUntil(100)
	if fired != 0 {
		t.Fatalf("RunUntil fired %d events despite pending idle Stop", fired)
	}
	if e.Now() != 0 {
		t.Fatalf("RunUntil advanced the clock to %d under a pending Stop", e.Now())
	}
	e.RunUntil(100)
	if fired != 1 || e.Now() != 100 {
		t.Fatalf("after consuming stop: fired=%d now=%d, want 1/100", fired, e.Now())
	}
}

// TestStopMidRunConsumedOnce: a Stop fired from inside an event halts that
// Run after the event returns; the next Run resumes normally.
func TestStopMidRunConsumedOnce(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1); e.Stop() })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 1 {
		t.Fatalf("first Run fired %v, want just [1]", order)
	}
	e.Run()
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("second Run fired %v, want [1 2]", order)
	}
}

// TestStepIgnoresStop: Step fires exactly one event even under a pending
// stop request (documented semantics).
func TestStepIgnoresStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.Stop()
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if fired != 1 {
		t.Fatal("Step did not fire under a pending Stop")
	}
	if !e.Stopping() {
		t.Fatal("Step must not consume the stop request")
	}
}
