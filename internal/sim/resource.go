package sim

// Resource models a k-server FIFO queueing station in virtual time, such as
// an SSD I/O channel with k independent flash dies or a shared bandwidth
// link (k = 1). Submissions are served non-preemptively in arrival order by
// the earliest-available server.
type Resource struct {
	eng    *Engine
	freeAt []Time

	// Busy accounting for utilization metrics.
	busy     Time
	lastIdle Time
}

// NewResource returns a station with servers parallel servers.
func NewResource(eng *Engine, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{eng: eng, freeAt: make([]Time, servers)}
}

// Servers reports the number of parallel servers.
func (r *Resource) Servers() int { return len(r.freeAt) }

// Submit enqueues a job with the given service time. done, if non-nil, runs
// when the job completes; start is when service began (after queueing) and
// end when it finished. Submit returns the completion time.
func (r *Resource) Submit(service Time, done func(start, end Time)) Time {
	start, end := r.reserve(service)
	if done != nil {
		r.eng.atTimed(end, done, start, end)
	}
	return end
}

// SubmitEvent enqueues a job whose completion fires h.Fire(start, end).
// With a pooled record this path performs zero allocations per submission.
func (r *Resource) SubmitEvent(service Time, h Handler) Time {
	start, end := r.reserve(service)
	if h != nil {
		r.eng.AtEvent(end, h, start, end)
	}
	return end
}

// reserve assigns the job to the earliest-free server and returns its
// service window.
func (r *Resource) reserve(service Time) (start, end Time) {
	if service < 0 {
		panic("sim: negative service time")
	}
	best := 0
	for i := 1; i < len(r.freeAt); i++ {
		if r.freeAt[i] < r.freeAt[best] {
			best = i
		}
	}
	start = r.eng.Now()
	if r.freeAt[best] > start {
		start = r.freeAt[best]
	}
	end = start + service
	r.freeAt[best] = end
	r.busy += service
	return start, end
}

// NextFree reports the earliest time at which any server becomes free.
func (r *Resource) NextFree() Time {
	best := r.freeAt[0]
	for _, t := range r.freeAt[1:] {
		if t < best {
			best = t
		}
	}
	if now := r.eng.Now(); best < now {
		return now
	}
	return best
}

// Backlog reports the queueing delay a job submitted now would experience
// before service starts.
func (r *Resource) Backlog() Time { return r.NextFree() - r.eng.Now() }

// BusyTime reports cumulative service time delivered by all servers.
func (r *Resource) BusyTime() Time { return r.busy }
