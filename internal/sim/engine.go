// Package sim provides a deterministic discrete-event simulation engine.
//
// All storage devices and AFA engines in this repository run in virtual
// time: an Engine owns a monotonically increasing clock (int64 nanoseconds)
// and an event heap. Callers schedule callbacks at absolute or relative
// virtual times; Run drains the heap in (time, insertion-order) order, so
// every simulation is fully reproducible.
//
// The event core is built for throughput: events are value types in a
// hand-rolled 4-ary min-heap (no container/heap interface boxing, no
// per-event allocation inside the engine), and hot schedulers can avoid
// caller-side closure allocation entirely by scheduling a pooled record
// through the Handler interface (AtEvent/AfterEvent) or a pre-stored
// two-argument callback (atTimed, used by Resource). See DESIGN.md,
// "Event core".
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Handler is implemented by schedulable event records. Hot paths keep a
// pool of records implementing Handler and schedule them with AtEvent:
// the engine stores the interface value without allocating, so a recycled
// record costs zero allocations per scheduled event.
type Handler interface {
	// Fire runs the event. a and b carry two caller-chosen Time arguments
	// (Resource passes service start/end; plain events pass zeros).
	Fire(a, b Time)
}

// event is one scheduled callback, stored by value in the heap. Exactly
// one of fn, tfn, h is set.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events with equal timestamps
	a, b Time   // arguments for tfn / h
	fn   func()
	tfn  func(a, b Time)
	h    Handler
}

// before reports heap ordering: (time, insertion seq).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; the entire simulation runs on one goroutine.
type Engine struct {
	now     Time
	seq     uint64
	events  []event // 4-ary min-heap ordered by (at, seq)
	stopped bool
	sink    *atomic.Int64 // optional: accumulates virtual time advanced
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTimeSink registers an accumulator credited with every nanosecond of
// virtual time this engine advances. Many engines (one simulation each,
// possibly on different goroutines) may share one sink, which is how the
// benchmark runner totals simulated time per experiment.
func (e *Engine) SetTimeSink(sink *atomic.Int64) { e.sink = sink }

// advanceTo moves the clock forward to t, crediting the sink. Called once
// per clock movement, so recursion through Run/RunUntil never double-counts.
func (e *Engine) advanceTo(t Time) {
	if t > e.now {
		if e.sink != nil {
			e.sink.Add(t - e.now)
		}
		e.now = t
	}
}

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// push inserts ev, maintaining the 4-ary heap invariant.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.events[i].before(&e.events[p]) {
			break
		}
		e.events[i], e.events[p] = e.events[p], e.events[i]
		i = p
	}
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/h references so fired events don't pin memory
	e.events = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return root
}

// siftDown restores the heap invariant below node i.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			return
		}
		// Find the smallest of up to four children.
		best := c
		last := c + 4
		if last > n {
			last = n
		}
		for j := c + 1; j < last; j++ {
			if h[j].before(&h[best]) {
				best = j
			}
		}
		if !h[best].before(&h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// schedule validates t and pushes ev with the next sequence number.
func (e *Engine) schedule(t Time, ev event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	e.push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would mean causality is broken somewhere in the simulation.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, event{fn: fn}) }

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtEvent schedules h.Fire(a, b) at absolute time t. The engine itself
// performs no allocation, so pooled records make scheduling allocation-free.
func (e *Engine) AtEvent(t Time, h Handler, a, b Time) {
	e.schedule(t, event{h: h, a: a, b: b})
}

// AfterEvent schedules h.Fire(a, b) d nanoseconds from now.
func (e *Engine) AfterEvent(d Time, h Handler, a, b Time) { e.AtEvent(e.now+d, h, a, b) }

// atTimed schedules fn(a, b) at absolute time t without a wrapper closure
// (package-internal: Resource completions).
func (e *Engine) atTimed(t Time, fn func(a, b Time), a, b Time) {
	e.schedule(t, event{tfn: fn, a: a, b: b})
}

// fire dispatches one popped event.
func (ev *event) fire() {
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.tfn != nil:
		ev.tfn(ev.a, ev.b)
	case ev.h != nil:
		ev.h.Fire(ev.a, ev.b)
	}
}

// consumeStop reports whether a stop request is pending, clearing it. Each
// Stop halts exactly one Run/RunUntil.
func (e *Engine) consumeStop() bool {
	if e.stopped {
		e.stopped = false
		return true
	}
	return false
}

// Run fires events until the heap is empty or Stop is called.
//
// A Stop issued while the engine is idle latches: the next Run (or
// RunUntil) returns before firing anything, consuming the request.
func (e *Engine) Run() {
	if e.consumeStop() {
		return
	}
	for len(e.events) > 0 {
		ev := e.pop()
		e.advanceTo(ev.at)
		ev.fire()
		if e.consumeStop() {
			return
		}
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled beyond t remain pending. A pending or mid-run Stop halts
// the call before the clock advances to t (and is consumed, like Run).
func (e *Engine) RunUntil(t Time) {
	if e.consumeStop() {
		return
	}
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := e.pop()
		e.advanceTo(ev.at)
		ev.fire()
		if e.consumeStop() {
			return
		}
	}
	if e.now < t {
		e.advanceTo(t)
	}
}

// Step fires exactly one event, if any, and reports whether one fired.
// Step ignores pending stop requests.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.advanceTo(ev.at)
	ev.fire()
	return true
}

// Stop requests a halt. The request latches: it halts the currently
// executing Run/RunUntil after the running event returns or, if the engine
// is idle, the next Run/RunUntil call, which then fires nothing. Each
// request halts exactly one run.
func (e *Engine) Stop() { e.stopped = true }

// Stopping reports whether a stop request is pending.
func (e *Engine) Stopping() bool { return e.stopped }
