// Package sim provides a deterministic discrete-event simulation engine.
//
// All storage devices and AFA engines in this repository run in virtual
// time: an Engine owns a monotonically increasing clock (int64 nanoseconds)
// and an event heap. Callers schedule callbacks at absolute or relative
// virtual times; Run drains the heap in (time, insertion-order) order, so
// every simulation is fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events with equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; the entire simulation runs on one goroutine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	sink    *atomic.Int64 // optional: accumulates virtual time advanced
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTimeSink registers an accumulator credited with every nanosecond of
// virtual time this engine advances. Many engines (one simulation each,
// possibly on different goroutines) may share one sink, which is how the
// benchmark runner totals simulated time per experiment.
func (e *Engine) SetTimeSink(sink *atomic.Int64) { e.sink = sink }

// advanceTo moves the clock forward to t, crediting the sink. Called once
// per clock movement, so recursion through Run/RunUntil never double-counts.
func (e *Engine) advanceTo(t Time) {
	if t > e.now {
		if e.sink != nil {
			e.sink.Add(t - e.now)
		}
		e.now = t
	}
}

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would mean causality is broken somewhere in the simulation.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.events.pushEvent(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Run fires events until the heap is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events.popEvent()
		e.advanceTo(ev.at)
		ev.fn()
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events.peek().at <= t {
		ev := e.events.popEvent()
		e.advanceTo(ev.at)
		ev.fn()
	}
	if !e.stopped && e.now < t {
		e.advanceTo(t)
	}
}

// Step fires exactly one event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.popEvent()
	e.advanceTo(ev.at)
	ev.fn()
	return true
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }
