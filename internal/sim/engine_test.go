package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp events reordered at %d: got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling produced %v", hits)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 || e.Now() != 30 {
		t.Fatalf("fired=%d now=%d after Run", fired, e.Now())
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("idle clock = %d, want 1000", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++; e.Stop() })
	e.At(20, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired = %d", fired)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if fired != 1 {
		t.Fatal("Step did not fire the event")
	}
	if e.Step() {
		t.Fatal("Step returned true with empty heap")
	}
}

func TestResourceSingleServerSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Submit(10, func(start, end Time) { ends = append(ends, end) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelServers(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 4)
	var ends []Time
	for i := 0; i < 4; i++ {
		r.Submit(10, func(start, end Time) { ends = append(ends, end) })
	}
	e.Run()
	for _, end := range ends {
		if end != 10 {
			t.Fatalf("parallel servers serialized: ends = %v", ends)
		}
	}
}

func TestResourceQueueSpillsToAllServers(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var last Time
	for i := 0; i < 6; i++ {
		r.Submit(10, func(_, end Time) {
			if end > last {
				last = end
			}
		})
	}
	e.Run()
	if last != 30 { // 6 jobs, 2 servers, 10 each => makespan 30
		t.Fatalf("makespan = %d, want 30", last)
	}
	if r.BusyTime() != 60 {
		t.Fatalf("busy = %d, want 60", r.BusyTime())
	}
}

func TestResourceBacklog(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.Submit(100, nil)
	if got := r.Backlog(); got != 100 {
		t.Fatalf("backlog = %d, want 100", got)
	}
	e.RunUntil(100)
	if got := r.Backlog(); got != 0 {
		t.Fatalf("backlog after drain = %d, want 0", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(x uint16) bool {
		n := int(x%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfGenSkew(t *testing.T) {
	r := NewRNG(13)
	z := NewZipfGen(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank 0 should carry roughly 1/H(100) of the mass (~19%).
	if counts[0] < 10000 || counts[0] > 30000 {
		t.Fatalf("rank0 mass = %d, want roughly 19%% of 100000", counts[0])
	}
}

func TestZipfGenUniformWhenThetaZero(t *testing.T) {
	r := NewRNG(17)
	z := NewZipfGen(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("theta=0 not uniform: counts[%d]=%d", i, c)
		}
	}
}

func TestZipfGenCoversRange(t *testing.T) {
	r := NewRNG(19)
	z := NewZipfGen(r, 5, 0.5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 5 {
			t.Fatalf("zipf out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("zipf never produced some ranks: %v", seen)
	}
}

func TestResourceMakespanProperty(t *testing.T) {
	// Property: for any job set, makespan >= total work / servers, and
	// makespan <= total work (no parallelism slower than serial).
	if err := quick.Check(func(durs []uint16, serversRaw uint8) bool {
		if len(durs) == 0 {
			return true
		}
		servers := int(serversRaw%8) + 1
		e := NewEngine()
		r := NewResource(e, servers)
		var total Time
		var makespan Time
		for _, d := range durs {
			dur := Time(d%1000) + 1
			total += dur
			r.Submit(dur, func(_, end Time) {
				if end > makespan {
					makespan = end
				}
			})
		}
		e.Run()
		lower := total / Time(servers)
		return makespan >= lower && makespan <= total
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
