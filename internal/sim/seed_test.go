package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	a := DeriveSeed(1, "fig10", "BIZA/seq/64")
	if b := DeriveSeed(1, "fig10", "BIZA/seq/64"); a != b {
		t.Fatalf("same inputs gave %d and %d", a, b)
	}
	seen := map[uint64]string{}
	cases := [][]string{
		{"fig10", "BIZA/seq/64"},
		{"fig10", "BIZA/seq/4"},
		{"fig11", "BIZA/seq/64"},
		{"fig10", "BIZA", "seq/64"}, // path split must matter
		{"fig10BIZA/seq/64"},
		{},
	}
	for _, labels := range cases {
		v := DeriveSeed(1, labels...)
		key := fmt.Sprint(labels)
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision between %q and %q", prev, key)
		}
		seen[v] = key
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("base seed ignored")
	}
}

func TestEngineTimeSink(t *testing.T) {
	var vt atomic.Int64
	e := NewEngine()
	e.SetTimeSink(&vt)
	e.After(5*Microsecond, func() {})
	e.After(9*Microsecond, func() {})
	e.Run()
	if got := vt.Load(); got != 9*Microsecond {
		t.Fatalf("after Run: sink = %d, want %d", got, 9*Microsecond)
	}
	// RunUntil credits the idle jump to the horizon too.
	e.RunUntil(20 * Microsecond)
	if got := vt.Load(); got != 20*Microsecond {
		t.Fatalf("after RunUntil: sink = %d, want %d", got, 20*Microsecond)
	}
	// Two engines sharing one sink accumulate jointly.
	e2 := NewEngine()
	e2.SetTimeSink(&vt)
	e2.After(Microsecond, func() {})
	e2.Run()
	if got := vt.Load(); got != 21*Microsecond {
		t.Fatalf("shared sink = %d, want %d", got, 21*Microsecond)
	}
}
