package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// The shard tests drive one randomized actor workload over two fabrics —
// a single raw Engine (the oracle) and ShardGroups of several sizes — and
// require identical observable behavior. Actors hop between partitions
// through sends keyed by their logical id, exactly the discipline the
// fleet experiment uses.

const (
	tWindow    = Time(1 << 20) // barrier window and minimum fabric latency
	tMaxEvents = 4096          // per-actor cap on scheduling actions (offset space)
)

// tEntry is one observed event: when it fired and which local step it was.
type tEntry struct {
	at   Time
	step int
}

type tActor struct {
	id        int
	rng       *RNG
	remaining int
	sched     int // scheduling actions taken (unique-offset counter)
	log       []tEntry
}

// tFabric abstracts the two execution substrates under test.
type tFabric interface {
	now(actor int) Time
	schedule(actor int, at Time, fn func())
	send(from, to int, at Time, src int64, fn func())
	seed(to int, at Time, src int64, fn func())
	drain() // run to quiescence
}

// rawFabric: everything on one raw Engine — the single-engine oracle.
type rawFabric struct {
	eng *Engine
	// global records the global firing order (single goroutine, so a
	// shared slice is safe here and only here).
	global []int // actor ids in firing order
}

func (f *rawFabric) now(int) Time                               { return f.eng.Now() }
func (f *rawFabric) schedule(_ int, at Time, fn func())         { f.eng.At(at, fn) }
func (f *rawFabric) send(_, _ int, at Time, _ int64, fn func()) { f.eng.At(at, fn) }
func (f *rawFabric) seed(_ int, at Time, _ int64, fn func())    { f.eng.At(at, fn) }
func (f *rawFabric) drain()                                     { f.eng.Run() }

// groupFabric: actors partitioned over a ShardGroup, id modulo shards.
type groupFabric struct {
	g *ShardGroup
}

func (f *groupFabric) home(actor int) *Shard { return f.g.Shard(actor % f.g.Shards()) }
func (f *groupFabric) now(actor int) Time    { return f.home(actor).Engine().Now() }
func (f *groupFabric) schedule(actor int, at Time, fn func()) {
	f.home(actor).Engine().At(at, fn)
}
func (f *groupFabric) send(from, to int, at Time, src int64, fn func()) {
	f.home(from).Send(f.home(to).ID(), at, src, fn)
}
func (f *groupFabric) seed(to int, at Time, src int64, fn func()) {
	f.g.Send(f.home(to).ID(), at, src, fn)
}
func (f *groupFabric) drain() {
	if !f.g.Drain(1 << 40) {
		panic("sim test: shard group failed to drain")
	}
}

type tWorld struct {
	fab    tFabric
	actors []*tActor
	unique bool // globally unique timestamps vs deliberate ties
}

func newWorld(fab tFabric, actors, steps int, seed uint64, unique bool) *tWorld {
	w := &tWorld{fab: fab, unique: unique}
	for i := 0; i < actors; i++ {
		w.actors = append(w.actors, &tActor{
			id:        i,
			rng:       NewRNG(DeriveSeed(seed, "shardtest", fmt.Sprint(i))),
			remaining: steps,
		})
	}
	return w
}

// nextAt picks the next event time: at least one full window ahead (the
// lookahead every fabric hop must respect), globally unique in unique
// mode, tie-prone otherwise.
func (w *tWorld) nextAt(a *tActor, now Time) Time {
	base := (now/tWindow + 1 + Time(a.rng.Intn(3))) * tWindow
	a.sched++
	if a.sched >= tMaxEvents {
		panic("sim test: offset space exhausted")
	}
	if w.unique {
		return base + Time(a.id*tMaxEvents+a.sched)
	}
	return base + Time(a.rng.Intn(2)) // frequent exact collisions
}

func (w *tWorld) step(a *tActor) {
	now := w.fab.now(a.id)
	a.log = append(a.log, tEntry{at: now, step: len(a.log)})
	if raw, ok := w.fab.(*rawFabric); ok {
		raw.global = append(raw.global, a.id)
	}
	if a.remaining == 0 {
		return
	}
	a.remaining--
	at := w.nextAt(a, now)
	if len(w.actors) > 1 && a.rng.Intn(3) == 0 {
		b := w.actors[a.rng.Intn(len(w.actors))]
		w.fab.send(a.id, b.id, at, int64(a.id), func() { w.step(b) })
		return
	}
	w.fab.schedule(a.id, at, func() { w.step(a) })
}

func (w *tWorld) start() {
	for _, a := range w.actors {
		a := a
		var at Time
		if w.unique {
			at = tWindow + Time(a.id+1)
		} else {
			at = tWindow
		}
		w.fab.seed(a.id, at, int64(a.id), func() { w.step(a) })
	}
	w.fab.drain()
}

func runWorld(fab tFabric, actors, steps int, seed uint64, unique bool) *tWorld {
	w := newWorld(fab, actors, steps, seed, unique)
	w.start()
	return w
}

func diffLogs(t *testing.T, label string, want, got []*tActor) {
	t.Helper()
	for i := range want {
		a, b := want[i], got[i]
		if len(a.log) != len(b.log) {
			t.Fatalf("%s: actor %d fired %d events, oracle fired %d", label, i, len(b.log), len(a.log))
		}
		for j := range a.log {
			if a.log[j] != b.log[j] {
				t.Fatalf("%s: actor %d event %d = %+v, oracle %+v", label, i, j, b.log[j], a.log[j])
			}
		}
	}
}

// TestShardMergeMatchesSingleEngineOracle drives a workload whose event
// timestamps are globally unique, so the single raw engine's firing order
// is the unambiguous (time, seq) reference. Every shard count must
// reproduce each actor's event sequence exactly, and the time-merged
// union of the shard logs must equal the raw engine's global firing order
// — the cross-shard merge loses, duplicates, or reorders nothing.
func TestShardMergeMatchesSingleEngineOracle(t *testing.T) {
	const actors, steps = 7, 300
	for _, seed := range []uint64{1, 2, 42} {
		raw := &rawFabric{eng: NewEngine()}
		oracle := runWorld(raw, actors, steps, seed, true)

		// Raw global firing order must itself be in strictly increasing
		// time order (unique timestamps).
		var all []tEntry
		for _, a := range oracle.actors {
			all = append(all, a.log...)
		}
		if len(all) != len(raw.global) {
			t.Fatalf("seed %d: %d log entries vs %d global firings", seed, len(all), len(raw.global))
		}

		for _, shards := range []int{1, 2, 3, 4} {
			g := NewShardGroup(shards, tWindow)
			got := runWorld(&groupFabric{g: g}, actors, steps, seed, true)
			diffLogs(t, fmt.Sprintf("seed %d shards %d", seed, shards), oracle.actors, got.actors)
		}
	}
}

// TestShardCountInvarianceUnderTies floods the schedule with events at
// identical timestamps — the case the canonical (time, src, seq) merge
// order exists for — and requires every actor's observed sequence to be
// identical at shard counts 1, 2, 3, 5, and 8. The one-shard group is the
// reference: the determinism contract is defined by the windowed merge
// discipline, which a single shard follows too.
func TestShardCountInvarianceUnderTies(t *testing.T) {
	const actors, steps = 9, 400
	for _, seed := range []uint64{1, 7} {
		ref := runWorld(&groupFabric{g: NewShardGroup(1, tWindow)}, actors, steps, seed, false)
		ties := 0
		seen := map[Time]bool{}
		for _, a := range ref.actors {
			for _, e := range a.log {
				if seen[e.at] {
					ties++
				}
				seen[e.at] = true
			}
		}
		if ties == 0 {
			t.Fatalf("seed %d: tie-heavy workload produced no timestamp collisions", seed)
		}
		for _, shards := range []int{2, 3, 5, 8} {
			got := runWorld(&groupFabric{g: NewShardGroup(shards, tWindow)}, actors, steps, seed, false)
			diffLogs(t, fmt.Sprintf("seed %d shards %d", seed, shards), ref.actors, got.actors)
		}
	}
}

// TestShardSendLookaheadPanics pins the conservative-lookahead contract:
// delivering inside the sender's current window must fail loudly, and the
// panic must surface on the coordinating goroutine with the shard named.
func TestShardSendLookaheadPanics(t *testing.T) {
	g := NewShardGroup(2, tWindow)
	g.Send(1, tWindow/2, 0, func() {
		// Fired mid-window on shard 1: delivery at "now" is inside the
		// current window — a lookahead violation.
		g.Shard(1).Send(0, g.Shard(1).Engine().Now(), 0, func() {})
	})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("lookahead violation did not panic")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "lookahead") || !strings.Contains(msg, "shard 1") {
			t.Fatalf("panic %q does not name the lookahead violation on shard 1", msg)
		}
	}()
	g.Run(2 * tWindow)
}

// TestShardPanicPropagates: a panic inside a shard's window re-panics on
// the coordinator with the shard id, after the window barrier completes.
func TestShardPanicPropagates(t *testing.T) {
	g := NewShardGroup(3, tWindow)
	g.Send(2, tWindow/2, 0, func() { panic("boom") })
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("shard panic did not propagate")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "shard 2") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic %q does not carry shard id and cause", msg)
		}
	}()
	g.Run(tWindow)
}

// TestShardGroupTimeSink: the group credits advanced virtual time once,
// independent of the shard count.
func TestShardGroupTimeSink(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var sink atomic.Int64
		g := NewShardGroup(shards, tWindow)
		g.SetTimeSink(&sink)
		g.Run(10*tWindow + 123)
		if got := sink.Load(); got != int64(10*tWindow+123) {
			t.Fatalf("shards=%d: sink %d, want %d", shards, got, 10*tWindow+123)
		}
	}
}

// TestShardDrain: Drain completes queued cross-shard chains and reports
// quiescence; an unreachable limit reports failure without hanging.
func TestShardDrain(t *testing.T) {
	g := NewShardGroup(2, tWindow)
	hops := 0
	var hop func(at Time)
	hop = func(at Time) {
		hops++
		if hops >= 5 {
			return
		}
		g.Shard(hops%2).Send((hops+1)%2, at+2*tWindow, 7, func() { hop(at + 2*tWindow) })
	}
	g.Send(1, tWindow, 7, func() { hop(tWindow) })
	if !g.Drain(1 << 40) {
		t.Fatal("Drain did not reach quiescence")
	}
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
	if g.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain", g.Pending())
	}
}
