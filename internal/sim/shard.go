package sim

// Sharded deterministic simulation: a ShardGroup partitions one logical
// simulation across several Engines, each advanced by its own goroutine,
// while keeping the run bit-identical at any shard count.
//
// The synchronization model is a conservative time-window barrier. All
// shards advance in lockstep windows of fixed virtual width W: during the
// window (P, P+W] every shard drains its own event heap independently; at
// the barrier the coordinator collects every cross-shard message sent
// during the window, merges them into one canonically ordered stream, and
// injects the due ones into the receiving engines before the next window
// starts. Because a message sent during a window may not be delivered
// inside it, senders must respect a lookahead of one window: the delivery
// time of a Send must be at or beyond the end of the sender's current
// window (model it as fabric/network latency >= W).
//
// Determinism contract. The merged stream is ordered by
//
//	(delivery time, logical source key, sender FIFO sequence)
//
// — never by physical shard id or goroutine timing — so the injection
// order into any receiving engine, and therefore that engine's (time, seq)
// event order, is a pure function of the workload. Callers must route
// *every* cross-partition interaction through Send (even when source and
// destination happen to live on the same shard) and must choose source
// keys that identify the logical sender (a client id, an array ordinal)
// so the key assignment does not change when the partition-to-shard
// mapping does. Under that discipline the observable behavior of each
// partition is identical for any shard count, including a group of one
// shard — which is exactly the property the CI determinism matrix pins.
import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"
)

// xmsg is one cross-shard message awaiting deterministic delivery.
type xmsg struct {
	at  Time  // absolute delivery time
	src int64 // logical source key (shard-count-invariant)
	seq uint64
	dst int
	fn  func()
}

// xless is the canonical merge order: (time, source key, FIFO seq). The
// destination shard is a final backstop so the sort is total even if a
// caller violates the unique-source-key discipline; it is never reached
// under correct use because one logical sender emits strictly increasing
// seqs.
func xless(a, b *xmsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.dst < b.dst
}

// Shard is one partition of a ShardGroup: an Engine plus the outbox used
// to publish cross-shard messages at the next barrier. All interaction
// with a shard's engine (scheduling, state owned by its partitions) must
// happen on the goroutine currently running the shard — i.e. from event
// handlers of its own engine, or from the coordinator between Run calls.
type Shard struct {
	id  int
	eng *Engine
	g   *ShardGroup
	out []xmsg
	seq uint64
}

// ID reports the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's simulation engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Group returns the owning group.
func (s *Shard) Group() *ShardGroup { return s.g }

// Send schedules fn to run on shard dst at absolute virtual time at. src
// is the logical source key used for canonical merge ordering; it must
// identify the logical sender independently of the shard count (see the
// package comment). Delivery must respect the conservative lookahead:
// at must not precede the end of the sender's current window.
func (s *Shard) Send(dst int, at Time, src int64, fn func()) {
	g := s.g
	if dst < 0 || dst >= len(g.shards) {
		panic(fmt.Sprintf("sim: Send to shard %d of %d", dst, len(g.shards)))
	}
	if at < g.windowEnd {
		panic(fmt.Sprintf("sim: Send delivering at %d violates lookahead (window ends at %d)",
			at, g.windowEnd))
	}
	s.seq++
	s.out = append(s.out, xmsg{at: at, src: src, seq: s.seq, dst: dst, fn: fn})
}

// ShardGroup coordinates a set of engine shards advancing in lockstep
// conservative time windows. Construct the partitions (devices, arrays,
// clients) on the shards' engines from the coordinating goroutine, then
// call Run/Drain from that same goroutine.
type ShardGroup struct {
	window Time
	shards []*Shard

	now       Time
	windowEnd Time // end of the window currently (or last) executed

	pending []xmsg // merged, canonically sorted, not yet injected
	seed    []xmsg // coordinator-side sends (initial placements)
	seedSeq uint64

	sink *atomic.Int64 // optional: credited once per window advance
}

// NewShardGroup returns a group of n shards with the given barrier window
// (virtual nanoseconds). The window is the group's lookahead: every
// cross-shard Send must deliver at least one window into the future, so
// pick it no larger than the smallest cross-partition latency the
// simulation models.
func NewShardGroup(n int, window Time) *ShardGroup {
	if n < 1 {
		panic("sim: NewShardGroup with no shards")
	}
	if window <= 0 {
		panic("sim: NewShardGroup with non-positive window")
	}
	g := &ShardGroup{window: window}
	for i := 0; i < n; i++ {
		g.shards = append(g.shards, &Shard{id: i, eng: NewEngine(), g: g})
	}
	return g
}

// Shards reports the shard count.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Window reports the barrier window width.
func (g *ShardGroup) Window() Time { return g.window }

// Now reports the group's completed-up-to virtual time: every shard's
// engine has advanced exactly this far.
func (g *ShardGroup) Now() Time { return g.now }

// SetTimeSink registers an accumulator credited with every nanosecond of
// virtual time the group advances. The group credits the sink once per
// window — not once per engine — so the accounted simulated time is
// independent of the shard count.
func (g *ShardGroup) SetTimeSink(sink *atomic.Int64) { g.sink = sink }

// Send schedules fn on shard dst at absolute time at from the
// coordinating goroutine — the way initial work (client placements,
// deferred control events) is seeded between Run calls. at must not
// precede the group's current time.
func (g *ShardGroup) Send(dst int, at Time, src int64, fn func()) {
	if dst < 0 || dst >= len(g.shards) {
		panic(fmt.Sprintf("sim: Send to shard %d of %d", dst, len(g.shards)))
	}
	if at < g.now {
		panic(fmt.Sprintf("sim: Send delivering at %d before group time %d", at, g.now))
	}
	g.seedSeq++
	g.seed = append(g.seed, xmsg{at: at, src: src, seq: g.seedSeq, dst: dst, fn: fn})
}

// Pending reports scheduled-but-unfired events across all shard engines
// plus undelivered cross-shard messages. Meaningful only between Run
// calls (the coordinator's quiescence test).
func (g *ShardGroup) Pending() int {
	n := len(g.pending) + len(g.seed)
	for _, s := range g.shards {
		n += s.eng.Pending()
	}
	return n
}

// merge folds freshly produced messages (shard outboxes and coordinator
// seeds) into the canonically sorted pending stream.
func (g *ShardGroup) merge() {
	grew := len(g.seed) > 0
	g.pending = append(g.pending, g.seed...)
	g.seed = g.seed[:0]
	for _, s := range g.shards {
		if len(s.out) > 0 {
			grew = true
			g.pending = append(g.pending, s.out...)
			s.out = s.out[:0]
		}
	}
	if grew {
		sort.Slice(g.pending, func(i, j int) bool { return xless(&g.pending[i], &g.pending[j]) })
	}
}

// inject delivers every pending message due in the window ending at wEnd,
// in canonical order. Runs on the coordinator between windows, so the
// receiving engines are quiescent.
func (g *ShardGroup) inject(wEnd Time) {
	i := 0
	for ; i < len(g.pending) && g.pending[i].at <= wEnd; i++ {
		m := &g.pending[i]
		eng := g.shards[m.dst].eng
		at := m.at
		if at < eng.Now() {
			// Cannot happen under the lookahead rule; fail loudly rather
			// than let a scheduling-in-the-past panic lose the context.
			panic(fmt.Sprintf("sim: message for shard %d due at %d after engine time %d",
				m.dst, at, eng.Now()))
		}
		eng.At(at, m.fn)
	}
	if i > 0 {
		rest := len(g.pending) - i
		copy(g.pending, g.pending[i:])
		for j := rest; j < len(g.pending); j++ {
			g.pending[j] = xmsg{}
		}
		g.pending = g.pending[:rest]
	}
}

// windowCmd starts one window on a worker; a closed channel stops it.
type windowDone struct {
	shard    int
	panicVal any
	stack    []byte
}

// Run advances every shard to virtual time until, window by window. Work
// inside a window executes on per-shard goroutines (inline when the group
// has a single shard); barriers, message merging, and injection run on
// the calling goroutine. A panic on any shard stops the group at the end
// of that window and re-panics on the caller with the shard id attached.
func (g *ShardGroup) Run(until Time) {
	if until <= g.now {
		return
	}
	nshards := len(g.shards)
	var starts []chan Time
	var done chan windowDone
	if nshards > 1 {
		starts = make([]chan Time, nshards)
		done = make(chan windowDone, nshards)
		for i, s := range g.shards {
			starts[i] = make(chan Time)
			go shardWorker(s, starts[i], done)
		}
		defer func() {
			for _, c := range starts {
				close(c)
			}
		}()
	}

	for g.now < until {
		wEnd := g.now + g.window
		if wEnd > until {
			wEnd = until
		}
		g.windowEnd = wEnd
		g.merge()
		g.inject(wEnd)

		if nshards == 1 {
			g.shards[0].eng.RunUntil(wEnd)
		} else {
			for _, c := range starts {
				c <- wEnd
			}
			var failed *windowDone
			for i := 0; i < nshards; i++ {
				d := <-done
				if d.panicVal != nil && (failed == nil || d.shard < failed.shard) {
					failed = &d
				}
			}
			if failed != nil {
				panic(fmt.Sprintf("sim: shard %d panicked: %v\n%s",
					failed.shard, failed.panicVal, failed.stack))
			}
		}
		if g.sink != nil {
			g.sink.Add(wEnd - g.now)
		}
		g.now = wEnd
	}
	g.merge() // publish outboxes of the final window before returning
}

// shardWorker advances one shard for successive windows until its command
// channel closes. Panics inside the window are captured and reported at
// the barrier so the coordinator can fail the whole group coherently.
func shardWorker(s *Shard, start <-chan Time, done chan<- windowDone) {
	for wEnd := range start {
		d := windowDone{shard: s.id}
		func() {
			defer func() {
				if p := recover(); p != nil {
					d.panicVal = p
					d.stack = debug.Stack()
				}
			}()
			s.eng.RunUntil(wEnd)
		}()
		done <- d
	}
}

// Drain runs windows until the group is quiescent — no shard has pending
// events and no cross-shard message awaits delivery — or until the group
// clock reaches limit. It reports whether quiescence was reached. Use it
// to let in-flight work complete after the measured horizon.
func (g *ShardGroup) Drain(limit Time) bool {
	for g.now < limit {
		if g.Pending() == 0 {
			return true
		}
		g.Run(g.now + g.window)
	}
	return g.Pending() == 0
}
