package core

import (
	"fmt"

	"biza/internal/buf"
	"biza/internal/cpumodel"
	"biza/internal/erasure"
	"biza/internal/ghostcache"
	"biza/internal/nvme"
	"biza/internal/zns"
)

// scanRecord is one decoded OOB entry found during the recovery scan.
type scanRecord struct {
	p    pa
	kind byte
	lbn  int64
	sn   int64
	seq  uint64
	idx  int // chunk index (data) or parity row (parity)
}

// Recover rebuilds a BIZA array's mapping tables from the per-block OOB
// records on the member devices (§4.1's crash-consistency design: the
// union of BMT and SMT entries piggybacks on every chunk program, and the
// ZRWA is non-volatile, so an OOB scan reconstructs everything the host
// DRAM lost). The scan runs in virtual time; done fires with the rebuilt
// engine once every zone has been read.
func Recover(queues []*nvme.Queue, cfg Config, acct *cpumodel.Accountant, done func(*Core, error)) {
	if len(queues) < 3 {
		done(nil, fmt.Errorf("core: need >= 3 members"))
		return
	}
	if acct == nil {
		acct = &cpumodel.Accountant{}
	}
	base := queues[0].Device().Config()
	coder, err := erasure.NewCoder(len(queues)-cfg.Parity, cfg.Parity)
	if err != nil {
		done(nil, err)
		return
	}
	c := &Core{
		cfg:        cfg,
		eng:        queues[0].Device().Engine(),
		acct:       acct,
		coder:      coder,
		nData:      len(queues) - cfg.Parity,
		blockSize:  base.BlockSize,
		zoneBlocks: base.ZoneBlocks,
		zrwaBlocks: base.ZRWABlocks,
		bmt:        make(map[int64]bmtEntry),
		smt:        make(map[int64]*smtEntry),
		gcPinned:   make(map[int64]bool),
		failed:     make([]bool, len(queues)),
		dead:       make([]bool, len(queues)),
		rebuilding: make([]bool, len(queues)),
		pool:       buf.NewPool(),
	}
	c.reconstructs = make([]uint64, len(queues))
	totalZRWA := uint64(base.ZRWABlocks) * uint64(base.BlockSize) * uint64(base.MaxOpenZones) * uint64(len(queues))
	gcfg := cfg.Ghost
	if gcfg.LRUEntries == 0 {
		gcfg = ghostcache.DefaultConfig(totalZRWA)
	}
	c.ghost = ghostcache.New(gcfg)
	for i, q := range queues {
		dcfg := q.Device().Config()
		ds := &devState{
			c:         c,
			id:        i,
			q:         q,
			zones:     make([]*zoneState, dcfg.NumZones),
			guessed:   make([]int, dcfg.NumZones),
			confirmed: make([]bool, dcfg.NumZones),
			votes:     make([]map[int]int, dcfg.NumZones),
			busy:      make(map[int]int),
			busyConf:  make(map[int]bool),
		}
		for z := 0; z < dcfg.NumZones; z++ {
			ds.guessed[z] = z % dcfg.NumChannels
		}
		ds.diagnose(cfg.DiagnoseZones)
		c.devs = append(c.devs, ds)
	}

	var records []scanRecord
	zoneWritten := make([][]int64, len(queues)) // highest written off+1 per zone
	zoneState0 := make([][]zns.ZoneState, len(queues))
	outstanding := 0
	var scanErr error

	finishScan := func() {
		if scanErr != nil {
			done(nil, scanErr)
			return
		}
		c.rebuild(records, zoneWritten, zoneState0, done)
	}

	for d, q := range queues {
		dcfg := q.Device().Config()
		zoneWritten[d] = make([]int64, dcfg.NumZones)
		zoneState0[d] = make([]zns.ZoneState, dcfg.NumZones)
		for z := 0; z < dcfg.NumZones; z++ {
			info, err := q.Device().ZoneInfo(z)
			if err != nil {
				done(nil, err)
				return
			}
			zoneState0[d][z] = info.State
			var extent int64
			switch info.State {
			case zns.ZoneEmpty, zns.ZoneOffline:
				continue
			case zns.ZoneFull:
				extent = c.zoneBlocks
			default:
				extent = info.WritePtr + c.zrwaBlocks
				if extent > c.zoneBlocks {
					extent = c.zoneBlocks
				}
			}
			if extent == 0 {
				continue
			}
			d, z := d, z
			outstanding++
			q.Read(z, 0, int(extent), func(r zns.ReadResult) {
				if r.Err != nil && scanErr == nil {
					scanErr = r.Err
				}
				for off, oob := range r.OOB {
					kind, lbn, sn, seq, idx, ok := decodeOOB(oob)
					if !ok {
						continue
					}
					records = append(records, scanRecord{
						p: pa{dev: d, zone: z, off: int64(off)}, kind: kind,
						lbn: lbn, sn: sn, seq: seq, idx: idx,
					})
					if int64(off)+1 > zoneWritten[d][z] {
						zoneWritten[d][z] = int64(off) + 1
					}
				}
				outstanding--
				if outstanding == 0 {
					finishScan()
				}
			})
		}
	}
	if outstanding == 0 {
		finishScan()
	}
}

// rebuild reconstructs BMT, SMT, and zone bookkeeping from scan records.
func (c *Core) rebuild(records []scanRecord, zoneWritten [][]int64, states [][]zns.ZoneState, done func(*Core, error)) {
	type winner struct {
		p   pa
		sn  int64
		seq uint64
	}
	type prKey struct {
		sn  int64
		row int
	}
	dataWin := make(map[int64]winner) // lbn -> newest data record
	parityWin := make(map[prKey]winner)
	for _, r := range records {
		if r.seq > c.seq {
			c.seq = r.seq
		}
		if r.sn >= c.nextSN {
			c.nextSN = r.sn + 1
		}
		switch r.kind {
		case oobKindData:
			if w, ok := dataWin[r.lbn]; !ok || r.seq > w.seq {
				dataWin[r.lbn] = winner{p: r.p, sn: r.sn, seq: r.seq}
			}
		case oobKindParity:
			pk := prKey{sn: r.sn, row: r.idx}
			if w, ok := parityWin[pk]; !ok || r.seq > w.seq {
				parityWin[pk] = winner{p: r.p, sn: r.sn, seq: r.seq}
			}
		}
	}
	// Instantiate zone states for every non-empty zone.
	zoneOf := func(p pa) *zoneState {
		ds := c.devs[p.dev]
		zs := ds.zones[p.zone]
		if zs == nil {
			zs = &zoneState{
				id:         p.zone,
				doneSet:    make(map[int64]bool),
				ipOffsets:  make(map[int64]int),
				rmapLBN:    makeFilled(c.zoneBlocks, -1),
				rmapSN:     makeFilled(c.zoneBlocks, -1),
				rmapStripe: makeFilled(c.zoneBlocks, -1),
			}
			zs.wpAlloc = zoneWritten[p.dev][p.zone]
			zs.maxSubmitted = zs.wpAlloc - 1
			zs.donePrefix = zs.wpAlloc
			ds.zones[p.zone] = zs
		}
		return zs
	}
	smtOf := func(sn int64) *smtEntry {
		se := c.smt[sn]
		if se == nil {
			parity := make([]pa, c.cfg.Parity)
			for i := range parity {
				parity[i] = paNone
			}
			se = &smtEntry{parity: parity}
			c.smt[sn] = se
		}
		return se
	}
	// Stripe membership: every data slot (live or stale) belongs to its
	// stripe at its recorded chunk index — the index selects the erasure
	// coefficients, so order must be restored exactly.
	for _, r := range records {
		if r.kind != oobKindData {
			continue
		}
		se := smtOf(r.sn)
		for len(se.chunks) <= r.idx {
			se.chunks = append(se.chunks, paNone)
			se.lbns = append(se.lbns, -1)
		}
		se.chunks[r.idx] = r.p
		live := false
		if w, ok := dataWin[r.lbn]; ok && w.p == r.p && w.sn == r.sn {
			live = true
		}
		zs := zoneOf(r.p)
		zs.rmapStripe[r.p.off] = r.sn
		if live {
			se.lbns[r.idx] = r.lbn
			se.valid++
			c.bmt[r.lbn] = bmtEntry{pa: r.p, sn: r.sn}
			zs.rmapLBN[r.p.off] = r.lbn
			zs.valid++
		}
	}
	for k, w := range parityWin {
		if k.row >= c.cfg.Parity {
			continue
		}
		se := smtOf(k.sn)
		se.parity[k.row] = w.p
		se.sealed = true // recovered stripes are sealed (short if partial)
		zs := zoneOf(w.p)
		zs.rmapSN[w.p.off] = k.sn
		zs.valid++
	}
	// Drop stripes missing any parity record (never got their first
	// parity write): their chunks were not acknowledged; forget them.
	for sn, se := range c.smt {
		incomplete := false
		for _, p := range se.parity {
			if p.dev < 0 {
				incomplete = true
				break
			}
		}
		if incomplete {
			for i, lbn := range se.lbns {
				if lbn >= 0 {
					delete(c.bmt, lbn)
					if zs := c.devs[se.chunks[i].dev].zones[se.chunks[i].zone]; zs != nil {
						if zs.rmapLBN[se.chunks[i].off] == lbn {
							zs.rmapLBN[se.chunks[i].off] = -1
							zs.valid--
						}
						zs.rmapStripe[se.chunks[i].off] = -1
					}
				}
			}
			delete(c.smt, sn)
		}
	}
	// Zone pools and groups: empty zones are free; full zones are GC
	// candidates; open zones are reused to seed the class groups.
	var openPool []*zoneState
	for d, ds := range c.devs {
		for z := 0; z < len(ds.zones); z++ {
			switch states[d][z] {
			case zns.ZoneEmpty:
				ds.freeZones = append(ds.freeZones, z)
			case zns.ZoneFull:
				if ds.zones[z] == nil {
					zoneOf(pa{dev: d, zone: z})
				}
				ds.zones[z].sealedF = true
				ds.zones[z].wpAlloc = c.zoneBlocks
				ds.fullZones = append(ds.fullZones, z)
			case zns.ZoneImplicitOpen, zns.ZoneExplicitOpen, zns.ZoneClosed:
				if ds.zones[z] == nil {
					zoneOf(pa{dev: d, zone: z})
				}
				openPool = append(openPool, ds.zones[z])
			}
		}
		_ = d
	}
	// Seed every device's class groups, reusing its recovered open zones
	// first and opening fresh ones as needed; finish leftovers.
	assigned := make(map[*zoneState]bool)
	for d, ds := range c.devs {
		for class := Class(0); class < numClasses; class++ {
			for i := 0; i < c.cfg.ZonesPerGroup; i++ {
				var zs *zoneState
				for _, cand := range openPool {
					if !assigned[cand] && cand.wpAlloc < c.zoneBlocks && c.devOf(cand) == d {
						zs = cand
						break
					}
				}
				if zs == nil {
					nz, err := ds.openNewZone(class)
					if err != nil {
						done(nil, fmt.Errorf("core: recovery cannot seed groups on device %d: %w", d, err))
						return
					}
					zs = nz
				}
				assigned[zs] = true
				zs.class = class
				ds.groups[class] = append(ds.groups[class], zs)
			}
		}
	}
	for _, zs := range openPool {
		if assigned[zs] {
			continue
		}
		ds := c.devs[c.devOf(zs)]
		zs.sealedF = true
		if err := ds.q.Device().Finish(zs.id); err == nil {
			ds.fullZones = append(ds.fullZones, zs.id)
		}
	}
	c.acct.Charge(cpumodel.CompBIZA, cpumodel.CostSchedule)
	done(c, nil)
}

// devOf finds which device owns a zone state (recovery bookkeeping).
func (c *Core) devOf(zs *zoneState) int {
	for d, ds := range c.devs {
		if int(zs.id) < len(ds.zones) && ds.zones[zs.id] == zs {
			return d
		}
	}
	panic("core: orphan zone state")
}
