package core

import (
	"encoding/binary"

	"biza/internal/blockdev"
	"biza/internal/buf"
	"biza/internal/cpumodel"
	"biza/internal/erasure"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/storerr"
	"biza/internal/zns"
)

// OOB record layout: kind(1) | lbn(8) | sn(8) | seq(8) | idx(1) = 26
// bytes, well inside the 64 B / 4 KiB quota (§4.1 uses 72 bits by omitting
// what this simulation cannot: the physical address is implicit on real
// flash, and the sequence number replaces the paper's implied write
// ordering). idx is the chunk's index within its stripe for data records
// (it selects the erasure-code coefficients on recovery) and the parity
// row for parity records.
const (
	oobKindData   = 1
	oobKindParity = 2
	oobLen        = 26
)

// encodeOOB fills a pooled record (recycled by the dispatch-done callbacks
// in zones.go once the device has copied it).
func (c *Core) encodeOOB(kind byte, lbn, sn int64, seq uint64, idx int) []byte {
	b := c.getOOB()
	b[0] = kind
	binary.LittleEndian.PutUint64(b[1:], uint64(lbn))
	binary.LittleEndian.PutUint64(b[9:], uint64(sn))
	binary.LittleEndian.PutUint64(b[17:], seq)
	b[25] = byte(idx)
	return b
}

func decodeOOB(b []byte) (kind byte, lbn, sn int64, seq uint64, idx int, ok bool) {
	if len(b) < oobLen {
		return 0, 0, 0, 0, 0, false
	}
	kind = b[0]
	if kind != oobKindData && kind != oobKindParity {
		return 0, 0, 0, 0, 0, false
	}
	lbn = int64(binary.LittleEndian.Uint64(b[1:]))
	sn = int64(binary.LittleEndian.Uint64(b[9:]))
	seq = binary.LittleEndian.Uint64(b[17:])
	idx = int(b[25])
	return kind, lbn, sn, seq, idx, true
}

// Write implements blockdev.Device: the §4.1 write path. Each 4 KiB block
// is one chunk; parity is computed per dynamically formed stripe, with
// partial parity held and updated in place in the parity slot's ZRWA.
func (c *Core) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	c.writeCommon(lba, nblocks, data, nil, done)
}

// WriteBuf is Write for refcounted payloads drawn from Pool(): b.Bytes()
// must hold nblocks full blocks, and the call transfers exactly one
// reference. Every layer below takes references instead of copying, so
// the payload reaches the flash model's write buffer with zero copies.
// The caller must not mutate the buffer after submission — the device may
// read it until the last flash program retires, which is after the write
// acknowledgment.
func (c *Core) WriteBuf(lba int64, nblocks int, b *buf.Buf, done func(blockdev.WriteResult)) {
	c.writeCommon(lba, nblocks, b.Bytes(), b, done)
}

// writeCommon is the shared §4.1 write path. own, if non-nil, carries one
// transferred reference pinning data; each chunk takes a reference of its
// own before the original is dropped.
func (c *Core) writeCommon(lba int64, nblocks int, data []byte, own *buf.Buf, done func(blockdev.WriteResult)) {
	start := c.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > c.Blocks() {
		buf.Release(own)
		if done != nil {
			c.eng.After(sim.Microsecond, func() {
				done(blockdev.WriteResult{Err: blockdev.ErrOutOfRange, Latency: c.eng.Now() - start})
			})
		}
		return
	}
	bs := c.chunkBytes()
	c.userBytes += uint64(nblocks) * uint64(bs)
	var span obs.SpanID
	if c.tr != nil {
		span = c.tr.SpanBegin(int64(start), obs.LayerBIZA, obs.OpWrite, -1, -1, lba, int64(nblocks))
		innerDone := done
		done = func(r blockdev.WriteResult) {
			c.tr.SpanEnd(span, int64(c.eng.Now()), r.Err != nil)
			if innerDone != nil {
				innerDone(r)
			}
		}
	}
	remaining := nblocks
	var firstErr error
	for i := 0; i < nblocks; i++ {
		lbn := lba + int64(i)
		var payload []byte
		if data != nil {
			payload = data[int64(i)*bs : (int64(i)+1)*bs]
		}
		c.clock += uint64(bs)
		class := c.classify(lbn)
		buf.Retain(own) // one reference per chunk, consumed by writeChunk
		c.writeChunk(lbn, payload, own, class, zns.TagUserData, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(blockdev.WriteResult{Err: firstErr, Latency: c.eng.Now() - start})
			}
		})
	}
	buf.Release(own) // drop the caller's transferred reference
}

// writeChunk stores one chunk. If the current copy still sits inside its
// zone's ZRWA window (and is not pinned by GC), it is updated in place —
// the paper's endurance fast path. Otherwise a new slot is allocated from
// the class's zone group and the chunk joins the class's open stripe.
// own, if non-nil, is one transferred reference pinning payload; every
// path through the write flow consumes it exactly once.
func (c *Core) writeChunk(lbn int64, payload []byte, own *buf.Buf, class Class, tag zns.WriteTag, done func(error)) {
	if e, ok := c.bmt[lbn]; ok && !c.gcPinned[lbn] {
		if c.tryInPlace(lbn, e, payload, own, class, tag, done) {
			return
		}
	}
	c.appendChunk(lbn, payload, own, class, tag, done)
}

// tryInPlace updates a chunk and its stripe's parity inside their ZRWA
// windows. Only chunks of sealed stripes qualify: an open stripe's parity
// slot is owned by the append flow's accumulator. Returns false when
// either slot has been committed to flash. In-place read-modify-write of
// a stripe's parity serializes per stripe (lost-delta and same-slot
// reorder protection).
func (c *Core) tryInPlace(lbn int64, e bmtEntry, payload []byte, own *buf.Buf, class Class, tag zns.WriteTag, done func(error)) bool {
	if c.failed[e.pa.dev] {
		return false // degraded member: append a fresh copy elsewhere
	}
	ds := c.devs[e.pa.dev]
	zs := ds.zones[e.pa.zone]
	if zs == nil || zs.sealedF || e.pa.off < zs.devWP(c.zrwaBlocks) || !zs.slotDone(e.pa.off) {
		return false
	}
	se := c.smt[e.sn]
	if se == nil || !se.sealed || se.dissolving {
		return false
	}
	// Every parity slot must still be in its window with its append done.
	for _, ppa := range se.parity {
		if ppa.dev < 0 || c.failed[ppa.dev] {
			return false
		}
		pzs := c.devs[ppa.dev].zones[ppa.zone]
		if pzs == nil || pzs.sealedF || ppa.off < pzs.devWP(c.zrwaBlocks) || !pzs.slotDone(ppa.off) {
			return false
		}
	}
	// The chunk's index within the stripe selects the parity coefficients.
	chunkIdx := -1
	for i, p := range se.chunks {
		if p == e.pa {
			chunkIdx = i
			break
		}
	}
	if chunkIdx < 0 {
		return false
	}
	if payload != nil {
		if se.ipBusy {
			// The parked closure keeps the chunk's reference and re-transfers
			// it when the queue drains.
			se.ipq = append(se.ipq, func() { c.writeChunk(lbn, payload, own, class, tag, done) })
			return true
		}
		se.ipBusy = true
	}
	c.inplaceHits++
	c.seq++
	seq := c.seq
	m := len(se.parity)
	pending := 1 + m
	// Pin every slot NOW: the payload path reads before writing, and the
	// window must not slide past any of these offsets in the meantime.
	zs.ipOffsets[e.pa.off]++
	for _, ppa := range se.parity {
		c.devs[ppa.dev].zones[ppa.zone].ipOffsets[ppa.off]++
	}
	var firstErr error
	finish := func(err error) {
		if err != nil && storerr.Reconstructable(err) && c.degradedOK() {
			// The slot's member died mid-update; the new content is still
			// covered by the surviving slots, so the write completes
			// degraded rather than failing.
			c.degradedWrites++
			err = nil
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pending--
		if pending > 0 {
			return
		}
		if payload != nil {
			se.ipBusy = false
			c.ipNext(se)
		}
		if done != nil {
			done(firstErr)
		}
	}
	writeParity := func(r int, parityData []byte) {
		ppa := se.parity[r]
		pds := c.devs[ppa.dev]
		pzs := pds.zones[ppa.zone]
		c.parityBytes += uint64(c.blockSize)
		pds.submitChunk(pzs, schedOp{
			off: ppa.off, inplace: true, reserved: true, data: parityData,
			ownData: parityData != nil,
			oob:     c.encodeOOB(oobKindParity, int64(r), e.sn, seq, r), tag: zns.TagParity,
			done: func(w zns.WriteResult) { finish(w.Err) },
		})
	}
	writeData := func() {
		ds.submitChunk(zs, schedOp{
			off: e.pa.off, inplace: true, reserved: true, data: payload, own: own,
			oob: c.encodeOOB(oobKindData, lbn, e.sn, seq, chunkIdx), tag: tag,
			done: func(r zns.WriteResult) { finish(r.Err) },
		})
	}
	if payload == nil {
		// Performance mode: traffic without content.
		writeData()
		for r := 0; r < m; r++ {
			writeParity(r, nil)
		}
		return true
	}
	// Parity deltas need the old chunk and the old parities — all buffered
	// reads, since every slot is inside a ZRWA window. Scratch comes from
	// the unified pool; the read results (fresh heap copies from the
	// device model) are donated into it once folded.
	var oldData []byte
	var readErr error
	oldParity := c.getVec(m)
	reads := 1 + m
	afterReads := func() {
		reads--
		if reads > 0 {
			return
		}
		if readErr != nil {
			// The old content is unreadable (member death mid-update);
			// folding unknown deltas would corrupt the surviving parity.
			// Unwind the in-place attempt and re-home the chunk through
			// the append path instead.
			c.donateBuf(oldData)
			for r := 0; r < m; r++ {
				c.donateBuf(oldParity[r])
			}
			c.putVec(oldParity)
			c.unpin(e.pa)
			for _, ppa := range se.parity {
				c.unpin(ppa)
			}
			se.ipBusy = false
			c.ipNext(se)
			c.appendChunk(lbn, payload, own, class, tag, done)
			return
		}
		writeData()
		// Fused single-pass kernels: delta = old ^ new in one XOR, then each
		// parity row reads old parity and writes new parity in one sweep
		// (DeltaRow) — no intermediate copy of either operand.
		delta := c.pool.Alloc(c.blockSize)
		if oldData != nil {
			erasure.XOR(delta, oldData, payload)
			c.donateBuf(oldData)
		} else {
			copy(delta, payload)
		}
		for r := 0; r < m; r++ {
			var np []byte
			if oldParity[r] != nil {
				np = c.pool.Alloc(c.blockSize)
				c.coder.DeltaRow(r, chunkIdx, delta, oldParity[r], np)
				c.donateBuf(oldParity[r])
			} else {
				np = c.getBuf()
				erasure.MulXor(c.coder.Coeff(r, chunkIdx), delta, np)
			}
			c.acct.ChargeParity(cpumodel.CompBIZA, int64(c.blockSize))
			writeParity(r, np)
		}
		c.putBuf(delta)
		c.putVec(oldParity)
	}
	ds.q.Read(e.pa.zone, e.pa.off, 1, func(r zns.ReadResult) {
		if r.Err != nil {
			c.noteIOError(e.pa.dev, r.Err)
			if readErr == nil {
				readErr = r.Err
			}
		}
		oldData = r.Data
		afterReads()
	})
	for r := 0; r < m; r++ {
		r := r
		ppa := se.parity[r]
		c.devs[ppa.dev].q.Read(ppa.zone, ppa.off, 1, func(res zns.ReadResult) {
			if res.Err != nil {
				c.noteIOError(ppa.dev, res.Err)
				if readErr == nil {
					readErr = res.Err
				}
			}
			oldParity[r] = res.Data
			afterReads()
		})
	}
	return true
}

// ipNext drains a stripe's queued rewrites. Each popped entry either takes
// the in-place path again (sets ipBusy; its completion resumes the drain)
// or falls through to an append (which never pops), so the drain continues
// until the stripe is busy or the queue is empty — queued writes can never
// strand behind a path change (slot flushed, stripe dissolving).
func (c *Core) ipNext(se *smtEntry) {
	if se.ipBusy || len(se.ipq) == 0 {
		return
	}
	next := se.ipq[0]
	se.ipq = se.ipq[1:]
	c.eng.After(0, func() {
		next()
		c.ipNext(se)
	})
}

// appendChunk allocates a fresh slot for the chunk, joins it to the open
// stripe of its class, and updates the partial parity in place. own, if
// non-nil, is one transferred reference pinning payload (parked closures
// carry it along until the chunk dispatches).
func (c *Core) appendChunk(lbn int64, payload []byte, own *buf.Buf, class Class, tag zns.WriteTag, done func(error)) {
	// Free-zone cliff: park user work while GC needs headroom; GC's own
	// migrations (classGC) bypass.
	if class != classGC {
		for _, ds := range c.devs {
			if len(ds.freeZones) <= c.stallFloor() && ds.pickVictim() >= 0 {
				ds.stalled = append(ds.stalled, func() {
					c.appendChunk(lbn, payload, own, class, tag, done)
				})
				c.maybeStartGC(ds)
				return
			}
		}
	}
	st := c.open[class]
	if st == nil || st.count >= c.nData {
		ns, err := c.newStripe(class)
		if err != nil {
			// Transient: open-zone slots exhausted while retired zones
			// drain. Park and retry when a slot frees.
			c.allocWaiters = append(c.allocWaiters, func() {
				c.appendChunk(lbn, payload, own, class, tag, done)
			})
			return
		}
		st = ns
		c.open[class] = st
	}
	// Data device: skip the stripe's parity devices, rotating through the
	// remainder by chunk index so stripe members stay distinct.
	dev := c.stripeDataDevice(st, st.count)
	ds := c.devs[dev]
	zs, off, err := ds.alloc(class)
	if err != nil {
		c.allocWaiters = append(c.allocWaiters, func() {
			c.appendChunk(lbn, payload, own, class, tag, done)
		})
		return
	}
	// Invalidate the previous copy.
	c.invalidate(lbn)

	sn := st.sn
	se := c.smt[sn]
	se.chunks = append(se.chunks, pa{dev: dev, zone: zs.id, off: off})
	se.lbns = append(se.lbns, lbn)
	se.valid++
	se.pending++
	c.bmt[lbn] = bmtEntry{pa: pa{dev: dev, zone: zs.id, off: off}, sn: sn}
	zs.rmapLBN[off] = lbn
	zs.rmapStripe[off] = sn
	zs.valid++
	c.acct.Charge(cpumodel.CompBIZA, cpumodel.CostMapUpdate)

	c.seq++
	seq := c.seq
	pending := 2
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pending--
		if pending == 0 && done != nil {
			done(firstErr)
		}
	}
	ds.submitChunk(zs, schedOp{
		off: off, data: payload, own: own,
		oob: c.encodeOOB(oobKindData, lbn, sn, seq, st.count), tag: tag,
		done: func(r zns.WriteResult) {
			se.pending--
			err := r.Err
			if err != nil && storerr.Reconstructable(err) && c.degradedOK() {
				// The member died under the append. The payload was
				// already folded into the stripe's parity accumulator
				// host-side, so the chunk remains reconstructable from
				// the survivors: acknowledge the write degraded.
				c.degradedWrites++
				err = nil
			}
			finish(err)
		},
	})

	// Partial parity: fold the chunk into every row's accumulator and
	// rewrite the parity slots in place (§4.2: partial parities always own
	// ZRWA). The first write of each slot is its append; later updates are
	// in-place and absorbed by the device buffer. A slot flushed out of
	// its window (stripe lingered) is relocated.
	if payload != nil {
		if st.accs == nil {
			st.accs = c.getVec(c.cfg.Parity)
			for r := range st.accs {
				st.accs[r] = c.getBuf()
			}
		}
		for r := range st.accs {
			erasure.MulXor(c.coder.Coeff(r, st.count), payload, st.accs[r])
		}
		c.acct.ChargeParity(cpumodel.CompBIZA, int64(c.blockSize)*int64(c.cfg.Parity))
	}
	st.count++
	if st.count >= c.nData {
		se.sealed = true
		c.open[class] = nil
	}
	c.writeStripeParity(st, se, class, seq, func(err error) { finish(err) })
}

// writeStripeParity schedules a rewrite of the stripe's parity slot with
// the current accumulator. Only one parity write per stripe is in flight:
// concurrent chunk appends coalesce onto the next write (same-slot
// delivery reordering would otherwise leave a stale accumulator final).
func (c *Core) writeStripeParity(st *openStripe, se *smtEntry, class Class, seq uint64, done func(error)) {
	st.parityWaiters = append(st.parityWaiters, done)
	if st.parityBusy {
		st.parityDirty = true
		return
	}
	c.issueParity(st, se, class, seq)
}

func (c *Core) issueParity(st *openStripe, se *smtEntry, class Class, seq uint64) {
	st.parityBusy = true
	st.parityDirty = false
	m := len(st.parity)
	remaining := m
	var firstErr error
	parityDone := func(err error) {
		if err != nil && storerr.Reconstructable(err) && c.degradedOK() {
			// A parity member died: this row is missing, but the data
			// chunks (and any surviving rows) keep the stripe within its
			// fault budget.
			c.degradedWrites++
			err = nil
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining > 0 {
			return
		}
		if st.parityDirty {
			c.issueParity(st, se, class, c.seq)
			return
		}
		st.parityBusy = false
		// A sealed stripe takes no more appends, and the last parity copy
		// is on its way to the device — the accumulators retire here.
		if se.sealed && st.accs != nil {
			for r := range st.accs {
				c.putBuf(st.accs[r])
			}
			c.putVec(st.accs)
			st.accs = nil
		}
		waiters := st.parityWaiters
		st.parityWaiters = nil
		for _, w := range waiters {
			if w != nil {
				w(firstErr)
			}
		}
	}
	wasWritten := st.parityWritten
	st.parityWritten = true
	// A sealed stripe takes no further appends, so this is the final parity
	// generation: move the accumulators into the dispatch instead of
	// copying them (parityDone's retirement sweep skips the nil slots).
	final := se.sealed
	for r := 0; r < m; r++ {
		ppa := st.parity[r]
		pds := c.devs[ppa.dev]
		pzs := pds.zones[ppa.zone]
		var parityData []byte
		if st.accs != nil {
			if final {
				parityData, st.accs[r] = st.accs[r], nil
			} else {
				parityData = c.copyBuf(st.accs[r])
			}
		}
		c.parityBytes += uint64(c.blockSize)
		// The slot must still belong to this stripe: a device replacement
		// swaps in a fresh devState whose zones know nothing of slots
		// handed out before the swap, and an in-place write through such a
		// stale placement would corrupt the fresh zone's write pointer.
		inWindow := pzs != nil && !pzs.sealedF && pzs.rmapSN[ppa.off] == st.sn &&
			ppa.off >= pzs.devWP(c.zrwaBlocks)
		if inWindow {
			pds.submitChunk(pzs, schedOp{
				off: ppa.off, inplace: wasWritten, data: parityData,
				ownData: parityData != nil,
				oob:     c.encodeOOB(oobKindParity, int64(r), st.sn, seq, r), tag: zns.TagParity,
				done: func(w zns.WriteResult) { parityDone(w.Err) },
			})
			continue
		}
		// Relocate: free the stale slot and append the full partial parity
		// to a fresh slot on the same device (member distinctness holds).
		if pzs != nil && pzs.rmapSN[ppa.off] == st.sn {
			pzs.rmapSN[ppa.off] = -1
			pzs.valid--
		}
		nzs, noff, err := pds.alloc(class)
		if err != nil {
			c.putBuf(parityData)
			parityDone(err)
			continue
		}
		st.parity[r] = pa{dev: ppa.dev, zone: nzs.id, off: noff}
		se.parity[r] = st.parity[r]
		nzs.rmapSN[noff] = st.sn
		nzs.valid++
		pds.submitChunk(nzs, schedOp{
			off: noff, data: parityData, ownData: parityData != nil,
			oob: c.encodeOOB(oobKindParity, int64(r), st.sn, seq, r), tag: zns.TagParity,
			done: func(w zns.WriteResult) { parityDone(w.Err) },
		})
	}
}

// stripeDataDevice maps a stripe's chunk index to a member device,
// skipping the stripe's parity devices.
func (c *Core) stripeDataDevice(st *openStripe, idx int) int {
	isParity := func(d int) bool {
		for _, p := range st.parity {
			if p.dev == d {
				return true
			}
		}
		return false
	}
	base := st.parity[0].dev
	seen := 0
	for i := 1; i <= len(c.devs); i++ {
		d := (base + i) % len(c.devs)
		if isParity(d) {
			continue
		}
		if seen == idx {
			return d
		}
		seen++
	}
	panic("core: stripe data device out of range")
}

// newStripe opens a stripe for a class: rotates the parity devices and
// allocates one parity slot from each of their class groups.
func (c *Core) newStripe(class Class) (*openStripe, error) {
	m := c.cfg.Parity
	base := c.parityRot % len(c.devs)
	c.parityRot++
	sn := c.nextSN
	parity := make([]pa, m)
	for r := 0; r < m; r++ {
		pdev := (base + r) % len(c.devs)
		pds := c.devs[pdev]
		pzs, poff, err := pds.alloc(class)
		if err != nil {
			// Roll back slots already taken for this stripe.
			for rr := 0; rr < r; rr++ {
				q := parity[rr]
				if zs := c.devs[q.dev].zones[q.zone]; zs != nil && zs.rmapSN[q.off] == sn {
					zs.rmapSN[q.off] = -1
					zs.valid--
				}
			}
			return nil, err
		}
		parity[r] = pa{dev: pdev, zone: pzs.id, off: poff}
		pzs.rmapSN[poff] = sn
		pzs.valid++
	}
	c.nextSN++
	st := &openStripe{sn: sn, parity: parity}
	c.smt[sn] = &smtEntry{parity: append([]pa(nil), parity...)}
	return st, nil
}

// invalidate drops the previous copy of a logical block: clears its zone
// slot and its stripe membership; fully dead sealed stripes release their
// parity slots and vanish.
func (c *Core) invalidate(lbn int64) {
	e, ok := c.bmt[lbn]
	if !ok {
		return
	}
	ds := c.devs[e.pa.dev]
	if zs := ds.zones[e.pa.zone]; zs != nil && zs.rmapLBN[e.pa.off] == lbn {
		zs.rmapLBN[e.pa.off] = -1
		zs.valid--
	}
	if se := c.smt[e.sn]; se != nil {
		for i, p := range se.chunks {
			if p == e.pa && se.lbns[i] == lbn {
				// Keep the slot address: its content still feeds the
				// stripe's parity for reconstruction; only liveness drops.
				se.lbns[i] = -1
				se.valid--
				break
			}
		}
		if se.valid == 0 && se.sealed && se.pending == 0 {
			c.releaseStripe(e.sn, se)
		}
	}
	delete(c.bmt, lbn)
}

// releaseStripe frees a dead stripe's parity slots, clears its slots'
// stripe ownership, and forgets it.
func (c *Core) releaseStripe(sn int64, se *smtEntry) {
	for _, p := range se.parity {
		if p.dev < 0 {
			continue
		}
		if zs := c.devs[p.dev].zones[p.zone]; zs != nil && zs.rmapSN[p.off] == sn {
			zs.rmapSN[p.off] = -1
			zs.valid--
		}
	}
	for _, p := range se.chunks {
		if p.dev < 0 {
			continue
		}
		if zs := c.devs[p.dev].zones[p.zone]; zs != nil && zs.rmapStripe[p.off] == sn {
			zs.rmapStripe[p.off] = -1
		}
	}
	delete(c.smt, sn)
}

// Trim implements blockdev.Device.
func (c *Core) Trim(lba int64, nblocks int) {
	for i := int64(0); i < int64(nblocks); i++ {
		c.invalidate(lba + i)
	}
}
