// Package core implements BIZA, the paper's contribution: a self-governing
// block-interface AFA over ZNS SSDs (§4). It exposes the block interface
// upward while proactively scheduling I/O and SSD-internal work through
// the ZNS interface downward:
//
//   - writes are logged as 4 KiB chunks into dynamically formed RAID
//     stripes; a Block Mapping Table (BMT) and Stripe Mapping Table (SMT)
//     track placement (§4.1);
//   - the zone group selector classifies chunks with the ghost-cache
//     hierarchy and steers high-profit chunks to ZRWA-aware zone groups,
//     high-revenue chunks to GC-aware groups, and the rest to trivial
//     groups (§4.2);
//   - partial parities always live in the ZRWA of their stripe's parity
//     slot and are updated in place, never reaching flash until the stripe
//     is sealed (§4.2, Fig. 16);
//   - a guess-and-verify channel detector maintains the zone-to-I/O-channel
//     map (round-robin guess, vote-based online correction), enabling the
//     GC-avoidance mechanism to steer user writes away from BUSY channels
//     (§4.3);
//   - a ZRWA-aware sliding-window scheduler keeps many writes in flight
//     per zone without reorder failures (§4.4);
//   - mapping metadata piggybacks in per-block OOB areas, from which the
//     tables are rebuilt after a crash (§4.1).
package core

import (
	"fmt"

	"biza/internal/buf"
	"biza/internal/cpumodel"
	"biza/internal/erasure"
	"biza/internal/ghostcache"
	"biza/internal/metrics"
	"biza/internal/nvme"
	"biza/internal/obs"
	"biza/internal/sim"
)

// Class is a chunk placement class, mapping 1:1 onto zone-group types.
type Class uint8

// Placement classes (§4.2). classGC is internal: the destination class for
// GC migration, so migrated (cold) data never pollutes user groups.
const (
	ClassTrivial Class = iota
	ClassGCAware       // high revenue, long reuse distance
	ClassZRWA          // high profit: revenue + short reuse distance
	classGC
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassTrivial:
		return "trivial"
	case ClassGCAware:
		return "gc-aware"
	case ClassZRWA:
		return "zrwa-aware"
	case classGC:
		return "gc-dest"
	}
	return "unknown"
}

// Config tunes the engine.
type Config struct {
	// Parity is the fault tolerance m (1 = RAID 5, 2 = RAID 6).
	Parity int

	// ZonesPerGroup is how many open zones (ideally on distinct channels)
	// each class group keeps per device.
	ZonesPerGroup int

	// GCLowWater / GCHighWater are per-device free-zone watermarks.
	GCLowWater  int
	GCHighWater int

	// OverProvisionZones are per-device zones withheld from capacity.
	OverProvisionZones int

	// Ghost is the selector's cache configuration. Zeroed fields are
	// filled from ghostcache.DefaultConfig of the array's total ZRWA.
	Ghost ghostcache.Config

	// EnableSelector toggles the §4.2 zone group selector; disabled, all
	// chunks are trivial (the BIZAw/oSelector ablation).
	EnableSelector bool
	// EnableGCAvoid toggles the §4.3 BUSY-channel avoidance (the
	// BIZAw/oAvoid ablation).
	EnableGCAvoid bool

	// DetectVotes is the vote threshold for correcting a zone's guessed
	// channel (§4.3; paper uses 3).
	DetectVotes int
	// DiagnoseZones is how many zones are confirmed by the zone-to-zone
	// diagnosis at array creation.
	DiagnoseZones int
	// SpikeFactor: a completed write slower than SpikeFactor times the
	// moving average during GC casts a vote.
	SpikeFactor float64

	// MaxBatchBlocks caps how many contiguous chunk appends merge into one
	// device command (0 = ZRWA/4, the default; 1 disables merging — the
	// ablation showing per-command overhead drowning 4 KiB chunk traffic).
	MaxBatchBlocks int64
}

// DefaultConfig returns the paper's settings for the given per-device zone
// count.
func DefaultConfig(zonesPerDevice int) Config {
	op := zonesPerDevice / 8
	if op < 4 {
		op = 4
	}
	low := op/2 + 1
	if low < 3 {
		low = 3
	}
	high := op - 1
	if high <= low {
		high = low + 1
	}
	return Config{
		Parity:             1,
		ZonesPerGroup:      2,
		GCLowWater:         low,
		GCHighWater:        high,
		OverProvisionZones: op,
		EnableSelector:     true,
		EnableGCAvoid:      true,
		DetectVotes:        3,
		DiagnoseZones:      4,
		SpikeFactor:        3.0,
	}
}

// pa is a physical chunk address: device, zone, block offset.
type pa struct {
	dev  int
	zone int
	off  int64
}

var paNone = pa{dev: -1}

// bmtEntry maps a logical block to its chunk location and owning stripe.
type bmtEntry struct {
	pa pa
	sn int64
}

// smtEntry records a stripe: its data chunk locations, parity locations,
// and the logical blocks its chunks carry (needed for stripe-dissolving GC
// and degraded reads).
type smtEntry struct {
	chunks  []pa    // data chunk slots; contents feed parity even when stale
	lbns    []int64 // logical block carried by each chunk; -1 when stale
	parity  []pa    // m parity locations
	sealed  bool    // all k chunks written (final parity complete)
	valid   int     // live data chunks
	pending int     // chunk writes not yet completed (crash-consistency)

	// In-place parity updates are read-modify-write on the parity slot;
	// concurrent updates to one stripe must serialize or deltas are lost.
	ipBusy bool
	ipq    []func()

	// dissolving marks a stripe claimed by GC or rebuild. In-place updates
	// mutate slot content without moving the bmt mapping, so a migration
	// racing one would re-home the pre-update content and silently lose an
	// acknowledged write; once set, rewrites take the append path instead.
	dissolving bool
}

// Core is the BIZA engine. It implements blockdev.Device.
type Core struct {
	cfg        Config
	eng        *sim.Engine
	devs       []*devState
	acct       *cpumodel.Accountant
	ghost      *ghostcache.Cache
	coder      *erasure.Coder // parity coefficients (XOR for m=1, RS beyond)
	nData      int            // data chunks per stripe (devices - parity)
	blockSize  int
	zoneBlocks int64
	zrwaBlocks int64

	bmt      map[int64]bmtEntry
	smt      map[int64]*smtEntry
	gcPinned map[int64]bool // blocks being migrated: in-place updates defer
	failed   []bool         // per-device failure flags (degraded mode)

	// Member health (see health.go): dead is permanent device death
	// detected from completion errors; failed additionally routes reads
	// through reconstruction during rebuilds; rebuilding tracks an
	// in-progress ReplaceDevice for Health reporting.
	dead           []bool
	rebuilding     []bool
	onDeath        func(dev int)
	reconstructs   []uint64 // per-member chunks served via parity
	reconTotal     uint64
	degradedWrites uint64 // chunk writes acked while their member was down

	// allocWaiters holds writes parked on transient open-slot exhaustion.
	allocWaiters []func()

	nextSN    int64
	seq       uint64 // monotonic write sequence for OOB disambiguation
	clock     uint64 // cumulative user bytes written (ghost-cache clock)
	parityRot int

	// Open stripes per class.
	open [numClasses]*openStripe

	// Latency EWMA for spike detection.
	ewmaLatency float64
	latSamples  uint64

	// Diagnostic channel oracle (tests/benches only): when set, writes
	// issued while GC is active are scored against the true mapping.
	oracle     func(dev, zone int) int
	busyWrites uint64
	busyHits   uint64

	// Accounting.
	userBytes      uint64
	parityBytes    uint64 // partial+final parity chunk writes issued
	gcMigrated     uint64
	gcEvents       uint64
	inplaceHits    uint64
	detectCorrects uint64

	tr *obs.Trace

	// Unified buffer pool (see pool.go and internal/buf): block scratch,
	// OOB records, and coalesced batch payloads all come from one
	// size-class-segregated pool shared down the stack, so steady-state
	// stripe writes allocate nothing. The remaining free lists recycle
	// record slices that have no byte-pool equivalent.
	pool    *buf.Pool
	vecFree [][][]byte
	opsFree [][]schedOp
	abFree  []*appendBatch
}

// Pool returns the core's unified buffer pool. The stack layer publishes
// its occupancy and copy counters as observability probes, and callers of
// WriteBuf draw their payload buffers from it.
func (c *Core) Pool() *buf.Pool { return c.pool }

// SetTracer attaches an observability trace: array-level spans cover each
// block-interface Write/Read end to end, and GC victim selections are
// logged as typed events.
func (c *Core) SetTracer(tr *obs.Trace) { c.tr = tr }

type openStripe struct {
	sn            int64
	parity        []pa // m parity slots (each in its zone's ZRWA)
	count         int
	accs          [][]byte // running partial parity per row; nil without payloads
	parityWritten bool     // first parity write is an append, later in-place

	// One parity generation in flight per stripe; extra appends coalesce.
	parityBusy    bool
	parityDirty   bool
	parityWaiters []func(error)
}

// New builds a BIZA array over the member queues. Queues must wrap
// homogeneous devices. acct may be nil.
func New(queues []*nvme.Queue, cfg Config, acct *cpumodel.Accountant) (*Core, error) {
	if len(queues) < 3 {
		return nil, fmt.Errorf("core: need >= 3 members, got %d", len(queues))
	}
	if cfg.Parity < 1 || cfg.Parity >= len(queues)-1 {
		return nil, fmt.Errorf("core: parity %d with %d members", cfg.Parity, len(queues))
	}
	base := queues[0].Device().Config()
	for _, q := range queues[1:] {
		c := q.Device().Config()
		if c.ZoneBlocks != base.ZoneBlocks || c.NumZones != base.NumZones ||
			c.BlockSize != base.BlockSize || c.ZRWABlocks != base.ZRWABlocks {
			return nil, fmt.Errorf("core: heterogeneous members")
		}
	}
	if base.ZRWABlocks == 0 {
		return nil, fmt.Errorf("core: members lack ZRWA support")
	}
	zonesNeeded := cfg.ZonesPerGroup*int(numClasses) + 1
	if base.MaxOpenZones < zonesNeeded {
		return nil, fmt.Errorf("core: device allows %d open zones, need %d", base.MaxOpenZones, zonesNeeded)
	}
	if cfg.OverProvisionZones < 2 || cfg.OverProvisionZones >= base.NumZones {
		return nil, fmt.Errorf("core: bad over-provisioning %d", cfg.OverProvisionZones)
	}
	if cfg.GCLowWater < 1 || cfg.GCHighWater <= cfg.GCLowWater {
		return nil, fmt.Errorf("core: bad GC watermarks")
	}
	if acct == nil {
		acct = &cpumodel.Accountant{}
	}
	coder, err := erasure.NewCoder(len(queues)-cfg.Parity, cfg.Parity)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:        cfg,
		eng:        queues[0].Device().Engine(),
		acct:       acct,
		nData:      len(queues) - cfg.Parity,
		coder:      coder,
		blockSize:  base.BlockSize,
		zoneBlocks: base.ZoneBlocks,
		zrwaBlocks: base.ZRWABlocks,
		bmt:        make(map[int64]bmtEntry),
		smt:        make(map[int64]*smtEntry),
		gcPinned:   make(map[int64]bool),
		failed:     make([]bool, len(queues)),
		dead:       make([]bool, len(queues)),
		rebuilding: make([]bool, len(queues)),
		pool:       buf.NewPool(),
	}
	c.reconstructs = make([]uint64, len(queues))
	totalZRWA := uint64(base.ZRWABlocks) * uint64(base.BlockSize) * uint64(base.MaxOpenZones) * uint64(len(queues))
	gcfg := cfg.Ghost
	if gcfg.LRUEntries == 0 {
		gcfg = ghostcache.DefaultConfig(totalZRWA)
	}
	c.ghost = ghostcache.New(gcfg)
	for i, q := range queues {
		ds, err := newDevState(c, i, q)
		if err != nil {
			return nil, err
		}
		c.devs = append(c.devs, ds)
	}
	for _, ds := range c.devs {
		ds.diagnose(cfg.DiagnoseZones)
	}
	return c, nil
}

// BlockSize implements blockdev.Device.
func (c *Core) BlockSize() int { return c.blockSize }

// StoresData implements blockdev.DataStorer: reads return payloads only
// when every member device retains them.
func (c *Core) StoresData() bool {
	for _, ds := range c.devs {
		if !ds.q.Device().Config().StoreData {
			return false
		}
	}
	return true
}

// Blocks implements blockdev.Device: user capacity. Each stripe stores
// nData data chunks across the array; capacity follows from the per-device
// zone budget minus over-provisioning.
func (c *Core) Blocks() int64 {
	zones := int64(c.devs[0].q.Device().Config().NumZones - c.cfg.OverProvisionZones)
	// Across all devices, each zone block holds data or parity in ratio
	// nData : parity.
	total := zones * c.zoneBlocks * int64(len(c.devs))
	return total * int64(c.nData) / int64(len(c.devs))
}

// WriteAmp reports engine-level traffic (flash truth is in the devices).
func (c *Core) WriteAmp() metrics.WriteAmp {
	return metrics.WriteAmp{
		UserBytes:        c.userBytes,
		FlashDataBytes:   c.userBytes + c.gcMigrated,
		FlashParityBytes: c.parityBytes,
		GCMigratedBytes:  c.gcMigrated,
	}
}

// GCEvents reports completed victim collections.
func (c *Core) GCEvents() uint64 { return c.gcEvents }

// InPlaceHits reports chunk updates absorbed in place in ZRWA.
func (c *Core) InPlaceHits() uint64 { return c.inplaceHits }

// DetectCorrections reports how many zone-channel guesses the vote-based
// detector has corrected.
func (c *Core) DetectCorrections() uint64 { return c.detectCorrects }

// GhostCache exposes the selector's cache (diagnostics).
func (c *Core) GhostCache() *ghostcache.Cache { return c.ghost }

// Devices reports the member count.
func (c *Core) Devices() int { return len(c.devs) }

func (c *Core) chunkBytes() int64 { return int64(c.blockSize) }

// classify maps a ghost-cache level to a placement class.
func (c *Core) classify(lbn int64) Class {
	if !c.cfg.EnableSelector {
		return ClassTrivial
	}
	c.acct.Charge(cpumodel.CompBIZA, cpumodel.CostGhostAccess)
	switch c.ghost.Access(uint64(lbn), c.clock) {
	case ghostcache.LevelHP:
		return ClassZRWA
	case ghostcache.LevelHR:
		return ClassGCAware
	default:
		return ClassTrivial
	}
}

// Flush commits every open zone's ZRWA so all acknowledged data reaches
// flash — used by endurance experiments before reading the device
// counters (absorbed overwrites stay absorbed; only the current buffer
// contents are programmed). The caller drains the engine afterwards.
func (c *Core) Flush() {
	for _, ds := range c.devs {
		for class := Class(0); class < numClasses; class++ {
			for _, zs := range ds.groups[class] {
				if zs == nil || zs.sealedF || zs.wpAlloc == 0 {
					continue
				}
				dev := ds.q.Device()
				info, err := dev.ZoneInfo(zs.id)
				if err != nil || !info.ZRWA {
					continue
				}
				upTo := zs.wpAlloc
				if max := info.WritePtr + c.zrwaBlocks; upTo > max {
					upTo = max
				}
				if upTo > info.WritePtr {
					dev.CommitZRWA(zs.id, upTo)
				}
			}
		}
	}
}

// ResetAccounting zeroes the engine's traffic counters (experiments call
// it after preconditioning; device counters reset separately).
func (c *Core) ResetAccounting() {
	c.userBytes, c.parityBytes, c.gcMigrated = 0, 0, 0
	c.gcEvents, c.inplaceHits = 0, 0
	c.busyWrites, c.busyHits = 0, 0
}
