package core

import (
	"bytes"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func TestReplaceDeviceRebuildsRedundancy(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	rng := sim.NewRNG(404)
	want := map[int64]byte{}
	for i := 0; i < 500; i++ {
		lba := rng.Int63n(c.Blocks() / 8)
		seed := byte(i)
		if r := wsync(eng, c, lba, 1, pat(seed, 4096)); r.Err == nil {
			want[lba] = seed
		}
	}
	eng.Run()

	// Member 2 dies; hot-swap in a fresh device and rebuild.
	dc := devConfig()
	dc.Seed = 999
	nd, err := zns.New(eng, dc)
	if err != nil {
		t.Fatal(err)
	}
	nq := nvme.New(nd, nvme.Config{ReorderWindow: 5 * sim.Microsecond, Seed: 444})
	var rerr error
	okR := false
	c.ReplaceDevice(2, nq, func(err error) { rerr = err; okR = true })
	eng.Run()
	if !okR || rerr != nil {
		t.Fatalf("rebuild ok=%v err=%v", okR, rerr)
	}

	// All data intact, with no degraded flag set.
	for lba, seed := range want {
		r := rsync(eng, c, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("post-rebuild lba %d: %v", lba, r.Err)
		}
	}
	// Redundancy restored: any single member may fail and reads survive.
	for dev := 0; dev < 4; dev++ {
		c.SetDeviceFailed(dev, true)
		for lba, seed := range want {
			r := rsync(eng, c, lba, 1)
			if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
				t.Fatalf("post-rebuild degraded (dev %d) lba %d: %v", dev, lba, r.Err)
			}
		}
		c.SetDeviceFailed(dev, false)
	}
	// The fresh member participates in new writes.
	for i := 0; i < 200; i++ {
		wsync(eng, c, int64(i), 1, pat(byte(i), 4096))
	}
	eng.Run()
	if nd.Stats().TotalProgrammed() == 0 && nd.Stats().AbsorbedBytes == 0 {
		t.Fatal("replacement device received no traffic")
	}
}

func TestReplaceDeviceGeometryMismatch(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	dc := devConfig()
	dc.ZoneBlocks = 128 // wrong geometry
	nd, _ := zns.New(eng, dc)
	nq := nvme.New(nd, nvme.Config{})
	var rerr error
	c.ReplaceDevice(0, nq, func(err error) { rerr = err })
	eng.Run()
	if rerr == nil {
		t.Fatal("accepted mismatched replacement")
	}
	if err := c.SetDeviceFailed(9, true); err == nil {
		t.Fatal("accepted out-of-range device")
	}
	_ = blockdev.ErrOutOfRange
}
