package core

// Extended randomized sweep: the model test's logic across many seeds.
// Kept cheap in CI (4 seeds); crank seedCount locally for deep fuzzing.

import (
	"bytes"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func TestModelSeedSweep(t *testing.T) {
	seeds := []uint64{101, 202, 303, 404}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			runModelSweep(t, seed)
		})
	}
}

func runModelSweep(t *testing.T, seed uint64) {
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	for i := 0; i < 4; i++ {
		dc := devConfig()
		dc.NumZones = 40
		dc.Seed = seed + uint64(i)
		dc.ShuffleFraction = 0.3 // aged mapping in the mix
		d, err := zns.New(eng, dc)
		if err != nil {
			t.Fatal(err)
		}
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 8 * sim.Microsecond, Seed: seed*3 + uint64(i),
		}))
	}
	c, err := New(queues, DefaultConfig(40), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed * 7)
	span := c.Blocks() / 4
	version := map[int64]int{}
	bs := c.blockSize
	outstanding := 0
	// Mixed async phase: overlapping writes to distinct blocks plus trims.
	for i := 0; i < 2500; i++ {
		switch rng.Intn(8) {
		case 7:
			n := 1 + rng.Intn(3)
			lba := rng.Int63n(span - int64(n))
			c.Trim(lba, n)
			for j := 0; j < n; j++ {
				delete(version, lba+int64(j))
			}
		default:
			lba := rng.Int63n(span)
			if rng.Intn(2) == 0 {
				lba = rng.Int63n(96)
			}
			v := version[lba] + 1
			version[lba] = v
			outstanding++
			c.Write(lba, 1, modelPattern(lba, v, bs), func(r blockdev.WriteResult) {
				if r.Err != nil {
					t.Errorf("write: %v", r.Err)
				}
				outstanding--
			})
			// Interleave partial drains to vary schedules per seed.
			if rng.Intn(4) == 0 {
				eng.Run()
			}
		}
	}
	eng.Run()
	if outstanding != 0 {
		t.Fatalf("seed %d: %d writes hung", seed, outstanding)
	}
	// Note: concurrent same-block writes are racy by API contract, but
	// this sweep only writes each version once before a possible drain, so
	// the LAST version observed must win after full drain for blocks whose
	// writes were not concurrent. Verify the hot head conservatively via a
	// final synchronous rewrite.
	for lba := int64(0); lba < 96; lba += 7 {
		v := version[lba] + 1
		version[lba] = v
		ok := false
		c.Write(lba, 1, modelPattern(lba, v, bs), func(r blockdev.WriteResult) { ok = r.Err == nil })
		eng.Run()
		if !ok {
			t.Fatalf("final write %d failed", lba)
		}
	}
	for lba := int64(0); lba < 96; lba += 7 {
		var got []byte
		c.Read(lba, 1, func(r blockdev.ReadResult) { got = r.Data })
		eng.Run()
		if !bytes.Equal(got, modelPattern(lba, version[lba], bs)) {
			t.Fatalf("seed %d: lba %d wrong content", seed, lba)
		}
	}
	// Degraded sweep on a sample.
	for dev := 0; dev < 4; dev++ {
		c.SetDeviceFailed(dev, true)
		for lba := int64(0); lba < 96; lba += 13 {
			var rerr error
			var got []byte
			c.Read(lba, 1, func(r blockdev.ReadResult) { got, rerr = r.Data, r.Err })
			eng.Run()
			if rerr != nil {
				t.Fatalf("seed %d dev %d lba %d: %v", seed, dev, lba, rerr)
			}
			if v, okv := version[lba]; okv && lba%7 == 0 {
				if !bytes.Equal(got, modelPattern(lba, v, bs)) {
					t.Fatalf("seed %d dev %d lba %d: degraded content wrong", seed, dev, lba)
				}
			}
		}
		c.SetDeviceFailed(dev, false)
	}
}
