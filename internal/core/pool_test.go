package core

import (
	"runtime"
	"runtime/debug"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/zns"
)

// TestPoolBufSemantics checks the buffer pool contracts the write path
// relies on: getBuf returns zeroed memory after a dirty put, copyBuf
// snapshots its source (and counts the copy), and foreign buffers go
// through donateBuf without disturbing the outstanding-slab accounting.
func TestPoolBufSemantics(t *testing.T) {
	_, c, _ := newCore(t, nil)
	b := c.getBuf()
	if len(b) != c.blockSize {
		t.Fatalf("getBuf len = %d, want %d", len(b), c.blockSize)
	}
	for i := range b {
		b[i] = 0xAB
	}
	c.putBuf(b)
	b2 := c.getBuf()
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("getBuf reused dirty buffer: byte %d = %#x", i, v)
		}
	}
	src := pat(7, c.blockSize)
	copies := c.pool.Stats().Copies
	cp := c.copyBuf(src)
	src[0] ^= 0xFF
	if cp[0] == src[0] {
		t.Fatal("copyBuf aliases its source")
	}
	if got := c.pool.Stats().Copies; got != copies+1 {
		t.Fatalf("copyBuf recorded %d copies, want %d", got, copies+1)
	}
	c.putBuf(nil)                            // nil-safe
	c.donateBuf(make([]byte, c.blockSize/2)) // foreign buffer: no accounting
	c.donateBuf(nil)                         // nil-safe
	c.putBuf(cp)
	c.putBuf(b2)
	if live := c.pool.RawLive(); live != 0 {
		t.Fatalf("raw slabs outstanding after balanced put cycle: %d", live)
	}
}

// TestPoolVecDropsReferences: putVec must nil out elements so pooled
// vectors do not pin block buffers.
func TestPoolVecDropsReferences(t *testing.T) {
	_, c, _ := newCore(t, nil)
	v := c.getVec(3)
	for i := range v {
		v[i] = c.getBuf()
	}
	c.putVec(v)
	v2 := c.getVec(3)
	for i, e := range v2 {
		if e != nil {
			t.Fatalf("getVec element %d not nil after recycle", i)
		}
	}
	c.putVec(v2)
}

// TestPoolCycleAllocFree is the pool-discipline gate: once warm, a full
// get/put cycle across every pool costs zero allocations.
func TestPoolCycleAllocFree(t *testing.T) {
	_, c, _ := newCore(t, nil)
	cycle := func() {
		b := c.getBuf()
		cp := c.copyBuf(b)
		c.putBuf(b)
		c.putBuf(cp)
		o := c.getOOB()
		c.putOOB(o)
		bt := c.getBatch(4 * c.blockSize)
		c.putBatch(bt)
		v := c.getVec(4)
		c.putVec(v)
		ops := c.getOps()
		ops = append(ops, schedOp{})
		c.putOps(ops)
		ab := c.getAB()
		c.putAB(ab)
	}
	cycle() // warm every pool
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("pool cycle allocates %.1f per run, want 0", allocs)
	}
}

// TestSteadyStateStripeWriteAllocs gates the steady-state full-stripe
// write path in performance mode (StoreData=false, the configuration of
// every figure experiment). The pooled buffers must eliminate all payload
// allocation: total bytes allocated per stripe write stays under one
// block, which is impossible if even a single chunk, parity, OOB, or
// batch buffer were still taken from the heap. The object count bound
// locks in the pooled plumbing (remaining objects are the per-chunk
// completion closures and BMT/SMT bookkeeping).
func TestSteadyStateStripeWriteAllocs(t *testing.T) {
	eng, c, _ := newCore(t, func(cfg *Config, dcfgs *[]zns.Config) {
		for i := range *dcfgs {
			(*dcfgs)[i].StoreData = false
		}
	})
	k := c.nData
	span := c.Blocks() / 2
	for lba := int64(0); lba+int64(k) <= span; lba += int64(k) {
		wsync(eng, c, lba, k, nil)
	}
	done := func(r blockdev.WriteResult) {}
	lba := int64(0)
	step := func() {
		c.Write(lba, k, nil, done)
		eng.Run()
		lba += int64(k)
		if lba+int64(k) > span {
			lba = 0
		}
	}
	const runs = 200
	allocs := testing.AllocsPerRun(runs, step)

	gcOff := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcOff)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	bytesPer := float64(after.TotalAlloc-before.TotalAlloc) / runs

	t.Logf("steady-state stripe write: %.1f allocs, %.0f bytes", allocs, bytesPer)
	if bytesPer >= float64(c.blockSize) {
		t.Fatalf("stripe write allocates %.0f bytes, want < one block (%d): a payload buffer escaped the pools", bytesPer, c.blockSize)
	}
	if allocs > 70 {
		t.Fatalf("stripe write allocates %.1f objects, want <= 70 (pooled plumbing regressed)", allocs)
	}
}
