package core

// Degraded-mode coverage under injected faults: member death detected from
// completion errors, reads served via parity reconstruction (including
// open, in-flight stripes), degraded writes acknowledged within the fault
// budget, and ReplaceDevice restoring full tolerance.

import (
	"bytes"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/fault"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

// attachPlan compiles spec against the core's member count and installs the
// per-device injectors on the member queues.
func attachPlan(t *testing.T, c *Core, spec *fault.Spec, seed uint64) *fault.Plan {
	t.Helper()
	plan, err := fault.Compile(spec, seed, len(c.devs))
	if err != nil {
		t.Fatal(err)
	}
	for i, ds := range c.devs {
		ds.q.SetInjector(plan.Injector(i))
	}
	return plan
}

func TestInjectedDeathDetectedAndReadsReconstruct(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	want := map[int64]byte{}
	for i := 0; i < 120; i++ {
		lba := int64(i)
		if r := wsync(eng, c, lba, 1, pat(byte(i), 4096)); r.Err != nil {
			t.Fatalf("write %d: %v", i, r.Err)
		}
		want[lba] = byte(i)
	}
	eng.Run()
	// Member 1 dies (everything it is asked from now on errors out).
	attachPlan(t, c, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.DeviceDeath, Dev: 1, AfterOps: 1},
	}}, 7)
	for lba, seed := range want {
		r := rsync(eng, c, lba, 1)
		if r.Err != nil {
			t.Fatalf("degraded read %d: %v", lba, r.Err)
		}
		if !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("degraded read %d: wrong content", lba)
		}
	}
	// The first failing completion flipped the member to degraded.
	h := c.Health()
	if h[1] != MemberDegraded {
		t.Fatalf("health = %v", h)
	}
	if !c.Degraded() {
		t.Fatal("Degraded() false with a dead member")
	}
	if c.Reconstructions() == 0 {
		t.Fatal("no reads were served via reconstruction")
	}
}

func TestDegradedWritesAckedAndReadable(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	// Member 2 is dead from the very first command.
	attachPlan(t, c, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.DeviceDeath, Dev: 2, AfterOps: 0, At: 1},
	}}, 9)
	want := map[int64]byte{}
	for i := 0; i < 90; i++ {
		lba := int64(i)
		if r := wsync(eng, c, lba, 1, pat(byte(i+3), 4096)); r.Err != nil {
			t.Fatalf("degraded write %d: %v", i, r.Err)
		}
		want[lba] = byte(i + 3)
	}
	eng.Run()
	if c.DegradedWrites() == 0 {
		t.Fatal("no writes were accepted degraded")
	}
	// Every block reads back — chunks routed to the dead member are
	// recovered from the surviving slots (their payload fed the parity).
	for lba, seed := range want {
		r := rsync(eng, c, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("lba %d after degraded writes: %v", lba, r.Err)
		}
	}
}

func TestDegradedReadInFlightStripe(t *testing.T) {
	// An open stripe's chunks must be reconstructible from its partial
	// parity (still sitting in the parity member's ZRWA).
	eng, c, _ := newCore(t, nil)
	// Two chunks of a three-data-chunk stripe: the stripe stays open.
	wsync(eng, c, 0, 1, pat(50, 4096))
	wsync(eng, c, 1, 1, pat(51, 4096))
	eng.Run()
	for lba := int64(0); lba < 2; lba++ {
		dev := c.bmt[lba].pa.dev
		if err := c.SetDeviceFailed(dev, true); err != nil {
			t.Fatal(err)
		}
		r := rsync(eng, c, lba, 1)
		if r.Err != nil {
			t.Fatalf("in-flight stripe, lba %d (dev %d down): %v", lba, dev, r.Err)
		}
		if !bytes.Equal(r.Data, pat(byte(50+lba), 4096)) {
			t.Fatalf("in-flight stripe, lba %d: wrong content", lba)
		}
		c.SetDeviceFailed(dev, false)
	}
}

func TestRAID6DegradedInFlightDoubleLoss(t *testing.T) {
	eng, c, _ := newCore6(t)
	wsync(eng, c, 0, 1, pat(60, 4096))
	wsync(eng, c, 1, 1, pat(61, 4096))
	eng.Run()
	// Lose the owning member of each in-flight chunk simultaneously.
	d0, d1 := c.bmt[0].pa.dev, c.bmt[1].pa.dev
	if d0 == d1 {
		t.Fatalf("chunks colocated on dev %d", d0)
	}
	c.SetDeviceFailed(d0, true)
	c.SetDeviceFailed(d1, true)
	for lba := int64(0); lba < 2; lba++ {
		r := rsync(eng, c, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(byte(60+lba), 4096)) {
			t.Fatalf("double loss, in-flight lba %d: %v", lba, r.Err)
		}
	}
}

func TestRAID6DoubleInjectedDeath(t *testing.T) {
	eng, c, _ := newCore6(t)
	want := map[int64]byte{}
	for i := 0; i < 100; i++ {
		lba := int64(i)
		if r := wsync(eng, c, lba, 1, pat(byte(i+7), 4096)); r.Err != nil {
			t.Fatalf("write %d: %v", i, r.Err)
		}
		want[lba] = byte(i + 7)
	}
	eng.Run()
	attachPlan(t, c, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.DeviceDeath, Dev: 0, AfterOps: 1},
		{Kind: fault.DeviceDeath, Dev: 3, AfterOps: 1},
	}}, 13)
	for lba, seed := range want {
		r := rsync(eng, c, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("double-death read %d: %v", lba, r.Err)
		}
	}
	h := c.Health()
	if h[0] != MemberDegraded || h[3] != MemberDegraded {
		t.Fatalf("health = %v", h)
	}
	// m=2 still accepts writes with two members down.
	if r := wsync(eng, c, 200, 1, pat(99, 4096)); r.Err != nil {
		t.Fatalf("double-degraded write: %v", r.Err)
	}
	if r := rsync(eng, c, 200, 1); r.Err != nil || !bytes.Equal(r.Data, pat(99, 4096)) {
		t.Fatalf("double-degraded readback: %v", r.Err)
	}
}

func TestUnreadableBlocksReconstructWithoutDeath(t *testing.T) {
	// Latent sector errors: every zone of member 0 refuses reads, yet the
	// member is alive (writes land). Reads reconstruct; health stays
	// nominal because nothing reported device death.
	eng, c, _ := newCore(t, nil)
	zb := int(devConfig().ZoneBlocks)
	var rules []fault.Rule
	for z := 0; z < devConfig().NumZones; z++ {
		rules = append(rules, fault.BadBlocks(0, z, 0, zb))
	}
	want := map[int64]byte{}
	for i := 0; i < 60; i++ {
		lba := int64(i)
		if r := wsync(eng, c, lba, 1, pat(byte(i+1), 4096)); r.Err != nil {
			t.Fatalf("write %d: %v", i, r.Err)
		}
		want[lba] = byte(i + 1)
	}
	eng.Run()
	attachPlan(t, c, &fault.Spec{Rules: rules}, 17)
	for lba, seed := range want {
		r := rsync(eng, c, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("unreadable-member read %d: %v", lba, r.Err)
		}
	}
	if c.Reconstructions() == 0 {
		t.Fatal("unreadable blocks did not route through reconstruction")
	}
	if c.Health()[0] != MemberHealthy {
		t.Fatal("read-only rot misreported as member death")
	}
}

func TestMemberDeathHandlerFiresOnce(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	var deaths []int
	c.OnMemberDeath(func(dev int) { deaths = append(deaths, dev) })
	attachPlan(t, c, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.DeviceDeath, Dev: 3, AfterOps: 1},
	}}, 19)
	for i := 0; i < 40; i++ {
		wsync(eng, c, int64(i), 1, pat(byte(i), 4096))
	}
	eng.Run()
	if len(deaths) != 1 || deaths[0] != 3 {
		t.Fatalf("death handler calls = %v", deaths)
	}
}

func TestInjectedDeathThenReplaceRestoresTolerance(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	want := map[int64]byte{}
	writeSome := func(base int) {
		for i := 0; i < 80; i++ {
			lba := int64(i)
			seed := byte(base + i)
			if r := wsync(eng, c, lba, 1, pat(seed, 4096)); r.Err != nil {
				t.Fatalf("write %d: %v", i, r.Err)
			}
			want[lba] = seed
		}
	}
	writeSome(0)
	eng.Run()
	attachPlan(t, c, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.DeviceDeath, Dev: 2, AfterOps: 1},
	}}, 23)
	writeSome(100) // workload continues across the death
	eng.Run()
	if c.Health()[2] != MemberDegraded {
		t.Fatalf("health = %v", c.Health())
	}

	// Hot-swap a spare. It sits outside the fault plan (no injector).
	dc := devConfig()
	dc.Seed = 777
	nd, err := zns.New(eng, dc)
	if err != nil {
		t.Fatal(err)
	}
	nq := nvme.New(nd, nvme.Config{ReorderWindow: 5 * sim.Microsecond, Seed: 778})
	var rerr error
	ok := false
	c.ReplaceDevice(2, nq, func(err error) { rerr = err; ok = true })
	eng.Run()
	if !ok || rerr != nil {
		t.Fatalf("replace ok=%v err=%v", ok, rerr)
	}
	for i := range c.devs {
		if c.Health()[i] != MemberHealthy {
			t.Fatalf("post-rebuild health = %v", c.Health())
		}
	}
	// Full tolerance restored: any single member may fail again.
	for dev := 0; dev < 4; dev++ {
		c.SetDeviceFailed(dev, true)
		for lba, seed := range want {
			r := rsync(eng, c, lba, 1)
			if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
				t.Fatalf("post-rebuild (dev %d down) lba %d: %v", dev, lba, r.Err)
			}
		}
		c.SetDeviceFailed(dev, false)
	}
	_ = blockdev.ErrOutOfRange
}

func TestDissolveWaitsForInFlightInPlaceUpdate(t *testing.T) {
	// Regression: an in-place rewrite is a read-modify-write that changes
	// slot content without moving the bmt mapping, so a stripe dissolution
	// (GC or rebuild) capturing its live set mid-RMW would migrate the
	// pre-update content over the acknowledged rewrite and silently lose
	// it. Dissolution must wait for the stripe's in-flight update.
	eng, c, _ := newCore(t, nil)
	k := c.nData
	for i := 0; i < k; i++ {
		if r := wsync(eng, c, int64(i), 1, pat(byte(10+i), 4096)); r.Err != nil {
			t.Fatalf("write %d: %v", i, r.Err)
		}
	}
	se := c.smt[c.bmt[0].sn]
	if se == nil || !se.sealed {
		t.Fatal("stripe not sealed — test setup broken")
	}
	// Stall the rewrite's old-parity read so that, without the barrier, the
	// dissolution's migration read would win the race.
	attachPlan(t, c, &fault.Spec{Rules: []fault.Rule{
		{Kind: fault.Latency, Dev: se.parity[0].dev, Op: fault.Read,
			Delay: 2 * sim.Millisecond},
	}}, 11)
	var wres blockdev.WriteResult
	acked := false
	c.Write(0, 1, pat(99, 4096), func(r blockdev.WriteResult) { wres = r; acked = true })
	if !se.ipBusy {
		t.Fatal("rewrite did not take the in-place path — test setup broken")
	}
	// While the RMW is stalled, hot-swap the member holding another chunk
	// of the same stripe: the rebuild dissolves that stripe.
	victim := c.bmt[1].pa.dev
	dc := devConfig()
	dc.Seed = 888
	nd, err := zns.New(eng, dc)
	if err != nil {
		t.Fatal(err)
	}
	nq := nvme.New(nd, nvme.Config{ReorderWindow: 5 * sim.Microsecond, Seed: 991})
	rebuilt := false
	var rerr error
	c.ReplaceDevice(victim, nq, func(err error) { rerr = err; rebuilt = true })
	eng.Run()
	if !rebuilt || rerr != nil {
		t.Fatalf("rebuild ok=%v err=%v", rebuilt, rerr)
	}
	if !acked || wres.Err != nil {
		t.Fatalf("rewrite acked=%v err=%v", acked, wres.Err)
	}
	// The acknowledged rewrite survived the dissolution...
	if r := rsync(eng, c, 0, 1); r.Err != nil || !bytes.Equal(r.Data, pat(99, 4096)) {
		t.Fatalf("lbn 0 lost its in-flight rewrite (err=%v)", r.Err)
	}
	// ...and so did the rest of the stripe, with tolerance restored.
	for dev := 0; dev < len(c.devs); dev++ {
		c.SetDeviceFailed(dev, true)
		for i := 0; i < k; i++ {
			want := pat(byte(10+i), 4096)
			if i == 0 {
				want = pat(99, 4096)
			}
			r := rsync(eng, c, int64(i), 1)
			if r.Err != nil || !bytes.Equal(r.Data, want) {
				t.Fatalf("dev %d down, lbn %d: %v", dev, i, r.Err)
			}
		}
		c.SetDeviceFailed(dev, false)
	}
}
