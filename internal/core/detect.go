package core

import (
	"biza/internal/sim"
	"biza/internal/zns"
)

// observeLatency feeds the §4.3 guess-and-verify detector with a completed
// write. A latency spike while GC is active casts a vote that the target
// zone shares a channel with the BUSY one; enough votes (or one vote from
// a channel whose identity was confirmed by diagnosis) correct the guess.
func (c *Core) observeLatency(ds *devState, zs *zoneState, r zns.WriteResult) {
	if r.Err != nil {
		c.noteIOError(ds.id, r.Err)
		return
	}
	lat := float64(r.Latency)
	// The moving average tracks ALL recent completions — under GC the
	// whole array slows, so the baseline must follow; only zones that are
	// markedly slower than their contemporaries are collision suspects.
	if c.ewmaLatency == 0 {
		c.ewmaLatency = lat
	} else {
		c.ewmaLatency = 0.05*lat + 0.95*c.ewmaLatency
	}
	c.latSamples++
	if !c.cfg.EnableGCAvoid || len(ds.busy) == 0 || c.latSamples < 200 {
		return
	}
	spike := lat > c.cfg.SpikeFactor*c.ewmaLatency
	if !spike {
		// §4.3 requires spikes to appear *continuously* on a zone; a
		// normal completion is evidence against the collision theory, so
		// accumulated votes decay.
		if votes := ds.votes[zs.id]; votes != nil {
			for ch := range votes {
				votes[ch]--
				if votes[ch] <= 0 {
					delete(votes, ch)
				}
			}
			if len(votes) == 0 {
				ds.votes[zs.id] = nil
			}
		}
		return
	}
	// The zone we wrote was supposedly NOT on a busy channel (pickZone
	// avoided those); a spike suggests the guess for zs is wrong. Every
	// currently-busy channel gets a vote: across GC events the truly
	// colliding channel accumulates consistently while bystanders churn,
	// so the majority converges on the real mapping.
	if ds.confirmed[zs.id] {
		return
	}
	if ds.votes[zs.id] == nil {
		ds.votes[zs.id] = make(map[int]int)
	}
	voted := false
	for ch := range ds.busy {
		if ch == ds.guessed[zs.id] {
			continue
		}
		ds.votes[zs.id][ch]++
		voted = true
	}
	if !voted {
		return
	}
	// Rectify when one channel holds a clear majority. A vote from a
	// channel whose identity was confirmed by diagnosis is trusted at a
	// lower bar (§4.3).
	best, bestN, secondN := -1, 0, 0
	for ch, n := range ds.votes[zs.id] {
		switch {
		case n > bestN || (n == bestN && (best < 0 || ch < best)):
			secondN = bestN
			best, bestN = ch, n
		case n > secondN:
			secondN = n
		}
	}
	threshold := c.cfg.DetectVotes
	if best >= 0 && ds.busyConf[best] {
		threshold = 1
	}
	if best >= 0 && bestN >= threshold && bestN > secondN {
		ds.guessed[zs.id] = best
		ds.votes[zs.id] = nil
		c.detectCorrects++
	}
}

// SetChannelOracle installs a true-mapping oracle used ONLY for
// diagnostics: while GC is active, dispatched writes are scored against
// it so experiments can report the busy-channel collision rate. Engines
// never consult the oracle for decisions.
func (c *Core) SetChannelOracle(fn func(dev, zone int) int) { c.oracle = fn }

// BusyCollisions reports (writes dispatched while GC was active, how many
// of them landed on a truly busy channel).
func (c *Core) BusyCollisions() (writes, collisions uint64) {
	return c.busyWrites, c.busyHits
}

// scoreDispatch records oracle-based collision accounting for a dispatch.
// GC's own migration writes necessarily land on busy channels and are
// excluded: the metric is about USER traffic steering.
func (c *Core) scoreDispatch(ds *devState, zs *zoneState) {
	if c.oracle == nil || len(ds.busy) == 0 || zs.class == classGC {
		return
	}
	c.busyWrites++
	// A collision means the write's TRUE channel currently carries GC
	// traffic. BUSY bookkeeping is by guessed channel; translate each busy
	// guess back through... the busy set is keyed by channel id directly.
	if ds.busy[c.oracle(ds.id, zs.id)] > 0 {
		c.busyHits++
	}
}

// GuessedChannel reports the detector's current belief for a zone
// (diagnostics and tests).
func (c *Core) GuessedChannel(dev, zone int) int { return c.devs[dev].guessed[zone] }

// EWMALatency reports the detector's latency baseline.
func (c *Core) EWMALatency() sim.Time { return sim.Time(c.ewmaLatency) }
