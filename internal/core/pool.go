package core

// Hot-path buffer plumbing over the unified pool (internal/buf). Block
// scratch, OOB records, and coalesced batch payloads all draw from one
// size-class-segregated pool instead of the per-kind free lists of the
// earlier performance pass; the pool counts hits, misses (the old silent
// heap fallback, now observable as the pool_miss probe), and payload
// copies. The simulation is single-goroutine, so no locking anywhere.
//
// Ownership discipline: a raw buffer handed to the device layer may be
// recycled in the write-done callback, because the ZNS model copies
// payload and OOB bytes into its own pooled scratch at submission
// (setData/setOOB) or before completion (storeDirect). Refcounted
// payloads (schedOp.own) skip that copy entirely: the device holds
// references instead — see zones.go.

// getBuf returns a zeroed block-size scratch buffer.
func (c *Core) getBuf() []byte { return c.pool.AllocZero(c.blockSize) }

// copyBuf returns a pooled block-size buffer holding a copy of src,
// counted in the pool's copy stats.
func (c *Core) copyBuf(src []byte) []byte {
	b := c.pool.Alloc(c.blockSize)
	copy(b, src)
	c.pool.NoteCopy(len(src))
	return b
}

// putBuf recycles a pool-allocated block-size buffer; nil-safe. Buffers
// that did not come from Alloc go through donateBuf instead, so the
// pool's outstanding-slab accounting stays balanced.
func (c *Core) putBuf(b []byte) { c.pool.Free(b) }

// donateBuf recycles a buffer the pool never handed out — device read
// results, which the ZNS model allocates fresh — without touching the
// outstanding-slab count.
func (c *Core) donateBuf(b []byte) { c.pool.Donate(b) }

// getOOB returns an oobLen record buffer; contents are overwritten by the
// caller (encodeOOB fills every byte).
func (c *Core) getOOB() []byte { return c.pool.Alloc(oobLen) }

// putOOB recycles an OOB record; nil-safe.
func (c *Core) putOOB(b []byte) { c.pool.Free(b) }

// getBatch returns a zeroed n-byte coalesced-payload buffer.
func (c *Core) getBatch(n int) []byte { return c.pool.AllocZero(n) }

// putBatch recycles a coalesced-payload buffer; nil-safe.
func (c *Core) putBatch(b []byte) { c.pool.Free(b) }

// getVec returns an n-element nil-filled [][]byte (per-batch OOB vectors,
// parity accumulators, old-parity scratch).
func (c *Core) getVec(n int) [][]byte {
	if l := len(c.vecFree); l > 0 {
		v := c.vecFree[l-1]
		c.vecFree = c.vecFree[:l-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([][]byte, n)
}

// putVec recycles a [][]byte vector, dropping its element references so
// pooled vectors do not pin block buffers; nil-safe.
func (c *Core) putVec(v [][]byte) {
	if v == nil {
		return
	}
	for i := range v {
		v[i] = nil
	}
	c.vecFree = append(c.vecFree, v[:0])
}

// getOps returns an empty schedOp slice with pooled capacity.
func (c *Core) getOps() []schedOp {
	if n := len(c.opsFree); n > 0 {
		s := c.opsFree[n-1]
		c.opsFree = c.opsFree[:n-1]
		return s
	}
	return nil
}

// putOps recycles a batch's op slice, clearing records so closures and
// payload references do not linger.
func (c *Core) putOps(s []schedOp) {
	for i := range s {
		s[i] = schedOp{}
	}
	c.opsFree = append(c.opsFree, s[:0])
}

// getAB returns a pooled appendBatch record.
func (c *Core) getAB() *appendBatch {
	if n := len(c.abFree); n > 0 {
		b := c.abFree[n-1]
		c.abFree = c.abFree[:n-1]
		return b
	}
	return &appendBatch{}
}

// putAB recycles an appendBatch record (the ops slice is recycled
// separately after dispatch completes); nil-safe.
func (c *Core) putAB(b *appendBatch) {
	if b == nil {
		return
	}
	b.ops = nil
	c.abFree = append(c.abFree, b)
}
