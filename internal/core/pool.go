package core

// Hot-path buffer free lists. The simulation is single-goroutine, so plain
// slices beat sync.Pool here (no per-P locking, no GC-cycle purging) while
// keeping steady-state stripe writes allocation-free — enforced by the
// AllocsPerRun gates in pool_test.go. Ownership discipline: a buffer
// handed to the device layer may be recycled in the write-done callback,
// because the ZNS model copies payload and OOB bytes into its own pooled
// scratch at submission (setData/setOOB) or before completion
// (storeDirect).

// popBuf pops a pooled block-size buffer, or nil when the pool is empty.
func (c *Core) popBuf() []byte {
	if n := len(c.bufFree); n > 0 {
		b := c.bufFree[n-1]
		c.bufFree = c.bufFree[:n-1]
		return b
	}
	return nil
}

// getBuf returns a zeroed block-size scratch buffer.
func (c *Core) getBuf() []byte {
	if b := c.popBuf(); b != nil {
		clear(b)
		return b
	}
	return make([]byte, c.blockSize)
}

// copyBuf returns a pooled block-size buffer holding a copy of src.
func (c *Core) copyBuf(src []byte) []byte {
	b := c.popBuf()
	if b == nil {
		b = make([]byte, c.blockSize)
	}
	copy(b, src)
	return b
}

// putBuf recycles a block-size buffer; nil-safe, and tolerant of
// foreign buffers (read results) as long as they hold a full block.
func (c *Core) putBuf(b []byte) {
	if b == nil || cap(b) < c.blockSize {
		return
	}
	c.bufFree = append(c.bufFree, b[:c.blockSize])
}

// getOOB returns an oobLen record buffer; contents are overwritten by the
// caller (encodeOOB fills every byte).
func (c *Core) getOOB() []byte {
	if n := len(c.oobFree); n > 0 {
		b := c.oobFree[n-1]
		c.oobFree = c.oobFree[:n-1]
		return b
	}
	return make([]byte, oobLen)
}

// putOOB recycles an OOB record; nil-safe.
func (c *Core) putOOB(b []byte) {
	if b == nil || cap(b) < oobLen {
		return
	}
	c.oobFree = append(c.oobFree, b[:oobLen])
}

// getBatch returns a zeroed n-byte coalesced-payload buffer.
func (c *Core) getBatch(n int) []byte {
	for i := len(c.batchFree) - 1; i >= 0; i-- {
		if cap(c.batchFree[i]) >= n {
			b := c.batchFree[i][:n]
			last := len(c.batchFree) - 1
			c.batchFree[i] = c.batchFree[last]
			c.batchFree = c.batchFree[:last]
			clear(b)
			return b
		}
	}
	return make([]byte, n)
}

// putBatch recycles a coalesced-payload buffer; nil-safe.
func (c *Core) putBatch(b []byte) {
	if b == nil {
		return
	}
	c.batchFree = append(c.batchFree, b)
}

// getVec returns an n-element nil-filled [][]byte (per-batch OOB vectors,
// parity accumulators, old-parity scratch).
func (c *Core) getVec(n int) [][]byte {
	if l := len(c.vecFree); l > 0 {
		v := c.vecFree[l-1]
		c.vecFree = c.vecFree[:l-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([][]byte, n)
}

// putVec recycles a [][]byte vector, dropping its element references so
// pooled vectors do not pin block buffers; nil-safe.
func (c *Core) putVec(v [][]byte) {
	if v == nil {
		return
	}
	for i := range v {
		v[i] = nil
	}
	c.vecFree = append(c.vecFree, v[:0])
}

// getOps returns an empty schedOp slice with pooled capacity.
func (c *Core) getOps() []schedOp {
	if n := len(c.opsFree); n > 0 {
		s := c.opsFree[n-1]
		c.opsFree = c.opsFree[:n-1]
		return s
	}
	return nil
}

// putOps recycles a batch's op slice, clearing records so closures and
// payload references do not linger.
func (c *Core) putOps(s []schedOp) {
	for i := range s {
		s[i] = schedOp{}
	}
	c.opsFree = append(c.opsFree, s[:0])
}

// getAB returns a pooled appendBatch record.
func (c *Core) getAB() *appendBatch {
	if n := len(c.abFree); n > 0 {
		b := c.abFree[n-1]
		c.abFree = c.abFree[:n-1]
		return b
	}
	return &appendBatch{}
}

// putAB recycles an appendBatch record (the ops slice is recycled
// separately after dispatch completes); nil-safe.
func (c *Core) putAB(b *appendBatch) {
	if b == nil {
		return
	}
	b.ops = nil
	c.abFree = append(c.abFree, b)
}
