package core

import (
	"errors"

	"biza/internal/obs"
	"biza/internal/storerr"
)

// MemberState is the health of one array member. Numbering matches the obs
// layer's memberStateNames table (trace exporters render it by value).
type MemberState uint8

const (
	// MemberHealthy members serve reads and writes directly.
	MemberHealthy MemberState = iota
	// MemberDegraded members are dead or failed: reads of their chunks
	// reconstruct from the stripe's survivors.
	MemberDegraded
	// MemberRebuilding members are fresh replacements whose stripes are
	// still being dissolved back to full redundancy.
	MemberRebuilding
)

func (s MemberState) String() string {
	switch s {
	case MemberHealthy:
		return "healthy"
	case MemberDegraded:
		return "degraded"
	case MemberRebuilding:
		return "rebuilding"
	}
	return "unknown"
}

// Health reports the current state of every member.
func (c *Core) Health() []MemberState {
	out := make([]MemberState, len(c.devs))
	for i := range out {
		out[i] = c.memberState(i)
	}
	return out
}

func (c *Core) memberState(dev int) MemberState {
	switch {
	case c.rebuilding[dev]:
		return MemberRebuilding
	case c.dead[dev] || c.failed[dev]:
		return MemberDegraded
	}
	return MemberHealthy
}

// Degraded reports whether any member is below full redundancy.
func (c *Core) Degraded() bool {
	for i := range c.devs {
		if c.dead[i] || c.failed[i] || c.rebuilding[i] {
			return true
		}
	}
	return false
}

// OnMemberDeath registers a handler fired (via a zero-delay event, so the
// failing completion unwinds first) when a member is declared dead. The
// usual handler swaps in a spare via ReplaceDevice.
func (c *Core) OnMemberDeath(fn func(dev int)) { c.onDeath = fn }

// Reconstructions reports how many chunk reads were served by parity
// reconstruction instead of the owning member.
func (c *Core) Reconstructions() uint64 { return c.reconTotal }

// DegradedWrites reports chunk writes acknowledged while their member was
// unavailable (the content stays covered by the surviving slots).
func (c *Core) DegradedWrites() uint64 { return c.degradedWrites }

// degradedOK reports whether absorbing one more member-side write failure
// keeps every stripe inside the array's fault budget.
func (c *Core) degradedOK() bool {
	n := 0
	for i := range c.devs {
		if c.failed[i] {
			n++
		}
	}
	return n <= c.cfg.Parity
}

// noteIOError inspects a completion error from a member device. A
// device-death error permanently marks the member dead: reads flip to the
// degraded path and the death handler is scheduled. Transient and
// addressing errors pass through untouched (the nvme layer already
// retried transients).
func (c *Core) noteIOError(dev int, err error) {
	if err == nil || dev < 0 || dev >= len(c.devs) {
		return
	}
	if c.dead[dev] || !errors.Is(err, storerr.ErrDeviceDead) {
		return
	}
	old := c.memberState(dev)
	c.dead[dev] = true
	c.failed[dev] = true
	c.traceMemberState(dev, old)
	if c.onDeath != nil {
		d := dev
		c.eng.After(0, func() { c.onDeath(d) })
	}
}

func (c *Core) traceMemberState(dev int, old MemberState) {
	if c.tr == nil {
		return
	}
	c.tr.Event(int64(c.eng.Now()), obs.LayerBIZA, obs.EvMemberState, dev, -1,
		int64(c.memberState(dev)), int64(old), 0)
}

// noteReconstruct records one chunk served (or refused) by the erasure
// code on behalf of a failed member.
func (c *Core) noteReconstruct(dev int, lbn int64, err error) {
	c.reconTotal++
	if dev >= 0 && dev < len(c.reconstructs) {
		c.reconstructs[dev]++
	}
	if c.tr == nil {
		return
	}
	var failed int64
	if err != nil {
		failed = 1
	}
	now := int64(c.eng.Now())
	c.tr.Event(now, obs.LayerBIZA, obs.EvReconstruct, dev, -1, lbn, failed, 0)
	if dev >= 0 && dev < len(c.reconstructs) {
		c.tr.Counter(now, obs.ProbeKey(obs.ProbeReconstructs, dev, 0), int64(c.reconstructs[dev]))
	}
}
