package core

import (
	"fmt"
	"sort"

	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/storerr"
)

// RebuildControl paces a ReplaceDevice rebuild against foreground latency.
// The rebuild dissolves the replaced member's stripes in batches of
// StripesPerStep, idling StepGap of virtual time between batches, so
// foreground I/O drains the device queues the rebuild would otherwise
// saturate. The zero value disables pacing: every stripe dissolves at
// once (the fastest rebuild, and the worst foreground tail).
type RebuildControl struct {
	// StripesPerStep bounds the stripes dissolving concurrently per step
	// (<= 0 dissolves everything in one step).
	StripesPerStep int
	// StepGap is the virtual pause between steps.
	StepGap sim.Time
	// OnProgress, when set, fires after each completed step with the
	// stripes rebuilt so far out of the rebuild's total.
	OnProgress func(done, total int)
	// Gate, when set, interposes on step scheduling: after each batch (and
	// its StepGap) the rebuild hands the next-batch continuation to Gate
	// instead of running it, and proceeds only when Gate invokes it. The
	// admin orchestrator uses this to pause and resume rebuilds at step
	// boundaries.
	Gate func(next func())
}

// ReplaceDevice swaps a failed member for a fresh device and rebuilds
// redundancy: every stripe with a slot on the replaced member is
// dissolved — its live chunks are re-homed into new stripes across the
// full array (chunks that lived on the dead member are reconstructed from
// the survivors via the erasure code). When done fires, no live data
// references the replaced member and full fault tolerance is restored.
//
// The log-structured rebuild mirrors how BIZA's GC migrates data, so it
// reuses the same dissolution machinery rather than copying block-for-
// block onto the spare (the spare simply joins the allocation rotation).
func (c *Core) ReplaceDevice(dev int, q *nvme.Queue, done func(error)) {
	c.ReplaceDevicePaced(dev, q, RebuildControl{}, done)
}

// ReplaceDevicePaced is ReplaceDevice with the rebuild throttled by ctl:
// stripes dissolve StripesPerStep at a time with StepGap of virtual idle
// between batches. Stripe order is deterministic (ascending stripe
// number), so the same control settings replay bit-identically.
func (c *Core) ReplaceDevicePaced(dev int, q *nvme.Queue, ctl RebuildControl, done func(error)) {
	fail := func(err error) {
		if done != nil {
			c.eng.After(0, func() { done(err) })
		}
	}
	if dev < 0 || dev >= len(c.devs) {
		fail(fmt.Errorf("core: device %d out of range: %w", dev, storerr.ErrNotFound))
		return
	}
	ncfg := q.Device().Config()
	ocfg := c.devs[dev].q.Device().Config()
	if ncfg.ZoneBlocks != ocfg.ZoneBlocks || ncfg.NumZones != ocfg.NumZones ||
		ncfg.BlockSize != ocfg.BlockSize || ncfg.ZRWABlocks != ocfg.ZRWABlocks {
		fail(fmt.Errorf("core: replacement device geometry mismatch: %w", storerr.ErrBadArgument))
		return
	}
	ds, err := newDevState(c, dev, q)
	if err != nil {
		fail(err)
		return
	}
	ds.diagnose(c.cfg.DiagnoseZones)
	old := c.memberState(dev)
	c.devs[dev] = ds
	// Until the rebuild completes, reads of chunks that lived on the old
	// member reconstruct from the survivors. The fresh device itself is
	// alive: clear the death flag so writes land on it again.
	c.dead[dev] = false
	c.failed[dev] = true
	c.rebuilding[dev] = true
	if c.memberState(dev) != old {
		c.traceMemberState(dev, old)
	}
	finishRebuild := func() {
		prev := c.memberState(dev)
		c.failed[dev] = false
		c.rebuilding[dev] = false
		c.traceMemberState(dev, prev)
	}

	// Every stripe with a data or parity slot on the member needs
	// dissolution.
	snSet := map[int64]bool{}
	for sn, se := range c.smt {
		for _, p := range se.chunks {
			if p.dev == dev {
				snSet[sn] = true
			}
		}
		for _, p := range se.parity {
			if p.dev == dev {
				snSet[sn] = true
			}
		}
	}
	sns := make([]int64, 0, len(snSet))
	for sn := range snSet {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })

	total := len(sns)
	if total == 0 {
		finishRebuild()
		fail(nil)
		return
	}
	per := ctl.StripesPerStep
	if per <= 0 || per > total {
		per = total
	}
	rebuilt := 0
	var step func()
	step = func() {
		batch := sns
		if len(batch) > per {
			batch = sns[:per]
		}
		sns = sns[len(batch):]
		inBatch := len(batch)
		for _, sn := range batch {
			c.dissolveStripe(sn, func() {
				inBatch--
				rebuilt++
				if inBatch > 0 {
					return
				}
				if ctl.OnProgress != nil {
					ctl.OnProgress(rebuilt, total)
				}
				if len(sns) == 0 {
					finishRebuild()
					if done != nil {
						done(nil)
					}
					return
				}
				next := step
				if ctl.Gate != nil {
					next = func() { ctl.Gate(step) }
				}
				if ctl.StepGap > 0 {
					c.eng.After(ctl.StepGap, next)
				} else {
					next()
				}
			})
		}
	}
	step()
}
