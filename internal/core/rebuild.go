package core

import (
	"fmt"
	"sort"

	"biza/internal/nvme"
)

// ReplaceDevice swaps a failed member for a fresh device and rebuilds
// redundancy: every stripe with a slot on the replaced member is
// dissolved — its live chunks are re-homed into new stripes across the
// full array (chunks that lived on the dead member are reconstructed from
// the survivors via the erasure code). When done fires, no live data
// references the replaced member and full fault tolerance is restored.
//
// The log-structured rebuild mirrors how BIZA's GC migrates data, so it
// reuses the same dissolution machinery rather than copying block-for-
// block onto the spare (the spare simply joins the allocation rotation).
func (c *Core) ReplaceDevice(dev int, q *nvme.Queue, done func(error)) {
	fail := func(err error) {
		if done != nil {
			c.eng.After(0, func() { done(err) })
		}
	}
	if dev < 0 || dev >= len(c.devs) {
		fail(fmt.Errorf("core: device %d out of range", dev))
		return
	}
	ncfg := q.Device().Config()
	ocfg := c.devs[dev].q.Device().Config()
	if ncfg.ZoneBlocks != ocfg.ZoneBlocks || ncfg.NumZones != ocfg.NumZones ||
		ncfg.BlockSize != ocfg.BlockSize || ncfg.ZRWABlocks != ocfg.ZRWABlocks {
		fail(fmt.Errorf("core: replacement device geometry mismatch"))
		return
	}
	ds, err := newDevState(c, dev, q)
	if err != nil {
		fail(err)
		return
	}
	ds.diagnose(c.cfg.DiagnoseZones)
	old := c.memberState(dev)
	c.devs[dev] = ds
	// Until the rebuild completes, reads of chunks that lived on the old
	// member reconstruct from the survivors. The fresh device itself is
	// alive: clear the death flag so writes land on it again.
	c.dead[dev] = false
	c.failed[dev] = true
	c.rebuilding[dev] = true
	if c.memberState(dev) != old {
		c.traceMemberState(dev, old)
	}
	finishRebuild := func() {
		prev := c.memberState(dev)
		c.failed[dev] = false
		c.rebuilding[dev] = false
		c.traceMemberState(dev, prev)
	}

	// Every stripe with a data or parity slot on the member needs
	// dissolution.
	snSet := map[int64]bool{}
	for sn, se := range c.smt {
		for _, p := range se.chunks {
			if p.dev == dev {
				snSet[sn] = true
			}
		}
		for _, p := range se.parity {
			if p.dev == dev {
				snSet[sn] = true
			}
		}
	}
	sns := make([]int64, 0, len(snSet))
	for sn := range snSet {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })

	remaining := len(sns)
	if remaining == 0 {
		finishRebuild()
		fail(nil)
		return
	}
	for _, sn := range sns {
		c.dissolveStripe(sn, func() {
			remaining--
			if remaining == 0 {
				finishRebuild()
				if done != nil {
					done(nil)
				}
			}
		})
	}
}
