package core

// RAID 6 (m = 2) coverage: the paper states the design extends beyond
// RAID 5; these tests exercise dual-parity stripes, double-failure
// reconstruction, in-place RS parity deltas, GC, and recovery.

import (
	"bytes"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func newCore6(t *testing.T) (*sim.Engine, *Core, []*zns.Device) {
	t.Helper()
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	var devs []*zns.Device
	for i := 0; i < 5; i++ {
		dc := devConfig()
		dc.Seed = uint64(i) + 60
		d, err := zns.New(eng, dc)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond, Seed: uint64(i) + 600,
		}))
	}
	cfg := DefaultConfig(devConfig().NumZones)
	cfg.Parity = 2
	c, err := New(queues, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c, devs
}

func TestRAID6RoundTrip(t *testing.T) {
	eng, c, _ := newCore6(t)
	payload := pat(4, 24*4096)
	if r := wsync(eng, c, 0, 24, payload); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, c, 0, 24)
	if r.Err != nil || !bytes.Equal(r.Data, payload) {
		t.Fatalf("raid6 round trip: %v", r.Err)
	}
}

func TestRAID6SingleFailure(t *testing.T) {
	eng, c, _ := newCore6(t)
	payload := pat(7, 12*4096)
	wsync(eng, c, 0, 12, payload)
	eng.Run()
	for dev := 0; dev < 5; dev++ {
		c.SetDeviceFailed(dev, true)
		r := rsync(eng, c, 0, 12)
		if r.Err != nil || !bytes.Equal(r.Data, payload) {
			t.Fatalf("dev %d failed: err=%v", dev, r.Err)
		}
		c.SetDeviceFailed(dev, false)
	}
}

func TestRAID6DoubleFailure(t *testing.T) {
	eng, c, _ := newCore6(t)
	payload := pat(9, 12*4096)
	wsync(eng, c, 0, 12, payload)
	eng.Run()
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			c.SetDeviceFailed(a, true)
			c.SetDeviceFailed(b, true)
			r := rsync(eng, c, 0, 12)
			if r.Err != nil || !bytes.Equal(r.Data, payload) {
				t.Fatalf("devs %d+%d failed: err=%v", a, b, r.Err)
			}
			c.SetDeviceFailed(a, false)
			c.SetDeviceFailed(b, false)
		}
	}
}

func TestRAID6DoubleFailureAfterOverwrites(t *testing.T) {
	// In-place RS parity deltas must keep BOTH parities consistent.
	eng, c, _ := newCore6(t)
	for i := 0; i < 9; i++ {
		wsync(eng, c, int64(i), 1, pat(byte(i), 4096))
	}
	// Rewrite some blocks several times (in-place path).
	for round := 0; round < 5; round++ {
		wsync(eng, c, 2, 1, pat(byte(50+round), 4096))
		wsync(eng, c, 5, 1, pat(byte(80+round), 4096))
	}
	eng.Run()
	expect := map[int64]byte{0: 0, 1: 1, 2: 54, 3: 3, 4: 4, 5: 84, 6: 6, 7: 7, 8: 8}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			c.SetDeviceFailed(a, true)
			c.SetDeviceFailed(b, true)
			for lba, seed := range expect {
				r := rsync(eng, c, lba, 1)
				if r.Err != nil {
					t.Fatalf("devs %d+%d, lba %d: %v", a, b, lba, r.Err)
				}
				if !bytes.Equal(r.Data, pat(seed, 4096)) {
					t.Fatalf("devs %d+%d, lba %d: wrong content", a, b, lba)
				}
			}
			c.SetDeviceFailed(a, false)
			c.SetDeviceFailed(b, false)
		}
	}
}

func TestRAID6GCPreservesData(t *testing.T) {
	eng, c, _ := newCore6(t)
	span := c.Blocks() / 5
	rng := sim.NewRNG(606)
	written := map[int64]bool{}
	for i := 0; i < int(span)*8; i++ {
		lba := rng.Int63n(span)
		if r := wsync(eng, c, lba, 1, pat(byte(lba), 4096)); r.Err != nil {
			t.Fatalf("write: %v", r.Err)
		}
		written[lba] = true
	}
	eng.Run()
	if c.GCEvents() == 0 {
		t.Fatal("GC never ran on raid6 array")
	}
	for lba := int64(0); lba < span; lba += 11 {
		if !written[lba] {
			continue
		}
		r := rsync(eng, c, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(byte(lba), 4096)) {
			t.Fatalf("lba %d corrupted after raid6 GC: %v", lba, r.Err)
		}
	}
}

func TestRAID6Recovery(t *testing.T) {
	eng, c, devs := newCore6(t)
	want := map[int64]byte{}
	rng := sim.NewRNG(77)
	for i := 0; i < 400; i++ {
		lba := rng.Int63n(c.Blocks() / 8)
		seed := byte(i)
		if r := wsync(eng, c, lba, 1, pat(seed, 4096)); r.Err == nil {
			want[lba] = seed
		}
	}
	eng.Run()
	var queues []*nvme.Queue
	for i, d := range devs {
		queues = append(queues, nvme.New(d, nvme.Config{Seed: uint64(i) + 900}))
	}
	cfg := DefaultConfig(devConfig().NumZones)
	cfg.Parity = 2
	var rc *Core
	var rerr error
	Recover(queues, cfg, nil, func(n *Core, err error) { rc, rerr = n, err })
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	for lba, seed := range want {
		r := rsync(eng, rc, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("post-recovery lba %d: %v", lba, r.Err)
		}
	}
	// Degraded double-failure read on the RECOVERED array.
	rc.SetDeviceFailed(0, true)
	rc.SetDeviceFailed(3, true)
	for lba, seed := range want {
		r := rsync(eng, rc, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("post-recovery degraded lba %d: %v", lba, r.Err)
		}
	}
}

func TestRAID6RejectsTooFewMembers(t *testing.T) {
	eng := sim.NewEngine()
	var queues []*nvme.Queue
	for i := 0; i < 3; i++ {
		d, _ := zns.New(eng, devConfig())
		queues = append(queues, nvme.New(d, nvme.Config{}))
	}
	cfg := DefaultConfig(devConfig().NumZones)
	cfg.Parity = 2
	if _, err := New(queues, cfg, nil); err == nil {
		t.Fatal("accepted m=2 with 3 members")
	}
}

func TestRAID6StripeDevicesDistinct(t *testing.T) {
	eng, c, _ := newCore6(t)
	wsync(eng, c, 0, 9, pat(1, 9*4096)) // 3 full stripes (k=3)
	eng.Run()
	for sn, se := range c.smt {
		used := map[int]bool{}
		for _, p := range se.chunks {
			if p.dev < 0 {
				continue
			}
			if used[p.dev] {
				t.Fatalf("stripe %d reuses device %d for data", sn, p.dev)
			}
			used[p.dev] = true
		}
		for _, p := range se.parity {
			if p.dev < 0 {
				continue
			}
			if used[p.dev] {
				t.Fatalf("stripe %d reuses device %d for parity", sn, p.dev)
			}
			used[p.dev] = true
		}
	}
	_ = blockdev.ErrOutOfRange
}
