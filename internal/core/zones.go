package core

import (
	"fmt"

	"biza/internal/buf"
	"biza/internal/cpumodel"
	"biza/internal/nvme"
	"biza/internal/zns"
)

// zoneState is the host-side view of one open or full zone, including the
// §4.4 scheduler state: the allocation cursor, the completed prefix (the
// sliding window's left edge), and the queue of writes waiting for the
// window to slide.
type zoneState struct {
	id    int
	class Class

	wpAlloc      int64 // next append offset (allocation cursor)
	maxSubmitted int64 // highest append offset handed to the driver
	donePrefix   int64 // all appends below this offset have completed
	doneSet      map[int64]bool
	inflight     int
	pendq        []appendBatch // batches waiting for the window (ascending)

	// stage accumulates contiguous appends submitted within one event so
	// they go to the device as one multi-block command (the block layer's
	// request merging; without it 4 KiB chunk traffic drowns in
	// per-command overhead).
	stage        *appendBatch
	stagePending bool

	// ipOffsets tracks outstanding in-place writes: the window must not
	// slide past them while they are in flight, or a reordered delivery
	// could land behind the device's committed boundary.
	ipOffsets map[int64]int

	rmapLBN    []int64 // off -> logical block (live data chunks), -1 otherwise
	rmapSN     []int64 // off -> stripe number (parity chunks), -1 otherwise
	rmapStripe []int64 // off -> owning stripe of the data slot (live or stale)
	valid      int64
	sealedF    bool // finishing/finished: no further writes accepted
}

type schedOp struct {
	off     int64
	inplace bool
	// reserved marks in-place ops whose window pin (ipOffsets) was taken
	// at admission time — before any asynchronous reads — so the window
	// cannot slide past the slot while the read-modify-write is in flight.
	reserved bool
	data     []byte
	// ownData marks raw payloads drawn from the core's pool (parity
	// accumulator copies/moves); the dispatch-done callback recycles them.
	// GC reads stay caller-owned.
	ownData bool
	// own carries one reference to a refcounted user payload (WriteBuf);
	// data is a view into it. Dispatch hands the device a fresh reference
	// and the done callback releases this one.
	own  *buf.Buf
	oob  []byte
	tag  zns.WriteTag
	done func(zns.WriteResult)
}

// appendBatch is a run of contiguous append chunks dispatched as one
// device write.
type appendBatch struct {
	off int64
	ops []schedOp
}

func (b *appendBatch) end() int64 { return b.off + int64(len(b.ops)) }

// slotDone reports whether the append that first wrote a slot has
// completed. In-place updates require it: rewriting a slot whose append is
// still queued or in flight would race delivery order (stale content could
// win) or even extend the device window unexpectedly.
func (zs *zoneState) slotDone(off int64) bool {
	return off < zs.donePrefix || zs.doneSet[off]
}

// devWP reports the host's conservative estimate of the device's committed
// boundary: the window cannot start later than maxSubmitted+1-ZRWA.
func (zs *zoneState) devWP(zrwa int64) int64 {
	wp := zs.maxSubmitted + 1 - zrwa
	if wp < 0 {
		wp = 0
	}
	return wp
}

// devState manages one member device: zone groups per class, the free
// pool, the guess-and-verify channel map, and BUSY-channel bookkeeping.
type devState struct {
	c  *Core
	id int
	q  *nvme.Queue

	zones  []*zoneState // by zone id; nil for zones in the free pool
	groups [numClasses][]*zoneState
	rr     [numClasses]int

	freeZones []int
	fullZones []int // candidates for GC victim selection

	guessed   []int // zone -> guessed channel
	confirmed []bool
	votes     []map[int]int

	busy     map[int]int  // channel -> refcount of GC activity
	busyConf map[int]bool // channel marked from a confirmed zone

	gcRunning bool
	stalled   []func()
}

func newDevState(c *Core, id int, q *nvme.Queue) (*devState, error) {
	cfg := q.Device().Config()
	ds := &devState{
		c:         c,
		id:        id,
		q:         q,
		zones:     make([]*zoneState, cfg.NumZones),
		guessed:   make([]int, cfg.NumZones),
		confirmed: make([]bool, cfg.NumZones),
		votes:     make([]map[int]int, cfg.NumZones),
		busy:      make(map[int]int),
		busyConf:  make(map[int]bool),
	}
	for z := 0; z < cfg.NumZones; z++ {
		ds.freeZones = append(ds.freeZones, z)
		ds.guessed[z] = z % cfg.NumChannels // round-robin guess (§4.3)
	}
	// Open the initial zone groups.
	for class := Class(0); class < numClasses; class++ {
		for i := 0; i < c.cfg.ZonesPerGroup; i++ {
			zs, err := ds.openNewZone(class)
			if err != nil {
				return nil, err
			}
			ds.groups[class] = append(ds.groups[class], zs)
		}
	}
	return ds, nil
}

// diagnose confirms the channel of the first k zones via the zone-to-zone
// diagnosis of §3.3 (pairwise write bursts and latency comparison). The
// procedure is accurate on real hardware — the paper's objection is its
// cost, which BIZA pays only once at creation — so the simulation grants
// it oracle accuracy.
func (ds *devState) diagnose(k int) {
	for z := 0; z < k && z < len(ds.guessed); z++ {
		ds.guessed[z] = ds.q.Device().TrueChannelOf(z)
		ds.confirmed[z] = true
	}
}

// openNewZone takes a free zone, opens it with ZRWA, and returns its state.
func (ds *devState) openNewZone(class Class) (*zoneState, error) {
	if len(ds.freeZones) == 0 {
		return nil, fmt.Errorf("core: device %d out of free zones", ds.id)
	}
	// Prefer a free zone whose guessed channel is distinct from the other
	// zones already in this group (a zone group spans channels, §4.1).
	used := map[int]bool{}
	for _, zs := range ds.groups[class] {
		if zs != nil && !zs.sealedF {
			used[ds.guessed[zs.id]] = true
		}
	}
	pick := -1
	for i, z := range ds.freeZones {
		if !used[ds.guessed[z]] {
			pick = i
			break
		}
	}
	if pick < 0 {
		pick = 0
	}
	z := ds.freeZones[pick]
	ds.freeZones = append(ds.freeZones[:pick], ds.freeZones[pick+1:]...)
	ch, err := ds.q.Device().OpenReport(z, true)
	if err != nil {
		// Typically ErrTooManyOpen while retired zones drain; the zone
		// returns to the pool and the caller parks until a slot frees.
		ds.freeZones = append(ds.freeZones, z)
		return nil, fmt.Errorf("core: open zone %d on device %d: %w", z, ds.id, err)
	}
	if ch >= 0 {
		// §6 future-ZNS device: the OPEN completion carries the channel,
		// making the guess-and-verify machinery unnecessary for this zone.
		ds.guessed[z] = ch
		ds.confirmed[z] = true
	}
	zb := ds.c.zoneBlocks
	zs := &zoneState{
		id:         z,
		class:      class,
		doneSet:    make(map[int64]bool),
		ipOffsets:  make(map[int64]int),
		rmapLBN:    makeFilled(zb, -1),
		rmapSN:     makeFilled(zb, -1),
		rmapStripe: makeFilled(zb, -1),
	}
	ds.zones[z] = zs
	return zs, nil
}

func makeFilled(n int64, v int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// channelBusy reports whether a channel carries GC traffic.
func (ds *devState) channelBusy(ch int) bool { return ds.busy[ch] > 0 }

// markBusy tags the guessed channel of zone z as BUSY for the duration of
// a GC phase; fromConfirmed notes whether the channel identity is certain.
func (ds *devState) markBusy(z int) (ch int, release func()) {
	ch = ds.guessed[z]
	ds.busy[ch]++
	if ds.confirmed[z] {
		ds.busyConf[ch] = true
	}
	released := false
	return ch, func() {
		if released {
			return
		}
		released = true
		ds.busy[ch]--
		if ds.busy[ch] <= 0 {
			delete(ds.busy, ch)
			delete(ds.busyConf, ch)
		}
	}
}

// pickZone selects the destination zone within a class group, preferring
// zones whose guessed channel is not BUSY (§4.3's GC avoidance). A full
// zone encountered during selection is replaced with a fresh one.
func (ds *devState) pickZone(class Class) (*zoneState, error) {
	ds.c.acct.Charge(cpumodel.CompBIZA, cpumodel.CostSchedule)
	group := ds.groups[class]
	n := len(group)
	avoid := ds.c.cfg.EnableGCAvoid && len(ds.busy) > 0
	var fallback *zoneState
	for try := 0; try < n; try++ {
		slot := (ds.rr[class] + try) % n
		zs := group[slot]
		if zs == nil || zs.wpAlloc >= ds.c.zoneBlocks {
			nz, err := ds.openNewZone(class)
			if err != nil {
				if zs != nil && zs.wpAlloc < ds.c.zoneBlocks {
					fallback = zs
					continue
				}
				continue
			}
			if zs != nil {
				ds.retireZone(zs)
			}
			group[slot] = nz
			zs = nz
		}
		if avoid && ds.channelBusy(ds.guessed[zs.id]) {
			fallback = zs
			continue
		}
		ds.rr[class] = (slot + 1) % n
		return zs, nil
	}
	if fallback != nil {
		// Every candidate is on a BUSY channel (or no fresh zones): write
		// anyway rather than stall the user.
		return fallback, nil
	}
	return nil, fmt.Errorf("core: device %d has no writable zone for class %v", ds.id, class)
}

// alloc reserves the next append slot in the chosen zone of a class group.
func (ds *devState) alloc(class Class) (*zoneState, int64, error) {
	zs, err := ds.pickZone(class)
	if err != nil {
		return nil, 0, err
	}
	off := zs.wpAlloc
	zs.wpAlloc++
	return zs, off, nil
}

// submitChunk runs a chunk write through the §4.4 sliding-window
// scheduler: appends beyond the window wait for completions to slide it;
// in-place updates (already inside the device window) dispatch directly
// and pin the window so it cannot slide past them while in flight.
// Contiguous appends stage into one multi-block device command.
func (ds *devState) submitChunk(zs *zoneState, op schedOp) {
	ds.c.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
	if op.inplace {
		if !op.reserved {
			zs.ipOffsets[op.off]++
		}
		ds.dispatchInPlace(zs, op)
		return
	}
	maxBatch := ds.c.cfg.MaxBatchBlocks
	if maxBatch == 0 {
		maxBatch = ds.c.zrwaBlocks / 4
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	if zs.stage != nil && zs.stage.end() == op.off && int64(len(zs.stage.ops)) < maxBatch {
		zs.stage.ops = append(zs.stage.ops, op)
		return
	}
	ds.flushStage(zs)
	b := ds.c.getAB()
	b.off = op.off
	b.ops = append(ds.c.getOps(), op)
	zs.stage = b
	if !zs.stagePending {
		zs.stagePending = true
		ds.c.eng.After(0, func() {
			zs.stagePending = false
			ds.flushStage(zs)
		})
	}
}

// flushStage moves the staged batch to dispatch or the window queue.
func (ds *devState) flushStage(zs *zoneState) {
	if zs.stage == nil {
		return
	}
	b := *zs.stage
	ds.c.putAB(zs.stage)
	zs.stage = nil
	if len(zs.pendq) == 0 && ds.canAppend(zs, b.end()-1) {
		ds.dispatchBatch(zs, b)
		return
	}
	zs.pendq = append(zs.pendq, b)
}

// canAppend reports whether an append at off keeps every in-flight write
// of the zone within one ZRWA-sized range: inside the window measured from
// the completed prefix, and not so far ahead that a reordered delivery
// would shift the device boundary past an outstanding in-place write.
func (ds *devState) canAppend(zs *zoneState, off int64) bool {
	if off >= zs.donePrefix+ds.c.zrwaBlocks {
		return false
	}
	for ip := range zs.ipOffsets {
		if off >= ip+ds.c.zrwaBlocks {
			return false
		}
	}
	return true
}

func (ds *devState) dispatchInPlace(zs *zoneState, op schedOp) {
	// In-place updates deliberately ignore BUSY tags (§4.3: the ZRWA
	// buffer is separate from the flash channels), so they are not scored.
	zs.inflight++
	var oob [][]byte
	if op.oob != nil {
		oob = ds.c.getVec(1)
		oob[0] = op.oob
	}
	done := func(r zns.WriteResult) {
		zs.inflight--
		ds.c.acct.Charge(cpumodel.CompIO, cpumodel.CostCompletion)
		zs.ipOffsets[op.off]--
		if zs.ipOffsets[op.off] <= 0 {
			delete(zs.ipOffsets, op.off)
		}
		ds.c.observeLatency(ds, zs, r)
		if op.done != nil {
			op.done(r)
		}
		// The device copied OOB (and any raw payload) at submission, or
		// holds references to a refcounted payload; recycle and release.
		ds.c.putOOB(op.oob)
		ds.c.putVec(oob)
		if op.ownData {
			ds.c.putBuf(op.data)
		}
		buf.Release(op.own)
		ds.drain(zs)
		ds.maybeFinish(zs)
	}
	if op.own != nil {
		// Zero-copy: the driver gets a fresh reference; ours is released in
		// the completion above.
		op.own.Retain()
		ds.q.WriteOwned(zs.id, op.off, 1, op.data, oob, op.tag, op.own, done)
		return
	}
	ds.q.Write(zs.id, op.off, 1, op.data, oob, op.tag, done)
}

func (ds *devState) dispatchBatch(zs *zoneState, b appendBatch) {
	ds.c.scoreDispatch(ds, zs)
	zs.inflight++
	if b.end()-1 > zs.maxSubmitted {
		zs.maxSubmitted = b.end() - 1
	}
	n := len(b.ops)
	var data []byte
	var batch []byte // gather buffer to recycle, nil when passing through
	var oob [][]byte
	hasData, hasOOB := false, false
	for _, op := range b.ops {
		if op.data != nil {
			hasData = true
		}
		if op.oob != nil {
			hasOOB = true
		}
	}
	bs := ds.c.blockSize
	if hasData {
		if n == 1 {
			// Single-block batch: hand the payload straight through (the
			// refcounted path below makes this fully zero-copy).
			data = b.ops[0].data
		} else {
			// Merged command: gather-copy into one coalesced slab. The copy
			// buys one device command for n blocks and is counted, so the
			// merge-vs-copy tradeoff stays observable (payload_copy probe).
			batch = ds.c.getBatch(n * bs)
			data = batch
			for i, op := range b.ops {
				if op.data != nil {
					copy(data[i*bs:], op.data)
					ds.c.pool.NoteCopy(bs)
				}
			}
		}
	}
	if hasOOB {
		oob = ds.c.getVec(n)
		for i, op := range b.ops {
			oob[i] = op.oob
		}
	}
	done := func(r zns.WriteResult) {
		zs.inflight--
		ds.c.acct.Charge(cpumodel.CompIO, cpumodel.CostCompletion)
		for i := range b.ops {
			ds.markDone(zs, b.off+int64(i))
		}
		ds.c.observeLatency(ds, zs, r)
		for _, op := range b.ops {
			if op.done != nil {
				op.done(r)
			}
		}
		// The device copied payload and OOB at submission (or holds its
		// own references); recycle the gather buffer, the OOB records,
		// owned payloads, and the batch's op slice.
		for i := range b.ops {
			ds.c.putOOB(b.ops[i].oob)
			if b.ops[i].ownData {
				ds.c.putBuf(b.ops[i].data)
			}
			buf.Release(b.ops[i].own)
		}
		ds.c.putBatch(batch)
		ds.c.putVec(oob)
		ds.c.putOps(b.ops)
		ds.drain(zs)
		ds.maybeFinish(zs)
	}
	if n == 1 && b.ops[0].own != nil {
		own := b.ops[0].own
		own.Retain() // fresh reference for the driver; ours releases in done
		ds.q.WriteOwned(zs.id, b.off, 1, data, oob, b.ops[0].tag, own, done)
		return
	}
	ds.q.Write(zs.id, b.off, n, data, oob, b.ops[0].tag, done)
}

// markDone advances the completed prefix over contiguous finished appends.
func (ds *devState) markDone(zs *zoneState, off int64) {
	if off == zs.donePrefix {
		zs.donePrefix++
		for zs.doneSet[zs.donePrefix] {
			delete(zs.doneSet, zs.donePrefix)
			zs.donePrefix++
		}
		return
	}
	zs.doneSet[off] = true
}

// unpin releases one in-place window pin taken at admission time without
// a dispatch (the aborted read-modify-write path), letting parked batches
// slide the window again.
func (c *Core) unpin(p pa) {
	ds := c.devs[p.dev]
	zs := ds.zones[p.zone]
	if zs == nil {
		return
	}
	zs.ipOffsets[p.off]--
	if zs.ipOffsets[p.off] <= 0 {
		delete(zs.ipOffsets, p.off)
		ds.drain(zs)
	}
}

// drain releases queued batches that now fit entirely inside the window.
func (ds *devState) drain(zs *zoneState) {
	for len(zs.pendq) > 0 && ds.canAppend(zs, zs.pendq[0].end()-1) {
		b := zs.pendq[0]
		zs.pendq = zs.pendq[1:]
		ds.dispatchBatch(zs, b)
	}
}

// maybeFinish seals a fully allocated, fully completed zone: FINISH flushes
// the ZRWA tail, releases the open slot, and retries parked allocations.
func (ds *devState) maybeFinish(zs *zoneState) {
	if zs.sealedF || zs.wpAlloc < ds.c.zoneBlocks || zs.inflight > 0 ||
		len(zs.pendq) > 0 || zs.stage != nil {
		return
	}
	zs.sealedF = true
	if err := ds.q.Device().Finish(zs.id); err == nil {
		ds.fullZones = append(ds.fullZones, zs.id)
	}
	ds.c.maybeStartGC(ds)
	ds.c.runAllocWaiters()
}

// retireZone detaches a filled zone from its group (it seals itself once
// its in-flight writes drain).
func (ds *devState) retireZone(zs *zoneState) {
	ds.maybeFinish(zs)
}

// freeZone returns a collected zone to the pool.
func (ds *devState) freeZone(z int) {
	ds.zones[z] = nil
	for i, fz := range ds.fullZones {
		if fz == z {
			ds.fullZones = append(ds.fullZones[:i], ds.fullZones[i+1:]...)
			break
		}
	}
	ds.freeZones = append(ds.freeZones, z)
	for len(ds.stalled) > 0 && (len(ds.freeZones) > ds.c.stallFloor() || ds.pickVictim() < 0) {
		fn := ds.stalled[0]
		ds.stalled = ds.stalled[1:]
		fn()
	}
	ds.c.runAllocWaiters()
}

// runAllocWaiters retries work parked on transient allocation failures
// (open-zone slots exhausted while retired zones drained).
func (c *Core) runAllocWaiters() {
	if len(c.allocWaiters) == 0 {
		return
	}
	waiters := c.allocWaiters
	c.allocWaiters = nil
	for _, w := range waiters {
		c.eng.After(0, w)
	}
}

// pickVictim returns the full zone with the least valid chunks, or -1.
func (ds *devState) pickVictim() int {
	best, bestValid := -1, int64(1)<<62
	for _, z := range ds.fullZones {
		zs := ds.zones[z]
		if zs == nil || zs.inflight > 0 {
			continue
		}
		if zs.valid < bestValid {
			best, bestValid = z, zs.valid
		}
	}
	return best
}

func (c *Core) stallFloor() int {
	f := c.cfg.GCLowWater / 2
	if f < 2 {
		f = 2
	}
	return f
}
