package core

import (
	"sort"

	"biza/internal/obs"
	"biza/internal/storerr"
	"biza/internal/zns"
)

// maybeStartGC launches a device's collector when its free-zone pool drops
// below the low watermark (or immediately when user work is stalled at the
// cliff).
func (c *Core) maybeStartGC(ds *devState) {
	if ds.gcRunning {
		return
	}
	if len(ds.freeZones) >= c.cfg.GCLowWater && len(ds.stalled) == 0 {
		return
	}
	ds.gcRunning = true
	c.eng.After(0, func() { c.gcStep(ds) })
}

// gcStep collects one victim zone (§4.3's GC events): it dissolves every
// stripe that owns a slot — live or stale — in the victim, migrating the
// live chunks into GC-class stripes, then resets the victim. For the
// duration, the victim's guessed channel and the GC destination zones'
// guessed channels are tagged BUSY so pickZone steers user writes away.
func (c *Core) gcStep(ds *devState) {
	if len(ds.freeZones) >= c.cfg.GCHighWater && len(ds.stalled) == 0 {
		ds.gcRunning = false
		return
	}
	victim := ds.pickVictim()
	if victim < 0 {
		ds.gcRunning = false
		// Nothing collectible: release any stalled writers (no deadlock).
		for len(ds.stalled) > 0 {
			fn := ds.stalled[0]
			ds.stalled = ds.stalled[1:]
			fn()
		}
		return
	}
	c.gcEvents++
	vzs := ds.zones[victim]
	if c.tr != nil {
		c.tr.Event(int64(c.eng.Now()), obs.LayerBIZA, obs.EvGCVictim, ds.id, victim,
			vzs.valid, int64(len(ds.freeZones)), 0)
	}

	// Tag BUSY: the victim's channel (reads + erase) and the current GC
	// destination zones on every device (migration programs).
	// BUSY bookkeeping runs regardless of the avoidance toggle (the
	// ablation disables only the steering in pickZone), so collision
	// diagnostics compare like for like.
	var releases []func()
	_, rel := ds.markBusy(victim)
	releases = append(releases, rel)
	for _, d := range c.devs {
		for _, zs := range d.groups[classGC] {
			if zs != nil && !zs.sealedF {
				_, r := d.markBusy(zs.id)
				releases = append(releases, r)
			}
		}
	}
	finish := func() {
		ds.q.Reset(victim, func(err error) {
			c.noteIOError(ds.id, err)
			for _, r := range releases {
				r()
			}
			ds.freeZone(victim)
			c.eng.After(0, func() { c.gcStep(ds) })
		})
	}

	// Collect the owning stripes of every slot in the victim.
	snSet := map[int64]bool{}
	for off := int64(0); off < vzs.wpAlloc; off++ {
		if sn := vzs.rmapStripe[off]; sn >= 0 {
			snSet[sn] = true
		}
		if sn := vzs.rmapSN[off]; sn >= 0 {
			snSet[sn] = true
		}
	}
	sns := make([]int64, 0, len(snSet))
	for sn := range snSet {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })

	remaining := len(sns)
	if remaining == 0 {
		finish()
		return
	}
	for _, sn := range sns {
		c.dissolveStripe(sn, func() {
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
}

// dissolveStripe migrates every live chunk of a stripe into GC-class
// stripes and releases the old stripe. Its live blocks are pinned for the
// duration so in-place updates cannot race the migration reads.
func (c *Core) dissolveStripe(sn int64, done func()) {
	se := c.smt[sn]
	if se == nil {
		done()
		return
	}
	// Claim the stripe: later rewrites of its blocks append elsewhere (the
	// bmt guard in migrate() then skips them). An in-place update already in
	// flight mutates slot content without remapping — invisible to that
	// guard — so wait for it to finish before capturing the live set.
	se.dissolving = true
	if se.ipBusy {
		se.ipq = append(se.ipq, func() { c.dissolveStripe(sn, done) })
		return
	}
	if !se.sealed {
		// The stripe is still open: seal it short. Its partial parity is
		// the valid parity of the chunks written so far.
		se.sealed = true
		for class := Class(0); class < numClasses; class++ {
			if st := c.open[class]; st != nil && st.sn == sn {
				c.open[class] = nil
			}
		}
	}
	type migrant struct {
		lbn int64
		p   pa
	}
	var live []migrant
	for i, lbn := range se.lbns {
		if lbn >= 0 && se.chunks[i].dev >= 0 {
			live = append(live, migrant{lbn: lbn, p: se.chunks[i]})
			c.gcPinned[lbn] = true
		}
	}
	if len(live) == 0 {
		if se.pending == 0 {
			c.releaseStripe(sn, se)
		}
		done()
		return
	}
	remaining := len(live)
	finishOne := func(lbn int64) {
		delete(c.gcPinned, lbn)
		remaining--
		if remaining > 0 {
			return
		}
		// All live chunks rehomed; the old stripe died through the
		// invalidate() calls of the migrations. If it still lingers
		// (pending completions), release explicitly once safe.
		if se2 := c.smt[sn]; se2 != nil && se2.valid == 0 && se2.pending == 0 {
			c.releaseStripe(sn, se2)
		}
		done()
	}
	migrate := func(lbn int64, p pa, data []byte) {
		// The block may have been rewritten while the read was in flight
		// (pinning stops in-place updates, but a fresh append can still
		// supersede it).
		if cur, ok := c.bmt[lbn]; !ok || cur.pa != p {
			finishOne(lbn)
			return
		}
		c.gcMigrated += uint64(c.blockSize)
		c.writeChunk(lbn, data, nil, classGC, zns.TagGCData, func(error) {
			finishOne(lbn)
		})
	}
	for _, m := range live {
		m := m
		if c.failed[m.p.dev] {
			// Source member is gone (rebuild path): reconstruct the chunk
			// from the stripe's survivors instead of reading it.
			c.reconstructChunk(m.lbn, func(data []byte, err error) {
				if err != nil {
					finishOne(m.lbn)
					return
				}
				migrate(m.lbn, m.p, data)
			})
			continue
		}
		c.devs[m.p.dev].q.Read(m.p.zone, m.p.off, 1, func(r zns.ReadResult) {
			if r.Err != nil {
				c.noteIOError(m.p.dev, r.Err)
				if storerr.Reconstructable(r.Err) {
					// The source member died (or rotted) under the read:
					// rebuild the chunk from the survivors instead.
					c.reconstructChunk(m.lbn, func(data []byte, err error) {
						if err != nil {
							finishOne(m.lbn)
							return
						}
						migrate(m.lbn, m.p, data)
					})
					return
				}
			}
			migrate(m.lbn, m.p, r.Data)
		})
	}
}
