package core

import (
	"testing"

	"biza/internal/blockdev"
	"biza/internal/sim"
	"biza/internal/zns"
)

// wbsync submits one pooled, refcounted payload through WriteBuf and
// drains the engine. The single reference Get returned transfers to the
// engine; the workload keeps nothing.
func wbsync(t *testing.T, eng *sim.Engine, c *Core, lba int64, n int, stamp byte) {
	t.Helper()
	b := c.pool.Get(n*c.blockSize, 0)
	fill := b.Bytes()
	for i := range fill {
		fill[i] = stamp
	}
	var res blockdev.WriteResult
	ok := false
	c.WriteBuf(lba, n, b, func(r blockdev.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		t.Fatalf("WriteBuf(%d, %d) did not complete", lba, n)
	}
	if res.Err != nil {
		t.Fatalf("WriteBuf(%d, %d): %v", lba, n, res.Err)
	}
}

func totalBufCopied(devs []*zns.Device) uint64 {
	var t uint64
	for _, d := range devs {
		t += d.Stats().BufCopiedBytes
	}
	return t
}

// TestZeroCopyUserDataPath is the structural zero-copy gate. It runs the
// identical steady-state full-stripe workload twice — once with
// caller-owned []byte payloads (the device must defensively copy every
// user block at setData) and once with refcounted pooled payloads (the
// copy becomes a refcount hold) — and asserts the difference in the flash
// models' BufCopiedBytes is exactly the user payload volume. Parity is
// generated internally and still copied on both runs (partial parity
// mid-stripe plus the final issue at seal), so the differential form pins
// user-data copy elimination without depending on parity cadence.
func TestZeroCopyUserDataPath(t *testing.T) {
	const stripes = 64
	run := func(pooled bool) (userBytes, copied uint64, c *Core, devs []*zns.Device, eng *sim.Engine) {
		eng, c, devs = newCore(t, func(cfg *Config, dcfgs *[]zns.Config) {
			cfg.MaxBatchBlocks = 1 // no gather: payloads pass through by reference
			for i := range *dcfgs {
				(*dcfgs)[i].StoreData = true
			}
		})
		k := c.nData
		span := c.Blocks() / 2
		for lba := int64(0); lba+int64(k) <= span; lba += int64(k) {
			wsync(eng, c, lba, k, nil)
		}
		before := totalBufCopied(devs)
		lba := int64(0)
		for i := 0; i < stripes; i++ {
			if pooled {
				wbsync(t, eng, c, lba, k, byte(lba+1))
			} else {
				data := make([]byte, k*c.blockSize)
				for j := range data {
					data[j] = byte(lba + 1)
				}
				if res := wsync(eng, c, lba, k, data); res.Err != nil {
					t.Fatalf("Write(%d): %v", lba, res.Err)
				}
			}
			lba += int64(k)
			if lba+int64(k) > span {
				lba = 0
			}
		}
		userBytes = uint64(stripes) * uint64(k) * uint64(c.blockSize)
		copied = totalBufCopied(devs) - before
		return
	}

	_, copiedPlain, _, _, _ := run(false)
	userBytes, copiedPooled, c, _, eng := run(true)
	if copiedPlain-copiedPooled != userBytes {
		t.Fatalf("pooled run eliminated %d copied bytes, want exactly the user volume %d (plain %d, pooled %d)",
			copiedPlain-copiedPooled, userBytes, copiedPlain, copiedPooled)
	}

	// The borrowed bytes must be the ones the flash retains: read one of
	// the stamped stripes back and compare.
	checkLBA := int64(0)
	var rres blockdev.ReadResult
	rok := false
	c.Read(checkLBA, 1, func(r blockdev.ReadResult) { rres = r; rok = true })
	eng.Run()
	if !rok || rres.Err != nil {
		t.Fatalf("readback: ok=%v err=%v", rok, rres.Err)
	}
	want := byte(checkLBA + 1)
	for i, v := range rres.Data {
		if v != want {
			t.Fatalf("readback byte %d = %#x, want %#x: zero-copy path lost payload content", i, v, want)
		}
	}
}

// TestZeroCopyNoLeaks drains a pooled-payload run and checks every
// refcounted buffer came home: Live()==0 means each transferred
// reference was released exactly once across the engine, driver queue,
// and flash-model buffer — on success, retry, and harden paths alike.
func TestZeroCopyNoLeaks(t *testing.T) {
	eng, c, _ := newCore(t, func(cfg *Config, dcfgs *[]zns.Config) {
		for i := range *dcfgs {
			(*dcfgs)[i].StoreData = false
		}
	})
	c.pool.SetPoison(true)
	k := c.nData
	span := c.Blocks() / 4
	lba := int64(0)
	// Mixed sizes: full stripes, sub-chunk in-place updates, unaligned
	// spans — every write-path branch moves references around.
	sizes := []int{k, 1, 2*k + 1, k - 1, k}
	for i := 0; i < 200; i++ {
		n := sizes[i%len(sizes)]
		if lba+int64(n) > span {
			lba = 0
		}
		wbsync(t, eng, c, lba, n, byte(i))
		lba += int64(n)
	}
	c.Flush()
	eng.Run()
	if live := c.pool.Live(); live != 0 {
		t.Fatalf("%d refcounted buffers still held after drain: a layer is leaking references", live)
	}
}
