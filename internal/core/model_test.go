package core

// Model-based randomized testing: drive the engine with random writes,
// overwrites, trims, reads, and crash-recovery cycles, checking every
// result against an in-memory reference model. This is the strongest
// correctness net over the interacting mechanisms (in-place updates,
// stripe formation, GC dissolution, OOB recovery).

import (
	"bytes"
	"fmt"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/fault"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func modelPattern(lba int64, version int, bs int) []byte {
	b := make([]byte, bs)
	for i := range b {
		b[i] = byte(lba) ^ byte(version*37) ^ byte(i*11)
	}
	return b
}

func TestModelRandomizedWithRecovery(t *testing.T) {
	eng := sim.NewEngine()
	dcfgs := make([]zns.Config, 4)
	var devs []*zns.Device
	var queues []*nvme.Queue
	for i := range dcfgs {
		dcfgs[i] = devConfig()
		dcfgs[i].NumZones = 48
		dcfgs[i].Seed = uint64(i) + 5
		d, err := zns.New(eng, dcfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond, Seed: uint64(i) + 55,
		}))
	}
	ccfg := DefaultConfig(48)
	c, err := New(queues, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := sim.NewRNG(2024)
	span := c.Blocks() / 4
	version := make(map[int64]int) // reference model: lba -> version written
	bs := c.blockSize

	writeN := func(lba int64, n int) {
		data := make([]byte, n*bs)
		for i := 0; i < n; i++ {
			v := version[lba+int64(i)] + 1
			version[lba+int64(i)] = v
			copy(data[i*bs:], modelPattern(lba+int64(i), v, bs))
		}
		var werr error
		ok := false
		c.Write(lba, n, data, func(r blockdev.WriteResult) { werr = r.Err; ok = true })
		eng.Run()
		if !ok || werr != nil {
			t.Fatalf("write lba=%d n=%d: ok=%v err=%v", lba, n, ok, werr)
		}
	}
	checkN := func(lba int64, n int) {
		var got []byte
		var rerr error
		c.Read(lba, n, func(r blockdev.ReadResult) { got, rerr = r.Data, r.Err })
		eng.Run()
		if rerr != nil {
			t.Fatalf("read lba=%d n=%d: %v", lba, n, rerr)
		}
		for i := 0; i < n; i++ {
			blk := lba + int64(i)
			want := make([]byte, bs)
			if v, ok := version[blk]; ok && v > 0 {
				want = modelPattern(blk, v, bs)
			}
			if !bytes.Equal(got[i*bs:(i+1)*bs], want) {
				t.Fatalf("model mismatch at lba %d (version %d)", blk, version[blk])
			}
		}
	}

	const steps = 4000
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // write 1-4 blocks, biased hot
			n := 1 + rng.Intn(4)
			var lba int64
			if rng.Intn(2) == 0 {
				lba = rng.Int63n(64) // hot region: exercises in-place
			} else {
				lba = rng.Int63n(span - int64(n))
			}
			writeN(lba, n)
		case 5, 6, 7: // read-verify a random written region
			n := 1 + rng.Intn(4)
			lba := rng.Int63n(span - int64(n))
			checkN(lba, n)
		case 8: // trim
			n := 1 + rng.Intn(4)
			lba := rng.Int63n(span - int64(n))
			c.Trim(lba, n)
			for j := 0; j < n; j++ {
				delete(version, lba+int64(j))
			}
		case 9: // occasionally crash and recover
			if i%1000 != 999 {
				continue
			}
			eng.Run()
			var nq []*nvme.Queue
			for k, d := range devs {
				nq = append(nq, nvme.New(d, nvme.Config{
					ReorderWindow: 5 * sim.Microsecond, Seed: uint64(k*7 + i),
				}))
			}
			var rc *Core
			var rerr error
			Recover(nq, ccfg, nil, func(n *Core, err error) { rc, rerr = n, err })
			eng.Run()
			if rerr != nil {
				t.Fatalf("recovery at step %d: %v", i, rerr)
			}
			c = rc
			queues = nq
		}
	}
	// Final full sweep over the hot region plus samples.
	checkN(0, 64)
	for i := 0; i < 50; i++ {
		checkN(rng.Int63n(span-4), 4)
	}
	if c.GCEvents() == 0 {
		t.Log("note: GC did not trigger in this run")
	}
}

func TestModelDegradedSweep(t *testing.T) {
	// Write a model data set, then verify every block under each
	// single-device failure.
	eng, c, _ := newCore(t, nil)
	rng := sim.NewRNG(31337)
	version := make(map[int64]int)
	bs := c.blockSize
	span := int64(256)
	for i := 0; i < 1200; i++ {
		lba := rng.Int63n(span)
		v := version[lba] + 1
		version[lba] = v
		ok := false
		c.Write(lba, 1, modelPattern(lba, v, bs), func(r blockdev.WriteResult) { ok = r.Err == nil })
		eng.Run()
		if !ok {
			t.Fatalf("write %d failed", lba)
		}
	}
	for dev := 0; dev < 4; dev++ {
		c.SetDeviceFailed(dev, true)
		for lba := int64(0); lba < span; lba += 3 {
			v, ok := version[lba]
			if !ok {
				continue
			}
			var got []byte
			var rerr error
			c.Read(lba, 1, func(r blockdev.ReadResult) { got, rerr = r.Data, r.Err })
			eng.Run()
			if rerr != nil {
				t.Fatalf("dev %d failed, lba %d: %v", dev, lba, rerr)
			}
			if !bytes.Equal(got, modelPattern(lba, v, bs)) {
				t.Fatalf("dev %d failed, lba %d: wrong content (v%d)", dev, lba, v)
			}
		}
		c.SetDeviceFailed(dev, false)
	}
}

func TestModelConcurrentDepth(t *testing.T) {
	// Concurrent in-flight writes to DISTINCT blocks with verification
	// after drain: exercises the scheduler under reordering with payloads.
	eng, c, _ := newCore(t, nil)
	bs := c.blockSize
	const n = 600
	for round := 0; round < 3; round++ {
		outstanding := 0
		for i := 0; i < n; i++ {
			lba := int64(i)
			outstanding++
			c.Write(lba, 1, modelPattern(lba, round+1, bs), func(r blockdev.WriteResult) {
				if r.Err != nil {
					t.Errorf("write %d: %v", lba, r.Err)
				}
				outstanding--
			})
		}
		eng.Run()
		if outstanding != 0 {
			t.Fatalf("round %d: %d writes hung", round, outstanding)
		}
	}
	for i := 0; i < n; i += 17 {
		var got []byte
		c.Read(int64(i), 1, func(r blockdev.ReadResult) { got = r.Data })
		eng.Run()
		if !bytes.Equal(got, modelPattern(int64(i), 3, bs)) {
			t.Fatalf("lba %d: stale content after concurrent rounds", i)
		}
	}
	_ = fmt.Sprint
}

func TestModelChaosWithFaults(t *testing.T) {
	// The randomized model checker under an adversarial fault schedule:
	// transient errors on every member, a latency spike on one, and a
	// mid-run member death followed by a hot-swap — every read result is
	// still checked byte-for-byte against the reference model.
	eng, c, _ := newCore(t, nil)
	const deadDev = 3
	plan, err := fault.Compile(&fault.Spec{Rules: []fault.Rule{
		fault.TransientErrors(-1, fault.AnyOp, 0.01),
		{Kind: fault.Latency, Dev: 1, Op: fault.Read, Delay: 30 * sim.Microsecond},
		{Kind: fault.DeviceDeath, Dev: deadDev, AfterOps: 2500},
	}}, 4242, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, ds := range c.devs {
		ds.q.SetInjector(plan.Injector(i))
	}

	rng := sim.NewRNG(777)
	version := make(map[int64]int)
	bs := c.blockSize
	span := int64(300)
	writeN := func(lba int64, n int) {
		data := make([]byte, n*bs)
		for i := 0; i < n; i++ {
			v := version[lba+int64(i)] + 1
			version[lba+int64(i)] = v
			copy(data[i*bs:], modelPattern(lba+int64(i), v, bs))
		}
		var werr error
		ok := false
		c.Write(lba, n, data, func(r blockdev.WriteResult) { werr = r.Err; ok = true })
		eng.Run()
		if !ok || werr != nil {
			t.Fatalf("chaos write lba=%d n=%d: ok=%v err=%v", lba, n, ok, werr)
		}
	}
	checkN := func(lba int64, n int) {
		var got []byte
		var rerr error
		c.Read(lba, n, func(r blockdev.ReadResult) { got, rerr = r.Data, r.Err })
		eng.Run()
		if rerr != nil {
			t.Fatalf("chaos read lba=%d n=%d: %v", lba, n, rerr)
		}
		for i := 0; i < n; i++ {
			blk := lba + int64(i)
			want := make([]byte, bs)
			if v, ok := version[blk]; ok && v > 0 {
				want = modelPattern(blk, v, bs)
			}
			if !bytes.Equal(got[i*bs:(i+1)*bs], want) {
				t.Fatalf("chaos model mismatch at lba %d (version %d)", blk, version[blk])
			}
		}
	}

	const steps = 2500
	replaced := false
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			n := 1 + rng.Intn(4)
			var lba int64
			if rng.Intn(2) == 0 {
				lba = rng.Int63n(48)
			} else {
				lba = rng.Int63n(span - int64(n))
			}
			writeN(lba, n)
		case 5, 6, 7, 8:
			n := 1 + rng.Intn(4)
			checkN(rng.Int63n(span-int64(n)), n)
		case 9:
			n := 1 + rng.Intn(4)
			lba := rng.Int63n(span - int64(n))
			c.Trim(lba, n)
			for j := 0; j < n; j++ {
				delete(version, lba+int64(j))
			}
		}
		// Once the scheduled death lands, swap in a spare mid-run (the
		// spare sits outside the fault plan).
		if !replaced && c.Health()[deadDev] == MemberDegraded {
			dc := devConfig()
			dc.Seed = 31000
			nd, err := zns.New(eng, dc)
			if err != nil {
				t.Fatal(err)
			}
			nq := nvme.New(nd, nvme.Config{ReorderWindow: 5 * sim.Microsecond, Seed: 31001})
			var rerr error
			okR := false
			c.ReplaceDevice(deadDev, nq, func(err error) { rerr = err; okR = true })
			eng.Run()
			if !okR || rerr != nil {
				t.Fatalf("chaos replace at step %d: ok=%v err=%v", i, okR, rerr)
			}
			replaced = true
		}
	}
	if !replaced {
		t.Fatal("fault schedule never killed the member — chaos run degenerate")
	}
	if plan.Injector(0).Injected() == 0 {
		t.Fatal("no transient faults injected — chaos run degenerate")
	}
	// Full verification sweep against the model.
	for lba := int64(0); lba < span; lba++ {
		if v, ok := version[lba]; ok && v > 0 {
			checkN(lba, 1)
		}
	}
}
