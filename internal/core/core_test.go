package core

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

func devConfig() zns.Config {
	cfg := zns.TestConfig()
	cfg.MaxOpenZones = 12 // room for 4 class groups x 2 zones + slack
	return cfg
}

func newCore(t *testing.T, mutate func(*Config, *[]zns.Config)) (*sim.Engine, *Core, []*zns.Device) {
	t.Helper()
	eng := sim.NewEngine()
	dcfgs := make([]zns.Config, 4)
	for i := range dcfgs {
		dcfgs[i] = devConfig()
		dcfgs[i].Seed = uint64(i)
	}
	ccfg := DefaultConfig(dcfgs[0].NumZones)
	if mutate != nil {
		mutate(&ccfg, &dcfgs)
	}
	var queues []*nvme.Queue
	var devs []*zns.Device
	for i := range dcfgs {
		d, err := zns.New(eng, dcfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		queues = append(queues, nvme.New(d, nvme.Config{
			ReorderWindow: 5 * sim.Microsecond,
			Seed:          uint64(i) + 77,
		}))
	}
	c, err := New(queues, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c, devs
}

func wsync(eng *sim.Engine, c *Core, lba int64, n int, data []byte) blockdev.WriteResult {
	var res blockdev.WriteResult
	ok := false
	c.Write(lba, n, data, func(r blockdev.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("core write hung")
	}
	return res
}

func rsync(eng *sim.Engine, c *Core, lba int64, n int) blockdev.ReadResult {
	var res blockdev.ReadResult
	ok := false
	c.Read(lba, n, func(r blockdev.ReadResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("core read hung")
	}
	return res
}

func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*31)
	}
	return b
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	d, _ := zns.New(eng, devConfig())
	q := nvme.New(d, nvme.Config{})
	if _, err := New([]*nvme.Queue{q, q}, DefaultConfig(64), nil); err == nil {
		t.Fatal("accepted 2 members")
	}
	// No-ZRWA devices are rejected.
	nc := devConfig()
	nc.ZRWABlocks = 0
	d2, _ := zns.New(eng, nc)
	q2 := nvme.New(d2, nvme.Config{})
	if _, err := New([]*nvme.Queue{q2, q2, q2, q2}, DefaultConfig(64), nil); err == nil {
		t.Fatal("accepted ZRWA-less members")
	}
}

func TestWriteReadRoundTripSequential(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	payload := pat(1, 48*4096)
	if r := wsync(eng, c, 0, 48, payload); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, c, 0, 48)
	if r.Err != nil || !bytes.Equal(r.Data, payload) {
		t.Fatalf("round trip mismatch err=%v", r.Err)
	}
}

func TestWriteReadRoundTripRandom(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	lbas := []int64{500, 3, 999, 250, 0, 77}
	for i, lba := range lbas {
		if r := wsync(eng, c, lba, 1, pat(byte(i+1), 4096)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for i, lba := range lbas {
		r := rsync(eng, c, lba, 1)
		if !bytes.Equal(r.Data, pat(byte(i+1), 4096)) {
			t.Fatalf("lba %d mismatch", lba)
		}
	}
}

func TestOverwriteVisibility(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	for i := 0; i < 8; i++ {
		wsync(eng, c, 42, 1, pat(byte(i), 4096))
	}
	r := rsync(eng, c, 42, 1)
	if !bytes.Equal(r.Data, pat(7, 4096)) {
		t.Fatal("overwrite not visible")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	r := rsync(eng, c, 123, 4)
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("unwritten not zero")
		}
	}
}

func TestOutOfRange(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	if r := wsync(eng, c, c.Blocks(), 1, nil); !errors.Is(r.Err, blockdev.ErrOutOfRange) {
		t.Fatalf("err = %v", r.Err)
	}
}

func TestInPlaceAbsorption(t *testing.T) {
	// A hot block rewritten many times must be absorbed in ZRWA: device
	// flash programs stay far below issued writes.
	eng, c, devs := newCore(t, nil)
	for i := 0; i < 100; i++ {
		wsync(eng, c, 7, 1, pat(byte(i), 4096))
	}
	if c.InPlaceHits() == 0 {
		t.Fatal("no in-place updates")
	}
	var absorbed uint64
	for _, d := range devs {
		absorbed += d.Stats().AbsorbedBytes
	}
	if absorbed == 0 {
		t.Fatal("device absorbed nothing")
	}
	r := rsync(eng, c, 7, 1)
	if !bytes.Equal(r.Data, pat(99, 4096)) {
		t.Fatal("hot block content wrong")
	}
}

func TestPartialParityAbsorbedInZRWA(t *testing.T) {
	// Sequential writes form stripes; every chunk updates the partial
	// parity in place. Parity flash programs must be close to one block
	// per stripe, not one per chunk.
	eng, c, devs := newCore(t, nil)
	const blocks = 300
	for lba := int64(0); lba < blocks; lba += 4 {
		wsync(eng, c, lba, 4, pat(byte(lba), 4*4096))
	}
	eng.Run()
	var parityFlash, parityAbsorbed uint64
	for _, d := range devs {
		parityFlash += d.Stats().ProgrammedByTag(zns.TagParity)
	}
	_ = parityAbsorbed
	// 300 chunks = 100 stripes; parity writes issued ~300, flash programs
	// should be near 100 blocks once zones flush (some still buffered).
	if parityFlash > 150*4096 {
		t.Fatalf("parity flash %d bytes — partial parities not absorbed", parityFlash)
	}
	// Parity writes issued: at least one per stripe (coalescing may merge
	// same-stripe updates that were in flight together).
	if c.parityBytes < 100*4096 {
		t.Fatalf("parity writes issued = %d bytes, want >= 100 blocks", c.parityBytes)
	}
}

func TestStripeParityConsistency(t *testing.T) {
	// After sealing, parity slot content must equal XOR of the stripe's
	// chunk slot contents (read back through the engine's own tables).
	eng, c, _ := newCore(t, nil)
	payload := pat(3, 3*4096)
	wsync(eng, c, 0, 3, payload) // exactly one stripe (nData=3)
	eng.Run()
	var se *smtEntry
	for _, e := range c.smt {
		if e.sealed && e.valid == 3 {
			se = e
			break
		}
	}
	if se == nil {
		t.Fatal("no sealed stripe found")
	}
	want := make([]byte, 4096)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4096; j++ {
			want[j] ^= payload[i*4096+j]
		}
	}
	var got []byte
	pp := se.parity[0]
	c.devs[pp.dev].q.Read(pp.zone, pp.off, 1, func(r zns.ReadResult) { got = r.Data })
	eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatal("sealed parity != XOR of chunks")
	}
}

func TestSlidingWindowSurvivesReordering(t *testing.T) {
	// Deep async burst through a jittery driver queue: the window
	// scheduler must produce zero write failures.
	eng, c, _ := newCore(t, nil)
	failures, completions := 0, 0
	for i := 0; i < 400; i++ {
		c.Write(int64(i%150), 1, nil, func(r blockdev.WriteResult) {
			completions++
			if r.Err != nil {
				failures++
			}
		})
	}
	eng.Run()
	if completions != 400 {
		t.Fatalf("completions = %d", completions)
	}
	if failures != 0 {
		t.Fatalf("%d write failures — window scheduler broken", failures)
	}
}

func TestSelectorClassifiesHotBlocks(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	// Rewrite a small hot set with short reuse distance; the ghost cache
	// must promote and the selector place them as ZRWA class.
	for round := 0; round < 8; round++ {
		for lba := int64(0); lba < 4; lba++ {
			wsync(eng, c, lba, 1, nil)
		}
	}
	hp := 0
	for lba := int64(0); lba < 4; lba++ {
		if c.ghost.Level(uint64(lba)) == 3 { // LevelHP
			hp++
		}
	}
	if hp == 0 {
		t.Fatal("no hot block reached HP")
	}
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	span := c.Blocks() / 3
	rng := sim.NewRNG(5)
	written := make(map[int64]bool)
	for i := 0; i < int(span)*4; i++ {
		lba := rng.Int63n(span)
		if r := wsync(eng, c, lba, 1, pat(byte(lba), 4096)); r.Err != nil {
			t.Fatalf("write %d: %v", lba, r.Err)
		}
		written[lba] = true
	}
	eng.Run()
	if c.GCEvents() == 0 {
		t.Fatal("GC never ran")
	}
	for lba := int64(0); lba < span; lba += 13 {
		if !written[lba] {
			continue
		}
		r := rsync(eng, c, lba, 1)
		if r.Err != nil {
			t.Fatalf("read %d: %v", lba, r.Err)
		}
		if !bytes.Equal(r.Data, pat(byte(lba), 4096)) {
			t.Fatalf("data corrupted at %d", lba)
		}
	}
}

func TestDegradedReadReconstructs(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	payload := pat(9, 12*4096)
	wsync(eng, c, 0, 12, payload)
	eng.Run()
	for dev := 0; dev < 4; dev++ {
		if err := c.SetDeviceFailed(dev, true); err != nil {
			t.Fatal(err)
		}
		r := rsync(eng, c, 0, 12)
		if r.Err != nil {
			t.Fatalf("degraded read with dev %d failed: %v", dev, r.Err)
		}
		if !bytes.Equal(r.Data, payload) {
			t.Fatalf("degraded reconstruction wrong with dev %d down", dev)
		}
		c.SetDeviceFailed(dev, false)
	}
}

func TestDegradedReadAfterOverwrites(t *testing.T) {
	// Stale chunks feed parity: reconstruction must survive overwrites.
	eng, c, _ := newCore(t, nil)
	for i := 0; i < 6; i++ {
		wsync(eng, c, int64(i), 1, pat(byte(i), 4096))
	}
	// Overwrite some blocks (their old slots become stale but remain).
	wsync(eng, c, 1, 1, pat(101, 4096))
	wsync(eng, c, 3, 1, pat(103, 4096))
	eng.Run()
	for dev := 0; dev < 4; dev++ {
		c.SetDeviceFailed(dev, true)
		for _, check := range []struct {
			lba  int64
			seed byte
		}{{0, 0}, {1, 101}, {2, 2}, {3, 103}, {4, 4}, {5, 5}} {
			r := rsync(eng, c, check.lba, 1)
			if r.Err != nil {
				t.Fatalf("dev %d down, lba %d: %v", dev, check.lba, r.Err)
			}
			if !bytes.Equal(r.Data, pat(check.seed, 4096)) {
				t.Fatalf("dev %d down, lba %d wrong content", dev, check.lba)
			}
		}
		c.SetDeviceFailed(dev, false)
	}
}

func TestTrim(t *testing.T) {
	eng, c, _ := newCore(t, nil)
	wsync(eng, c, 10, 4, pat(1, 4*4096))
	c.Trim(10, 4)
	r := rsync(eng, c, 10, 4)
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("trimmed data still readable")
		}
	}
}

func TestChannelDetectionCorrectsShuffledZones(t *testing.T) {
	eng, c, _ := newCore(t, func(cfg *Config, dcfgs *[]zns.Config) {
		for i := range *dcfgs {
			(*dcfgs)[i].ShuffleFraction = 0.5
			(*dcfgs)[i].Seed = uint64(i) + 11
		}
	})
	// Churn enough to force repeated GC cycles with user traffic racing
	// them: spikes on mispredicted zones should cast votes.
	span := c.Blocks() / 3
	rng := sim.NewRNG(9)
	outstanding := 0
	for i := 0; i < int(span)*6; i++ {
		outstanding++
		c.Write(rng.Int63n(span), 1, nil, func(blockdev.WriteResult) { outstanding-- })
		if i%8 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if outstanding != 0 {
		t.Fatalf("%d writes hung", outstanding)
	}
	if c.GCEvents() == 0 {
		t.Fatal("setup failed to trigger GC")
	}
	if c.DetectCorrections() == 0 {
		t.Fatal("vote-based detector never corrected a shuffled zone")
	}
}

func TestRecoveryRestoresData(t *testing.T) {
	eng, c, devs := newCore(t, nil)
	rng := sim.NewRNG(31)
	want := map[int64]byte{}
	for i := 0; i < 600; i++ {
		lba := rng.Int63n(c.Blocks() / 4)
		seed := byte(i)
		if r := wsync(eng, c, lba, 1, pat(seed, 4096)); r.Err == nil {
			want[lba] = seed
		}
	}
	eng.Run()
	// Crash: discard the host engine, rebuild from the devices' OOB.
	var queues []*nvme.Queue
	for i, d := range devs {
		queues = append(queues, nvme.New(d, nvme.Config{Seed: uint64(i) + 500}))
	}
	var rc *Core
	var rerr error
	Recover(queues, DefaultConfig(devConfig().NumZones), nil, func(nc *Core, err error) {
		rc, rerr = nc, err
	})
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if rc == nil {
		t.Fatal("recovery did not complete")
	}
	for lba, seed := range want {
		r := rsync(eng, rc, lba, 1)
		if r.Err != nil {
			t.Fatalf("post-recovery read %d: %v", lba, r.Err)
		}
		if !bytes.Equal(r.Data, pat(seed, 4096)) {
			t.Fatalf("post-recovery content wrong at %d", lba)
		}
	}
	// The recovered array must accept new writes.
	if r := wsync(eng, rc, 0, 4, pat(200, 4*4096)); r.Err != nil {
		t.Fatalf("post-recovery write: %v", r.Err)
	}
	r := rsync(eng, rc, 0, 4)
	if !bytes.Equal(r.Data, pat(200, 4*4096)) {
		t.Fatal("post-recovery write not visible")
	}
}

func TestSelectorAblationIncreasesFlashWrites(t *testing.T) {
	// With the selector off, hot chunks mix with cold ones and fewer
	// updates are absorbed: flash programs grow (Fig. 14's
	// BIZAw/oSelector bar).
	run := func(selector bool) uint64 {
		eng, c, devs := newCore(t, func(cfg *Config, _ *[]zns.Config) {
			cfg.EnableSelector = selector
		})
		rng := sim.NewRNG(17)
		hotSpan := int64(32)
		coldSpan := c.Blocks() / 3
		for i := 0; i < 6000; i++ {
			var lba int64
			if i%2 == 0 {
				lba = rng.Int63n(hotSpan) // hot half: short reuse distance
			} else {
				lba = hotSpan + rng.Int63n(coldSpan)
			}
			wsync(eng, c, lba, 1, nil)
		}
		eng.Run()
		var programmed uint64
		for _, d := range devs {
			programmed += d.Stats().TotalProgrammed()
		}
		return programmed
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("selector did not reduce flash writes: with=%d without=%d", with, without)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		eng, c, _ := newCore(t, nil)
		rng := sim.NewRNG(23)
		for i := 0; i < 2000; i++ {
			wsync(eng, c, rng.Int63n(c.Blocks()/4), 1, nil)
		}
		eng.Run()
		return c.userBytes, c.parityBytes, c.GCEvents()
	}
	u1, p1, g1 := run()
	u2, p2, g2 := run()
	if u1 != u2 || p1 != p2 || g1 != g2 {
		t.Fatal("replay diverged")
	}
}
