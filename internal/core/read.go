package core

import (
	"errors"
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/cpumodel"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/storerr"
	"biza/internal/zns"
)

// ErrUnrecoverable reports a degraded read that cannot be reconstructed.
var ErrUnrecoverable = errors.New("core: chunk unrecoverable (stripe incomplete)")

// SetDeviceFailed marks a member failed; subsequent reads of its chunks
// reconstruct from the surviving stripe members (degraded mode).
func (c *Core) SetDeviceFailed(dev int, failed bool) error {
	if dev < 0 || dev >= len(c.devs) {
		return fmt.Errorf("core: device %d out of range: %w", dev, storerr.ErrNotFound)
	}
	c.failed[dev] = failed
	return nil
}

// Read implements blockdev.Device: BMT lookups, coalesced per-zone reads,
// and parity reconstruction for chunks on failed members.
func (c *Core) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	start := c.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > c.Blocks() {
		if done != nil {
			c.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Err: blockdev.ErrOutOfRange, Latency: c.eng.Now() - start})
			})
		}
		return
	}
	bs := c.chunkBytes()
	var span obs.SpanID
	if c.tr != nil {
		span = c.tr.SpanBegin(int64(start), obs.LayerBIZA, obs.OpRead, -1, -1, lba, int64(nblocks))
		innerDone := done
		done = func(r blockdev.ReadResult) {
			c.tr.SpanEnd(span, int64(c.eng.Now()), r.Err != nil)
			if innerDone != nil {
				innerDone(r)
			}
		}
	}
	var buf []byte
	if c.StoresData() {
		buf = make([]byte, int64(nblocks)*bs)
	}
	// Coalesce per (device, zone): chunks of a striped logical range land
	// at consecutive zone offsets on each member even though their buffer
	// positions interleave, so each run carries its blocks' buffer indices
	// for de-striping (one device command per run, the block layer's
	// request merging).
	type runT struct {
		dev, zone int
		off       int64
		bufIdx    []int64
	}
	var runs []runT
	lastRun := map[[2]int]int{} // (dev,zone) -> index of its latest run
	var degraded []int64        // buffer block indices needing reconstruction
	for i := int64(0); i < int64(nblocks); i++ {
		e, ok := c.bmt[lba+i]
		if !ok {
			continue // unwritten reads as zeros
		}
		if c.failed[e.pa.dev] {
			degraded = append(degraded, i)
			continue
		}
		key := [2]int{e.pa.dev, e.pa.zone}
		if li, ok := lastRun[key]; ok {
			r := &runs[li]
			if r.off+int64(len(r.bufIdx)) == e.pa.off {
				r.bufIdx = append(r.bufIdx, i)
				continue
			}
		}
		runs = append(runs, runT{dev: e.pa.dev, zone: e.pa.zone, off: e.pa.off, bufIdx: []int64{i}})
		lastRun[key] = len(runs) - 1
	}
	outstanding := len(runs) + len(degraded)
	if outstanding == 0 {
		if done != nil {
			c.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Data: buf, Latency: c.eng.Now() - start})
			})
		}
		return
	}
	var firstErr error
	finishOne := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 && done != nil {
			done(blockdev.ReadResult{Err: firstErr, Data: buf, Latency: c.eng.Now() - start})
		}
	}
	for _, r := range runs {
		r := r
		c.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
		c.devs[r.dev].q.Read(r.zone, r.off, len(r.bufIdx), func(res zns.ReadResult) {
			if res.Err != nil {
				c.noteIOError(r.dev, res.Err)
				if storerr.Reconstructable(res.Err) {
					// The member died (or the blocks rotted) under this
					// read: serve each block through parity instead.
					outstanding += len(r.bufIdx) - 1
					for _, idx := range r.bufIdx {
						idx := idx
						c.reconstructChunk(lba+idx, func(data []byte, err error) {
							if data != nil && buf != nil {
								copy(buf[idx*bs:(idx+1)*bs], data)
							}
							finishOne(err)
						})
					}
					return
				}
			}
			if res.Data != nil {
				for j, idx := range r.bufIdx {
					copy(buf[idx*bs:(idx+1)*bs], res.Data[int64(j)*bs:(int64(j)+1)*bs])
				}
			}
			finishOne(res.Err)
		})
	}
	for _, i := range degraded {
		i := i
		c.reconstructChunk(lba+i, func(data []byte, err error) {
			if data != nil && buf != nil {
				copy(buf[i*bs:], data)
			}
			finishOne(err)
		})
	}
}

// reconstructChunk rebuilds one chunk of a failed member from the
// stripe's surviving shards via the erasure code (plain XOR for RAID 5,
// Reed-Solomon beyond). Stale sibling slots still feed parity, so they
// are read too; chunk positions a short stripe never filled are
// zero shards by construction.
func (c *Core) reconstructChunk(lbn int64, done func([]byte, error)) {
	e, ok := c.bmt[lbn]
	if !ok {
		done(nil, nil)
		return
	}
	inner := done
	done = func(data []byte, err error) {
		c.noteReconstruct(e.pa.dev, lbn, err)
		inner(data, err)
	}
	se := c.smt[e.sn]
	if se == nil {
		done(nil, ErrUnrecoverable)
		return
	}
	k, m := c.nData, len(se.parity)
	shards := make([][]byte, k+m)
	type fetch struct {
		idx int
		p   pa
	}
	var fetches []fetch
	target := -1
	for i := 0; i < k; i++ {
		if i >= len(se.chunks) {
			shards[i] = make([]byte, c.blockSize) // never written: zero shard
			continue
		}
		p := se.chunks[i]
		if p == e.pa {
			target = i
			continue // the missing shard
		}
		if p.dev < 0 {
			shards[i] = make([]byte, c.blockSize)
			continue
		}
		if c.failed[p.dev] {
			continue // another missing shard; RS may still recover
		}
		fetches = append(fetches, fetch{idx: i, p: p})
	}
	if target < 0 {
		done(nil, ErrUnrecoverable)
		return
	}
	for r := 0; r < m; r++ {
		p := se.parity[r]
		if p.dev < 0 || c.failed[p.dev] {
			continue
		}
		fetches = append(fetches, fetch{idx: k + r, p: p})
	}
	remaining := len(fetches)
	if remaining == 0 {
		done(nil, ErrUnrecoverable)
		return
	}
	var firstErr error
	finish := func() {
		if firstErr != nil {
			done(nil, firstErr)
			return
		}
		if err := c.coder.Reconstruct(shards); err != nil {
			done(nil, ErrUnrecoverable)
			return
		}
		done(shards[target], nil)
	}
	for _, f := range fetches {
		f := f
		c.devs[f.p.dev].q.Read(f.p.zone, f.p.off, 1, func(r zns.ReadResult) {
			if r.Err != nil {
				c.noteIOError(f.p.dev, r.Err)
				// A reconstructable fetch failure just leaves this shard
				// missing — the code may still recover from the rest.
				if !storerr.Reconstructable(r.Err) && firstErr == nil {
					firstErr = r.Err
				}
			}
			if r.Data != nil {
				shards[f.idx] = r.Data
			} else if r.Err == nil {
				shards[f.idx] = make([]byte, c.blockSize)
			}
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
}
