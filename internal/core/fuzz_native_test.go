package core

import "testing"

// FuzzModelSweep drives the model sweep of fuzz_seed_test.go under Go's
// native fuzzer: for any seed, the engine must honor its write/trim/
// degraded-read contract on aged devices with reordering drivers. The
// checked-in corpus mirrors TestModelSeedSweep's seeds; CI runs a short
// smoke (-fuzz=Fuzz -fuzztime=10s), while local runs can fuzz longer to
// explore new schedules.
func FuzzModelSweep(f *testing.F) {
	for _, seed := range []uint64{101, 202, 303, 404} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runModelSweep(t, seed)
	})
}
