package raid

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutValidation(t *testing.T) {
	for _, bad := range []struct {
		d, p int
		c    int64
	}{{4, 4, 1}, {2, 2, 1}, {4, 0, 1}, {4, 1, 0}} {
		if _, err := NewLayout(bad.d, bad.p, bad.c); err == nil {
			t.Fatalf("accepted disks=%d parity=%d chunk=%d", bad.d, bad.p, bad.c)
		}
	}
	if _, err := NewLayout(4, 1, 16); err != nil {
		t.Fatal(err)
	}
}

func TestLeftAsymmetricRAID5Rotation(t *testing.T) {
	// Canonical left-asymmetric RAID 5 on 4 disks: parity on disk 3,2,1,0
	// for stripes 0,1,2,3, then repeating.
	l, _ := NewLayout(4, 1, 16)
	want := []int{3, 2, 1, 0, 3, 2, 1, 0}
	for s, w := range want {
		if got := l.ParityDisk(int64(s), 0); got != w {
			t.Fatalf("stripe %d parity disk = %d, want %d", s, got, w)
		}
	}
}

func TestDataDiskSkipsParity(t *testing.T) {
	l, _ := NewLayout(4, 1, 16)
	// Stripe 0: parity on 3 -> data on 0,1,2.
	for i, w := range []int{0, 1, 2} {
		if got := l.DataDisk(0, i); got != w {
			t.Fatalf("stripe0 chunk %d disk = %d, want %d", i, got, w)
		}
	}
	// Stripe 1: parity on 2 -> data on 0,1,3.
	for i, w := range []int{0, 1, 3} {
		if got := l.DataDisk(1, i); got != w {
			t.Fatalf("stripe1 chunk %d disk = %d, want %d", i, got, w)
		}
	}
}

func TestRAID6ParityPairsDistinct(t *testing.T) {
	l, _ := NewLayout(6, 2, 8)
	for s := int64(0); s < 12; s++ {
		p0, p1 := l.ParityDisk(s, 0), l.ParityDisk(s, 1)
		if p0 == p1 {
			t.Fatalf("stripe %d parity disks collide on %d", s, p0)
		}
		// Data + parity must cover all disks exactly once.
		seen := make(map[int]bool)
		seen[p0], seen[p1] = true, true
		for i := 0; i < l.DataDisks(); i++ {
			d := l.DataDisk(s, i)
			if seen[d] {
				t.Fatalf("stripe %d disk %d assigned twice", s, d)
			}
			seen[d] = true
		}
		if len(seen) != 6 {
			t.Fatalf("stripe %d covers %d disks", s, len(seen))
		}
	}
}

func TestChunkIndexOnDiskInverse(t *testing.T) {
	l, _ := NewLayout(5, 1, 4)
	for s := int64(0); s < 10; s++ {
		for i := 0; i < l.DataDisks(); i++ {
			d := l.DataDisk(s, i)
			if got := l.ChunkIndexOnDisk(s, d); got != i {
				t.Fatalf("inverse failed: stripe %d chunk %d disk %d -> %d", s, i, d, got)
			}
		}
		p := l.ParityDisk(s, 0)
		if got := l.ChunkIndexOnDisk(s, p); got != -1 {
			t.Fatalf("parity disk reported data index %d", got)
		}
	}
}

func TestLocateLBARoundTrip(t *testing.T) {
	l, _ := NewLayout(4, 1, 16)
	if err := quick.Check(func(x uint32) bool {
		lba := int64(x)
		s, c, o := l.Locate(lba)
		return l.LBA(s, c, o) == lba && c >= 0 && c < l.DataDisks() && o >= 0 && o < l.ChunkBlocks()
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeBlocks(t *testing.T) {
	l, _ := NewLayout(4, 1, 16)
	if l.StripeBlocks() != 48 {
		t.Fatalf("stripe blocks = %d", l.StripeBlocks())
	}
	if l.DiskOffset(3, 5) != 3*16+5 {
		t.Fatalf("disk offset math wrong")
	}
}
