// Package raid provides stripe geometry shared by the array engines:
// left-asymmetric RAID 5 rotation (the layout the paper names in §4.1),
// RAID 6 extension, and the logical-address math block-interface engines
// use to map LBAs onto (disk, offset) pairs.
package raid

import "fmt"

// Layout describes an n-disk array with m rotating parity chunks per
// stripe and a fixed chunk size in blocks.
type Layout struct {
	disks       int
	parity      int
	chunkBlocks int64
}

// NewLayout builds a layout; disks > parity >= 1.
func NewLayout(disks, parity int, chunkBlocks int64) (*Layout, error) {
	if parity < 1 || disks <= parity || chunkBlocks < 1 {
		return nil, fmt.Errorf("raid: invalid layout disks=%d parity=%d chunk=%d", disks, parity, chunkBlocks)
	}
	return &Layout{disks: disks, parity: parity, chunkBlocks: chunkBlocks}, nil
}

// Disks reports the total member count.
func (l *Layout) Disks() int { return l.disks }

// Parity reports parity chunks per stripe (1 = RAID 5, 2 = RAID 6).
func (l *Layout) Parity() int { return l.parity }

// DataDisks reports data chunks per stripe.
func (l *Layout) DataDisks() int { return l.disks - l.parity }

// ChunkBlocks reports the chunk (stripe unit) size in blocks.
func (l *Layout) ChunkBlocks() int64 { return l.chunkBlocks }

// StripeBlocks reports the user-visible blocks per stripe.
func (l *Layout) StripeBlocks() int64 { return l.chunkBlocks * int64(l.DataDisks()) }

// ParityDisk reports which member holds parity p (0..m-1) of the stripe.
// Left-asymmetric rotation: parity walks right-to-left one member per
// stripe; for m > 1 the parity chunks occupy consecutive members.
func (l *Layout) ParityDisk(stripe int64, p int) int {
	base := l.disks - 1 - int(stripe%int64(l.disks))
	d := base - p
	if d < 0 {
		d += l.disks
	}
	return d
}

// DataDisk reports which member holds data chunk idx (0..DataDisks()-1) of
// the stripe. Left-asymmetric: data fills members left to right, skipping
// parity members.
func (l *Layout) DataDisk(stripe int64, idx int) int {
	if idx < 0 || idx >= l.DataDisks() {
		panic(fmt.Sprintf("raid: data chunk %d out of range", idx))
	}
	seen := 0
	for d := 0; d < l.disks; d++ {
		if l.isParityDisk(stripe, d) {
			continue
		}
		if seen == idx {
			return d
		}
		seen++
	}
	panic("raid: unreachable")
}

func (l *Layout) isParityDisk(stripe int64, d int) bool {
	for p := 0; p < l.parity; p++ {
		if l.ParityDisk(stripe, p) == d {
			return true
		}
	}
	return false
}

// ChunkIndexOnDisk reports the inverse of DataDisk: which data chunk index
// member d holds in the stripe, or -1 if d holds parity.
func (l *Layout) ChunkIndexOnDisk(stripe int64, d int) int {
	if l.isParityDisk(stripe, d) {
		return -1
	}
	idx := 0
	for i := 0; i < d; i++ {
		if !l.isParityDisk(stripe, i) {
			idx++
		}
	}
	return idx
}

// Locate maps a user LBA to (stripe, data chunk index, offset in chunk).
func (l *Layout) Locate(lba int64) (stripe int64, chunk int, offset int64) {
	sb := l.StripeBlocks()
	stripe = lba / sb
	rem := lba % sb
	return stripe, int(rem / l.chunkBlocks), rem % l.chunkBlocks
}

// LBA is the inverse of Locate.
func (l *Layout) LBA(stripe int64, chunk int, offset int64) int64 {
	return stripe*l.StripeBlocks() + int64(chunk)*l.chunkBlocks + offset
}

// DiskOffset reports the block offset on a member device for a given
// stripe: members store one chunk per stripe at stripe*chunkBlocks.
func (l *Layout) DiskOffset(stripe int64, offset int64) int64 {
	return stripe*l.chunkBlocks + offset
}
