package zns

import (
	"fmt"

	"biza/internal/buf"
	"biza/internal/obs"
	"biza/internal/sim"
)

// ZoneState is the NVMe ZNS zone state machine.
type ZoneState uint8

// Zone states.
const (
	ZoneEmpty ZoneState = iota
	ZoneImplicitOpen
	ZoneExplicitOpen
	ZoneClosed
	ZoneFull
	ZoneReadOnly
	ZoneOffline
)

func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "empty"
	case ZoneImplicitOpen:
		return "implicit-open"
	case ZoneExplicitOpen:
		return "explicit-open"
	case ZoneClosed:
		return "closed"
	case ZoneFull:
		return "full"
	case ZoneReadOnly:
		return "read-only"
	case ZoneOffline:
		return "offline"
	}
	return "unknown"
}

// IsOpen reports whether the state counts against the open-zone limit.
func (s ZoneState) IsOpen() bool { return s == ZoneImplicitOpen || s == ZoneExplicitOpen }

// WriteTag classifies write traffic for flash accounting. The device itself
// is oblivious to the distinction; the host engines label their commands so
// experiments can split write amplification into data/parity/GC components.
type WriteTag uint8

// Traffic classes.
const (
	TagUserData WriteTag = iota
	TagParity
	TagGCData
	TagGCParity
	TagMeta
	numTags
)

func (t WriteTag) String() string {
	switch t {
	case TagUserData:
		return "data"
	case TagParity:
		return "parity"
	case TagGCData:
		return "gc-data"
	case TagGCParity:
		return "gc-parity"
	case TagMeta:
		return "meta"
	}
	return "unknown"
}

// IsParity reports whether the tag carries parity bytes.
func (t WriteTag) IsParity() bool { return t == TagParity || t == TagGCParity }

// WriteResult is the completion of a Write.
type WriteResult struct {
	Err     error
	Latency sim.Time
}

// AppendResult is the completion of an Append.
type AppendResult struct {
	Err     error
	LBA     int64 // device-assigned start block within the zone
	Latency sim.Time
}

// ReadResult is the completion of a Read.
type ReadResult struct {
	Err     error
	Data    []byte   // nil unless Config.StoreData
	OOB     [][]byte // per-block OOB records, nil entries for never-written
	Latency sim.Time
}

// FlashStats aggregates flash-level traffic counters.
type FlashStats struct {
	ProgrammedBytes [numTags]uint64 // programmed to flash, by traffic class
	AbsorbedBytes   uint64          // overwrites absorbed in ZRWA (never programmed)
	Erases          uint64
	ReadBytes       uint64
	BufCopiedBytes  uint64 // payload bytes defensively copied into the write buffer
}

// TotalProgrammed reports flash-programmed bytes across all classes.
func (f FlashStats) TotalProgrammed() uint64 {
	var t uint64
	for _, v := range f.ProgrammedBytes {
		t += v
	}
	return t
}

// ProgrammedByTag reports programmed bytes for one traffic class.
func (f FlashStats) ProgrammedByTag(t WriteTag) uint64 { return f.ProgrammedBytes[t] }

// bufBlock is one dirty or committed-but-unprogrammed block in the device
// write buffer. acked marks content whose write completion reached the
// host: power loss hardens acked blocks (capacitor flush) and drops
// unacknowledged ones. When own is non-nil, data is a borrowed view into
// the caller's refcounted buffer (one reference held per block) instead of
// a device-side copy — the zero-copy form of the defensive payload copy.
type bufBlock struct {
	data  []byte
	oob   []byte
	own   *buf.Buf // reference pinning data when it is a borrowed view
	tag   WriteTag
	acked bool
}

type waiter struct {
	need int64 // buffer credit still required
	run  func()
	op   *writeOp // pooled-record waiter (run is nil)
}

type zone struct {
	idx        int
	state      ZoneState
	zrwa       bool  // opened with ZRWA
	wp         int64 // committed boundary in blocks; ZRWA window starts here
	written    int64 // highest block index written + 1 (for reads)
	dirty      map[int64]*bufBlock
	pending    map[int64]*bufBlock // committed, program in flight
	credit     int64               // free buffer slots (blocks)
	waiters    []waiter
	data       map[int64][]byte // flash contents (StoreData only)
	oob        map[int64][]byte
	eraseCount uint64
	channel    int
}

type channel struct {
	writeBus *sim.Resource // serializes programs on this channel (zone write cap)
	readBus  *sim.Resource
	dies     *sim.Resource // die pipeline shared by reads, programs, erases
}

// Device is a simulated ZNS SSD. All methods must be called from the
// simulation goroutine; completions fire as virtual-time events.
type Device struct {
	cfg   Config
	eng   *sim.Engine
	zones []*zone
	chans []*channel

	controller *sim.Resource
	writeLink  *sim.Resource
	readLink   *sim.Resource

	openCount   int
	activeCount int

	// epoch invalidates in-flight command records across a power loss:
	// each pooled op snapshots it at submission and aborts silently at
	// its next Fire when the device has since power-cycled.
	epoch uint64

	stats FlashStats

	tr    *obs.Trace
	trDev int
	// spanHint carries the caller's span id into the next data-path command
	// (the driver queue sets it just before delivering a command; the
	// simulation is single-goroutine, so it is consumed immediately).
	// hintValid distinguishes "caller traced but sampled out" (hint 0, no
	// device-owned span either) from "caller untraced".
	spanHint  obs.SpanID
	hintValid bool

	// Free lists for pooled command records and write-buffer scratch (the
	// simulation is single-goroutine; see ops.go).
	wopFree  []*writeOp
	ropFree  []*readOp
	popFree  []*programOp
	bbFree   []*bufBlock
	dataFree [][]byte
	oobFree  [][]byte
	runFree  [][]*bufBlock
}

// New creates a device. The zone-to-channel map is fixed at creation:
// round-robin, with Config.ShuffleFraction of zones remapped pseudo-randomly
// (deterministic in Config.Seed) to model wear-leveling on aged devices.
func New(eng *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxActiveZone == 0 {
		cfg.MaxActiveZone = 2 * cfg.MaxOpenZones
	}
	d := &Device{
		cfg:        cfg,
		eng:        eng,
		controller: sim.NewResource(eng, 1),
		writeLink:  sim.NewResource(eng, 1),
		readLink:   sim.NewResource(eng, 1),
	}
	d.chans = make([]*channel, cfg.NumChannels)
	for i := range d.chans {
		d.chans[i] = &channel{
			writeBus: sim.NewResource(eng, 1),
			readBus:  sim.NewResource(eng, 1),
			dies:     sim.NewResource(eng, cfg.DiesPerChannel),
		}
	}
	rng := sim.NewRNG(cfg.Seed ^ 0xb12a)
	d.zones = make([]*zone, cfg.NumZones)
	for i := range d.zones {
		ch := i % cfg.NumChannels
		if cfg.ShuffleFraction > 0 && rng.Float64() < cfg.ShuffleFraction {
			ch = rng.Intn(cfg.NumChannels)
		}
		d.zones[i] = &zone{idx: i, channel: ch}
	}
	return d, nil
}

// SetTracer attaches an observability trace; dev labels this device in the
// trace. Passing nil detaches.
func (d *Device) SetTracer(tr *obs.Trace, dev int) {
	d.tr = tr
	d.trDev = dev
}

// TraceSpan hints the span id the next data-path command (Write, Read,
// Append) should attach its service marks to. Drivers that own the
// lifecycle span call this immediately before delivering the command.
func (d *Device) TraceSpan(id obs.SpanID) {
	d.spanHint = id
	d.hintValid = true
}

// takeHint consumes the pending span hint.
func (d *Device) takeHint() (obs.SpanID, bool) {
	id, ok := d.spanHint, d.hintValid
	d.spanHint, d.hintValid = 0, false
	return id, ok
}

// traceState records a zone state transition event.
func (d *Device) traceState(zn *zone, old, next ZoneState) {
	if d.tr == nil || old == next {
		return
	}
	d.tr.Event(int64(d.eng.Now()), obs.LayerZNS, obs.EvZoneState, d.trDev, zn.idx,
		int64(old), int64(next), 0)
}

// traceOpenCount samples the open-zone gauge.
func (d *Device) traceOpenCount() {
	if d.tr == nil {
		return
	}
	d.tr.Counter(int64(d.eng.Now()), obs.ProbeKey(obs.ProbeOpenZones, d.trDev, 0), int64(d.openCount))
}

// ChannelWriteBusy reports cumulative busy time of channel ch's program
// bus (observability finalizers snapshot it into counter probes).
func (d *Device) ChannelWriteBusy(ch int) sim.Time {
	if ch < 0 || ch >= len(d.chans) {
		return 0
	}
	return d.chans[ch].writeBus.BusyTime()
}

// ChannelReadBusy reports cumulative busy time of channel ch's read bus.
func (d *Device) ChannelReadBusy(ch int) sim.Time {
	if ch < 0 || ch >= len(d.chans) {
		return 0
	}
	return d.chans[ch].readBus.BusyTime()
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Stats returns a snapshot of flash traffic counters.
func (d *Device) Stats() FlashStats { return d.stats }

// ResetStats zeroes the traffic counters (experiments call this after
// preconditioning).
func (d *Device) ResetStats() { d.stats = FlashStats{} }

// NumChannels reports the channel count — datasheet-level information a
// host legitimately has. Which zone maps to which channel stays hidden.
func (d *Device) NumChannels() int { return d.cfg.NumChannels }

// TrueChannelOf exposes the hidden zone-to-channel mapping. It exists for
// tests and oracle baselines only; AFA engines must not call it — BIZA's
// whole §4.3 mechanism exists because real devices do not reveal this.
func (d *Device) TrueChannelOf(z int) int { return d.zones[z].channel }

// EraseCount reports how many times zone z has been erased.
func (d *Device) EraseCount(z int) uint64 { return d.zones[z].eraseCount }

// ZoneInfo is the REPORT ZONES view of one zone.
type ZoneInfo struct {
	State      ZoneState
	WritePtr   int64 // committed boundary in blocks
	ZRWA       bool
	Capacity   int64
	EraseCount uint64
}

// Zones reports the zone count.
func (d *Device) Zones() int { return d.cfg.NumZones }

// ZoneInfo returns the current state of zone z (a REPORT ZONES lookup;
// engines should use it sparingly on hot paths — BIZA tracks the window
// host-side instead, §4.4).
func (d *Device) ZoneInfo(z int) (ZoneInfo, error) {
	if z < 0 || z >= len(d.zones) {
		return ZoneInfo{}, ErrBadZone
	}
	zn := d.zones[z]
	return ZoneInfo{
		State:      zn.state,
		WritePtr:   zn.wp,
		ZRWA:       zn.zrwa,
		Capacity:   d.cfg.ZoneBlocks,
		EraseCount: zn.eraseCount,
	}, nil
}

// OpenZones reports how many zones are currently open.
func (d *Device) OpenZones() int { return d.openCount }

func (d *Device) zoneArg(z int) (*zone, error) {
	if z < 0 || z >= len(d.zones) {
		return nil, ErrBadZone
	}
	zn := d.zones[z]
	if zn.state == ZoneOffline {
		return nil, ErrZoneOffline
	}
	return zn, nil
}

// OpenReport opens zone z like Open and additionally returns the zone's
// I/O channel when the device implements the §6 future-ZNS proposal
// (Config.ExposeChannelOnOpen); otherwise the channel is reported as -1,
// exactly as today's opaque devices behave.
func (d *Device) OpenReport(z int, withZRWA bool) (channel int, err error) {
	if err := d.Open(z, withZRWA); err != nil {
		return -1, err
	}
	if !d.cfg.ExposeChannelOnOpen {
		return -1, nil
	}
	return d.zones[z].channel, nil
}

// Open transitions zone z to explicit-open, optionally with ZRWA. Opening a
// closed zone re-opens it (ZRWA cannot be re-enabled on a partially
// written zone in this model). Admin commands are synchronous: their cost
// is negligible next to data-path service times.
func (d *Device) Open(z int, withZRWA bool) error {
	zn, err := d.zoneArg(z)
	if err != nil {
		return err
	}
	if withZRWA && d.cfg.ZRWABlocks == 0 {
		return ErrZRWANotSupported
	}
	prev := zn.state
	switch zn.state {
	case ZoneExplicitOpen, ZoneImplicitOpen:
		zn.state = ZoneExplicitOpen
		d.traceState(zn, prev, ZoneExplicitOpen)
		return nil
	case ZoneFull, ZoneReadOnly:
		return ErrWrongState
	case ZoneEmpty:
		if d.openCount >= d.cfg.MaxOpenZones {
			return ErrTooManyOpen
		}
		if d.activeCount >= d.cfg.MaxActiveZone {
			return ErrTooManyOpen
		}
		d.openCount++
		d.activeCount++
	case ZoneClosed:
		if d.openCount >= d.cfg.MaxOpenZones {
			return ErrTooManyOpen
		}
		if withZRWA && zn.wp > 0 {
			return ErrWrongState
		}
		d.openCount++
	}
	zn.state = ZoneExplicitOpen
	d.traceState(zn, prev, ZoneExplicitOpen)
	d.traceOpenCount()
	zn.zrwa = withZRWA
	if withZRWA {
		// Buffer credit equals the window: a block entering the ZRWA must
		// wait for an evicted block's flash program to release its slot.
		// This is what starves a single in-flight writer (Fig. 5) while a
		// deep queue keeps the channel pipeline full.
		zn.credit = d.cfg.ZRWABlocks
		if zn.dirty == nil {
			zn.dirty = make(map[int64]*bufBlock)
			zn.pending = make(map[int64]*bufBlock)
		}
	}
	return nil
}

// Close transitions an open zone to closed, committing any ZRWA contents.
func (d *Device) Close(z int) error {
	zn, err := d.zoneArg(z)
	if err != nil {
		return err
	}
	if !zn.state.IsOpen() {
		return ErrWrongState
	}
	if len(zn.waiters) > 0 {
		return ErrWrongState
	}
	if zn.zrwa {
		d.commitRange(zn, zn.maxDirty()+1, obs.CommitClose)
		zn.zrwa = false
	}
	prev := zn.state
	zn.state = ZoneClosed
	d.openCount--
	d.traceState(zn, prev, ZoneClosed)
	d.traceOpenCount()
	return nil
}

// Finish commits any buffered contents and transitions the zone to full.
func (d *Device) Finish(z int) error {
	zn, err := d.zoneArg(z)
	if err != nil {
		return err
	}
	switch zn.state {
	case ZoneFull:
		return nil
	case ZoneEmpty, ZoneImplicitOpen, ZoneExplicitOpen, ZoneClosed:
	default:
		return ErrWrongState
	}
	if len(zn.waiters) > 0 {
		return ErrWrongState
	}
	wasOpen := zn.state.IsOpen()
	if zn.zrwa {
		d.commitRange(zn, d.cfg.ZoneBlocks, obs.CommitFinish)
		zn.zrwa = false
	}
	// Active = open + closed; a finished zone stops counting against the
	// active-zone resource limit.
	if wasOpen || zn.state == ZoneClosed {
		d.activeCount--
	}
	prev := zn.state
	zn.state = ZoneFull
	zn.wp = d.cfg.ZoneBlocks
	if wasOpen {
		d.openCount--
	}
	d.traceState(zn, prev, ZoneFull)
	d.traceOpenCount()
	return nil
}

// CommitZRWA explicitly commits the ZRWA up to (not including) block upTo,
// advancing the committed boundary and scheduling flash programs for the
// dirty blocks in the committed range.
func (d *Device) CommitZRWA(z int, upTo int64) error {
	zn, err := d.zoneArg(z)
	if err != nil {
		return err
	}
	if !zn.state.IsOpen() || !zn.zrwa {
		return ErrWrongState
	}
	if upTo < zn.wp || upTo > zn.wp+d.cfg.ZRWABlocks || upTo > d.cfg.ZoneBlocks {
		return ErrBadRange
	}
	d.commitRange(zn, upTo, obs.CommitExplicit)
	return nil
}

// Reset erases zone z back to empty. The erase occupies the zone's channel
// dies for ResetLatency — the physical reason GC interferes with user I/O
// on the same channel. done (optional) fires when the erase finishes.
func (d *Device) Reset(z int, done func(error)) {
	zn, err := d.zoneArg(z)
	if err != nil || len(zn.waiters) > 0 {
		if err == nil {
			err = ErrWrongState
		}
		if done != nil {
			err := err
			d.eng.After(d.cfg.CmdOverhead, func() { done(err) })
		}
		return
	}
	if zn.state.IsOpen() {
		d.openCount--
	}
	if zn.state.IsOpen() || zn.state == ZoneClosed {
		d.activeCount--
	}
	prev := zn.state
	zn.state = ZoneEmpty
	zn.zrwa = false
	zn.wp = 0
	zn.written = 0
	// Recycle the dirty buffer blocks the erase discards. Pending blocks
	// stay out: their in-flight programOps still reference them and will
	// recycle them at retirement — recycling here would double-free.
	for b, bb := range zn.dirty {
		d.putBufBlock(bb)
		delete(zn.dirty, b)
	}
	zn.dirty = nil
	zn.pending = nil
	zn.credit = 0
	zn.data = nil
	zn.oob = nil
	zn.eraseCount++
	d.stats.Erases++
	d.traceState(zn, prev, ZoneEmpty)
	d.traceOpenCount()
	if d.tr != nil {
		d.tr.Event(int64(d.eng.Now()), obs.LayerZNS, obs.EvZoneReset, d.trDev, zn.idx,
			int64(zn.eraseCount), 0, 0)
	}
	// Erase busies every die on the channel.
	ch := d.chans[zn.channel]
	chIdx := zn.channel
	remaining := d.cfg.DiesPerChannel
	for i := 0; i < d.cfg.DiesPerChannel; i++ {
		ch.dies.Submit(d.cfg.ResetLatency, func(s, e sim.Time) {
			d.tr.Segment(int64(s), int64(e), obs.LayerZNS, obs.SegErase, d.trDev, zn.idx, chIdx, 0)
			remaining--
			if remaining == 0 && done != nil {
				done(nil)
			}
		})
	}
}

func (zn *zone) maxDirty() int64 {
	max := zn.wp - 1
	for b := range zn.dirty {
		if b > max {
			max = b
		}
	}
	return max
}

// commitRange advances the committed boundary to upTo and schedules flash
// programs for dirty blocks in [old wp, upTo), batching contiguous runs.
// reason tags the observability event (implicit/explicit/close/finish).
func (d *Device) commitRange(zn *zone, upTo int64, reason uint8) {
	if upTo > d.cfg.ZoneBlocks {
		upTo = d.cfg.ZoneBlocks
	}
	if upTo <= zn.wp {
		return
	}
	if d.tr != nil {
		d.tr.Event(int64(d.eng.Now()), obs.LayerZNS, obs.EvZRWACommit, d.trDev, zn.idx,
			upTo, upTo-zn.wp, reason)
	}
	var runStart int64 = -1
	run := d.getRun()
	const maxBatch = 16 // 64 KiB batches spread commits across dies
	for b := zn.wp; b < upTo; b++ {
		bb, ok := zn.dirty[b]
		if !ok {
			if len(run) > 0 {
				d.program(zn, runStart, run)
				run = d.getRun()
			}
			runStart = -1
			continue
		}
		delete(zn.dirty, b)
		zn.pending[b] = bb
		if runStart < 0 {
			runStart = b
		}
		run = append(run, bb)
		if len(run) >= maxBatch {
			d.program(zn, runStart, run)
			run = d.getRun()
			runStart = -1
		}
	}
	if len(run) > 0 {
		d.program(zn, runStart, run)
	} else {
		d.putRun(run)
	}
	zn.wp = upTo
}

// program schedules the flash program of a contiguous run of committed
// blocks through a pooled programOp: channel bus transfer, then a die
// program. On completion it persists data/OOB, counts the traffic, releases
// buffer credit, and admits waiting writes (see ops.go).
func (d *Device) program(zn *zone, start int64, blocks []*bufBlock) {
	op := d.getProgramOp()
	op.zn, op.start, op.blocks, op.stage = zn, start, blocks, pBus
	size := int64(len(blocks)) * int64(d.cfg.BlockSize)
	d.chans[zn.channel].writeBus.SubmitEvent(size*sim.Second/d.cfg.ChannelWriteBW, op)
}

func (d *Device) releaseCredit(zn *zone, n int64) {
	zn.credit += n
	for len(zn.waiters) > 0 {
		w := &zn.waiters[0]
		if zn.credit < w.need {
			return
		}
		zn.credit -= w.need
		run, op := w.run, w.op
		zn.waiters = zn.waiters[1:]
		if op != nil {
			op.creditGranted()
		} else {
			run()
		}
	}
}

// acquireCreditOp continues op once op.need buffer slots are available,
// preserving FIFO order among waiters.
func (d *Device) acquireCreditOp(zn *zone, op *writeOp) {
	if len(zn.waiters) == 0 && zn.credit >= op.need {
		zn.credit -= op.need
		op.creditGranted()
		return
	}
	zn.waiters = append(zn.waiters, waiter{need: op.need, op: op})
}

// Write submits an async write of nblocks starting at block lba of zone z.
// data, if non-nil, must hold nblocks*BlockSize bytes; oob, if non-nil,
// holds one record per block. Rules:
//
//   - zones opened with ZRWA accept writes anywhere in the window
//     [wp, wp+ZRWABlocks); writes beyond the window implicitly commit (shift)
//     it, writes behind wp fail with ErrOutOfWindow;
//   - zones without ZRWA accept only lba == wp (ErrNotSequential otherwise).
//
// Validation happens at submission order — the order the driver delivers
// commands, which is what makes kernel-level reordering dangerous (§3.2).
func (d *Device) Write(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag WriteTag, done func(WriteResult)) {
	span, hinted := d.takeHint()
	d.write(z, lba, nblocks, data, oob, tag, nil, span, hinted, done, nil)
}

// WriteOwned is Write for refcounted payloads: data must be a view into
// own, and the call transfers exactly one reference. Blocks parked in the
// ZRWA buffer hold further references of their own (released when their
// flash program retires), so the device never copies the payload. The
// caller must not mutate the buffer after submission — the device may
// read the view until the last program completes, which is after the
// write acknowledgment.
func (d *Device) WriteOwned(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag WriteTag, own *buf.Buf, done func(WriteResult)) {
	span, hinted := d.takeHint()
	d.write(z, lba, nblocks, data, oob, tag, own, span, hinted, done, nil)
}

// write is the shared body of Write, WriteOwned, and Append, driven by a
// pooled writeOp (see ops.go) instead of a per-command closure chain. own,
// if non-nil, carries one transferred reference pinning data; the op
// releases it on every termination path (putWriteOp).
func (d *Device) write(z int, lba int64, nblocks int, data []byte, oob [][]byte, tag WriteTag,
	own *buf.Buf, span obs.SpanID, hinted bool, done func(WriteResult), adone func(AppendResult)) {
	op := d.getWriteOp()
	op.z, op.lba, op.n = z, lba, int64(nblocks)
	op.tag, op.data, op.oob, op.own = tag, data, oob, own
	op.span, op.start = span, d.eng.Now()
	op.done, op.adone = done, adone
	zn, err := d.zoneArg(z)
	if err != nil {
		op.fail(err)
		return
	}
	op.zn = zn
	if zn.state == ZoneReadOnly {
		op.fail(ErrReadOnly)
		return
	}
	if zn.state == ZoneFull {
		op.fail(ErrZoneFull)
		return
	}
	n := op.n
	if nblocks <= 0 || lba < 0 || lba+n > d.cfg.ZoneBlocks {
		op.fail(ErrBadRange)
		return
	}
	if data != nil && int64(len(data)) != n*int64(d.cfg.BlockSize) {
		op.fail(fmt.Errorf("zns: data length %d for %d blocks", len(data), nblocks))
		return
	}
	// Implicit open on first write to an empty/closed zone.
	if zn.state == ZoneEmpty || zn.state == ZoneClosed {
		if d.openCount >= d.cfg.MaxOpenZones ||
			(zn.state == ZoneEmpty && d.activeCount >= d.cfg.MaxActiveZone) {
			op.fail(ErrTooManyOpen)
			return
		}
		if zn.state == ZoneEmpty {
			d.activeCount++
		}
		prev := zn.state
		zn.state = ZoneImplicitOpen
		d.openCount++
		d.traceState(zn, prev, ZoneImplicitOpen)
		d.traceOpenCount()
	}
	// A device with no traced driver above it owns the span itself.
	if !hinted && d.tr != nil {
		op.span = d.tr.SpanBegin(int64(op.start), obs.LayerZNS, obs.OpWrite, d.trDev, z, lba, n)
		op.ownSpan = true
	}

	op.size = n * int64(d.cfg.BlockSize)
	if !zn.zrwa {
		// Plain sequential path: validate against wp, program directly.
		if lba != zn.wp {
			op.fail(ErrNotSequential)
			return
		}
		zn.wp += n
		if zn.written < zn.wp {
			zn.written = zn.wp
		}
		if zn.wp == d.cfg.ZoneBlocks {
			// Last sequential write fills the zone: full; its open and
			// active slots are both freed.
			prev := zn.state
			zn.state = ZoneFull
			d.openCount--
			d.activeCount--
			d.traceState(zn, prev, ZoneFull)
			d.traceOpenCount()
		}
		op.stage = wSeqCtrl
		d.controller.SubmitEvent(d.cfg.CmdOverhead, op)
		return
	}

	// ZRWA path.
	if n > d.cfg.ZRWABlocks {
		op.fail(ErrBadRange)
		return
	}
	if lba < zn.wp {
		op.fail(ErrOutOfWindow)
		return
	}
	if end := lba + n; end > zn.wp+d.cfg.ZRWABlocks {
		// Implicit commit: shift the window right so the write fits.
		d.commitRange(zn, end-d.cfg.ZRWABlocks, obs.CommitImplicit)
	}
	// Count slots needed (first-touch blocks only) and install contents in
	// one pass — buffering happens at validation time, before the command
	// queues for credit, so concurrent in-flight writes see consistent
	// dirty state. One map lookup per block.
	var need int64
	bs := int64(d.cfg.BlockSize)
	for i := int64(0); i < n; i++ {
		b := lba + i
		bb := zn.dirty[b]
		if bb == nil {
			need++
			bb = d.getBufBlock()
			zn.dirty[b] = bb
		} else {
			d.stats.AbsorbedBytes += uint64(d.cfg.BlockSize)
		}
		bb.tag = tag
		if data != nil {
			d.setData(bb, data[i*bs:(i+1)*bs], own)
		}
		if oob != nil && int(i) < len(oob) && oob[i] != nil {
			d.setOOB(bb, oob[i])
		}
	}
	if zn.written < lba+n {
		zn.written = lba + n
	}
	op.need = need
	op.stage = wZCtrl
	d.controller.SubmitEvent(d.cfg.CmdOverhead, op)
}

func (d *Device) storeDirect(zn *zone, lba int64, nblocks int, data []byte, oob [][]byte) {
	if zn.data == nil {
		zn.data = make(map[int64][]byte)
		zn.oob = make(map[int64][]byte)
	}
	bs := int64(d.cfg.BlockSize)
	for i := int64(0); i < int64(nblocks); i++ {
		b := lba + i
		if data != nil {
			zn.data[b] = append([]byte(nil), data[i*bs:(i+1)*bs]...)
		}
		if oob != nil && int(i) < len(oob) && oob[i] != nil {
			zn.oob[b] = append([]byte(nil), oob[i]...)
		}
	}
}

// Append submits a zone append: the device assigns the write position at
// the current write pointer. Appends are rejected on zones opened with
// ZRWA (NVMe makes the features mutually exclusive).
func (d *Device) Append(z int, nblocks int, data []byte, oob [][]byte, tag WriteTag, done func(AppendResult)) {
	// Consume the caller's span hint now so failed validation cannot leave
	// it armed for an unrelated command; pass it through to the write body.
	span, hinted := d.takeHint()
	fail := func(err error) {
		op := d.getWriteOp()
		op.start, op.adone = d.eng.Now(), done
		op.fail(err)
	}
	zn, err := d.zoneArg(z)
	if err != nil {
		fail(err)
		return
	}
	if zn.zrwa {
		fail(ErrAppendWithZRWA)
		return
	}
	if zn.state == ZoneFull || zn.wp+int64(nblocks) > d.cfg.ZoneBlocks {
		fail(ErrZoneFull)
		return
	}
	d.write(z, zn.wp, nblocks, data, oob, tag, nil, span, hinted, nil, done)
}

// Read submits an async read of nblocks starting at block lba of zone z.
// Blocks resident in the ZRWA buffer are served from DRAM; anything else
// takes the flash path through the zone's channel (and therefore contends
// with GC traffic on that channel).
func (d *Device) Read(z int, lba int64, nblocks int, done func(ReadResult)) {
	op := d.getReadOp()
	op.start = d.eng.Now()
	span, hinted := d.takeHint()
	op.span = span
	op.z, op.lba, op.n = z, lba, int64(nblocks)
	op.done = done
	zn, err := d.zoneArg(z)
	if err != nil {
		op.fail(err)
		return
	}
	op.zn = zn
	n := op.n
	if nblocks <= 0 || lba < 0 || lba+n > d.cfg.ZoneBlocks {
		op.fail(ErrBadRange)
		return
	}
	op.size = n * int64(d.cfg.BlockSize)
	d.stats.ReadBytes += uint64(op.size)
	// A device with no traced driver above it owns the span itself.
	if !hinted && d.tr != nil {
		op.span = d.tr.SpanBegin(int64(op.start), obs.LayerZNS, obs.OpRead, d.trDev, z, lba, n)
		op.ownSpan = true
	}

	op.inBuffer = true
	for i := int64(0); i < n; i++ {
		b := lba + i
		if zn.dirty != nil {
			if _, ok := zn.dirty[b]; ok {
				continue
			}
			if _, ok := zn.pending[b]; ok {
				continue
			}
		}
		op.inBuffer = false
		break
	}
	op.stage = rCtrl
	d.controller.SubmitEvent(d.cfg.CmdOverhead, op)
}

// ackRange marks buffered blocks of an acknowledged write as
// capacitor-protected: from this ack on, PowerLoss hardens rather than
// drops them. Blocks already programmed to flash need no marking.
func (d *Device) ackRange(zn *zone, lba, n int64) {
	for i := int64(0); i < n; i++ {
		b := lba + i
		if bb, ok := zn.dirty[b]; ok {
			bb.acked = true
		} else if bb, ok := zn.pending[b]; ok {
			bb.acked = true
		}
	}
}

// harden persists one buffered block during the power-loss capacitor
// flush: contents move to flash at zero service cost.
func (d *Device) harden(zn *zone, b int64, bb *bufBlock) {
	if d.cfg.StoreData {
		if zn.data == nil {
			zn.data = make(map[int64][]byte)
			zn.oob = make(map[int64][]byte)
		}
		if bb.data != nil {
			if bb.own != nil {
				// Borrowed view: the flash store cannot take ownership of a
				// slice inside a refcounted slab about to be released.
				zn.data[b] = append([]byte(nil), bb.data...)
			} else {
				zn.data[b] = bb.data
				bb.data = nil
			}
		}
		if bb.oob != nil {
			zn.oob[b] = bb.oob
			bb.oob = nil
		}
	}
	d.stats.ProgrammedBytes[bb.tag] += uint64(d.cfg.BlockSize)
	d.putBufBlock(bb)
}

// PowerLoss cuts device power at the current instant, modeling an
// enterprise drive with power-loss protection for acknowledged content:
//
//   - In-flight commands and background flash programs abort (epoch
//     bump); their completions never fire.
//   - Capacitor flush: committed blocks awaiting their flash program and
//     ZRWA blocks whose writes were acknowledged harden to flash
//     instantly at zero service cost.
//   - Unacknowledged ZRWA contents are dropped — the window truncation a
//     crash exposes; recovery must tolerate the resulting holes.
//   - Buffer-credit waiters are discarded with the host that submitted
//     them.
//
// Zone states, write pointers, and ZRWA configuration survive (firmware
// journals its metadata). The host side must be torn down separately
// (nvme.Queue.Kill) and rebuilt before the device is driven again.
func (d *Device) PowerLoss() {
	d.epoch++
	var dropped, hardened int64
	for _, zn := range d.zones {
		for i := range zn.waiters {
			if op := zn.waiters[i].op; op != nil {
				d.putWriteOp(op)
			}
		}
		zn.waiters = nil
		if zn.dirty == nil && zn.pending == nil {
			continue
		}
		for b, bb := range zn.pending {
			d.harden(zn, b, bb)
			hardened++
			delete(zn.pending, b)
		}
		for b, bb := range zn.dirty {
			if bb.acked {
				d.harden(zn, b, bb)
				hardened++
			} else {
				d.putBufBlock(bb)
				dropped++
			}
			delete(zn.dirty, b)
		}
		if zn.zrwa {
			zn.credit = d.cfg.ZRWABlocks
		}
	}
	if d.tr != nil {
		d.tr.Event(int64(d.eng.Now()), obs.LayerZNS, obs.EvPowerLoss, d.trDev, -1,
			dropped, hardened, 0)
	}
}

// SetOffline marks a zone dead (fault injection for degraded-mode tests).
func (d *Device) SetOffline(z int) error {
	zn, err := d.zoneArg(z)
	if err != nil {
		return err
	}
	if zn.state.IsOpen() {
		d.openCount--
	}
	if zn.state.IsOpen() || zn.state == ZoneClosed {
		d.activeCount--
	}
	prev := zn.state
	zn.state = ZoneOffline
	d.traceState(zn, prev, ZoneOffline)
	d.traceOpenCount()
	return nil
}

// ChannelUtilization reports the fraction of elapsed virtual time channel
// ch's program bus spent busy — telemetry for parallelism experiments.
func (d *Device) ChannelUtilization(ch int, elapsed sim.Time) float64 {
	if ch < 0 || ch >= len(d.chans) || elapsed <= 0 {
		return 0
	}
	return float64(d.chans[ch].writeBus.BusyTime()) / float64(elapsed)
}

// ReportZones returns the REPORT ZONES view of every zone (the full-device
// variant of ZoneInfo; recovery and tooling use it).
func (d *Device) ReportZones() []ZoneInfo {
	out := make([]ZoneInfo, len(d.zones))
	for z := range d.zones {
		out[z], _ = d.ZoneInfo(z)
	}
	return out
}
