package zns

import (
	"fmt"

	"biza/internal/storerr"
)

// Command errors. These correspond to NVMe ZNS status codes; engines branch
// on them, so they are sentinel values. Each wraps the canonical sentinel
// from internal/storerr, so errors.Is matches either identity: existing
// code comparing against zns.ErrZoneFull keeps working, and layer-agnostic
// code (the degraded-read path, the driver retry loop) branches on
// storerr.ErrZoneFull without importing zns.
var (
	// ErrNotSequential reports a write to a non-ZRWA zone that does not
	// start exactly at the write pointer (Zone Invalid Write).
	ErrNotSequential = fmt.Errorf("zns: write not at write pointer: %w", storerr.ErrWritePointer)

	// ErrOutOfWindow reports a ZRWA write behind the committed boundary:
	// the destination has already been flushed and is immutable.
	ErrOutOfWindow = fmt.Errorf("zns: write behind ZRWA window: %w", storerr.ErrWritePointer)

	// ErrZoneFull reports a write to a full zone or beyond zone capacity.
	ErrZoneFull = fmt.Errorf("zns: zone is full: %w", storerr.ErrZoneFull)

	// ErrTooManyOpen reports an open that would exceed the device's
	// max-open-zones resource limit.
	ErrTooManyOpen = fmt.Errorf("zns: too many open zones: %w", storerr.ErrTooManyOpen)

	// ErrZoneOffline reports access to a dead zone.
	ErrZoneOffline = fmt.Errorf("zns: zone offline: %w", storerr.ErrZoneOffline)

	// ErrReadOnly reports a write to a read-only zone.
	ErrReadOnly = fmt.Errorf("zns: zone read-only: %w", storerr.ErrReadOnly)

	// ErrAppendWithZRWA reports an APPEND to a zone opened with ZRWA; the
	// NVMe specification makes the two mutually exclusive (§3.2).
	ErrAppendWithZRWA = fmt.Errorf("zns: append to zone opened with ZRWA: %w", storerr.ErrBadArgument)

	// ErrZRWANotSupported reports a ZRWA open on a device without ZRWA.
	ErrZRWANotSupported = fmt.Errorf("zns: device does not support ZRWA: %w", storerr.ErrBadArgument)

	// ErrBadZone reports a zone index out of range.
	ErrBadZone = fmt.Errorf("zns: zone index out of range: %w", storerr.ErrOutOfRange)

	// ErrBadRange reports a block range outside the zone.
	ErrBadRange = fmt.Errorf("zns: block range out of zone bounds: %w", storerr.ErrOutOfRange)

	// ErrWrongState reports a state-machine violation (e.g. commit on an
	// empty zone).
	ErrWrongState = fmt.Errorf("zns: invalid zone state for command: %w", storerr.ErrWrongState)
)
