package zns

import "errors"

// Command errors. These correspond to NVMe ZNS status codes; engines branch
// on them, so they are sentinel values.
var (
	// ErrNotSequential reports a write to a non-ZRWA zone that does not
	// start exactly at the write pointer (Zone Invalid Write).
	ErrNotSequential = errors.New("zns: write not at write pointer")

	// ErrOutOfWindow reports a ZRWA write behind the committed boundary:
	// the destination has already been flushed and is immutable.
	ErrOutOfWindow = errors.New("zns: write behind ZRWA window")

	// ErrZoneFull reports a write to a full zone or beyond zone capacity.
	ErrZoneFull = errors.New("zns: zone is full")

	// ErrTooManyOpen reports an open that would exceed the device's
	// max-open-zones resource limit.
	ErrTooManyOpen = errors.New("zns: too many open zones")

	// ErrZoneOffline reports access to a dead zone.
	ErrZoneOffline = errors.New("zns: zone offline")

	// ErrReadOnly reports a write to a read-only zone.
	ErrReadOnly = errors.New("zns: zone read-only")

	// ErrAppendWithZRWA reports an APPEND to a zone opened with ZRWA; the
	// NVMe specification makes the two mutually exclusive (§3.2).
	ErrAppendWithZRWA = errors.New("zns: append to zone opened with ZRWA")

	// ErrZRWANotSupported reports a ZRWA open on a device without ZRWA.
	ErrZRWANotSupported = errors.New("zns: device does not support ZRWA")

	// ErrBadZone reports a zone index out of range.
	ErrBadZone = errors.New("zns: zone index out of range")

	// ErrBadRange reports a block range outside the zone.
	ErrBadRange = errors.New("zns: block range out of zone bounds")

	// ErrWrongState reports a state-machine violation (e.g. commit on an
	// empty zone).
	ErrWrongState = errors.New("zns: invalid zone state for command")
)
