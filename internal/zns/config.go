// Package zns simulates an NVMe Zoned Namespace SSD in virtual time.
//
// The simulator models everything BIZA (SOSP '24) exploits or suffers from
// on real hardware:
//
//   - the zone state machine with write-pointer sequential-write rules,
//     open-zone limits, RESET/FINISH/CLOSE transitions;
//   - the Zone Random Write Area (ZRWA): a per-open-zone window after the
//     write pointer that accepts random and in-place writes in the device
//     write buffer, commits (flushes to flash) implicitly when the window
//     shifts, and explicitly on command — overwrites absorbed in the window
//     never reach flash, which is the paper's endurance lever;
//   - internal parallelism: zones map to I/O channels (hidden from the
//     host); each channel has a bus and a die pipeline, so two zones on one
//     channel contend while zones on different channels proceed in
//     parallel (Table 3), and a single in-flight write cannot fill a
//     channel's pipeline (Fig. 5);
//   - shared device resources: a controller front-end and device-wide
//     write/read links that cap aggregate throughput at the datasheet
//     numbers;
//   - flash accounting: programmed bytes by traffic class and per-zone
//     erase counts, the raw material for write-amplification results;
//   - per-block OOB areas for mapping-table persistence and crash recovery.
//
// All service times derive from a Config, with presets calibrated to the
// devices in the paper's Table 2 / Table 5.
package zns

import (
	"fmt"

	"biza/internal/sim"
)

// Config describes the simulated device geometry and service rates.
type Config struct {
	Name string

	// Geometry.
	BlockSize     int   // logical block size in bytes (4096)
	ZoneBlocks    int64 // usable blocks per zone
	NumZones      int
	MaxOpenZones  int // max zones in implicit+explicit open state
	MaxActiveZone int // max open+closed zones; 0 means 2*MaxOpenZones

	// ZRWA.
	ZRWABlocks int64 // ZRWA window size in blocks per open zone; 0 = unsupported

	// Internal parallelism.
	NumChannels    int
	DiesPerChannel int

	// Service rates in bytes per second of virtual time.
	ChannelWriteBW int64 // per-channel program bus (single-zone write cap)
	ChannelReadBW  int64
	DieWriteBW     int64 // per-die program bandwidth
	DieReadBW      int64
	DeviceWriteBW  int64 // device-wide shared write link
	DeviceReadBW   int64 // device-wide shared read link

	// Fixed costs in virtual nanoseconds.
	CmdOverhead     sim.Time // controller per-command processing
	BufWriteLatency sim.Time // ZRWA buffer write
	BufReadLatency  sim.Time // ZRWA buffer read
	DieReadLatency  sim.Time // flash array read access time
	ResetLatency    sim.Time // zone reset (erase)

	// Zone-to-channel mapping. Zones map round-robin by default; a nonzero
	// ShuffleFraction remaps that fraction of zones to random channels,
	// modeling wear-leveling decisions on aged devices (§4.3).
	ShuffleFraction float64
	Seed            uint64

	// OOB bytes available per logical block (paper: 72 bits used of the
	// typical 64 B / 4 KiB quota).
	OOBBytesPerBlock int

	// StoreData retains written payloads for read-back; disable for pure
	// performance experiments to bound host memory.
	StoreData bool

	// ExposeChannelOnOpen models the paper's §6 future-ZNS proposal:
	// the device piggybacks the zone's I/O channel in the OPEN command's
	// completion, so hosts need no guess-and-verify detection.
	ExposeChannelOnOpen bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	switch {
	case c.BlockSize <= 0:
		return fmt.Errorf("zns: BlockSize %d", c.BlockSize)
	case c.ZoneBlocks <= 0:
		return fmt.Errorf("zns: ZoneBlocks %d", c.ZoneBlocks)
	case c.NumZones <= 0:
		return fmt.Errorf("zns: NumZones %d", c.NumZones)
	case c.MaxOpenZones <= 0:
		return fmt.Errorf("zns: MaxOpenZones %d", c.MaxOpenZones)
	case c.NumChannels <= 0:
		return fmt.Errorf("zns: NumChannels %d", c.NumChannels)
	case c.DiesPerChannel <= 0:
		return fmt.Errorf("zns: DiesPerChannel %d", c.DiesPerChannel)
	case c.ChannelWriteBW <= 0 || c.ChannelReadBW <= 0,
		c.DieWriteBW <= 0 || c.DieReadBW <= 0,
		c.DeviceWriteBW <= 0 || c.DeviceReadBW <= 0:
		return fmt.Errorf("zns: non-positive bandwidth in config %q", c.Name)
	case c.ZRWABlocks < 0:
		return fmt.Errorf("zns: ZRWABlocks %d", c.ZRWABlocks)
	}
	return nil
}

// ZoneBytes reports the usable zone capacity in bytes.
func (c *Config) ZoneBytes() int64 { return c.ZoneBlocks * int64(c.BlockSize) }

// ZRWABytes reports the per-zone ZRWA size in bytes.
func (c *Config) ZRWABytes() int64 { return c.ZRWABlocks * int64(c.BlockSize) }

// TotalZRWABytes reports ZRWA capacity across the maximum open-zone set,
// the "Total ZRWA size" column of the paper's Table 2.
func (c *Config) TotalZRWABytes() int64 { return c.ZRWABytes() * int64(c.MaxOpenZones) }

const (
	kib = 1024
	mib = 1024 * kib
)

// ZN540 returns the Western Digital Ultrastar DC ZN540 preset, the paper's
// primary testbed device (Tables 2, 3, 5): 1077 MB zones, 1 MB ZRWA, 14
// open zones, 2170/3265 MB/s device write/read, 1092 MB/s single-zone
// write (Table 3 scenario 1). NumZones is scaled down from the 4 TB part;
// pass a custom Config for full capacity.
func ZN540(numZones int) Config {
	return Config{
		Name:             "WD ZN540",
		BlockSize:        4096,
		ZoneBlocks:       1077 * mib / 4096,
		NumZones:         numZones,
		MaxOpenZones:     14,
		ZRWABlocks:       1 * mib / 4096,
		NumChannels:      8,
		DiesPerChannel:   4,
		ChannelWriteBW:   1092e6,
		ChannelReadBW:    1633e6,
		DieWriteBW:       546e6,
		DieReadBW:        900e6,
		DeviceWriteBW:    2170e6,
		DeviceReadBW:     3265e6,
		CmdOverhead:      3 * sim.Microsecond,
		BufWriteLatency:  8 * sim.Microsecond,
		BufReadLatency:   4 * sim.Microsecond,
		DieReadLatency:   25 * sim.Microsecond,
		ResetLatency:     2 * sim.Millisecond,
		OOBBytesPerBlock: 64,
	}
}

// PM1731a returns the Samsung PM1731a preset (Table 2): small 96 MB zones,
// 64 KB ZRWA, 384 open zones.
func PM1731a(numZones int) Config {
	c := ZN540(numZones)
	c.Name = "Samsung PM1731a"
	c.ZoneBlocks = 96 * mib / 4096
	c.ZRWABlocks = 64 * kib / 4096
	c.MaxOpenZones = 384
	c.NumChannels = 16
	return c
}

// J5500Z returns the DapuStor J5500Z preset (Table 2): 18144 MB zones,
// 1 MB ZRWA, 16 open zones.
func J5500Z(numZones int) Config {
	c := ZN540(numZones)
	c.Name = "DapuStor J5500Z"
	c.ZoneBlocks = 18144 * mib / 4096
	c.ZRWABlocks = 1 * mib / 4096
	c.MaxOpenZones = 16
	return c
}

// NS8600G returns the Inspur NS8600G preset (Table 2): 2880 MB zones,
// 1440 KB ZRWA, 8 open zones.
func NS8600G(numZones int) Config {
	c := ZN540(numZones)
	c.Name = "Inspur NS8600G"
	c.ZoneBlocks = 2880 * mib / 4096
	c.ZRWABlocks = 1440 * kib / 4096
	c.MaxOpenZones = 8
	return c
}

// TestConfig returns a small, fast geometry for unit tests: 1 MB zones of
// 4 KB blocks, 64 KB ZRWA, 4 channels x 2 dies.
func TestConfig() Config {
	return Config{
		Name:             "test",
		BlockSize:        4096,
		ZoneBlocks:       256, // 1 MiB zones
		NumZones:         64,
		MaxOpenZones:     8,
		ZRWABlocks:       16, // 64 KiB
		NumChannels:      4,
		DiesPerChannel:   2,
		ChannelWriteBW:   1000e6,
		ChannelReadBW:    1600e6,
		DieWriteBW:       500e6,
		DieReadBW:        900e6,
		DeviceWriteBW:    2000e6,
		DeviceReadBW:     3200e6,
		CmdOverhead:      3 * sim.Microsecond,
		BufWriteLatency:  8 * sim.Microsecond,
		BufReadLatency:   4 * sim.Microsecond,
		DieReadLatency:   25 * sim.Microsecond,
		ResetLatency:     500 * sim.Microsecond,
		OOBBytesPerBlock: 64,
		StoreData:        true,
	}
}
