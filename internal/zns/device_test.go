package zns

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/sim"
)

func newTestDev(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func block(seed byte, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// writeSync drives a write to completion and returns its result.
func writeSync(eng *sim.Engine, d *Device, z int, lba int64, n int, data []byte, tag WriteTag) WriteResult {
	var res WriteResult
	got := false
	d.Write(z, lba, n, data, nil, tag, func(r WriteResult) { res = r; got = true })
	eng.Run()
	if !got {
		panic("write never completed")
	}
	return res
}

func readSync(eng *sim.Engine, d *Device, z int, lba int64, n int) ReadResult {
	var res ReadResult
	got := false
	d.Read(z, lba, n, func(r ReadResult) { res = r; got = true })
	eng.Run()
	if !got {
		panic("read never completed")
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	good := TestConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BlockSize = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero block size")
	}
	bad = good
	bad.NumChannels = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero channels")
	}
	bad = good
	bad.DeviceWriteBW = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero bandwidth")
	}
}

func TestTable2Presets(t *testing.T) {
	// The paper's Table 2 numbers must fall out of the presets.
	cases := []struct {
		cfg       Config
		zoneMB    int64
		zrwaKB    int64
		openMax   int
		totalZRWA int64 // bytes
	}{
		{ZN540(16), 1077, 1024, 14, 14 * mib},
		{J5500Z(4), 18144, 1024, 16, 16 * mib},
		{NS8600G(8), 2880, 1440, 8, 11520 * kib},
		{PM1731a(64), 96, 64, 384, 24 * mib},
	}
	for _, c := range cases {
		if got := c.cfg.ZoneBytes() / mib; got != c.zoneMB {
			t.Errorf("%s zone = %d MB, want %d", c.cfg.Name, got, c.zoneMB)
		}
		if got := c.cfg.ZRWABytes() / kib; got != c.zrwaKB {
			t.Errorf("%s zrwa = %d KB, want %d", c.cfg.Name, got, c.zrwaKB)
		}
		if c.cfg.MaxOpenZones != c.openMax {
			t.Errorf("%s maxopen = %d, want %d", c.cfg.Name, c.cfg.MaxOpenZones, c.openMax)
		}
		if got := c.cfg.TotalZRWABytes(); got != c.totalZRWA {
			t.Errorf("%s total zrwa = %d, want %d", c.cfg.Name, got, c.totalZRWA)
		}
	}
}

func TestSequentialWriteAdvancesWP(t *testing.T) {
	eng, d := newTestDev(t)
	if r := writeSync(eng, d, 0, 0, 4, block(1, 4*4096), TagUserData); r.Err != nil {
		t.Fatal(r.Err)
	}
	info, _ := d.ZoneInfo(0)
	if info.WritePtr != 4 {
		t.Fatalf("wp = %d, want 4", info.WritePtr)
	}
	if info.State != ZoneImplicitOpen {
		t.Fatalf("state = %v, want implicit-open", info.State)
	}
}

func TestNonSequentialWriteFails(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 0, 0, 2, nil, TagUserData)
	if r := writeSync(eng, d, 0, 5, 1, nil, TagUserData); !errors.Is(r.Err, ErrNotSequential) {
		t.Fatalf("gap write err = %v, want ErrNotSequential", r.Err)
	}
	if r := writeSync(eng, d, 0, 0, 1, nil, TagUserData); !errors.Is(r.Err, ErrNotSequential) {
		t.Fatalf("rewind write err = %v, want ErrNotSequential", r.Err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, d := newTestDev(t)
	payload := block(7, 3*4096)
	writeSync(eng, d, 2, 0, 3, payload, TagUserData)
	r := readSync(eng, d, 2, 0, 3)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("read data != written data")
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	eng, d := newTestDev(t)
	r := readSync(eng, d, 1, 10, 2)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestZoneFullTransition(t *testing.T) {
	eng, d := newTestDev(t)
	cfg := d.Config()
	var lba int64
	for lba < cfg.ZoneBlocks {
		if r := writeSync(eng, d, 0, lba, 16, nil, TagUserData); r.Err != nil {
			t.Fatal(r.Err)
		}
		lba += 16
	}
	info, _ := d.ZoneInfo(0)
	if info.State != ZoneFull {
		t.Fatalf("state = %v, want full", info.State)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("open zones = %d after fill, want 0", d.OpenZones())
	}
	if r := writeSync(eng, d, 0, lba, 1, nil, TagUserData); !errors.Is(r.Err, ErrZoneFull) {
		t.Fatalf("write to full zone err = %v", r.Err)
	}
}

func TestMaxOpenZones(t *testing.T) {
	eng, d := newTestDev(t)
	cfg := d.Config()
	for z := 0; z < cfg.MaxOpenZones; z++ {
		if r := writeSync(eng, d, z, 0, 1, nil, TagUserData); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if r := writeSync(eng, d, cfg.MaxOpenZones, 0, 1, nil, TagUserData); !errors.Is(r.Err, ErrTooManyOpen) {
		t.Fatalf("overflow open err = %v, want ErrTooManyOpen", r.Err)
	}
	// Finishing one zone frees a slot.
	if err := d.Finish(0); err != nil {
		t.Fatal(err)
	}
	if r := writeSync(eng, d, cfg.MaxOpenZones, 0, 1, nil, TagUserData); r.Err != nil {
		t.Fatalf("write after finish err = %v", r.Err)
	}
}

func TestExplicitOpenRules(t *testing.T) {
	_, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	info, _ := d.ZoneInfo(0)
	if info.State != ZoneExplicitOpen || !info.ZRWA {
		t.Fatalf("open state = %+v", info)
	}
	cfg := d.Config()
	for z := 1; z < cfg.MaxOpenZones; z++ {
		if err := d.Open(z, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Open(cfg.MaxOpenZones, false); !errors.Is(err, ErrTooManyOpen) {
		t.Fatalf("open overflow err = %v", err)
	}
}

func TestZRWARandomWriteWithinWindow(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	// Random order within the 16-block window, all must succeed.
	for _, lba := range []int64{5, 0, 15, 7, 3} {
		if r := writeSync(eng, d, 0, lba, 1, block(byte(lba), 4096), TagUserData); r.Err != nil {
			t.Fatalf("zrwa write at %d: %v", lba, r.Err)
		}
	}
	r := readSync(eng, d, 0, 5, 1)
	if !bytes.Equal(r.Data, block(5, 4096)) {
		t.Fatal("zrwa buffered read mismatch")
	}
}

func TestZRWAInPlaceUpdateAbsorbed(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if r := writeSync(eng, d, 0, 3, 1, block(byte(i), 4096), TagUserData); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := d.Stats()
	if st.TotalProgrammed() != 0 {
		t.Fatalf("in-window overwrites reached flash: %d bytes", st.TotalProgrammed())
	}
	if st.AbsorbedBytes != 9*4096 {
		t.Fatalf("absorbed = %d, want %d", st.AbsorbedBytes, 9*4096)
	}
	r := readSync(eng, d, 0, 3, 1)
	if !bytes.Equal(r.Data, block(9, 4096)) {
		t.Fatal("latest overwrite not visible")
	}
}

func TestZRWAImplicitShiftFlushes(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	// Fill the whole window [0,16), then write one block beyond: the window
	// shifts right by one and block 0 is flushed to flash.
	for lba := int64(0); lba < cfg.ZRWABlocks; lba++ {
		writeSync(eng, d, 0, lba, 1, block(byte(lba), 4096), TagUserData)
	}
	if d.Stats().TotalProgrammed() != 0 {
		t.Fatal("window fill should not flush")
	}
	writeSync(eng, d, 0, cfg.ZRWABlocks, 1, block(99, 4096), TagUserData)
	eng.Run()
	info, _ := d.ZoneInfo(0)
	if info.WritePtr != 1 {
		t.Fatalf("wp = %d after shift, want 1", info.WritePtr)
	}
	if got := d.Stats().TotalProgrammed(); got != 4096 {
		t.Fatalf("programmed = %d, want 4096", got)
	}
	// Block 0 is now immutable.
	if r := writeSync(eng, d, 0, 0, 1, nil, TagUserData); !errors.Is(r.Err, ErrOutOfWindow) {
		t.Fatalf("write behind window err = %v", r.Err)
	}
	// Flushed data still readable from flash.
	r := readSync(eng, d, 0, 0, 1)
	if !bytes.Equal(r.Data, block(0, 4096)) {
		t.Fatal("flushed block content lost")
	}
}

func TestZRWAExplicitCommit(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	writeSync(eng, d, 0, 0, 8, block(1, 8*4096), TagUserData)
	if err := d.CommitZRWA(0, 8); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	info, _ := d.ZoneInfo(0)
	if info.WritePtr != 8 {
		t.Fatalf("wp = %d, want 8", info.WritePtr)
	}
	if got := d.Stats().TotalProgrammed(); got != 8*4096 {
		t.Fatalf("programmed = %d, want %d", got, 8*4096)
	}
	if err := d.CommitZRWA(0, 4); !errors.Is(err, ErrBadRange) {
		t.Fatalf("backward commit err = %v", err)
	}
	if err := d.CommitZRWA(0, 8+d.Config().ZRWABlocks+1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("too-far commit err = %v", err)
	}
}

func TestZRWACommitSkipsHoles(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	// Write blocks 0 and 2, leave a hole at 1; commit all three.
	writeSync(eng, d, 0, 0, 1, block(1, 4096), TagUserData)
	writeSync(eng, d, 0, 2, 1, block(3, 4096), TagUserData)
	if err := d.CommitZRWA(0, 3); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := d.Stats().TotalProgrammed(); got != 2*4096 {
		t.Fatalf("programmed = %d, want %d (holes skipped)", got, 2*4096)
	}
	r := readSync(eng, d, 0, 1, 1)
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("hole block not zero")
		}
	}
}

func TestZRWAFinishFlushesAndFills(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	writeSync(eng, d, 0, 0, 5, block(1, 5*4096), TagUserData)
	if err := d.Finish(0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	info, _ := d.ZoneInfo(0)
	if info.State != ZoneFull {
		t.Fatalf("state = %v", info.State)
	}
	if got := d.Stats().TotalProgrammed(); got != 5*4096 {
		t.Fatalf("programmed = %d", got)
	}
	if d.OpenZones() != 0 {
		t.Fatal("finish did not release open slot")
	}
	r := readSync(eng, d, 0, 0, 5)
	if !bytes.Equal(r.Data, block(1, 5*4096)) {
		t.Fatal("finished zone content lost")
	}
}

func TestZRWAWriteLargerThanWindowRejected(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	n := int(d.Config().ZRWABlocks) + 1
	if r := writeSync(eng, d, 0, 0, n, nil, TagUserData); !errors.Is(r.Err, ErrBadRange) {
		t.Fatalf("oversized zrwa write err = %v", r.Err)
	}
}

func TestAppendAssignsLBA(t *testing.T) {
	eng, d := newTestDev(t)
	var lbas []int64
	for i := 0; i < 3; i++ {
		d.Append(0, 2, nil, nil, TagUserData, func(r AppendResult) {
			if r.Err != nil {
				t.Errorf("append: %v", r.Err)
			}
			lbas = append(lbas, r.LBA)
		})
	}
	eng.Run()
	want := []int64{0, 2, 4}
	for i, w := range want {
		if lbas[i] != w {
			t.Fatalf("append lbas = %v, want %v", lbas, want)
		}
	}
}

func TestAppendRejectedOnZRWAZone(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	var got error
	d.Append(0, 1, nil, nil, TagUserData, func(r AppendResult) { got = r.Err })
	eng.Run()
	if !errors.Is(got, ErrAppendWithZRWA) {
		t.Fatalf("append on zrwa zone err = %v", got)
	}
}

func TestResetClearsZone(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 0, 0, 4, block(1, 4*4096), TagUserData)
	var rerr error
	fired := false
	d.Reset(0, func(err error) { rerr = err; fired = true })
	eng.Run()
	if !fired || rerr != nil {
		t.Fatalf("reset fired=%v err=%v", fired, rerr)
	}
	info, _ := d.ZoneInfo(0)
	if info.State != ZoneEmpty || info.WritePtr != 0 {
		t.Fatalf("zone after reset: %+v", info)
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("erase count = %d", d.EraseCount(0))
	}
	r := readSync(eng, d, 0, 0, 1)
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("reset did not drop data")
		}
	}
	// The zone is writable from block 0 again.
	if r := writeSync(eng, d, 0, 0, 1, nil, TagUserData); r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestResetDropsZRWABuffer(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	writeSync(eng, d, 0, 0, 4, block(9, 4*4096), TagUserData)
	d.Reset(0, nil)
	eng.Run()
	if d.Stats().TotalProgrammed() != 0 {
		t.Fatal("reset flushed buffer to flash")
	}
	info, _ := d.ZoneInfo(0)
	if info.ZRWA {
		t.Fatal("zrwa flag survived reset")
	}
}

func TestWriteTagsAccountedSeparately(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 0, 0, 2, nil, TagUserData)
	writeSync(eng, d, 1, 0, 1, nil, TagParity)
	writeSync(eng, d, 2, 0, 3, nil, TagGCData)
	st := d.Stats()
	if st.ProgrammedByTag(TagUserData) != 2*4096 ||
		st.ProgrammedByTag(TagParity) != 4096 ||
		st.ProgrammedByTag(TagGCData) != 3*4096 {
		t.Fatalf("per-tag accounting wrong: %+v", st.ProgrammedBytes)
	}
}

func TestOOBPersistedWithData(t *testing.T) {
	eng, d := newTestDev(t)
	oob := [][]byte{[]byte("lbn=42,sn=7"), []byte("lbn=43,sn=7")}
	var done bool
	d.Write(0, 0, 2, block(1, 2*4096), oob, TagUserData, func(r WriteResult) {
		if r.Err != nil {
			t.Errorf("write: %v", r.Err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("no completion")
	}
	r := readSync(eng, d, 0, 0, 2)
	if string(r.OOB[0]) != "lbn=42,sn=7" || string(r.OOB[1]) != "lbn=43,sn=7" {
		t.Fatalf("oob round trip: %q %q", r.OOB[0], r.OOB[1])
	}
}

func TestChannelMappingRoundRobinByDefault(t *testing.T) {
	_, d := newTestDev(t)
	for z := 0; z < d.Zones(); z++ {
		if d.TrueChannelOf(z) != z%d.NumChannels() {
			t.Fatalf("zone %d not round-robin mapped", z)
		}
	}
}

func TestChannelMappingShuffle(t *testing.T) {
	eng := sim.NewEngine()
	cfg := TestConfig()
	cfg.ShuffleFraction = 0.5
	cfg.Seed = 99
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	deviations := 0
	for z := 0; z < d.Zones(); z++ {
		if d.TrueChannelOf(z) != z%d.NumChannels() {
			deviations++
		}
	}
	// Half the zones get a random channel; ~1/4 of those land back on the
	// round-robin slot by chance, so expect roughly 3/8 deviating.
	if deviations < d.Zones()/8 || deviations > d.Zones()*5/8 {
		t.Fatalf("deviations = %d of %d, want roughly 3/8", deviations, d.Zones())
	}
	// Determinism: same seed, same mapping.
	d2, _ := New(sim.NewEngine(), cfg)
	for z := 0; z < d.Zones(); z++ {
		if d.TrueChannelOf(z) != d2.TrueChannelOf(z) {
			t.Fatal("shuffled mapping not deterministic")
		}
	}
}

func TestOfflineZoneRejectsIO(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.SetOffline(3); err != nil {
		t.Fatal(err)
	}
	if r := writeSync(eng, d, 3, 0, 1, nil, TagUserData); !errors.Is(r.Err, ErrZoneOffline) {
		t.Fatalf("write to offline err = %v", r.Err)
	}
	if r := readSync(eng, d, 3, 0, 1); !errors.Is(r.Err, ErrZoneOffline) {
		t.Fatalf("read of offline err = %v", r.Err)
	}
}

func TestBadZoneAndRange(t *testing.T) {
	eng, d := newTestDev(t)
	if r := writeSync(eng, d, -1, 0, 1, nil, TagUserData); !errors.Is(r.Err, ErrBadZone) {
		t.Fatalf("bad zone err = %v", r.Err)
	}
	if r := writeSync(eng, d, 999, 0, 1, nil, TagUserData); !errors.Is(r.Err, ErrBadZone) {
		t.Fatalf("bad zone err = %v", r.Err)
	}
	if r := readSync(eng, d, 0, d.Config().ZoneBlocks, 1); !errors.Is(r.Err, ErrBadRange) {
		t.Fatalf("range err = %v", r.Err)
	}
}

func TestCloseAndReopen(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 0, 0, 4, block(5, 4*4096), TagUserData)
	if err := d.Close(0); err != nil {
		t.Fatal(err)
	}
	if d.OpenZones() != 0 {
		t.Fatal("close did not release slot")
	}
	// Write to closed zone implicitly reopens at wp.
	if r := writeSync(eng, d, 0, 4, 1, nil, TagUserData); r.Err != nil {
		t.Fatal(r.Err)
	}
	if d.OpenZones() != 1 {
		t.Fatal("implicit reopen did not take a slot")
	}
	r := readSync(eng, d, 0, 0, 4)
	if !bytes.Equal(r.Data, block(5, 4*4096)) {
		t.Fatal("closed zone content lost")
	}
}

func TestZRWACloseCommitsBuffer(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	writeSync(eng, d, 0, 0, 3, block(8, 3*4096), TagUserData)
	if err := d.Close(0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := d.Stats().TotalProgrammed(); got != 3*4096 {
		t.Fatalf("programmed after close = %d", got)
	}
}

// --- Performance-shape tests: the simulator must reproduce the paper's
// preliminary-study observations. ---

// TestSingleZonePeakBandwidth checks that a deeply queued single zone
// saturates near the channel write bandwidth (Table 3 scenario 1).
func TestSingleZonePeakBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ZN540(64)
	cfg.StoreData = false
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	const depth = 32
	const blocksPerWrite = 16 // 64 KiB
	var next int64
	var doneBytes int64
	var submit func()
	submit = func() {
		lba := next
		next += blocksPerWrite
		if lba+blocksPerWrite > cfg.ZoneBlocks {
			return
		}
		d.Write(0, lba, blocksPerWrite, nil, nil, TagUserData, func(r WriteResult) {
			if r.Err != nil {
				t.Errorf("write at %d: %v", lba, r.Err)
				return
			}
			doneBytes += blocksPerWrite * 4096
			submit()
		})
	}
	for i := 0; i < depth; i++ {
		submit()
	}
	eng.RunUntil(200 * sim.Millisecond)
	mbps := float64(doneBytes) / 1e6 / 0.2
	if mbps < 900 || mbps > 1200 {
		t.Fatalf("single-zone depth-32 throughput = %.0f MB/s, want ~1092", mbps)
	}
}

// TestIntraZoneDepth1Penalty checks that one in-flight write reaches well
// under half of the zone bandwidth (Fig. 5: 34.7%-45.5% retained).
func TestIntraZoneDepth1Penalty(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ZN540(64)
	cfg.StoreData = false
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	const blocksPerWrite = 16
	var next int64
	var doneBytes int64
	var submit func()
	submit = func() {
		lba := next
		next += blocksPerWrite
		if lba+blocksPerWrite > cfg.ZoneBlocks {
			return
		}
		d.Write(0, lba, blocksPerWrite, nil, nil, TagUserData, func(r WriteResult) {
			if r.Err != nil {
				t.Errorf("write: %v", r.Err)
				return
			}
			doneBytes += blocksPerWrite * 4096
			submit()
		})
	}
	submit()
	eng.RunUntil(200 * sim.Millisecond)
	mbps := float64(doneBytes) / 1e6 / 0.2
	frac := mbps / 1092
	if frac < 0.20 || frac > 0.60 {
		t.Fatalf("depth-1 retention = %.2f of zone bw (%.0f MB/s), want 0.25-0.55", frac, mbps)
	}
}

// TestTwoZonesSameVsDifferentChannel reproduces Table 3's contrast: zones
// on one channel share its bandwidth; zones on different channels scale.
func TestTwoZonesSameVsDifferentChannel(t *testing.T) {
	run := func(zoneA, zoneB int) float64 {
		eng := sim.NewEngine()
		cfg := ZN540(64)
		cfg.StoreData = false
		d, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, z := range []int{zoneA, zoneB} {
			if err := d.Open(z, true); err != nil {
				t.Fatal(err)
			}
		}
		var doneBytes int64
		const blocksPerWrite = 16
		for _, z := range []int{zoneA, zoneB} {
			z := z
			next := map[int]*int64{zoneA: new(int64), zoneB: new(int64)}[z]
			var submit func()
			submit = func() {
				lba := *next
				*next += blocksPerWrite
				if lba+blocksPerWrite > cfg.ZoneBlocks {
					return
				}
				d.Write(z, lba, blocksPerWrite, nil, nil, TagUserData, func(r WriteResult) {
					if r.Err != nil {
						return
					}
					doneBytes += blocksPerWrite * 4096
					submit()
				})
			}
			for i := 0; i < 16; i++ {
				submit()
			}
		}
		eng.RunUntil(200 * sim.Millisecond)
		return float64(doneBytes) / 1e6 / 0.2
	}
	// Zones 0 and 8 share channel 0 (round-robin, 8 channels); zones 0 and
	// 1 are on different channels.
	same := run(0, 8)
	diff := run(0, 1)
	if same > 1300 {
		t.Fatalf("same-channel pair = %.0f MB/s, want ~1092 (no scaling)", same)
	}
	if diff < 1800 {
		t.Fatalf("diff-channel pair = %.0f MB/s, want ~2170 (2x scaling)", diff)
	}
	if diff < same*1.6 {
		t.Fatalf("channel separation speedup only %.2fx", diff/same)
	}
}

// TestDeviceWriteLinkCap checks aggregate writes cannot exceed the device
// link (2170 MB/s for ZN540) no matter how many channels run.
func TestDeviceWriteLinkCap(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ZN540(64)
	cfg.StoreData = false
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var doneBytes int64
	const blocksPerWrite = 16
	for z := 0; z < 8; z++ {
		z := z
		if err := d.Open(z, true); err != nil {
			t.Fatal(err)
		}
		next := new(int64)
		var submit func()
		submit = func() {
			lba := *next
			*next += blocksPerWrite
			if lba+blocksPerWrite > cfg.ZoneBlocks {
				return
			}
			d.Write(z, lba, blocksPerWrite, nil, nil, TagUserData, func(r WriteResult) {
				if r.Err != nil {
					return
				}
				doneBytes += blocksPerWrite * 4096
				submit()
			})
		}
		for i := 0; i < 8; i++ {
			submit()
		}
	}
	eng.RunUntil(200 * sim.Millisecond)
	mbps := float64(doneBytes) / 1e6 / 0.2
	if mbps > 2400 {
		t.Fatalf("aggregate = %.0f MB/s exceeds device link 2170", mbps)
	}
	if mbps < 1900 {
		t.Fatalf("aggregate = %.0f MB/s, want ~2170", mbps)
	}
}

// TestGCInterferenceOnSharedChannel verifies that flash traffic on a
// zone's channel inflates same-channel write latency (the §3.3 effect
// behind BIZA's GC avoidance).
func TestGCInterferenceOnSharedChannel(t *testing.T) {
	lat := func(gcOnSameChannel bool) float64 {
		eng := sim.NewEngine()
		cfg := ZN540(64)
		cfg.StoreData = false
		d, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		user, gc := 0, 1 // different channels
		if gcOnSameChannel {
			gc = 8 // same channel as zone 0
		}
		if err := d.Open(user, true); err != nil {
			t.Fatal(err)
		}
		if err := d.Open(gc, true); err != nil {
			t.Fatal(err)
		}
		// Background "GC" stream hammers the gc zone.
		gcNext := new(int64)
		var gcSubmit func()
		gcSubmit = func() {
			lba := *gcNext
			*gcNext += 16
			if lba+16 > cfg.ZoneBlocks {
				return
			}
			d.Write(gc, lba, 16, nil, nil, TagGCData, func(r WriteResult) { gcSubmit() })
		}
		for i := 0; i < 16; i++ {
			gcSubmit()
		}
		// Foreground user writes, depth 1, measure latency.
		var total sim.Time
		var count int
		uNext := new(int64)
		var uSubmit func()
		uSubmit = func() {
			lba := *uNext
			*uNext += 16
			if lba+16 > cfg.ZoneBlocks {
				return
			}
			d.Write(user, lba, 16, nil, nil, TagUserData, func(r WriteResult) {
				total += r.Latency
				count++
				uSubmit()
			})
		}
		uSubmit()
		eng.RunUntil(100 * sim.Millisecond)
		return float64(total) / float64(count)
	}
	isolated := lat(false)
	interfered := lat(true)
	if interfered < isolated*1.5 {
		t.Fatalf("same-channel GC interference too small: %.0fns vs %.0fns", interfered, isolated)
	}
}

func TestMultiBlockZRWAWrite(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	// A multi-block write filling most of the window, then an overlapping
	// in-window rewrite of its middle.
	if r := writeSync(eng, d, 0, 0, 12, block(1, 12*4096), TagUserData); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := writeSync(eng, d, 0, 4, 4, block(99, 4*4096), TagUserData); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := readSync(eng, d, 0, 0, 12)
	want := block(1, 12*4096)
	copy(want[4*4096:8*4096], block(99, 4*4096))
	if !bytes.Equal(r.Data, want) {
		t.Fatal("overlapping in-window rewrite wrong")
	}
	if d.Stats().AbsorbedBytes != 4*4096 {
		t.Fatalf("absorbed = %d", d.Stats().AbsorbedBytes)
	}
}

func TestReadSpanningBufferAndFlash(t *testing.T) {
	eng, d := newTestDev(t)
	if err := d.Open(0, true); err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	// Fill two windows' worth so the first window is flushed to flash
	// while the second stays buffered.
	n := int(cfg.ZRWABlocks)
	writeSync(eng, d, 0, 0, n, block(1, n*4096), TagUserData)
	writeSync(eng, d, 0, int64(n), n, block(2, n*4096), TagUserData)
	eng.Run()
	// Read across the boundary: half flash, half buffer.
	r := readSync(eng, d, 0, int64(n/2), n)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	want := append(block(1, n*4096)[n/2*4096:], block(2, n*4096)[:n/2*4096]...)
	if !bytes.Equal(r.Data, want) {
		t.Fatal("mixed buffer/flash read wrong")
	}
}

func TestAppendAfterFinishFails(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 5, 0, 1, nil, TagUserData)
	if err := d.Finish(5); err != nil {
		t.Fatal(err)
	}
	var got error
	d.Append(5, 1, nil, nil, TagUserData, func(r AppendResult) { got = r.Err })
	eng.Run()
	if !errors.Is(got, ErrZoneFull) {
		t.Fatalf("append after finish: %v", got)
	}
}

func TestFinishIdempotent(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 1, 0, 1, nil, TagUserData)
	if err := d.Finish(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(1); err != nil {
		t.Fatalf("second finish: %v", err)
	}
}

func TestActiveZoneLimitWithFullZones(t *testing.T) {
	// Regression for the active-zone accounting bug: FULL zones must not
	// count against the active limit, so many more zones than MaxActive
	// can be filled over a device's life.
	eng := sim.NewEngine()
	cfg := TestConfig()
	cfg.MaxOpenZones = 2
	cfg.MaxActiveZone = 4
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 12; z++ {
		var lba int64
		for lba < cfg.ZoneBlocks {
			if r := writeSync(eng, d, z, lba, 16, nil, TagUserData); r.Err != nil {
				t.Fatalf("zone %d lba %d: %v", z, lba, r.Err)
			}
			lba += 16
		}
	}
	if d.OpenZones() != 0 {
		t.Fatalf("open zones = %d", d.OpenZones())
	}
}

func TestChannelUtilizationTelemetry(t *testing.T) {
	eng, d := newTestDev(t)
	// Hammer zone 0 (channel 0); channel 1 stays idle.
	for lba := int64(0); lba+16 <= d.Config().ZoneBlocks; lba += 16 {
		writeSync(eng, d, 0, lba, 16, nil, TagUserData)
	}
	eng.Run()
	elapsed := eng.Now()
	if u := d.ChannelUtilization(0, elapsed); u <= 0 {
		t.Fatalf("channel 0 utilization = %v", u)
	}
	if u := d.ChannelUtilization(1, elapsed); u != 0 {
		t.Fatalf("idle channel utilization = %v", u)
	}
	if u := d.ChannelUtilization(-1, elapsed); u != 0 {
		t.Fatal("bad channel index not guarded")
	}
}

func TestReportZones(t *testing.T) {
	eng, d := newTestDev(t)
	writeSync(eng, d, 0, 0, 4, nil, TagUserData)
	d.Open(3, true)
	infos := d.ReportZones()
	if len(infos) != d.Zones() {
		t.Fatalf("report length %d", len(infos))
	}
	if infos[0].WritePtr != 4 || infos[0].State != ZoneImplicitOpen {
		t.Fatalf("zone0 info %+v", infos[0])
	}
	if !infos[3].ZRWA || infos[3].State != ZoneExplicitOpen {
		t.Fatalf("zone3 info %+v", infos[3])
	}
}

func TestOpenReportChannelExposure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := TestConfig()
	cfg.ShuffleFraction = 0.5
	cfg.Seed = 77
	// Opaque device: channel reported as -1.
	d1, _ := New(eng, cfg)
	ch, err := d1.OpenReport(0, true)
	if err != nil || ch != -1 {
		t.Fatalf("opaque OpenReport = %d, %v", ch, err)
	}
	// Future-ZNS device: the OPEN completion carries the true channel.
	cfg.ExposeChannelOnOpen = true
	d2, _ := New(eng, cfg)
	for z := 0; z < 6; z++ {
		ch, err := d2.OpenReport(z, true)
		if err != nil {
			t.Fatal(err)
		}
		if ch != d2.TrueChannelOf(z) {
			t.Fatalf("zone %d reported channel %d, true %d", z, ch, d2.TrueChannelOf(z))
		}
	}
	// Failed opens propagate the error, not a channel.
	if _, err := d2.OpenReport(999, true); err == nil {
		t.Fatal("bad zone accepted")
	}
}
