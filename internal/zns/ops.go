package zns

import (
	"biza/internal/buf"
	"biza/internal/obs"
	"biza/internal/sim"
)

// Pooled command records. Each data-path command (write, append, read) and
// each flash program batch is driven by one record implementing
// sim.Handler: the record carries a stage counter and re-schedules itself
// through the resource pipeline, replacing the per-command closure chain.
// Records live on device-local free lists (the simulation is
// single-goroutine), so a steady-state command performs no allocation
// inside the device.

// writeOp stages (sequential, ZRWA, and failure paths share the record).
const (
	wFail    = iota // validation failed: deliver the error after CmdOverhead
	wSeqCtrl        // controller overhead done -> host link transfer
	wSeqXfer        // host link done -> channel program bus
	wSeqBus         // channel bus done -> die program
	wSeqDie         // die program done -> complete
	wZCtrl          // controller overhead done -> acquire buffer credit
	wZXfer          // host link done -> DRAM buffer write
	wZBuf           // buffer write done -> complete
)

type writeOp struct {
	d       *Device
	zn      *zone
	z       int
	lba     int64
	n       int64
	size    int64
	need    int64  // ZRWA buffer credit required
	epoch   uint64 // device power epoch at submission
	tag     WriteTag
	data    []byte
	oob     [][]byte
	own     *buf.Buf // transferred reference pinning data (WriteOwned)
	span    obs.SpanID
	ownSpan bool
	start   sim.Time
	err     error
	stage   uint8
	done    func(WriteResult)
	adone   func(AppendResult) // set instead of done for appends
}

func (d *Device) getWriteOp() *writeOp {
	if n := len(d.wopFree); n > 0 {
		op := d.wopFree[n-1]
		d.wopFree = d.wopFree[:n-1]
		op.epoch = d.epoch
		return op
	}
	return &writeOp{d: d, epoch: d.epoch}
}

func (d *Device) putWriteOp(op *writeOp) {
	buf.Release(op.own)
	*op = writeOp{d: d}
	d.wopFree = append(d.wopFree, op)
}

// fail delivers err after the command overhead, like any other completion.
func (op *writeOp) fail(err error) {
	if op.done == nil && op.adone == nil && !op.ownSpan {
		op.d.putWriteOp(op)
		return
	}
	op.err = err
	op.stage = wFail
	op.d.eng.AfterEvent(op.d.cfg.CmdOverhead, op, 0, 0)
}

// complete finishes the span, recycles the record, and then invokes the
// caller's callback (recycle-first so a re-entrant submission can reuse it).
func (op *writeOp) complete() {
	d := op.d
	if op.ownSpan {
		d.tr.SpanEnd(op.span, int64(d.eng.Now()), op.err != nil)
	}
	done, adone := op.done, op.adone
	err, lba := op.err, op.lba
	lat := d.eng.Now() - op.start
	d.putWriteOp(op)
	if adone != nil {
		adone(AppendResult{Err: err, LBA: lba, Latency: lat})
	} else if done != nil {
		done(WriteResult{Err: err, Latency: lat})
	}
}

// creditGranted continues a ZRWA write once buffer slots are available.
func (op *writeOp) creditGranted() {
	d := op.d
	op.stage = wZXfer
	d.writeLink.SubmitEvent(op.size*sim.Second/d.cfg.DeviceWriteBW, op)
}

func (op *writeOp) Fire(s, e sim.Time) {
	d := op.d
	if op.epoch != d.epoch {
		// Power was lost while the command was in flight: it dies
		// silently with the host that issued it.
		d.putWriteOp(op)
		return
	}
	switch op.stage {
	case wFail:
		op.complete()
	case wSeqCtrl:
		op.stage = wSeqXfer
		d.writeLink.SubmitEvent(op.size*sim.Second/d.cfg.DeviceWriteBW, op)
	case wSeqXfer:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseXfer, d.trDev, op.z, -1)
		op.stage = wSeqBus
		d.chans[op.zn.channel].writeBus.SubmitEvent(op.size*sim.Second/d.cfg.ChannelWriteBW, op)
	case wSeqBus:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseBus, d.trDev, op.z, op.zn.channel)
		op.stage = wSeqDie
		d.chans[op.zn.channel].dies.SubmitEvent(op.size*sim.Second/d.cfg.DieWriteBW, op)
	case wSeqDie:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseDie, d.trDev, op.z, op.zn.channel)
		if d.cfg.StoreData {
			d.storeDirect(op.zn, op.lba, int(op.n), op.data, op.oob)
		}
		d.stats.ProgrammedBytes[op.tag] += uint64(op.size)
		op.complete()
	case wZCtrl:
		d.acquireCreditOp(op.zn, op)
	case wZXfer:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseXfer, d.trDev, op.z, -1)
		op.stage = wZBuf
		now := d.eng.Now()
		d.eng.AtEvent(now+d.cfg.BufWriteLatency, op, now, now+d.cfg.BufWriteLatency)
	case wZBuf:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseBuffer, d.trDev, op.z, -1)
		// The completion below acknowledges the write: its buffered
		// blocks become capacitor-protected against power loss.
		d.ackRange(op.zn, op.lba, op.n)
		op.complete()
	}
}

// readOp stages.
const (
	rFail = iota // validation failed
	rCtrl        // controller overhead done -> buffer or flash path
	rBuf         // DRAM buffer read done -> host link transfer
	rBus         // channel read bus done -> die read
	rDie         // die read done -> host link transfer
	rXfer        // host link done -> complete
)

type readOp struct {
	d        *Device
	zn       *zone
	z        int
	lba      int64
	n        int64
	size     int64
	epoch    uint64 // device power epoch at submission
	inBuffer bool
	span     obs.SpanID
	ownSpan  bool
	start    sim.Time
	err      error
	stage    uint8
	done     func(ReadResult)
}

func (d *Device) getReadOp() *readOp {
	if n := len(d.ropFree); n > 0 {
		op := d.ropFree[n-1]
		d.ropFree = d.ropFree[:n-1]
		op.epoch = d.epoch
		return op
	}
	return &readOp{d: d, epoch: d.epoch}
}

func (d *Device) putReadOp(op *readOp) {
	*op = readOp{d: d}
	d.ropFree = append(d.ropFree, op)
}

func (op *readOp) fail(err error) {
	if op.done == nil && !op.ownSpan {
		op.d.putReadOp(op)
		return
	}
	op.err = err
	op.stage = rFail
	op.d.eng.AfterEvent(op.d.cfg.CmdOverhead, op, 0, 0)
}

func (op *readOp) complete(res ReadResult) {
	d := op.d
	if op.ownSpan {
		d.tr.SpanEnd(op.span, int64(d.eng.Now()), res.Err != nil)
	}
	done := op.done
	res.Latency = d.eng.Now() - op.start
	d.putReadOp(op)
	if done != nil {
		done(res)
	}
}

// gather assembles the read payload at completion time (StoreData only):
// buffered blocks win over flash contents, matching what a real device
// would return from its write buffer.
func (op *readOp) gather() ReadResult {
	d, zn := op.d, op.zn
	if !d.cfg.StoreData {
		return ReadResult{}
	}
	data := make([]byte, op.size)
	oob := make([][]byte, op.n)
	bs := int64(d.cfg.BlockSize)
	for i := int64(0); i < op.n; i++ {
		b := op.lba + i
		var src, so []byte
		if zn.dirty != nil {
			if bb, ok := zn.dirty[b]; ok {
				src, so = bb.data, bb.oob
			} else if bb, ok := zn.pending[b]; ok {
				src, so = bb.data, bb.oob
			}
		}
		if src == nil && zn.data != nil {
			src, so = zn.data[b], zn.oob[b]
		}
		if src != nil {
			copy(data[i*bs:(i+1)*bs], src)
		}
		if so != nil {
			oob[i] = append([]byte(nil), so...)
		}
	}
	return ReadResult{Data: data, OOB: oob}
}

func (op *readOp) Fire(s, e sim.Time) {
	d := op.d
	if op.epoch != d.epoch {
		d.putReadOp(op)
		return
	}
	switch op.stage {
	case rFail:
		op.complete(ReadResult{Err: op.err})
	case rCtrl:
		if op.inBuffer {
			op.stage = rBuf
			now := d.eng.Now()
			d.eng.AtEvent(now+d.cfg.BufReadLatency, op, now, now+d.cfg.BufReadLatency)
			return
		}
		op.stage = rBus
		d.chans[op.zn.channel].readBus.SubmitEvent(op.size*sim.Second/d.cfg.ChannelReadBW, op)
	case rBuf:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseBuffer, d.trDev, op.z, -1)
		op.stage = rXfer
		d.readLink.SubmitEvent(op.size*sim.Second/d.cfg.DeviceReadBW, op)
	case rBus:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseBus, d.trDev, op.z, op.zn.channel)
		op.stage = rDie
		d.chans[op.zn.channel].dies.SubmitEvent(d.cfg.DieReadLatency+op.size*sim.Second/d.cfg.DieReadBW, op)
	case rDie:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseDie, d.trDev, op.z, op.zn.channel)
		op.stage = rXfer
		d.readLink.SubmitEvent(op.size*sim.Second/d.cfg.DeviceReadBW, op)
	case rXfer:
		d.tr.Mark(op.span, int64(s), int64(e), obs.LayerZNS, obs.PhaseXfer, d.trDev, op.z, -1)
		op.complete(op.gather())
	}
}

// programOp drives one flash program batch: channel bus transfer, then die
// program, then persistence/accounting and buffer-credit release.
const (
	pBus = iota
	pDie
)

type programOp struct {
	d      *Device
	zn     *zone
	start  int64
	epoch  uint64 // device power epoch at submission
	blocks []*bufBlock
	stage  uint8
}

func (d *Device) getProgramOp() *programOp {
	if n := len(d.popFree); n > 0 {
		op := d.popFree[n-1]
		d.popFree = d.popFree[:n-1]
		op.epoch = d.epoch
		return op
	}
	return &programOp{d: d, epoch: d.epoch}
}

func (op *programOp) Fire(s, e sim.Time) {
	d, zn := op.d, op.zn
	if op.epoch != d.epoch {
		// Power loss aborted the program mid-flight. The buffered blocks
		// it referenced were hardened or dropped (and recycled) by
		// PowerLoss itself, so only the batch slice and record recycle.
		run := op.blocks
		*op = programOp{d: d}
		d.popFree = append(d.popFree, op)
		if run != nil {
			d.putRun(run)
		}
		return
	}
	chIdx := zn.channel
	ch := d.chans[chIdx]
	nblk := len(op.blocks)
	switch op.stage {
	case pBus:
		d.tr.Segment(int64(s), int64(e), obs.LayerZNS, obs.SegProgramBus, d.trDev, zn.idx, chIdx, nblk)
		op.stage = pDie
		dieTime := int64(nblk) * int64(d.cfg.BlockSize) * sim.Second / d.cfg.DieWriteBW
		ch.dies.SubmitEvent(dieTime, op)
	case pDie:
		d.tr.Segment(int64(s), int64(e), obs.LayerZNS, obs.SegProgramDie, d.trDev, zn.idx, chIdx, nblk)
		for i, bb := range op.blocks {
			b := op.start + int64(i)
			delete(zn.pending, b)
			if d.cfg.StoreData {
				if zn.data == nil {
					zn.data = make(map[int64][]byte)
					zn.oob = make(map[int64][]byte)
				}
				// Ownership of scratch buffers transfers to the flash store;
				// borrowed views are copied out before their reference drops.
				if bb.data != nil {
					if bb.own != nil {
						zn.data[b] = append([]byte(nil), bb.data...)
					} else {
						zn.data[b] = bb.data
						bb.data = nil
					}
				}
				if bb.oob != nil {
					zn.oob[b] = bb.oob
					bb.oob = nil
				}
			}
			d.stats.ProgrammedBytes[bb.tag] += uint64(d.cfg.BlockSize)
			d.putBufBlock(bb)
			op.blocks[i] = nil
		}
		n := int64(nblk)
		d.putRun(op.blocks)
		op.blocks = nil
		*op = programOp{d: d}
		d.popFree = append(d.popFree, op)
		d.releaseCredit(zn, n)
	}
}

// bufBlock / scratch-buffer free lists. Data and OOB copies in the write
// buffer are recycled when their flash program retires (StoreData hands
// them over to the flash store instead, so only the record recycles).

func (d *Device) getBufBlock() *bufBlock {
	if n := len(d.bbFree); n > 0 {
		bb := d.bbFree[n-1]
		d.bbFree = d.bbFree[:n-1]
		return bb
	}
	return &bufBlock{}
}

func (d *Device) putBufBlock(bb *bufBlock) {
	if bb.own != nil {
		// data is a borrowed view, not device scratch: drop the reference
		// instead of recycling someone else's slab.
		bb.own.Release()
	} else if bb.data != nil {
		d.dataFree = append(d.dataFree, bb.data)
	}
	if bb.oob != nil {
		d.oobFree = append(d.oobFree, bb.oob)
	}
	*bb = bufBlock{}
	d.bbFree = append(d.bbFree, bb)
}

// setData installs src as the block's contents. With own non-nil the block
// borrows the caller's refcounted slab (one Retain per block, zero copy);
// otherwise it defensively copies into pooled scratch, counted in
// FlashStats.BufCopiedBytes — the copy the zero-copy gates assert away.
func (d *Device) setData(bb *bufBlock, src []byte, own *buf.Buf) {
	if own != nil {
		if bb.own != nil {
			bb.own.Release()
		} else if bb.data != nil {
			d.dataFree = append(d.dataFree, bb.data)
		}
		own.Retain()
		bb.own = own
		bb.data = src
		return
	}
	if bb.own != nil {
		bb.own.Release()
		bb.own = nil
		bb.data = nil
	}
	if bb.data == nil {
		if n := len(d.dataFree); n > 0 {
			bb.data = d.dataFree[n-1]
			d.dataFree = d.dataFree[:n-1]
		} else {
			bb.data = make([]byte, d.cfg.BlockSize)
		}
	}
	bb.data = append(bb.data[:0], src...)
	d.stats.BufCopiedBytes += uint64(len(src))
}

// setOOB copies src into the block's OOB scratch, reusing pooled buffers.
func (d *Device) setOOB(bb *bufBlock, src []byte) {
	if bb.oob == nil {
		if n := len(d.oobFree); n > 0 {
			bb.oob = d.oobFree[n-1]
			d.oobFree = d.oobFree[:n-1]
		} else {
			bb.oob = make([]byte, 0, len(src))
		}
	}
	bb.oob = append(bb.oob[:0], src...)
}

// getRun / putRun recycle the per-batch block slices used by commitRange.
func (d *Device) getRun() []*bufBlock {
	if n := len(d.runFree); n > 0 {
		r := d.runFree[n-1]
		d.runFree = d.runFree[:n-1]
		return r
	}
	return make([]*bufBlock, 0, 16)
}

func (d *Device) putRun(r []*bufBlock) {
	d.runFree = append(d.runFree, r[:0])
}
