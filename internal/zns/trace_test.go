package zns

import (
	"testing"

	"biza/internal/obs"
	"biza/internal/sim"
)

// TestDisabledTracerAllocatesNothing is the near-free-when-disabled
// contract: every obs entry point on the ZNS hot path is a nil-receiver
// no-op, so an untraced device must not allocate (or do any work) for
// observability.
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *obs.Trace // disabled
	if allocs := testing.AllocsPerRun(1000, func() {
		span := tr.SpanBegin(1, obs.LayerZNS, obs.OpWrite, 0, 0, 0, 16)
		tr.Mark(span, 1, 2, obs.LayerZNS, obs.PhaseBus, 0, 0, 0)
		tr.Segment(1, 2, obs.LayerZNS, obs.SegProgramDie, 0, 0, 0, 16)
		tr.Event(1, obs.LayerZNS, obs.EvZoneState, 0, 0, 0, 1, 0)
		tr.Counter(1, obs.ProbeKey(obs.ProbeQueueDepth, 0, 0), 1)
		tr.SpanEnd(span, 2, false)
	}); allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f per op, want 0", allocs)
	}
}

// benchWrites drives n sequential 64 KiB writes through a fresh device
// (tracer optionally attached) and reports virtual completion.
func benchWrites(b *testing.B, tr *obs.Trace) {
	b.Helper()
	eng := sim.NewEngine()
	cfg := TestConfig()
	d, err := New(eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	d.SetTracer(tr, 0)
	if err := d.Open(0, true); err != nil {
		b.Fatal(err)
	}
	blocks := 16 // 64 KiB
	zone, lba := 0, int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lba+int64(blocks) > cfg.ZoneBlocks {
			// ZRWA zones only reach Full once finished; finish explicitly
			// so rolling cannot exhaust the open-zone budget.
			if err := d.Finish(zone); err != nil {
				b.Fatal(err)
			}
			eng.Run()
			zone++
			lba = 0
			if zone >= cfg.NumZones {
				// Wrap: recycle the device so b.N is unbounded.
				for z := 0; z < cfg.NumZones; z++ {
					d.Reset(z, nil)
				}
				eng.Run()
				zone = 0
			}
			if err := d.Open(zone, true); err != nil {
				b.Fatal(err)
			}
		}
		done := false
		d.Write(zone, lba, blocks, nil, nil, TagUserData, func(r WriteResult) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			done = true
		})
		eng.Run()
		if !done {
			b.Fatal("write never completed")
		}
		lba += int64(blocks)
	}
}

// BenchmarkWriteUntraced / BenchmarkWriteTraced measure the tracer's
// overhead on the ZNS write path. The untraced variant is the shipping
// fast path (nil-check only) and must stay within noise of the seed;
// compare the pair to bound the enabled-tracer cost.
func BenchmarkWriteUntraced(b *testing.B) {
	benchWrites(b, nil)
}

func BenchmarkWriteTraced(b *testing.B) {
	benchWrites(b, obs.New(obs.Config{}))
}
