// Package zoneapi defines the zoned-storage interface shared by providers
// of ZNS semantics: a raw ZNS SSD behind the driver queue, or the RAIZN
// array engine, which exposes logical zones spanning its members. The
// dm-zap adapter consumes this interface, which is how the paper's two
// compositions (dmzap+RAIZN and mdraid+dmzap) share one adapter
// implementation.
package zoneapi

import (
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
)

// Backend is an asynchronous zoned block store with sequential-write zones.
type Backend interface {
	// Engine returns the simulation engine driving completions.
	Engine() *sim.Engine
	// BlockSize reports the logical block size in bytes.
	BlockSize() int
	// ZoneBlocks reports usable blocks per zone.
	ZoneBlocks() int64
	// Zones reports the zone count.
	Zones() int
	// MaxOpenZones reports how many zones may accept writes concurrently.
	MaxOpenZones() int
	// Write appends nblocks at lba of zone z; lba must equal the zone's
	// write pointer (sequential-write rule).
	Write(z int, lba int64, nblocks int, data []byte, tag zns.WriteTag, done func(zns.WriteResult))
	// Read fetches nblocks at lba of zone z.
	Read(z int, lba int64, nblocks int, done func(zns.ReadResult))
	// Reset erases zone z.
	Reset(z int, done func(error))
	// Finish transitions zone z to full, releasing its open slot.
	Finish(z int) error
}

// DataStorer is optionally implemented by backends that know whether their
// reads return payloads (see blockdev.DataStorer).
type DataStorer interface {
	StoresData() bool
}

// StoresData reports whether b retains payloads; backends that do not
// implement DataStorer are assumed to.
func StoresData(b Backend) bool {
	if s, ok := b.(DataStorer); ok {
		return s.StoresData()
	}
	return true
}

// SingleDevice adapts one ZNS SSD behind a driver queue to Backend. The
// queue should have ZoneOrdered set unless the caller serializes writes
// itself (dm-zap does: one in-flight write per zone).
type SingleDevice struct {
	Q *nvme.Queue
}

// Engine implements Backend.
func (s SingleDevice) Engine() *sim.Engine { return s.Q.Device().Engine() }

// BlockSize implements Backend.
func (s SingleDevice) BlockSize() int { return s.Q.Device().Config().BlockSize }

// ZoneBlocks implements Backend.
func (s SingleDevice) ZoneBlocks() int64 { return s.Q.Device().Config().ZoneBlocks }

// Zones implements Backend.
func (s SingleDevice) Zones() int { return s.Q.Device().Config().NumZones }

// MaxOpenZones implements Backend.
func (s SingleDevice) MaxOpenZones() int { return s.Q.Device().Config().MaxOpenZones }

// Write implements Backend.
func (s SingleDevice) Write(z int, lba int64, nblocks int, data []byte, tag zns.WriteTag, done func(zns.WriteResult)) {
	s.Q.Write(z, lba, nblocks, data, nil, tag, done)
}

// Read implements Backend.
func (s SingleDevice) Read(z int, lba int64, nblocks int, done func(zns.ReadResult)) {
	s.Q.Read(z, lba, nblocks, done)
}

// StoresData implements DataStorer.
func (s SingleDevice) StoresData() bool { return s.Q.Device().Config().StoreData }

// Reset implements Backend.
func (s SingleDevice) Reset(z int, done func(error)) { s.Q.Reset(z, done) }

// Finish implements Backend.
func (s SingleDevice) Finish(z int) error { return s.Q.Device().Finish(z) }
