package stack

import (
	"bytes"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/workload"
	"biza/internal/zns"
)

func smallOpts() Options {
	z := BenchZNS(32)
	z.ZoneBlocks = 512 // 2 MiB zones for fast tests
	z.ZRWABlocks = 64
	z.StoreData = true
	f := BenchFTL(256)
	f.StoreData = true
	return Options{ZNS: z, FTL: f, Seed: 1}
}

func TestAllPlatformsServeIO(t *testing.T) {
	for _, kind := range []Kind{KindBIZA, KindBIZANoSel, KindBIZANoAvoid,
		KindDmzapRAIZN, KindMdraidDmzap, KindMdraidConvSSD, KindRAIZN, KindZapRAID} {
		t.Run(string(kind), func(t *testing.T) {
			p, err := New(kind, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 8*4096)
			for i := range payload {
				payload[i] = byte(i * 7)
			}
			var werr error
			okW := false
			p.Dev.Write(0, 8, payload, func(r blockdev.WriteResult) { werr = r.Err; okW = true })
			p.Eng.Run()
			if !okW || werr != nil {
				t.Fatalf("write ok=%v err=%v", okW, werr)
			}
			var data []byte
			p.Dev.Read(0, 8, func(r blockdev.ReadResult) { data = r.Data })
			p.Eng.Run()
			if !bytes.Equal(data, payload) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestRAIZNShimRejectsRandomWrites(t *testing.T) {
	p, err := New(KindRAIZN, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential fill works; jumping backward must fail (ZNS semantics).
	var err1, err2 error
	p.Dev.Write(0, 4, nil, func(r blockdev.WriteResult) { err1 = r.Err })
	p.Eng.Run()
	p.Dev.Write(100, 4, nil, func(r blockdev.WriteResult) { err2 = r.Err })
	p.Eng.Run()
	if err1 != nil {
		t.Fatalf("sequential write failed: %v", err1)
	}
	if err2 == nil {
		t.Fatal("random write accepted by RAIZN shim")
	}
}

func TestFlashWriteAmpAccountsUserAndParity(t *testing.T) {
	p, err := New(KindBIZA, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.MicroSpec{Pattern: workload.Seq, SizeBlocks: 16, IODepth: 8,
		Duration: 20 * sim.Millisecond}
	workload.RunMicro(p.Eng, p.Dev, spec)
	wa := p.FlashWriteAmp()
	if wa.UserBytes == 0 {
		t.Fatal("no user bytes")
	}
	if wa.FlashDataBytes == 0 {
		t.Fatal("no flash data accounted")
	}
}

func TestBIZAOutperformsDmzapRAIZNSeqWrite(t *testing.T) {
	// The headline throughput contrast (Fig. 10, §1's 93.2%): BIZA must
	// clearly beat dmzap+RAIZN on sequential 64 KiB writes.
	run := func(kind Kind) float64 {
		p, err := New(kind, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
			Pattern: workload.Seq, SizeBlocks: 16, IODepth: 32,
			Duration: 50 * sim.Millisecond,
		})
		return res.Throughput().MBps()
	}
	biza := run(KindBIZA)
	dr := run(KindDmzapRAIZN)
	t.Logf("BIZA=%.0f MB/s dmzap+RAIZN=%.0f MB/s", biza, dr)
	if biza < dr*1.5 {
		t.Fatalf("BIZA %.0f MB/s not clearly above dmzap+RAIZN %.0f MB/s", biza, dr)
	}
	// And BIZA should approach the 6.4 GB/s ideal's neighborhood.
	if biza < 3500 {
		t.Fatalf("BIZA seq 64K throughput = %.0f MB/s, want > 3500", biza)
	}
}

func TestMdraidConvReachesMultiGBps(t *testing.T) {
	p, err := New(KindMdraidConvSSD, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
		Pattern: workload.Seq, SizeBlocks: 16, IODepth: 32,
		Duration: 50 * sim.Millisecond,
	})
	mbps := res.Throughput().MBps()
	if mbps < 2000 || mbps > 6700 {
		t.Fatalf("mdraid+ConvSSD seq 64K = %.0f MB/s, want 2000..6700", mbps)
	}
}

func TestBIZAWriteAmpBelowBaselineOnHotWorkload(t *testing.T) {
	// Endurance headline (Fig. 14 direction): on a hot-update workload,
	// BIZA's flash writes per user byte must undercut mdraid+dmzap's.
	run := func(kind Kind) float64 {
		opts := smallOpts()
		opts.ZNS.StoreData = false
		opts.FTL.StoreData = false
		p, err := New(kind, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(9)
		hot := int64(256) // 1 MiB hot set
		var outstanding int
		for i := 0; i < 20000; i++ {
			outstanding++
			lba := rng.Int63n(hot)
			if i%4 == 0 {
				lba = hot + rng.Int63n(p.Dev.Blocks()/2-hot)
			}
			p.Dev.Write(lba, 1, nil, func(blockdev.WriteResult) { outstanding-- })
			if i%16 == 0 {
				p.Eng.Run()
			}
		}
		p.Eng.Run()
		if outstanding != 0 {
			t.Fatalf("%s: %d writes hung", kind, outstanding)
		}
		wa := p.FlashWriteAmp()
		return wa.Factor()
	}
	biza := run(KindBIZA)
	md := run(KindMdraidDmzap)
	t.Logf("WA: BIZA=%.2f mdraid+dmzap=%.2f", biza, md)
	if biza >= md {
		t.Fatalf("BIZA WA %.2f not below mdraid+dmzap %.2f", biza, md)
	}
}

func TestZNSDeviceCountMatchesMembers(t *testing.T) {
	p, err := New(KindBIZA, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ZNSDevs) != 4 {
		t.Fatalf("members = %d", len(p.ZNSDevs))
	}
	var open int
	for _, d := range p.ZNSDevs {
		open += d.OpenZones()
	}
	if open == 0 {
		t.Fatal("BIZA opened no zones")
	}
	_ = zns.TagUserData
}

// TestGCAvoidanceCutsTailLatency exercises Fig. 15's ablation in
// miniature: GC stays active during a measured foreground stream for both
// BIZA and the BIZAw/oAvoid ablation.
func TestGCAvoidanceCutsTailLatency(t *testing.T) {
	run := func(kind Kind) int64 {
		z := BenchZNS(48)
		z.ZoneBlocks = 512
		z.ZRWABlocks = 64
		p, err := New(kind, Options{ZNS: z, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		// Churn to activate GC and keep it running in the background.
		rng := sim.NewRNG(31)
		span := p.Dev.Blocks() * 3 / 5
		outstanding := 0
		for i := 0; i < int(span/8); i++ {
			outstanding++
			p.Dev.Write(rng.Int63n(span-8), 8, nil, func(blockdev.WriteResult) { outstanding-- })
			if outstanding >= 64 {
				p.Eng.Run()
			}
		}
		p.Eng.Run()
		bg := sim.NewRNG(53)
		bgLeft := 16000
		var bgIssue func()
		bgIssue = func() {
			if bgLeft <= 0 {
				return
			}
			bgLeft--
			p.Dev.Write(bg.Int63n(span-8), 8, nil, func(blockdev.WriteResult) {
				p.Eng.After(50*sim.Microsecond, bgIssue)
			})
		}
		for i := 0; i < 4; i++ {
			bgIssue()
		}
		// Foreground: sequential 64 KiB writes at depth 4 for 100 ms.
		res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
			Pattern: workload.Seq, SizeBlocks: 16, IODepth: 4,
			Duration: 100 * sim.Millisecond, SpanBlocks: p.Dev.Blocks() / 4, Seed: 3,
		})
		p.Eng.Run()
		if res.Ops == 0 {
			t.Fatalf("%s: no foreground ops", kind)
		}
		t.Logf("%s: gcEvents=%d fgOps=%d p99=%dus mean=%.0fus",
			kind, p.BIZA.GCEvents(), res.Ops, res.Lat.Percentile(99)/1000, res.Lat.Mean()/1000)
		return res.Lat.Percentile(99)
	}
	avoid := run(KindBIZA)
	noAvoid := run(KindBIZANoAvoid)
	t.Logf("p99: BIZA=%dus BIZAw/oAvoid=%dus", avoid/1000, noAvoid/1000)
	// At unit-test scale the two configurations trade places run to run;
	// the quantitative ordering (avoidance cuts p99.99 by ~30-65%%) is
	// asserted by the default-scale fig15 run in EXPERIMENTS.md. Here we
	// bound the regression: avoidance must never make tails dramatically
	// worse while GC is active.
	if avoid > noAvoid*3/2 {
		t.Fatalf("GC avoidance made tails much worse: %d vs %d", avoid, noAvoid)
	}
}

// TestBIZAOnSmallZoneDevice exercises §6's claim that the design carries
// to small-zone ZNS SSDs (PM1731a-class: tiny zones, many open).
func TestBIZAOnSmallZoneDevice(t *testing.T) {
	z := zns.PM1731a(256)
	z.ZoneBlocks = 96 << 20 / 4096 / 16 // scale the 96 MB zone down 16x
	z.ZRWABlocks = 16                   // 64 KiB ZRWA (Table 2)
	z.StoreData = true
	p, err := New(KindBIZA, Options{ZNS: z, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 16*4096)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	var werr error
	ok := false
	p.Dev.Write(0, 16, payload, func(r blockdev.WriteResult) { werr = r.Err; ok = true })
	p.Eng.Run()
	if !ok || werr != nil {
		t.Fatalf("small-zone write: ok=%v err=%v", ok, werr)
	}
	var got []byte
	p.Dev.Read(0, 16, func(r blockdev.ReadResult) { got = r.Data })
	p.Eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("small-zone round trip mismatch")
	}
	// Hot overwrites still absorb in the (much smaller) ZRWA.
	for i := 0; i < 50; i++ {
		p.Dev.Write(3, 1, payload[:4096], nil)
		p.Eng.Run()
	}
	if p.AbsorbedBytes() == 0 {
		t.Fatal("small-zone ZRWA absorbed nothing")
	}
}

// TestMdraidDmzapNoSilentDrops is a regression test for the open-zone
// budget bug: under a heavy large-write workload, every byte the mdraid
// engine flushes must reach flash — no device write may fail silently.
func TestMdraidDmzapNoSilentDrops(t *testing.T) {
	p, err := New(KindMdraidDmzap, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	span := p.Dev.Blocks() / 2
	outstanding := 0
	for i := 0; i < 4000; i++ {
		outstanding++
		p.Dev.Write(rng.Int63n(span-30), 30, nil, func(blockdev.WriteResult) { outstanding-- })
		if outstanding >= 32 {
			p.Eng.Run()
		}
	}
	p.Eng.Run()
	if outstanding != 0 {
		t.Fatalf("%d writes hung", outstanding)
	}
	md := p.Dev.(interface{ FlushErrors() uint64 })
	if errs := md.FlushErrors(); errs != 0 {
		t.Fatalf("%d member write failures during flushes", errs)
	}
	// Conservation: flash received at least the engine's flush output
	// minus what can still sit in caches (bounded by the cache budget).
	wa := p.FlashWriteAmp()
	var flash uint64
	for _, d := range p.ZNSDevs {
		flash += d.Stats().TotalProgrammed()
	}
	engineOut := wa.FlashDataBytes + wa.FlashParityBytes
	if flash+256<<20 < engineOut {
		t.Fatalf("flash %dMB far below engine output %dMB — writes lost", flash>>20, engineOut>>20)
	}
}

// TestBIZASoak drives a full second of virtual time at high load across
// mixed patterns, through many GC cycles, asserting liveness and sane
// steady-state behaviour. Skipped in -short.
func TestBIZASoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	z := BenchZNS(64)
	z.ZoneBlocks = 1024 // 4 MiB zones: plenty of GC churn in one second
	p, err := New(KindBIZA, Options{ZNS: z, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	span := p.Dev.Blocks() / 2
	var completed, failed uint64
	outstanding := 0
	deadline := sim.Time(1 * sim.Second)
	var issue func()
	issue = func() {
		if p.Eng.Now() >= deadline {
			return
		}
		var lba int64
		blocks := 1
		switch rng.Intn(4) {
		case 0: // hot small
			lba = rng.Int63n(512)
		case 1: // random large
			blocks = 16
			lba = rng.Int63n(span - 16)
		case 2: // sequential-ish
			blocks = 8
			lba = (int64(completed) * 8) % (span - 8)
		default:
			lba = rng.Int63n(span)
		}
		outstanding++
		p.Dev.Write(lba, blocks, nil, func(r blockdev.WriteResult) {
			outstanding--
			if r.Err != nil {
				failed++
			} else {
				completed++
			}
			issue()
		})
	}
	for i := 0; i < 64; i++ {
		issue()
	}
	p.Eng.Run()
	if outstanding != 0 {
		t.Fatalf("%d requests hung after soak", outstanding)
	}
	if failed > 0 {
		t.Fatalf("%d failed writes in soak", failed)
	}
	if p.BIZA.GCEvents() < 10 {
		t.Fatalf("soak produced only %d GC events", p.BIZA.GCEvents())
	}
	wa := p.FlashWriteAmp()
	if wa.Factor() <= 0 || wa.Factor() > 5 {
		t.Fatalf("soak WA = %.2f out of sanity range", wa.Factor())
	}
	t.Logf("soak: %d ops, %d GC events, WA %.2f, absorbed %dMB",
		completed, p.BIZA.GCEvents(), wa.Factor(), p.AbsorbedBytes()>>20)
}

// TestRAIZNTrimDropsCounted pins the documented limitation of the RAIZN
// sequential shim: block-range trims have no zoned discard equivalent, so
// they are dropped — but counted, and emitted as a probe when tracing.
func TestRAIZNTrimDropsCounted(t *testing.T) {
	opts := smallOpts()
	tr := obs.New(obs.Config{})
	opts.Trace = tr
	p, err := New(KindRAIZN, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.TrimDrops() != 0 {
		t.Fatalf("fresh platform reports %d trim drops", p.TrimDrops())
	}
	p.Dev.Trim(0, 8)
	p.Dev.Trim(100, 4)
	p.Dev.Trim(50, 0) // degenerate range: not counted
	if got := p.TrimDrops(); got != 12 {
		t.Fatalf("TrimDrops = %d, want 12", got)
	}
	// The drop counter must be visible through the probe stream too.
	found := false
	for _, ps := range tr.ProbeStats() {
		if ps.Name == "trim_dropped" && ps.Value == 12 {
			found = true
		}
	}
	if !found {
		t.Fatal("trim_dropped probe not emitted at final value 12")
	}
	// Other platforms forward trims and report zero drops.
	p2, err := New(KindBIZA, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	p2.Dev.Trim(0, 8)
	p2.Eng.Run()
	if p2.TrimDrops() != 0 {
		t.Fatalf("BIZA platform reports %d trim drops", p2.TrimDrops())
	}
}

// TestPooledWorkloadZeroCopyProbes drives the BIZA engine with pooled,
// refcounted payloads (workload.MicroSpec.Pooled via blockdev.BufWriter)
// and checks the unified-pool health probes publish at finalize: misses
// are counted (the once-silent heap fallback), payload copies are
// observable, and pool_live lands at zero — every reference the workload
// transferred came back after the drain.
func TestPooledWorkloadZeroCopyProbes(t *testing.T) {
	opts := smallOpts()
	tr := obs.New(obs.Config{})
	opts.Trace = tr
	p, err := New(KindBIZA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Dev.(blockdev.BufWriter); !ok {
		t.Fatal("BIZA engine does not implement blockdev.BufWriter")
	}
	res := workload.RunMicro(p.Eng, p.Dev, workload.MicroSpec{
		Pattern: workload.Seq, SizeBlocks: 16, IODepth: 8,
		Duration: 10 * sim.Millisecond, Pooled: true,
	})
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("pooled run: %d ops, %d errors", res.Ops, res.Errors)
	}
	p.BIZA.Flush() // harden buffered ZRWA contents so their refs drop
	p.Eng.Run()
	tr.Finalize()
	probes := map[string]float64{}
	for _, ps := range tr.ProbeStats() {
		probes[ps.Name] = ps.Value
	}
	miss, ok := probes["pool_miss"]
	if !ok || miss <= 0 {
		t.Fatalf("pool_miss probe = %v (present=%v), want > 0 (cold pool must miss)", miss, ok)
	}
	if _, ok := probes["payload_copy"]; !ok {
		t.Fatal("payload_copy probe not published")
	}
	live, ok := probes["pool_live"]
	if !ok {
		t.Fatal("pool_live probe not published")
	}
	if live != 0 {
		t.Fatalf("pool_live = %.0f after flush+drain, want 0 (leaked references)", live)
	}
}
