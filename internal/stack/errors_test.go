package stack

import (
	"errors"
	"testing"

	"biza/internal/core"
	"biza/internal/storerr"
)

// TestStackErrorSentinels pins the errors.Is contract of the platform's
// mutating surface (the admin layers branch on these identities).
func TestStackErrorSentinels(t *testing.T) {
	raizn, err := New(KindRAIZN, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := raizn.Crash(); !errors.Is(err, storerr.ErrNotSupported) {
		t.Fatalf("RAIZN crash: err = %v, want ErrNotSupported", err)
	}
	var rerr error
	raizn.Recover(func(e error) { rerr = e })
	raizn.Eng.Run()
	if !errors.Is(rerr, storerr.ErrNotSupported) {
		t.Fatalf("RAIZN recover: err = %v, want ErrNotSupported", rerr)
	}
	raizn.ReplaceDevice(0, func(e error) { rerr = e })
	raizn.Eng.Run()
	if !errors.Is(rerr, storerr.ErrNotSupported) {
		t.Fatalf("RAIZN replace: err = %v, want ErrNotSupported", rerr)
	}

	biza, err := New(KindBIZA, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var perr error
	biza.Recover(func(e error) { perr = e })
	biza.Eng.Run()
	if !errors.Is(perr, storerr.ErrWrongState) {
		t.Fatalf("recover uncrashed: err = %v, want ErrWrongState", perr)
	}
	if err := biza.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := biza.Crash(); !errors.Is(err, storerr.ErrWrongState) {
		t.Fatalf("double crash: err = %v, want ErrWrongState", err)
	}
	biza.Recover(func(e error) { perr = e })
	biza.Eng.Run()
	if perr != nil {
		t.Fatalf("recover: %v", perr)
	}
	if err := biza.BIZA.SetDeviceFailed(99, true); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("set-failed out of range: err = %v, want ErrNotFound", err)
	}
	biza.ReplaceDevice(99, func(e error) { perr = e })
	biza.Eng.Run()
	if !errors.Is(perr, storerr.ErrNotFound) {
		t.Fatalf("replace out of range: err = %v, want ErrNotFound", perr)
	}
}

// TestReplaceDevicePacedRebuilds: a paced rebuild makes the same
// progress as an unpaced one, reports monotone progress, and takes
// longer in virtual time (the pacing gaps are real).
func TestReplaceDevicePacedRebuilds(t *testing.T) {
	run := func(ctl core.RebuildControl) (elapsed int64, steps int) {
		p, err := New(KindBIZA, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 4096)
		for i := 0; i < 256; i++ {
			p.Dev.Write(int64(i), 1, payload, nil)
		}
		p.Eng.Run()
		start := p.Eng.Now()
		lastDone := 0
		ctl.OnProgress = func(done, total int) {
			if done < lastDone || done > total {
				t.Fatalf("progress went backwards: %d/%d after %d", done, total, lastDone)
			}
			lastDone = done
			steps++
		}
		var rerr error
		finished := false
		p.ReplaceDevicePaced(1, ctl, func(e error) { rerr = e; finished = true })
		p.Eng.Run()
		if !finished || rerr != nil {
			t.Fatalf("rebuild finished=%v err=%v", finished, rerr)
		}
		if p.Replacements() != 1 {
			t.Fatalf("replacements = %d, want 1", p.Replacements())
		}
		return int64(p.Eng.Now() - start), steps
	}
	fastT, fastSteps := run(core.RebuildControl{})
	if fastSteps != 1 {
		t.Fatalf("unpaced rebuild took %d steps, want 1", fastSteps)
	}
	slowT, slowSteps := run(core.RebuildControl{StripesPerStep: 2, StepGap: 500 * 1000})
	if slowSteps < 2 {
		t.Fatalf("paced rebuild took %d steps, want several", slowSteps)
	}
	if slowT <= fastT {
		t.Fatalf("paced rebuild (%dns) not slower than unpaced (%dns)", slowT, fastT)
	}
}
