// Package stack assembles the evaluation platforms of §5.1 behind one
// interface: BIZA, RAIZN (via a sequential block shim), dmzap+RAIZN,
// mdraid+dmzap, mdraid+ConvSSD, plus the BIZAw/oSelector and BIZAw/oAvoid
// ablations. Each platform owns its simulated devices and exposes flash
// truth for write-amplification accounting.
package stack

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/core"
	"biza/internal/cpumodel"
	"biza/internal/dmzap"
	"biza/internal/fault"
	"biza/internal/ftl"
	"biza/internal/mdraid"
	"biza/internal/metrics"
	"biza/internal/nvme"
	"biza/internal/obs"
	"biza/internal/raizn"
	"biza/internal/sim"
	"biza/internal/storerr"
	"biza/internal/zapraid"
	"biza/internal/zns"
	"biza/internal/zoneapi"
)

// Kind names a platform.
type Kind string

// Platform kinds (§5.1's five settings plus the two ablations).
const (
	KindBIZA          Kind = "BIZA"
	KindBIZANoSel     Kind = "BIZAw/oSelector"
	KindBIZANoAvoid   Kind = "BIZAw/oAvoid"
	KindRAIZN         Kind = "RAIZN"
	KindDmzapRAIZN    Kind = "dmzap+RAIZN"
	KindMdraidDmzap   Kind = "mdraid+dmzap"
	KindMdraidConvSSD Kind = "mdraid+ConvSSD"
	// KindZapRAID is the APPEND-based design alternative of §3.2/§6
	// (ZapRAID-style): parallel zone appends, no ZRWA.
	KindZapRAID Kind = "ZapRAID"
)

// AllBlockPlatforms lists every platform exposing the block interface.
var AllBlockPlatforms = []Kind{
	KindBIZA, KindDmzapRAIZN, KindMdraidDmzap, KindMdraidConvSSD,
}

// Options parameterize platform construction.
type Options struct {
	Members int        // SSD count (default 4)
	ZNS     zns.Config // member geometry for ZNS-based platforms
	FTL     ftl.Config // member geometry for mdraid+ConvSSD
	Seed    uint64

	// BIZAConfig overrides the engine defaults (zero value = defaults).
	BIZAConfig *core.Config
	// RAIZNStripeCacheBytes enables RAIZN's volatile parity cache (§5.4).
	RAIZNStripeCacheBytes int64
	// MdraidConfig overrides mdraid defaults.
	MdraidConfig *mdraid.Config
	// ReorderWindow for the driver queues (default 5us).
	ReorderWindow sim.Time

	// Trace, when non-nil, instruments every layer of the platform: driver
	// queues and devices record per-I/O spans and zone events, the array
	// engine records array-level spans, and a finalizer snapshots
	// per-channel busy time into counter probes. Nil costs one pointer
	// check per hot-path call.
	Trace *obs.Trace

	// Faults, when non-nil, compiles a deterministic fault plan (seeded
	// from Seed) and interposes an injector on every member driver queue,
	// so every ZNS-based stack sees identical fault schedules. Power-loss
	// rules additionally schedule a Crash+Recover cycle (BIZA platforms
	// only).
	Faults *fault.Spec

	// AutoReplace hot-swaps a fresh spare (via ReplaceDevice) as soon as
	// the engine declares a member dead. BIZA platforms only.
	AutoReplace bool
}

// BenchZNS returns the scaled ZN540 geometry the experiments run on:
// datasheet service rates with 16 MiB zones so GC cycles fit in short
// simulations. numZones scales capacity.
func BenchZNS(numZones int) zns.Config {
	cfg := zns.ZN540(numZones)
	cfg.ZoneBlocks = 16 << 20 / 4096 // 16 MiB zones
	cfg.ZRWABlocks = 1 << 20 / 4096  // 1 MiB ZRWA (Table 2)
	cfg.StoreData = false
	return cfg
}

// BenchFTL returns the matching SN640 geometry.
func BenchFTL(flashBlocks int) ftl.Config {
	cfg := ftl.SN640(flashBlocks)
	cfg.StoreData = false
	return cfg
}

// Platform is one assembled storage stack under test.
type Platform struct {
	Kind Kind
	Eng  *sim.Engine
	Dev  blockdev.Device // block front-end (nil for raw RAIZN)
	Acct *cpumodel.Accountant

	// Underlying stores for flash accounting.
	ZNSDevs []*zns.Device
	FTLDevs []*ftl.Device

	// Engine internals for diagnostics.
	BIZA  *core.Core
	RAIZN *raizn.Array

	userBytes    func() uint64
	opts         Options
	members      []blockdev.Device
	queues       []*nvme.Queue // member driver queues (ZNS-based platforms)
	plan         *fault.Plan
	bizaCfg      core.Config // resolved engine config (BIZA kinds)
	crashed      bool
	recoveries   uint64
	replacements uint64
	// engineParity reports (data, parity) engine-level output for
	// platforms whose members cannot tag traffic (mdraid over block
	// devices); FlashWriteAmp redistributes flash bytes by that ratio.
	engineParity func() (uint64, uint64)
}

// New assembles a platform of the given kind on a fresh simulation engine.
func New(kind Kind, opts Options) (*Platform, error) {
	eng := sim.NewEngine()
	return NewOn(eng, kind, opts)
}

// NewOn assembles a platform on an existing engine.
func NewOn(eng *sim.Engine, kind Kind, opts Options) (*Platform, error) {
	if opts.Members == 0 {
		opts.Members = 4
	}
	if opts.ZNS.NumZones == 0 {
		opts.ZNS = BenchZNS(128)
	}
	if opts.FTL.FlashBlocks == 0 {
		opts.FTL = BenchFTL(2048)
	}
	if opts.ReorderWindow == 0 {
		opts.ReorderWindow = 5 * sim.Microsecond
	}
	p := &Platform{Kind: kind, Eng: eng, Acct: &cpumodel.Accountant{}, opts: opts}

	if opts.Faults != nil {
		plan, err := fault.Compile(opts.Faults, opts.Seed, opts.Members)
		if err != nil {
			return nil, err
		}
		isBIZA := kind == KindBIZA || kind == KindBIZANoSel || kind == KindBIZANoAvoid
		if len(plan.PowerLossTimes()) > 0 && !isBIZA {
			return nil, fmt.Errorf("stack: %s does not support power-loss recovery", kind)
		}
		p.plan = plan
	}

	attachFaults := func(q *nvme.Queue, dev int) {
		if p.plan == nil {
			return
		}
		in := p.plan.Injector(dev)
		if opts.Trace != nil {
			in.SetTracer(opts.Trace, dev)
		}
		q.SetInjector(in)
	}

	newZNSQueues := func(zoneOrdered bool) ([]*nvme.Queue, error) {
		var queues []*nvme.Queue
		for i := 0; i < opts.Members; i++ {
			dc := opts.ZNS
			dc.Seed = opts.Seed + uint64(i)
			d, err := zns.New(eng, dc)
			if err != nil {
				return nil, err
			}
			p.ZNSDevs = append(p.ZNSDevs, d)
			q := nvme.New(d, nvme.Config{
				ReorderWindow: opts.ReorderWindow,
				ZoneOrdered:   zoneOrdered,
				Seed:          opts.Seed + uint64(i) + 1000,
			})
			if opts.Trace != nil {
				q.SetTracer(opts.Trace, i)
			}
			attachFaults(q, i)
			queues = append(queues, q)
		}
		p.queues = queues
		return queues, nil
	}

	switch kind {
	case KindBIZA, KindBIZANoSel, KindBIZANoAvoid:
		queues, err := newZNSQueues(false) // BIZA's scheduler replaces zone locking
		if err != nil {
			return nil, err
		}
		ccfg := core.DefaultConfig(opts.ZNS.NumZones)
		if opts.BIZAConfig != nil {
			ccfg = *opts.BIZAConfig
		}
		switch kind {
		case KindBIZANoSel:
			ccfg.EnableSelector = false
		case KindBIZANoAvoid:
			ccfg.EnableGCAvoid = false
		}
		p.bizaCfg = ccfg
		c, err := core.New(queues, ccfg, p.Acct)
		if err != nil {
			return nil, err
		}
		p.installBIZA(c)
		if p.plan != nil {
			for _, t := range p.plan.PowerLossTimes() {
				eng.At(t, func() {
					if err := p.Crash(); err != nil {
						return
					}
					p.Recover(nil)
				})
			}
		}

	case KindRAIZN, KindDmzapRAIZN:
		queues, err := newZNSQueues(true) // RAIZN relies on zone write locking
		if err != nil {
			return nil, err
		}
		r, err := raizn.New(queues, raizn.Config{StripeCacheBytes: opts.RAIZNStripeCacheBytes})
		if err != nil {
			return nil, err
		}
		r.SetAccountant(p.Acct)
		if opts.Trace != nil {
			r.SetTracer(opts.Trace)
		}
		p.RAIZN = r
		if kind == KindRAIZN {
			sd := &seqZoneDevice{a: r, eng: p.Eng, tr: opts.Trace}
			p.Dev = sd
			p.userBytes = func() uint64 { return r.WriteAmp().UserBytes }
			break
		}
		ad, err := dmzap.New(r, dmzap.DefaultConfig(r.Zones(), r.MaxOpenZones()), p.Acct)
		if err != nil {
			return nil, err
		}
		p.Dev = ad
		waA := ad.WriteAmp
		p.userBytes = func() uint64 { return waA().UserBytes }

	case KindMdraidDmzap:
		var members []blockdev.Device
		for i := 0; i < opts.Members; i++ {
			dc := opts.ZNS
			dc.Seed = opts.Seed + uint64(i)
			d, err := zns.New(eng, dc)
			if err != nil {
				return nil, err
			}
			p.ZNSDevs = append(p.ZNSDevs, d)
			q := nvme.New(d, nvme.Config{
				ReorderWindow: opts.ReorderWindow,
				Seed:          opts.Seed + uint64(i) + 1000,
			})
			if opts.Trace != nil {
				q.SetTracer(opts.Trace, i)
			}
			attachFaults(q, i)
			p.queues = append(p.queues, q)
			ad, err := dmzap.New(zoneapi.SingleDevice{Q: q},
				dmzap.DefaultConfig(dc.NumZones, dc.MaxOpenZones), p.Acct)
			if err != nil {
				return nil, err
			}
			members = append(members, ad)
		}
		mcfg := mdraid.DefaultConfig()
		if opts.MdraidConfig != nil {
			mcfg = *opts.MdraidConfig
		}
		md, err := mdraid.New(eng, members, mcfg, p.Acct)
		if err != nil {
			return nil, err
		}
		p.members = members
		p.Dev = md
		waM := md.WriteAmp
		p.userBytes = func() uint64 { return waM().UserBytes }
		p.engineParity = func() (uint64, uint64) {
			w := waM()
			return w.FlashDataBytes, w.FlashParityBytes
		}

	case KindZapRAID:
		queues, err := newZNSQueues(false) // appends need no ordering
		if err != nil {
			return nil, err
		}
		z, err := zapraid.New(queues, zapraid.DefaultConfig(opts.ZNS.NumZones))
		if err != nil {
			return nil, err
		}
		if opts.Trace != nil {
			z.SetTracer(opts.Trace)
		}
		p.Dev = z
		waZ := z.WriteAmp
		p.userBytes = func() uint64 { return waZ().UserBytes }

	case KindMdraidConvSSD:
		var members []blockdev.Device
		for i := 0; i < opts.Members; i++ {
			fc := opts.FTL
			fc.Seed = opts.Seed + uint64(i)
			d, err := ftl.New(eng, fc)
			if err != nil {
				return nil, err
			}
			p.FTLDevs = append(p.FTLDevs, d)
			if opts.Trace != nil {
				d.SetTracer(opts.Trace, i)
			}
			members = append(members, d)
		}
		mcfg := mdraid.DefaultConfig()
		if opts.MdraidConfig != nil {
			mcfg = *opts.MdraidConfig
		}
		md, err := mdraid.New(eng, members, mcfg, p.Acct)
		if err != nil {
			return nil, err
		}
		p.Dev = md
		waM := md.WriteAmp
		p.userBytes = func() uint64 { return waM().UserBytes }
		p.engineParity = func() (uint64, uint64) {
			w := waM()
			return w.FlashDataBytes, w.FlashParityBytes
		}

	default:
		return nil, fmt.Errorf("stack: unknown platform %q", kind)
	}
	if tr := opts.Trace; tr != nil {
		// Snapshot cumulative device telemetry when the run finalizes:
		// per-channel busy time (the contention ground truth) and the
		// closing open-zone counts.
		tr.OnFinalize(func() {
			now := int64(eng.Now())
			for i, d := range p.ZNSDevs {
				for ch := 0; ch < d.NumChannels(); ch++ {
					tr.Counter(now, obs.ProbeKey(obs.ProbeChanWriteBusy, i, ch), int64(d.ChannelWriteBusy(ch)))
					tr.Counter(now, obs.ProbeKey(obs.ProbeChanReadBusy, i, ch), int64(d.ChannelReadBusy(ch)))
				}
				tr.Counter(now, obs.ProbeKey(obs.ProbeOpenZones, i, 0), int64(d.OpenZones()))
			}
			for i, d := range p.FTLDevs {
				for ch := 0; ch < d.Config().NumChannels; ch++ {
					tr.Counter(now, obs.ProbeKey(obs.ProbeChanWriteBusy, i, ch), int64(d.ChannelWriteBusy(ch)))
					tr.Counter(now, obs.ProbeKey(obs.ProbeChanReadBusy, i, ch), int64(d.ChannelReadBusy(ch)))
				}
			}
			// Unified-buffer-pool health (BIZA kinds): heap fallbacks,
			// buffers still held at finalize (leak indicator), and payload
			// copies on the data path — the engine's own NoteCopy count
			// plus the flash models' defensive setData copies.
			if c := p.BIZA; c != nil {
				st := c.Pool().Stats()
				tr.Counter(now, obs.ProbeKey(obs.ProbePoolMiss, 0, 0), st.Misses)
				tr.Counter(now, obs.ProbeKey(obs.ProbePoolLive, 0, 0), c.Pool().Live())
				copies := st.Copies
				for _, d := range p.ZNSDevs {
					if bsz := d.Config().BlockSize; bsz > 0 {
						copies += int64(d.Stats().BufCopiedBytes) / int64(bsz)
					}
				}
				tr.Counter(now, obs.ProbeKey(obs.ProbePayloadCopy, 0, 0), copies)
			}
		})
	}
	return p, nil
}

// FlashWriteAmp reports the ground-truth endurance view: user bytes
// admitted at the front-end versus bytes physically programmed (split
// data/parity) on the member devices.
func (p *Platform) FlashWriteAmp() metrics.WriteAmp {
	var wa metrics.WriteAmp
	if p.userBytes != nil {
		wa.UserBytes = p.userBytes()
	}
	for _, d := range p.ZNSDevs {
		st := d.Stats()
		wa.FlashDataBytes += st.ProgrammedByTag(zns.TagUserData) + st.ProgrammedByTag(zns.TagGCData)
		wa.FlashParityBytes += st.ProgrammedByTag(zns.TagParity) +
			st.ProgrammedByTag(zns.TagGCParity) + st.ProgrammedByTag(zns.TagMeta)
		wa.GCMigratedBytes += st.ProgrammedByTag(zns.TagGCData) + st.ProgrammedByTag(zns.TagGCParity)
	}
	for _, d := range p.FTLDevs {
		fwa := d.WriteAmp()
		wa.FlashDataBytes += fwa.FlashDataBytes
		wa.GCMigratedBytes += fwa.GCMigratedBytes
	}
	// Members below mdraid see untagged block traffic; split the flash
	// volume by the engine's own data/parity output ratio.
	if p.engineParity != nil {
		d, par := p.engineParity()
		if total := d + par; total > 0 {
			flash := wa.FlashDataBytes + wa.FlashParityBytes
			wa.FlashParityBytes = uint64(float64(flash) * float64(par) / float64(total))
			wa.FlashDataBytes = flash - wa.FlashParityBytes
		}
	}
	return wa
}

// AbsorbedBytes reports overwrites absorbed in device write buffers.
func (p *Platform) AbsorbedBytes() uint64 {
	var t uint64
	for _, d := range p.ZNSDevs {
		t += d.Stats().AbsorbedBytes
	}
	return t
}

// Trace returns the observability trace the platform was assembled with
// (nil when tracing is off), so harnesses can hang extra instrumented
// layers — e.g. the volume manager — off the same trace.
func (p *Platform) Trace() *obs.Trace { return p.opts.Trace }

// TrimDrops reports how many blocks of trim advisories the platform has
// silently dropped (RAIZN's sequential shim has no discard path; all
// other platforms forward trims and report 0).
func (p *Platform) TrimDrops() uint64 {
	if sd, ok := p.Dev.(*seqZoneDevice); ok {
		return sd.trimDrops
	}
	return 0
}

// seqZoneDevice exposes RAIZN's zoned interface as a linear block space
// for sequential-only benchmarks (random writes fail, matching the paper's
// missing RAIZN bars in random tests).
type seqZoneDevice struct {
	a         *raizn.Array
	eng       *sim.Engine
	tr        *obs.Trace
	trimDrops uint64
}

func (s *seqZoneDevice) BlockSize() int { return s.a.BlockSize() }

func (s *seqZoneDevice) Blocks() int64 {
	return s.a.ZoneBlocks() * int64(s.a.Zones())
}

func (s *seqZoneDevice) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	zb := s.a.ZoneBlocks()
	z := int(lba / zb)
	off := lba % zb
	if off+int64(nblocks) > zb {
		// Split at the zone boundary.
		first := int(zb - off)
		var bs int64
		if data != nil {
			bs = int64(s.a.BlockSize())
		}
		remaining := 2
		var firstErr error
		part := func(r blockdev.WriteResult) {
			if r.Err != nil && firstErr == nil {
				firstErr = r.Err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(blockdev.WriteResult{Err: firstErr, Latency: r.Latency})
			}
		}
		var d1, d2 []byte
		if data != nil {
			d1, d2 = data[:int64(first)*bs], data[int64(first)*bs:]
		}
		s.Write(lba, first, d1, part)
		s.Write(lba+int64(first), nblocks-first, d2, part)
		return
	}
	s.a.Write(z, off, nblocks, data, zns.TagUserData, func(r zns.WriteResult) {
		if done != nil {
			done(blockdev.WriteResult{Err: r.Err, Latency: r.Latency})
		}
	})
}

func (s *seqZoneDevice) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	zb := s.a.ZoneBlocks()
	z := int(lba / zb)
	off := lba % zb
	if off+int64(nblocks) > zb {
		n1 := int(zb - off)
		buf := make([]byte, int64(nblocks)*int64(s.a.BlockSize()))
		remaining := 2
		var firstErr error
		var last blockdev.ReadResult
		part := func(base int64) func(zns.ReadResult) {
			return func(r zns.ReadResult) {
				if r.Err != nil && firstErr == nil {
					firstErr = r.Err
				}
				if r.Data != nil {
					copy(buf[base:], r.Data)
				}
				remaining--
				if remaining == 0 && done != nil {
					last = blockdev.ReadResult{Err: firstErr, Data: buf, Latency: r.Latency}
					done(last)
				}
			}
		}
		s.a.Read(z, off, n1, part(0))
		s.a.Read(z+1, 0, nblocks-n1, part(int64(n1)*int64(s.a.BlockSize())))
		return
	}
	s.a.Read(z, off, nblocks, func(r zns.ReadResult) {
		if done != nil {
			done(blockdev.ReadResult{Err: r.Err, Data: r.Data, Latency: r.Latency})
		}
	})
}

// Trim is dropped, not forwarded: RAIZN has no sub-zone discard path — a
// zoned array reclaims space only by whole-zone reset, so a block-range
// trim has no zoned equivalent short of rewriting the zone. Upper layers
// (lsfs, the volume manager) issue trims as advisories and must not rely
// on them reclaiming space here. Each drop is counted so experiments can
// see how much advisory reclaim the platform silently ignores.
func (s *seqZoneDevice) Trim(lba int64, nblocks int) {
	if nblocks < 1 {
		return
	}
	s.trimDrops += uint64(nblocks)
	if s.tr != nil {
		s.tr.Counter(int64(s.eng.Now()), obs.ProbeKey(obs.ProbeTrimDropped, 0, 0), int64(s.trimDrops))
	}
}

// installBIZA wires a (new or recovered) engine into the platform.
func (p *Platform) installBIZA(c *core.Core) {
	if p.opts.Trace != nil {
		c.SetTracer(p.opts.Trace)
	}
	p.BIZA = c
	p.Dev = c
	wa := c.WriteAmp
	p.userBytes = func() uint64 { return wa().UserBytes }
	if p.opts.AutoReplace {
		c.OnMemberDeath(func(dev int) { p.ReplaceDevice(dev, nil) })
	}
}

// ReplaceDevice hot-swaps BIZA member dev with a freshly simulated device
// of the same geometry and rebuilds redundancy; done fires when the
// rebuild completes. The spare sits outside the fault plan (its injector,
// if any, is dropped). BIZA platforms only.
func (p *Platform) ReplaceDevice(dev int, done func(error)) {
	p.ReplaceDevicePaced(dev, core.RebuildControl{}, done)
}

// ReplaceDevicePaced is ReplaceDevice with the rebuild throttled by ctl
// (see core.RebuildControl): the admin orchestrator uses it to trade
// rebuild rate against foreground tail latency.
func (p *Platform) ReplaceDevicePaced(dev int, ctl core.RebuildControl, done func(error)) {
	if p.BIZA == nil {
		if done != nil {
			p.Eng.After(0, func() {
				done(fmt.Errorf("stack: %s cannot rebuild: %w", p.Kind, storerr.ErrNotSupported))
			})
		}
		return
	}
	p.replacements++
	gen := fmt.Sprintf("%d", p.replacements)
	member := fmt.Sprintf("dev%d", dev)
	dc := p.opts.ZNS
	dc.Seed = sim.DeriveSeed(p.opts.Seed, "replace", gen, member)
	nd, err := zns.New(p.Eng, dc)
	if err != nil {
		if done != nil {
			p.Eng.After(0, func() { done(err) })
		}
		return
	}
	if dev >= 0 && dev < len(p.ZNSDevs) {
		p.ZNSDevs[dev] = nd
	}
	nq := nvme.New(nd, nvme.Config{
		ReorderWindow: p.opts.ReorderWindow,
		Seed:          sim.DeriveSeed(p.opts.Seed, "replace-queue", gen, member),
	})
	if p.opts.Trace != nil {
		nq.SetTracer(p.opts.Trace, dev)
	}
	if dev >= 0 && dev < len(p.queues) {
		p.queues[dev] = nq
	}
	p.BIZA.ReplaceDevicePaced(dev, nq, ctl, done)
}

// Replacements reports how many device replacements the platform has
// started (auto-replace plus explicit admin jobs).
func (p *Platform) Replacements() uint64 { return p.replacements }

// Recoveries reports how many crash-recovery cycles have completed or
// are in flight.
func (p *Platform) Recoveries() uint64 { return p.recoveries }

// Crash models a host power loss: every member driver queue dies with its
// in-flight commands, and every device drops write-buffer contents that
// were never acknowledged (acknowledged ZRWA blocks harden, PLP-style).
// The platform rejects work until Recover rebuilds the engine. BIZA
// platforms only.
func (p *Platform) Crash() error {
	if p.BIZA == nil {
		return fmt.Errorf("stack: %s cannot crash-recover: %w", p.Kind, storerr.ErrNotSupported)
	}
	if p.crashed {
		return fmt.Errorf("stack: already crashed: %w", storerr.ErrWrongState)
	}
	p.crashed = true
	for _, q := range p.queues {
		q.Kill()
	}
	for _, d := range p.ZNSDevs {
		d.PowerLoss()
	}
	return nil
}

// Crashed reports whether the platform awaits Recover.
func (p *Platform) Crashed() bool { return p.crashed }

// Queues exposes the member driver queues (fault-injection and retry
// statistics for harnesses). The slice is replaced wholesale on Recover.
func (p *Platform) Queues() []*nvme.Queue { return p.queues }

// Recover restarts a crashed BIZA platform: fresh driver queues (seeded
// deterministically per recovery generation) attach to the surviving
// devices, fault injectors reattach with their accumulated state, and the
// engine's mapping tables are rebuilt from the OOB scan. done fires once
// the scan completes; the scan runs in virtual time, so the engine must
// be driven for it to finish. Every member must be readable — replace a
// dead member first.
func (p *Platform) Recover(done func(error)) {
	fail := func(err error) {
		if done != nil {
			p.Eng.After(0, func() { done(err) })
		}
	}
	if p.BIZA == nil {
		fail(fmt.Errorf("stack: %s cannot crash-recover: %w", p.Kind, storerr.ErrNotSupported))
		return
	}
	if !p.crashed {
		fail(fmt.Errorf("stack: not crashed: %w", storerr.ErrWrongState))
		return
	}
	p.recoveries++
	gen := fmt.Sprintf("%d", p.recoveries)
	var queues []*nvme.Queue
	for i, d := range p.ZNSDevs {
		q := nvme.New(d, nvme.Config{
			ReorderWindow: p.opts.ReorderWindow,
			Seed:          sim.DeriveSeed(p.opts.Seed, "recover", gen, fmt.Sprintf("dev%d", i)),
		})
		if p.opts.Trace != nil {
			q.SetTracer(p.opts.Trace, i)
		}
		if p.plan != nil {
			in := p.plan.Injector(i)
			if p.opts.Trace != nil {
				in.SetTracer(p.opts.Trace, i)
			}
			q.SetInjector(in)
		}
		queues = append(queues, q)
	}
	p.queues = queues
	core.Recover(queues, p.bizaCfg, p.Acct, func(c *core.Core, err error) {
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		p.installBIZA(c)
		p.crashed = false
		if done != nil {
			done(nil)
		}
	})
}

// Flush pushes buffered engine state to flash so endurance accounting sees
// every acknowledged byte: BIZA commits its open ZRWA windows; mdraid's
// volatile stripe cache and the FTL cache drain on their own timers when
// the engine runs.
func (p *Platform) Flush() {
	if p.BIZA != nil {
		p.BIZA.Flush()
	}
	p.Eng.Run()
}

// ResetAccounting zeroes traffic counters at every layer — called after
// preconditioning so measurements cover steady state only.
func (p *Platform) ResetAccounting() {
	for _, d := range p.ZNSDevs {
		d.ResetStats()
	}
	for _, d := range p.FTLDevs {
		d.ResetAccounting()
	}
	if p.BIZA != nil {
		p.BIZA.ResetAccounting()
	}
	if p.RAIZN != nil {
		p.RAIZN.ResetAccounting()
	}
	if r, ok := p.Dev.(interface{ ResetAccounting() }); ok {
		r.ResetAccounting()
	}
}

// Members exposes the member block devices under an mdraid platform
// (diagnostics).
func (p *Platform) Members() []blockdev.Device { return p.members }
