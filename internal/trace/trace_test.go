package trace

import (
	"bytes"
	"math"
	"testing"

	"biza/internal/ftl"
	"biza/internal/sim"
)

func TestCharacterize(t *testing.T) {
	tr := &Trace{BlockSize: 4096, Ops: []Op{
		{Write: true, LBA: 0, Blocks: 1},
		{Write: true, LBA: 8, Blocks: 2},
		{Write: false, LBA: 0, Blocks: 4},
	}}
	s := tr.Characterize()
	if s.Ops != 3 {
		t.Fatalf("ops = %d", s.Ops)
	}
	if math.Abs(s.WriteRatio-2.0/3.0) > 1e-9 {
		t.Fatalf("write ratio = %v", s.WriteRatio)
	}
	if s.AvgWriteBytes != 1.5*4096 || s.AvgReadBytes != 4*4096 {
		t.Fatalf("avg sizes %v/%v", s.AvgWriteBytes, s.AvgReadBytes)
	}
	if tr.Footprint() != 10 {
		t.Fatalf("footprint = %d", tr.Footprint())
	}
}

func TestWriteReuseDistancesExact(t *testing.T) {
	// Writes: A, B, A. Reuse distance of the second A = bytes written
	// between the two A visits = 2 blocks (B plus the first A itself...
	// paper counts data written between consecutive visits: after writing
	// A the clock advances, then B, so distance = 2 * 4096).
	tr := &Trace{BlockSize: 4096, Ops: []Op{
		{Write: true, LBA: 0, Blocks: 1},
		{Write: true, LBA: 9, Blocks: 1},
		{Write: true, LBA: 0, Blocks: 1},
	}}
	ds := tr.WriteReuseDistances()
	if len(ds) != 1 || ds[0] != 2*4096 {
		t.Fatalf("distances = %v", ds)
	}
}

func TestReuseCDFMonotonic(t *testing.T) {
	tr := &Trace{BlockSize: 4096}
	rng := sim.NewRNG(5)
	for i := 0; i < 20000; i++ {
		tr.Ops = append(tr.Ops, Op{Write: true, LBA: rng.Int63n(4096), Blocks: 1})
	}
	th := []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	cdf := tr.ReuseCDF(th)
	prev := -1.0
	for i, v := range cdf {
		if v < prev || v < 0 || v > 1 {
			t.Fatalf("CDF not monotonic at %d: %v", i, cdf)
		}
		prev = v
	}
	fb := tr.FractionBeyond(16 << 20)
	if math.Abs((1-cdf[2])-fb) > 1e-9 {
		t.Fatalf("FractionBeyond inconsistent with CDF: %v vs %v", fb, 1-cdf[2])
	}
}

func TestReplayDrivesDevice(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := ftl.New(eng, ftl.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{BlockSize: 4096}
	rng := sim.NewRNG(7)
	for i := 0; i < 500; i++ {
		tr.Ops = append(tr.Ops, Op{
			Write:  rng.Float64() < 0.7,
			LBA:    rng.Int63n(dev.Blocks() - 4),
			Blocks: 1 + rng.Intn(4),
		})
	}
	res := Replay(eng, dev, tr, 8)
	if res.Ops != 500 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Bytes == 0 || res.Elapsed <= 0 {
		t.Fatal("no volume or time recorded")
	}
	if res.WriteLat.Count() == 0 || res.ReadLat.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
	if res.Throughput().MBps() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", BlockSize: 4096}
	rng := sim.NewRNG(9)
	for i := 0; i < 1000; i++ {
		orig.Ops = append(orig.Ops, Op{
			Write:  rng.Float64() < 0.5,
			LBA:    rng.Int63n(1 << 30),
			Blocks: 1 + rng.Intn(48),
		})
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.BlockSize != orig.BlockSize || len(got.Ops) != len(orig.Ops) {
		t.Fatalf("header mismatch: %s/%d/%d", got.Name, got.BlockSize, len(got.Ops))
	}
	for i := range orig.Ops {
		if got.Ops[i] != orig.Ops[i] {
			t.Fatalf("op %d mismatch", i)
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}
